//===- examples/live_monitor.cpp - Streaming Monitor walkthrough ------------===//
//
// Part of the AWDIT reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The streaming-API walkthrough: a Monitor session fed transaction by
/// transaction, as a live database tester would, with a callback sink
/// printing violations the moment they become detectable and a bounded
/// window evicting old transactions. Compare examples/quickstart.cpp,
/// which materializes a History and checks it one-shot.
///
//===----------------------------------------------------------------------===//

#include "checker/monitor.h"
#include "checker/violation_sink.h"

#include <cstdio>

using namespace awdit;

int main() {
  // Violations stream to this callback as they are detected — no waiting
  // for the history to end. JsonLinesSink / CollectingSink are drop-in
  // alternatives.
  CallbackSink Sink([](const Violation &V, const std::string &Desc) {
    std::printf("  >> live violation (kind %d): %s\n",
                static_cast<int>(V.Kind), Desc.c_str());
  });

  MonitorOptions Options;
  Options.Level = IsolationLevel::CausalConsistency;
  Options.CheckIntervalTxns = 4; // check every 4 commits
  Options.WindowTxns = 1000;     // bound memory on unbounded streams
  Monitor M(Options, &Sink);

  SessionId Alice = M.addSession();
  SessionId Bob = M.addSession();

  // Alice initializes two keys in one transaction.
  TxnId T0 = M.beginTxn(Alice);
  M.write(T0, /*K=*/1, /*V=*/100);
  M.write(T0, /*K=*/2, /*V=*/200);
  M.commit(T0);

  // Bob reads both — a consistent snapshot so far.
  TxnId T1 = M.beginTxn(Bob);
  M.read(T1, 1, 100);
  M.read(T1, 2, 200);
  M.commit(T1);

  // Alice overwrites both keys in one transaction...
  TxnId T2 = M.beginTxn(Alice);
  M.write(T2, 1, 101);
  M.write(T2, 2, 201);
  M.commit(T2);

  // ... but Bob observes only half of it: a fractured read. The monitor
  // flags it at the next checking pass, while the stream keeps running.
  TxnId T3 = M.beginTxn(Bob);
  M.read(T3, 1, 101); // new value of key 1
  M.read(T3, 2, 200); // stale value of key 2
  M.commit(T3);

  TxnId T4 = M.beginTxn(Alice);
  M.write(T4, 3, 300);
  M.commit(T4);

  CheckReport Report = M.finalize();
  const MonitorStats &S = M.stats();
  std::printf("stream ended: %s (%llu txns ingested, %llu violations, "
              "%llu checking passes)\n",
              Report.Consistent ? "consistent" : "INCONSISTENT",
              static_cast<unsigned long long>(S.IngestedTxns),
              static_cast<unsigned long long>(S.ReportedViolations),
              static_cast<unsigned long long>(S.Flushes));
  for (const Violation &V : Report.Violations)
    std::printf("  final report: %s\n", M.describe(V).c_str());
  return Report.Consistent ? 0 : 1;
}
