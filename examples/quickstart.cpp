//===- examples/quickstart.cpp - Five-minute tour of the API ----------------===//
//
// Part of the AWDIT reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
//
// Quickstart: build a small history by hand, check it against all three
// weak isolation levels, and print the witnesses AWDIT reports. The history
// is Fig. 4b of the paper: Read Committed consistent, but it fractures
// transaction t2's writes and therefore violates Read Atomic.
//
//===----------------------------------------------------------------------===//

#include "checker/checker.h"
#include "history/history_builder.h"

#include <cstdio>

using namespace awdit;

int main() {
  // Fig. 4b: two sessions. Session 1 runs t1 = {W(x,1)} and then
  // t2 = {W(x,2), W(y,2)}; session 2 runs t3 = {R(x,1), R(y,2)}.
  HistoryBuilder B;
  SessionId S1 = B.addSession();
  SessionId S2 = B.addSession();

  TxnId T1 = B.beginTxn(S1);
  B.write(T1, /*K=*/'x', /*V=*/1);

  TxnId T2 = B.beginTxn(S1);
  B.write(T2, 'x', 2);
  B.write(T2, 'y', 2);

  TxnId T3 = B.beginTxn(S2);
  B.read(T3, 'x', 1); // Stale: t2 overwrote x...
  B.read(T3, 'y', 2); // ...yet t2's y is observed. Fractured!

  std::string Err;
  std::optional<History> H = B.build(&Err);
  if (!H) {
    std::fprintf(stderr, "history invalid: %s\n", Err.c_str());
    return 1;
  }

  for (IsolationLevel Level : AllIsolationLevels) {
    CheckReport Report = checkIsolation(*H, Level);
    std::printf("%s: %s\n", isolationLevelName(Level),
                Report.Consistent ? "consistent" : "VIOLATED");
    for (const Violation &V : Report.Violations)
      std::printf("  witness: %s\n", V.describe(*H).c_str());
  }

  // Expected: CC VIOLATED, RA VIOLATED, RC consistent.
  return 0;
}
