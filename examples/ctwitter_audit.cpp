//===- examples/ctwitter_audit.cpp - Auditing a social-network workload -----===//
//
// Part of the AWDIT reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
//
// The paper's motivating use case end to end: run a C-Twitter-style
// workload against a (simulated) causally consistent database, record the
// history, and audit it at all three weak isolation levels — then rerun
// against a database that only provides per-operation read-committed
// visibility and watch RA/CC break while RC still passes.
//
//===----------------------------------------------------------------------===//

#include "checker/checker.h"
#include "history/history_stats.h"
#include "support/timer.h"
#include "workload/generator.h"

#include <cstdio>

using namespace awdit;

static void audit(const char *Label, ConsistencyMode Mode) {
  GenerateParams P;
  P.Bench = Benchmark::CTwitter;
  P.Sessions = 20;
  P.Txns = 4000;
  P.Mode = Mode;
  P.Seed = 42;
  History H = generateHistory(P);

  std::printf("=== %s database ===\n", Label);
  std::printf("history: %s\n", computeStats(H).toString().c_str());
  for (IsolationLevel Level : AllIsolationLevels) {
    Timer T;
    CheckReport Report = checkIsolation(H, Level);
    std::printf("  %s: %-10s (%.2f ms, %zu inferred co' edges)\n",
                isolationLevelName(Level),
                Report.Consistent ? "consistent" : "VIOLATED",
                T.elapsedMillis(), Report.Stats.InferredEdges);
    // Print the first witness, if any, as a sample.
    if (!Report.Violations.empty())
      std::printf("     e.g. %s\n",
                  Report.Violations.front().describe(H).c_str());
  }
}

int main() {
  audit("causally consistent", ConsistencyMode::Causal);
  audit("read-committed-only", ConsistencyMode::ReadCommitted);
  return 0;
}
