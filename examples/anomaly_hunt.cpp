//===- examples/anomaly_hunt.cpp - Hunting planted isolation bugs -----------===//
//
// Part of the AWDIT reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
//
// Black-box bug hunting, the workflow behind the paper's Table 1: take a
// consistent TPC-C history, plant each class of isolation anomaly in turn,
// and show which isolation levels flag it and with what witness. The level
// discrimination (e.g. a fractured read passes RC but fails RA/CC) is the
// product behaviour a database tester relies on.
//
//===----------------------------------------------------------------------===//

#include "checker/checker.h"
#include "sim/anomaly_injector.h"
#include "workload/generator.h"

#include <cstdio>

using namespace awdit;

int main() {
  GenerateParams P;
  P.Bench = Benchmark::Tpcc;
  P.Sessions = 10;
  P.Txns = 1500;
  P.Mode = ConsistencyMode::Serializable;
  P.Seed = 7;
  History Base = generateHistory(P);

  const AnomalyKind Kinds[] = {
      AnomalyKind::ThinAirRead,      AnomalyKind::AbortedRead,
      AnomalyKind::FutureRead,       AnomalyKind::FracturedRead,
      AnomalyKind::NonMonotonicRead, AnomalyKind::CausalViolation,
      AnomalyKind::CausalityCycle,
  };

  std::printf("%-20s | %-9s | %-9s | %-9s\n", "planted anomaly", "RC", "RA",
              "CC");
  std::printf("---------------------+-----------+-----------+-----------\n");
  for (AnomalyKind Kind : Kinds) {
    std::string Err;
    std::optional<History> H = injectAnomaly(Base, Kind, /*Seed=*/99, &Err);
    if (!H) {
      std::fprintf(stderr, "injection failed: %s\n", Err.c_str());
      return 1;
    }
    std::printf("%-20s", anomalyKindName(Kind));
    for (IsolationLevel Level : {IsolationLevel::ReadCommitted,
                                 IsolationLevel::ReadAtomic,
                                 IsolationLevel::CausalConsistency}) {
      CheckReport Report = checkIsolation(*H, Level);
      std::printf(" | %-9s", Report.Consistent ? "pass" : "VIOLATED");
    }
    std::printf("\n");
    // Show one witness at the strongest level that catches it.
    for (IsolationLevel Level : AllIsolationLevels) {
      CheckReport Report = checkIsolation(*H, Level);
      if (!Report.Consistent) {
        std::printf("    -> %s\n",
                    Report.Violations.front().describe(*H).c_str());
        break;
      }
    }
  }
  return 0;
}
