//===- examples/lowerbound_demo.cpp - The §4 reductions, live ----------------===//
//
// Part of the AWDIT reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
//
// The paper's lower-bound machinery as a runnable demo: encode triangle
// detection as an isolation-testing problem (§4) and let AWDIT solve it.
// For a random graph, the checker's verdict on the reduction history must
// coincide with a direct triangle search — on the Fig. 5 example, the
// witness cycle corresponds to the triangle.
//
//===----------------------------------------------------------------------===//

#include "checker/checker.h"
#include "reduction/reductions.h"
#include "reduction/triangle.h"

#include <cstdio>

using namespace awdit;

static void demo(const char *Label, const UGraph &G) {
  std::optional<std::array<uint32_t, 3>> Triangle = findTriangle(G);
  std::printf("%s: n=%zu m=%zu, triangle: %s", Label, G.numNodes(),
              G.numEdges(), Triangle ? "yes (" : "none");
  if (Triangle)
    std::printf("%u,%u,%u)", (*Triangle)[0], (*Triangle)[1],
                (*Triangle)[2]);
  std::printf("\n");

  struct {
    const char *Name;
    History H;
    IsolationLevel Level;
  } Cases[] = {
      {"general reduction @ CC", reduceGeneral(G),
       IsolationLevel::CausalConsistency},
      {"general reduction @ RC", reduceGeneral(G),
       IsolationLevel::ReadCommitted},
      {"2-session reduction @ RA", reduceRaTwoSessions(G),
       IsolationLevel::ReadAtomic},
      {"1-session reduction @ RC", reduceRcSingleSession(G),
       IsolationLevel::ReadCommitted},
  };
  for (auto &C : Cases) {
    CheckReport Report = checkIsolation(C.H, C.Level);
    bool Match = Report.Consistent == !Triangle.has_value();
    std::printf("  %-26s: %-12s (%zu ops)  %s\n", C.Name,
                Report.Consistent ? "consistent" : "inconsistent",
                C.H.numOps(), Match ? "== triangle oracle" : "MISMATCH!");
    if (!Report.Consistent)
      std::printf("      witness: %s\n",
                  Report.Violations.front().describe(C.H).c_str());
  }
}

int main() {
  // The triangle graph of the paper's Fig. 5a.
  UGraph Fig5(3);
  Fig5.addEdge(0, 1);
  Fig5.addEdge(1, 2);
  Fig5.addEdge(0, 2);
  demo("Fig. 5a (triangle)", Fig5);

  // A 5-cycle: triangle-free, so every reduction history is consistent.
  UGraph Pentagon(5);
  for (uint32_t I = 0; I < 5; ++I)
    Pentagon.addEdge(I, (I + 1) % 5);
  demo("C5 (triangle-free)", Pentagon);

  // Random graphs of growing density.
  Rng Rand(2025);
  for (double P : {0.02, 0.05, 0.12}) {
    UGraph G = randomGraph(64, P, Rand);
    char Label[64];
    std::snprintf(Label, sizeof(Label), "G(64, %.2f)", P);
    demo(Label, G);
  }
  return 0;
}
