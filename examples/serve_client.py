#!/usr/bin/env python3
"""Minimal `awdit serve` client: the raw line protocol, end to end.

Start a server, then run this against it:

    ./build/awdit serve --port 4519 --sink-dir sink &
    ./build/awdit generate --bench c-twitter --sessions 4 --txns 200 \
        --mode causal --seed 7 --inject causal-violation --out history.txt
    python3 examples/serve_client.py 4519 my-stream history.txt

Expected transcript (abridged):

    > HELLO my-stream cc interval=32
    < OK my-stream new offset=0 line=0
    > ... 1234 stream lines ...
    > STATS
    < STATS {"stream":"my-stream","txns":204,...,"flush_micros":412}
    < VIOLATION {"kind":"Commit-Order Cycle","stream":"my-stream",...}
    > END
    < FINAL {"stream":"my-stream","consistent":false,...}
    < BYE

On a reconnect after a server restart the HELLO reply is
`OK my-stream resumed offset=<N> line=<M>`: seek the input to byte N and
keep sending — the server's checkpoint already holds everything before
that.
"""

import socket
import sys


def main() -> int:
    if len(sys.argv) != 4:
        print(f"usage: {sys.argv[0]} <port> <stream-id> <history-file>")
        return 2

    port, stream, path = int(sys.argv[1]), sys.argv[2], sys.argv[3]
    sock = socket.create_connection(("127.0.0.1", port))
    rx = sock.makefile("r", newline="\n")

    def send(line: str) -> None:
        print(">", line)
        sock.sendall((line + "\n").encode())

    def recv() -> str:
        line = rx.readline().rstrip("\n")
        print("<", line[:120])
        return line

    send(f"HELLO {stream} cc interval=32")
    ok = recv()
    if ok.startswith("ERR"):
        return 2
    # "OK <stream> new|resumed|attached offset=<N> line=<M>"
    offset = int(ok.split("offset=")[1].split()[0])

    with open(path, "rb") as history:
        history.seek(offset)
        sock.sendall(history.read())
    send("STATS")
    send("END")

    violations = 0
    consistent = True
    while True:
        line = recv()
        if line.startswith("VIOLATION "):
            violations += 1
        elif line.startswith("FINAL "):
            consistent = '"consistent":true' in line
        elif line == "BYE" or not line:
            break

    print(f"{stream}: {'consistent' if consistent else 'INCONSISTENT'}, "
          f"{violations} violations pushed")
    return 0 if consistent else 1


if __name__ == "__main__":
    sys.exit(main())
