//===- sim/anomaly_injector.h - Anomaly injection -----------------*- C++ -*-===//
//
// Part of the AWDIT reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Plants labelled isolation anomalies into otherwise-consistent histories.
/// This substitutes for the production isolation bugs behind the paper's
/// Table 1: the injector produces the same anomaly classes (future reads,
/// causality cycles, ...) deterministically, so the reporting behaviour of
/// AWDIT and the baselines can be compared per class.
///
//===----------------------------------------------------------------------===//

#ifndef AWDIT_SIM_ANOMALY_INJECTOR_H
#define AWDIT_SIM_ANOMALY_INJECTOR_H

#include "checker/isolation_level.h"
#include "history/history.h"

#include <optional>
#include <string>

namespace awdit {

/// The classes of anomalies the injector can plant.
enum class AnomalyKind : uint8_t {
  /// A read of a value nothing wrote.
  ThinAirRead,
  /// A read from a transaction that is flipped to aborted.
  AbortedRead,
  /// A read, inside one transaction, of a po-later own write.
  FutureRead,
  /// A reader observes some but not all effects of a transaction whose
  /// session predecessor wrote the same key: violates RA and CC, not RC.
  FracturedRead,
  /// The fractured-read gadget with the read order flipped so the RC
  /// monotonicity axiom also fires: violates RC, RA, and CC.
  NonMonotonicRead,
  /// A two-hop causal chain whose origin is observed stale: violates CC
  /// only (RA's single-step premise does not fire).
  CausalViolation,
  /// A pair of transactions reading from each other: a so ∪ wr cycle,
  /// violating every level.
  CausalityCycle,
};

const char *anomalyKindName(AnomalyKind Kind);

/// Returns true if a history carrying \p Kind must fail a check at
/// \p Level. (Anomalies may incidentally violate more than promised; this
/// predicate is the guaranteed part.)
bool anomalyViolates(AnomalyKind Kind, IsolationLevel Level);

/// Returns a copy of \p Base with one instance of \p Kind planted.
/// The gadget transactions use fresh keys/values appended at session ends,
/// or, for read-level anomalies, a mutated existing read; \p Seed picks the
/// insertion points. Returns std::nullopt with \p Err set if \p Base offers
/// no suitable site (e.g. no external read to corrupt).
std::optional<History> injectAnomaly(const History &Base, AnomalyKind Kind,
                                     uint64_t Seed,
                                     std::string *Err = nullptr);

} // namespace awdit

#endif // AWDIT_SIM_ANOMALY_INJECTOR_H
