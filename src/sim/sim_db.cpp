//===- sim/sim_db.cpp - Transactional database simulator --------------------===//

#include "sim/sim_db.h"

#include "history/history_builder.h"
#include "support/assert.h"

#include <algorithm>
#include <unordered_map>

using namespace awdit;

size_t ClientWorkload::numTxns() const {
  size_t N = 0;
  for (const ClientSession &S : Sessions)
    N += S.Txns.size();
  return N;
}

size_t ClientWorkload::numOps() const {
  size_t N = 0;
  for (const ClientSession &S : Sessions)
    for (const ClientTxn &T : S.Txns)
      N += T.Ops.size();
  return N;
}

const char *awdit::consistencyModeName(ConsistencyMode Mode) {
  switch (Mode) {
  case ConsistencyMode::Serializable:
    return "serializable";
  case ConsistencyMode::Causal:
    return "causal";
  case ConsistencyMode::ReadAtomic:
    return "read-atomic";
  case ConsistencyMode::ReadCommitted:
    return "read-committed";
  }
  awditUnreachable("unknown consistency mode");
}

namespace {

/// One committed transaction in the global commit (arbitration) order.
struct LogEntry {
  SessionId Session;
  /// Per-session commit sequence number (for causal FIFO delivery).
  uint32_t SessSeq;
  std::vector<std::pair<Key, Value>> Writes;
  /// Causal mode: delivered-transaction counts per session at commit time
  /// (own session entry = own SessSeq).
  std::vector<uint32_t> DepClock;
};

/// A version of a key: which log index wrote which value.
struct KeyVersion {
  uint32_t LogIdx;
  Value V;
};

/// Shared machinery: global commit log, per-key version lists, unique
/// value generation, and history recording.
class SimCore {
public:
  SimCore(const ClientWorkload &Workload, const SimConfig &Config)
      : Workload(Workload), Config(Config), Rand(Config.Seed) {
    for (size_t S = 0; S < Workload.Sessions.size(); ++S)
      Builder.addSession();
    Builder.setImplicitInitialState(true);
  }

  Value freshValue() { return ++LastValue; }

  /// Latest committed version of \p K strictly below log prefix \p P, or
  /// no value (0 stands for the initial state).
  Value readAtPrefix(Key K, uint32_t P) const {
    auto It = Versions.find(K);
    if (It == Versions.end())
      return 0;
    const std::vector<KeyVersion> &List = It->second;
    // Versions are appended in log order; binary search the prefix.
    auto Pos = std::partition_point(
        List.begin(), List.end(),
        [P](const KeyVersion &V) { return V.LogIdx < P; });
    if (Pos == List.begin())
      return 0;
    return std::prev(Pos)->V;
  }

  /// Appends a committed transaction to the global log.
  uint32_t appendToLog(LogEntry Entry) {
    uint32_t Idx = static_cast<uint32_t>(Log.size());
    for (const auto &[K, V] : Entry.Writes)
      Versions[K].push_back({Idx, V});
    Log.push_back(std::move(Entry));
    return Idx;
  }

  const std::vector<LogEntry> &log() const { return Log; }

  /// Records one executed transaction into the history.
  void record(SessionId S, const std::vector<Operation> &Ops, bool Aborted) {
    TxnId T = Builder.beginTxn(S);
    for (const Operation &Op : Ops)
      Builder.append(T, Op);
    if (Aborted)
      Builder.abortTxn(T);
  }

  std::optional<History> finish(std::string *Err) {
    return Builder.build(Err);
  }

  const ClientWorkload &Workload;
  const SimConfig &Config;
  Rng Rand;

private:
  HistoryBuilder Builder;
  std::vector<LogEntry> Log;
  std::unordered_map<Key, std::vector<KeyVersion>> Versions;
  Value LastValue = 0;
};

//===----------------------------------------------------------------------===//
// Serializable mode: whole transactions execute atomically against a single
// global store (the behaviour of a strict-2PL / single-node database).
//===----------------------------------------------------------------------===//

void runSerializable(SimCore &Core) {
  size_t K = Core.Workload.Sessions.size();
  std::vector<size_t> Next(K, 0);
  std::vector<uint32_t> SessSeq(K, 0);
  std::vector<SessionId> Pending;

  auto Refill = [&] {
    Pending.clear();
    for (SessionId S = 0; S < K; ++S)
      if (Next[S] < Core.Workload.Sessions[S].Txns.size())
        Pending.push_back(S);
  };

  for (Refill(); !Pending.empty(); Refill()) {
    SessionId S = Pending[Core.Rand.nextBelow(Pending.size())];
    const ClientTxn &CT = Core.Workload.Sessions[S].Txns[Next[S]++];

    std::unordered_map<Key, Value> WriteBuf;
    std::vector<Operation> Ops;
    LogEntry Entry{S, SessSeq[S], {}, {}};
    uint32_t Prefix = static_cast<uint32_t>(Core.log().size());
    for (const ClientOp &Op : CT.Ops) {
      if (Op.IsRead) {
        auto It = WriteBuf.find(Op.K);
        Value V =
            It != WriteBuf.end() ? It->second : Core.readAtPrefix(Op.K, Prefix);
        Ops.push_back(Operation::read(Op.K, V));
      } else {
        Value V = Core.freshValue();
        WriteBuf[Op.K] = V;
        // Later writes to the same key supersede earlier ones in the log
        // entry (only final writes are externally visible anyway).
        Ops.push_back(Operation::write(Op.K, V));
      }
    }
    bool Abort = Core.Rand.nextBool(Core.Config.AbortProbability);
    if (!Abort) {
      for (const auto &[Key, V] : WriteBuf)
        Entry.Writes.push_back({Key, V});
      Core.appendToLog(std::move(Entry));
      ++SessSeq[S];
    }
    Core.record(S, Ops, Abort);
  }
}

//===----------------------------------------------------------------------===//
// Causal mode: per-session replicas, causal delivery with random delays,
// last-writer-wins arbitration by global commit index (the design of
// causally consistent stores such as Cure / MongoDB causal sessions).
//===----------------------------------------------------------------------===//

void runCausal(SimCore &Core) {
  size_t K = Core.Workload.Sessions.size();
  std::vector<size_t> Next(K, 0);
  std::vector<uint32_t> SessSeq(K, 0);
  // Replica state per session: key -> (arbitration index, value).
  struct Slot {
    uint32_t Arb;
    Value V;
  };
  std::vector<std::unordered_map<Key, Slot>> Replica(K);
  // Delivered transaction counts: Delivered[s][s'] = number of s' txns
  // applied at s's replica.
  std::vector<std::vector<uint32_t>> Delivered(
      K, std::vector<uint32_t>(K, 0));
  // Per source session, the global log indices of its committed txns.
  std::vector<std::vector<uint32_t>> BySource(K);

  auto ApplyAt = [&](SessionId S, uint32_t LogIdx) {
    const LogEntry &E = Core.log()[LogIdx];
    for (const auto &[Key, V] : E.Writes) {
      auto [It, Inserted] = Replica[S].insert({Key, Slot{LogIdx, V}});
      if (!Inserted && It->second.Arb < LogIdx)
        It->second = Slot{LogIdx, V};
    }
    ++Delivered[S][E.Session];
  };

  auto Deliverable = [&](SessionId S, SessionId Src) -> bool {
    uint32_t NextSeq = Delivered[S][Src];
    if (NextSeq >= BySource[Src].size())
      return false;
    const LogEntry &E = Core.log()[BySource[Src][NextSeq]];
    for (SessionId S2 = 0; S2 < K; ++S2)
      if (Delivered[S][S2] < E.DepClock[S2] && S2 != Src)
        return false;
    return true;
  };

  auto DeliverRound = [&](SessionId S) {
    // Repeatedly pick deliverable messages, each accepted with the
    // configured probability; stop after one refused full round.
    bool Progress = true;
    while (Progress) {
      Progress = false;
      for (SessionId Src = 0; Src < K; ++Src) {
        if (Src == S)
          continue;
        while (Deliverable(S, Src) &&
               Core.Rand.nextBool(Core.Config.DeliveryProbability)) {
          ApplyAt(S, BySource[Src][Delivered[S][Src]]);
          Progress = true;
        }
      }
    }
  };

  std::vector<SessionId> Pending;
  auto Refill = [&] {
    Pending.clear();
    for (SessionId S = 0; S < K; ++S)
      if (Next[S] < Core.Workload.Sessions[S].Txns.size())
        Pending.push_back(S);
  };

  for (Refill(); !Pending.empty(); Refill()) {
    SessionId S = Pending[Core.Rand.nextBelow(Pending.size())];
    DeliverRound(S);

    const ClientTxn &CT = Core.Workload.Sessions[S].Txns[Next[S]++];
    std::unordered_map<Key, Value> WriteBuf;
    std::vector<Operation> Ops;
    for (const ClientOp &Op : CT.Ops) {
      if (Op.IsRead) {
        Value V = 0;
        if (auto It = WriteBuf.find(Op.K); It != WriteBuf.end())
          V = It->second;
        else if (auto It2 = Replica[S].find(Op.K); It2 != Replica[S].end())
          V = It2->second.V;
        Ops.push_back(Operation::read(Op.K, V));
      } else {
        Value V = Core.freshValue();
        WriteBuf[Op.K] = V;
        Ops.push_back(Operation::write(Op.K, V));
      }
    }
    bool Abort = Core.Rand.nextBool(Core.Config.AbortProbability);
    if (!Abort) {
      LogEntry Entry{S, SessSeq[S], {}, Delivered[S]};
      Entry.DepClock[S] = SessSeq[S];
      for (const auto &[Key, V] : WriteBuf)
        Entry.Writes.push_back({Key, V});
      uint32_t Idx = Core.appendToLog(std::move(Entry));
      BySource[S].push_back(Idx);
      ApplyAt(S, Idx); // Own writes apply immediately.
      ++SessSeq[S];
    }
    Core.record(S, Ops, Abort);
  }
}

//===----------------------------------------------------------------------===//
// ReadAtomic mode: each transaction reads from a fixed atomic visible set —
// a (possibly stale) committed prefix plus randomly read-ahead whole
// transactions — and observes the commit-order-latest writer within the
// set. Satisfies RA with the commit order as witness; the read-ahead
// transactions break causality, so CC can fail.
//===----------------------------------------------------------------------===//

void runReadAtomic(SimCore &Core) {
  size_t K = Core.Workload.Sessions.size();
  std::vector<size_t> Next(K, 0);
  std::vector<uint32_t> SessSeq(K, 0);
  // Log size immediately after the session's latest own commit; the
  // snapshot must not be older (co respects so).
  std::vector<uint32_t> OwnFloor(K, 0);
  constexpr uint32_t StalenessWindow = 12;

  std::vector<SessionId> Pending;
  auto Refill = [&] {
    Pending.clear();
    for (SessionId S = 0; S < K; ++S)
      if (Next[S] < Core.Workload.Sessions[S].Txns.size())
        Pending.push_back(S);
  };

  for (Refill(); !Pending.empty(); Refill()) {
    SessionId S = Pending[Core.Rand.nextBelow(Pending.size())];
    const ClientTxn &CT = Core.Workload.Sessions[S].Txns[Next[S]++];

    uint32_t Now = static_cast<uint32_t>(Core.log().size());
    uint32_t Lo = std::max(OwnFloor[S],
                           Now > StalenessWindow ? Now - StalenessWindow : 0);
    uint32_t Snapshot = static_cast<uint32_t>(
        Core.Rand.nextInRange(Lo, Now));
    // Read-ahead: whole transactions committed after the snapshot.
    std::vector<uint32_t> Ahead;
    for (uint32_t Idx = Snapshot; Idx < Now; ++Idx)
      if (Core.Rand.nextBool(Core.Config.ReadAheadProbability))
        Ahead.push_back(Idx);

    std::unordered_map<Key, Value> WriteBuf;
    std::vector<Operation> Ops;
    for (const ClientOp &Op : CT.Ops) {
      if (Op.IsRead) {
        Value V;
        if (auto It = WriteBuf.find(Op.K); It != WriteBuf.end()) {
          V = It->second;
        } else {
          V = Core.readAtPrefix(Op.K, Snapshot);
          // A read-ahead transaction writing the key supersedes the
          // snapshot (they are commit-order later by construction).
          for (uint32_t Idx : Ahead)
            for (const auto &[WK, WV] : Core.log()[Idx].Writes)
              if (WK == Op.K)
                V = WV;
        }
        Ops.push_back(Operation::read(Op.K, V));
      } else {
        Value V = Core.freshValue();
        WriteBuf[Op.K] = V;
        Ops.push_back(Operation::write(Op.K, V));
      }
    }
    bool Abort = Core.Rand.nextBool(Core.Config.AbortProbability);
    if (!Abort) {
      LogEntry Entry{S, SessSeq[S], {}, {}};
      for (const auto &[Key, V] : WriteBuf)
        Entry.Writes.push_back({Key, V});
      Core.appendToLog(std::move(Entry));
      OwnFloor[S] = static_cast<uint32_t>(Core.log().size());
      ++SessSeq[S];
    }
    Core.record(S, Ops, Abort);
  }
}

//===----------------------------------------------------------------------===//
// ReadCommitted mode: operations of open transactions interleave across
// sessions; each read observes the latest committed version under a
// monotonically advancing per-transaction prefix. Fractured reads (RA
// violations) arise when commits land between two reads.
//===----------------------------------------------------------------------===//

void runReadCommitted(SimCore &Core) {
  size_t K = Core.Workload.Sessions.size();
  struct OpenTxn {
    size_t TxnIdx = 0;
    size_t OpIdx = 0;
    uint32_t Prefix = 0;
    std::unordered_map<Key, Value> WriteBuf;
    std::vector<Operation> Ops;
    bool Active = false;
  };
  std::vector<OpenTxn> Open(K);
  std::vector<size_t> Next(K, 0);
  std::vector<uint32_t> SessSeq(K, 0);

  std::vector<SessionId> Pending;
  auto Refill = [&] {
    Pending.clear();
    for (SessionId S = 0; S < K; ++S)
      if (Open[S].Active || Next[S] < Core.Workload.Sessions[S].Txns.size())
        Pending.push_back(S);
  };

  for (Refill(); !Pending.empty(); Refill()) {
    SessionId S = Pending[Core.Rand.nextBelow(Pending.size())];
    OpenTxn &T = Open[S];
    if (!T.Active) {
      T = OpenTxn();
      T.TxnIdx = Next[S]++;
      T.Prefix = static_cast<uint32_t>(Core.log().size());
      T.Active = true;
    }
    const ClientTxn &CT = Core.Workload.Sessions[S].Txns[T.TxnIdx];

    // Execute one operation per scheduling step so that other sessions'
    // commits can interleave mid-transaction.
    if (T.OpIdx < CT.Ops.size()) {
      const ClientOp &Op = CT.Ops[T.OpIdx++];
      // The visible prefix may advance (monotonically) between ops.
      if (Core.Rand.nextBool(Core.Config.PrefixAdvanceProbability))
        T.Prefix = static_cast<uint32_t>(Core.log().size());
      if (Op.IsRead) {
        auto It = T.WriteBuf.find(Op.K);
        Value V = It != T.WriteBuf.end()
                      ? It->second
                      : Core.readAtPrefix(Op.K, T.Prefix);
        T.Ops.push_back(Operation::read(Op.K, V));
      } else {
        Value V = Core.freshValue();
        T.WriteBuf[Op.K] = V;
        T.Ops.push_back(Operation::write(Op.K, V));
      }
    }
    if (T.OpIdx >= CT.Ops.size()) {
      bool Abort = Core.Rand.nextBool(Core.Config.AbortProbability);
      if (!Abort) {
        LogEntry Entry{S, SessSeq[S], {}, {}};
        for (const auto &[Key, V] : T.WriteBuf)
          Entry.Writes.push_back({Key, V});
        Core.appendToLog(std::move(Entry));
        ++SessSeq[S];
      }
      Core.record(S, T.Ops, Abort);
      T.Active = false;
    }
  }
}

} // namespace

std::optional<History> awdit::simulateDatabase(const ClientWorkload &Workload,
                                               const SimConfig &Config,
                                               std::string *Err) {
  SimCore Core(Workload, Config);
  switch (Config.Mode) {
  case ConsistencyMode::Serializable:
    runSerializable(Core);
    break;
  case ConsistencyMode::Causal:
    runCausal(Core);
    break;
  case ConsistencyMode::ReadAtomic:
    runReadAtomic(Core);
    break;
  case ConsistencyMode::ReadCommitted:
    runReadCommitted(Core);
    break;
  }
  return Core.finish(Err);
}
