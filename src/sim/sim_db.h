//===- sim/sim_db.h - Transactional database simulator ------------*- C++ -*-===//
//
// Part of the AWDIT reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// An in-process multi-session transactional key-value database simulator.
/// It substitutes for the real databases of the paper's setup (PostgreSQL,
/// CockroachDB, RocksDB driven by the Cobra framework): client sessions
/// submit transactions over keys, and the simulator executes them under a
/// configurable consistency mode, producing a History with the same shape a
/// black-box tester would record.
///
/// Modes and the guarantees of the histories they emit:
///  - Serializable: one global order; satisfies CC, RA, RC.
///  - Causal: per-session replicas with causal delivery and a global
///    arbitration order (last-writer-wins); satisfies CC (hence RA, RC).
///  - ReadAtomic: per-transaction atomic snapshots (a committed prefix plus
///    randomly read-ahead whole transactions); satisfies RA (hence RC) but
///    can violate CC.
///  - ReadCommitted: per-operation monotone committed prefixes; satisfies
///    RC but can violate RA and CC (fractured reads).
///
//===----------------------------------------------------------------------===//

#ifndef AWDIT_SIM_SIM_DB_H
#define AWDIT_SIM_SIM_DB_H

#include "history/history.h"
#include "support/rng.h"

#include <optional>
#include <string>
#include <vector>

namespace awdit {

/// A client operation before execution: reads carry no value (the database
/// decides what is observed); writes receive unique values at execution.
struct ClientOp {
  bool IsRead;
  Key K;

  static ClientOp read(Key K) { return {true, K}; }
  static ClientOp write(Key K) { return {false, K}; }
};

/// A client transaction: operations in program order.
struct ClientTxn {
  std::vector<ClientOp> Ops;
};

/// One client session: transactions in session order.
struct ClientSession {
  std::vector<ClientTxn> Txns;
};

/// A complete client workload.
struct ClientWorkload {
  std::vector<ClientSession> Sessions;

  size_t numTxns() const;
  size_t numOps() const;
};

/// The consistency level the simulated database provides.
enum class ConsistencyMode : uint8_t {
  Serializable,
  Causal,
  ReadAtomic,
  ReadCommitted,
};

const char *consistencyModeName(ConsistencyMode Mode);

/// Simulator configuration.
struct SimConfig {
  ConsistencyMode Mode = ConsistencyMode::Serializable;
  uint64_t Seed = 1;
  /// Probability that a transaction aborts after executing (its writes are
  /// discarded; the history records it as aborted).
  double AbortProbability = 0.0;
  /// Causal mode: probability of delivering each pending remote
  /// transaction before a session runs its next transaction.
  double DeliveryProbability = 0.7;
  /// ReadAtomic mode: probability of reading ahead of the snapshot by one
  /// whole committed transaction (per candidate).
  double ReadAheadProbability = 0.05;
  /// ReadCommitted mode: probability of advancing the visible prefix
  /// between two operations of the same transaction.
  double PrefixAdvanceProbability = 0.5;
};

/// Executes \p Workload under \p Config and returns the recorded History.
/// Returns std::nullopt (with \p Err set) only on internal invariant
/// failures (e.g. value-space exhaustion), which indicate bugs.
std::optional<History> simulateDatabase(const ClientWorkload &Workload,
                                        const SimConfig &Config,
                                        std::string *Err = nullptr);

} // namespace awdit

#endif // AWDIT_SIM_SIM_DB_H
