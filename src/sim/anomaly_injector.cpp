//===- sim/anomaly_injector.cpp - Anomaly injection --------------------------===//

#include "sim/anomaly_injector.h"

#include "history/history_builder.h"
#include "support/assert.h"
#include "support/rng.h"

#include <algorithm>
#include <vector>

using namespace awdit;

const char *awdit::anomalyKindName(AnomalyKind Kind) {
  switch (Kind) {
  case AnomalyKind::ThinAirRead:
    return "Thin-Air Read";
  case AnomalyKind::AbortedRead:
    return "Aborted Read";
  case AnomalyKind::FutureRead:
    return "Future Read";
  case AnomalyKind::FracturedRead:
    return "Fractured Read";
  case AnomalyKind::NonMonotonicRead:
    return "Non-Monotonic Read";
  case AnomalyKind::CausalViolation:
    return "Causal Violation";
  case AnomalyKind::CausalityCycle:
    return "Causality Cycle";
  }
  awditUnreachable("unknown anomaly kind");
}

bool awdit::anomalyViolates(AnomalyKind Kind, IsolationLevel Level) {
  switch (Kind) {
  case AnomalyKind::ThinAirRead:
  case AnomalyKind::AbortedRead:
  case AnomalyKind::FutureRead:
  case AnomalyKind::NonMonotonicRead:
  case AnomalyKind::CausalityCycle:
    return true; // Violates Read Consistency / all three levels.
  case AnomalyKind::FracturedRead:
    return Level == IsolationLevel::ReadAtomic ||
           Level == IsolationLevel::CausalConsistency;
  case AnomalyKind::CausalViolation:
    return Level == IsolationLevel::CausalConsistency;
  }
  awditUnreachable("unknown anomaly kind");
}

namespace {

/// Mutable copy of a history for editing before rebuild.
struct MutableHistory {
  struct MutTxn {
    SessionId Session;
    bool Aborted;
    std::vector<Operation> Ops;
  };
  std::vector<MutTxn> Txns;
  size_t NumSessions = 0;
  Key NextFreshKey = 0;
  Value NextFreshValue = 0;

  explicit MutableHistory(const History &Base) {
    NumSessions = Base.numSessions();
    Txns.reserve(Base.numTxns());
    for (TxnId Id = 0; Id < Base.numTxns(); ++Id) {
      const Transaction &T = Base.txn(Id);
      Txns.push_back({T.Session, !T.Committed, T.Ops});
      for (const Operation &Op : T.Ops) {
        NextFreshKey = std::max(NextFreshKey, Op.K + 1);
        if (Op.V >= 0)
          NextFreshValue = std::max(NextFreshValue, Op.V + 1);
      }
    }
  }

  Key freshKey() { return NextFreshKey++; }
  Value freshValue() { return NextFreshValue++; }

  /// Ensures at least \p N sessions exist and returns \p N distinct
  /// session ids, chosen pseudo-randomly.
  std::vector<SessionId> pickSessions(size_t N, Rng &Rand) {
    while (NumSessions < N)
      ++NumSessions;
    std::vector<SessionId> All(NumSessions);
    for (SessionId S = 0; S < NumSessions; ++S)
      All[S] = S;
    // Partial Fisher-Yates shuffle for the first N slots.
    for (size_t I = 0; I < N; ++I)
      std::swap(All[I], All[I + Rand.nextBelow(All.size() - I)]);
    All.resize(N);
    return All;
  }

  /// Appends a transaction at the end of \p S's session order.
  void appendTxn(SessionId S, std::vector<Operation> Ops) {
    Txns.push_back({S, /*Aborted=*/false, std::move(Ops)});
  }

  std::optional<History> rebuild(std::string *Err) const {
    HistoryBuilder B;
    for (size_t S = 0; S < NumSessions; ++S)
      B.addSession();
    B.setImplicitInitialState(true);
    for (const MutTxn &T : Txns) {
      TxnId Id = B.beginTxn(T.Session);
      for (const Operation &Op : T.Ops)
        B.append(Id, Op);
      if (T.Aborted)
        B.abortTxn(Id);
    }
    return B.build(Err);
  }
};

bool fail(std::string *Err, const char *Msg) {
  if (Err)
    *Err = Msg;
  return false;
}

/// Picks a random committed external read of \p Base; returns false if
/// none exists.
bool pickExternalRead(const History &Base, Rng &Rand, TxnId &OutTxn,
                      uint32_t &OutReadPos) {
  std::vector<std::pair<TxnId, uint32_t>> Candidates;
  for (TxnId Id = 0; Id < Base.numTxns(); ++Id) {
    const Transaction &T = Base.txn(Id);
    if (!T.Committed)
      continue;
    for (uint32_t ReadPos : T.ExtReads)
      Candidates.push_back({Id, ReadPos});
  }
  if (Candidates.empty())
    return false;
  auto [T, R] = Candidates[Rand.nextBelow(Candidates.size())];
  OutTxn = T;
  OutReadPos = R;
  return true;
}

} // namespace

std::optional<History> awdit::injectAnomaly(const History &Base,
                                            AnomalyKind Kind, uint64_t Seed,
                                            std::string *Err) {
  Rng Rand(Seed ^ 0xa5a5a5a5a5a5a5a5ULL);
  MutableHistory M(Base);

  switch (Kind) {
  case AnomalyKind::ThinAirRead: {
    // Corrupt any committed read with a value nothing writes.
    std::vector<std::pair<TxnId, uint32_t>> Reads;
    for (TxnId Id = 0; Id < Base.numTxns(); ++Id) {
      const Transaction &T = Base.txn(Id);
      if (!T.Committed)
        continue;
      for (const ReadInfo &RI : T.Reads)
        Reads.push_back({Id, RI.OpIndex});
    }
    if (Reads.empty()) {
      fail(Err, "history contains no committed read to corrupt");
      return std::nullopt;
    }
    auto [T, OpIdx] = Reads[Rand.nextBelow(Reads.size())];
    M.Txns[T].Ops[OpIdx].V = M.freshValue();
    break;
  }

  case AnomalyKind::AbortedRead: {
    TxnId Reader;
    uint32_t ReadPos;
    if (!pickExternalRead(Base, Rand, Reader, ReadPos)) {
      fail(Err, "history contains no external read");
      return std::nullopt;
    }
    TxnId Writer = Base.txn(Reader).Reads[ReadPos].Writer;
    M.Txns[Writer].Aborted = true;
    break;
  }

  case AnomalyKind::FutureRead: {
    // Prepend, to a transaction with a write, a read of its own later
    // write.
    std::vector<TxnId> Writers;
    for (TxnId Id = 0; Id < Base.numTxns(); ++Id)
      if (Base.txn(Id).Committed && !Base.txn(Id).WriteKeys.empty())
        Writers.push_back(Id);
    if (Writers.empty()) {
      fail(Err, "history contains no committed write");
      return std::nullopt;
    }
    TxnId T = Writers[Rand.nextBelow(Writers.size())];
    const std::vector<Operation> &Ops = M.Txns[T].Ops;
    auto WriteIt = std::find_if(Ops.begin(), Ops.end(),
                                [](const Operation &Op) {
                                  return Op.isWrite();
                                });
    AWDIT_ASSERT(WriteIt != Ops.end(), "writer txn without a write");
    Operation FutureRead = Operation::read(WriteIt->K, WriteIt->V);
    M.Txns[T].Ops.insert(M.Txns[T].Ops.begin(), FutureRead);
    break;
  }

  case AnomalyKind::FracturedRead:
  case AnomalyKind::NonMonotonicRead: {
    // Gadget: s1 runs t1:W(x,a) then t2:W(x,b),W(y,c); s2 runs a reader
    // observing t1's x together with t2's y. Reading x before y violates
    // RA/CC only; reading y first additionally fires RC monotonicity.
    std::vector<SessionId> S = M.pickSessions(2, Rand);
    Key X = M.freshKey(), Y = M.freshKey();
    Value A = M.freshValue(), B = M.freshValue(), C = M.freshValue();
    M.appendTxn(S[0], {Operation::write(X, A)});
    M.appendTxn(S[0], {Operation::write(X, B), Operation::write(Y, C)});
    if (Kind == AnomalyKind::FracturedRead)
      M.appendTxn(S[1], {Operation::read(X, A), Operation::read(Y, C)});
    else
      M.appendTxn(S[1], {Operation::read(Y, C), Operation::read(X, A)});
    break;
  }

  case AnomalyKind::CausalViolation: {
    // Gadget: t2 reaches the reader through a two-hop wr chain, so only
    // the transitive CC premise fires.
    std::vector<SessionId> S = M.pickSessions(3, Rand);
    Key X = M.freshKey(), Z = M.freshKey(), W = M.freshKey();
    Value A = M.freshValue(), B = M.freshValue(), C = M.freshValue(),
          D = M.freshValue();
    M.appendTxn(S[0], {Operation::write(X, A)});
    M.appendTxn(S[0], {Operation::write(X, B), Operation::write(Z, C)});
    M.appendTxn(S[1], {Operation::read(Z, C), Operation::write(W, D)});
    M.appendTxn(S[2], {Operation::read(W, D), Operation::read(X, A)});
    break;
  }

  case AnomalyKind::CausalityCycle: {
    // Gadget: two transactions read each other's writes (a wr 2-cycle).
    std::vector<SessionId> S = M.pickSessions(2, Rand);
    Key P = M.freshKey(), Q = M.freshKey();
    Value A = M.freshValue(), B = M.freshValue();
    M.appendTxn(S[0], {Operation::write(P, A), Operation::read(Q, B)});
    M.appendTxn(S[1], {Operation::write(Q, B), Operation::read(P, A)});
    break;
  }
  }

  return M.rebuild(Err);
}
