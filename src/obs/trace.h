//===- obs/trace.h - Per-thread lock-free span tracing -----------*- C++ -*-===//
//
// Part of the AWDIT reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The tracing half of the observability core (docs/OBSERVABILITY.md): a
/// per-thread, lock-free ring buffer of timed spans that dumps
/// Chrome-trace-event JSON (Perfetto-loadable) on demand. Tracing is
/// always compiled in and almost free when off: `AWDIT_SPAN("name")`
/// costs one relaxed atomic load and a predictable branch while disabled
/// (proven by bench/trace_overhead.cpp's CI gate), and only touches the
/// clock and the ring when an operator has turned it on (`awdit monitor
/// --trace FILE`, `awdit serve --trace-dir DIR` + the `TRACE` verb).
///
/// Span names are string literals with a dotted `layer.phase` scheme
/// ("ingest.decode", "flush.merge", "checkpoint.store", "server.pump");
/// the recorder stores the pointer, never the bytes, so a span is a
/// handful of word-sized writes into thread-local storage. Each thread's
/// ring holds the most recent TraceRingSlots events — a dump is a window
/// onto the recent past, not an unbounded log. Ring storage is allocated
/// lazily on the first recorded event (naming a thread while tracing is
/// off costs bytes, not a ring), and rings with events outlive their
/// threads so short-lived shard workers still appear in an end-of-run
/// dump; traceClear() retires dead threads' rings and new threads reuse
/// cleared ones, so a long-running server (where every `TRACE on`
/// clears) does not accumulate a ring per thread ever started.
///
/// Readers (dump) race writers by design: every slot is a tiny seqlock of
/// relaxed atomics, and a slot caught mid-overwrite is skipped, never
/// torn. The record path takes no lock and never blocks, so it is safe
/// from any pipeline stage, TSan-clean by construction.
///
//===----------------------------------------------------------------------===//

#ifndef AWDIT_OBS_TRACE_H
#define AWDIT_OBS_TRACE_H

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>

namespace awdit {
namespace obs {

/// Events each thread's ring retains (the most recent ones win).
inline constexpr size_t TraceRingSlots = 8192;

namespace detail {
extern std::atomic<bool> TraceOn;
/// Records a completed span; called only when tracing was on at span
/// entry. \p StartNs is traceNowNanos() at construction.
void recordSpan(const char *Name, uint64_t StartNs);
/// Records a counter sample (Chrome "C" event); caller checks the flag.
void recordCounter(const char *Name, double Value);
} // namespace detail

/// True while spans are being recorded. Relaxed: the flag gates a
/// diagnostic, not an invariant — a span racing the flip is kept or
/// dropped whole, either is fine.
inline bool traceEnabled() {
  return detail::TraceOn.load(std::memory_order_relaxed);
}

/// Flips recording on or off. Turning tracing off does not discard what
/// was recorded — a dump after `TRACE off` still returns the window.
void setTraceEnabled(bool On);

/// Monotonic nanoseconds since the first trace call of the process.
uint64_t traceNowNanos();

/// Names the calling thread in dumps ("applier", "shard-worker-1", ...);
/// emitted as Chrome thread_name metadata so Perfetto labels the track.
void setTraceThreadName(std::string_view Name);

/// Serializes every live ring into one Chrome-trace-event JSON object
/// (`{"traceEvents":[...]}`), oldest-first per thread. Safe to call while
/// recording continues; slots overwritten mid-read are skipped.
std::string traceDumpJson();

/// traceDumpJson() to \p Path (atomically, via rename). Returns false
/// with a message in \p Err on I/O failure.
bool writeTraceFile(const std::string &Path, std::string *Err);

/// Forgets everything recorded so far (rings stay allocated). Dumps only
/// contain events recorded after the last clear — how tests isolate
/// phases, and what `TRACE on` does so a session starts a fresh window.
void traceClear();

/// RAII span recorder. The constructor reads the enable flag once; a span
/// that started while tracing was on is recorded even if tracing is
/// turned off before it ends (the flag is a sampling gate, not a fence).
class TraceSpan {
public:
  explicit TraceSpan(const char *SpanName) {
    if (traceEnabled()) {
      Name = SpanName;
      StartNs = traceNowNanos();
    }
  }
  ~TraceSpan() {
    if (Name)
      detail::recordSpan(Name, StartNs);
  }
  TraceSpan(const TraceSpan &) = delete;
  TraceSpan &operator=(const TraceSpan &) = delete;

private:
  const char *Name = nullptr;
  uint64_t StartNs = 0;
};

/// Records a named counter sample (rendered as a Perfetto counter track),
/// e.g. queue depths. No-op while tracing is off.
inline void traceCounter(const char *Name, double Value) {
  if (traceEnabled())
    detail::recordCounter(Name, Value);
}

} // namespace obs
} // namespace awdit

#define AWDIT_SPAN_CONCAT2(A, B) A##B
#define AWDIT_SPAN_CONCAT(A, B) AWDIT_SPAN_CONCAT2(A, B)
/// Opens a span covering the enclosing scope. NAME must be a string
/// literal (the recorder keeps the pointer).
#define AWDIT_SPAN(NAME)                                                       \
  ::awdit::obs::TraceSpan AWDIT_SPAN_CONCAT(AwditTraceSpan_, __LINE__)(NAME)

#endif // AWDIT_OBS_TRACE_H
