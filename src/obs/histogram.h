//===- obs/histogram.h - Lock-free log-scale latency histograms --*- C++ -*-===//
//
// Part of the AWDIT reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The histogram half of the observability core (docs/OBSERVABILITY.md):
/// fixed-size, log-linear latency histograms with a lock-free record path
/// — one relaxed fetch_add per sample — safe to hit from every pipeline
/// stage concurrently. Values are microseconds (or unitless sample values
/// for depth histograms).
///
/// Bucketing is HDR-style log-linear: values below 2^SubBucketBits map
/// exactly, above that each power-of-two octave splits into
/// 2^SubBucketBits sub-buckets, so quantiles resolve to ~25% relative
/// error across nine decades (1us .. ~134s) in 104 fixed buckets plus an
/// overflow bucket. Two histograms with the same layout merge by bucket
/// addition, and snapshots subtract, which is what turns the cumulative
/// per-monitor flush histogram into per-interval p50/p99 on the
/// `--stats-interval` line.
///
/// Prometheus rendering emits the classic `_bucket{le=...}/_sum/_count`
/// triple. To keep scrapes small, `le` boundaries are the octave edges
/// only (1us, 2us, 4us, ... in seconds) — the fine sub-buckets stay
/// internal, serving percentile() and the `STATS deep` JSON.
///
/// All recorded state is host-local wall-clock telemetry: it is never
/// checkpointed and never feeds a verdict, so resume byte-identity and
/// cross-thread-count determinism are untouched.
///
//===----------------------------------------------------------------------===//

#ifndef AWDIT_OBS_HISTOGRAM_H
#define AWDIT_OBS_HISTOGRAM_H

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace awdit {
namespace obs {

/// Sub-buckets per octave = 2^SubBucketBits (4: ~25% quantile error).
inline constexpr unsigned SubBucketBits = 2;
/// Highest octave tracked exactly; values above 2^(MaxOctave+1)-ish land
/// in the overflow bucket. 26 → ~134 seconds in microseconds.
inline constexpr unsigned MaxOctave = 26;
/// Finite buckets (excluding overflow): exact values 0..3, then
/// (MaxOctave - SubBucketBits + 1) octaves x 4 sub-buckets.
inline constexpr size_t NumHistogramBuckets =
    ((MaxOctave - SubBucketBits + 1) << SubBucketBits) + (1u << SubBucketBits);

/// The finite-bucket index of \p Value (overflow excluded: values past
/// the last bucket return NumHistogramBuckets).
size_t histogramBucketFor(uint64_t Value);

/// Inclusive upper bound of finite bucket \p Index.
uint64_t histogramBucketUpper(size_t Index);

/// A point-in-time copy of one histogram: plain integers, mergeable and
/// subtractable. This is what percentiles, Prometheus rendering, and the
/// STATS deep JSON are computed from.
struct HistogramSnapshot {
  std::vector<uint64_t> Buckets; ///< NumHistogramBuckets + 1 (overflow)
  uint64_t Count = 0;
  uint64_t Sum = 0;

  HistogramSnapshot() : Buckets(NumHistogramBuckets + 1, 0) {}

  void add(const HistogramSnapshot &Other);
  /// this - Other, element-wise (Other must be an earlier snapshot of the
  /// same histogram; negative deltas clamp to zero).
  void minus(const HistogramSnapshot &Other);

  /// The value at quantile \p Q in [0, 1]: the inclusive upper bound of
  /// the bucket where the cumulative count crosses Q * Count. Returns 0
  /// on an empty snapshot; overflow-bucket quantiles return the last
  /// finite bound (a floor — the true value is larger).
  uint64_t percentile(double Q) const;

  /// Appends `NAME_bucket{...le="..."}` / `NAME_sum` / `NAME_count` lines
  /// (HELP/TYPE are the caller's, once per family). \p Labels is either
  /// empty or `key="value"[,...]` without braces; `le` is appended to it.
  /// Bucket bounds are rendered in seconds (micros / 1e6) at octave
  /// granularity; \p Unitless suppresses the seconds conversion for
  /// sample-value histograms (queue depths).
  void renderProm(std::string &Out, const std::string &Name,
                  const std::string &Labels, bool Unitless = false) const;

  /// `{"count":N,"sum_micros":S,"p50":...,"p90":...,"p99":...,"max":...}`
  /// — the STATS deep building block. Quantile values are micros.
  std::string percentilesJson() const;
};

/// The live histogram: fixed atomics, wait-free record. One per metered
/// site; layout is identical across instances so snapshots merge.
class LatencyHistogram {
public:
  LatencyHistogram() = default;
  LatencyHistogram(const LatencyHistogram &) = delete;
  LatencyHistogram &operator=(const LatencyHistogram &) = delete;

  void record(uint64_t Value) {
    size_t I = histogramBucketFor(Value);
    Counts[I].fetch_add(1, std::memory_order_relaxed);
    TotalCount.fetch_add(1, std::memory_order_relaxed);
    TotalSum.fetch_add(Value, std::memory_order_relaxed);
  }

  /// Approximate consistency: buckets are read with relaxed loads while
  /// recording may continue. Count/Sum are clamped to the bucket total so
  /// a snapshot is always internally coherent.
  HistogramSnapshot snapshot() const;

  bool empty() const {
    return TotalCount.load(std::memory_order_relaxed) == 0;
  }

private:
  std::atomic<uint64_t> Counts[NumHistogramBuckets + 1] = {};
  std::atomic<uint64_t> TotalCount{0};
  std::atomic<uint64_t> TotalSum{0};
};

/// The flush phases metered by checker/monitor.cpp. Pk overlaps the
/// others (it accumulates inside the topological-order maintenance that
/// the delta/merge phases call into); the rest partition a flush.
enum class FlushPhase : unsigned {
  DeltaBuild = 0,
  Speculate,
  Merge,
  Pk,
  Finalize
};
inline constexpr unsigned NumFlushPhases = 5;
const char *flushPhaseName(FlushPhase P); ///< "delta_build", "speculate", ...

/// The sharded-ingest stages metered by io/sharded_ingest.cpp.
enum class IngestStage : unsigned { Reader = 0, Decode, Apply };
inline constexpr unsigned NumIngestStages = 3;
const char *ingestStageName(IngestStage S); ///< "reader", "decode", "apply"

/// Process-wide histogram registry: every layer records into these, the
/// server's /metrics renders them, `awdit monitor` dumps nothing (they
/// cost nothing unread). Aggregated across sessions/monitors by design —
/// per-stream breakdowns ride the per-session counters instead.
struct PipelineMetrics {
  LatencyHistogram FlushTotal;               ///< whole checking pass
  LatencyHistogram FlushPhases[NumFlushPhases];
  LatencyHistogram IngestStages[NumIngestStages];
  LatencyHistogram IngestQueueWait;          ///< SPSC push/pop block time
  LatencyHistogram IngestQueueDepth;         ///< items, sampled at push
  LatencyHistogram CheckpointV1Write;        ///< encode + write + rename
  LatencyHistogram CheckpointStoreCommit;    ///< chunk + append + fsync
  LatencyHistogram ServerPump;               ///< one session actor item
  LatencyHistogram ServerHello;              ///< HELLO parse -> OK queued
  LatencyHistogram ServerOutputQueue;        ///< reply enqueue -> wire
  LatencyHistogram ServerOutqDepth;          ///< bytes, sampled at enqueue
};

PipelineMetrics &metrics();

/// Scoped micros timer: records wall-clock into a histogram and, when
/// \p Accumulator is non-null, adds the same micros there (the host-local
/// per-phase totals). Cheap, but not free — meter stages, not lines.
class ScopedLatency {
public:
  explicit ScopedLatency(LatencyHistogram &H,
                         uint64_t *Accumulator = nullptr)
      : H(H), Accumulator(Accumulator), StartNs(traceClockNanos()) {}
  ~ScopedLatency() {
    uint64_t Micros = (traceClockNanos() - StartNs) / 1000;
    H.record(Micros);
    if (Accumulator)
      *Accumulator += Micros;
  }
  ScopedLatency(const ScopedLatency &) = delete;
  ScopedLatency &operator=(const ScopedLatency &) = delete;

private:
  static uint64_t traceClockNanos();
  LatencyHistogram &H;
  uint64_t *Accumulator;
  uint64_t StartNs;
};

} // namespace obs
} // namespace awdit

#endif // AWDIT_OBS_HISTOGRAM_H
