//===- obs/histogram.cpp - Lock-free log-scale latency histograms ----------===//

#include "obs/histogram.h"

#include "obs/trace.h"

#include <algorithm>
#include <bit>
#include <cstdio>

using namespace awdit;
using namespace awdit::obs;

size_t awdit::obs::histogramBucketFor(uint64_t Value) {
  constexpr uint64_t SubCount = uint64_t(1) << SubBucketBits;
  if (Value < SubCount)
    return static_cast<size_t>(Value);
  unsigned Octave = 63 - static_cast<unsigned>(std::countl_zero(Value));
  if (Octave > MaxOctave)
    return NumHistogramBuckets; // overflow
  uint64_t Sub = (Value >> (Octave - SubBucketBits)) & (SubCount - 1);
  return (static_cast<size_t>(Octave - SubBucketBits) << SubBucketBits) +
         SubCount + static_cast<size_t>(Sub);
}

uint64_t awdit::obs::histogramBucketUpper(size_t Index) {
  constexpr uint64_t SubCount = uint64_t(1) << SubBucketBits;
  if (Index < SubCount)
    return Index;
  size_t Block = (Index - SubCount) >> SubBucketBits;
  unsigned Octave = static_cast<unsigned>(Block) + SubBucketBits;
  uint64_t Sub = (Index - SubCount) & (SubCount - 1);
  return (uint64_t(1) << Octave) + ((Sub + 1) << (Octave - SubBucketBits)) -
         1;
}

void HistogramSnapshot::add(const HistogramSnapshot &Other) {
  for (size_t I = 0; I < Buckets.size(); ++I)
    Buckets[I] += Other.Buckets[I];
  Count += Other.Count;
  Sum += Other.Sum;
}

void HistogramSnapshot::minus(const HistogramSnapshot &Other) {
  for (size_t I = 0; I < Buckets.size(); ++I)
    Buckets[I] -= std::min(Buckets[I], Other.Buckets[I]);
  Count -= std::min(Count, Other.Count);
  Sum -= std::min(Sum, Other.Sum);
}

uint64_t HistogramSnapshot::percentile(double Q) const {
  if (Count == 0)
    return 0;
  Q = std::min(std::max(Q, 0.0), 1.0);
  uint64_t Target = static_cast<uint64_t>(Q * static_cast<double>(Count));
  if (Target == 0)
    Target = 1;
  uint64_t Seen = 0;
  for (size_t I = 0; I < Buckets.size(); ++I) {
    Seen += Buckets[I];
    if (Seen >= Target)
      return I < NumHistogramBuckets
                 ? histogramBucketUpper(I)
                 : histogramBucketUpper(NumHistogramBuckets - 1);
  }
  return histogramBucketUpper(NumHistogramBuckets - 1);
}

namespace {

/// Octave-edge rendering: one cumulative line per full octave (the last
/// sub-bucket of each), so a scrape carries ~27 `le` bounds instead of
/// the 105 internal buckets.
bool isOctaveEdge(size_t Index) {
  constexpr size_t SubCount = size_t(1) << SubBucketBits;
  if (Index < SubCount)
    return Index == SubCount - 1;
  return ((Index - SubCount) & (SubCount - 1)) == SubCount - 1;
}

void appendLeBound(std::string &Out, uint64_t UpperMicros, bool Unitless) {
  char Buf[40];
  if (Unitless)
    std::snprintf(Buf, sizeof(Buf), "%llu",
                  static_cast<unsigned long long>(UpperMicros));
  else
    std::snprintf(Buf, sizeof(Buf), "%.9g",
                  static_cast<double>(UpperMicros) / 1e6);
  Out += Buf;
}

} // namespace

void HistogramSnapshot::renderProm(std::string &Out, const std::string &Name,
                                   const std::string &Labels,
                                   bool Unitless) const {
  std::string Prefix = Labels.empty() ? "" : Labels + ",";
  uint64_t Cum = 0;
  for (size_t I = 0; I < NumHistogramBuckets; ++I) {
    Cum += Buckets[I];
    if (!isOctaveEdge(I))
      continue;
    Out += Name;
    Out += "_bucket{";
    Out += Prefix;
    Out += "le=\"";
    appendLeBound(Out, histogramBucketUpper(I), Unitless);
    Out += "\"} ";
    Out += std::to_string(Cum);
    Out += '\n';
  }
  Out += Name;
  Out += "_bucket{";
  Out += Prefix;
  Out += "le=\"+Inf\"} ";
  Out += std::to_string(Count);
  Out += '\n';
  std::string LabelBlock = Labels.empty() ? "" : "{" + Labels + "}";
  Out += Name;
  Out += "_sum";
  Out += LabelBlock;
  Out += ' ';
  if (Unitless) {
    Out += std::to_string(Sum);
  } else {
    char Buf[40];
    std::snprintf(Buf, sizeof(Buf), "%.9g",
                  static_cast<double>(Sum) / 1e6);
    Out += Buf;
  }
  Out += '\n';
  Out += Name;
  Out += "_count";
  Out += LabelBlock;
  Out += ' ';
  Out += std::to_string(Count);
  Out += '\n';
}

std::string HistogramSnapshot::percentilesJson() const {
  std::string Out = "{\"count\":" + std::to_string(Count) +
                    ",\"sum_micros\":" + std::to_string(Sum);
  const std::pair<const char *, double> Quantiles[] = {
      {"p50", 0.50}, {"p90", 0.90}, {"p99", 0.99}};
  for (auto [Label, Q] : Quantiles) {
    Out += ",\"";
    Out += Label;
    Out += "_micros\":";
    Out += std::to_string(percentile(Q));
  }
  Out += ",\"max_micros\":";
  Out += std::to_string(percentile(1.0));
  Out += "}";
  return Out;
}

HistogramSnapshot LatencyHistogram::snapshot() const {
  HistogramSnapshot S;
  uint64_t BucketTotal = 0;
  for (size_t I = 0; I <= NumHistogramBuckets; ++I) {
    S.Buckets[I] = Counts[I].load(std::memory_order_relaxed);
    BucketTotal += S.Buckets[I];
  }
  // Count is derived from the buckets themselves (not TotalCount, which
  // races individual records) so cumulative rendering stays monotone
  // through the +Inf line even mid-record.
  S.Count = BucketTotal;
  S.Sum = TotalSum.load(std::memory_order_relaxed);
  return S;
}

const char *awdit::obs::flushPhaseName(FlushPhase P) {
  switch (P) {
  case FlushPhase::DeltaBuild:
    return "delta_build";
  case FlushPhase::Speculate:
    return "speculate";
  case FlushPhase::Merge:
    return "merge";
  case FlushPhase::Pk:
    return "pk";
  case FlushPhase::Finalize:
    return "finalize";
  }
  return "unknown";
}

const char *awdit::obs::ingestStageName(IngestStage S) {
  switch (S) {
  case IngestStage::Reader:
    return "reader";
  case IngestStage::Decode:
    return "decode";
  case IngestStage::Apply:
    return "apply";
  }
  return "unknown";
}

PipelineMetrics &awdit::obs::metrics() {
  static PipelineMetrics *M = new PipelineMetrics; // never destroyed:
  return *M; // worker threads may record during static teardown
}

uint64_t ScopedLatency::traceClockNanos() { return traceNowNanos(); }
