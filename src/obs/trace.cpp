//===- obs/trace.cpp - Per-thread lock-free span tracing -------------------===//

#include "obs/trace.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <memory>
#include <mutex>
#include <vector>

using namespace awdit;
using namespace awdit::obs;

std::atomic<bool> awdit::obs::detail::TraceOn{false};

namespace {

enum class EventKind : uint32_t { Span = 0, Counter = 1 };

/// One ring slot: a seqlock of relaxed atomics. The owner thread writes
/// (odd seq → fields → even seq with a release fence between the odd
/// store and the fields, release on the closing store); a dumper accepts
/// a slot only when it reads the same even sequence before and after the
/// fields, so a slot being overwritten is skipped, never torn. All-atomic
/// fields keep the race well-defined (and TSan-clean).
struct Slot {
  std::atomic<uint32_t> Seq{0};
  std::atomic<uint32_t> Kind{0};
  std::atomic<const char *> Name{nullptr};
  std::atomic<uint64_t> StartNs{0};
  std::atomic<uint64_t> DurNs{0}; // Counter events: the value's bits
};

struct ThreadRing {
  explicit ThreadRing(uint32_t Tid) : Tid(Tid) {}
  ~ThreadRing() { delete[] SlotsPtr.load(std::memory_order_relaxed); }
  /// Dump-track id; rewritten when a detached ring is reused (atomic so a
  /// concurrent dump reads old-or-new, never garbage).
  std::atomic<uint32_t> Tid;
  /// The slot array, allocated by the owner thread on the first recorded
  /// event (~256KB) — a thread that only names itself while tracing is
  /// off costs a few dozen bytes, not a ring. Owner-published with
  /// release; dumpers load with acquire and skip a null ring.
  std::atomic<Slot *> SlotsPtr{nullptr};
  /// Monotonic write index; owner-incremented, dumper-read.
  std::atomic<uint64_t> Next{0};
  /// Events below this index are cleared (traceClear sets it to Next).
  std::atomic<uint64_t> DroppedBefore{0};
  /// Guarded by the registry mutex (set rarely, read at dump).
  std::string Name;
  /// The owner thread exited; the ring stays dumpable until a new thread
  /// claims it. Guarded by the registry mutex.
  bool Detached = false;
};

struct Registry {
  std::mutex Mu;
  std::vector<std::shared_ptr<ThreadRing>> Rings;
  uint32_t NextTid = 1;
};

Registry &registry() {
  static Registry *R = new Registry; // never destroyed: threads may
  return *R;                         // record during static teardown
}

/// Thread-exit bookkeeping: a ring that never recorded an event is
/// removed outright (so naming threads with tracing off — every hot
/// upgrade's fresh workers — costs nothing after they exit); a ring with
/// events is left in the registry for post-mortem dumps but marked
/// reusable, so the registry holds at most one allocated ring per
/// historical peak thread, not one per thread ever started.
struct RingHandle {
  std::shared_ptr<ThreadRing> Ring;
  ~RingHandle() {
    if (!Ring)
      return;
    Registry &R = registry();
    std::lock_guard<std::mutex> Lock(R.Mu);
    if (!Ring->SlotsPtr.load(std::memory_order_relaxed)) {
      for (size_t I = 0; I < R.Rings.size(); ++I) {
        if (R.Rings[I] == Ring) {
          R.Rings.erase(R.Rings.begin() + I);
          break;
        }
      }
      return;
    }
    Ring->Detached = true;
  }
};

ThreadRing &threadRing() {
  thread_local RingHandle H = [] {
    Registry &R = registry();
    std::lock_guard<std::mutex> Lock(R.Mu);
    for (auto &P : R.Rings) {
      // Reuse a dead thread's allocation under a fresh identity — but
      // only once its window is empty (traceClear ran since it died):
      // a detached ring with events is a post-mortem record that a dump
      // may still want (short-lived shard workers in an end-of-run
      // trace), and wiping it here would race that dump.
      if (!P->Detached || P->Next.load(std::memory_order_acquire) !=
                              P->DroppedBefore.load(std::memory_order_acquire))
        continue;
      P->Detached = false;
      P->Tid.store(R.NextTid++, std::memory_order_relaxed);
      P->Name.clear();
      return RingHandle{P};
    }
    auto P = std::make_shared<ThreadRing>(R.NextTid++);
    R.Rings.push_back(P);
    return RingHandle{P};
  }();
  return *H.Ring;
}

void writeSlot(ThreadRing &Ring, EventKind Kind, const char *Name,
               uint64_t StartNs, uint64_t DurBits) {
  Slot *Slots = Ring.SlotsPtr.load(std::memory_order_relaxed);
  if (!Slots) {
    Slots = new Slot[TraceRingSlots];
    Ring.SlotsPtr.store(Slots, std::memory_order_release);
  }
  uint64_t I = Ring.Next.load(std::memory_order_relaxed);
  Slot &S = Slots[I & (TraceRingSlots - 1)];
  uint32_t Seq = S.Seq.load(std::memory_order_relaxed);
  S.Seq.store(Seq + 1, std::memory_order_relaxed);
  std::atomic_thread_fence(std::memory_order_release);
  S.Kind.store(static_cast<uint32_t>(Kind), std::memory_order_relaxed);
  S.Name.store(Name, std::memory_order_relaxed);
  S.StartNs.store(StartNs, std::memory_order_relaxed);
  S.DurNs.store(DurBits, std::memory_order_relaxed);
  S.Seq.store(Seq + 2, std::memory_order_release);
  Ring.Next.store(I + 1, std::memory_order_release);
}

/// A stable copy of one slot, or false when it was mid-overwrite.
struct EventCopy {
  EventKind Kind;
  const char *Name;
  uint64_t StartNs;
  uint64_t DurBits;
};

bool readSlot(const Slot &S, EventCopy &Out) {
  uint32_t S1 = S.Seq.load(std::memory_order_acquire);
  if (S1 & 1)
    return false;
  Out.Kind = static_cast<EventKind>(S.Kind.load(std::memory_order_relaxed));
  Out.Name = S.Name.load(std::memory_order_relaxed);
  Out.StartNs = S.StartNs.load(std::memory_order_relaxed);
  Out.DurBits = S.DurNs.load(std::memory_order_relaxed);
  std::atomic_thread_fence(std::memory_order_acquire);
  return S.Seq.load(std::memory_order_relaxed) == S1 && Out.Name != nullptr;
}

void appendJsonEscaped(std::string &Out, std::string_view S) {
  for (char C : S) {
    if (C == '"' || C == '\\') {
      Out += '\\';
      Out += C;
    } else if (static_cast<unsigned char>(C) < 0x20) {
      char Buf[8];
      std::snprintf(Buf, sizeof(Buf), "\\u%04x", C);
      Out += Buf;
    } else {
      Out += C;
    }
  }
}

void appendMicros(std::string &Out, uint64_t Ns) {
  char Buf[32];
  std::snprintf(Buf, sizeof(Buf), "%llu.%03llu",
                static_cast<unsigned long long>(Ns / 1000),
                static_cast<unsigned long long>(Ns % 1000));
  Out += Buf;
}

} // namespace

uint64_t awdit::obs::traceNowNanos() {
  static const std::chrono::steady_clock::time_point Epoch =
      std::chrono::steady_clock::now();
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - Epoch)
          .count());
}

void awdit::obs::setTraceEnabled(bool On) {
  (void)traceNowNanos(); // pin the epoch before the first span
  detail::TraceOn.store(On, std::memory_order_relaxed);
}

void awdit::obs::setTraceThreadName(std::string_view Name) {
  ThreadRing &Ring = threadRing();
  Registry &R = registry();
  std::lock_guard<std::mutex> Lock(R.Mu);
  Ring.Name.assign(Name.data(), Name.size());
}

void awdit::obs::detail::recordSpan(const char *Name, uint64_t StartNs) {
  writeSlot(threadRing(), EventKind::Span, Name, StartNs,
            traceNowNanos() - StartNs);
}

void awdit::obs::detail::recordCounter(const char *Name, double Value) {
  uint64_t Bits;
  static_assert(sizeof(Bits) == sizeof(Value));
  __builtin_memcpy(&Bits, &Value, sizeof(Bits));
  writeSlot(threadRing(), EventKind::Counter, Name, traceNowNanos(), Bits);
}

void awdit::obs::traceClear() {
  Registry &R = registry();
  std::lock_guard<std::mutex> Lock(R.Mu);
  for (auto &Ring : R.Rings)
    Ring->DroppedBefore.store(Ring->Next.load(std::memory_order_acquire),
                              std::memory_order_release);
  // A clear also retires dead threads' rings outright: their only reason
  // to linger was the post-mortem window just dropped. This is what keeps
  // a long-running server's registry bounded — every `TRACE on` (which
  // clears) reclaims the rings of all exited workers.
  R.Rings.erase(std::remove_if(R.Rings.begin(), R.Rings.end(),
                               [](const std::shared_ptr<ThreadRing> &P) {
                                 return P->Detached;
                               }),
                R.Rings.end());
}

std::string awdit::obs::traceDumpJson() {
  // Snapshot the ring list, then walk each ring without the lock: the
  // record path never takes it, so holding it would not stop writers
  // anyway — the per-slot seqlocks carry the race.
  std::vector<std::shared_ptr<ThreadRing>> Rings;
  std::vector<std::string> Names;
  {
    Registry &R = registry();
    std::lock_guard<std::mutex> Lock(R.Mu);
    Rings = R.Rings;
    for (auto &Ring : Rings)
      Names.push_back(Ring->Name);
  }

  std::string Out = "{\"traceEvents\":[";
  bool First = true;
  auto Sep = [&] {
    if (!First)
      Out += ",\n";
    First = false;
  };
  for (size_t I = 0; I < Rings.size(); ++I) {
    const ThreadRing &Ring = *Rings[I];
    uint32_t Tid = Ring.Tid.load(std::memory_order_relaxed);
    if (!Names[I].empty()) {
      Sep();
      Out += "{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":1,\"tid\":";
      Out += std::to_string(Tid);
      Out += ",\"args\":{\"name\":\"";
      appendJsonEscaped(Out, Names[I]);
      Out += "\"}}";
    }
    const Slot *Slots = Ring.SlotsPtr.load(std::memory_order_acquire);
    if (!Slots)
      continue; // Named but never recorded: no events to walk.
    uint64_t End = Ring.Next.load(std::memory_order_acquire);
    uint64_t Floor = Ring.DroppedBefore.load(std::memory_order_acquire);
    uint64_t Lo = End > TraceRingSlots ? End - TraceRingSlots : 0;
    if (Lo < Floor)
      Lo = Floor;
    for (uint64_t J = Lo; J < End; ++J) {
      EventCopy E;
      if (!readSlot(Slots[J & (TraceRingSlots - 1)], E))
        continue;
      Sep();
      if (E.Kind == EventKind::Counter) {
        double Value;
        __builtin_memcpy(&Value, &E.DurBits, sizeof(Value));
        char Buf[32];
        std::snprintf(Buf, sizeof(Buf), "%.6g", Value);
        Out += "{\"ph\":\"C\",\"name\":\"";
        appendJsonEscaped(Out, E.Name);
        Out += "\",\"cat\":\"awdit\",\"pid\":1,\"tid\":";
        Out += std::to_string(Tid);
        Out += ",\"ts\":";
        appendMicros(Out, E.StartNs);
        Out += ",\"args\":{\"value\":";
        Out += Buf;
        Out += "}}";
      } else {
        Out += "{\"ph\":\"X\",\"name\":\"";
        appendJsonEscaped(Out, E.Name);
        Out += "\",\"cat\":\"awdit\",\"pid\":1,\"tid\":";
        Out += std::to_string(Tid);
        Out += ",\"ts\":";
        appendMicros(Out, E.StartNs);
        Out += ",\"dur\":";
        appendMicros(Out, E.DurBits);
        Out += "}";
      }
    }
  }
  Out += "]}\n";
  return Out;
}

bool awdit::obs::writeTraceFile(const std::string &Path, std::string *Err) {
  auto Fail = [&](const std::string &Msg) {
    if (Err)
      *Err = Msg;
    return false;
  };
  std::string Json = traceDumpJson();
  std::string Tmp = Path + ".tmp";
  std::FILE *F = std::fopen(Tmp.c_str(), "wb");
  if (!F)
    return Fail("cannot open '" + Tmp + "' for writing");
  size_t Written = std::fwrite(Json.data(), 1, Json.size(), F);
  bool Ok = Written == Json.size();
  if (std::fclose(F) != 0)
    Ok = false;
  if (!Ok) {
    std::remove(Tmp.c_str());
    return Fail("short write to '" + Tmp + "'");
  }
  if (std::rename(Tmp.c_str(), Path.c_str()) != 0) {
    std::remove(Tmp.c_str());
    return Fail("cannot rename '" + Tmp + "' to '" + Path + "'");
  }
  return true;
}
