//===- graph/incremental_topo.cpp - Dynamic topological order --------------===//

#include "graph/incremental_topo.h"

#include "support/assert.h"
#include "support/serialize.h"

#include <algorithm>

using namespace awdit;

void IncrementalTopoOrder::addNodes(size_t Count) {
  size_t N = Pos.size();
  Out.resize(N + Count);
  In.resize(N + Count);
  Pos.resize(N + Count);
  Mark.resize(N + Count, 0);
  Parent.resize(N + Count, 0);
  // New nodes join at the end of the order: nothing points at them yet, so
  // any suffix placement is valid.
  for (size_t I = N; I < N + Count; ++I)
    Pos[I] = static_cast<uint32_t>(I);
}

bool IncrementalTopoOrder::discoverForward(uint32_t From, uint32_t To,
                                          uint32_t Limit,
                                          std::vector<uint32_t> &Region) {
  Stack.clear();
  Stack.push_back(To);
  Mark[To] = Epoch;
  while (!Stack.empty()) {
    uint32_t U = Stack.back();
    Stack.pop_back();
    Region.push_back(U);
    for (uint32_t W : Out[U]) {
      if (W == From) {
        Parent[From] = U;
        return false;
      }
      if (Pos[W] < Limit && Mark[W] != Epoch) {
        Mark[W] = Epoch;
        Parent[W] = U;
        Stack.push_back(W);
      }
    }
  }
  return true;
}

bool IncrementalTopoOrder::addEdge(uint32_t From, uint32_t To,
                                   std::vector<uint32_t> *CyclePath) {
  AWDIT_ASSERT(From < Pos.size() && To < Pos.size(),
               "addEdge: unknown node");
  if (From == To) {
    if (CyclePath) {
      CyclePath->clear();
      CyclePath->push_back(To);
    }
    return false;
  }
  uint32_t PosFrom = Pos[From], PosTo = Pos[To];
  if (PosFrom < PosTo) {
    Out[From].push_back(To);
    In[To].push_back(From);
    ++EdgeCount;
    return true;
  }

  // The edge points backwards in the current order: discover the affected
  // region [PosTo, PosFrom] and reorder it (Pearce–Kelly).
  ++Epoch;
  std::vector<uint32_t> Fwd, Bwd;
  if (!discoverForward(From, To, PosFrom, Fwd)) {
    // To already reaches From: the new edge would close a cycle. Extract
    // the discovery path To -> ... -> From from the parent pointers.
    if (CyclePath) {
      CyclePath->clear();
      for (uint32_t N = From; N != To; N = Parent[N])
        CyclePath->push_back(N);
      CyclePath->push_back(To);
      std::reverse(CyclePath->begin(), CyclePath->end());
    }
    return false;
  }

  // Backward discovery from From, bounded below by PosTo.
  Stack.clear();
  Stack.push_back(From);
  Mark[From] = Epoch;
  while (!Stack.empty()) {
    uint32_t U = Stack.back();
    Stack.pop_back();
    Bwd.push_back(U);
    for (uint32_t W : In[U]) {
      if (Pos[W] > PosTo && Mark[W] != Epoch) {
        Mark[W] = Epoch;
        Stack.push_back(W);
      }
    }
  }

  // Reorder: the backward set (things reaching From) takes the smallest
  // affected positions in its existing relative order, then the forward
  // set (things reachable from To). That puts From before To while
  // preserving every other constraint inside the region.
  auto ByPos = [this](uint32_t A, uint32_t B) { return Pos[A] < Pos[B]; };
  std::sort(Fwd.begin(), Fwd.end(), ByPos);
  std::sort(Bwd.begin(), Bwd.end(), ByPos);
  std::vector<uint32_t> Slots;
  Slots.reserve(Fwd.size() + Bwd.size());
  for (uint32_t N : Bwd)
    Slots.push_back(Pos[N]);
  for (uint32_t N : Fwd)
    Slots.push_back(Pos[N]);
  std::sort(Slots.begin(), Slots.end());
  size_t Next = 0;
  for (uint32_t N : Bwd)
    Pos[N] = Slots[Next++];
  for (uint32_t N : Fwd)
    Pos[N] = Slots[Next++];

  Out[From].push_back(To);
  In[To].push_back(From);
  ++EdgeCount;
  return true;
}

void IncrementalTopoOrder::removeEdge(uint32_t From, uint32_t To) {
  auto Drop = [](std::vector<uint32_t> &List, uint32_t Value) {
    auto It = std::find(List.begin(), List.end(), Value);
    AWDIT_ASSERT(It != List.end(), "removeEdge: edge not present");
    *It = List.back();
    List.pop_back();
  };
  Drop(Out[From], To);
  Drop(In[To], From);
  --EdgeCount;
}

void IncrementalTopoOrder::clearEdgesAndCompact(uint32_t Cut) {
  for (std::vector<uint32_t> &List : Out)
    List.clear();
  for (std::vector<uint32_t> &List : In)
    List.clear();
  EdgeCount = 0;
  compactPrefix(Cut);
}

void IncrementalTopoOrder::compactPrefix(uint32_t Cut) {
  if (Cut == 0)
    return;
  size_t N = Pos.size();
  AWDIT_ASSERT(Cut <= N, "compactPrefix: cut beyond node count");
  for (uint32_t Node = 0; Node < Cut; ++Node)
    AWDIT_ASSERT(Out[Node].empty() && In[Node].empty(),
                 "compactPrefix: dropped node still has edges");

  Out.erase(Out.begin(), Out.begin() + Cut);
  In.erase(In.begin(), In.begin() + Cut);
  Pos.erase(Pos.begin(), Pos.begin() + Cut);
  size_t Kept = N - Cut;
  for (size_t Node = 0; Node < Kept; ++Node) {
    for (uint32_t &W : Out[Node])
      W -= Cut;
    for (uint32_t &W : In[Node])
      W -= Cut;
  }
  // Compress the surviving positions to [0, Kept) preserving order.
  std::vector<uint32_t> ByPos(Kept);
  for (uint32_t Node = 0; Node < Kept; ++Node)
    ByPos[Node] = Node;
  std::sort(ByPos.begin(), ByPos.end(), [this](uint32_t A, uint32_t B) {
    return Pos[A] < Pos[B];
  });
  for (uint32_t Rank = 0; Rank < Kept; ++Rank)
    Pos[ByPos[Rank]] = Rank;

  Mark.assign(Kept, 0);
  Parent.assign(Kept, 0);
  Epoch = 0;
}

//===----------------------------------------------------------------------===//
// Checkpoint support.
//===----------------------------------------------------------------------===//

void IncrementalTopoOrder::saveState(ByteWriter &W, uint32_t IdBase,
                                     uint64_t KindBase) const {
  size_t N = Pos.size();
  W.chunk(chunkId(KindBase));
  W.u64(N);
  // Positions are order ranks, not ids: a uniform offset cannot make them
  // rebase-invariant, so they are written raw (a compaction dirties every
  // position chunk — accepted; positions are 4 bytes per node).
  for (size_t I = 0; I < N; ++I) {
    W.chunk(chunkId(KindBase, 1 + ((IdBase + I) >> 6)));
    W.u32(Pos[I]);
  }
  // Adjacency values are node ids: globalized so a row whose edges
  // survive compaction keeps identical bytes.
  auto SaveAdjacency = [&](const std::vector<std::vector<uint32_t>> &Lists,
                           uint64_t Kind) {
    W.chunk(chunkId(Kind));
    for (size_t I = 0; I < Lists.size(); ++I) {
      W.chunk(chunkId(Kind, 1 + ((IdBase + I) >> 4)));
      const std::vector<uint32_t> &List = Lists[I];
      W.u64(List.size());
      for (uint32_t V : List)
        W.u32(V + IdBase);
    }
  };
  SaveAdjacency(Out, KindBase + 1);
  SaveAdjacency(In, KindBase + 2);
}

bool IncrementalTopoOrder::loadState(ByteReader &R, uint32_t IdBase) {
  uint64_t N = R.u64();
  if (!R.checkCount(N, 4))
    return false;
  Pos.resize(N);
  for (uint64_t I = 0; I < N; ++I)
    Pos[I] = R.u32();
  auto LoadAdjacency = [&](std::vector<std::vector<uint32_t>> &Lists) {
    Lists.assign(N, {});
    for (uint64_t I = 0; I < N && R.ok(); ++I) {
      uint64_t Len = R.u64();
      if (!R.checkCount(Len, 4))
        return;
      Lists[I].resize(Len);
      for (uint64_t J = 0; J < Len; ++J)
        Lists[I][J] = R.u32() - IdBase;
    }
  };
  LoadAdjacency(Out);
  LoadAdjacency(In);
  EdgeCount = 0;
  for (const std::vector<uint32_t> &List : Out)
    EdgeCount += List.size();
  // DFS scratch is transient; reset like compactPrefix does.
  Mark.assign(N, 0);
  Parent.assign(N, 0);
  Epoch = 0;
  Stack.clear();
  return R.ok();
}
