//===- graph/topo_sort.h - Topological sorting --------------------*- C++ -*-===//
//
// Part of the AWDIT reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Kahn topological sort. ComputeHB (Algorithm 3) processes transactions in
/// a topological order of so ∪ wr; an empty result signals a causality
/// cycle.
///
//===----------------------------------------------------------------------===//

#ifndef AWDIT_GRAPH_TOPO_SORT_H
#define AWDIT_GRAPH_TOPO_SORT_H

#include "graph/digraph.h"

#include <optional>

namespace awdit {

/// Returns a topological order of \p G (all nodes), or std::nullopt if the
/// graph has a cycle.
std::optional<std::vector<uint32_t>> topologicalSort(const Digraph &G);

} // namespace awdit

#endif // AWDIT_GRAPH_TOPO_SORT_H
