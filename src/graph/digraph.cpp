//===- graph/digraph.cpp - Directed graph ---------------------------------===//
//
// Digraph is header-only; this file anchors the translation unit so the
// library target always has at least one object for the module.

#include "graph/digraph.h"
