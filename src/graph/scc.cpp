//===- graph/scc.cpp - Strongly connected components -----------------------===//

#include "graph/scc.h"

#include "support/assert.h"

#include <limits>

using namespace awdit;

namespace {
constexpr uint32_t Unvisited = std::numeric_limits<uint32_t>::max();
} // namespace

SccResult awdit::computeScc(const Digraph &G) {
  size_t N = G.numNodes();
  SccResult Res;
  Res.CompOf.assign(N, Unvisited);

  std::vector<uint32_t> Index(N, Unvisited);
  std::vector<uint32_t> LowLink(N, 0);
  std::vector<bool> OnStack(N, false);
  std::vector<uint32_t> Stack;
  std::vector<size_t> CompSize;
  std::vector<bool> CompSelfLoop;

  // Explicit DFS frames: (node, next successor offset).
  struct Frame {
    uint32_t Node;
    size_t NextSucc;
  };
  std::vector<Frame> Dfs;
  uint32_t NextIndex = 0;

  for (uint32_t Root = 0; Root < N; ++Root) {
    if (Index[Root] != Unvisited)
      continue;
    Dfs.push_back({Root, 0});
    Index[Root] = LowLink[Root] = NextIndex++;
    Stack.push_back(Root);
    OnStack[Root] = true;

    while (!Dfs.empty()) {
      Frame &F = Dfs.back();
      uint32_t U = F.Node;
      const std::vector<uint32_t> &Succs = G.succs(U);
      if (F.NextSucc < Succs.size()) {
        uint32_t V = Succs[F.NextSucc++];
        if (Index[V] == Unvisited) {
          Index[V] = LowLink[V] = NextIndex++;
          Stack.push_back(V);
          OnStack[V] = true;
          Dfs.push_back({V, 0});
        } else if (OnStack[V]) {
          LowLink[U] = std::min(LowLink[U], Index[V]);
        }
        continue;
      }

      // All successors explored: maybe close a component, then retreat.
      if (LowLink[U] == Index[U]) {
        uint32_t Comp = Res.NumComps++;
        size_t Size = 0;
        bool SelfLoop = false;
        for (;;) {
          uint32_t V = Stack.back();
          Stack.pop_back();
          OnStack[V] = false;
          Res.CompOf[V] = Comp;
          ++Size;
          if (!SelfLoop)
            for (uint32_t W : G.succs(V))
              if (W == V) {
                SelfLoop = true;
                break;
              }
          if (V == U)
            break;
        }
        CompSize.push_back(Size);
        CompSelfLoop.push_back(SelfLoop);
      }
      Dfs.pop_back();
      if (!Dfs.empty()) {
        uint32_t Parent = Dfs.back().Node;
        LowLink[Parent] = std::min(LowLink[Parent], LowLink[U]);
      }
    }
  }

  for (uint32_t C = 0; C < Res.NumComps; ++C)
    if (CompSize[C] >= 2 || CompSelfLoop[C])
      Res.CyclicComps.push_back(C);
  return Res;
}
