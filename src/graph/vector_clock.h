//===- graph/vector_clock.h - Vector clocks -----------------------*- C++ -*-===//
//
// Part of the AWDIT reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Vector clocks indexed by session (paper Algorithm 3 / ComputeHB). An
/// entry stores 1 + SoIndex of the so-latest transaction of that session
/// known to happen before the owner; 0 is bottom. The join is a pointwise
/// maximum, which matches the paper's "pointwise maximum wrt so" because
/// entries of a given session are totally ordered by SoIndex.
///
//===----------------------------------------------------------------------===//

#ifndef AWDIT_GRAPH_VECTOR_CLOCK_H
#define AWDIT_GRAPH_VECTOR_CLOCK_H

#include <cstddef>
#include <cstdint>
#include <vector>

namespace awdit {

/// A fixed-width vector clock over session indices.
class VectorClock {
public:
  VectorClock() = default;
  explicit VectorClock(size_t NumSessions) : Entries(NumSessions, 0) {}

  size_t size() const { return Entries.size(); }

  /// Entry for session \p S: 1 + SoIndex of the latest known predecessor of
  /// that session, or 0 for bottom.
  uint32_t get(size_t S) const { return Entries[S]; }
  void set(size_t S, uint32_t V) { Entries[S] = V; }

  /// Pointwise maximum with \p Other.
  void joinWith(const VectorClock &Other);

  /// Returns true if every entry of this clock is <= the corresponding
  /// entry of \p Other.
  bool leq(const VectorClock &Other) const;

  bool operator==(const VectorClock &Other) const {
    return Entries == Other.Entries;
  }

private:
  std::vector<uint32_t> Entries;
};

} // namespace awdit

#endif // AWDIT_GRAPH_VECTOR_CLOCK_H
