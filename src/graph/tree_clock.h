//===- graph/tree_clock.h - Tree clocks ---------------------------*- C++ -*-===//
//
// Part of the AWDIT reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The Tree Clock data structure (Mathur, Pavlogiannis, Tunç, Viswanathan,
/// ASPLOS 2022), the sublinear-join alternative to vector clocks that the
/// Plume tester employs (paper §1, §5). A tree clock stores the same
/// entries as a vector clock, but arranges the sessions in a tree encoding
/// "who learned what through whom"; a join only traverses the subtrees that
/// actually carry new information, making join cost proportional to the
/// number of updated entries rather than to the clock width.
///
/// Correctness relies on the monotone-execution discipline of clock usage
/// (a clock only joins clocks of causal predecessors), which grants the
/// root-dominance property: if the other clock's root entry is not newer,
/// the whole clock is not newer.
///
//===----------------------------------------------------------------------===//

#ifndef AWDIT_GRAPH_TREE_CLOCK_H
#define AWDIT_GRAPH_TREE_CLOCK_H

#include <cstddef>
#include <cstdint>
#include <vector>

namespace awdit {

/// A tree clock over a fixed universe of sessions [0, size()).
class TreeClock {
public:
  /// Creates the zero clock owned by session \p Self.
  TreeClock(size_t NumSessions, uint32_t Self);

  size_t size() const { return Nodes.size(); }
  uint32_t self() const { return Root; }

  /// The entry for session \p S (0 = bottom).
  uint32_t get(size_t S) const { return Nodes[S].Clk; }

  /// Advances the owner's own component by one.
  void tick() { ++Nodes[Root].Clk; }

  /// Pointwise max with \p Other (which must belong to a causal
  /// predecessor in a monotone execution). Sublinear: traverses only the
  /// portions of Other's tree that are newer than this clock.
  void join(const TreeClock &Other);

  /// Number of entries examined by the last join (for the ablation
  /// benchmarks; a vector-clock join always examines size() entries).
  size_t lastJoinWork() const { return LastJoinWork; }

private:
  struct Node {
    uint32_t Clk = 0;
    /// Attachment time: the parent's clock value when this subtree was
    /// (re)attached.
    uint32_t Aclk = 0;
    int32_t Parent = -1;
    int32_t HeadChild = -1;
    int32_t PrevSib = -1;
    int32_t NextSib = -1;
  };

  void detach(uint32_t U);
  void attachFront(uint32_t P, uint32_t U, uint32_t Aclk);

  std::vector<Node> Nodes;
  uint32_t Root;
  size_t LastJoinWork = 0;
};

} // namespace awdit

#endif // AWDIT_GRAPH_TREE_CLOCK_H
