//===- graph/scc.h - Strongly connected components ----------------*- C++ -*-===//
//
// Part of the AWDIT reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Iterative Tarjan SCC decomposition. The checkers decide acyclicity of co'
/// with one SCC pass and report one witness cycle per non-trivial component
/// (paper §3.4).
///
//===----------------------------------------------------------------------===//

#ifndef AWDIT_GRAPH_SCC_H
#define AWDIT_GRAPH_SCC_H

#include "graph/digraph.h"

namespace awdit {

/// Result of an SCC decomposition.
struct SccResult {
  /// Node -> component id. Components are numbered in reverse topological
  /// order of the condensation (Tarjan's numbering).
  std::vector<uint32_t> CompOf;
  uint32_t NumComps = 0;
  /// Component ids that witness a cycle: size >= 2, or a single node with a
  /// self-loop.
  std::vector<uint32_t> CyclicComps;

  /// True iff the graph is acyclic.
  bool acyclic() const { return CyclicComps.empty(); }
};

/// Computes the SCCs of \p G with an iterative (stack-safe) Tarjan pass.
SccResult computeScc(const Digraph &G);

} // namespace awdit

#endif // AWDIT_GRAPH_SCC_H
