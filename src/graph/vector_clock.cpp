//===- graph/vector_clock.cpp - Vector clocks ------------------------------===//

#include "graph/vector_clock.h"

#include "support/assert.h"

#include <algorithm>

using namespace awdit;

void VectorClock::joinWith(const VectorClock &Other) {
  AWDIT_ASSERT(Entries.size() == Other.Entries.size(),
               "joining clocks of different widths");
  for (size_t I = 0; I < Entries.size(); ++I)
    Entries[I] = std::max(Entries[I], Other.Entries[I]);
}

bool VectorClock::leq(const VectorClock &Other) const {
  AWDIT_ASSERT(Entries.size() == Other.Entries.size(),
               "comparing clocks of different widths");
  for (size_t I = 0; I < Entries.size(); ++I)
    if (Entries[I] > Other.Entries[I])
      return false;
  return true;
}
