//===- graph/topo_sort.cpp - Topological sorting ---------------------------===//

#include "graph/topo_sort.h"

using namespace awdit;

std::optional<std::vector<uint32_t>>
awdit::topologicalSort(const Digraph &G) {
  size_t N = G.numNodes();
  std::vector<uint32_t> InDegree(N, 0);
  for (uint32_t U = 0; U < N; ++U)
    for (uint32_t V : G.succs(U))
      ++InDegree[V];

  std::vector<uint32_t> Order;
  Order.reserve(N);
  std::vector<uint32_t> Ready;
  for (uint32_t U = 0; U < N; ++U)
    if (InDegree[U] == 0)
      Ready.push_back(U);

  while (!Ready.empty()) {
    uint32_t U = Ready.back();
    Ready.pop_back();
    Order.push_back(U);
    for (uint32_t V : G.succs(U))
      if (--InDegree[V] == 0)
        Ready.push_back(V);
  }

  if (Order.size() != N)
    return std::nullopt;
  return Order;
}
