//===- graph/cycle.h - Witness cycle extraction -------------------*- C++ -*-===//
//
// Part of the AWDIT reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Extraction of a witness cycle from a cyclic SCC of the commit graph.
/// Following paper §3.4, cycles that contain the fewest non-(so ∪ wr) edges
/// are preferred (they expose weaker, more serious anomalies), so extraction
/// runs a 0/1-BFS where inferred co' edges cost 1 and so/wr edges cost 0.
///
//===----------------------------------------------------------------------===//

#ifndef AWDIT_GRAPH_CYCLE_H
#define AWDIT_GRAPH_CYCLE_H

#include "graph/digraph.h"

#include <functional>
#include <vector>

namespace awdit {

/// One edge of a witness cycle.
struct CycleEdge {
  uint32_t From;
  uint32_t To;
};

/// Extracts a cycle lying entirely inside the SCC \p Comp of \p G.
///
/// \param CompOf node -> component id (from computeScc).
/// \param Nodes the nodes of component \p Comp (any order, non-empty).
/// \param EdgeWeight returns 0 for "cheap" edges (so ∪ wr) and 1 for
///        inferred co' edges; the extracted cycle greedily minimizes total
///        weight among cycles through a chosen anchor node.
/// \returns the cycle as a closed edge sequence (To of the last edge equals
///          From of the first). Never empty for a genuinely cyclic SCC.
std::vector<CycleEdge> extractCycle(
    const Digraph &G, const std::vector<uint32_t> &CompOf, uint32_t Comp,
    const std::vector<uint32_t> &Nodes,
    const std::function<unsigned(uint32_t, uint32_t)> &EdgeWeight);

} // namespace awdit

#endif // AWDIT_GRAPH_CYCLE_H
