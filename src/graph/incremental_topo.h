//===- graph/incremental_topo.h - Dynamic topological order ------*- C++ -*-===//
//
// Part of the AWDIT reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A Pearce–Kelly-style dynamically maintained topological order over a
/// growing directed graph: inserting an edge reorders only the affected
/// region between the endpoints, and an insertion that would close a cycle
/// is rejected with the offending path extracted on the spot — no full SCC
/// re-pass over the graph. This is what lets the incremental saturation
/// engine (checker/saturation_state.h) keep the commit relation ordered
/// and cycle-checked in time proportional to the delta of each flush
/// instead of the whole live window.
///
/// Reference: D. J. Pearce and P. H. J. Kelly, "A Dynamic Topological Sort
/// Algorithm for Directed Acyclic Graphs", JEA 11 (2006).
///
//===----------------------------------------------------------------------===//

#ifndef AWDIT_GRAPH_INCREMENTAL_TOPO_H
#define AWDIT_GRAPH_INCREMENTAL_TOPO_H

#include <cstddef>
#include <cstdint>
#include <vector>

namespace awdit {

class ByteWriter;
class ByteReader;

/// A directed graph with a maintained topological order. Nodes are dense
/// ids appended at the end of the order; the edge set must stay acyclic —
/// addEdge() refuses (and reports) an edge that would close a cycle, so
/// the caller decides what to do with it (the saturation engine reports a
/// violation and quarantines the edge).
///
/// Each distinct (From, To) pair may be inserted at most once; the caller
/// deduplicates (the saturation engine refcounts edges per source).
class IncrementalTopoOrder {
public:
  /// Appends \p Count nodes at the end of the order.
  void addNodes(size_t Count);

  size_t numNodes() const { return Pos.size(); }
  size_t numEdges() const { return EdgeCount; }

  /// Position of node \p N in the maintained order (a permutation of
  /// [0, numNodes())).
  uint32_t position(uint32_t N) const { return Pos[N]; }

  /// Inserts the edge \p From -> \p To, reordering the affected region if
  /// needed. Returns true on success (the order stays valid). Returns
  /// false — without modifying the graph — when the edge would close a
  /// cycle; if \p CyclePath is non-null it receives the existing path
  /// To -> ... -> From (node ids, consecutive pairs are edges), which
  /// together with (From, To) forms the cycle.
  bool addEdge(uint32_t From, uint32_t To,
               std::vector<uint32_t> *CyclePath = nullptr);

  /// Removes the edge \p From -> \p To (which must be present). Deleting
  /// an edge never invalidates a topological order, so this is O(deg).
  void removeEdge(uint32_t From, uint32_t To);

  /// Drops the node prefix [0, \p Cut) and renumbers the survivors to
  /// [0, n - Cut), preserving their relative order. Every edge incident to
  /// a dropped node must have been removed first.
  void compactPrefix(uint32_t Cut);

  /// Drops every edge, then the node prefix [0, \p Cut) as compactPrefix
  /// does. Eviction compaction uses this and re-inserts the surviving
  /// edges itself (all forward in the preserved order, so O(1) each).
  void clearEdgesAndCompact(uint32_t Cut);

  const std::vector<uint32_t> &succs(uint32_t N) const { return Out[N]; }
  const std::vector<uint32_t> &preds(uint32_t N) const { return In[N]; }

  /// Checkpoint support (checker/checkpoint.h): serializes the maintained
  /// order and adjacency *verbatim* — positions and adjacency-list order
  /// affect which witness path a later cycle extraction walks, so a
  /// restored monitor must continue from the exact same internal state,
  /// not a rebuilt-equivalent one. The DFS scratch (epoch marks) is
  /// transient and reset on load.
  ///
  /// For chunked (checkpoint-v2) serialization, \p IdBase globalizes
  /// adjacency node ids (loadState must be given the same base back) and
  /// \p KindBase numbers the emitted chunk sections — this class claims
  /// kinds KindBase..KindBase+2 (positions, out-, in-adjacency). The
  /// defaults write the historical v1 bytes with no marks.
  void saveState(ByteWriter &W, uint32_t IdBase = 0,
                 uint64_t KindBase = 0) const;
  bool loadState(ByteReader &R, uint32_t IdBase = 0);

private:
  /// Forward discovery from \p To bounded by position \p Limit. Returns
  /// false when \p From was reached (a cycle); fills Parent for path
  /// extraction. Visited nodes accumulate in \p Region.
  bool discoverForward(uint32_t From, uint32_t To, uint32_t Limit,
                       std::vector<uint32_t> &Region);

  std::vector<std::vector<uint32_t>> Out;
  std::vector<std::vector<uint32_t>> In;
  /// Node -> order position (a permutation of [0, n)).
  std::vector<uint32_t> Pos;
  size_t EdgeCount = 0;

  // Epoch-stamped DFS scratch, reused across insertions.
  std::vector<uint32_t> Mark;
  std::vector<uint32_t> Parent;
  uint32_t Epoch = 0;
  std::vector<uint32_t> Stack;
};

} // namespace awdit

#endif // AWDIT_GRAPH_INCREMENTAL_TOPO_H
