//===- graph/cycle.cpp - Witness cycle extraction ---------------------------===//

#include "graph/cycle.h"

#include "support/assert.h"

#include <deque>
#include <limits>
#include <unordered_map>

using namespace awdit;

namespace {

constexpr unsigned Inf = std::numeric_limits<unsigned>::max();

/// Runs a 0/1-BFS from \p Anchor restricted to component \p Comp and
/// returns the min-weight cycle through \p Anchor (possibly empty if no
/// cycle through the anchor exists). \p CostOut receives its weight.
std::vector<CycleEdge> cycleThroughAnchor(
    const Digraph &G, const std::vector<uint32_t> &CompOf, uint32_t Comp,
    const std::vector<uint32_t> &Nodes, uint32_t Anchor,
    const std::function<unsigned(uint32_t, uint32_t)> &EdgeWeight,
    unsigned &CostOut) {
  std::unordered_map<uint32_t, unsigned> Dist;
  std::unordered_map<uint32_t, uint32_t> Parent;
  Dist.reserve(Nodes.size() * 2);
  for (uint32_t U : Nodes)
    Dist[U] = Inf;
  Dist[Anchor] = 0;
  std::deque<uint32_t> Queue{Anchor};
  while (!Queue.empty()) {
    uint32_t U = Queue.front();
    Queue.pop_front();
    for (uint32_t V : G.succs(U)) {
      if (CompOf[V] != Comp)
        continue;
      unsigned W = EdgeWeight(U, V) ? 1 : 0;
      unsigned Cand = Dist[U] + W;
      auto It = Dist.find(V);
      if (Cand >= It->second)
        continue;
      It->second = Cand;
      Parent[V] = U;
      if (W == 0)
        Queue.push_front(V);
      else
        Queue.push_back(V);
    }
  }

  // Cheapest edge closing a cycle back to the anchor.
  uint32_t BestTail = Anchor;
  unsigned BestCost = Inf;
  for (uint32_t U : Nodes) {
    if (Dist[U] == Inf)
      continue;
    for (uint32_t V : G.succs(U)) {
      if (V != Anchor)
        continue;
      unsigned Cost = Dist[U] + (EdgeWeight(U, V) ? 1 : 0);
      if (Cost < BestCost) {
        BestCost = Cost;
        BestTail = U;
      }
    }
  }
  CostOut = BestCost;
  if (BestCost == Inf)
    return {};

  std::vector<uint32_t> Path;
  for (uint32_t U = BestTail; U != Anchor; U = Parent[U])
    Path.push_back(U);
  Path.push_back(Anchor);

  std::vector<CycleEdge> Cycle;
  for (size_t I = Path.size(); I-- > 1;)
    Cycle.push_back(CycleEdge{Path[I], Path[I - 1]});
  Cycle.push_back(CycleEdge{BestTail, Anchor});
  return Cycle;
}

} // namespace

std::vector<CycleEdge> awdit::extractCycle(
    const Digraph &G, const std::vector<uint32_t> &CompOf, uint32_t Comp,
    const std::vector<uint32_t> &Nodes,
    const std::function<unsigned(uint32_t, uint32_t)> &EdgeWeight) {
  AWDIT_ASSERT(!Nodes.empty(), "extractCycle: empty component");

  // Self-loop: the cheapest possible witness.
  for (uint32_t U : Nodes)
    for (uint32_t V : G.succs(U))
      if (V == U)
        return {CycleEdge{U, U}};

  // Candidate anchors: heads of weighted (inferred) edges inside the
  // component — every mixed cycle passes through at least one such head —
  // capped for large components, plus one fallback node.
  constexpr size_t MaxAnchors = 8;
  std::vector<uint32_t> Anchors;
  std::unordered_map<uint32_t, bool> Seen;
  for (uint32_t U : Nodes) {
    if (Anchors.size() >= MaxAnchors)
      break;
    for (uint32_t V : G.succs(U)) {
      if (CompOf[V] != Comp || EdgeWeight(U, V) == 0)
        continue;
      if (!Seen.emplace(V, true).second)
        continue;
      Anchors.push_back(V);
      if (Anchors.size() >= MaxAnchors)
        break;
    }
  }
  if (Anchors.empty())
    Anchors.push_back(Nodes.front());

  std::vector<CycleEdge> Best;
  unsigned BestCost = Inf;
  for (uint32_t Anchor : Anchors) {
    unsigned Cost = Inf;
    std::vector<CycleEdge> Cycle =
        cycleThroughAnchor(G, CompOf, Comp, Nodes, Anchor, EdgeWeight, Cost);
    if (!Cycle.empty() && Cost < BestCost) {
      BestCost = Cost;
      Best = std::move(Cycle);
      if (BestCost <= 1)
        break; // A mixed component cannot do better than one inferred edge.
    }
  }
  AWDIT_ASSERT(!Best.empty(), "extractCycle: SCC without a cycle");
  return Best;
}
