//===- graph/tree_clock.cpp - Tree clocks -----------------------------------===//

#include "graph/tree_clock.h"

#include "support/assert.h"

using namespace awdit;

TreeClock::TreeClock(size_t NumSessions, uint32_t Self)
    : Nodes(NumSessions), Root(Self) {
  AWDIT_ASSERT(Self < NumSessions, "tree clock owner out of range");
}

void TreeClock::detach(uint32_t U) {
  Node &N = Nodes[U];
  if (N.Parent < 0)
    return;
  if (N.PrevSib >= 0)
    Nodes[N.PrevSib].NextSib = N.NextSib;
  else
    Nodes[N.Parent].HeadChild = N.NextSib;
  if (N.NextSib >= 0)
    Nodes[N.NextSib].PrevSib = N.PrevSib;
  N.Parent = N.PrevSib = N.NextSib = -1;
}

void TreeClock::attachFront(uint32_t P, uint32_t U, uint32_t Aclk) {
  Node &N = Nodes[U];
  N.Parent = static_cast<int32_t>(P);
  N.Aclk = Aclk;
  N.PrevSib = -1;
  N.NextSib = Nodes[P].HeadChild;
  if (N.NextSib >= 0)
    Nodes[N.NextSib].PrevSib = static_cast<int32_t>(U);
  Nodes[P].HeadChild = static_cast<int32_t>(U);
}

void TreeClock::join(const TreeClock &Other) {
  AWDIT_ASSERT(Nodes.size() == Other.Nodes.size(),
               "joining clocks of different widths");
  LastJoinWork = 1;
  uint32_t R = Other.Root;
  // Root dominance: nothing new if the other owner's component is known.
  if (Other.Nodes[R].Clk <= Nodes[R].Clk)
    return;
  AWDIT_ASSERT(R != Root,
               "monotone executions never learn their own session's "
               "future from a predecessor");

  // Phase 1: gather the updated nodes by pre-order traversal of Other's
  // tree, pruning both not-newer subtrees and children attached before
  // the point we already knew of their parent (children are kept in
  // decreasing attachment order, so the scan can stop early).
  std::vector<uint32_t> Updated;
  std::vector<uint32_t> Stack = {R};
  while (!Stack.empty()) {
    uint32_t U = Stack.back();
    Stack.pop_back();
    Updated.push_back(U);
    uint32_t OurOldClk = Nodes[U].Clk;
    for (int32_t V = Other.Nodes[U].HeadChild; V >= 0;
         V = Other.Nodes[V].NextSib) {
      ++LastJoinWork;
      if (Other.Nodes[V].Clk > Nodes[V].Clk) {
        Stack.push_back(static_cast<uint32_t>(V));
      } else if (Other.Nodes[V].Aclk <= OurOldClk) {
        // Attached before what we already knew of U: everything from
        // here on (older attachments) is already incorporated.
        break;
      }
    }
  }

  // Phase 2: splice the updated nodes into our tree with their new
  // values. The other root hangs under our root; every other updated
  // node keeps its parent/attachment from Other (that parent is always
  // itself updated, hence already spliced).
  for (uint32_t U : Updated) {
    detach(U);
    Nodes[U].Clk = Other.Nodes[U].Clk;
    if (U == R)
      attachFront(Root, U, Nodes[Root].Clk);
    else
      attachFront(static_cast<uint32_t>(Other.Nodes[U].Parent), U,
                  Other.Nodes[U].Aclk);
  }
  LastJoinWork += Updated.size();
}
