//===- graph/digraph.h - Directed graph ---------------------------*- C++ -*-===//
//
// Part of the AWDIT reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A compact, append-only directed graph over dense node ids. Used for the
/// partial commit relation co' (nodes = transactions), for so ∪ wr, and by
/// the lower-bound reduction machinery.
///
//===----------------------------------------------------------------------===//

#ifndef AWDIT_GRAPH_DIGRAPH_H
#define AWDIT_GRAPH_DIGRAPH_H

#include <cstddef>
#include <cstdint>
#include <vector>

namespace awdit {

/// Directed graph with adjacency lists. Parallel edges are permitted (the
/// commit graph deduplicates where it matters); node ids are dense
/// [0, numNodes()).
class Digraph {
public:
  explicit Digraph(size_t NumNodes) : Adj(NumNodes), EdgeCount(0) {}

  void addEdge(uint32_t From, uint32_t To) {
    Adj[From].push_back(To);
    ++EdgeCount;
  }

  size_t numNodes() const { return Adj.size(); }
  size_t numEdges() const { return EdgeCount; }

  const std::vector<uint32_t> &succs(uint32_t U) const { return Adj[U]; }

private:
  std::vector<std::vector<uint32_t>> Adj;
  size_t EdgeCount;
};

} // namespace awdit

#endif // AWDIT_GRAPH_DIGRAPH_H
