//===- support/spsc_queue.h - SPSC lock-free ring buffer ---------*- C++ -*-===//
//
// Part of the AWDIT reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A bounded lock-free single-producer single-consumer ring buffer, the
/// hand-off primitive of the sharded monitor ingest pipeline
/// (io/sharded_ingest.h): the reader thread routes line batches to the
/// tokenizer workers through one queue each, and each worker hands decoded
/// batches to the applier through another, so every queue has exactly one
/// producer and one consumer and needs no locks — just acquire/release on
/// the head and tail indices (ThreadSanitizer-clean by construction,
/// enforced by the CI TSan job).
///
/// Blocking push/pop spin briefly and then yield; close() wakes the
/// consumer permanently once the stream ends.
///
//===----------------------------------------------------------------------===//

#ifndef AWDIT_SUPPORT_SPSC_QUEUE_H
#define AWDIT_SUPPORT_SPSC_QUEUE_H

#include <atomic>
#include <chrono>
#include <cstddef>
#include <thread>
#include <utility>
#include <vector>

namespace awdit {

/// A bounded SPSC FIFO. Exactly one thread may call push/tryPush/close and
/// exactly one (other) thread may call pop/tryPop. Capacity is rounded up
/// to a power of two; one slot is sacrificed to distinguish full from
/// empty.
template <typename T> class SpscQueue {
public:
  explicit SpscQueue(size_t Capacity = 256) {
    size_t Cap = 2;
    while (Cap < Capacity + 1)
      Cap *= 2;
    Slots.resize(Cap);
    Mask = Cap - 1;
  }

  SpscQueue(const SpscQueue &) = delete;
  SpscQueue &operator=(const SpscQueue &) = delete;

  /// Producer: enqueues \p Value if a slot is free. Returns false when the
  /// queue is full.
  bool tryPush(T &&Value) {
    size_t T0 = Tail.load(std::memory_order_relaxed);
    size_t Next = (T0 + 1) & Mask;
    if (Next == Head.load(std::memory_order_acquire))
      return false; // full
    Slots[T0] = std::move(Value);
    Tail.store(Next, std::memory_order_release);
    return true;
  }

  /// Producer: enqueues \p Value, spinning (then yielding) while the queue
  /// is full. The consumer must keep draining or the producer livelocks —
  /// the pipeline guarantees this by joining consumers only after close().
  void push(T Value) {
    Backoff B;
    while (!tryPush(std::move(Value)))
      B.pause();
  }

  /// Consumer: dequeues into \p Out if an item is ready. Returns false
  /// when the queue is empty (closed or not).
  bool tryPop(T &Out) {
    size_t H = Head.load(std::memory_order_relaxed);
    if (H == Tail.load(std::memory_order_acquire))
      return false; // empty
    Out = std::move(Slots[H]);
    Head.store((H + 1) & Mask, std::memory_order_release);
    return true;
  }

  /// Consumer: dequeues into \p Out, waiting for an item. Returns false
  /// once the queue is closed *and* drained — the end-of-stream signal.
  bool pop(T &Out) {
    Backoff B;
    while (true) {
      if (tryPop(Out))
        return true;
      if (Closed.load(std::memory_order_acquire)) {
        // Re-check: the producer may have pushed between the failed
        // tryPop and the close flag becoming visible.
        return tryPop(Out);
      }
      B.pause();
    }
  }

  /// Producer: marks the stream complete. pop() returns false once the
  /// remaining items are drained.
  void close() { Closed.store(true, std::memory_order_release); }

  bool closed() const { return Closed.load(std::memory_order_acquire); }

  /// Approximate occupancy, racy by design: both indices are read relaxed,
  /// so the result may be momentarily stale from either side. Telemetry
  /// sampling only (the ingest queue-depth histogram) — never a
  /// synchronization decision.
  size_t size() const {
    size_t Tl = Tail.load(std::memory_order_relaxed);
    size_t H = Head.load(std::memory_order_relaxed);
    return (Tl - H) & Mask;
  }

private:
  /// Spin, then yield, then sleep: a short busy loop covers the common
  /// case of a momentarily-full/empty queue, yielding covers a slightly
  /// slow peer — and once the wait is clearly an *idle stream* (a tailed
  /// log going quiet for hours), the thread must actually sleep instead
  /// of pegging a core on sched_yield. The 250us naps cap wake-up latency
  /// well below anything visible in live monitoring while dropping idle
  /// CPU to noise.
  struct Backoff {
    unsigned Spins = 0;
    void pause() {
      ++Spins;
      if (Spins < 64)
        return;
      if (Spins < 1024) {
        std::this_thread::yield();
        return;
      }
      std::this_thread::sleep_for(std::chrono::microseconds(250));
    }
  };

  std::vector<T> Slots;
  size_t Mask = 0;
  // Producer-written, consumer-read; and vice versa. Padded apart so the
  // two sides do not false-share one cache line.
  alignas(64) std::atomic<size_t> Tail{0};
  alignas(64) std::atomic<size_t> Head{0};
  alignas(64) std::atomic<bool> Closed{false};
};

} // namespace awdit

#endif // AWDIT_SUPPORT_SPSC_QUEUE_H
