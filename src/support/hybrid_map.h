//===- support/hybrid_map.h - Small-first associative containers --*- C++ -*-===//
//
// Part of the AWDIT reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Associative containers tuned for the checkers' per-transaction scratch
/// state: the overwhelmingly common case is a handful of distinct keys per
/// transaction, where a linear scan over a flat vector beats hashing by a
/// wide margin. Past a size threshold the containers spill into a hash
/// table, preserving the O(1) amortized bound the complexity analysis of
/// Algorithms 1-2 relies on for large transactions.
///
/// clear() keeps allocated storage, so one instance can be reused across
/// the per-transaction loop without churn.
///
//===----------------------------------------------------------------------===//

#ifndef AWDIT_SUPPORT_HYBRID_MAP_H
#define AWDIT_SUPPORT_HYBRID_MAP_H

#include <cstddef>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

namespace awdit {

/// A map that stays a flat vector while small and spills to a hash map
/// when it grows past \p Threshold entries.
template <typename KeyT, typename ValueT, size_t Threshold = 48>
class HybridMap {
public:
  /// Returns a pointer to the value for \p K, or nullptr.
  ValueT *find(const KeyT &K) {
    if (!UsingBig) {
      for (auto &[FK, FV] : Flat)
        if (FK == K)
          return &FV;
      return nullptr;
    }
    auto It = Big.find(K);
    return It == Big.end() ? nullptr : &It->second;
  }

  /// Returns the value for \p K, default-constructing it if absent.
  /// The reference is invalidated by the next mutating call.
  ValueT &getOrInsert(const KeyT &K) {
    if (!UsingBig) {
      for (auto &[FK, FV] : Flat)
        if (FK == K)
          return FV;
      if (Flat.size() < Threshold) {
        Flat.emplace_back(K, ValueT());
        return Flat.back().second;
      }
      spill();
    }
    return Big[K];
  }

  size_t size() const { return UsingBig ? Big.size() : Flat.size(); }

  void clear() {
    Flat.clear();
    if (UsingBig) {
      Big.clear();
      UsingBig = false;
    }
  }

private:
  void spill() {
    for (auto &[K, V] : Flat)
      Big.emplace(K, std::move(V));
    Flat.clear();
    UsingBig = true;
  }

  std::vector<std::pair<KeyT, ValueT>> Flat;
  std::unordered_map<KeyT, ValueT> Big;
  bool UsingBig = false;
};

/// A set with the same small-first strategy.
template <typename KeyT, size_t Threshold = 48> class HybridSet {
public:
  bool contains(const KeyT &K) const {
    if (!UsingBig) {
      for (const KeyT &FK : Flat)
        if (FK == K)
          return true;
      return false;
    }
    return Big.count(K) != 0;
  }

  /// Inserts \p K; returns true if it was newly added.
  bool insert(const KeyT &K) {
    if (contains(K))
      return false;
    if (!UsingBig) {
      if (Flat.size() < Threshold) {
        Flat.push_back(K);
        return true;
      }
      for (const KeyT &FK : Flat)
        Big.insert(FK);
      Flat.clear();
      UsingBig = true;
    }
    Big.insert(K);
    return true;
  }

  size_t size() const { return UsingBig ? Big.size() : Flat.size(); }

  void clear() {
    Flat.clear();
    if (UsingBig) {
      Big.clear();
      UsingBig = false;
    }
  }

  /// Iteration over the elements (order unspecified).
  template <typename Fn> void forEach(Fn &&F) const {
    if (!UsingBig) {
      for (const KeyT &K : Flat)
        F(K);
      return;
    }
    for (const KeyT &K : Big)
      F(K);
  }

private:
  std::vector<KeyT> Flat;
  std::unordered_set<KeyT> Big;
  bool UsingBig = false;
};

} // namespace awdit

#endif // AWDIT_SUPPORT_HYBRID_MAP_H
