//===- support/socket.h - RAII TCP sockets for the server --------*- C++ -*-===//
//
// Part of the AWDIT reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Thin RAII wrappers over POSIX TCP sockets for the multi-tenant
/// monitoring server (server/server.h) and its clients (the loadgen tool,
/// the in-process tests): a move-only owned fd, a listener that can bind an
/// ephemeral port (port 0) and report the port it got — how the tests and
/// benches avoid fixed-port collisions — and blocking connect/read/write
/// helpers that retry EINTR. No frameworks, no event library: the server's
/// poll(2) loop sits directly on these fds.
///
//===----------------------------------------------------------------------===//

#ifndef AWDIT_SUPPORT_SOCKET_H
#define AWDIT_SUPPORT_SOCKET_H

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>

namespace awdit {

/// A move-only owned socket fd; closes on destruction.
class Socket {
public:
  Socket() = default;
  explicit Socket(int Fd) : Fd(Fd) {}
  ~Socket() { close(); }

  Socket(const Socket &) = delete;
  Socket &operator=(const Socket &) = delete;
  Socket(Socket &&Other) noexcept : Fd(Other.Fd) { Other.Fd = -1; }
  Socket &operator=(Socket &&Other) noexcept {
    if (this != &Other) {
      close();
      Fd = Other.Fd;
      Other.Fd = -1;
    }
    return *this;
  }

  bool valid() const { return Fd >= 0; }
  int fd() const { return Fd; }

  /// Closes the fd now (idempotent).
  void close();

  /// Releases ownership without closing.
  int release() {
    int F = Fd;
    Fd = -1;
    return F;
  }

  /// Reads up to \p Size bytes (blocking, EINTR-retrying). Returns the
  /// byte count, 0 on orderly peer close, -1 on error.
  long readSome(char *Buf, size_t Size) const;

  /// Writes all of \p Data (blocking, EINTR-retrying, handles short
  /// writes). Returns false on error (e.g. the peer closed).
  bool writeAll(std::string_view Data) const;

  /// One non-blocking send attempt: writes as much of \p Data as the
  /// kernel buffer takes right now. Returns the byte count (possibly
  /// short), 0 when the buffer is full (EAGAIN/EWOULDBLOCK — poll for
  /// POLLOUT and retry), -1 on a hard error. EINTR-retrying; the fd
  /// should be in non-blocking mode (setNonBlocking()).
  long sendSome(std::string_view Data) const;

  /// Switches the fd's O_NONBLOCK flag. Returns false on fcntl failure.
  bool setNonBlocking(bool Enable) const;

  /// Shuts down the write half (signals end-of-stream to the peer while
  /// still reading replies).
  void shutdownWrite() const;

private:
  int Fd = -1;
};

/// A listening TCP socket. Binds with SO_REUSEADDR; port 0 picks an
/// ephemeral port, reported by port().
class TcpListener {
public:
  TcpListener() = default;

  /// Binds \p Host:\p Port and listens. \p Host is a dotted-quad IPv4
  /// address ("127.0.0.1", "0.0.0.0"). Returns false with \p Err set on
  /// failure.
  bool listenOn(const std::string &Host, uint16_t Port, std::string *Err);

  bool valid() const { return Sock.valid(); }
  int fd() const { return Sock.fd(); }

  /// The bound port (the kernel's pick when listenOn() was given port 0).
  uint16_t port() const { return BoundPort; }

  /// Accepts one connection (blocking, EINTR-retrying). Invalid Socket on
  /// error.
  Socket accept() const;

  void close() { Sock.close(); }

private:
  Socket Sock;
  uint16_t BoundPort = 0;
};

/// Connects to \p Host:\p Port (blocking). Invalid Socket with \p Err set
/// on failure.
Socket tcpConnect(const std::string &Host, uint16_t Port, std::string *Err);

} // namespace awdit

#endif // AWDIT_SUPPORT_SOCKET_H
