//===- support/serialize.h - Little-endian byte serialization ----*- C++ -*-===//
//
// Part of the AWDIT reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The byte-level primitives of the checkpoint format (checker/checkpoint.h):
/// a writer appending fixed-width little-endian fields to a growing buffer,
/// and a bounds-checked reader over a byte range. The reader never throws
/// and never reads past the end — a truncated or corrupted checkpoint turns
/// into ok() == false (plus zero values), which the loaders translate into
/// a clean error instead of UB. Counts read from untrusted bytes must pass
/// checkCount() before vectors are sized from them, so a flipped length
/// field cannot demand a terabyte allocation.
///
//===----------------------------------------------------------------------===//

#ifndef AWDIT_SUPPORT_SERIALIZE_H
#define AWDIT_SUPPORT_SERIALIZE_H

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>
#include <vector>

namespace awdit {

/// A chunk boundary recorded during chunked (checkpoint-v2) serialization:
/// bytes [Offset, next mark's Offset) belong to the chunk \p Id. Marks are
/// out-of-band — the byte stream itself is identical with or without them —
/// and ids are strictly increasing in stream order, so a reader reassembles
/// the stream by concatenating chunks in ascending id order.
struct ChunkMark {
  size_t Offset = 0;
  uint64_t Id = 0;
};

/// Chunk ids are (Kind << 56) | Sub: Kind numbers the serialized sections
/// in stream order, Sub is a section-specific bucket (typically a range of
/// global transaction ids or keys) that stays put as the window slides —
/// the property that makes unchanged chunks byte-identical between
/// checkpoints and lets the segment store skip writing them.
inline constexpr uint64_t chunkId(uint64_t Kind, uint64_t Sub = 0) {
  // Sub saturates below the kind field so a pathological bucket (e.g. a
  // huge key) degrades chunk granularity instead of corrupting the id.
  constexpr uint64_t MaxSub = (uint64_t(1) << 56) - 1;
  return (Kind << 56) | (Sub < MaxSub ? Sub : MaxSub);
}

/// The optional local-to-global coordinate transform of chunked
/// serialization. Windowed eviction rebases every local transaction id
/// (by the window base) and every session-order index (by the per-session
/// evicted count) at nearly every flush, so locally-addressed bytes churn
/// completely between checkpoints. Serializing ids in global coordinates —
/// local + base, applied on save and inverted on load with the same bases
/// captured alongside the bytes — makes the serialized form of surviving
/// state rebase-invariant. A null transform (the v1 snapshot path) writes
/// raw local values: byte-identical to the historical format.
struct StateCoords {
  /// Added to every local transaction id (Monitor::Base).
  uint32_t IdBase = 0;
  /// Added per session to so-indices/frontiers (Monitor::SessionSoBase).
  const std::vector<uint64_t> *SoBase = nullptr;
};

/// Appends little-endian fields to a byte buffer.
class ByteWriter {
public:
  explicit ByteWriter(std::string &Out) : Out(Out) {}

  /// Starts recording chunk marks into \p M (chunked serialization only).
  void enableChunks(std::vector<ChunkMark> *M) { Marks = M; }

  /// Declares that bytes written from here on belong to chunk \p Id.
  /// No-op unless enableChunks() was called. Non-increasing ids are
  /// ignored (the bytes stay in the current chunk), and a re-mark at the
  /// current offset replaces the empty previous mark.
  void chunk(uint64_t Id) {
    if (!Marks)
      return;
    if (!Marks->empty()) {
      if (Id <= Marks->back().Id)
        return;
      if (Marks->back().Offset == Out.size()) {
        Marks->back().Id = Id;
        return;
      }
    }
    Marks->push_back({Out.size(), Id});
  }

  void u8(uint8_t V) { Out.push_back(static_cast<char>(V)); }

  void u32(uint32_t V) {
    char Buf[4];
    for (int I = 0; I < 4; ++I)
      Buf[I] = static_cast<char>(V >> (8 * I));
    Out.append(Buf, 4);
  }

  void u64(uint64_t V) {
    char Buf[8];
    for (int I = 0; I < 8; ++I)
      Buf[I] = static_cast<char>(V >> (8 * I));
    Out.append(Buf, 8);
  }

  void i64(int64_t V) { u64(static_cast<uint64_t>(V)); }

  void boolean(bool V) { u8(V ? 1 : 0); }

  /// Length-prefixed byte string.
  void str(std::string_view S) {
    u64(S.size());
    Out.append(S.data(), S.size());
  }

private:
  std::string &Out;
  std::vector<ChunkMark> *Marks = nullptr;
};

/// Bounds-checked little-endian reader. Reads past the end set the failed
/// flag and yield zeros; callers check ok() (typically once, at the end of
/// a load).
class ByteReader {
public:
  ByteReader(const char *Data, size_t Size) : P(Data), End(Data + Size) {}
  explicit ByteReader(std::string_view Bytes)
      : ByteReader(Bytes.data(), Bytes.size()) {}

  bool ok() const { return !Failed; }
  void fail() { Failed = true; }
  size_t remaining() const { return static_cast<size_t>(End - P); }

  uint8_t u8() {
    if (!need(1))
      return 0;
    return static_cast<uint8_t>(*P++);
  }

  uint32_t u32() {
    if (!need(4))
      return 0;
    uint32_t V = 0;
    for (int I = 0; I < 4; ++I)
      V |= static_cast<uint32_t>(static_cast<uint8_t>(P[I])) << (8 * I);
    P += 4;
    return V;
  }

  uint64_t u64() {
    if (!need(8))
      return 0;
    uint64_t V = 0;
    for (int I = 0; I < 8; ++I)
      V |= static_cast<uint64_t>(static_cast<uint8_t>(P[I])) << (8 * I);
    P += 8;
    return V;
  }

  int64_t i64() { return static_cast<int64_t>(u64()); }

  bool boolean() { return u8() != 0; }

  std::string str() {
    uint64_t Len = u64();
    if (!need(Len))
      return {};
    std::string S(P, static_cast<size_t>(Len));
    P += Len;
    return S;
  }

  /// Guards a count read from untrusted bytes: fails (and returns false)
  /// unless \p Count elements of at least \p MinElemBytes each could still
  /// fit in the remaining input.
  bool checkCount(uint64_t Count, size_t MinElemBytes) {
    if (MinElemBytes != 0 && Count > remaining() / MinElemBytes) {
      Failed = true;
      return false;
    }
    return true;
  }

private:
  bool need(uint64_t N) {
    if (Failed || N > remaining()) {
      Failed = true;
      return false;
    }
    return true;
  }

  const char *P;
  const char *End;
  bool Failed = false;
};

/// FNV-1a over a byte range: the checkpoint payload checksum. Not
/// cryptographic — it guards against truncation and bit rot, not malice.
inline uint64_t fnv1a(std::string_view Bytes) {
  uint64_t H = 1469598103934665603ULL;
  for (char C : Bytes) {
    H ^= static_cast<uint8_t>(C);
    H *= 1099511628211ULL;
  }
  return H;
}

} // namespace awdit

#endif // AWDIT_SUPPORT_SERIALIZE_H
