//===- support/serialize.h - Little-endian byte serialization ----*- C++ -*-===//
//
// Part of the AWDIT reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The byte-level primitives of the checkpoint format (checker/checkpoint.h):
/// a writer appending fixed-width little-endian fields to a growing buffer,
/// and a bounds-checked reader over a byte range. The reader never throws
/// and never reads past the end — a truncated or corrupted checkpoint turns
/// into ok() == false (plus zero values), which the loaders translate into
/// a clean error instead of UB. Counts read from untrusted bytes must pass
/// checkCount() before vectors are sized from them, so a flipped length
/// field cannot demand a terabyte allocation.
///
//===----------------------------------------------------------------------===//

#ifndef AWDIT_SUPPORT_SERIALIZE_H
#define AWDIT_SUPPORT_SERIALIZE_H

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>

namespace awdit {

/// Appends little-endian fields to a byte buffer.
class ByteWriter {
public:
  explicit ByteWriter(std::string &Out) : Out(Out) {}

  void u8(uint8_t V) { Out.push_back(static_cast<char>(V)); }

  void u32(uint32_t V) {
    char Buf[4];
    for (int I = 0; I < 4; ++I)
      Buf[I] = static_cast<char>(V >> (8 * I));
    Out.append(Buf, 4);
  }

  void u64(uint64_t V) {
    char Buf[8];
    for (int I = 0; I < 8; ++I)
      Buf[I] = static_cast<char>(V >> (8 * I));
    Out.append(Buf, 8);
  }

  void i64(int64_t V) { u64(static_cast<uint64_t>(V)); }

  void boolean(bool V) { u8(V ? 1 : 0); }

  /// Length-prefixed byte string.
  void str(std::string_view S) {
    u64(S.size());
    Out.append(S.data(), S.size());
  }

private:
  std::string &Out;
};

/// Bounds-checked little-endian reader. Reads past the end set the failed
/// flag and yield zeros; callers check ok() (typically once, at the end of
/// a load).
class ByteReader {
public:
  ByteReader(const char *Data, size_t Size) : P(Data), End(Data + Size) {}
  explicit ByteReader(std::string_view Bytes)
      : ByteReader(Bytes.data(), Bytes.size()) {}

  bool ok() const { return !Failed; }
  void fail() { Failed = true; }
  size_t remaining() const { return static_cast<size_t>(End - P); }

  uint8_t u8() {
    if (!need(1))
      return 0;
    return static_cast<uint8_t>(*P++);
  }

  uint32_t u32() {
    if (!need(4))
      return 0;
    uint32_t V = 0;
    for (int I = 0; I < 4; ++I)
      V |= static_cast<uint32_t>(static_cast<uint8_t>(P[I])) << (8 * I);
    P += 4;
    return V;
  }

  uint64_t u64() {
    if (!need(8))
      return 0;
    uint64_t V = 0;
    for (int I = 0; I < 8; ++I)
      V |= static_cast<uint64_t>(static_cast<uint8_t>(P[I])) << (8 * I);
    P += 8;
    return V;
  }

  int64_t i64() { return static_cast<int64_t>(u64()); }

  bool boolean() { return u8() != 0; }

  std::string str() {
    uint64_t Len = u64();
    if (!need(Len))
      return {};
    std::string S(P, static_cast<size_t>(Len));
    P += Len;
    return S;
  }

  /// Guards a count read from untrusted bytes: fails (and returns false)
  /// unless \p Count elements of at least \p MinElemBytes each could still
  /// fit in the remaining input.
  bool checkCount(uint64_t Count, size_t MinElemBytes) {
    if (MinElemBytes != 0 && Count > remaining() / MinElemBytes) {
      Failed = true;
      return false;
    }
    return true;
  }

private:
  bool need(uint64_t N) {
    if (Failed || N > remaining()) {
      Failed = true;
      return false;
    }
    return true;
  }

  const char *P;
  const char *End;
  bool Failed = false;
};

/// FNV-1a over a byte range: the checkpoint payload checksum. Not
/// cryptographic — it guards against truncation and bit rot, not malice.
inline uint64_t fnv1a(std::string_view Bytes) {
  uint64_t H = 1469598103934665603ULL;
  for (char C : Bytes) {
    H ^= static_cast<uint8_t>(C);
    H *= 1099511628211ULL;
  }
  return H;
}

} // namespace awdit

#endif // AWDIT_SUPPORT_SERIALIZE_H
