//===- support/byte_arena.h - Refcounted pages of stream bytes ---*- C++ -*-===//
//
// Part of the AWDIT reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The zero-copy byte path of the ingest pipeline: stream bytes are written
/// once into page-sized refcounted buffers, and everything downstream —
/// batch dealing, shard-worker decoding, the server's per-connection line
/// splitting — works on `{page ref, byte range}` spans of the same pages.
/// No byte is copied after it leaves the read(2) buffer (or, with
/// ArenaWriter::window(), after the read(2) itself lands in the page).
///
/// Lifetime rules:
///  - a PageSpan's shared_ptr keeps its page alive; a page is freed when
///    the last span over it drops (batches are decoded into self-contained
///    LineEvents, so decoded output never pins pages);
///  - pages are immutable at and after any offset handed out in a span;
///    the writer only appends beyond them;
///  - when a page fills, the unconsumed tail (at most one partial line) is
///    carried into the next page — the one copy the scheme allows, bounded
///    by the longest line, not the stream.
///
//===----------------------------------------------------------------------===//

#ifndef AWDIT_SUPPORT_BYTE_ARENA_H
#define AWDIT_SUPPORT_BYTE_ARENA_H

#include <algorithm>
#include <cstring>
#include <memory>
#include <string_view>
#include <utility>

namespace awdit {

/// One immutable-once-shared buffer of raw stream bytes.
class ArenaPage {
public:
  explicit ArenaPage(size_t Cap)
      : Bytes(new char[Cap]), Cap(Cap) {}

  char *data() { return Bytes.get(); }
  const char *data() const { return Bytes.get(); }
  size_t capacity() const { return Cap; }

private:
  std::unique_ptr<char[]> Bytes;
  size_t Cap;
};

using ArenaPageRef = std::shared_ptr<ArenaPage>;

/// A [Begin, End) byte range of one shared page. The refcount is the
/// lifetime: whoever holds the span may read the bytes.
struct PageSpan {
  ArenaPageRef Page;
  size_t Begin = 0;
  size_t End = 0;

  size_t size() const { return End - Begin; }
  std::string_view view() const {
    return {Page->data() + Begin, End - Begin};
  }
};

/// The single-writer front of the arena: append bytes at the tail (either
/// by copy via append(), or zero-copy by read(2)-ing into window() and
/// commit()-ing), take refcounted whole-line spans off the front. Rolls to
/// a fresh page when the current one fills, carrying the unconsumed tail.
class ArenaWriter {
public:
  explicit ArenaWriter(size_t PageBytes) : PageBytes(PageBytes) {}

  /// A writable window of at least \p Min bytes at the tail (usually the
  /// whole rest of the page). Bytes written there become part of the
  /// stream only after commit().
  std::pair<char *, size_t> window(size_t Min = 1) {
    if (!Page || Page->capacity() - WritePos < Min)
      roll(Min);
    return {Page->data() + WritePos, Page->capacity() - WritePos};
  }

  /// Publishes \p N bytes written into the last window().
  void commit(size_t N) { WritePos += N; }

  /// Copy-in convenience for callers that already own a buffer.
  void append(std::string_view Chunk) {
    while (!Chunk.empty()) {
      auto [P, Len] = window();
      size_t N = std::min(Chunk.size(), Len);
      std::memcpy(P, Chunk.data(), N);
      commit(N);
      Chunk.remove_prefix(N);
    }
  }

  /// The committed-but-untaken bytes (whole lines plus a trailing partial
  /// line). Valid until the next window()/append().
  std::string_view pending() const {
    return Page ? std::string_view(Page->data() + ReadPos, WritePos - ReadPos)
                : std::string_view();
  }
  size_t pendingBytes() const { return WritePos - ReadPos; }

  /// Takes the next \p N pending bytes as a refcounted span — from here on
  /// those bytes are immutable and owned by whoever holds the span.
  PageSpan take(size_t N) {
    PageSpan S{Page, ReadPos, ReadPos + N};
    ReadPos += N;
    return S;
  }

private:
  void roll(size_t Min) {
    size_t Tail = WritePos - ReadPos;
    if (Page && Tail == 0 && Page.use_count() == 1 &&
        Page->capacity() >= Min) {
      // No outstanding spans and nothing to carry: recycle in place.
      ReadPos = WritePos = 0;
      return;
    }
    // An oversized line gets an oversized page; everything else gets the
    // standard size. Headroom past Min avoids rolling again immediately.
    size_t Cap = std::max(PageBytes, Tail + Min);
    ArenaPageRef Next = std::make_shared<ArenaPage>(Cap);
    if (Tail)
      std::memcpy(Next->data(), Page->data() + ReadPos, Tail);
    Page = std::move(Next);
    ReadPos = 0;
    WritePos = Tail;
  }

  size_t PageBytes;
  ArenaPageRef Page;
  size_t ReadPos = 0;
  size_t WritePos = 0;
};

} // namespace awdit

#endif // AWDIT_SUPPORT_BYTE_ARENA_H
