//===- support/timer.cpp - Wall-clock timing ------------------------------===//

#include "support/timer.h"

using namespace awdit;

void Timer::restart() { Start = std::chrono::steady_clock::now(); }

double Timer::elapsedSeconds() const {
  auto Now = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(Now - Start).count();
}

double Timer::elapsedMillis() const { return elapsedSeconds() * 1e3; }

Deadline::Deadline(double Seconds) : Unlimited(Seconds <= 0.0) {
  if (!Unlimited)
    End = std::chrono::steady_clock::now() +
          std::chrono::duration_cast<std::chrono::steady_clock::duration>(
              std::chrono::duration<double>(Seconds));
}

bool Deadline::expired() const {
  if (Unlimited)
    return false;
  return std::chrono::steady_clock::now() >= End;
}
