//===- support/assert.h - Assertion helpers ---------------------*- C++ -*-===//
//
// Part of the AWDIT reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Lightweight assertion macros used throughout the library. We keep plain
/// `assert` semantics (compiled out in NDEBUG builds) plus an always-on fatal
/// helper for unrecoverable internal errors.
///
//===----------------------------------------------------------------------===//

#ifndef AWDIT_SUPPORT_ASSERT_H
#define AWDIT_SUPPORT_ASSERT_H

#include <cassert>
#include <cstdio>
#include <cstdlib>

#define AWDIT_ASSERT(Cond, Msg) assert((Cond) && (Msg))

/// Aborts with a message. Used for control flow that must never be reached
/// even in release builds (e.g. corrupt internal state).
[[noreturn]] inline void awditUnreachable(const char *Msg) {
  std::fprintf(stderr, "awdit: internal error: %s\n", Msg);
  std::abort();
}

#endif // AWDIT_SUPPORT_ASSERT_H
