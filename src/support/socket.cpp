//===- support/socket.cpp - RAII TCP sockets for the server ----------------===//

#include "support/socket.h"

#include <arpa/inet.h>
#include <cerrno>
#include <cstring>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <signal.h>
#include <sys/socket.h>
#include <unistd.h>

using namespace awdit;

namespace {

/// A peer that disappears mid-write must surface as an error return, not a
/// process-killing SIGPIPE. MSG_NOSIGNAL covers send(); this guards the
/// rest (and non-Linux sends) once per process.
void ignoreSigpipeOnce() {
  static const bool Done = [] {
    ::signal(SIGPIPE, SIG_IGN);
    return true;
  }();
  (void)Done;
}

} // namespace

void Socket::close() {
  if (Fd >= 0) {
    ::close(Fd);
    Fd = -1;
  }
}

long Socket::readSome(char *Buf, size_t Size) const {
  for (;;) {
    ssize_t N = ::recv(Fd, Buf, Size, 0);
    if (N < 0 && errno == EINTR)
      continue;
    return static_cast<long>(N);
  }
}

bool Socket::writeAll(std::string_view Data) const {
  ignoreSigpipeOnce();
  size_t Off = 0;
  while (Off < Data.size()) {
    ssize_t N = ::send(Fd, Data.data() + Off, Data.size() - Off,
#ifdef MSG_NOSIGNAL
                       MSG_NOSIGNAL
#else
                       0
#endif
    );
    if (N < 0) {
      if (errno == EINTR)
        continue;
      return false;
    }
    Off += static_cast<size_t>(N);
  }
  return true;
}

long Socket::sendSome(std::string_view Data) const {
  ignoreSigpipeOnce();
  for (;;) {
    ssize_t N = ::send(Fd, Data.data(), Data.size(),
#ifdef MSG_NOSIGNAL
                       MSG_NOSIGNAL
#else
                       0
#endif
    );
    if (N >= 0)
      return static_cast<long>(N);
    if (errno == EINTR)
      continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK)
      return 0;
    return -1;
  }
}

bool Socket::setNonBlocking(bool Enable) const {
  int Flags = ::fcntl(Fd, F_GETFL, 0);
  if (Flags < 0)
    return false;
  int Want = Enable ? (Flags | O_NONBLOCK) : (Flags & ~O_NONBLOCK);
  return Want == Flags || ::fcntl(Fd, F_SETFL, Want) == 0;
}

void Socket::shutdownWrite() const { ::shutdown(Fd, SHUT_WR); }

bool TcpListener::listenOn(const std::string &Host, uint16_t Port,
                           std::string *Err) {
  auto Fail = [&](const std::string &Msg) {
    if (Err)
      *Err = Msg + ": " + std::strerror(errno);
    return false;
  };
  ignoreSigpipeOnce();
  int Fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (Fd < 0)
    return Fail("socket()");
  Sock = Socket(Fd);
  int One = 1;
  ::setsockopt(Fd, SOL_SOCKET, SO_REUSEADDR, &One, sizeof(One));

  sockaddr_in Addr = {};
  Addr.sin_family = AF_INET;
  Addr.sin_port = htons(Port);
  if (::inet_pton(AF_INET, Host.c_str(), &Addr.sin_addr) != 1) {
    if (Err)
      *Err = "invalid listen address '" + Host + "'";
    Sock.close();
    return false;
  }
  if (::bind(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) != 0) {
    bool R = Fail("bind " + Host + ":" + std::to_string(Port));
    Sock.close();
    return R;
  }
  if (::listen(Fd, 128) != 0) {
    bool R = Fail("listen()");
    Sock.close();
    return R;
  }
  sockaddr_in Bound = {};
  socklen_t Len = sizeof(Bound);
  if (::getsockname(Fd, reinterpret_cast<sockaddr *>(&Bound), &Len) != 0) {
    bool R = Fail("getsockname()");
    Sock.close();
    return R;
  }
  BoundPort = ntohs(Bound.sin_port);
  return true;
}

Socket TcpListener::accept() const {
  for (;;) {
    int Fd = ::accept(Sock.fd(), nullptr, nullptr);
    if (Fd < 0 && errno == EINTR)
      continue;
    return Socket(Fd);
  }
}

Socket awdit::tcpConnect(const std::string &Host, uint16_t Port,
                         std::string *Err) {
  auto Fail = [&](const std::string &Msg) {
    if (Err)
      *Err = Msg + ": " + std::strerror(errno);
    return Socket();
  };
  ignoreSigpipeOnce();
  int Fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (Fd < 0)
    return Fail("socket()");
  Socket S(Fd);
  sockaddr_in Addr = {};
  Addr.sin_family = AF_INET;
  Addr.sin_port = htons(Port);
  if (::inet_pton(AF_INET, Host.c_str(), &Addr.sin_addr) != 1) {
    if (Err)
      *Err = "invalid address '" + Host + "'";
    return Socket();
  }
  for (;;) {
    if (::connect(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) ==
        0)
      break;
    if (errno == EINTR)
      continue;
    return Fail("connect " + Host + ":" + std::to_string(Port));
  }
  // The protocol is line-oriented request/reply; don't batch tiny lines.
  int One = 1;
  ::setsockopt(Fd, IPPROTO_TCP, TCP_NODELAY, &One, sizeof(One));
  return S;
}
