//===- support/rng.h - Deterministic random number generation ---*- C++ -*-===//
//
// Part of the AWDIT reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small, fast, deterministic PRNG (SplitMix64) used by workload
/// generators, the database simulator, and randomized tests. We deliberately
/// avoid <random> engines so that histories are reproducible across standard
/// library implementations.
///
//===----------------------------------------------------------------------===//

#ifndef AWDIT_SUPPORT_RNG_H
#define AWDIT_SUPPORT_RNG_H

#include <cstddef>
#include <cstdint>
#include <vector>

namespace awdit {

/// Deterministic 64-bit PRNG (SplitMix64). Cheap to construct, copy, and
/// fork; identical sequences on every platform for a given seed.
class Rng {
public:
  explicit Rng(uint64_t Seed) : State(Seed) {}

  /// Returns the next raw 64-bit value.
  uint64_t next();

  /// Returns a uniformly distributed value in [0, Bound). \p Bound must be
  /// positive.
  uint64_t nextBelow(uint64_t Bound);

  /// Returns a uniformly distributed value in [Lo, Hi] (inclusive).
  uint64_t nextInRange(uint64_t Lo, uint64_t Hi);

  /// Returns true with probability \p P (clamped to [0, 1]).
  bool nextBool(double P);

  /// Returns a double in [0, 1).
  double nextDouble();

  /// Returns an index in [0, Weights.size()) with probability proportional
  /// to Weights[i]. All weights must be non-negative with a positive sum.
  size_t nextWeighted(const std::vector<double> &Weights);

  /// Returns a Zipf-like skewed index in [0, N): index i is drawn with
  /// probability proportional to 1/(i+1)^Theta. Used to model hot keys.
  size_t nextZipf(size_t N, double Theta);

  /// Forks an independent generator; the fork's stream is decorrelated from
  /// the parent's continued stream.
  Rng fork();

private:
  uint64_t State;
};

} // namespace awdit

#endif // AWDIT_SUPPORT_RNG_H
