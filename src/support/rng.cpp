//===- support/rng.cpp - Deterministic random number generation ----------===//

#include "support/rng.h"

#include "support/assert.h"

#include <cmath>

using namespace awdit;

uint64_t Rng::next() {
  // SplitMix64 (Steele, Lea, Flood 2014). Passes BigCrush when used as a
  // stream; more than adequate for workload generation.
  State += 0x9e3779b97f4a7c15ULL;
  uint64_t Z = State;
  Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebULL;
  return Z ^ (Z >> 31);
}

uint64_t Rng::nextBelow(uint64_t Bound) {
  AWDIT_ASSERT(Bound > 0, "nextBelow requires a positive bound");
  // Rejection-free multiply-shift mapping; bias is negligible (< 2^-64 * n)
  // for the bounds used in this project.
  return static_cast<uint64_t>(
      (static_cast<__uint128_t>(next()) * Bound) >> 64);
}

uint64_t Rng::nextInRange(uint64_t Lo, uint64_t Hi) {
  AWDIT_ASSERT(Lo <= Hi, "nextInRange requires Lo <= Hi");
  return Lo + nextBelow(Hi - Lo + 1);
}

bool Rng::nextBool(double P) {
  if (P <= 0.0)
    return false;
  if (P >= 1.0)
    return true;
  return nextDouble() < P;
}

double Rng::nextDouble() {
  // 53 random mantissa bits -> uniform double in [0, 1).
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

size_t Rng::nextWeighted(const std::vector<double> &Weights) {
  AWDIT_ASSERT(!Weights.empty(), "nextWeighted requires weights");
  double Total = 0.0;
  for (double W : Weights) {
    AWDIT_ASSERT(W >= 0.0, "weights must be non-negative");
    Total += W;
  }
  AWDIT_ASSERT(Total > 0.0, "weights must have a positive sum");
  double Pick = nextDouble() * Total;
  for (size_t I = 0; I < Weights.size(); ++I) {
    Pick -= Weights[I];
    if (Pick < 0.0)
      return I;
  }
  return Weights.size() - 1;
}

size_t Rng::nextZipf(size_t N, double Theta) {
  AWDIT_ASSERT(N > 0, "nextZipf requires a non-empty domain");
  if (N == 1 || Theta <= 0.0)
    return static_cast<size_t>(nextBelow(N));
  // Inverse-CDF approximation of the continuous analogue. Exact Zipf is not
  // required: we only need a stable hot-key skew for workload shaping.
  double U = nextDouble();
  if (Theta == 1.0) {
    double X = std::pow(static_cast<double>(N), U);
    size_t Idx = static_cast<size_t>(X) - (X >= 1.0 ? 1 : 0);
    return Idx < N ? Idx : N - 1;
  }
  double Exp = 1.0 - Theta;
  double X = std::pow(U * (std::pow(static_cast<double>(N), Exp) - 1.0) + 1.0,
                      1.0 / Exp);
  size_t Idx = static_cast<size_t>(X) - (X >= 1.0 ? 1 : 0);
  return Idx < N ? Idx : N - 1;
}

Rng Rng::fork() {
  uint64_t Seed = next();
  // Decorrelate the fork from the parent stream with an odd multiplier.
  return Rng(Seed * 0xda942042e4dd58b5ULL + 1);
}
