//===- support/timer.h - Wall-clock timing -----------------------*- C++ -*-===//
//
// Part of the AWDIT reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Steady-clock stopwatch used by the benchmark harness to measure checker
/// running times, plus a soft-deadline helper that models the timeouts used
/// in the paper's experiments.
///
//===----------------------------------------------------------------------===//

#ifndef AWDIT_SUPPORT_TIMER_H
#define AWDIT_SUPPORT_TIMER_H

#include <chrono>

namespace awdit {

/// A simple restartable stopwatch over std::chrono::steady_clock.
class Timer {
public:
  Timer() { restart(); }

  /// Resets the start point to now.
  void restart();

  /// Returns elapsed seconds since construction or the last restart().
  double elapsedSeconds() const;

  /// Returns elapsed milliseconds since construction or the last restart().
  double elapsedMillis() const;

private:
  std::chrono::steady_clock::time_point Start;
};

/// A soft deadline: work loops poll expired() and abandon the computation,
/// mirroring the per-history timeouts of the paper's experimental setup.
class Deadline {
public:
  /// Creates a deadline \p Seconds from now. Non-positive means "never".
  explicit Deadline(double Seconds);

  /// Returns true once the deadline has passed.
  bool expired() const;

private:
  bool Unlimited;
  std::chrono::steady_clock::time_point End;
};

} // namespace awdit

#endif // AWDIT_SUPPORT_TIMER_H
