//===- support/packed_edge_map.h - Flat map over packed edges ----*- C++ -*-===//
//
// Part of the AWDIT reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A flat open-addressing hash map keyed by a packed (src << 32 | dst) edge,
/// replacing std::unordered_map in the saturation engine's persisted edge
/// set (checker/saturation_state.h). Every flush touches the edge set once
/// or twice per delta edge (refcount up on insert, down on source re-run),
/// so the node-based map's allocation and pointer-chasing churn dominated
/// the residual per-flush cost; the flat table keeps probes inside one or
/// two cache lines and frees nothing on erase (backward-shift deletion, no
/// tombstones, so load stays what the live edges need).
///
/// Keys are packed transaction-id pairs and can never be all-ones (NoTxn is
/// not a valid edge endpoint), which frees ~0ULL as the empty sentinel.
///
//===----------------------------------------------------------------------===//

#ifndef AWDIT_SUPPORT_PACKED_EDGE_MAP_H
#define AWDIT_SUPPORT_PACKED_EDGE_MAP_H

#include <cstddef>
#include <cstdint>
#include <vector>

namespace awdit {

/// Open-addressing map from a packed edge (uint64_t, never ~0ULL) to \p V.
/// Linear probing, power-of-two capacity, max load factor 7/8 on insert,
/// backward-shift deletion. \p V must be default-constructible and cheap
/// to move (the saturation engine stores an 8-byte refcount pair).
template <typename V> class PackedEdgeMap {
public:
  static constexpr uint64_t EmptyKey = ~uint64_t(0);

  PackedEdgeMap() { rehash(MinCapacity); }

  size_t size() const { return Count; }
  bool empty() const { return Count == 0; }

  void clear() {
    Keys.assign(Keys.size(), EmptyKey);
    Values.assign(Values.size(), V{});
    Count = 0;
  }

  /// Returns the value for \p Key, inserting a default-constructed one if
  /// absent.
  V &operator[](uint64_t Key) {
    // Cap load at ~2/3: linear probing degrades sharply past that, and the
    // slots are only 8+sizeof(V) bytes, so headroom is cheap.
    if ((Count + 1) * 3 >= Keys.size() * 2)
      rehash(Keys.size() * 2);
    size_t Slot = probe(Key);
    if (Keys[Slot] != Key) {
      Keys[Slot] = Key;
      Values[Slot] = V{};
      ++Count;
    }
    return Values[Slot];
  }

  V *find(uint64_t Key) {
    size_t Slot = probe(Key);
    return Keys[Slot] == Key ? &Values[Slot] : nullptr;
  }

  const V *find(uint64_t Key) const {
    size_t Slot = probe(Key);
    return Keys[Slot] == Key ? &Values[Slot] : nullptr;
  }

  size_t count(uint64_t Key) const { return find(Key) ? 1 : 0; }

  /// Removes \p Key if present; returns true when an entry was removed.
  /// Backward-shift deletion: subsequent displaced entries slide back so
  /// probe chains stay gap-free without tombstones.
  bool erase(uint64_t Key) {
    size_t Slot = probe(Key);
    if (Keys[Slot] != Key)
      return false;
    size_t Mask = Keys.size() - 1;
    size_t Hole = Slot;
    size_t Next = (Hole + 1) & Mask;
    while (Keys[Next] != EmptyKey) {
      size_t Home = hash(Keys[Next]) & Mask;
      // Move Keys[Next] back into the hole unless its home slot lies
      // (cyclically) after the hole — then the hole does not break its
      // probe chain.
      bool HoleInChain = Next >= Home ? (Home <= Hole && Hole < Next)
                                      : (Home <= Hole || Hole < Next);
      if (HoleInChain) {
        Keys[Hole] = Keys[Next];
        Values[Hole] = std::move(Values[Next]);
        Hole = Next;
      }
      Next = (Next + 1) & Mask;
    }
    Keys[Hole] = EmptyKey;
    Values[Hole] = V{};
    --Count;
    return true;
  }

  /// Calls \p Fn(key, value) for every live entry, in table order.
  template <typename Fn> void forEach(Fn &&F) const {
    for (size_t I = 0; I < Keys.size(); ++I)
      if (Keys[I] != EmptyKey)
        F(Keys[I], Values[I]);
  }

private:
  static constexpr size_t MinCapacity = 16;

  static uint64_t hash(uint64_t X) {
    // splitmix64 finalizer: full-avalanche over the packed (src, dst)
    // halves so sequential transaction ids spread across the table.
    X += 0x9e3779b97f4a7c15ULL;
    X = (X ^ (X >> 30)) * 0xbf58476d1ce4e5b9ULL;
    X = (X ^ (X >> 27)) * 0x94d049bb133111ebULL;
    return X ^ (X >> 31);
  }

  size_t probe(uint64_t Key) const {
    size_t Mask = Keys.size() - 1;
    size_t Slot = hash(Key) & Mask;
    while (Keys[Slot] != EmptyKey && Keys[Slot] != Key)
      Slot = (Slot + 1) & Mask;
    return Slot;
  }

  void rehash(size_t NewCapacity) {
    std::vector<uint64_t> OldKeys = std::move(Keys);
    std::vector<V> OldValues = std::move(Values);
    Keys.assign(NewCapacity, EmptyKey);
    Values.assign(NewCapacity, V{});
    Count = 0;
    for (size_t I = 0; I < OldKeys.size(); ++I) {
      if (OldKeys[I] == EmptyKey)
        continue;
      size_t Slot = probe(OldKeys[I]);
      Keys[Slot] = OldKeys[I];
      Values[Slot] = std::move(OldValues[I]);
      ++Count;
    }
  }

  std::vector<uint64_t> Keys;
  std::vector<V> Values;
  size_t Count = 0;
};

} // namespace awdit

#endif // AWDIT_SUPPORT_PACKED_EDGE_MAP_H
