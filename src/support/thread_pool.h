//===- support/thread_pool.h - Work-stealing thread pool ---------*- C++ -*-===//
//
// Part of the AWDIT reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small work-stealing thread pool for the sharded checking engine. Each
/// worker owns a deque: tasks submitted from a worker go to the front of its
/// own deque (LIFO, cache-warm), external submissions are distributed round-
/// robin, and idle workers steal from the back of their peers' deques.
///
/// parallelFor() is the primary entry point of the checkers: the calling
/// thread participates in the loop and, while waiting for stragglers, helps
/// drain the pool's queues — so nested parallel sections cannot deadlock.
/// The first exception thrown by any chunk is captured, remaining chunks are
/// cancelled, and the exception is rethrown on the calling thread.
///
//===----------------------------------------------------------------------===//

#ifndef AWDIT_SUPPORT_THREAD_POOL_H
#define AWDIT_SUPPORT_THREAD_POOL_H

#include <atomic>
#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

namespace awdit {

class ThreadPool {
public:
  /// Creates a pool with \p Threads workers; 0 selects defaultThreads().
  explicit ThreadPool(size_t Threads = 0) {
    if (Threads == 0)
      Threads = defaultThreads();
    Queues.reserve(Threads);
    for (size_t I = 0; I < Threads; ++I)
      Queues.push_back(std::make_unique<Queue>());
    Workers.reserve(Threads);
    for (size_t I = 0; I < Threads; ++I)
      Workers.emplace_back([this, I] { workerLoop(I); });
  }

  ThreadPool(const ThreadPool &) = delete;
  ThreadPool &operator=(const ThreadPool &) = delete;

  /// Drains all queued tasks, then joins the workers.
  ~ThreadPool() {
    {
      std::lock_guard<std::mutex> L(SleepMutex);
      Stopping = true;
    }
    SleepCv.notify_all();
    for (std::thread &W : Workers)
      W.join();
  }

  size_t numThreads() const { return Workers.size(); }

  /// std::thread::hardware_concurrency() with a floor of 1.
  static size_t defaultThreads() {
    unsigned N = std::thread::hardware_concurrency();
    return N == 0 ? 1 : N;
  }

  /// Submits a task; the returned future carries its result or exception.
  template <typename Fn>
  auto submit(Fn &&F) -> std::future<std::invoke_result_t<std::decay_t<Fn>>> {
    using Result = std::invoke_result_t<std::decay_t<Fn>>;
    auto Task = std::make_shared<std::packaged_task<Result()>>(
        std::forward<Fn>(F));
    std::future<Result> Future = Task->get_future();
    enqueue([Task] { (*Task)(); });
    return Future;
  }

  /// Runs Body(ChunkBegin, ChunkEnd) over [Begin, End) split into chunks of
  /// at most \p Grain indices. The caller participates; chunk order is
  /// unspecified, but every index is covered exactly once. Rethrows the
  /// first chunk exception after the loop has quiesced.
  template <typename Fn>
  void parallelFor(size_t Begin, size_t End, size_t Grain, Fn &&Body) {
    if (End <= Begin)
      return;
    if (Grain == 0)
      Grain = 1;
    size_t N = End - Begin;
    size_t NumChunks = (N + Grain - 1) / Grain;
    if (NumChunks <= 1 || numThreads() <= 1) {
      Body(Begin, End);
      return;
    }

    struct LoopState {
      std::function<void(size_t, size_t)> Chunk;
      size_t Begin = 0, End = 0, Grain = 1, NumChunks = 0;
      std::atomic<size_t> NextChunk{0};
      std::atomic<size_t> InFlight{0};
      std::mutex ErrMutex;
      std::exception_ptr Err;
    };
    auto S = std::make_shared<LoopState>();
    S->Chunk = std::forward<Fn>(Body);
    S->Begin = Begin;
    S->End = End;
    S->Grain = Grain;
    S->NumChunks = NumChunks;

    auto RunChunks = [](const std::shared_ptr<LoopState> &S) {
      for (;;) {
        // InFlight is raised *before* the claim so the caller's quiescence
        // check (NextChunk exhausted && InFlight == 0) can never observe a
        // claimed-but-uncounted chunk.
        S->InFlight.fetch_add(1);
        size_t C = S->NextChunk.fetch_add(1);
        if (C >= S->NumChunks) {
          S->InFlight.fetch_sub(1);
          return;
        }
        size_t B = S->Begin + C * S->Grain;
        size_t E = std::min(B + S->Grain, S->End);
        try {
          S->Chunk(B, E);
        } catch (...) {
          {
            std::lock_guard<std::mutex> L(S->ErrMutex);
            if (!S->Err)
              S->Err = std::current_exception();
          }
          // Cancel chunks nobody has claimed yet.
          S->NextChunk.store(S->NumChunks);
        }
        S->InFlight.fetch_sub(1);
      }
    };

    size_t Helpers = std::min(numThreads(), NumChunks - 1);
    for (size_t I = 0; I < Helpers; ++I)
      enqueue([S, RunChunks] { RunChunks(S); });

    RunChunks(S);
    // Help with unrelated pool work until the stragglers finish, so nested
    // parallelFor calls from inside pool tasks make progress.
    while (S->NextChunk.load() < S->NumChunks || S->InFlight.load() != 0) {
      if (!tryRunOneTask(CurrentWorker))
        std::this_thread::yield();
    }
    if (S->Err)
      std::rethrow_exception(S->Err);
  }

private:
  struct Queue {
    std::mutex Mutex;
    std::deque<std::function<void()>> Tasks;
  };

  void enqueue(std::function<void()> Task) {
    size_t Target;
    if (CurrentPool == this) {
      // Worker-local LIFO push: nested tasks stay cache-warm.
      Target = CurrentWorker;
      std::lock_guard<std::mutex> L(Queues[Target]->Mutex);
      Queues[Target]->Tasks.push_front(std::move(Task));
    } else {
      Target = NextQueue.fetch_add(1) % Queues.size();
      std::lock_guard<std::mutex> L(Queues[Target]->Mutex);
      Queues[Target]->Tasks.push_back(std::move(Task));
    }
    {
      std::lock_guard<std::mutex> L(SleepMutex);
      ++PendingTasks;
    }
    SleepCv.notify_one();
  }

  /// Pops one task (own queue front first, then steals from peers' backs)
  /// and runs it. \p Home is the preferred queue; out-of-range values make
  /// every queue a steal target (used by non-worker callers).
  bool tryRunOneTask(size_t Home) {
    std::function<void()> Task;
    size_t NumQueues = Queues.size();
    for (size_t Offset = 0; Offset < NumQueues && !Task; ++Offset) {
      size_t I = Home < NumQueues ? (Home + Offset) % NumQueues : Offset;
      Queue &Q = *Queues[I];
      std::lock_guard<std::mutex> L(Q.Mutex);
      if (Q.Tasks.empty())
        continue;
      if (I == Home) {
        Task = std::move(Q.Tasks.front());
        Q.Tasks.pop_front();
      } else {
        Task = std::move(Q.Tasks.back());
        Q.Tasks.pop_back();
      }
    }
    if (!Task)
      return false;
    {
      std::lock_guard<std::mutex> L(SleepMutex);
      --PendingTasks;
    }
    Task();
    return true;
  }

  void workerLoop(size_t Index) {
    CurrentPool = this;
    CurrentWorker = Index;
    for (;;) {
      if (tryRunOneTask(Index))
        continue;
      std::unique_lock<std::mutex> L(SleepMutex);
      SleepCv.wait(L, [this] { return Stopping || PendingTasks > 0; });
      if (Stopping && PendingTasks == 0)
        return;
    }
  }

  std::vector<std::unique_ptr<Queue>> Queues;
  std::vector<std::thread> Workers;
  std::mutex SleepMutex;
  std::condition_variable SleepCv;
  /// Guarded by SleepMutex (it is the cv predicate).
  size_t PendingTasks = 0;
  bool Stopping = false;
  std::atomic<size_t> NextQueue{0};

  /// Identity of the current thread within its pool, for LIFO submission
  /// and steal preference. nullptr/-1 on non-worker threads.
  static inline thread_local ThreadPool *CurrentPool = nullptr;
  static inline thread_local size_t CurrentWorker = static_cast<size_t>(-1);
};

} // namespace awdit

#endif // AWDIT_SUPPORT_THREAD_POOL_H
