//===- support/epoch_snapshot.h - Epoch-stamped snapshot handle --*- C++ -*-===//
//
// Part of the AWDIT reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// An epoch-based snapshot handle over a dense array of slots. The owner of
/// a mutable array opens an epoch, hands read-only access to speculative
/// workers, and then — while merging their results sequentially — stamps
/// every slot it writes. A speculative result is valid exactly when none of
/// the slots it read were stamped in the current epoch: the snapshot the
/// worker saw is still the live value.
///
/// This is the validation half of the sharded monitor's speculative
/// saturation (checker/saturation_state.h): shard workers compute CC
/// happens-before deltas against the pre-merge rows, and the applier adopts
/// a delta only when EpochTracker proves its inputs were not overwritten by
/// an earlier merge step. The tracker is transient per-flush bookkeeping —
/// it is deliberately not part of any checkpoint (the stamps are
/// meaningless outside the flush that opened the epoch).
///
//===----------------------------------------------------------------------===//

#ifndef AWDIT_SUPPORT_EPOCH_SNAPSHOT_H
#define AWDIT_SUPPORT_EPOCH_SNAPSHOT_H

#include <cstddef>
#include <cstdint>
#include <vector>

namespace awdit {

/// Per-slot last-written-epoch stamps plus a current-epoch counter.
/// Opening a new epoch is O(1): slots are "untouched" in an epoch until
/// explicitly stamped, so advancing the counter invalidates nothing and
/// clears everything at once.
class EpochTracker {
public:
  /// Grows the stamp array to cover \p Slots slots (never shrinks; new
  /// slots start untouched in every epoch, including the current one).
  void ensureSlots(size_t Slots) {
    if (Stamp.size() < Slots)
      Stamp.resize(Slots, 0);
  }

  /// Opens a new epoch: every slot becomes untouched. Returns the epoch
  /// id (monotonic, never 0 — 0 is the never-stamped sentinel).
  uint64_t beginEpoch() { return ++Current; }

  uint64_t currentEpoch() const { return Current; }

  /// Stamps slot \p I as written in the current epoch.
  void touch(size_t I) { Stamp[I] = Current; }

  /// True iff slot \p I was stamped since the current epoch opened.
  bool touchedInCurrentEpoch(size_t I) const {
    return I < Stamp.size() && Stamp[I] == Current;
  }

  /// Drops the slot prefix [0, \p Cut), renumbering the survivors — the
  /// eviction-compaction counterpart of the owner array's own compaction.
  void eraseFront(size_t Cut) {
    if (Cut >= Stamp.size())
      Stamp.clear();
    else
      Stamp.erase(Stamp.begin(), Stamp.begin() + Cut);
  }

  size_t numSlots() const { return Stamp.size(); }

  void clear() {
    Stamp.clear();
    Current = 0;
  }

private:
  std::vector<uint64_t> Stamp;
  uint64_t Current = 0;
};

} // namespace awdit

#endif // AWDIT_SUPPORT_EPOCH_SNAPSHOT_H
