//===- baseline/baseline.h - Baseline tester interface ------------*- C++ -*-===//
//
// Part of the AWDIT reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Common interface of the reimplemented baseline isolation testers the
/// paper compares against (Plume, DBCop, CausalC+/TCC-Mono — see DESIGN.md
/// §2 for the substitution rationale). Baselines accept a soft deadline,
/// mirroring the per-history timeouts of the paper's experiments.
///
//===----------------------------------------------------------------------===//

#ifndef AWDIT_BASELINE_BASELINE_H
#define AWDIT_BASELINE_BASELINE_H

#include "checker/isolation_level.h"
#include "history/history.h"
#include "support/timer.h"

namespace awdit {

/// Outcome of a baseline run.
struct BaselineResult {
  bool Consistent = false;
  bool TimedOut = false;
};

/// Abstract baseline tester.
class BaselineChecker {
public:
  virtual ~BaselineChecker();

  /// Display name for tables ("Plume-like", "DBCop-like", "Naive").
  virtual const char *name() const = 0;

  /// True if the baseline supports checking \p Level.
  virtual bool supports(IsolationLevel Level) const = 0;

  /// Checks \p H against \p Level, polling \p Limit and giving up with
  /// TimedOut = true once it expires.
  virtual BaselineResult check(const History &H, IsolationLevel Level,
                               const Deadline &Limit) = 0;
};

} // namespace awdit

#endif // AWDIT_BASELINE_BASELINE_H
