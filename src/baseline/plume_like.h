//===- baseline/plume_like.h - Plume-style baseline ---------------*- C++ -*-===//
//
// Part of the AWDIT reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A reimplementation of the architecture of Plume (Liu et al. 2024), the
/// strongest baseline in the paper's evaluation: a construction phase that
/// builds dependency indices (per-key writer lists, vector clocks for
/// happens-before), followed by exhaustive sweeps over transactional
/// anomalous patterns (TAPs). The sweeps enumerate, per external read, every
/// transaction writing the same key — the superlinear search AWDIT's
/// minimal saturation avoids. Verdicts agree with AWDIT (both are sound and
/// complete); only the complexity profile differs.
///
//===----------------------------------------------------------------------===//

#ifndef AWDIT_BASELINE_PLUME_LIKE_H
#define AWDIT_BASELINE_PLUME_LIKE_H

#include "baseline/baseline.h"

namespace awdit {

/// Plume-style TAP checker: construction phase + per-key exhaustive sweeps.
class PlumeLikeChecker : public BaselineChecker {
public:
  const char *name() const override { return "Plume-like"; }
  bool supports(IsolationLevel) const override { return true; }
  BaselineResult check(const History &H, IsolationLevel Level,
                       const Deadline &Limit) override;
};

} // namespace awdit

#endif // AWDIT_BASELINE_PLUME_LIKE_H
