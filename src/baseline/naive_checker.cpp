//===- baseline/naive_checker.cpp - Exhaustive-inference oracle ------------===//

#include "baseline/naive_checker.h"

#include "checker/commit_graph.h"
#include "checker/read_consistency.h"

#include <unordered_map>
#include <unordered_set>
#include <vector>

using namespace awdit;

// The BaselineChecker vtable anchor lives here (see LLVM coding standards:
// classes with virtual methods need one out-of-line virtual definition).
BaselineChecker::~BaselineChecker() = default;

namespace {

/// Collects, for every committed t3, the set of transactions t2 with
/// t2 (so ∪ wr)+ t3, by a backward DFS over so ∪ wr. Quadratic on purpose.
class AncestorOracle {
public:
  explicit AncestorOracle(const History &H) : H(H) {}

  /// Returns the strict so ∪ wr ancestors of \p T3.
  const std::unordered_set<TxnId> &ancestors(TxnId T3) {
    auto [It, Inserted] = Cache.try_emplace(T3);
    if (!Inserted)
      return It->second;
    std::unordered_set<TxnId> &Set = It->second;
    std::vector<TxnId> Work;
    auto Push = [&](TxnId U) {
      if (Set.insert(U).second)
        Work.push_back(U);
    };
    const Transaction &T = H.txn(T3);
    if (T.SoIndex > 0)
      Push(H.sessionTxns(T.Session)[T.SoIndex - 1]);
    for (TxnId W : T.ReadFroms)
      Push(W);
    while (!Work.empty()) {
      TxnId U = Work.back();
      Work.pop_back();
      const Transaction &TU = H.txn(U);
      if (TU.SoIndex > 0)
        Push(H.sessionTxns(TU.Session)[TU.SoIndex - 1]);
      for (TxnId W : TU.ReadFroms)
        Push(W);
    }
    return Set;
  }

private:
  const History &H;
  std::unordered_map<TxnId, std::unordered_set<TxnId>> Cache;
};

} // namespace

BaselineResult NaiveChecker::check(const History &H, IsolationLevel Level,
                                   const Deadline &Limit) {
  BaselineResult Res;
  std::vector<Violation> Sink;
  if (!checkReadConsistency(H, Sink)) {
    Res.Consistent = false;
    return Res;
  }

  CommitGraph Co(H);
  AncestorOracle Ancestors(H);

  for (TxnId T3 = 0; T3 < H.numTxns(); ++T3) {
    const Transaction &T = H.txn(T3);
    if (!T.Committed)
      continue;
    if (Limit.expired()) {
      Res.TimedOut = true;
      return Res;
    }

    switch (Level) {
    case IsolationLevel::ReadCommitted: {
      // Fig. 3a: t2 -wr-> r -po-> r_x, t1 -wr_x-> r_x, t2 writes x.
      // Enumerate all ordered pairs of external reads.
      for (size_t J = 0; J < T.ExtReads.size(); ++J) {
        const ReadInfo &Rx = T.Reads[T.ExtReads[J]];
        TxnId T1 = Rx.Writer;
        for (size_t I = 0; I < J; ++I) {
          const ReadInfo &R = T.Reads[T.ExtReads[I]];
          TxnId T2 = R.Writer;
          if (T2 != T1 && H.txn(T2).writesKey(Rx.K))
            Co.inferEdge(T2, T1);
        }
      }
      break;
    }
    case IsolationLevel::ReadAtomic: {
      // Fig. 3b: t1 -wr_x-> t3, t2 writes x, t2 (so ∪ wr) t3.
      // Direct so ∪ wr predecessors: all so-earlier txns of the session
      // plus all wr predecessors.
      for (uint32_t ReadIdx : T.ExtReads) {
        const ReadInfo &RI = T.Reads[ReadIdx];
        TxnId T1 = RI.Writer;
        auto Consider = [&](TxnId T2) {
          if (T2 != T1 && T2 != T3 && H.txn(T2).writesKey(RI.K))
            Co.inferEdge(T2, T1);
        };
        const std::vector<TxnId> &Sess = H.sessionTxns(T.Session);
        for (uint32_t I = 0; I < T.SoIndex; ++I)
          Consider(Sess[I]);
        for (TxnId W : T.ReadFroms)
          Consider(W);
      }
      break;
    }
    case IsolationLevel::CausalConsistency: {
      // Fig. 3c: t2 (so ∪ wr)+ t3. A so ∪ wr cycle makes ancestors
      // ill-defined; it is a violation of every level anyway.
      for (uint32_t ReadIdx : T.ExtReads) {
        const ReadInfo &RI = T.Reads[ReadIdx];
        TxnId T1 = RI.Writer;
        for (TxnId T2 : Ancestors.ancestors(T3)) {
          if (T2 != T1 && T2 != T3 && H.txn(T2).writesKey(RI.K))
            Co.inferEdge(T2, T1);
        }
        if (Limit.expired()) {
          Res.TimedOut = true;
          return Res;
        }
      }
      break;
    }
    }
  }

  Res.Consistent = Co.checkAcyclic(Sink, /*MaxWitnesses=*/0);
  return Res;
}

bool awdit::naiveConsistent(const History &H, IsolationLevel Level) {
  NaiveChecker Checker;
  BaselineResult Res = Checker.check(H, Level, Deadline(/*Seconds=*/0));
  return Res.Consistent;
}
