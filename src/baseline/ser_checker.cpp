//===- baseline/ser_checker.cpp - Serializability checker -------------------===//

#include "baseline/ser_checker.h"

#include "checker/read_consistency.h"
#include "support/assert.h"

#include <map>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

using namespace awdit;

namespace {

/// DFS over frontier states. A state is the per-session count of already
/// committed transactions; a transaction can commit next iff it is the
/// next of its session and every external read observes the current last
/// committed writer of its key.
class FrontierSearch {
public:
  FrontierSearch(const History &H, const Deadline &Limit)
      : H(H), Limit(Limit), Frontier(H.numSessions(), 0) {}

  /// Returns 1 (serializable), 0 (not serializable), -1 (timeout).
  int run() {
    TotalTxns = 0;
    for (SessionId S = 0; S < H.numSessions(); ++S)
      TotalTxns += H.sessionTxns(S).size();
    return dfs(0) ? 1 : (TimedOut ? -1 : 0);
  }

private:
  bool dfs(size_t Committed) {
    if (Committed == TotalTxns)
      return true;
    if (Limit.expired()) {
      TimedOut = true;
      return false;
    }
    if (!Failed.insert(packState()).second)
      return false; // Already explored from this exact state.

    for (SessionId S = 0; S < H.numSessions(); ++S) {
      uint32_t Next = Frontier[S];
      if (Next >= H.sessionTxns(S).size())
        continue;
      TxnId T = H.sessionTxns(S)[Next];
      if (!canCommit(T))
        continue;
      apply(T, S);
      if (dfs(Committed + 1))
        return true;
      undo(T, S);
      if (TimedOut)
        return false;
    }
    return false;
  }

  bool canCommit(TxnId T) const {
    const Transaction &Txn = H.txn(T);
    for (uint32_t ReadIdx : Txn.ExtReads) {
      const ReadInfo &RI = Txn.Reads[ReadIdx];
      auto It = LastWriter.find(RI.K);
      TxnId Current = It == LastWriter.end() || It->second.empty()
                          ? NoTxn
                          : It->second.back();
      if (Current != RI.Writer)
        return false;
    }
    return true;
  }

  void apply(TxnId T, SessionId S) {
    ++Frontier[S];
    for (Key X : H.txn(T).WriteKeys) {
      LastWriter[X].push_back(T);
      Tops[X] = T;
    }
  }

  void undo(TxnId T, SessionId S) {
    --Frontier[S];
    for (Key X : H.txn(T).WriteKeys) {
      std::vector<TxnId> &Stack = LastWriter[X];
      Stack.pop_back();
      if (Stack.empty())
        Tops.erase(X);
      else
        Tops[X] = Stack.back();
    }
  }

  std::string packState() const {
    // Exact state key (no hash-collision unsoundness). Future feasibility
    // is a function of the frontier *and* the current last writer of each
    // key (two commit orders reaching the same frontier can differ in
    // which writer is on top), so both are part of the memo key.
    std::string Key(reinterpret_cast<const char *>(Frontier.data()),
                    Frontier.size() * sizeof(uint32_t));
    Key.reserve(Key.size() + Tops.size() * 12);
    for (const auto &[K, Top] : Tops) {
      Key.append(reinterpret_cast<const char *>(&K), sizeof(K));
      Key.append(reinterpret_cast<const char *>(&Top), sizeof(Top));
    }
    return Key;
  }

  const History &H;
  const Deadline &Limit;
  std::vector<uint32_t> Frontier;
  std::unordered_map<Key, std::vector<TxnId>> LastWriter;
  /// Deterministically ordered view of the current top writer per key.
  std::map<Key, TxnId> Tops;
  std::unordered_set<std::string> Failed;
  size_t TotalTxns = 0;
  bool TimedOut = false;
};

} // namespace

BaselineResult SerChecker::check(const History &H, IsolationLevel,
                                 const Deadline &Limit) {
  BaselineResult Res;
  std::vector<Violation> Sink;
  if (!checkReadConsistency(H, Sink)) {
    Res.Consistent = false;
    return Res;
  }
  FrontierSearch Search(H, Limit);
  int Verdict = Search.run();
  if (Verdict < 0) {
    Res.TimedOut = true;
    return Res;
  }
  Res.Consistent = Verdict == 1;
  return Res;
}

bool awdit::isSerializable(const History &H) {
  SerChecker Checker;
  BaselineResult Res = Checker.check(H, IsolationLevel::ReadCommitted,
                                     Deadline(/*Seconds=*/0));
  AWDIT_ASSERT(!Res.TimedOut, "unlimited search cannot time out");
  return Res.Consistent;
}
