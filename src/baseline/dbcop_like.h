//===- baseline/dbcop_like.h - DBCop-style baseline ---------------*- C++ -*-===//
//
// Part of the AWDIT reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A reimplementation of the algorithmic style of DBCop (Biswas & Enea
/// 2019) for Causal Consistency: materialize the full transitive closure of
/// so ∪ wr as per-transaction ancestor bitsets, run the CC inference rule
/// against closure queries, and re-materialize the closure of co' for the
/// acyclicity verdict. Sound and complete, but inherently quadratic-plus in
/// time and memory — the scaling wall the Fig. 7 experiment exhibits.
///
//===----------------------------------------------------------------------===//

#ifndef AWDIT_BASELINE_DBCOP_LIKE_H
#define AWDIT_BASELINE_DBCOP_LIKE_H

#include "baseline/baseline.h"

namespace awdit {

/// Closure-based CC checker in the style of DBCop.
class DbcopLikeChecker : public BaselineChecker {
public:
  const char *name() const override { return "DBCop-like"; }
  bool supports(IsolationLevel Level) const override {
    return Level == IsolationLevel::CausalConsistency;
  }
  BaselineResult check(const History &H, IsolationLevel Level,
                       const Deadline &Limit) override;
};

} // namespace awdit

#endif // AWDIT_BASELINE_DBCOP_LIKE_H
