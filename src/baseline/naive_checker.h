//===- baseline/naive_checker.h - Exhaustive-inference oracle -----*- C++ -*-===//
//
// Part of the AWDIT reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The naive reference checker: applies the RC/RA/CC inference rules
/// (Fig. 3) exhaustively over all qualifying transaction triples and tests
/// the resulting (fully saturated, non-minimal) co' for acyclicity. By
/// Lemma 3.2 this decides consistency, so it doubles as the ground-truth
/// oracle for differential tests, and as the stand-in for the slow
/// SMT/Datalog baselines (CausalC+, TCC-Mono) in the Fig. 7 bench.
///
//===----------------------------------------------------------------------===//

#ifndef AWDIT_BASELINE_NAIVE_CHECKER_H
#define AWDIT_BASELINE_NAIVE_CHECKER_H

#include "baseline/baseline.h"

namespace awdit {

/// Exhaustive-inference consistency oracle. CC reachability is computed
/// with per-transaction backward searches, giving an O(n^2)-O(n^3) profile
/// depending on history shape.
class NaiveChecker : public BaselineChecker {
public:
  const char *name() const override { return "Naive"; }
  bool supports(IsolationLevel) const override { return true; }
  BaselineResult check(const History &H, IsolationLevel Level,
                       const Deadline &Limit) override;
};

/// Convenience wrapper without a deadline, for tests: never times out.
bool naiveConsistent(const History &H, IsolationLevel Level);

} // namespace awdit

#endif // AWDIT_BASELINE_NAIVE_CHECKER_H
