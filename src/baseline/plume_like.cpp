//===- baseline/plume_like.cpp - Plume-style baseline -----------------------===//

#include "baseline/plume_like.h"

#include "checker/check_cc.h"
#include "checker/commit_graph.h"
#include "checker/read_consistency.h"

#include <unordered_map>
#include <unordered_set>
#include <vector>

using namespace awdit;

namespace {

/// Construction-phase product: per-key list of all committed writer
/// transactions (deduplicated), mirroring Plume's dependency graph build.
using WriterIndex = std::unordered_map<Key, std::vector<TxnId>>;

WriterIndex buildWriterIndex(const History &H) {
  WriterIndex Index;
  for (TxnId Id = 0; Id < H.numTxns(); ++Id) {
    const Transaction &T = H.txn(Id);
    if (!T.Committed)
      continue;
    for (Key X : T.WriteKeys)
      Index[X].push_back(Id);
  }
  return Index;
}

} // namespace

BaselineResult PlumeLikeChecker::check(const History &H,
                                       IsolationLevel Level,
                                       const Deadline &Limit) {
  BaselineResult Res;
  std::vector<Violation> Sink;
  if (!checkReadConsistency(H, Sink)) {
    Res.Consistent = false;
    return Res;
  }

  // Construction phase: writer index, and happens-before clocks for CC.
  WriterIndex Writers = buildWriterIndex(H);
  HappensBefore HB;
  if (Level == IsolationLevel::CausalConsistency) {
    if (!computeHappensBefore(H, HB)) {
      Res.Consistent = false; // so ∪ wr cycle.
      return Res;
    }
  }

  CommitGraph Co(H);

  // TAP sweep phase.
  for (TxnId T3 = 0; T3 < H.numTxns(); ++T3) {
    const Transaction &T = H.txn(T3);
    if (!T.Committed)
      continue;
    if (Limit.expired()) {
      Res.TimedOut = true;
      return Res;
    }

    switch (Level) {
    case IsolationLevel::ReadCommitted: {
      // For each external read r_x, pair it against every distinct writer
      // observed earlier in po that also writes r_x.key.
      std::vector<TxnId> SeenWriters;
      std::unordered_set<TxnId> SeenSet;
      for (uint32_t ReadPos : T.ExtReads) {
        const ReadInfo &Rx = T.Reads[ReadPos];
        TxnId T1 = Rx.Writer;
        for (TxnId T2 : SeenWriters)
          if (T2 != T1 && H.txn(T2).writesKey(Rx.K))
            Co.inferEdge(T2, T1);
        if (SeenSet.insert(T1).second)
          SeenWriters.push_back(T1);
      }
      break;
    }
    case IsolationLevel::ReadAtomic: {
      // For each external read of x, sweep all writers of x and keep those
      // that are direct so ∪ wr predecessors of t3.
      std::unordered_set<TxnId> WrPreds(T.ReadFroms.begin(),
                                        T.ReadFroms.end());
      for (uint32_t ReadPos : T.ExtReads) {
        const ReadInfo &RI = T.Reads[ReadPos];
        TxnId T1 = RI.Writer;
        auto It = Writers.find(RI.K);
        if (It == Writers.end())
          continue;
        for (TxnId T2 : It->second) {
          if (T2 == T1 || T2 == T3)
            continue;
          bool SoPred = H.txn(T2).Session == T.Session &&
                        H.txn(T2).SoIndex < T.SoIndex;
          if (SoPred || WrPreds.count(T2))
            Co.inferEdge(T2, T1);
        }
      }
      break;
    }
    case IsolationLevel::CausalConsistency: {
      // For each external read of x, sweep all writers of x and keep the
      // happens-before predecessors of t3 (O(1) clock lookups).
      for (uint32_t ReadPos : T.ExtReads) {
        const ReadInfo &RI = T.Reads[ReadPos];
        TxnId T1 = RI.Writer;
        auto It = Writers.find(RI.K);
        if (It == Writers.end())
          continue;
        for (TxnId T2 : It->second) {
          if (T2 == T1 || T2 == T3)
            continue;
          const Transaction &W = H.txn(T2);
          if (W.SoIndex < HB.get(T3, W.Session))
            Co.inferEdge(T2, T1);
        }
        if (Limit.expired()) {
          Res.TimedOut = true;
          return Res;
        }
      }
      break;
    }
    }
  }

  Res.Consistent = Co.checkAcyclic(Sink, /*MaxWitnesses=*/0);
  return Res;
}
