//===- baseline/dbcop_like.cpp - DBCop-style baseline -----------------------===//

#include "baseline/dbcop_like.h"

#include "checker/commit_graph.h"
#include "checker/read_consistency.h"
#include "graph/topo_sort.h"
#include "support/assert.h"

#include <unordered_map>
#include <vector>

using namespace awdit;

namespace {

/// Dense ancestor bitsets: row T holds one bit per transaction id that
/// reaches T through the graph. The quadratic memory is the point — it is
/// what the closure-based baselines pay.
class ClosureMatrix {
public:
  ClosureMatrix(size_t N) : N(N), Words((N + 63) / 64) {}

  /// Computes ancestors of every node of \p G in topological order.
  /// Returns false on a cycle or when \p Limit expires (sets TimedOut).
  bool compute(const Digraph &G, const Deadline &Limit, bool &TimedOut) {
    std::optional<std::vector<uint32_t>> Order = topologicalSort(G);
    if (!Order)
      return false;
    Rows.assign(N * Words, 0);
    // Process in topo order; push each node's closed row to successors.
    for (uint32_t U : *Order) {
      if (Limit.expired()) {
        TimedOut = true;
        return false;
      }
      uint64_t *RowU = &Rows[static_cast<size_t>(U) * Words];
      for (uint32_t V : G.succs(U)) {
        uint64_t *RowV = &Rows[static_cast<size_t>(V) * Words];
        for (size_t W = 0; W < Words; ++W)
          RowV[W] |= RowU[W];
        RowV[U / 64] |= uint64_t(1) << (U % 64);
      }
    }
    return true;
  }

  bool reaches(uint32_t From, uint32_t To) const {
    return (Rows[static_cast<size_t>(To) * Words + From / 64] >>
            (From % 64)) &
           1;
  }

private:
  size_t N;
  size_t Words;
  std::vector<uint64_t> Rows;
};

} // namespace

BaselineResult DbcopLikeChecker::check(const History &H,
                                       IsolationLevel Level,
                                       const Deadline &Limit) {
  AWDIT_ASSERT(supports(Level), "DBCop-like baseline only checks CC");
  (void)Level;
  BaselineResult Res;
  std::vector<Violation> Sink;
  if (!checkReadConsistency(H, Sink)) {
    Res.Consistent = false;
    return Res;
  }

  size_t N = H.numTxns();
  // Memory guard: refuse closures beyond ~1 GiB, reported as DNF like the
  // resource exhaustion the paper observed for slow baselines.
  if (N > 90000) {
    Res.TimedOut = true;
    return Res;
  }

  CommitGraph Co(H);
  ClosureMatrix Closure(N);
  bool TimedOut = false;
  if (!Closure.compute(Co.graph(), Limit, TimedOut)) {
    Res.TimedOut = TimedOut;
    Res.Consistent = false; // so ∪ wr cycle (unless timed out).
    return Res;
  }

  // Per-key committed writers.
  std::unordered_map<Key, std::vector<TxnId>> Writers;
  for (TxnId Id = 0; Id < N; ++Id) {
    const Transaction &T = H.txn(Id);
    if (!T.Committed)
      continue;
    for (Key X : T.WriteKeys)
      Writers[X].push_back(Id);
  }

  // CC inference with closure queries.
  for (TxnId T3 = 0; T3 < N; ++T3) {
    const Transaction &T = H.txn(T3);
    if (!T.Committed)
      continue;
    if (Limit.expired()) {
      Res.TimedOut = true;
      return Res;
    }
    for (uint32_t ReadPos : T.ExtReads) {
      const ReadInfo &RI = T.Reads[ReadPos];
      TxnId T1 = RI.Writer;
      auto It = Writers.find(RI.K);
      if (It == Writers.end())
        continue;
      for (TxnId T2 : It->second)
        if (T2 != T1 && T2 != T3 && Closure.reaches(T2, T3))
          Co.inferEdge(T2, T1);
    }
  }

  // Re-materialize the closure of co' for the verdict (the DBCop-style
  // final acyclicity pass).
  ClosureMatrix Final(N);
  TimedOut = false;
  if (!Final.compute(Co.graph(), Limit, TimedOut)) {
    Res.TimedOut = TimedOut;
    Res.Consistent = false;
    return Res;
  }
  Res.Consistent = true;
  return Res;
}
