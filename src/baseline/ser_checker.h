//===- baseline/ser_checker.h - Serializability checker -----------*- C++ -*-===//
//
// Part of the AWDIT reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A strong-isolation (Serializability) checker, standing in for the
/// SAT/SMT-based strong-level testers of the paper's Fig. 7 (PolySI checks
/// Snapshot Isolation; Cobra checks Serializability). Testing strong
/// isolation is NP-complete [Papadimitriou 1979; Biswas & Enea 2019], so
/// the checker runs a memoized frontier search over session prefixes — the
/// Biswas-Enea style exact algorithm that is exponential in the worst case
/// and parameterized by the number of sessions.
///
/// Like PolySI in the paper's setup, SER ⊑ RC/RA/CC means a PASS verdict
/// soundly implies every weak level passes, while a FAIL is complete but
/// possibly spurious for the weak levels.
///
//===----------------------------------------------------------------------===//

#ifndef AWDIT_BASELINE_SER_CHECKER_H
#define AWDIT_BASELINE_SER_CHECKER_H

#include "baseline/baseline.h"

namespace awdit {

/// Exact serializability tester (commit order must respect so ∪ wr).
class SerChecker : public BaselineChecker {
public:
  const char *name() const override { return "SER-exact"; }
  /// The strong level is checked regardless of the requested weak level
  /// (the paper runs PolySI at SI while the others run at CC).
  bool supports(IsolationLevel) const override { return true; }
  BaselineResult check(const History &H, IsolationLevel Level,
                       const Deadline &Limit) override;
};

/// Convenience wrapper for tests: true iff \p H is serializable (with co
/// respecting so ∪ wr). Never times out.
bool isSerializable(const History &H);

} // namespace awdit

#endif // AWDIT_BASELINE_SER_CHECKER_H
