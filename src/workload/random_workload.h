//===- workload/random_workload.h - Uniform random workload -------*- C++ -*-===//
//
// Part of the AWDIT reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A fully parameterized random workload: uniform or Zipf-skewed keys,
/// tunable read/write mix and transaction sizes. This is the stand-in for
/// the "custom benchmark from the Cobra framework" the paper uses for the
/// transaction-size scaling experiment (Fig. 9, right).
///
//===----------------------------------------------------------------------===//

#ifndef AWDIT_WORKLOAD_RANDOM_WORKLOAD_H
#define AWDIT_WORKLOAD_RANDOM_WORKLOAD_H

#include "workload/spec.h"

namespace awdit {

/// Parameters of the random workload.
struct RandomWorkloadParams {
  size_t Sessions = 10;
  size_t TotalTxns = 1000;
  size_t MinOpsPerTxn = 2;
  size_t MaxOpsPerTxn = 8;
  size_t NumKeys = 256;
  /// Fraction of operations that are writes.
  double WriteRatio = 0.5;
  /// Zipf skew for key selection; 0 = uniform.
  double ZipfTheta = 0.0;
};

/// Generates a random workload with the given shape.
ClientWorkload generateRandomWorkload(const RandomWorkloadParams &Params,
                                      Rng &Rand);

} // namespace awdit

#endif // AWDIT_WORKLOAD_RANDOM_WORKLOAD_H
