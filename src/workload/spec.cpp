//===- workload/spec.cpp - Workload generation helpers ---------------------===//

#include "workload/spec.h"

#include "support/assert.h"

using namespace awdit;

ClientWorkload awdit::makeEmptyWorkload(size_t Sessions) {
  AWDIT_ASSERT(Sessions > 0, "a workload needs at least one session");
  ClientWorkload W;
  W.Sessions.resize(Sessions);
  return W;
}

void awdit::appendToRandomSession(ClientWorkload &W, ClientTxn Txn,
                                  Rng &Rand) {
  size_t S = Rand.nextBelow(W.Sessions.size());
  W.Sessions[S].Txns.push_back(std::move(Txn));
}
