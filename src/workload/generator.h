//===- workload/generator.h - History generation facade -----------*- C++ -*-===//
//
// Part of the AWDIT reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// One-call history generation: pick a benchmark and a database consistency
/// mode, get back a recorded History. This is the programmatic equivalent
/// of the paper's "run benchmark X against database Y, collect the log"
/// setup (with the simulator substituting for the databases).
///
//===----------------------------------------------------------------------===//

#ifndef AWDIT_WORKLOAD_GENERATOR_H
#define AWDIT_WORKLOAD_GENERATOR_H

#include "sim/sim_db.h"

#include <optional>
#include <string>
#include <string_view>

namespace awdit {

/// The available benchmark workloads.
enum class Benchmark : uint8_t { Random, CTwitter, Tpcc, Rubis };

const char *benchmarkName(Benchmark B);
std::optional<Benchmark> parseBenchmark(std::string_view Text);

/// Parameters of one generated history.
struct GenerateParams {
  Benchmark Bench = Benchmark::CTwitter;
  size_t Sessions = 50;
  size_t Txns = 1000;
  ConsistencyMode Mode = ConsistencyMode::Causal;
  uint64_t Seed = 1;
  double AbortProbability = 0.0;
  /// Random benchmark only: exact operations per transaction (0 = default
  /// 2..8 range). Used by the Fig. 9 transaction-size sweep.
  size_t TxnSize = 0;
  /// Random benchmark only: key-space size (0 = scale with Txns).
  size_t KeySpace = 0;
};

/// Generates a workload, executes it on the simulator, and returns the
/// recorded history. Aborts on internal errors (generation is infallible
/// for valid parameters).
History generateHistory(const GenerateParams &Params);

} // namespace awdit

#endif // AWDIT_WORKLOAD_GENERATOR_H
