//===- workload/ctwitter.cpp - C-Twitter workload ----------------------------===//

#include "workload/ctwitter.h"

using namespace awdit;

namespace {

// Key-space tables for the C-Twitter schema.
constexpr uint64_t TweetTable = 10;    ///< user -> latest tweet
constexpr uint64_t TimelineTable = 11; ///< user -> timeline digest
constexpr uint64_t FollowTable = 12;   ///< user -> follow list version
constexpr uint64_t ProfileTable = 13;  ///< user -> profile blob

} // namespace

ClientWorkload awdit::generateCTwitter(const CTwitterParams &Params,
                                       Rng &Rand) {
  ClientWorkload W = makeEmptyWorkload(Params.Sessions);
  size_t Users = Params.NumUsers != 0
                     ? Params.NumUsers
                     : std::max<size_t>(64, Params.TotalTxns / 16);

  auto RandomUser = [&] { return Rand.nextZipf(Users, /*Theta=*/0.8); };

  for (size_t I = 0; I < Params.TotalTxns; ++I) {
    ClientTxn Txn;
    // Mix tuned so the op count averages ~7.6 per transaction:
    // 25% tweet (4 ops), 45% timeline (1 + 2*width ops), 15% follow
    // (3 ops), 15% profile view (3 ops).
    size_t K = Rand.nextBelow(100);
    uint64_t U = RandomUser();
    if (K < 25) {
      // Tweet: bump own tweet and timeline, after reading the profile.
      Txn.Ops.push_back(ClientOp::read(tableKey(ProfileTable, U)));
      Txn.Ops.push_back(ClientOp::write(tableKey(TweetTable, U)));
      Txn.Ops.push_back(ClientOp::write(tableKey(TimelineTable, U)));
      Txn.Ops.push_back(ClientOp::write(tableKey(ProfileTable, U)));
    } else if (K < 70) {
      // Timeline: read the follow list, then the latest tweet and
      // timeline digest of several followees.
      Txn.Ops.push_back(ClientOp::read(tableKey(FollowTable, U)));
      for (size_t F = 0; F < Params.TimelineWidth; ++F) {
        uint64_t Followee = RandomUser();
        Txn.Ops.push_back(ClientOp::read(tableKey(TweetTable, Followee)));
        Txn.Ops.push_back(
            ClientOp::read(tableKey(TimelineTable, Followee)));
      }
    } else if (K < 85) {
      // Follow: read both profiles, bump the follow list.
      uint64_t Followee = RandomUser();
      Txn.Ops.push_back(ClientOp::read(tableKey(ProfileTable, U)));
      Txn.Ops.push_back(ClientOp::read(tableKey(ProfileTable, Followee)));
      Txn.Ops.push_back(ClientOp::write(tableKey(FollowTable, U)));
    } else {
      // Profile view: read profile, latest tweet, and follow list.
      Txn.Ops.push_back(ClientOp::read(tableKey(ProfileTable, U)));
      Txn.Ops.push_back(ClientOp::read(tableKey(TweetTable, U)));
      Txn.Ops.push_back(ClientOp::read(tableKey(FollowTable, U)));
    }
    appendToRandomSession(W, std::move(Txn), Rand);
  }
  return W;
}
