//===- workload/rubis.cpp - RUBiS-style workload -----------------------------===//

#include "workload/rubis.h"

using namespace awdit;

namespace {

// Key-space tables for the RUBiS schema.
constexpr uint64_t ItemTable = 30;     ///< item -> description/state
constexpr uint64_t BidTable = 31;      ///< item -> highest bid
constexpr uint64_t UserTable = 32;     ///< user -> profile
constexpr uint64_t RatingTable = 33;   ///< user -> rating
constexpr uint64_t CategoryTable = 34; ///< category -> item index

constexpr size_t NumCategories = 20;

} // namespace

ClientWorkload awdit::generateRubis(const RubisParams &Params, Rng &Rand) {
  ClientWorkload W = makeEmptyWorkload(Params.Sessions);
  size_t Users = Params.NumUsers != 0
                     ? Params.NumUsers
                     : std::max<size_t>(64, Params.TotalTxns / 20);
  size_t Items = Params.NumItems != 0
                     ? Params.NumItems
                     : std::max<size_t>(128, Params.TotalTxns / 8);

  for (size_t I = 0; I < Params.TotalTxns; ++I) {
    ClientTxn Txn;
    size_t Mix = Rand.nextBelow(100);
    uint64_t User = Rand.nextZipf(Users, /*Theta=*/0.7);
    uint64_t Item = Rand.nextZipf(Items, /*Theta=*/0.9);
    uint64_t Category = Rand.nextBelow(NumCategories);

    if (Mix < 40) {
      // Browse: category index plus a handful of item pages.
      Txn.Ops.push_back(ClientOp::read(tableKey(CategoryTable, Category)));
      size_t Page = Rand.nextInRange(2, 6);
      for (size_t P = 0; P < Page; ++P) {
        uint64_t It = Rand.nextZipf(Items, /*Theta=*/0.9);
        Txn.Ops.push_back(ClientOp::read(tableKey(ItemTable, It)));
        Txn.Ops.push_back(ClientOp::read(tableKey(BidTable, It)));
      }
    } else if (Mix < 65) {
      // Bid: read the item and current bid, write the new bid.
      Txn.Ops.push_back(ClientOp::read(tableKey(ItemTable, Item)));
      Txn.Ops.push_back(ClientOp::read(tableKey(BidTable, Item)));
      Txn.Ops.push_back(ClientOp::write(tableKey(BidTable, Item)));
      Txn.Ops.push_back(ClientOp::read(tableKey(UserTable, User)));
    } else if (Mix < 80) {
      // Sell: create an item and update the category index.
      Txn.Ops.push_back(ClientOp::read(tableKey(UserTable, User)));
      Txn.Ops.push_back(ClientOp::write(tableKey(ItemTable, Item)));
      Txn.Ops.push_back(ClientOp::read(tableKey(CategoryTable, Category)));
      Txn.Ops.push_back(ClientOp::write(tableKey(CategoryTable, Category)));
    } else if (Mix < 92) {
      // View user: profile, rating, and an item they sell.
      Txn.Ops.push_back(ClientOp::read(tableKey(UserTable, User)));
      Txn.Ops.push_back(ClientOp::read(tableKey(RatingTable, User)));
      Txn.Ops.push_back(ClientOp::read(tableKey(ItemTable, Item)));
    } else {
      // Rate a user after a completed auction.
      Txn.Ops.push_back(ClientOp::read(tableKey(RatingTable, User)));
      Txn.Ops.push_back(ClientOp::write(tableKey(RatingTable, User)));
      Txn.Ops.push_back(ClientOp::write(tableKey(UserTable, User)));
    }
    appendToRandomSession(W, std::move(Txn), Rand);
  }
  return W;
}
