//===- workload/random_workload.cpp - Uniform random workload ---------------===//

#include "workload/random_workload.h"

#include "support/assert.h"

using namespace awdit;

ClientWorkload
awdit::generateRandomWorkload(const RandomWorkloadParams &Params, Rng &Rand) {
  AWDIT_ASSERT(Params.MinOpsPerTxn <= Params.MaxOpsPerTxn,
               "transaction size bounds are inverted");
  AWDIT_ASSERT(Params.NumKeys > 0, "key space must be non-empty");
  ClientWorkload W = makeEmptyWorkload(Params.Sessions);
  constexpr uint64_t RandomTable = 1;

  for (size_t I = 0; I < Params.TotalTxns; ++I) {
    ClientTxn Txn;
    size_t NumOps =
        Rand.nextInRange(Params.MinOpsPerTxn, Params.MaxOpsPerTxn);
    for (size_t J = 0; J < NumOps; ++J) {
      size_t KeyIdx = Params.ZipfTheta > 0.0
                          ? Rand.nextZipf(Params.NumKeys, Params.ZipfTheta)
                          : Rand.nextBelow(Params.NumKeys);
      Key K = tableKey(RandomTable, KeyIdx);
      if (Rand.nextBool(Params.WriteRatio))
        Txn.Ops.push_back(ClientOp::write(K));
      else
        Txn.Ops.push_back(ClientOp::read(K));
    }
    appendToRandomSession(W, std::move(Txn), Rand);
  }
  return W;
}
