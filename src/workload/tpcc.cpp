//===- workload/tpcc.cpp - TPC-C-style workload ------------------------------===//

#include "workload/tpcc.h"

using namespace awdit;

namespace {

// Key-space tables for the TPC-C schema.
constexpr uint64_t WarehouseTable = 20;
constexpr uint64_t DistrictTable = 21;
constexpr uint64_t CustomerTable = 22;
constexpr uint64_t StockTable = 23;
constexpr uint64_t OrderTable = 24;
constexpr uint64_t NewOrderTable = 25;
constexpr uint64_t ItemTable = 26;

} // namespace

ClientWorkload awdit::generateTpcc(const TpccParams &Params, Rng &Rand) {
  ClientWorkload W = makeEmptyWorkload(Params.Sessions);

  auto District = [&](uint64_t Wh, uint64_t D) {
    return tableKey(DistrictTable,
                    Wh * Params.DistrictsPerWarehouse + D);
  };
  auto Customer = [&](uint64_t Wh, uint64_t D, uint64_t C) {
    return tableKey(CustomerTable,
                    (Wh * Params.DistrictsPerWarehouse + D) *
                            Params.CustomersPerDistrict +
                        C);
  };
  auto Stock = [&](uint64_t Wh, uint64_t Item) {
    return tableKey(StockTable, Wh * Params.Items + Item);
  };

  uint64_t NextOrderId = 0;

  for (size_t I = 0; I < Params.TotalTxns; ++I) {
    ClientTxn Txn;
    uint64_t Wh = Rand.nextBelow(Params.Warehouses);
    uint64_t D = Rand.nextBelow(Params.DistrictsPerWarehouse);
    uint64_t C = Rand.nextBelow(Params.CustomersPerDistrict);
    size_t Mix = Rand.nextBelow(100);

    if (Mix < 45) {
      // New-Order: read warehouse & customer, bump the district order
      // counter, touch 5-15 items' stock, and create the order rows.
      Txn.Ops.push_back(ClientOp::read(tableKey(WarehouseTable, Wh)));
      Txn.Ops.push_back(ClientOp::read(District(Wh, D)));
      Txn.Ops.push_back(ClientOp::write(District(Wh, D)));
      Txn.Ops.push_back(ClientOp::read(Customer(Wh, D, C)));
      size_t Lines = Rand.nextInRange(5, 15);
      for (size_t L = 0; L < Lines; ++L) {
        uint64_t Item = Rand.nextZipf(Params.Items, /*Theta=*/0.6);
        Txn.Ops.push_back(ClientOp::read(tableKey(ItemTable, Item)));
        Txn.Ops.push_back(ClientOp::read(Stock(Wh, Item)));
        Txn.Ops.push_back(ClientOp::write(Stock(Wh, Item)));
      }
      uint64_t Order = NextOrderId++;
      Txn.Ops.push_back(ClientOp::write(tableKey(OrderTable, Order)));
      Txn.Ops.push_back(ClientOp::write(tableKey(NewOrderTable, Order)));
    } else if (Mix < 88) {
      // Payment: update warehouse, district, and customer balances.
      Txn.Ops.push_back(ClientOp::read(tableKey(WarehouseTable, Wh)));
      Txn.Ops.push_back(ClientOp::write(tableKey(WarehouseTable, Wh)));
      Txn.Ops.push_back(ClientOp::read(District(Wh, D)));
      Txn.Ops.push_back(ClientOp::write(District(Wh, D)));
      Txn.Ops.push_back(ClientOp::read(Customer(Wh, D, C)));
      Txn.Ops.push_back(ClientOp::write(Customer(Wh, D, C)));
    } else if (Mix < 92) {
      // Order-Status: read customer and their latest order.
      Txn.Ops.push_back(ClientOp::read(Customer(Wh, D, C)));
      if (NextOrderId > 0) {
        uint64_t Order = Rand.nextBelow(NextOrderId);
        Txn.Ops.push_back(ClientOp::read(tableKey(OrderTable, Order)));
      }
    } else if (Mix < 96) {
      // Delivery: consume new-order rows and update customers.
      if (NextOrderId > 0) {
        uint64_t Order = Rand.nextBelow(NextOrderId);
        Txn.Ops.push_back(ClientOp::read(tableKey(NewOrderTable, Order)));
        Txn.Ops.push_back(ClientOp::write(tableKey(NewOrderTable, Order)));
        Txn.Ops.push_back(ClientOp::write(tableKey(OrderTable, Order)));
      }
      Txn.Ops.push_back(ClientOp::read(Customer(Wh, D, C)));
      Txn.Ops.push_back(ClientOp::write(Customer(Wh, D, C)));
    } else {
      // Stock-Level: read the district cursor and a window of stock rows.
      Txn.Ops.push_back(ClientOp::read(District(Wh, D)));
      size_t Window = Rand.nextInRange(4, 10);
      for (size_t L = 0; L < Window; ++L) {
        uint64_t Item = Rand.nextZipf(Params.Items, /*Theta=*/0.6);
        Txn.Ops.push_back(ClientOp::read(Stock(Wh, Item)));
      }
    }
    appendToRandomSession(W, std::move(Txn), Rand);
  }
  return W;
}
