//===- workload/generator.cpp - History generation facade --------------------===//

#include "workload/generator.h"

#include "support/assert.h"
#include "workload/ctwitter.h"
#include "workload/random_workload.h"
#include "workload/rubis.h"
#include "workload/tpcc.h"

#include <algorithm>
#include <string>

using namespace awdit;

const char *awdit::benchmarkName(Benchmark B) {
  switch (B) {
  case Benchmark::Random:
    return "random";
  case Benchmark::CTwitter:
    return "c-twitter";
  case Benchmark::Tpcc:
    return "tpc-c";
  case Benchmark::Rubis:
    return "rubis";
  }
  awditUnreachable("unknown benchmark");
}

std::optional<Benchmark> awdit::parseBenchmark(std::string_view Text) {
  std::string Lower(Text);
  std::transform(Lower.begin(), Lower.end(), Lower.begin(),
                 [](unsigned char C) { return std::tolower(C); });
  if (Lower == "random")
    return Benchmark::Random;
  if (Lower == "c-twitter" || Lower == "ctwitter" || Lower == "twitter")
    return Benchmark::CTwitter;
  if (Lower == "tpc-c" || Lower == "tpcc")
    return Benchmark::Tpcc;
  if (Lower == "rubis")
    return Benchmark::Rubis;
  return std::nullopt;
}

History awdit::generateHistory(const GenerateParams &Params) {
  Rng Rand(Params.Seed);
  ClientWorkload W;

  switch (Params.Bench) {
  case Benchmark::Random: {
    RandomWorkloadParams P;
    P.Sessions = Params.Sessions;
    P.TotalTxns = Params.Txns;
    if (Params.TxnSize != 0)
      P.MinOpsPerTxn = P.MaxOpsPerTxn = Params.TxnSize;
    P.NumKeys = Params.KeySpace != 0
                    ? Params.KeySpace
                    : std::max<size_t>(128, Params.Txns / 4);
    W = generateRandomWorkload(P, Rand);
    break;
  }
  case Benchmark::CTwitter: {
    CTwitterParams P;
    P.Sessions = Params.Sessions;
    P.TotalTxns = Params.Txns;
    W = generateCTwitter(P, Rand);
    break;
  }
  case Benchmark::Tpcc: {
    TpccParams P;
    P.Sessions = Params.Sessions;
    P.TotalTxns = Params.Txns;
    // Scale warehouses with load, as TPC-C deployments do.
    P.Warehouses = std::max<size_t>(2, Params.Txns / 4096);
    W = generateTpcc(P, Rand);
    break;
  }
  case Benchmark::Rubis: {
    RubisParams P;
    P.Sessions = Params.Sessions;
    P.TotalTxns = Params.Txns;
    W = generateRubis(P, Rand);
    break;
  }
  }

  SimConfig Config;
  Config.Mode = Params.Mode;
  Config.Seed = Rand.next();
  Config.AbortProbability = Params.AbortProbability;
  std::string Err;
  std::optional<History> H = simulateDatabase(W, Config, &Err);
  if (!H)
    awditUnreachable(("history generation failed: " + Err).c_str());
  return std::move(*H);
}
