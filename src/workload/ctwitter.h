//===- workload/ctwitter.h - C-Twitter workload -------------------*- C++ -*-===//
//
// Part of the AWDIT reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A C-Twitter-style workload (after the Cobra framework's benchmark that
/// models Twitter's real-time data handling): users tweet, follow each
/// other, and read timelines assembled from the latest tweets of the users
/// they follow. Shaped to average ~7.6 operations per transaction, matching
/// the figure the paper reports for its C-Twitter histories.
///
//===----------------------------------------------------------------------===//

#ifndef AWDIT_WORKLOAD_CTWITTER_H
#define AWDIT_WORKLOAD_CTWITTER_H

#include "workload/spec.h"

namespace awdit {

/// Parameters of the C-Twitter workload.
struct CTwitterParams {
  size_t Sessions = 50;
  size_t TotalTxns = 1000;
  /// Number of simulated users; defaults to scale with the txn count.
  size_t NumUsers = 0;
  /// Followees read per timeline transaction.
  size_t TimelineWidth = 6;
};

/// Generates a C-Twitter workload (tweet / follow / timeline / profile mix).
ClientWorkload generateCTwitter(const CTwitterParams &Params, Rng &Rand);

} // namespace awdit

#endif // AWDIT_WORKLOAD_CTWITTER_H
