//===- workload/spec.h - Workload generation helpers --------------*- C++ -*-===//
//
// Part of the AWDIT reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Shared helpers for the benchmark workload generators: session
/// assignment and key-space encoding. Generators emit ClientWorkloads that
/// the database simulator executes (see sim/sim_db.h).
///
//===----------------------------------------------------------------------===//

#ifndef AWDIT_WORKLOAD_SPEC_H
#define AWDIT_WORKLOAD_SPEC_H

#include "sim/sim_db.h"
#include "support/rng.h"

namespace awdit {

/// Returns a workload skeleton with \p Sessions empty sessions.
ClientWorkload makeEmptyWorkload(size_t Sessions);

/// Appends \p Txn to a uniformly random session of \p W.
void appendToRandomSession(ClientWorkload &W, ClientTxn Txn, Rng &Rand);

/// Encodes a (table, row) pair into the flat key space. Each generator
/// uses distinct table ids so key spaces never collide.
constexpr Key tableKey(uint64_t Table, uint64_t Row) {
  return (Table << 40) | Row;
}

} // namespace awdit

#endif // AWDIT_WORKLOAD_SPEC_H
