//===- workload/rubis.h - RUBiS-style workload --------------------*- C++ -*-===//
//
// Part of the AWDIT reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A RUBiS-style auction-site workload (after the eBay-modelled benchmark
/// of Amza et al.): users browse items, place bids, list items for sale,
/// and view user profiles. Browse-heavy like the original's read-dominated
/// mix.
///
//===----------------------------------------------------------------------===//

#ifndef AWDIT_WORKLOAD_RUBIS_H
#define AWDIT_WORKLOAD_RUBIS_H

#include "workload/spec.h"

namespace awdit {

/// Parameters of the RUBiS-style workload.
struct RubisParams {
  size_t Sessions = 50;
  size_t TotalTxns = 1000;
  size_t NumUsers = 0;  ///< 0 = scale with TotalTxns.
  size_t NumItems = 0;  ///< 0 = scale with TotalTxns.
};

/// Generates a RUBiS-style workload (browse / bid / sell / profile mix).
ClientWorkload generateRubis(const RubisParams &Params, Rng &Rand);

} // namespace awdit

#endif // AWDIT_WORKLOAD_RUBIS_H
