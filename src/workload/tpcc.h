//===- workload/tpcc.h - TPC-C-style workload ---------------------*- C++ -*-===//
//
// Part of the AWDIT reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A TPC-C-style OLTP workload over a warehouse/district/customer/stock
/// schema with the five standard transaction profiles (New-Order, Payment,
/// Order-Status, Delivery, Stock-Level) in the standard 45/43/4/4/4 mix.
///
//===----------------------------------------------------------------------===//

#ifndef AWDIT_WORKLOAD_TPCC_H
#define AWDIT_WORKLOAD_TPCC_H

#include "workload/spec.h"

namespace awdit {

/// Parameters of the TPC-C-style workload.
struct TpccParams {
  size_t Sessions = 50;
  size_t TotalTxns = 1000;
  size_t Warehouses = 4;
  size_t DistrictsPerWarehouse = 10;
  size_t CustomersPerDistrict = 100;
  size_t Items = 1000;
};

/// Generates a TPC-C-style workload with the standard transaction mix.
ClientWorkload generateTpcc(const TpccParams &Params, Rng &Rand);

} // namespace awdit

#endif // AWDIT_WORKLOAD_TPCC_H
