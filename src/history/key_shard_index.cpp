//===- history/key_shard_index.cpp - Per-key shard index --------------------===//

#include "history/key_shard_index.h"

#include "support/hybrid_map.h"
#include "support/thread_pool.h"

using namespace awdit;

KeyShardIndex::KeyShardIndex(const History &H, size_t NumShards) {
  Shards.resize(NumShards == 0 ? 1 : NumShards);
  for (size_t S = 0; S < Shards.size(); ++S)
    buildShard(H, S);
}

KeyShardIndex::KeyShardIndex(const History &H, size_t NumShards,
                             ThreadPool &Pool) {
  Shards.resize(NumShards == 0 ? 1 : NumShards);
  Pool.parallelFor(0, Shards.size(), 1,
                   [&](size_t Begin, size_t End) {
                     for (size_t S = Begin; S < End; ++S)
                       buildShard(H, S);
                   });
}

void KeyShardIndex::buildShard(const History &H, size_t Shard) {
  std::vector<KeyEntry> &Entries = Shards[Shard];
  size_t NumShards = Shards.size();
  // Key -> index into Entries; hybrid because most shards see few keys.
  HybridMap<Key, uint32_t> Slot;

  auto EntryFor = [&](Key K) -> KeyEntry & {
    uint32_t *Found = Slot.find(K);
    if (Found)
      return Entries[*Found];
    Slot.getOrInsert(K) = static_cast<uint32_t>(Entries.size());
    Entries.emplace_back();
    Entries.back().K = K;
    return Entries.back();
  };

  // One pass in checker scan order: ascending session, so position, po.
  // Appends therefore arrive pre-sorted, matching the iteration order of
  // the sequential saturation passes exactly.
  for (SessionId S = 0; S < H.numSessions(); ++S) {
    for (TxnId T : H.sessionTxns(S)) {
      const Transaction &Txn = H.txn(T);
      for (Key X : Txn.WriteKeys) {
        if (shardOf(X, NumShards) != Shard)
          continue;
        KeyEntry &E = EntryFor(X);
        if (E.WriterSessions.empty() || E.WriterSessions.back() != S) {
          E.WriterSessions.push_back(S);
          E.WriterLists.emplace_back();
        }
        E.WriterLists.back().push_back({T, Txn.SoIndex});
      }
      for (uint32_t ReadIdx : Txn.ExtReads) {
        const ReadInfo &RI = Txn.Reads[ReadIdx];
        if (shardOf(RI.K, NumShards) != Shard)
          continue;
        EntryFor(RI.K).Reads.push_back({S, T, RI.Writer});
      }
    }
  }
}
