//===- history/history_builder.cpp - History construction -----------------===//

#include "history/history_builder.h"

#include "history/wr_resolver.h"
#include "support/assert.h"

#include <unordered_set>

using namespace awdit;

namespace {

bool fail(std::string *Err, const std::string &Msg) {
  if (Err)
    *Err = Msg;
  return false;
}

} // namespace

SessionId HistoryBuilder::addSession() {
  return static_cast<SessionId>(NumSessions++);
}

TxnId HistoryBuilder::beginTxn(SessionId S) {
  AWDIT_ASSERT(S < NumSessions, "beginTxn: unknown session");
  Txns.push_back(PendingTxn{S, /*Aborted=*/false, {}});
  return static_cast<TxnId>(Txns.size() - 1);
}

void HistoryBuilder::read(TxnId T, Key K, Value V) {
  append(T, Operation::read(K, V));
}

void HistoryBuilder::write(TxnId T, Key K, Value V) {
  append(T, Operation::write(K, V));
}

void HistoryBuilder::append(TxnId T, Operation Op) {
  AWDIT_ASSERT(T < Txns.size(), "append: unknown transaction");
  Txns[T].Ops.push_back(Op);
}

void HistoryBuilder::commit(TxnId T) {
  AWDIT_ASSERT(T < Txns.size(), "commit: unknown transaction");
  Txns[T].Aborted = false;
}

void HistoryBuilder::abortTxn(TxnId T) {
  AWDIT_ASSERT(T < Txns.size(), "abortTxn: unknown transaction");
  Txns[T].Aborted = true;
}

std::optional<History> HistoryBuilder::build(std::string *Err) const {
  History H;
  std::string LocalErr;

  // Copy the raw transactions; an optional synthetic initial transaction is
  // appended at the end so user-visible TxnIds are stable.
  size_t NumUserTxns = Txns.size();
  H.Txns.resize(NumUserTxns);
  H.Sessions.resize(NumSessions);
  for (size_t I = 0; I < NumUserTxns; ++I) {
    Transaction &T = H.Txns[I];
    T.Session = Txns[I].Session;
    T.Committed = !Txns[I].Aborted;
    T.Ops = Txns[I].Ops;
  }

  // Index every write site by (key, value) and collect all written keys.
  WriteSiteIndex WriteIndex;
  std::unordered_set<Key> AllKeys;
  for (size_t I = 0; I < NumUserTxns; ++I) {
    const Transaction &T = H.Txns[I];
    for (uint32_t OpIdx = 0; OpIdx < T.Ops.size(); ++OpIdx) {
      const Operation &Op = T.Ops[OpIdx];
      AllKeys.insert(Op.K);
      if (!Op.isWrite())
        continue;
      if (!WriteIndex.record(Op.K, Op.V, static_cast<TxnId>(I), OpIdx)) {
        fail(Err, duplicateWriteMessage(Op.K, Op.V));
        return std::nullopt;
      }
    }
  }

  // Optionally synthesize the initial transaction for reads of 0 on keys
  // that nothing writes.
  if (ImplicitInit) {
    std::vector<Key> InitKeys;
    std::unordered_set<Key> Seen;
    for (size_t I = 0; I < NumUserTxns; ++I) {
      for (const Operation &Op : H.Txns[I].Ops) {
        if (!Op.isRead() || Op.V != 0)
          continue;
        if (WriteIndex.find(Op.K, 0))
          continue;
        if (Seen.insert(Op.K).second)
          InitKeys.push_back(Op.K);
      }
    }
    if (!InitKeys.empty()) {
      Transaction Init;
      Init.Session = static_cast<SessionId>(NumSessions);
      Init.Committed = true;
      for (Key K : InitKeys)
        Init.Ops.push_back(Operation::write(K, 0));
      TxnId InitId = static_cast<TxnId>(H.Txns.size());
      H.Txns.push_back(std::move(Init));
      H.Sessions.emplace_back();
      for (uint32_t OpIdx = 0; OpIdx < InitKeys.size(); ++OpIdx)
        WriteIndex.record(InitKeys[OpIdx], 0, InitId, OpIdx);
    }
  }

  // Assign session orders. Aborted transactions are excluded from so
  // (H|s contains only committed transactions, Definition 2.2) but keep a
  // SoIndex for diagnostics.
  for (size_t I = 0; I < H.Txns.size(); ++I) {
    Transaction &T = H.Txns[I];
    if (!T.Committed)
      continue;
    std::vector<TxnId> &Sess = H.Sessions[T.Session];
    T.SoIndex = static_cast<uint32_t>(Sess.size());
    Sess.push_back(static_cast<TxnId>(I));
  }

  // Resolve reads and derive per-transaction indices.
  size_t TotalOps = 0;
  size_t CommittedCount = 0;
  for (size_t I = 0; I < H.Txns.size(); ++I) {
    Transaction &T = H.Txns[I];
    TotalOps += T.Ops.size();
    if (T.Committed)
      ++CommittedCount;

    std::unordered_set<Key> WrittenKeys;
    std::unordered_set<TxnId> SeenWriters;
    for (uint32_t OpIdx = 0; OpIdx < T.Ops.size(); ++OpIdx) {
      const Operation &Op = T.Ops[OpIdx];
      if (Op.isWrite()) {
        WrittenKeys.insert(Op.K);
        continue;
      }
      ReadInfo RI{OpIdx, Op.K, Op.V, NoTxn, NoOp};
      if (const WriteSite *Site = WriteIndex.find(Op.K, Op.V)) {
        RI.Writer = Site->T;
        RI.WriterOp = Site->Op;
      }
      uint32_t ReadIdx = static_cast<uint32_t>(T.Reads.size());
      T.Reads.push_back(RI);
      // External reads: distinct committed writer transaction. These drive
      // the txn-level wr relation used by all three isolation axioms.
      if (RI.Writer != NoTxn && RI.Writer != static_cast<TxnId>(I) &&
          H.Txns[RI.Writer].Committed) {
        T.ExtReads.push_back(ReadIdx);
        if (SeenWriters.insert(RI.Writer).second)
          T.ReadFroms.push_back(RI.Writer);
      }
    }
    T.WriteKeys.assign(WrittenKeys.begin(), WrittenKeys.end());
    std::sort(T.WriteKeys.begin(), T.WriteKeys.end());
  }

  H.TotalOps = TotalOps;
  H.CommittedCount = CommittedCount;
  H.KeyCount = AllKeys.size();
  return H;
}
