//===- history/types.h - Core identifier and operation types ----*- C++ -*-===//
//
// Part of the AWDIT reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Fundamental value types of the history model (paper §2.1): keys, values,
/// operation/transaction/session identifiers, and the read/write operation
/// record. Keys and values are integers; parsers intern string keys.
///
//===----------------------------------------------------------------------===//

#ifndef AWDIT_HISTORY_TYPES_H
#define AWDIT_HISTORY_TYPES_H

#include <cstdint>
#include <limits>

namespace awdit {

/// Identifier of a transaction: an index into History::transactions().
using TxnId = uint32_t;

/// Identifier of a session: an index into History::sessions().
using SessionId = uint32_t;

/// A database key. Parsers intern textual keys into this space.
using Key = uint64_t;

/// A written/read value. The black-box testing methodology (paper §2.1)
/// assumes every write carries a unique value per key, making the wr
/// relation recoverable from values alone.
using Value = int64_t;

/// Sentinel for "no transaction".
inline constexpr TxnId NoTxn = std::numeric_limits<TxnId>::max();

/// Sentinel for "no operation index".
inline constexpr uint32_t NoOp = std::numeric_limits<uint32_t>::max();

/// The kind of a client operation.
enum class OpKind : uint8_t { Read, Write };

/// A single read or write operation, stored inside its transaction in
/// program order (po).
struct Operation {
  OpKind Kind;
  Key K;
  Value V;

  static Operation read(Key K, Value V) { return {OpKind::Read, K, V}; }
  static Operation write(Key K, Value V) { return {OpKind::Write, K, V}; }

  bool isRead() const { return Kind == OpKind::Read; }
  bool isWrite() const { return Kind == OpKind::Write; }

  friend bool operator==(const Operation &A, const Operation &B) {
    return A.Kind == B.Kind && A.K == B.K && A.V == B.V;
  }
};

} // namespace awdit

#endif // AWDIT_HISTORY_TYPES_H
