//===- history/history.h - Transaction history model -------------*- C++ -*-===//
//
// Part of the AWDIT reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The History model of paper Definition 2.2: a set of transactions grouped
/// into sessions (so), with the write-read relation (wr) resolved from the
/// unique-value convention of black-box database testing. A History is
/// immutable once finalized; checkers only read it.
///
//===----------------------------------------------------------------------===//

#ifndef AWDIT_HISTORY_HISTORY_H
#define AWDIT_HISTORY_HISTORY_H

#include "history/transaction.h"
#include "history/types.h"

#include <string>
#include <vector>

namespace awdit {

/// An immutable transaction history: sessions of transactions with resolved
/// wr. Construct through HistoryBuilder, which enforces the model invariants
/// (unique values per key, wr^-1 a function).
class History {
public:
  History() = default;

  /// All transactions, committed and aborted. TxnId indexes this vector.
  const std::vector<Transaction> &transactions() const { return Txns; }

  const Transaction &txn(TxnId Id) const { return Txns[Id]; }

  /// Number of sessions k.
  size_t numSessions() const { return Sessions.size(); }

  /// Committed transactions of session \p S in so order (H|s).
  const std::vector<TxnId> &sessionTxns(SessionId S) const {
    return Sessions[S];
  }

  /// Total number of operations n (the history's size, paper §2.1),
  /// counting both committed and aborted transactions.
  size_t numOps() const { return TotalOps; }

  /// Number of transactions (committed + aborted).
  size_t numTxns() const { return Txns.size(); }

  /// Number of committed transactions.
  size_t numCommitted() const { return CommittedCount; }

  /// Number of distinct keys appearing in any operation.
  size_t numKeys() const { return KeyCount; }

  /// Returns true if \p Id refers to a committed transaction.
  bool isCommitted(TxnId Id) const { return Txns[Id].Committed; }

  /// The committed transaction so-after \p Id in its session, or NoTxn.
  TxnId soSuccessor(TxnId Id) const;

  /// Returns true if \p A is so-before-or-equal \p B (same session and
  /// A's SoIndex <= B's). Both must be committed.
  bool soBeforeOrEqual(TxnId A, TxnId B) const {
    const Transaction &TA = Txns[A], &TB = Txns[B];
    return TA.Session == TB.Session && TA.SoIndex <= TB.SoIndex;
  }

  /// A short human-readable label for a transaction, e.g. "t12(s3#4)".
  std::string txnLabel(TxnId Id) const;

private:
  friend class HistoryBuilder;
  // The streaming Monitor grows its live window in place as a History so
  // the checking kernels run on it unchanged (checker/monitor.h).
  friend class Monitor;

  std::vector<Transaction> Txns;
  /// Committed transactions per session, in so order.
  std::vector<std::vector<TxnId>> Sessions;
  size_t TotalOps = 0;
  size_t CommittedCount = 0;
  size_t KeyCount = 0;
};

} // namespace awdit

#endif // AWDIT_HISTORY_HISTORY_H
