//===- history/key_shard_index.h - Per-key shard index ------------*- C++ -*-===//
//
// Part of the AWDIT reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A sharded per-key view of a History for the parallel checking engine:
/// every key is assigned to one of N shards, and each shard holds, for its
/// keys, the so-ordered writer lists per session (the Writes_s'[x] tables of
/// Algorithm 3) and the external reads of the key in checker scan order
/// (ascending session, so position, then program order). Shards partition
/// the keys, so per-key saturation passes can process shards on separate
/// threads with no shared mutable state.
///
//===----------------------------------------------------------------------===//

#ifndef AWDIT_HISTORY_KEY_SHARD_INDEX_H
#define AWDIT_HISTORY_KEY_SHARD_INDEX_H

#include "history/history.h"

#include <vector>

namespace awdit {

class ThreadPool;

/// One writer occurrence: the transaction and its cached so position, so
/// monotone frontier scans stay on contiguous memory.
struct KeyWriterRef {
  TxnId T;
  uint32_t SoIndex;
};

/// One external-read occurrence of a key: the reading transaction, its
/// session, and the writer the read observes (the t1 of t1 wr_x-> t3).
struct KeyReadRef {
  SessionId Session;
  TxnId Reader;
  TxnId Writer;
};

/// All checker-relevant occurrences of one key.
struct KeyEntry {
  Key K = 0;
  /// Sessions writing the key, ascending; parallel to WriterLists.
  std::vector<SessionId> WriterSessions;
  /// Per writing session, its committed writers of the key in so order.
  std::vector<std::vector<KeyWriterRef>> WriterLists;
  /// External reads of the key in scan order: ascending (session, SoIndex,
  /// po). Duplicates within one transaction are kept — the scan pointer
  /// algorithms are idempotent over them, matching the sequential pass.
  std::vector<KeyReadRef> Reads;
};

/// The per-key shard index. Keys are distributed over shards by a
/// multiplicative hash; shardOf() is the single source of truth.
class KeyShardIndex {
public:
  /// Builds the index sequentially.
  KeyShardIndex(const History &H, size_t NumShards);

  /// Builds the index with one task per shard on \p Pool. Each task scans
  /// the history once and keeps only its own keys: total work is
  /// NumShards scans, but wall-clock is only NumShards / workers filtered
  /// scans (a small constant for the 2x oversharding the CC checker uses).
  KeyShardIndex(const History &H, size_t NumShards, ThreadPool &Pool);

  size_t numShards() const { return Shards.size(); }

  const std::vector<KeyEntry> &shard(size_t I) const { return Shards[I]; }

  static size_t shardOf(Key K, size_t NumShards) {
    // Fibonacci hashing: adjacent keys (the common interned-id case) land
    // on different shards.
    return static_cast<size_t>((K * 0x9e3779b97f4a7c15ull) >> 32) % NumShards;
  }

private:
  void buildShard(const History &H, size_t Shard);

  std::vector<std::vector<KeyEntry>> Shards;
};

} // namespace awdit

#endif // AWDIT_HISTORY_KEY_SHARD_INDEX_H
