//===- history/history_stats.h - History statistics --------------*- C++ -*-===//
//
// Part of the AWDIT reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Summary statistics of a history, used by the CLI tool and the benchmark
/// harness to report workload shapes (n, k, txn sizes, read/write mix).
///
//===----------------------------------------------------------------------===//

#ifndef AWDIT_HISTORY_HISTORY_STATS_H
#define AWDIT_HISTORY_HISTORY_STATS_H

#include "history/history.h"

#include <string>

namespace awdit {

/// Aggregate shape statistics of a History.
struct HistoryStats {
  size_t NumOps = 0;
  size_t NumTxns = 0;
  size_t NumCommitted = 0;
  size_t NumAborted = 0;
  size_t NumSessions = 0;
  size_t NumKeys = 0;
  size_t NumReads = 0;
  size_t NumWrites = 0;
  size_t NumExternalReads = 0;
  size_t MaxTxnSize = 0;
  double AvgTxnSize = 0.0;

  /// Renders a one-line summary, e.g. for log output.
  std::string toString() const;
};

/// Computes summary statistics for \p H.
HistoryStats computeStats(const History &H);

} // namespace awdit

#endif // AWDIT_HISTORY_HISTORY_STATS_H
