//===- history/history_builder.h - History construction ----------*- C++ -*-===//
//
// Part of the AWDIT reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Mutable builder for History objects. Generators, parsers, and tests feed
/// sessions/transactions/operations through this API; build() resolves the
/// wr relation from values (unique-value convention) and precomputes the
/// per-transaction indices used by the checking algorithms.
///
//===----------------------------------------------------------------------===//

#ifndef AWDIT_HISTORY_HISTORY_BUILDER_H
#define AWDIT_HISTORY_HISTORY_BUILDER_H

#include "history/history.h"

#include <optional>
#include <string>
#include <vector>

namespace awdit {

/// Incremental History builder.
///
/// Typical usage:
/// \code
///   HistoryBuilder B;
///   SessionId S = B.addSession();
///   TxnId T = B.beginTxn(S);
///   B.write(T, /*K=*/1, /*V=*/10);
///   B.read(T, /*K=*/2, /*V=*/20);
///   B.commit(T);
///   std::string Err;
///   std::optional<History> H = B.build(&Err);
/// \endcode
///
/// Model invariants enforced by build():
///  - no two writes carry the same (key, value) pair (so wr^-1 is a
///    function, Definition 2.2);
///  - session/transaction handles are valid and each transaction is closed
///    (committed or aborted) at most once.
class HistoryBuilder {
public:
  HistoryBuilder() = default;

  /// Adds a new, empty session and returns its id.
  SessionId addSession();

  /// Opens a new transaction in session \p S. Transactions of a session are
  /// so-ordered by the order of beginTxn calls.
  TxnId beginTxn(SessionId S);

  /// Appends a read of (\p K, \p V) to \p T in program order.
  void read(TxnId T, Key K, Value V);

  /// Appends a write of (\p K, \p V) to \p T in program order.
  void write(TxnId T, Key K, Value V);

  /// Appends an arbitrary operation to \p T in program order.
  void append(TxnId T, Operation Op);

  /// Marks \p T committed (the default state; provided for symmetry).
  void commit(TxnId T);

  /// Marks \p T aborted; it joins T_a and leaves the session order.
  void abortTxn(TxnId T);

  /// When enabled (default off), reads of value 0 on keys that no
  /// transaction writes resolve to a synthetic initial transaction that
  /// writes 0 to every such key, placed in its own session. This mirrors
  /// the common convention of testers seeded with an initial database
  /// state instead of reporting thin-air reads for cold keys.
  void setImplicitInitialState(bool Enable) { ImplicitInit = Enable; }

  /// Number of transactions added so far.
  size_t numTxns() const { return Txns.size(); }

  /// Finalizes the history. Returns std::nullopt and sets \p Err on
  /// invariant violations (e.g. duplicate (key, value) writes).
  std::optional<History> build(std::string *Err = nullptr) const;

private:
  struct PendingTxn {
    SessionId Session;
    bool Aborted = false;
    std::vector<Operation> Ops;
  };

  std::vector<PendingTxn> Txns;
  size_t NumSessions = 0;
  bool ImplicitInit = false;
};

} // namespace awdit

#endif // AWDIT_HISTORY_HISTORY_BUILDER_H
