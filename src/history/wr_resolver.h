//===- history/wr_resolver.h - Incremental wr resolution ---------*- C++ -*-===//
//
// Part of the AWDIT reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The write-site index behind wr resolution (unique-value convention,
/// Definition 2.2): maps (key, value) to the transaction/op that wrote it
/// and rejects duplicate writes. Factored out of HistoryBuilder::build() so
/// the streaming Monitor can resolve wr *incrementally* — one write at a
/// time, with retroactive lookup of reads that arrived before their writer
/// — against the exact same index semantics the one-shot builder uses.
///
//===----------------------------------------------------------------------===//

#ifndef AWDIT_HISTORY_WR_RESOLVER_H
#define AWDIT_HISTORY_WR_RESOLVER_H

#include "history/types.h"

#include <string>
#include <unordered_map>

namespace awdit {

/// The canonical error text for a violated unique-value invariant, shared
/// by HistoryBuilder, the Monitor, and the format parsers so every layer
/// reports the same diagnostic.
inline std::string duplicateWriteMessage(Key K, Value V) {
  return "duplicate write of key " + std::to_string(K) + " value " +
         std::to_string(V) + " (wr resolution requires unique values)";
}

/// A (key, value) pair, hashable, for wr resolution and duplicate-write
/// detection.
struct KeyValue {
  Key K;
  Value V;
  bool operator==(const KeyValue &O) const { return K == O.K && V == O.V; }
};

struct KeyValueHash {
  size_t operator()(const KeyValue &KV) const {
    // Mix the two 64-bit halves; the multiplier is an arbitrary odd prime.
    uint64_t H = KV.K * 0x9e3779b97f4a7c15ULL;
    H ^= static_cast<uint64_t>(KV.V) + 0x7f4a7c15ULL + (H << 6) + (H >> 2);
    return static_cast<size_t>(H);
  }
};

/// Location of a write: owning transaction and op index within it.
struct WriteSite {
  TxnId T;
  uint32_t Op;
};

/// The (key, value) -> write-site index. wr^-1 must be a function, so
/// record() rejects a second write of the same pair.
class WriteSiteIndex {
public:
  /// Records a write of (\p K, \p V) at (\p T, \p Op). Returns false when
  /// the pair was already written (the model invariant violation).
  bool record(Key K, Value V, TxnId T, uint32_t Op) {
    return Index.insert({KeyValue{K, V}, WriteSite{T, Op}}).second;
  }

  /// Looks up the write site of (\p K, \p V); nullptr if nothing wrote it
  /// (so far).
  const WriteSite *find(Key K, Value V) const {
    auto It = Index.find(KeyValue{K, V});
    return It == Index.end() ? nullptr : &It->second;
  }

  /// Removes the entry for (\p K, \p V), if present. Used by the windowed
  /// Monitor when the writing transaction is evicted.
  void erase(Key K, Value V) { Index.erase(KeyValue{K, V}); }

  size_t size() const { return Index.size(); }

  /// Calls \p Fn(const KeyValue &, const WriteSite &) for every entry, in
  /// unspecified order. Checkpoint serialization sorts the result itself.
  template <typename Fn> void forEach(Fn &&F) const {
    for (const auto &[KV, Site] : Index)
      F(KV, Site);
  }

  /// Rewrites every stored transaction id through \p Remap(old) -> new.
  /// Entries for which \p Remap returns NoTxn are dropped (evicted
  /// writers). Used by the windowed Monitor's compaction.
  template <typename RemapFn> void remapTxns(RemapFn &&Remap) {
    for (auto It = Index.begin(); It != Index.end();) {
      TxnId NewId = Remap(It->second.T);
      if (NewId == NoTxn) {
        It = Index.erase(It);
      } else {
        It->second.T = NewId;
        ++It;
      }
    }
  }

private:
  std::unordered_map<KeyValue, WriteSite, KeyValueHash> Index;
};

} // namespace awdit

#endif // AWDIT_HISTORY_WR_RESOLVER_H
