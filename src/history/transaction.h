//===- history/transaction.h - Transaction record ----------------*- C++ -*-===//
//
// Part of the AWDIT reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The Transaction record (paper Definition 2.1) plus the derived per-
/// transaction indices that History::finalize() precomputes for the checking
/// algorithms: resolved reads, distinct write keys, and distinct external
/// writers in first-read order.
///
//===----------------------------------------------------------------------===//

#ifndef AWDIT_HISTORY_TRANSACTION_H
#define AWDIT_HISTORY_TRANSACTION_H

#include "history/types.h"

#include <algorithm>
#include <vector>

namespace awdit {

/// A read operation after wr resolution. `Writer == NoTxn` marks a thin-air
/// read; `Writer == <own id>` marks an internal read (observe-own-writes).
struct ReadInfo {
  /// Index of the read in Transaction::Ops (its po position).
  uint32_t OpIndex;
  Key K;
  Value V;
  /// The transaction whose write this read observes (via unique values).
  TxnId Writer;
  /// The op index of the observed write inside the writer, NoOp if thin-air.
  uint32_t WriterOp;
};

/// A client transaction: its operations in program order, its session
/// coordinates, and indices derived during History::finalize().
struct Transaction {
  /// The session this transaction belongs to.
  SessionId Session = 0;
  /// Position of this transaction within its session's so order.
  uint32_t SoIndex = 0;
  /// Committed transactions form T_c; aborted ones T_a (Definition 2.2).
  bool Committed = true;
  /// Operations in program order.
  std::vector<Operation> Ops;

  // --- Derived by History::finalize(). ---

  /// All reads in po order, with resolved writers.
  std::vector<ReadInfo> Reads;
  /// Indices into Reads of *external* reads: the writer is a different,
  /// committed transaction. These are exactly the reads that participate in
  /// the RC/RA/CC axioms (the txn-level wr relation requires r not in t1).
  std::vector<uint32_t> ExtReads;
  /// Distinct keys written, sorted ascending (KeysWt(t)).
  std::vector<Key> WriteKeys;
  /// Distinct committed external writer transactions, in order of their
  /// first read by this transaction (the txn-level wr predecessors).
  std::vector<TxnId> ReadFroms;

  /// Returns true if this transaction writes \p K (binary search over the
  /// sorted WriteKeys — O(log |KeysWt|)).
  bool writesKey(Key K) const {
    return std::binary_search(WriteKeys.begin(), WriteKeys.end(), K);
  }

  /// Number of operations (reads + writes).
  size_t size() const { return Ops.size(); }
};

} // namespace awdit

#endif // AWDIT_HISTORY_TRANSACTION_H
