//===- history/history.cpp - Transaction history model --------------------===//

#include "history/history.h"

using namespace awdit;

TxnId History::soSuccessor(TxnId Id) const {
  const Transaction &T = Txns[Id];
  const std::vector<TxnId> &Sess = Sessions[T.Session];
  uint32_t Next = T.SoIndex + 1;
  if (Next < Sess.size())
    return Sess[Next];
  return NoTxn;
}

std::string History::txnLabel(TxnId Id) const {
  const Transaction &T = Txns[Id];
  std::string Label = "t" + std::to_string(Id) + "(s" +
                      std::to_string(T.Session) + "#" +
                      std::to_string(T.SoIndex);
  if (!T.Committed)
    Label += ",aborted";
  Label += ")";
  return Label;
}
