//===- history/history_stats.cpp - History statistics ---------------------===//

#include "history/history_stats.h"

#include <cstdio>

using namespace awdit;

HistoryStats awdit::computeStats(const History &H) {
  HistoryStats S;
  S.NumOps = H.numOps();
  S.NumTxns = H.numTxns();
  S.NumCommitted = H.numCommitted();
  S.NumAborted = S.NumTxns - S.NumCommitted;
  S.NumSessions = H.numSessions();
  S.NumKeys = H.numKeys();
  for (const Transaction &T : H.transactions()) {
    S.NumReads += T.Reads.size();
    S.NumWrites += T.Ops.size() - T.Reads.size();
    S.NumExternalReads += T.ExtReads.size();
    S.MaxTxnSize = std::max(S.MaxTxnSize, T.Ops.size());
  }
  S.AvgTxnSize =
      S.NumTxns == 0 ? 0.0
                     : static_cast<double>(S.NumOps) /
                           static_cast<double>(S.NumTxns);
  return S;
}

std::string HistoryStats::toString() const {
  char Buf[256];
  std::snprintf(Buf, sizeof(Buf),
                "ops=%zu txns=%zu (committed=%zu aborted=%zu) sessions=%zu "
                "keys=%zu reads=%zu writes=%zu avg_txn=%.2f max_txn=%zu",
                NumOps, NumTxns, NumCommitted, NumAborted, NumSessions,
                NumKeys, NumReads, NumWrites, AvgTxnSize, MaxTxnSize);
  return std::string(Buf);
}
