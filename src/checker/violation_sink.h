//===- checker/violation_sink.h - Streaming violation sinks ------*- C++ -*-===//
//
// Part of the AWDIT reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The pluggable violation-reporting interface of the streaming Monitor
/// (checker/monitor.h): instead of returning a vector after the fact, an
/// online checking session pushes each violation to a ViolationSink the
/// moment it becomes detectable. Ships three implementations — a callback
/// adapter, a collecting sink, and a JSON-lines sink — plus the JSON
/// serialization helpers the CLI's --json output reuses.
///
//===----------------------------------------------------------------------===//

#ifndef AWDIT_CHECKER_VIOLATION_SINK_H
#define AWDIT_CHECKER_VIOLATION_SINK_H

#include "checker/violation.h"

#include <functional>
#include <ostream>
#include <string>
#include <vector>

namespace awdit {

/// Receives violations from a streaming checking session as they are
/// detected. Transaction ids in the delivered Violation are *monitor ids*:
/// stable across the whole stream, even after windowed eviction renumbers
/// the in-memory window. Each distinct violation is delivered exactly once.
class ViolationSink {
public:
  virtual ~ViolationSink() = default;

  /// One newly detected violation. \p Description is the human-readable
  /// one-liner the monitor rendered (with monitor ids), so sinks need no
  /// access to monitor internals.
  virtual void onViolation(const Violation &V,
                           const std::string &Description) = 0;
};

/// Adapts a std::function to a sink; handy for lambdas in examples/tests.
class CallbackSink final : public ViolationSink {
public:
  using Callback =
      std::function<void(const Violation &, const std::string &)>;

  explicit CallbackSink(Callback Fn) : Fn(std::move(Fn)) {}

  void onViolation(const Violation &V,
                   const std::string &Description) override {
    Fn(V, Description);
  }

private:
  Callback Fn;
};

/// Accumulates everything reported; the sink equivalent of the one-shot
/// CheckReport::Violations vector.
class CollectingSink final : public ViolationSink {
public:
  void onViolation(const Violation &V,
                   const std::string &Description) override {
    Violations.push_back(V);
    Descriptions.push_back(Description);
  }

  std::vector<Violation> Violations;
  std::vector<std::string> Descriptions;
};

/// Writes one JSON object per violation, one per line (JSON-lines), to the
/// given stream. Machine-readable counterpart of the human text output;
/// `awdit monitor --json`, the --json mode of check/batch, and the server's
/// per-session JSONL sinks share the serializer below.
///
/// When constructed with a stream id (the server's multi-tenant case) each
/// line carries a "stream" field identifying the session the violation
/// belongs to. The id is a client-chosen string and is JSON-escaped like
/// every other string field.
class JsonLinesSink final : public ViolationSink {
public:
  explicit JsonLinesSink(std::ostream &Out) : Out(Out) {}
  JsonLinesSink(std::ostream &Out, std::string Stream)
      : Out(Out), Stream(std::move(Stream)), HasStream(true) {}

  void onViolation(const Violation &V,
                   const std::string &Description) override;

private:
  std::ostream &Out;
  std::string Stream;
  bool HasStream = false;
};

/// Appends \p Text to \p Out with JSON string escaping (no quotes added):
/// quotes, backslashes, and every control character below 0x20 — key and
/// format strings may come from untrusted stream input (anomaly
/// descriptions, client-chosen stream ids) and must never break the
/// JSON-lines framing.
void appendJsonEscaped(std::string &Out, std::string_view Text);

/// Serializes one violation as a JSON object: kind, the stream/session id
/// when given (the field the multi-tenant server needs to multiplex many
/// sessions onto one output), txn/op/other when present, the witness cycle
/// when present, and the optional description. No trailing newline.
std::string violationToJson(const Violation &V,
                            const std::string *Description = nullptr,
                            const std::string *Stream = nullptr);

} // namespace awdit

#endif // AWDIT_CHECKER_VIOLATION_SINK_H
