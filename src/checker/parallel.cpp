//===- checker/parallel.cpp - Sharded parallel checking engine --------------===//

#include "checker/parallel.h"

#include "checker/check_cc.h"
#include "checker/check_ra.h"
#include "checker/commit_graph.h"
#include "checker/read_consistency.h"
#include "checker/saturation_impl.h"
#include "checker/saturation_state.h"
#include "history/key_shard_index.h"
#include "support/thread_pool.h"

#include <algorithm>
#include <optional>

using namespace awdit;

namespace {

/// Transactions per chunk of the range-partitioned passes. Coarse enough
/// that per-chunk scratch allocation and the batch flush are noise.
constexpr size_t TxnGrain = 2048;

/// Per-worker sink that batches inferred edges and appends them to the
/// merged saturation state's striped buffers. One instance per parallelFor
/// chunk; the destructor flushes the tail.
class StripedEdgeSink {
public:
  explicit StripedEdgeSink(SaturationState &State) : State(State) {
    Buf.reserve(Cap);
  }

  StripedEdgeSink(const StripedEdgeSink &) = delete;
  StripedEdgeSink &operator=(const StripedEdgeSink &) = delete;

  ~StripedEdgeSink() { flush(); }

  void operator()(TxnId From, TxnId To) {
    Buf.push_back(CommitGraph::packEdge(From, To));
    if (Buf.size() >= Cap)
      flush();
  }

  void flush() {
    State.appendInferredBatch(Buf.data(), Buf.size());
    Buf.clear();
  }

private:
  static constexpr size_t Cap = 8192;
  SaturationState &State;
  std::vector<uint64_t> Buf;
};

/// Runs a violation-producing range pass over transaction chunks and
/// concatenates the per-chunk outputs in chunk order, reproducing the
/// sequential append order exactly. Returns true iff no chunk produced a
/// violation.
template <typename RangePass>
bool runChunkedViolationPass(const History &H, ThreadPool &Pool,
                             std::vector<Violation> &Out, RangePass Pass) {
  size_t N = H.numTxns();
  if (N == 0)
    return true;
  size_t NumChunks = (N + TxnGrain - 1) / TxnGrain;
  std::vector<std::vector<Violation>> PerChunk(NumChunks);
  Pool.parallelFor(0, N, TxnGrain, [&](size_t Begin, size_t End) {
    Pass(static_cast<TxnId>(Begin), static_cast<TxnId>(End),
         PerChunk[Begin / TxnGrain]);
  });
  size_t Before = Out.size();
  for (std::vector<Violation> &Chunk : PerChunk)
    Out.insert(Out.end(), std::make_move_iterator(Chunk.begin()),
               std::make_move_iterator(Chunk.end()));
  return Out.size() == Before;
}

} // namespace

bool awdit::checkReadConsistencyParallel(const History &H, ThreadPool &Pool,
                                         std::vector<Violation> &Out) {
  return runChunkedViolationPass(
      H, Pool, Out,
      [&H](TxnId Begin, TxnId End, std::vector<Violation> &ChunkOut) {
        checkReadConsistencyRange(H, Begin, End, ChunkOut);
      });
}

bool awdit::checkRcParallel(const History &H, ThreadPool &Pool,
                            std::vector<Violation> &Out, size_t MaxWitnesses,
                            SaturationStats *Stats) {
  if (!checkReadConsistencyParallel(H, Pool, Out))
    return false;

  // Shards feed one merged saturation state; its canonical finalize
  // (sorted, deduplicated) makes the result independent of scheduling.
  SaturationState Merged(IsolationLevel::ReadCommitted,
                         SaturationState::Mode::Batch);
  Pool.parallelFor(0, H.numTxns(), TxnGrain, [&](size_t Begin, size_t End) {
    detail::RcScratch Scratch;
    StripedEdgeSink Infer(Merged);
    detail::saturateRcRange(H, static_cast<TxnId>(Begin),
                            static_cast<TxnId>(End), Scratch, Infer);
  });

  return Merged.finalizeAcyclic(H, Out, MaxWitnesses, Stats);
}

bool awdit::checkRaParallel(const History &H, ThreadPool &Pool,
                            std::vector<Violation> &Out, size_t MaxWitnesses,
                            SaturationStats *Stats) {
  if (!checkReadConsistencyParallel(H, Pool, Out))
    return false;
  if (!runChunkedViolationPass(
          H, Pool, Out,
          [&H](TxnId Begin, TxnId End, std::vector<Violation> &ChunkOut) {
            checkRepeatableReadsRange(H, Begin, End, ChunkOut);
          }))
    return false;

  SaturationState Merged(IsolationLevel::ReadAtomic,
                         SaturationState::Mode::Batch);
  // One unit of work per session: the so-case last-writer table is
  // inherently sequential along so, but sessions are independent.
  Pool.parallelFor(0, H.numSessions(), 1, [&](size_t Begin, size_t End) {
    detail::RaScratch Scratch;
    StripedEdgeSink Infer(Merged);
    for (size_t S = Begin; S < End; ++S)
      detail::saturateRaSession(H, static_cast<SessionId>(S), Scratch,
                                Infer);
  });

  return Merged.finalizeAcyclic(H, Out, MaxWitnesses, Stats);
}

bool awdit::checkCcParallel(const History &H, ThreadPool &Pool,
                            std::vector<Violation> &Out, size_t MaxWitnesses,
                            SaturationStats *Stats) {
  if (!checkReadConsistencyParallel(H, Pool, Out))
    return false;

  SaturationState Merged(IsolationLevel::CausalConsistency,
                         SaturationState::Mode::Batch);
  std::optional<std::vector<uint32_t>> Order = Merged.computeBaseOrder(H);
  if (!Order) {
    // so ∪ wr cycle: fails every level; no saturation, no stats (mirrors
    // the sequential checker).
    Merged.finalizeAcyclic(H, Out, MaxWitnesses, nullptr);
    return false;
  }
  HappensBefore HB;
  fillHappensBefore(H, *Order, HB);

  // Shard the per-key last-writer inference (Algorithm 3, lines 5-15).
  // Keys are independent: all cross-key coupling goes through the read-only
  // HB matrix. 2x oversharding smooths out hot keys while keeping the
  // build (one filtered history scan per shard) cheap.
  size_t NumShards = std::max<size_t>(1, Pool.numThreads() * 2);
  KeyShardIndex Index(H, NumShards, Pool);
  size_t K = H.numSessions();

  Pool.parallelFor(0, NumShards, 1, [&](size_t Begin, size_t End) {
    StripedEdgeSink Infer(Merged);
    // Scan pointer and dedup state of the key currently being processed
    // (Algorithm 3, lastWrite); sized to its writing-session count.
    std::vector<uint32_t> Consumed;
    std::vector<uint64_t> LastEmit;
    for (size_t Shard = Begin; Shard < End; ++Shard) {
      for (const KeyEntry &E : Index.shard(Shard)) {
        size_t Slots = E.WriterSessions.size();
        if (Slots == 0 || E.Reads.empty())
          continue;
        Consumed.assign(Slots, 0);
        LastEmit.assign(Slots, ~uint64_t(0));
        SessionId Current = static_cast<SessionId>(-1);
        for (const KeyReadRef &R : E.Reads) {
          // Reads arrive grouped by scanning session in ascending order;
          // pointer state resets at each session boundary, exactly like
          // the sequential pass's per-key epoch stamp.
          if (R.Session != Current) {
            Current = R.Session;
            std::fill(Consumed.begin(), Consumed.end(), 0);
            std::fill(LastEmit.begin(), LastEmit.end(), ~uint64_t(0));
          }
          const uint32_t *Row =
              &HB.Rows[static_cast<size_t>(R.Reader) * K];
          for (size_t Slot = 0; Slot < Slots; ++Slot) {
            const std::vector<KeyWriterRef> &List = E.WriterLists[Slot];
            uint32_t Frontier = Row[E.WriterSessions[Slot]];
            uint32_t &C = Consumed[Slot];
            while (C < List.size() && List[C].SoIndex < Frontier)
              ++C;
            if (C == 0)
              continue;
            TxnId T2 = List[C - 1].T;
            if (T2 == R.Writer)
              continue;
            uint64_t Emit = (static_cast<uint64_t>(C) << 32) | R.Writer;
            if (LastEmit[Slot] == Emit)
              continue;
            LastEmit[Slot] = Emit;
            Infer(T2, R.Writer);
          }
        }
      }
    }
  });

  return Merged.finalizeAcyclic(H, Out, MaxWitnesses, Stats);
}
