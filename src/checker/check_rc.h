//===- checker/check_rc.h - AWDIT Read Committed (Alg. 1) ---------*- C++ -*-===//
//
// Part of the AWDIT reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// AWDIT's O(n^{3/2}) Read Committed checker (paper Algorithm 1 /
/// Theorem 1.1). Builds a saturated, minimal co' using per-transaction
/// reverse scans with a two-slot earliest-writers stack and smaller-set
/// intersections, then decides acyclicity.
///
//===----------------------------------------------------------------------===//

#ifndef AWDIT_CHECKER_CHECK_RC_H
#define AWDIT_CHECKER_CHECK_RC_H

#include "checker/violation.h"
#include "history/history.h"

#include <vector>

namespace awdit {

/// Statistics of one co'-saturation run, for reporting and benches.
struct SaturationStats {
  size_t InferredEdges = 0;
  size_t GraphEdges = 0;
};

/// Checks whether \p H satisfies Read Committed. Appends violations to
/// \p Out (at most \p MaxWitnesses cycle witnesses) and returns true iff
/// consistent. If Read Consistency already fails, the co' stage is skipped
/// (mirroring Algorithm 1, which exits after CheckReadConsistency).
bool checkRc(const History &H, std::vector<Violation> &Out,
             size_t MaxWitnesses = 16, SaturationStats *Stats = nullptr);

} // namespace awdit

#endif // AWDIT_CHECKER_CHECK_RC_H
