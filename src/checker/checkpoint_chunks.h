//===- checker/checkpoint_chunks.h - v2 chunk section kinds ------*- C++ -*-===//
//
// Part of the AWDIT reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The section-kind numbering of chunked (store-backed, format-v2)
/// checkpoints. Each kind labels one section of the Monitor serialization
/// stream, in stream order; chunk ids are chunkId(Kind, Bucket) (see
/// support/serialize.h) and must be strictly increasing through the
/// stream, so kinds here must stay in the order the sections are written.
/// Renumbering is a layout change of the v2 root only — the byte stream
/// itself is unaffected (marks are out-of-band) — but a resume pairs
/// chunks written and read by the same build, so keep CheckpointStoreVersion
/// bumped on any change that alters reassembly.
///
//===----------------------------------------------------------------------===//

#ifndef AWDIT_CHECKER_CHECKPOINT_CHUNKS_H
#define AWDIT_CHECKER_CHECKPOINT_CHUNKS_H

#include <cstdint>

namespace awdit {
namespace ckchunk {

enum Kind : uint64_t {
  // Monitor window state.
  MTxns = 1, ///< live transactions, bucketed by global id >> 4
  MSess,     ///< per-session member lists, bucketed by member id >> 8
  MMisc,     ///< op totals + window base (dirty every checkpoint)
  MMeta,     ///< per-transaction meta, bucketed by global id >> 6
  // Saturation engine (kinds SPos..SPos+2 are claimed by the embedded
  // IncrementalTopoOrder serialization: positions, out-, in-adjacency).
  SHdr,
  SPos,
  SOut,
  SIn,
  SEdges,   ///< refcounted edge set, bucketed by global source id >> 4
  SSources, ///< source-tagged edge lists, bucketed by (tag, id >> 4)
  SQuar,
  SProc,    ///< processed flags, bucketed by global id >> 8
  SReaders, ///< reader lists, bucketed by global id >> 4
  SHb,      ///< happens-before rows, bucketed by global id >> 4
  SWriters, ///< per-key writer index, bucketed by key >> 4
  SRa,      ///< per-session RA state, bucketed by session
  // Monitor resolution + delivery state.
  MAdopted,
  MWrites,  ///< write-site index, bucketed by key >> 4
  MPending, ///< pending reads, bucketed by key >> 4
  MWaiters, ///< close waiters, bucketed by global writer id >> 4
  MMask,    ///< evicted-writer mask (already global), bucketed by value >> 36
  MDirty,
  MOpen,
  MForced,
  MSoBase,
  MFp,  ///< delivery fingerprints, bucketed by insertion-sorted index >> 5
  MCyc, ///< reported cycle txns, bucketed by global id >> 6
  MRep, ///< reported violations, bucketed by index >> 4
  MTail ///< stats + cursors + flags (dirty every checkpoint)
};

} // namespace ckchunk
} // namespace awdit

#endif // AWDIT_CHECKER_CHECKPOINT_CHUNKS_H
