//===- checker/stats_snapshot.h - Shared monitor-stats rendering -*- C++ -*-===//
//
// Part of the AWDIT reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// One compact view of a monitoring session's counters, shared by every
/// consumer that reports them:
///
///  - `awdit monitor --stats-interval N` prints StatsSnapshot::toLine()
///    periodically to stderr while the stream runs;
///  - the server's STATS protocol verb replies with toJson();
///  - the server's Prometheus-style /metrics endpoint exports the same
///    counters (server/metrics rendering sums snapshots across sessions);
///  - the end-of-run summary JSON of `awdit monitor --json` and of server
///    sessions is monitorSummaryJson() — factored here so the server's
///    per-stream summaries are byte-identical to the standalone CLI's.
///
/// monitorSummaryJson() deliberately carries no timing fields: a resumed
/// run must produce a byte-identical final summary (the CI kill-and-resume
/// smoke diffs them), and wall-clock time is not part of the logical state.
/// Flush latency lives only in the live views (toLine, toJson, /metrics).
///
//===----------------------------------------------------------------------===//

#ifndef AWDIT_CHECKER_STATS_SNAPSHOT_H
#define AWDIT_CHECKER_STATS_SNAPSHOT_H

#include "checker/checker.h"
#include "checker/monitor.h"

#include <string>

namespace awdit {

/// A point-in-time copy of the counters every stats consumer reports.
/// Plain values, so a snapshot can be taken on the thread that owns the
/// monitor and rendered on any other.
struct StatsSnapshot {
  uint64_t Txns = 0;          ///< Transactions ingested.
  uint64_t Committed = 0;     ///< Transactions committed.
  uint64_t Ops = 0;           ///< Operations ingested.
  uint64_t LiveTxns = 0;      ///< Transactions currently in the window.
  uint64_t Violations = 0;    ///< Violations delivered to the sink.
  uint64_t Flushes = 0;       ///< Incremental checking passes.
  uint64_t EvictedTxns = 0;   ///< Transactions evicted from the window.
  uint64_t ForcedAborts = 0;  ///< Hung transactions force-aborted.
  uint64_t FlushMicros = 0;   ///< Wall-clock time inside checking passes.

  static StatsSnapshot of(const MonitorStats &S);

  /// Counter difference (this - Since); the per-interval view.
  StatsSnapshot minus(const StatsSnapshot &Since) const;

  /// Counter sum (the aggregate-across-sessions view the server's
  /// /metrics and whole-server STATS render). LiveTxns adds too: the
  /// aggregate gauge is the total of the per-session gauges.
  void add(const StatsSnapshot &S);

  /// One-line human rendering, e.g.
  /// "txns=1200 committed=1180 violations=3 evicted=0 flushes=5
  ///  flush_ms=1.82 live=1200". No trailing newline.
  std::string toLine() const;

  /// One JSON object with the same counters (flush time as
  /// "flush_micros"). No trailing newline.
  std::string toJson() const;
};

/// The end-of-run summary of a monitoring session as one JSON object —
/// exactly the line `awdit monitor --json` prints after finalize, and the
/// FINAL reply of a server session. Byte-identical across resumed runs for
/// the same stream (no timing fields). No trailing newline.
std::string monitorSummaryJson(const CheckReport &Report,
                               const MonitorStats &S, IsolationLevel Level);

} // namespace awdit

#endif // AWDIT_CHECKER_STATS_SNAPSHOT_H
