//===- checker/check_rc.cpp - AWDIT Read Committed (Alg. 1) ----------------===//

#include "checker/check_rc.h"

#include "checker/commit_graph.h"
#include "checker/read_consistency.h"
#include "support/hybrid_map.h"

using namespace awdit;

namespace {

/// The two-slot stack of earliest future writers per key (Algorithm 1,
/// earliestWts). Slot Top is the most recently pushed (po-earliest below
/// the scan point) distinct writer; Second the one pushed before it.
struct TwoSlot {
  TxnId Second = NoTxn;
  TxnId Top = NoTxn;
};

} // namespace

bool awdit::checkRc(const History &H, std::vector<Violation> &Out,
                    size_t MaxWitnesses, SaturationStats *Stats) {
  // Line 2: Read Consistency (Algorithm 4).
  if (!checkReadConsistency(H, Out))
    return false;

  // Line 3: co' <- so ∪ wr.
  CommitGraph Co(H);

  // Lines 4-21: saturate co' per committed transaction t3. The scratch
  // containers are hybrid (flat vectors while small): typical transactions
  // have a handful of reads, and this loop is the checker's hot path.
  HybridSet<TxnId> ReadTxns;
  std::vector<bool> IsFirstRead;
  HybridMap<Key, TwoSlot> EarliestWts;
  HybridSet<Key> ReadKeys;

  for (TxnId T3 = 0; T3 < H.numTxns(); ++T3) {
    const Transaction &T = H.txn(T3);
    if (!T.Committed)
      continue;
    const std::vector<uint32_t> &Ext = T.ExtReads;
    // The axiom needs two po-ordered external reads; nothing to infer
    // otherwise.
    if (Ext.size() < 2)
      continue;

    // Lines 5-10: mark the po-first read of each distinct writer t2.
    ReadTxns.clear();
    IsFirstRead.assign(Ext.size(), false);
    for (size_t I = 0; I < Ext.size(); ++I)
      IsFirstRead[I] = ReadTxns.insert(T.Reads[Ext[I]].Writer);

    // Lines 11-21: reverse po scan with the two-slot earliest-writers
    // stack and the set of keys read below the scan point.
    EarliestWts.clear();
    ReadKeys.clear();
    for (size_t I = Ext.size(); I-- > 0;) {
      const ReadInfo &RI = T.Reads[Ext[I]];
      Key Y = RI.K;
      TxnId T2 = RI.Writer;

      if (IsFirstRead[I]) {
        const Transaction &Writer = H.txn(T2);
        // Lines 15-18: iterate the smaller of KeysWt(t2) and readKeys,
        // picking per key the earliest future writer distinct from t2.
        auto Process = [&](Key X) {
          TwoSlot *Slot = EarliestWts.find(X);
          if (!Slot)
            return;
          TxnId T1 = Slot->Top;
          if (T1 == T2)
            T1 = Slot->Second;
          if (T1 != NoTxn)
            Co.inferEdge(T2, T1);
        };
        if (Writer.WriteKeys.size() <= ReadKeys.size()) {
          for (Key X : Writer.WriteKeys)
            if (ReadKeys.contains(X))
              Process(X);
        } else {
          ReadKeys.forEach([&](Key X) {
            if (Writer.writesKey(X))
              Process(X);
          });
        }
      }

      // Lines 19-21: push t2 onto the per-key stack (distinct writers
      // only) and record the key as read below the scan point.
      TwoSlot &Slot = EarliestWts.getOrInsert(Y);
      if (Slot.Top != T2) {
        Slot.Second = Slot.Top;
        Slot.Top = T2;
      }
      ReadKeys.insert(Y);
    }
  }

  if (Stats) {
    Stats->InferredEdges = Co.numInferredEdges();
    Stats->GraphEdges = Co.numEdges();
  }

  // Line 22: report a cycle if co' has one.
  return Co.checkAcyclic(Out, MaxWitnesses);
}
