//===- checker/check_rc.cpp - AWDIT Read Committed (Alg. 1) ----------------===//

#include "checker/check_rc.h"

#include "checker/commit_graph.h"
#include "checker/read_consistency.h"
#include "checker/saturation_impl.h"

using namespace awdit;

bool awdit::checkRc(const History &H, std::vector<Violation> &Out,
                    size_t MaxWitnesses, SaturationStats *Stats) {
  // Line 2: Read Consistency (Algorithm 4).
  if (!checkReadConsistency(H, Out))
    return false;

  // Line 3: co' <- so ∪ wr.
  CommitGraph Co(H);

  // Lines 4-21: saturate co' over all transactions (the shared kernel; the
  // parallel engine runs the same kernel over transaction ranges).
  detail::RcScratch Scratch;
  detail::saturateRcRange(H, 0, static_cast<TxnId>(H.numTxns()), Scratch,
                          [&](TxnId From, TxnId To) {
                            Co.inferEdge(From, To);
                          });

  if (Stats) {
    Stats->InferredEdges = Co.numInferredEdges();
    Stats->GraphEdges = Co.numEdges();
  }

  // Line 22: report a cycle if co' has one.
  return Co.checkAcyclic(Out, MaxWitnesses);
}
