//===- checker/parallel.h - Sharded parallel checking engine -----*- C++ -*-===//
//
// Part of the AWDIT reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The parallel counterparts of the RC/RA/CC checkers, selected by
/// CheckOptions::Threads through checkIsolation(). The engine runs the same
/// saturation kernels as the sequential checkers (checker/saturation_impl.h)
/// over independent units of work — transaction ranges for RC and the Read
/// Consistency pass, sessions for RA, key shards (history/key_shard_index.h)
/// for CC — and has every shard feed its inferred edges into one merged
/// SaturationState (checker/saturation_state.h) through striped buffers.
/// The state's canonical finalize (SCC pass and witness extraction) stays
/// sequential on the merged edge set.
///
/// Determinism: the merged edge set is canonicalized (sorted, deduplicated)
/// before the graph sees it, and per-range violation lists are concatenated
/// in range order, so verdicts, violation lists, statistics, and witness
/// cycles are bit-identical to the sequential engine on every history.
///
//===----------------------------------------------------------------------===//

#ifndef AWDIT_CHECKER_PARALLEL_H
#define AWDIT_CHECKER_PARALLEL_H

#include "checker/check_rc.h"
#include "checker/violation.h"
#include "history/history.h"

#include <vector>

namespace awdit {

class ThreadPool;

/// Parallel Read Consistency (Algorithm 4): transaction ranges checked on
/// \p Pool, violations concatenated in range order (identical list to
/// checkReadConsistency). Returns true iff no violation was found.
bool checkReadConsistencyParallel(const History &H, ThreadPool &Pool,
                                  std::vector<Violation> &Out);

/// Parallel Read Committed (Algorithm 1) on \p Pool. Same contract and
/// results as checkRc.
bool checkRcParallel(const History &H, ThreadPool &Pool,
                     std::vector<Violation> &Out, size_t MaxWitnesses = 16,
                     SaturationStats *Stats = nullptr);

/// Parallel Read Atomic (Algorithm 2) on \p Pool: one saturation task per
/// session. Same contract and results as checkRa.
bool checkRaParallel(const History &H, ThreadPool &Pool,
                     std::vector<Violation> &Out, size_t MaxWitnesses = 16,
                     SaturationStats *Stats = nullptr);

/// Parallel Causal Consistency (Algorithm 3) on \p Pool: happens-before is
/// filled sequentially (it is a chain computation along the topological
/// order), then per-key last-writer inference runs over key shards in
/// parallel. Same contract and results as checkCc.
bool checkCcParallel(const History &H, ThreadPool &Pool,
                     std::vector<Violation> &Out, size_t MaxWitnesses = 16,
                     SaturationStats *Stats = nullptr);

} // namespace awdit

#endif // AWDIT_CHECKER_PARALLEL_H
