//===- checker/read_consistency.cpp - Read Consistency (Alg. 4) ------------===//

#include "checker/read_consistency.h"

#include <unordered_map>

using namespace awdit;

namespace {

/// Lazily computed per-transaction map key -> op index of the final write
/// to that key. Shared across all reads from the same writer so the
/// observe-latest-write check stays linear overall.
class FinalWriteIndex {
public:
  explicit FinalWriteIndex(const std::vector<Transaction> &Txns)
      : Txns(Txns) {}

  uint32_t finalWriteOp(TxnId Writer, Key K) {
    auto [It, Inserted] = Cache.try_emplace(Writer);
    if (Inserted) {
      const Transaction &T = Txns[Writer];
      for (uint32_t OpIdx = 0; OpIdx < T.Ops.size(); ++OpIdx)
        if (T.Ops[OpIdx].isWrite())
          It->second[T.Ops[OpIdx].K] = OpIdx;
    }
    auto KeyIt = It->second.find(K);
    return KeyIt == It->second.end() ? NoOp : KeyIt->second;
  }

private:
  const std::vector<Transaction> &Txns;
  std::unordered_map<TxnId, std::unordered_map<Key, uint32_t>> Cache;
};

} // namespace

bool awdit::checkReadConsistency(const History &H,
                                 std::vector<Violation> &Out) {
  return checkReadConsistencyRange(H, 0, static_cast<TxnId>(H.numTxns()),
                                   Out);
}

bool awdit::checkReadConsistencyRange(const History &H, TxnId Begin,
                                      TxnId End, std::vector<Violation> &Out) {
  size_t Before = Out.size();
  const std::vector<Transaction> &Txns = H.transactions();
  FinalWriteIndex FinalWrites(Txns);

  for (TxnId Id = Begin; Id < End; ++Id) {
    const Transaction &T = Txns[Id];
    if (!T.Committed)
      continue;

    // latestWrite[x]: op index of the latest own write to x seen so far in
    // the po scan; used for the own-write axioms (Fig. 2c/2d/2e same-txn).
    std::unordered_map<Key, uint32_t> LatestOwnWrite;
    size_t NextRead = 0;
    for (uint32_t OpIdx = 0; OpIdx < T.Ops.size(); ++OpIdx) {
      const Operation &Op = T.Ops[OpIdx];
      if (Op.isWrite()) {
        LatestOwnWrite[Op.K] = OpIdx;
        continue;
      }
      const ReadInfo &RI = T.Reads[NextRead++];

      // (a) No thin-air reads.
      if (RI.Writer == NoTxn) {
        Out.push_back({ViolationKind::ThinAirRead, Id, OpIdx, NoTxn, {}});
        continue;
      }
      // (b) No aborted reads.
      if (!Txns[RI.Writer].Committed) {
        Out.push_back(
            {ViolationKind::AbortedRead, Id, OpIdx, RI.Writer, {}});
        continue;
      }

      auto OwnIt = LatestOwnWrite.find(Op.K);
      if (RI.Writer == Id) {
        // (c) No future reads: the observed own write must be po-earlier.
        if (RI.WriterOp > OpIdx) {
          Out.push_back({ViolationKind::FutureRead, Id, OpIdx, Id, {}});
          continue;
        }
        // (e, same txn) Observe latest own write.
        if (OwnIt == LatestOwnWrite.end() || OwnIt->second != RI.WriterOp) {
          Out.push_back(
              {ViolationKind::NotLatestWriteSameTxn, Id, OpIdx, Id, {}});
          continue;
        }
      } else {
        // (d) Observe own writes: reading externally is wrong if an own
        // po-earlier write to the key exists.
        if (OwnIt != LatestOwnWrite.end()) {
          Out.push_back(
              {ViolationKind::NotOwnWrite, Id, OpIdx, RI.Writer, {}});
          continue;
        }
        // (e, other txn) Observe latest write: the observed write must be
        // the final write to the key inside the writer transaction.
        if (FinalWrites.finalWriteOp(RI.Writer, Op.K) != RI.WriterOp) {
          Out.push_back({ViolationKind::NotLatestWriteOtherTxn, Id, OpIdx,
                         RI.Writer,
                         {}});
          continue;
        }
      }
    }
  }
  return Out.size() == Before;
}
