//===- checker/check_cc.h - AWDIT Causal Consistency (Alg. 3) -----*- C++ -*-===//
//
// Part of the AWDIT reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// AWDIT's O(n·k) Causal Consistency checker (paper Algorithm 3 /
/// Theorem 1.2): happens-before computed with session-indexed vector
/// clocks, per-session last-writer tables advanced monotonically along so,
/// and co' acyclicity.
///
//===----------------------------------------------------------------------===//

#ifndef AWDIT_CHECKER_CHECK_CC_H
#define AWDIT_CHECKER_CHECK_CC_H

#include "checker/check_rc.h"
#include "checker/violation.h"
#include "history/history.h"

#include <vector>

namespace awdit {

/// The happens-before relation as one vector clock row per transaction.
/// Row t holds, per session s', 1 + SoIndex of the so-latest transaction
/// t' of s' with t' (so ∪ wr)+ t — exclusive of t itself; 0 is bottom.
struct HappensBefore {
  size_t NumSessions = 0;
  /// Flattened row-major [txn][session] clock matrix.
  std::vector<uint32_t> Rows;

  uint32_t get(TxnId T, SessionId S) const {
    return Rows[static_cast<size_t>(T) * NumSessions + S];
  }
};

/// Computes happens-before for \p H (Algorithm 3, ComputeHB). Returns false
/// if so ∪ wr is cyclic, in which case \p HB is unspecified.
bool computeHappensBefore(const History &H, HappensBefore &HB);

/// Fills the exclusive happens-before clock rows given \p Order, a
/// topological order of so ∪ wr (ComputeHB, lines 22-25). Exposed so the
/// parallel engine can share one commit graph between ComputeHB and the
/// saturation pass instead of rebuilding it.
void fillHappensBefore(const History &H, const std::vector<uint32_t> &Order,
                       HappensBefore &HB);

/// Checks whether \p H satisfies Causal Consistency. Appends violations to
/// \p Out (at most \p MaxWitnesses cycle witnesses) and returns true iff
/// consistent.
bool checkCc(const History &H, std::vector<Violation> &Out,
             size_t MaxWitnesses = 16, SaturationStats *Stats = nullptr);

/// The paper's implementation variant of Algorithm 3 (§5): happens-before
/// clocks computed on the fly in topological order with reference-counted
/// row recycling, and the monotone lastWrite scan replaced by binary
/// search (which makes per-transaction processing order-independent, the
/// prerequisite for discarding rows early). Same verdicts as checkCc;
/// memory drops from O(n·k) to O(width·k) where width is the maximal
/// so ∪ wr antichain the topological order keeps alive.
bool checkCcOnTheFly(const History &H, std::vector<Violation> &Out,
                     size_t MaxWitnesses = 16,
                     SaturationStats *Stats = nullptr);

} // namespace awdit

#endif // AWDIT_CHECKER_CHECK_CC_H
