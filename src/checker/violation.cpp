//===- checker/violation.cpp - Violation and witness types -----------------===//

#include "checker/violation.h"

#include "support/assert.h"

using namespace awdit;

const char *awdit::violationKindName(ViolationKind Kind) {
  switch (Kind) {
  case ViolationKind::ThinAirRead:
    return "Thin-Air Read";
  case ViolationKind::AbortedRead:
    return "Aborted Read";
  case ViolationKind::FutureRead:
    return "Future Read";
  case ViolationKind::NotOwnWrite:
    return "Not Own Write";
  case ViolationKind::NotLatestWriteSameTxn:
    return "Not Latest Write (same txn)";
  case ViolationKind::NotLatestWriteOtherTxn:
    return "Not Latest Write (other txn)";
  case ViolationKind::NonRepeatableRead:
    return "Non-Repeatable Read";
  case ViolationKind::CausalityCycle:
    return "Causality Cycle";
  case ViolationKind::CommitOrderCycle:
    return "Commit-Order Cycle";
  }
  awditUnreachable("unknown violation kind");
}

static const char *edgeKindName(EdgeKind Kind) {
  switch (Kind) {
  case EdgeKind::So:
    return "so";
  case EdgeKind::Wr:
    return "wr";
  case EdgeKind::Inferred:
    return "co'";
  }
  awditUnreachable("unknown edge kind");
}

std::string Violation::describe(const History &H) const {
  std::string Out = violationKindName(Kind);
  Out += ":";
  if (!Cycle.empty()) {
    // Appended piecewise: GCC 12 raises a bogus -Wrestrict on the
    // `"literal" + std::string&&` chain here (GCC PR 105651).
    for (const WitnessEdge &E : Cycle) {
      Out += ' ';
      Out += H.txnLabel(E.From);
      Out += " -";
      Out += edgeKindName(E.Kind);
      Out += "->";
    }
    Out += ' ';
    Out += H.txnLabel(Cycle.front().From);
    return Out;
  }
  if (T != NoTxn) {
    Out += " read";
    if (OpIndex != NoOp && OpIndex < H.txn(T).Ops.size()) {
      const Operation &Op = H.txn(T).Ops[OpIndex];
      Out += " R(" + std::to_string(Op.K) + "," + std::to_string(Op.V) + ")";
    }
    Out += " in " + H.txnLabel(T);
  }
  if (Other != NoTxn)
    Out += " (writer " + H.txnLabel(Other) + ")";
  return Out;
}
