//===- checker/read_consistency.h - Read Consistency (Alg. 4) -----*- C++ -*-===//
//
// Part of the AWDIT reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The linear-time Read Consistency check (paper Definition 2.3 and
/// Algorithm 4): no thin-air reads, no aborted reads, no future reads,
/// observe-own-writes, observe-latest-write. All three isolation levels
/// require Read Consistency as a precondition. Every failing read is
/// reported independently (paper §3.4).
///
//===----------------------------------------------------------------------===//

#ifndef AWDIT_CHECKER_READ_CONSISTENCY_H
#define AWDIT_CHECKER_READ_CONSISTENCY_H

#include "checker/violation.h"
#include "history/history.h"

#include <vector>

namespace awdit {

/// Checks the five Read Consistency axioms of \p H in O(n) time, appending
/// one violation per failing read to \p Out. Returns true iff no violation
/// was found.
bool checkReadConsistency(const History &H, std::vector<Violation> &Out);

/// Range form of checkReadConsistency covering transactions [Begin, End):
/// the unit of work of the parallel engine's sharded pass. Transactions are
/// checked independently, so concatenating the outputs of a partition of
/// [0, numTxns) in range order reproduces the sequential violation list
/// exactly. Returns true iff the range added no violation.
bool checkReadConsistencyRange(const History &H, TxnId Begin, TxnId End,
                               std::vector<Violation> &Out);

} // namespace awdit

#endif // AWDIT_CHECKER_READ_CONSISTENCY_H
