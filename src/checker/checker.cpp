//===- checker/checker.cpp - AWDIT checking facade --------------------------===//

#include "checker/checker.h"

#include "checker/check_cc.h"
#include "checker/check_ra.h"
#include "checker/check_ra_single_session.h"
#include "checker/check_rc.h"
#include "checker/monitor.h"
#include "checker/parallel.h"
#include "checker/read_consistency.h"
#include "checker/saturation_state.h"
#include "support/assert.h"
#include "support/thread_pool.h"

#include <optional>

using namespace awdit;

namespace {

/// The sequential engine path: the read-level axiom passes of the batch
/// algorithms, then the incremental saturation engine run as one
/// cold-start delta, then the canonical acyclicity pass. Structured
/// exactly like checkRc/checkRa/checkCc (same passes, same kernels, same
/// canonicalization), so verdicts, violation lists, statistics, and
/// witness cycles are bit-identical to them on every history.
bool checkSequentialViaEngine(const History &H, IsolationLevel Level,
                              std::vector<Violation> &Out,
                              size_t MaxWitnesses, SaturationStats *Stats) {
  if (!checkReadConsistency(H, Out))
    return false;
  if (Level == IsolationLevel::ReadAtomic && !checkRepeatableReads(H, Out))
    return false;
  SaturationState Engine(Level, SaturationState::Mode::Batch);
  Engine.coldStart(H);
  // The batch CC checker never reports saturation stats when so ∪ wr is
  // already cyclic (it stops before saturating); mirror that.
  bool SkipStats =
      Level == IsolationLevel::CausalConsistency && Engine.baseCyclic();
  return Engine.finalizeAcyclic(H, Out, MaxWitnesses,
                                SkipStats ? nullptr : Stats);
}

} // namespace

CheckReport awdit::detail::checkOneShot(const History &H,
                                        IsolationLevel Level,
                                        const CheckOptions &Options) {
  CheckReport Report;
  SaturationStats Sat;

  // The parallel engine kicks in when more than one worker is requested
  // (or available, with the Threads = 0 default) and the history is large
  // enough to amortize thread startup. The OnTheFly CC variant is pinned
  // to the sequential path: its purpose is bounded memory.
  size_t Threads =
      Options.Threads == 0 ? ThreadPool::defaultThreads() : Options.Threads;
  bool UseParallel =
      Threads > 1 && H.numTxns() >= Options.ParallelThreshold &&
      !(Level == IsolationLevel::CausalConsistency &&
        Options.Cc == CcVariant::OnTheFly);
  std::optional<ThreadPool> Pool;
  if (UseParallel)
    Pool.emplace(Threads);

  switch (Level) {
  case IsolationLevel::ReadCommitted:
    Report.Consistent =
        UseParallel
            ? checkRcParallel(H, *Pool, Report.Violations,
                              Options.MaxWitnesses, &Sat)
            : checkSequentialViaEngine(H, Level, Report.Violations,
                                       Options.MaxWitnesses, &Sat);
    break;
  case IsolationLevel::ReadAtomic:
    if (Options.UseSingleSessionFastPath && isSingleSession(H)) {
      Report.Consistent = checkRaSingleSession(H, Report.Violations);
      Report.Stats.UsedFastPath = true;
    } else if (UseParallel) {
      Report.Consistent = checkRaParallel(H, *Pool, Report.Violations,
                                          Options.MaxWitnesses, &Sat);
    } else {
      Report.Consistent = checkSequentialViaEngine(
          H, Level, Report.Violations, Options.MaxWitnesses, &Sat);
    }
    break;
  case IsolationLevel::CausalConsistency:
    if (UseParallel)
      Report.Consistent = checkCcParallel(H, *Pool, Report.Violations,
                                          Options.MaxWitnesses, &Sat);
    else if (Options.Cc == CcVariant::OnTheFly)
      Report.Consistent = checkCcOnTheFly(H, Report.Violations,
                                          Options.MaxWitnesses, &Sat);
    else
      Report.Consistent = checkSequentialViaEngine(
          H, Level, Report.Violations, Options.MaxWitnesses, &Sat);
    break;
  }

  Report.Stats.InferredEdges = Sat.InferredEdges;
  Report.Stats.GraphEdges = Sat.GraphEdges;
  AWDIT_ASSERT(Report.Consistent == Report.Violations.empty(),
               "verdict must agree with the violation list");
  return Report;
}

CheckReport awdit::checkIsolation(const History &H, IsolationLevel Level,
                                  const CheckOptions &Options) {
  MonitorOptions MonitorOpts;
  MonitorOpts.Level = Level;
  MonitorOpts.Check = Options;
  Monitor M(MonitorOpts);
  // The history is already resolved, so the bulk-adopt fast path skips
  // per-operation re-resolution; tests/test_monitor.cpp holds this path
  // and the incremental replay() path to the same bit-identical contract.
  M.adopt(H);
  return M.finalize();
}
