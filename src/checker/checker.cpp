//===- checker/checker.cpp - AWDIT checking facade --------------------------===//

#include "checker/checker.h"

#include "checker/check_cc.h"
#include "checker/check_ra.h"
#include "checker/check_ra_single_session.h"
#include "checker/check_rc.h"
#include "support/assert.h"

using namespace awdit;

CheckReport awdit::checkIsolation(const History &H, IsolationLevel Level,
                                  const CheckOptions &Options) {
  CheckReport Report;
  SaturationStats Sat;

  switch (Level) {
  case IsolationLevel::ReadCommitted:
    Report.Consistent =
        checkRc(H, Report.Violations, Options.MaxWitnesses, &Sat);
    break;
  case IsolationLevel::ReadAtomic:
    if (Options.UseSingleSessionFastPath && isSingleSession(H)) {
      Report.Consistent = checkRaSingleSession(H, Report.Violations);
      Report.Stats.UsedFastPath = true;
    } else {
      Report.Consistent =
          checkRa(H, Report.Violations, Options.MaxWitnesses, &Sat);
    }
    break;
  case IsolationLevel::CausalConsistency:
    if (Options.Cc == CcVariant::OnTheFly)
      Report.Consistent = checkCcOnTheFly(H, Report.Violations,
                                          Options.MaxWitnesses, &Sat);
    else
      Report.Consistent =
          checkCc(H, Report.Violations, Options.MaxWitnesses, &Sat);
    break;
  }

  Report.Stats.InferredEdges = Sat.InferredEdges;
  Report.Stats.GraphEdges = Sat.GraphEdges;
  AWDIT_ASSERT(Report.Consistent == Report.Violations.empty(),
               "verdict must agree with the violation list");
  return Report;
}
