//===- checker/shrinker.h - Violation shrinking -------------------*- C++ -*-===//
//
// Part of the AWDIT reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Delta-debugging minimizer for inconsistent histories: given a history
/// that violates an isolation level, produce a (much) smaller sub-history
/// that still violates it. Complements the witness cycles of §3.4 — the
/// shrunken history is a self-contained, replayable repro a database
/// developer can paste into a bug report.
///
/// Shrinking is sound by construction: transactions are removed wholesale,
/// and reads whose writer was removed are dropped with them, so the
/// remaining history never acquires spurious thin-air violations.
///
//===----------------------------------------------------------------------===//

#ifndef AWDIT_CHECKER_SHRINKER_H
#define AWDIT_CHECKER_SHRINKER_H

#include "checker/checker.h"
#include "history/history.h"

namespace awdit {

/// Options for shrinkViolation.
struct ShrinkOptions {
  /// Upper bound on consistency checks spent (the dominant cost).
  size_t MaxChecks = 2000;
  /// Also try dropping individual reads of surviving transactions.
  bool ShrinkOps = true;
};

/// Result of a shrink run.
struct ShrinkResult {
  History Shrunk;
  size_t ChecksUsed = 0;
  size_t TxnsBefore = 0;
  size_t TxnsAfter = 0;
};

/// Minimizes \p H while it keeps violating \p Level. \p H must be
/// inconsistent at \p Level (asserted). The result is 1-minimal w.r.t.
/// transaction removal up to the check budget.
ShrinkResult shrinkViolation(const History &H, IsolationLevel Level,
                             const ShrinkOptions &Options = {});

} // namespace awdit

#endif // AWDIT_CHECKER_SHRINKER_H
