//===- checker/check_ra.cpp - AWDIT Read Atomic (Alg. 2) -------------------===//

#include "checker/check_ra.h"

#include "checker/commit_graph.h"
#include "checker/read_consistency.h"
#include "support/hybrid_map.h"

#include <unordered_map>

using namespace awdit;

bool awdit::checkRepeatableReads(const History &H,
                                 std::vector<Violation> &Out) {
  size_t Before = Out.size();
  std::unordered_map<Key, TxnId> LastWriter;
  for (TxnId Id = 0; Id < H.numTxns(); ++Id) {
    const Transaction &T = H.txn(Id);
    if (!T.Committed)
      continue;
    LastWriter.clear();
    // Only external reads matter: the guard in Algorithm 2 line 25 skips
    // own-transaction writers.
    for (uint32_t ReadIdx : T.ExtReads) {
      const ReadInfo &RI = T.Reads[ReadIdx];
      auto [It, Inserted] = LastWriter.try_emplace(RI.K, RI.Writer);
      if (!Inserted && It->second != RI.Writer)
        Out.push_back({ViolationKind::NonRepeatableRead, Id, RI.OpIndex,
                       RI.Writer,
                       {}});
    }
  }
  return Out.size() == Before;
}

bool awdit::checkRa(const History &H, std::vector<Violation> &Out,
                    size_t MaxWitnesses, SaturationStats *Stats) {
  // Lines 2-3: Read Consistency, then repeatable reads.
  if (!checkReadConsistency(H, Out))
    return false;
  if (!checkRepeatableReads(H, Out))
    return false;

  // Line 4: co' <- so ∪ wr.
  CommitGraph Co(H);

  // Per-transaction scratch: distinct externally-read keys and their
  // (unique, by repeatable reads) writer. Hybrid: flat while small.
  HybridMap<Key, TxnId> ExtKeyWriter;
  std::vector<Key> ExtKeys;

  // Lines 5-18.
  for (SessionId S = 0; S < H.numSessions(); ++S) {
    // lastWrite[x]: the so-latest transaction of this session so far that
    // writes x (Algorithm 2, line 6).
    std::unordered_map<Key, TxnId> LastWrite;
    for (TxnId T3 : H.sessionTxns(S)) {
      const Transaction &T = H.txn(T3);

      // Collect the distinct external read keys of t3 once.
      ExtKeyWriter.clear();
      ExtKeys.clear();
      for (uint32_t ReadIdx : T.ExtReads) {
        const ReadInfo &RI = T.Reads[ReadIdx];
        if (!ExtKeyWriter.find(RI.K)) {
          ExtKeyWriter.getOrInsert(RI.K) = RI.Writer;
          ExtKeys.push_back(RI.K);
        }
      }

      // Lines 8-11: the so case. For each external read key x, the last
      // writer of x so-before t3 must be co-before the read's writer t1.
      for (Key X : ExtKeys) {
        auto It = LastWrite.find(X);
        if (It == LastWrite.end())
          continue;
        TxnId T2 = It->second;
        TxnId T1 = *ExtKeyWriter.find(X);
        if (T1 != T2)
          Co.inferEdge(T2, T1);
      }

      // Lines 12-16: the wr case. For each wr predecessor t2, intersect
      // KeysWt(t2) with KeysRd(t3), iterating over the smaller set.
      for (TxnId T2 : T.ReadFroms) {
        const Transaction &Writer = H.txn(T2);
        auto Process = [&](TxnId T1) {
          if (T1 != T2)
            Co.inferEdge(T2, T1);
        };
        if (Writer.WriteKeys.size() <= ExtKeys.size()) {
          for (Key X : Writer.WriteKeys) {
            if (TxnId *T1 = ExtKeyWriter.find(X))
              Process(*T1);
          }
        } else {
          for (Key X : ExtKeys)
            if (Writer.writesKey(X))
              Process(*ExtKeyWriter.find(X));
        }
      }

      // Lines 17-18: record t3 as the session's latest writer of its keys.
      for (Key X : T.WriteKeys)
        LastWrite[X] = T3;
    }
  }

  if (Stats) {
    Stats->InferredEdges = Co.numInferredEdges();
    Stats->GraphEdges = Co.numEdges();
  }

  // Line 19: cycle check.
  return Co.checkAcyclic(Out, MaxWitnesses);
}
