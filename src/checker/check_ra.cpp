//===- checker/check_ra.cpp - AWDIT Read Atomic (Alg. 2) -------------------===//

#include "checker/check_ra.h"

#include "checker/commit_graph.h"
#include "checker/read_consistency.h"
#include "checker/saturation_impl.h"
#include "support/hybrid_map.h"

#include <unordered_map>

using namespace awdit;

bool awdit::checkRepeatableReads(const History &H,
                                 std::vector<Violation> &Out) {
  return checkRepeatableReadsRange(H, 0, static_cast<TxnId>(H.numTxns()),
                                   Out);
}

bool awdit::checkRepeatableReadsRange(const History &H, TxnId Begin,
                                      TxnId End,
                                      std::vector<Violation> &Out) {
  size_t Before = Out.size();
  std::unordered_map<Key, TxnId> LastWriter;
  for (TxnId Id = Begin; Id < End; ++Id) {
    const Transaction &T = H.txn(Id);
    if (!T.Committed)
      continue;
    LastWriter.clear();
    // Only external reads matter: the guard in Algorithm 2 line 25 skips
    // own-transaction writers.
    for (uint32_t ReadIdx : T.ExtReads) {
      const ReadInfo &RI = T.Reads[ReadIdx];
      auto [It, Inserted] = LastWriter.try_emplace(RI.K, RI.Writer);
      if (!Inserted && It->second != RI.Writer)
        Out.push_back({ViolationKind::NonRepeatableRead, Id, RI.OpIndex,
                       RI.Writer,
                       {}});
    }
  }
  return Out.size() == Before;
}

bool awdit::checkRa(const History &H, std::vector<Violation> &Out,
                    size_t MaxWitnesses, SaturationStats *Stats) {
  // Lines 2-3: Read Consistency, then repeatable reads.
  if (!checkReadConsistency(H, Out))
    return false;
  if (!checkRepeatableReads(H, Out))
    return false;

  // Line 4: co' <- so ∪ wr.
  CommitGraph Co(H);

  // Lines 5-18: per-session saturation (the shared kernel; the parallel
  // engine runs the same kernel with one task per session).
  detail::RaScratch Scratch;
  for (SessionId S = 0; S < H.numSessions(); ++S)
    detail::saturateRaSession(H, S, Scratch,
                              [&](TxnId From, TxnId To) {
                                Co.inferEdge(From, To);
                              });

  if (Stats) {
    Stats->InferredEdges = Co.numInferredEdges();
    Stats->GraphEdges = Co.numEdges();
  }

  // Line 19: cycle check.
  return Co.checkAcyclic(Out, MaxWitnesses);
}
