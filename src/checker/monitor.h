//===- checker/monitor.h - Streaming online-checking session -----*- C++ -*-===//
//
// Part of the AWDIT reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The streaming entry point of the AWDIT library: a long-lived Monitor
/// session that ingests sessions/transactions/operations as they arrive
/// from a running database (mirroring HistoryBuilder's begin/read/write/
/// commit surface), resolves the wr relation incrementally, and drives the
/// incremental saturation engine (checker/saturation_state.h) with the
/// delta of newly committed or retroactively re-resolved transactions at a
/// configurable cadence — per-flush work is proportional to the delta, not
/// the live window. Violations are pushed to a pluggable ViolationSink the
/// moment they become detectable (read-level axioms when the transaction
/// is checked, cycles the instant the closing edge is inserted) instead of
/// being returned after the whole history has been materialized.
///
/// The one-shot checkIsolation() facade is a thin wrapper over this class:
/// replay the history, finalize, return the report (bit-identical to the
/// historical one-shot engine; enforced by tests/test_monitor.cpp).
///
/// A windowed mode bounds memory on unbounded streams: transactions older
/// than a count-, edge-, or age-based horizon are evicted from the
/// in-memory window (with stats reporting what was dropped), at the
/// documented cost of completeness — anomalies whose witnesses span beyond
/// the window are no longer detectable, and reads observing evicted writes
/// are counted rather than reported as thin-air. Streams that carry
/// timestamps (advanceTime()) can additionally evict by wall-clock age and
/// force-abort long-open transactions that would otherwise pin the
/// evictable prefix behind a hung session.
///
//===----------------------------------------------------------------------===//

#ifndef AWDIT_CHECKER_MONITOR_H
#define AWDIT_CHECKER_MONITOR_H

#include "checker/checker.h"
#include "checker/saturation_state.h"
#include "checker/violation_sink.h"
#include "history/history.h"
#include "history/wr_resolver.h"
#include "obs/histogram.h"

#include <map>
#include <set>
#include <string>
#include <string_view>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace awdit {

class ByteWriter;
class ByteReader;
class ThreadPool;
struct ChunkMark;
struct StateCoords;

/// Options of one monitoring session.
struct MonitorOptions {
  /// The isolation level to monitor.
  IsolationLevel Level = IsolationLevel::CausalConsistency;
  /// Options of the underlying checking algorithms (witness budget, CC
  /// variant and thread count of the canonical finalize pass, ...).
  CheckOptions Check;
  /// Run an incremental checking pass every this many commits. 0 checks
  /// only on explicit check() calls and at finalize() — the configuration
  /// the one-shot checkIsolation() wrapper uses.
  size_t CheckIntervalTxns = 0;
  /// Windowed mode: evict the oldest transactions once more than this many
  /// are live (0 = keep everything; exact checking). Only a prefix of
  /// closed, fully processed transactions can leave: a transaction that is
  /// left open indefinitely pins everything after it in memory — see
  /// ForceAbortOpenTicks for the escape hatch when streams carry
  /// timestamps.
  size_t WindowTxns = 0;
  /// Windowed mode, edge-based horizon: evict the oldest quarter of the
  /// window whenever the commit graph of the window exceeds this many
  /// edges (0 = no edge horizon).
  size_t WindowEdges = 0;
  /// Windowed mode, age-based horizon: when the stream carries timestamps
  /// (advanceTime()), evict closed transactions whose close timestamp is
  /// older than the latest timestamp minus this many ticks (0 = no age
  /// horizon). Ticks are whatever unit the stream reports.
  uint64_t WindowAgeTicks = 0;
  /// Force-abort an open transaction once it has been open for more than
  /// this many ticks of stream time (0 = never). A hung session otherwise
  /// pins the evictable prefix: nothing behind its open transaction can
  /// leave the window. Forced aborts are reported in
  /// MonitorStats::ForcedAborts; reads that observed the aborted writes
  /// are reported as aborted reads, exactly as a real abort would be. If
  /// the hung session later resumes using the handle, its operations and
  /// its eventual commit/abort are dropped quietly.
  uint64_t ForceAbortOpenTicks = 0;
};

/// Statistics of a monitoring session. Counters are cumulative over the
/// whole stream unless stated otherwise.
struct MonitorStats {
  uint64_t IngestedTxns = 0;
  uint64_t IngestedOps = 0;
  uint64_t CommittedTxns = 0;
  /// Transactions currently held in the window.
  uint64_t LiveTxns = 0;
  /// Incremental checking passes run so far.
  uint64_t Flushes = 0;
  /// Distinct inferred co' edges currently live in the window.
  uint64_t InferredEdges = 0;
  /// Edges of the window's commit graph at the last checking pass.
  uint64_t GraphEdges = 0;
  /// Violations delivered to the sink so far.
  uint64_t ReportedViolations = 0;
  /// Reads whose (key, value) has no live write yet (thin-air candidates).
  uint64_t UnresolvedReads = 0;
  // --- Windowed mode only. ---
  uint64_t EvictedTxns = 0;
  uint64_t Compactions = 0;
  /// Unresolved reads dropped because their reader was evicted.
  uint64_t EvictedUnresolvedReads = 0;
  /// Live reads whose writer was evicted (excluded from checking).
  uint64_t EvictedWriterReads = 0;
  /// Transactions evicted because they aged past WindowAgeTicks.
  uint64_t AgeEvictedTxns = 0;
  /// Open transactions force-aborted after ForceAbortOpenTicks.
  uint64_t ForcedAborts = 0;
  /// Cumulative wall-clock time spent inside checking passes, in
  /// microseconds. Host-local timing, not part of the monitor's logical
  /// state: it is excluded from checkpoints (saveState stays canonical for
  /// a given state) and from the end-of-run summary (which must be
  /// byte-identical across resumed runs). Consumed by the periodic stats
  /// line (`awdit monitor --stats-interval`) and the server's /metrics.
  uint64_t FlushMicros = 0;
};

/// A streaming online-checking session. Not thread-safe: one monitor per
/// ingestion thread (shard streams across monitors for parallelism).
///
/// Typical usage:
/// \code
///   JsonLinesSink Sink(std::cout);
///   MonitorOptions Options;
///   Options.Level = IsolationLevel::CausalConsistency;
///   Options.CheckIntervalTxns = 256;
///   Monitor M(Options, &Sink);
///   SessionId S = M.addSession();
///   TxnId T = M.beginTxn(S);
///   M.write(T, /*K=*/1, /*V=*/10);
///   M.commit(T);                // violations stream to Sink as detected
///   CheckReport Report = M.finalize();
/// \endcode
///
/// Transaction ids handed out by beginTxn() are *monitor ids*: assigned
/// monotonically over the stream and stable in all reported violations,
/// even after windowed eviction has renumbered the in-memory window.
///
/// Session order (so) is the order of commit() calls within a session.
/// When transactions of one session are fed strictly sequentially — the
/// case for every database session log, and for replay() — this coincides
/// with HistoryBuilder's begin-order semantics.
class Monitor {
public:
  explicit Monitor(const MonitorOptions &Options = {},
                   ViolationSink *Sink = nullptr);

  // --- Ingestion (mirrors HistoryBuilder). ---

  /// Adds a new, empty session and returns its id.
  SessionId addSession();

  /// Opens a new transaction in session \p S; returns its monitor id.
  TxnId beginTxn(SessionId S);

  /// Appends a read of (\p K, \p V) to the open transaction \p T.
  void read(TxnId T, Key K, Value V);

  /// Appends a write of (\p K, \p V) to the open transaction \p T.
  /// Returns false (and records errorText()) if (key, value) was already
  /// written — the unique-value model invariant; the first write wins.
  bool write(TxnId T, Key K, Value V);

  /// Appends an arbitrary operation; returns false as write() does.
  bool append(TxnId T, Operation Op);

  /// Commits the open transaction \p T. Triggers an incremental checking
  /// pass when CheckIntervalTxns commits have accumulated.
  void commit(TxnId T);

  /// Aborts the open transaction \p T.
  void abortTxn(TxnId T);

  /// Advances the stream clock to \p Now (monotonic; stale values are
  /// ignored). Ticks are whatever unit the stream reports — seconds,
  /// milliseconds, a logical epoch. Enables the WindowAgeTicks and
  /// ForceAbortOpenTicks policies.
  void advanceTime(uint64_t Now);

  /// Feeds a complete history through the ingestion API in transaction-id
  /// order. A fresh monitor assigns the same ids the history uses.
  void replay(const History &H);

  /// Bulk-adopts a finalized history as the monitor's initial state:
  /// the already-resolved transactions are taken over wholesale instead
  /// of being re-resolved operation by operation. Requires a pristine
  /// monitor. This is the fast path the one-shot checkIsolation() wrapper
  /// uses (adopt, then finalize); semantically it matches replay() with
  /// two caveats: adopted thin-air reads are final (later streamed writes
  /// do not retroactively resolve them), and adopted transactions are
  /// checked at the first flush after adoption (a check() call, the
  /// checking cadence, or finalize()) rather than one by one.
  void adopt(const History &H);

  /// Moves the fully derived ingested history out of the monitor without
  /// running any check, ending the session. Every transaction must be
  /// closed and nothing may have been evicted. This makes the monitor
  /// double as an incremental HistoryBuilder: parseTextHistory() is a
  /// feed-then-take wrapper over the streaming parser, so the native
  /// grammar exists in exactly one place.
  History takeHistory();

  // --- Checking. ---

  /// Runs an incremental checking pass now (also triggered automatically
  /// every CheckIntervalTxns commits). Returns true iff no violation has
  /// been detected so far in the stream.
  bool check();

  /// Completes the session: still-open transactions are treated as
  /// aborted, the final checking pass runs, and every not-yet-reported
  /// violation is delivered to the sink. When nothing was evicted the
  /// returned report is the canonical one-shot result over the whole
  /// ingested history — bit-identical to the historical checkIsolation()
  /// (enforced by tests/test_monitor.cpp). In windowed mode (after
  /// evictions) the report instead aggregates the violations streamed
  /// over the whole run, capped at MaxWindowedReportViolations entries
  /// (the sink saw every one as it happened; ReportedViolations has the
  /// true count). May be called once.
  CheckReport finalize();

  // --- Introspection. ---

  /// Current statistics (LiveTxns/InferredEdges/UnresolvedReads refreshed
  /// on access).
  const MonitorStats &stats();

  /// True once any violation has been reported.
  bool hadViolation() const { return AnyViolation; }

  /// Checking passes run so far (cheap; the sharded ingest pipeline polls
  /// this after every applied event to detect flush boundaries).
  uint64_t flushCount() const { return Stats.Flushes; }

  /// Routes flush-time CC saturation speculation to \p Pool (non-owning;
  /// nullptr disables). The sharded ingest pipeline installs its worker
  /// pool here so the checking half of each flush runs speculatively in
  /// parallel; verdicts, violation streams, and summaries stay
  /// bit-identical to the sequential path (the merge adopts a speculative
  /// delta only when its inputs provably did not change). The pool must
  /// outlive the monitor or be detached with nullptr first.
  void setSpeculation(ThreadPool *Pool, size_t MinBatch = 16) {
    Saturation.setSpeculation(Pool, MinBatch);
  }

  /// Speculation telemetry (host-local: varies with thread count, so it is
  /// excluded from checkpoints and summaries — those must stay
  /// byte-identical across `--threads`).
  uint64_t speculationAdoptedRows() const {
    return Saturation.specAdoptedRows();
  }
  uint64_t speculationRecomputedRows() const {
    return Saturation.specRecomputedRows();
  }

  /// Host-local flush latency telemetry (obs/histogram.h). Like
  /// FlushMicros it is wall-clock state: excluded from checkpoints and
  /// summaries, consumed by `STATS deep`, the periodic stats line's
  /// p50/p99, and the server's per-stream /metrics breakdown. The
  /// histogram carries one sample per checking pass.
  const obs::LatencyHistogram &flushLatency() const { return FlushHist; }
  /// Cumulative micros per flush phase, indexed by obs::FlushPhase.
  const uint64_t *flushPhaseMicros() const { return PhaseMicros; }

  /// Set when an ingestion-level error occurred (duplicate write).
  const std::string &errorText() const { return ErrText; }

  /// Number of sessions added so far.
  size_t numSessions() const { return SessionSoBase.size(); }

  /// A short label for a monitor transaction id, e.g. "t12(s3#4)" or
  /// "t12(evicted)".
  std::string txnLabel(TxnId MonitorId) const;

  /// Renders a violation (in monitor ids) as a one-line description.
  std::string describe(const Violation &V) const;

  // --- Persistent checkpoints (checker/checkpoint.h). ---

  /// Serializes the complete monitoring state — live window, wr
  /// resolution, saturation engine, exactly-once delivery state, stats —
  /// so a restored monitor continues the stream emitting exactly the
  /// violations a never-stopped monitor would have emitted from this
  /// point on. Unordered containers are written in sorted order, so the
  /// bytes are canonical for a given state. Must not be finalized.
  void saveState(ByteWriter &W) const;

  /// Restores saveState() bytes into a freshly constructed monitor (same
  /// MonitorOptions, in particular the same Level). Returns false with a
  /// message in \p Err on corrupted or incompatible input; the monitor is
  /// unusable afterwards.
  bool loadState(ByteReader &R, std::string *Err);

  /// Chunked serialization for store-backed (format-v2) checkpoints: the
  /// same logical state as saveState, but transaction ids and so-indices
  /// are written in *global* coordinates — rebase-invariant under windowed
  /// eviction — and \p Marks receives the chunk boundaries (strictly
  /// increasing ids; see support/serialize.h). \p IdBase and \p SoBase
  /// receive the coordinate bases the bytes were written under; a restore
  /// needs them back to invert the transform, so the store keeps them in
  /// the root's meta blob. Unchanged state re-serializes into
  /// byte-identical chunks, which is what makes a store commit O(delta).
  void saveStateChunked(std::string &Bytes, std::vector<ChunkMark> &Marks,
                        uint32_t &IdBase,
                        std::vector<uint64_t> &SoBase) const;

  /// Restores reassembled saveStateChunked() bytes (chunks concatenated in
  /// ascending id order) written under \p IdBase / \p SoBase.
  bool loadStateChunked(std::string_view Bytes, uint32_t IdBase,
                        const std::vector<uint64_t> &SoBase,
                        std::string *Err);

private:
  /// Shared serialization body of the v1 and chunked paths: a null \p C
  /// writes/reads raw local coordinates (the historical v1 bytes), a
  /// non-null one applies the local↔global transform and emits marks.
  void saveStateImpl(ByteWriter &W, const StateCoords *C) const;
  bool loadStateImpl(ByteReader &R, std::string *Err, const StateCoords *C);

  struct TxnMeta {
    bool Open = true;
    /// True while some read of this (closed) transaction resolves to a
    /// still-open writer; checking is deferred until all writers close.
    bool Deferred = false;
    /// Stream time of the last lifecycle event: begin while open, close
    /// once closed. Drives the age horizon and the force-abort policy.
    uint64_t Ts = 0;
  };

  TxnId toLocal(TxnId MonitorId) const;
  TxnId toMonitorId(TxnId Local) const { return Base + Local; }

  /// Closes \p Local (commit or abort), resolves its reads, wakes waiting
  /// readers, and schedules checking.
  void closeTxn(TxnId Local, bool Committed);

  /// Recomputes \p Local's resolved reads and derived indices from its
  /// ops against the current write index. Returns false when some read
  /// resolves to a still-open writer (checking must wait).
  bool deriveTxn(TxnId Local);

  /// Materializes the deferred write index of an adopted history before
  /// any new ingestion resolves against it, and queues the adopted
  /// transactions as the engine's first delta.
  void ensureAdoptedIndex();

  /// Rebuilds \p Local's ExtReads/ReadFroms from its (resolved) Reads:
  /// the external reads are exactly those from a distinct, closed,
  /// committed writer. Shared by deriveTxn and compact.
  void classifyExternalReads(TxnId Local);

  /// One incremental checking pass: force-abort hung transactions, derive
  /// dirty transactions, run the read-level checks over the delta, hand
  /// the delta to the saturation engine (which propagates affected facts
  /// and cycle-checks on edge insertion), report new violations, and
  /// evict if a window horizon is exceeded.
  void flush(bool Final);

  /// Applies the ForceAbortOpenTicks policy: aborts open transactions
  /// whose age in stream ticks exceeds the limit.
  void forceAbortHung();

  /// Translates local ids in \p V to monitor ids in place.
  void translateToMonitorIds(Violation &V) const;

  /// Delivers \p V (already in monitor ids) if not yet reported. Returns
  /// true when it was delivered.
  bool emitViolation(Violation V);

  /// Fingerprint for exactly-once delivery.
  static std::string fingerprint(const Violation &V);

  /// Evicts the oldest \p Count transactions (a prefix of local ids) from
  /// every structure and rebases the remainder.
  void compact(size_t Count);

  /// Applies the window horizons; called at the end of a flush.
  void maybeEvict();

  MonitorOptions Opts;
  ViolationSink *Sink;

  /// The live window, maintained directly as a History so the checkers and
  /// kernels run on it unchanged. Local ids index this; monitor id =
  /// Base + local id.
  History Live;
  TxnId Base = 0;
  std::vector<TxnMeta> Meta;
  /// Distinct keys seen in the window's operations (History::KeyCount).
  std::unordered_set<Key> Keys;

  /// The incremental saturation engine: persisted happens-before facts,
  /// per-key write index, refcounted source-tagged edges, dynamic
  /// topological order.
  SaturationState Saturation;
  /// Adopted transactions pending their first hand-off to the engine.
  std::vector<TxnId> AdoptedReady;

  /// Incremental wr resolution (local ids).
  WriteSiteIndex Writes;
  /// Reads of closed transactions with no write site yet: (key, value) ->
  /// readers. Retroactively resolved when the write arrives.
  std::unordered_map<KeyValue, std::vector<std::pair<TxnId, uint32_t>>,
                     KeyValueHash>
      PendingReads;
  /// Readers to re-derive when an open writer closes (local ids).
  std::unordered_map<TxnId, std::vector<TxnId>> WaitersOnClose;
  /// Reads whose writer was evicted, keyed by (monitor id << 32 | op):
  /// excluded from checking and never reported as thin-air. The value
  /// remembers the original (global writer id << 32 | writer op) so the
  /// chunked checkpoint can serialize the read exactly as it looked
  /// before the eviction — keeping old transaction chunks byte-stable
  /// across window slides. Entries restored from a v1 checkpoint carry
  /// UnknownMaskedWriter (v1 bytes never held the original).
  std::unordered_map<uint64_t, uint64_t> EvictedWriterMask;
  static constexpr uint64_t UnknownMaskedWriter =
      (static_cast<uint64_t>(NoTxn) << 32) | NoOp;

  /// Closed transactions whose checking state is stale (newly closed or
  /// retroactively re-resolved). Ordered for deterministic flushes.
  std::set<TxnId> Dirty;

  /// Currently open transactions (local ids), for the force-abort scan.
  std::set<TxnId> OpenTxns;
  /// Monitor ids closed by the force-abort policy while their session
  /// still holds the handle: later operations and the eventual
  /// commit/abort on them are dropped. Never pruned (one entry per
  /// forced abort — the hung-session pathology this bounds is rare).
  std::unordered_set<TxnId> ForceAbortedIds;

  /// Monitor-id base of each session's so index, for labels after
  /// eviction, plus the session count.
  std::vector<uint64_t> SessionSoBase;

  /// Cap on the windowed finalize report (the sink remains complete).
  static constexpr size_t MaxWindowedReportViolations = 65536;

  /// Exactly-once delivery state (monitor ids; stable across eviction).
  /// Fingerprints accumulate one small string per reported violation for
  /// the lifetime of the session; cycle-txn ids are pruned at compaction.
  std::unordered_set<std::string> ReportedFp;
  std::unordered_set<TxnId> ReportedCycleTxns;
  /// Delivered violations in monitor ids (the windowed finalize report),
  /// capped at MaxWindowedReportViolations.
  std::vector<Violation> StreamReported;

  MonitorStats Stats;
  /// Host-local flush telemetry (see flushLatency()); never serialized.
  obs::LatencyHistogram FlushHist;
  uint64_t PhaseMicros[obs::NumFlushPhases] = {};
  size_t CommitsSinceFlush = 0;
  /// Latest stream timestamp seen by advanceTime().
  uint64_t CurrentTime = 0;
  bool HasTime = false;
  bool AnyViolation = false;
  bool Finalized = false;
  /// Set by adopt(): the write index / key universe of the adopted prefix
  /// is materialized lazily, only if streaming or checking continues
  /// afterwards.
  bool AdoptedIndexPending = false;
  std::string ErrText;
};

} // namespace awdit

#endif // AWDIT_CHECKER_MONITOR_H
