//===- checker/check_ra_single_session.cpp - Linear RA, k=1 ----------------===//

#include "checker/check_ra_single_session.h"

#include "checker/read_consistency.h"
#include "support/assert.h"

#include <unordered_map>

using namespace awdit;

bool awdit::isSingleSession(const History &H) {
  size_t NonEmpty = 0;
  for (SessionId S = 0; S < H.numSessions(); ++S)
    if (!H.sessionTxns(S).empty())
      ++NonEmpty;
  return NonEmpty <= 1;
}

bool awdit::checkRaSingleSession(const History &H,
                                 std::vector<Violation> &Out) {
  AWDIT_ASSERT(isSingleSession(H), "fast path requires a single session");
  size_t Before = Out.size();
  if (!checkReadConsistency(H, Out))
    return false;

  const std::vector<TxnId> *Session = nullptr;
  for (SessionId S = 0; S < H.numSessions(); ++S)
    if (!H.sessionTxns(S).empty())
      Session = &H.sessionTxns(S);
  if (!Session)
    return true; // No committed transactions at all.

  // co must equal so. Scan in so order, keeping the latest writer per key;
  // every external read must observe exactly that writer (Theorem 1.6).
  std::unordered_map<Key, TxnId> LatestWriter;
  for (TxnId T3 : *Session) {
    const Transaction &T = H.txn(T3);
    for (uint32_t ReadIdx : T.ExtReads) {
      const ReadInfo &RI = T.Reads[ReadIdx];
      auto It = LatestWriter.find(RI.K);
      // Reading a transaction that is not so-before t3 at all (or reading
      // "ahead" of the session) shows up as a missing/mismatched entry.
      if (It == LatestWriter.end() || It->second != RI.Writer) {
        Violation V;
        V.Kind = ViolationKind::CommitOrderCycle;
        V.T = T3;
        V.OpIndex = RI.OpIndex;
        V.Other = RI.Writer;
        if (It != LatestWriter.end()) {
          // Witness: t2 co'-> t1 is forced, but t1 so-> t2.
          V.Cycle.push_back({It->second, RI.Writer, EdgeKind::Inferred});
          V.Cycle.push_back({RI.Writer, It->second, EdgeKind::So});
        }
        Out.push_back(std::move(V));
      }
    }
    for (Key X : T.WriteKeys)
      LatestWriter[X] = T3;
  }
  return Out.size() == Before;
}
