//===- checker/session_guarantees.cpp - Session guarantees -------------------===//

#include "checker/session_guarantees.h"

#include "checker/commit_graph.h"
#include "checker/read_consistency.h"
#include "support/assert.h"

#include <algorithm>
#include <string>
#include <unordered_map>
#include <unordered_set>

using namespace awdit;

const char *awdit::sessionGuaranteeName(SessionGuarantee G) {
  switch (G) {
  case SessionGuarantee::ReadYourWrites:
    return "Read-Your-Writes";
  case SessionGuarantee::MonotonicReads:
    return "Monotonic-Reads";
  }
  awditUnreachable("unknown session guarantee");
}

std::optional<SessionGuarantee>
awdit::parseSessionGuarantee(std::string_view Text) {
  std::string Lower(Text);
  std::transform(Lower.begin(), Lower.end(), Lower.begin(),
                 [](unsigned char C) { return std::tolower(C); });
  if (Lower == "ryw" || Lower == "read-your-writes")
    return SessionGuarantee::ReadYourWrites;
  if (Lower == "mr" || Lower == "monotonic-reads")
    return SessionGuarantee::MonotonicReads;
  return std::nullopt;
}

namespace {

/// RYW saturation: the so case of Algorithm 2, standalone.
void saturateReadYourWrites(const History &H, CommitGraph &Co) {
  std::unordered_map<Key, TxnId> LastOwnWrite;
  for (SessionId S = 0; S < H.numSessions(); ++S) {
    LastOwnWrite.clear();
    for (TxnId T3 : H.sessionTxns(S)) {
      const Transaction &T = H.txn(T3);
      for (uint32_t ReadIdx : T.ExtReads) {
        const ReadInfo &RI = T.Reads[ReadIdx];
        auto It = LastOwnWrite.find(RI.K);
        if (It != LastOwnWrite.end() && It->second != RI.Writer)
          Co.inferEdge(It->second, RI.Writer);
      }
      for (Key X : T.WriteKeys)
        LastOwnWrite[X] = T3;
    }
  }
}

/// MR saturation. Per session, per key: the x-writers observed (read
/// from) by so-earlier transactions whose ordering against future reads
/// of x is not yet implied transitively. Once a transaction reads x, its
/// distinct x-read-writers replace the pending set — the flushed writers
/// have direct edges to each of them, so later reads are covered through
/// the chain. Each observed transaction enters the pending sets once per
/// written key (global dedup), keeping the pass near-linear.
void saturateMonotonicReads(const History &H, CommitGraph &Co) {
  std::unordered_map<Key, std::vector<TxnId>> Pending;
  std::unordered_set<TxnId> Observed;
  // Distinct (key, writer) pairs read by the current transaction.
  std::unordered_map<Key, std::vector<TxnId>> TxnRead;

  for (SessionId S = 0; S < H.numSessions(); ++S) {
    Pending.clear();
    Observed.clear();
    for (TxnId T3 : H.sessionTxns(S)) {
      const Transaction &T = H.txn(T3);
      // Every read is checked against observations from strictly
      // so-earlier transactions (intra-transaction monotonicity is RC's
      // concern, Fig. 3a).
      TxnRead.clear();
      for (uint32_t ReadIdx : T.ExtReads) {
        const ReadInfo &RI = T.Reads[ReadIdx];
        TxnId T1 = RI.Writer;
        if (auto It = Pending.find(RI.K); It != Pending.end()) {
          for (TxnId T2 : It->second)
            if (T2 != T1)
              Co.inferEdge(T2, T1);
        }
        std::vector<TxnId> &Seen = TxnRead[RI.K];
        if (std::find(Seen.begin(), Seen.end(), T1) == Seen.end())
          Seen.push_back(T1);
      }
      // Keys read in this transaction: the read writers become the new
      // pending frontier (older pending entries are ordered before them).
      for (auto &[X, Writers] : TxnRead)
        Pending[X] = std::move(Writers);
      // Fresh observations extend the pending sets of their written keys.
      for (TxnId T2 : T.ReadFroms) {
        if (!Observed.insert(T2).second)
          continue;
        for (Key X : H.txn(T2).WriteKeys) {
          std::vector<TxnId> &P = Pending[X];
          if (std::find(P.begin(), P.end(), T2) == P.end())
            P.push_back(T2);
        }
      }
    }
  }
}

} // namespace

bool awdit::checkSessionGuarantee(const History &H, SessionGuarantee G,
                                  std::vector<Violation> &Out,
                                  size_t MaxWitnesses,
                                  SaturationStats *Stats) {
  if (!checkReadConsistency(H, Out))
    return false;

  CommitGraph Co(H);
  switch (G) {
  case SessionGuarantee::ReadYourWrites:
    saturateReadYourWrites(H, Co);
    break;
  case SessionGuarantee::MonotonicReads:
    saturateMonotonicReads(H, Co);
    break;
  }

  if (Stats) {
    Stats->InferredEdges = Co.numInferredEdges();
    Stats->GraphEdges = Co.numEdges();
  }
  return Co.checkAcyclic(Out, MaxWitnesses);
}
