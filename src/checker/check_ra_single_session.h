//===- checker/check_ra_single_session.h - Linear RA, k=1 --------*- C++ -*-===//
//
// Part of the AWDIT reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The linear-time Read Atomic checker for single-session histories
/// (paper Theorem 1.6). With k = 1, the commit order is forced to equal so,
/// so the RA axiom reduces to a single forward scan that tracks the latest
/// writer of each key.
///
//===----------------------------------------------------------------------===//

#ifndef AWDIT_CHECKER_CHECK_RA_SINGLE_SESSION_H
#define AWDIT_CHECKER_CHECK_RA_SINGLE_SESSION_H

#include "checker/violation.h"
#include "history/history.h"

#include <vector>

namespace awdit {

/// Checks RA for a history whose committed transactions all live in one
/// session, in O(n) time. The caller must ensure the precondition (see
/// History::numSessions(); sessions may exist but at most one may be
/// non-empty). Returns true iff consistent; violations are appended to
/// \p Out.
bool checkRaSingleSession(const History &H, std::vector<Violation> &Out);

/// Returns true if \p H has at most one non-empty session, i.e. the fast
/// path applies.
bool isSingleSession(const History &H);

} // namespace awdit

#endif // AWDIT_CHECKER_CHECK_RA_SINGLE_SESSION_H
