//===- checker/saturation_state.cpp - Incremental saturation engine --------===//

#include "checker/saturation_state.h"

#include "checker/check_cc.h"
#include "checker/checkpoint_chunks.h"
#include "checker/commit_graph.h"
#include "graph/scc.h"
#include "graph/topo_sort.h"
#include "obs/trace.h"
#include "support/assert.h"
#include "support/serialize.h"
#include "support/thread_pool.h"

#include <algorithm>
#include <optional>
#include <set>

using namespace awdit;

namespace {

uint32_t edgeFrom(uint64_t Packed) {
  return static_cast<uint32_t>(Packed >> 32);
}
uint32_t edgeTo(uint64_t Packed) { return static_cast<uint32_t>(Packed); }

uint64_t pack(TxnId From, TxnId To) {
  return CommitGraph::packEdge(From, To);
}

/// Base sources (wr, so) are structural so ∪ wr edges; the rest are
/// saturation-inferred.
bool isBaseSource(uint64_t Source) { return (Source >> 32) >= 3; }

/// Quarantine-retry region bound: above this many order positions the
/// local SCC pass falls back to the greedy one-edge-at-a-time retry.
constexpr size_t SccRetryRegionCap = 4096;

} // namespace

//===----------------------------------------------------------------------===//
// Structure growth.
//===----------------------------------------------------------------------===//

void SaturationState::ensureSizes(const History &H) {
  size_t N = H.numTxns();
  if (Processed.size() < N) {
    if (EngineMode == Mode::Streaming)
      Order.addNodes(N - Processed.size());
    Processed.resize(N, 0);
    ReadersOf.resize(N);
  }
  if (NumSessions < H.numSessions())
    NumSessions = H.numSessions();
  if (Level != IsolationLevel::CausalConsistency ||
      EngineMode != Mode::Streaming)
    return;
  if (NumSessions > HbStride) {
    size_t NewStride = 4;
    while (NewStride < NumSessions)
      NewStride *= 2;
    size_t Rows = HbStride ? HbRows.size() / HbStride : 0;
    std::vector<uint32_t> NewRows(Rows * NewStride, 0);
    for (size_t R = 0; R < Rows; ++R)
      std::copy(HbRows.begin() + R * HbStride,
                HbRows.begin() + (R + 1) * HbStride,
                NewRows.begin() + R * NewStride);
    HbRows = std::move(NewRows);
    HbStride = NewStride;
  }
  HbRows.resize(N * HbStride, 0);
}

//===----------------------------------------------------------------------===//
// Edge bookkeeping: refcounted, source-tagged, dynamically ordered.
//===----------------------------------------------------------------------===//

EdgeKind SaturationState::classifyEdge(const History &H, TxnId From,
                                       TxnId To) const {
  if (H.txn(From).Committed && H.soSuccessor(From) == To)
    return EdgeKind::So;
  for (TxnId Writer : H.txn(To).ReadFroms)
    if (Writer == From)
      return EdgeKind::Wr;
  return EdgeKind::Inferred;
}

Violation SaturationState::makeCycleViolation(
    const History &H, TxnId From, TxnId To,
    const std::vector<uint32_t> &Path) const {
  Violation V;
  V.Kind = ViolationKind::CausalityCycle;
  auto Add = [&](TxnId A, TxnId B) {
    EdgeKind Kind = classifyEdge(H, A, B);
    if (Kind == EdgeKind::Inferred)
      V.Kind = ViolationKind::CommitOrderCycle;
    V.Cycle.push_back({A, B, Kind});
  };
  Add(From, To);
  for (size_t I = 0; I + 1 < Path.size(); ++I)
    Add(Path[I], Path[I + 1]);
  return V;
}

bool SaturationState::baseReaches(uint32_t SrcNode, uint32_t DstNode) const {
  std::vector<uint32_t> Stack{SrcNode};
  std::unordered_set<uint32_t> Seen{SrcNode};
  while (!Stack.empty()) {
    uint32_t U = Stack.back();
    Stack.pop_back();
    for (uint32_t W : Order.succs(U)) {
      const EdgeRefs *Refs = Edges.find(pack(U, W));
      if (!Refs || Refs->Base == 0)
        continue;
      if (W == DstNode)
        return true;
      if (Seen.insert(W).second)
        Stack.push_back(W);
    }
  }
  return false;
}

void SaturationState::insertLive(const History &H, uint64_t Packed,
                                 bool IsBase, std::vector<Violation> *Out) {
  EdgeRefs &Refs = Edges[Packed];
  bool WasLive = Refs.Base + Refs.Inferred > 0;
  if (IsBase) {
    ++Refs.Base;
  } else {
    if (Refs.Inferred == 0)
      ++InferredDistinct;
    ++Refs.Inferred;
  }
  if (WasLive || EngineMode == Mode::Batch)
    return;

  uint32_t From = edgeFrom(Packed), To = edgeTo(Packed);
  std::vector<uint32_t> Path;
  while (!Order.addEdge(From, To, &Path)) {
    // The insertion would close a cycle: report it with the extracted
    // path, then keep the order valid by quarantining an edge.
    if (Out)
      Out->push_back(makeCycleViolation(H, From, To, Path));
    if (!IsBase) {
      Quarantined.insert(Packed);
      return;
    }
    // A base (so/wr) edge. If the cycle exists in so ∪ wr alone this is a
    // causality cycle and happens-before is undefined from here on —
    // exactly the condition under which the batch CC checker stops
    // saturating. Otherwise evict an inferred edge of the path instead so
    // the structural relation stays ordered (it drives HB propagation).
    if (baseReaches(To, From)) {
      BaseCyclic = true;
      Quarantined.insert(Packed);
      return;
    }
    bool Evicted = false;
    for (size_t I = 0; I + 1 < Path.size() && !Evicted; ++I) {
      uint64_t OnPath = pack(Path[I], Path[I + 1]);
      const EdgeRefs *OnPathRefs = Edges.find(OnPath);
      if (OnPathRefs && OnPathRefs->Base == 0) {
        Order.removeEdge(Path[I], Path[I + 1]);
        Quarantined.insert(OnPath);
        Evicted = true;
      }
    }
    if (!Evicted) {
      // Unreachable in theory (a non-base cycle has an inferred edge),
      // but never loop forever on a logic error.
      BaseCyclic = true;
      Quarantined.insert(Packed);
      return;
    }
  }
}

void SaturationState::removeLive(uint64_t Packed, bool IsBase) {
  EdgeRefs *Refs = Edges.find(Packed);
  AWDIT_ASSERT(Refs != nullptr, "removeLive: unknown edge");
  if (IsBase) {
    --Refs->Base;
  } else {
    if (--Refs->Inferred == 0)
      --InferredDistinct;
  }
  if (Refs->Base + Refs->Inferred > 0)
    return;
  Edges.erase(Packed);
  if (Quarantined.erase(Packed))
    return;
  if (EngineMode == Mode::Streaming)
    Order.removeEdge(edgeFrom(Packed), edgeTo(Packed));
}

void SaturationState::addSourceEdges(const History &H, uint64_t Source,
                                     bool IsBase,
                                     const std::vector<uint64_t> &NewEdges,
                                     std::vector<Violation> *Out) {
  if (NewEdges.empty())
    return;
  // Edge insertion is where the Pearce–Kelly order maintenance (and its
  // cycle extraction) runs; metered per source call, not per edge, so the
  // clock reads stay off the per-edge path.
  uint64_t T0 = EngineMode == Mode::Streaming ? obs::traceNowNanos() : 0;
  std::vector<uint64_t> &List = BySource[globalizeSource(Source)];
  for (uint64_t Packed : NewEdges) {
    List.push_back(globalizePacked(Packed));
    insertLive(H, Packed, IsBase, Out);
  }
  if (EngineMode == Mode::Streaming)
    PhaseNs.Pk += obs::traceNowNanos() - T0;
}

void SaturationState::clearSource(uint64_t Source, bool IsBase) {
  auto It = BySource.find(globalizeSource(Source));
  if (It == BySource.end())
    return;
  for (uint64_t GPacked : It->second)
    if (!deadPacked(GPacked))
      removeLive(localizePacked(GPacked), IsBase);
  BySource.erase(It);
}

void SaturationState::retryQuarantined(const History &H) {
  (void)H;
  if (Quarantined.empty())
    return;
  // A source re-run or an eviction may have broken the cycle that forced
  // an edge out of the order; re-verify the quarantined region and bring
  // every edge that is no longer on a cycle back in (quietly — the region
  // was reported when first quarantined).
  std::vector<uint64_t> Snapshot(Quarantined.begin(), Quarantined.end());
  std::sort(Snapshot.begin(), Snapshot.end());

  // Position hull of the quarantined endpoints. Live edges strictly
  // increase order position, so a live path between two hull nodes never
  // leaves the hull — every cycle a quarantined edge could close lies
  // entirely inside this region, and the local subgraph decides
  // re-admission exactly.
  uint32_t Lo = UINT32_MAX, Hi = 0;
  for (uint64_t Packed : Snapshot) {
    for (uint32_t Node : {edgeFrom(Packed), edgeTo(Packed)}) {
      uint32_t P = Order.position(Node);
      Lo = std::min(Lo, P);
      Hi = std::max(Hi, P);
    }
  }
  size_t RegionSize = static_cast<size_t>(Hi) - Lo + 1;
  if (RegionSize > SccRetryRegionCap) {
    // Degenerate hull (quarantined endpoints span most of the window):
    // greedy one-edge-at-a-time retry. Admission order is the sorted
    // snapshot either way, so both paths are deterministic.
    for (uint64_t Packed : Snapshot)
      if (Order.addEdge(edgeFrom(Packed), edgeTo(Packed), nullptr))
        Quarantined.erase(Packed);
    maybeClearBaseCyclic();
    return;
  }

  // Dense region table (position - Lo -> node), one scan of the order.
  std::vector<uint32_t> NodeAt(RegionSize, 0);
  for (uint32_t N = 0; N < static_cast<uint32_t>(Order.numNodes()); ++N) {
    uint32_t P = Order.position(N);
    if (P >= Lo && P <= Hi)
      NodeAt[P - Lo] = N;
  }

  // Local subgraph: the live edges inside the region plus every
  // quarantined edge, condensed with one bounded Tarjan pass.
  Digraph G(RegionSize);
  for (size_t I = 0; I < RegionSize; ++I) {
    for (uint32_t W : Order.succs(NodeAt[I])) {
      uint32_t P = Order.position(W);
      if (P >= Lo && P <= Hi)
        G.addEdge(static_cast<uint32_t>(I), P - Lo);
    }
  }
  // Dense endpoints captured now: admissions below reorder positions.
  std::vector<std::pair<uint32_t, uint32_t>> Dense;
  Dense.reserve(Snapshot.size());
  for (uint64_t Packed : Snapshot) {
    Dense.emplace_back(Order.position(edgeFrom(Packed)) - Lo,
                       Order.position(edgeTo(Packed)) - Lo);
    G.addEdge(Dense.back().first, Dense.back().second);
  }
  SccResult Scc = computeScc(G);

  // Edges between distinct components are jointly cycle-free (the
  // condensation is a DAG): re-admit them all in one pass. Same-component
  // edges stay out — their region is still mutually cyclic.
  for (size_t I = 0; I < Snapshot.size(); ++I) {
    if (Scc.CompOf[Dense[I].first] == Scc.CompOf[Dense[I].second])
      continue;
    if (Order.addEdge(edgeFrom(Snapshot[I]), edgeTo(Snapshot[I]), nullptr))
      Quarantined.erase(Snapshot[I]);
  }
  maybeClearBaseCyclic();
}

void SaturationState::maybeClearBaseCyclic() {
  if (!BaseCyclic)
    return;
  for (uint64_t Packed : Quarantined) {
    const EdgeRefs *Refs = Edges.find(Packed);
    if (Refs && Refs->Base > 0)
      return; // a base edge is still out of the order: still cyclic
  }
  // The so ∪ wr cycle is gone (its edges were evicted or replaced);
  // happens-before is meaningful again, but every persisted row dates
  // from before the cycle — recompute them all once.
  BaseCyclic = false;
  NeedsFullHbRecompute = true;
}

//===----------------------------------------------------------------------===//
// CC incremental pieces: persisted writer index + happens-before rows.
//===----------------------------------------------------------------------===//

void SaturationState::appendWriterEntries(const History &H, TxnId L) {
  const Transaction &T = H.txn(L);
  for (Key X : T.WriteKeys) {
    KeyWriters &KW = Writers[X];
    size_t Slot = 0;
    for (; Slot < KW.Sessions.size(); ++Slot)
      if (KW.Sessions[Slot] == T.Session)
        break;
    if (Slot == KW.Sessions.size()) {
      KW.Sessions.push_back(T.Session);
      KW.Lists.emplace_back();
    }
    std::vector<detail::CcWriterEntry> &List = KW.Lists[Slot];
    // Commits of one session arrive in so order, so this is almost always
    // a push_back; a flush processing two commits of one session out of
    // local-id order is the rare exception.
    detail::CcWriterEntry Entry{L, T.SoIndex};
    auto It = std::lower_bound(List.begin(), List.end(), Entry,
                               [](const detail::CcWriterEntry &A,
                                  const detail::CcWriterEntry &B) {
                                 return A.SoIndex < B.SoIndex;
                               });
    List.insert(It, Entry);
  }
}

bool SaturationState::recomputeHbRow(const History &H, TxnId L) {
  const Transaction &T = H.txn(L);
  TmpRow.assign(HbStride, 0);
  if (T.SoIndex > 0) {
    TxnId Pred = H.sessionTxns(T.Session)[T.SoIndex - 1];
    const uint32_t *PredRow = &HbRows[static_cast<size_t>(Pred) * HbStride];
    std::copy(PredRow, PredRow + HbStride, TmpRow.begin());
    TmpRow[T.Session] = T.SoIndex; // = SoIndex(Pred) + 1.
  }
  for (TxnId Writer : T.ReadFroms) {
    const Transaction &W = H.txn(Writer);
    const uint32_t *WRow = &HbRows[static_cast<size_t>(Writer) * HbStride];
    for (size_t I = 0; I < HbStride; ++I)
      TmpRow[I] = std::max(TmpRow[I], WRow[I]);
    TmpRow[W.Session] = std::max(TmpRow[W.Session], W.SoIndex + 1);
  }
  uint32_t *Row = &HbRows[static_cast<size_t>(L) * HbStride];
  if (std::equal(Row, Row + HbStride, TmpRow.begin()))
    return false;
  std::copy(TmpRow.begin(), TmpRow.end(), Row);
  return true;
}

void SaturationState::speculateCc(const History &H,
                                  const std::vector<TxnId> &Ready,
                                  SpecMap &Spec) {
  // Pre-create every entry: the parallel phase below only const-finds the
  // map (no rehash under concurrent readers) and each worker writes only
  // the values of its own bucket.
  for (TxnId L : Ready)
    Spec.emplace(L, CcSpeculation{});

  // Partition by session: a session's rows chain along so, so one worker
  // owning the whole (so-sorted) chain can speculate straight through it,
  // reading sibling speculative rows instead of invalidating on them.
  std::unordered_map<SessionId, size_t> BucketOf;
  std::vector<std::vector<TxnId>> Buckets;
  for (TxnId L : Ready) {
    auto [It, IsNew] = BucketOf.emplace(H.txn(L).Session, Buckets.size());
    if (IsNew)
      Buckets.emplace_back();
    Buckets[It->second].push_back(L);
  }
  for (std::vector<TxnId> &B : Buckets)
    std::sort(B.begin(), B.end(), [&](TxnId A, TxnId C) {
      return H.txn(A).SoIndex < H.txn(C).SoIndex;
    });

  // The speculation phase proper. The engine is quiescent: HbRows, the
  // writer index, ReadersOf, and H are all read-only until the merge, so
  // workers race with nothing. Results that chained a sibling row record
  // it in BatchInputs; rows taken from the pre-merge snapshot go to
  // ExternalInputs — the merge revalidates both.
  SpecPool->parallelFor(0, Buckets.size(), 1, [&](size_t BLo, size_t BHi) {
    std::unordered_set<TxnId> Computed;
    for (size_t B = BLo; B < BHi; ++B) {
      Computed.clear();
      for (TxnId L : Buckets[B]) {
        CcSpeculation &Sp = Spec.find(L)->second;
        const Transaction &T = H.txn(L);
        Sp.Row.assign(HbStride, 0);
        auto InputRow = [&](TxnId Input) -> const uint32_t * {
          if (Computed.count(Input)) {
            Sp.BatchInputs.push_back(Input);
            return Spec.find(Input)->second.Row.data();
          }
          Sp.ExternalInputs.push_back(Input);
          return &HbRows[static_cast<size_t>(Input) * HbStride];
        };
        if (T.SoIndex > 0) {
          const uint32_t *PredRow =
              InputRow(H.sessionTxns(T.Session)[T.SoIndex - 1]);
          std::copy(PredRow, PredRow + HbStride, Sp.Row.begin());
          Sp.Row[T.Session] = T.SoIndex; // = SoIndex(Pred) + 1.
        }
        for (TxnId Writer : T.ReadFroms) {
          const Transaction &W = H.txn(Writer);
          const uint32_t *WRow = InputRow(Writer);
          for (size_t I = 0; I < HbStride; ++I)
            Sp.Row[I] = std::max(Sp.Row[I], WRow[I]);
          Sp.Row[W.Session] = std::max(Sp.Row[W.Session], W.SoIndex + 1);
        }
        if (!T.ExtReads.empty()) {
          runCcReaderRow(H, L, Sp.Row.data(), Sp.Edges);
          std::sort(Sp.Edges.begin(), Sp.Edges.end());
          Sp.Edges.erase(std::unique(Sp.Edges.begin(), Sp.Edges.end()),
                         Sp.Edges.end());
        }
        Computed.insert(L);
      }
    }
  });
}

bool SaturationState::mergeHbRow(const History &H, TxnId L, SpecMap *Spec) {
  CcSpeculation *Sp = nullptr;
  if (Spec) {
    auto It = Spec->find(L);
    if (It != Spec->end() && !It->second.Row.empty())
      Sp = &It->second;
  }
  if (Sp) {
    // Adopt only when every input the worker read provably still holds
    // its speculated value: snapshot rows unstamped this merge, sibling
    // rows merged to exactly their speculation. Then the speculative row
    // *is* what recomputeHbRow would produce — bit-identical by
    // construction, no comparison of outputs needed.
    bool Valid = true;
    for (TxnId E : Sp->ExternalInputs)
      if (RowEpochs.touchedInCurrentEpoch(E)) {
        Valid = false;
        break;
      }
    if (Valid)
      for (TxnId B : Sp->BatchInputs)
        if (!Spec->find(B)->second.Matched) {
          Valid = false;
          break;
        }
    if (Valid) {
      ++SpecAdoptedRows;
      Sp->Matched = true;
      uint32_t *Row = &HbRows[static_cast<size_t>(L) * HbStride];
      if (std::equal(Row, Row + HbStride, Sp->Row.begin()))
        return false;
      std::copy(Sp->Row.begin(), Sp->Row.end(), Row);
      RowEpochs.touch(L);
      return true;
    }
  }
  bool Changed = recomputeHbRow(H, L);
  if (Changed)
    RowEpochs.touch(L);
  if (Sp) {
    // A re-derived row that lands on the speculated value still validates
    // the chains (and the edge set) built on it.
    ++SpecRecomputedRows;
    const uint32_t *Row = &HbRows[static_cast<size_t>(L) * HbStride];
    Sp->Matched = std::equal(Row, Row + HbStride, Sp->Row.begin());
  }
  return Changed;
}

void SaturationState::propagateHappensBefore(const History &H,
                                             const std::vector<TxnId> &Ready,
                                             std::vector<TxnId> &ChangedOut,
                                             SpecMap *Spec) {
  // Worklist keyed by the maintained topological position: every
  // transaction is recomputed after all its so/wr predecessors, so one
  // pass per dirty node reaches the fixpoint. A node revisited after an
  // input changed revalidates (and usually drops) its speculation.
  std::set<std::pair<uint32_t, TxnId>> Work;
  auto Push = [&](TxnId L) {
    if (H.txn(L).Committed)
      Work.insert({Order.position(L), L});
  };
  if (NeedsFullHbRecompute) {
    NeedsFullHbRecompute = false;
    for (TxnId L = 0; L < static_cast<TxnId>(Processed.size()); ++L)
      if (Processed[L])
        Push(L);
  }
  for (TxnId L : Ready)
    Push(L);

  while (!Work.empty()) {
    TxnId L = Work.begin()->second;
    Work.erase(Work.begin());
    bool RowChanged = mergeHbRow(H, L, Spec);
    bool IsReady = std::binary_search(Ready.begin(), Ready.end(), L);
    if (RowChanged || IsReady)
      ChangedOut.push_back(L);
    if (!RowChanged)
      continue;
    TxnId Succ = H.soSuccessor(L);
    if (Succ != NoTxn && Processed[Succ])
      Push(Succ);
    for (TxnId Reader : ReadersOf[L])
      if (Processed[Reader])
        Push(Reader);
  }
  std::sort(ChangedOut.begin(), ChangedOut.end());
  ChangedOut.erase(std::unique(ChangedOut.begin(), ChangedOut.end()),
                   ChangedOut.end());
}

void SaturationState::runCcReader(const History &H, TxnId L,
                                  std::vector<uint64_t> &EdgesOut) const {
  runCcReaderRow(H, L, &HbRows[static_cast<size_t>(L) * HbStride], EdgesOut);
}

void SaturationState::runCcReaderRow(const History &H, TxnId L,
                                     const uint32_t *Row,
                                     std::vector<uint64_t> &EdgesOut) const {
  const Transaction &T = H.txn(L);
  for (uint32_t ReadIdx : T.ExtReads) {
    const ReadInfo &RI = T.Reads[ReadIdx];
    TxnId T1 = RI.Writer;
    auto WIt = Writers.find(RI.K);
    if (WIt == Writers.end())
      continue;
    const KeyWriters &KW = WIt->second;
    // Algorithm 3 lines 9-15 with the monotone pointer scan replaced by a
    // binary search (the inference is the same: the so-latest writer of
    // the key in each session under the reader's happens-before frontier).
    for (size_t Slot = 0; Slot < KW.Sessions.size(); ++Slot) {
      uint32_t Frontier = Row[KW.Sessions[Slot]];
      if (Frontier == 0)
        continue;
      TxnId T2 = detail::ccFrontierWriter(KW.Lists[Slot], Frontier);
      if (T2 == NoTxn || T2 == T1)
        continue;
      EdgesOut.push_back(pack(T2, T1));
    }
  }
}

void SaturationState::setReaderWrEdges(const History &H, TxnId L,
                                       std::vector<Violation> *Out) {
  uint64_t Source = wrSource(L);
  auto It = BySource.find(globalizeSource(Source));
  if (It != BySource.end()) {
    for (uint64_t GPacked : It->second) {
      if (deadPacked(GPacked))
        continue;
      std::vector<TxnId> &Readers =
          ReadersOf[edgeFrom(localizePacked(GPacked))];
      auto RIt = std::find(Readers.begin(), Readers.end(), L);
      if (RIt != Readers.end()) {
        *RIt = Readers.back();
        Readers.pop_back();
      }
    }
  }
  clearSource(Source, /*IsBase=*/true);
  const Transaction &T = H.txn(L);
  if (T.ReadFroms.empty())
    return;
  std::vector<uint64_t> NewEdges;
  NewEdges.reserve(T.ReadFroms.size());
  for (TxnId Writer : T.ReadFroms) {
    NewEdges.push_back(pack(Writer, L));
    ReadersOf[Writer].push_back(L);
  }
  addSourceEdges(H, Source, /*IsBase=*/true, NewEdges, Out);
}

//===----------------------------------------------------------------------===//
// The streaming delta pass.
//===----------------------------------------------------------------------===//

void SaturationState::flushDelta(const History &H,
                                 const std::vector<TxnId> &Ready,
                                 std::vector<Violation> &Out) {
  AWDIT_ASSERT(EngineMode == Mode::Streaming,
               "flushDelta: batch-mode state takes coldStart/batches");
  uint64_t DeltaT0 = obs::traceNowNanos();
  {
    AWDIT_SPAN("flush.delta");
    ensureSizes(H);
    retryQuarantined(H);

    // Base-graph delta: the so chain grows at each first-processed
    // commit; a (re-)derived reader replaces its wr contribution.
    for (TxnId L : Ready) {
      const Transaction &T = H.txn(L);
      AWDIT_ASSERT(T.Committed, "flushDelta: ready txn must be committed");
      if (!Processed[L]) {
        Processed[L] = 1;
        if (T.SoIndex > 0) {
          TxnId Pred = H.sessionTxns(T.Session)[T.SoIndex - 1];
          addSourceEdges(H, soSource(T.Session), /*IsBase=*/true,
                         {pack(Pred, L)}, &Out);
        }
        if (Level == IsolationLevel::CausalConsistency)
          appendWriterEntries(H, L);
      }
      setReaderWrEdges(H, L, &Out);
    }
  }
  uint64_t MergeT0 = obs::traceNowNanos();
  PhaseNs.DeltaBuild += MergeT0 - DeltaT0;
  uint64_t SpecBeforeNs = PhaseNs.Speculate;
  AWDIT_SPAN("flush.merge");

  switch (Level) {
  case IsolationLevel::ReadCommitted: {
    // Algorithm 1 is per-transaction: re-saturate exactly the delta.
    for (TxnId L : Ready) {
      clearSource(rcSource(L), /*IsBase=*/false);
      std::vector<uint64_t> NewEdges;
      detail::saturateRcRange(H, L, L + 1, RcScratchState,
                              [&](TxnId From, TxnId To) {
                                NewEdges.push_back(pack(From, To));
                              });
      std::sort(NewEdges.begin(), NewEdges.end());
      NewEdges.erase(std::unique(NewEdges.begin(), NewEdges.end()),
                     NewEdges.end());
      addSourceEdges(H, rcSource(L), /*IsBase=*/false, NewEdges, &Out);
    }
    break;
  }
  case IsolationLevel::ReadAtomic: {
    // Algorithm 2 is per-session with state flowing along so: extend each
    // session's saturation from its last processed position; retroactive
    // re-resolution of an already-processed transaction re-runs the
    // session from scratch.
    if (RaStates.size() < H.numSessions())
      RaStates.resize(H.numSessions());
    for (TxnId L : Ready) {
      RaSessionState &St = RaStates[H.txn(L).Session];
      if (H.txn(L).SoIndex < St.NextSo)
        St.NeedsFullRerun = true;
    }
    for (SessionId S = 0; S < H.numSessions(); ++S) {
      RaSessionState &St = RaStates[S];
      if (St.NeedsFullRerun) {
        clearSource(raSource(S), /*IsBase=*/false);
        St.Scratch.LastWrite.clear();
        St.NextSo = 0;
        St.NeedsFullRerun = false;
      }
      size_t Size = H.sessionTxns(S).size();
      if (St.NextSo >= Size)
        continue;
      std::vector<uint64_t> NewEdges;
      detail::saturateRaSessionRange(H, S, St.NextSo, Size, St.Scratch,
                                     [&](TxnId From, TxnId To) {
                                       NewEdges.push_back(pack(From, To));
                                     });
      St.NextSo = Size;
      std::sort(NewEdges.begin(), NewEdges.end());
      NewEdges.erase(std::unique(NewEdges.begin(), NewEdges.end()),
                     NewEdges.end());
      addSourceEdges(H, raSource(S), /*IsBase=*/false, NewEdges, &Out);
    }
    break;
  }
  case IsolationLevel::CausalConsistency: {
    // Algorithm 3's frontier is global, but it only moves where the delta
    // reaches: recompute the happens-before rows of the ready transactions,
    // propagate changes to their so/wr successors to fixpoint, and re-run
    // the per-key inference for exactly the transactions whose frontier
    // (or read set) changed.
    if (BaseCyclic)
      break; // so ∪ wr is cyclic; HB undefined (the batch checker stops too).

    // Speculation phase: with a pool installed and a worthwhile delta,
    // shard workers pre-compute rows and reader inferences against the
    // pre-merge snapshot. The merge below adopts a result only when its
    // inputs provably did not change, so the observable output is
    // bit-identical to the sequential path at every thread count. A
    // pending full-row recompute dirties far more than Ready — skip.
    RowEpochs.ensureSlots(Processed.size());
    RowEpochs.beginEpoch();
    SpecMap Spec;
    if (SpecPool && !NeedsFullHbRecompute && Ready.size() >= SpecMinBatch) {
      AWDIT_SPAN("flush.speculate");
      uint64_t SpecT0 = obs::traceNowNanos();
      speculateCc(H, Ready, Spec);
      PhaseNs.Speculate += obs::traceNowNanos() - SpecT0;
    }

    std::vector<TxnId> Changed;
    propagateHappensBefore(H, Ready, Changed, Spec.empty() ? nullptr : &Spec);
    for (TxnId L : Changed) {
      clearSource(ccSource(L), /*IsBase=*/false);
      if (H.txn(L).ExtReads.empty())
        continue;
      std::vector<uint64_t> NewEdges;
      CcSpeculation *Sp = nullptr;
      if (!Spec.empty()) {
        auto It = Spec.find(L);
        if (It != Spec.end() && It->second.Matched)
          Sp = &It->second;
      }
      if (Sp) {
        // The row merged to exactly its speculation, so the speculative
        // inference (already sorted and deduplicated) is the sequential
        // result.
        NewEdges = std::move(Sp->Edges);
        ++SpecAdoptedEdgeSets;
      } else {
        runCcReader(H, L, NewEdges);
        std::sort(NewEdges.begin(), NewEdges.end());
        NewEdges.erase(std::unique(NewEdges.begin(), NewEdges.end()),
                       NewEdges.end());
      }
      addSourceEdges(H, ccSource(L), /*IsBase=*/false, NewEdges, &Out);
    }
    break;
  }
  }
  // Speculation ran inside the merge window on this thread; carve it out
  // so the two phases stay disjoint in the breakdown.
  uint64_t MergeNs = obs::traceNowNanos() - MergeT0;
  uint64_t SpecNs = PhaseNs.Speculate - SpecBeforeNs;
  PhaseNs.Merge += MergeNs > SpecNs ? MergeNs - SpecNs : 0;
}

//===----------------------------------------------------------------------===//
// Batch feeds: the one-shot cold start and the parallel shard merge.
//===----------------------------------------------------------------------===//

void SaturationState::coldStart(const History &H) {
  AWDIT_ASSERT(EngineMode == Mode::Batch,
               "coldStart: streaming state takes flushDelta");
  auto Push = [this](TxnId From, TxnId To) {
    BatchEdges.push_back(pack(From, To));
  };
  switch (Level) {
  case IsolationLevel::ReadCommitted: {
    detail::RcScratch Scratch;
    detail::saturateRcRange(H, 0, static_cast<TxnId>(H.numTxns()), Scratch,
                            Push);
    break;
  }
  case IsolationLevel::ReadAtomic: {
    detail::RaScratch Scratch;
    for (SessionId S = 0; S < H.numSessions(); ++S)
      detail::saturateRaSession(H, S, Scratch, Push);
    break;
  }
  case IsolationLevel::CausalConsistency: {
    std::optional<std::vector<uint32_t>> TopoOrder = computeBaseOrder(H);
    if (!TopoOrder)
      break; // so ∪ wr cycle: fails every level, no saturation.
    HappensBefore HB;
    fillHappensBefore(H, *TopoOrder, HB);
    detail::saturateCc(H, HB, Push);
    break;
  }
  }
}

std::optional<std::vector<uint32_t>> SaturationState::computeBaseOrder(
    const History &H) {
  AWDIT_ASSERT(EngineMode == Mode::Batch,
               "computeBaseOrder: batch-mode helper");
  CachedBase.emplace(H);
  std::optional<std::vector<uint32_t>> TopoOrder =
      topologicalSort(CachedBase->graph());
  if (!TopoOrder)
    BaseCyclic = true;
  return TopoOrder;
}

void SaturationState::appendInferredBatch(const uint64_t *NewEdges,
                                          size_t Count) {
  if (Count == 0)
    return;
  size_t Idx = NextStripe.fetch_add(1, std::memory_order_relaxed);
  Stripe &S = Stripes[Idx % NumStripes];
  std::lock_guard<std::mutex> Lock(S.Mutex);
  S.Buf.insert(S.Buf.end(), NewEdges, NewEdges + Count);
}

bool SaturationState::finalizeAcyclic(const History &H,
                                      std::vector<Violation> &Out,
                                      size_t MaxWitnesses,
                                      SaturationStats *Stats) {
  // One canonical pass over the complete edge set: the commit graph
  // canonicalizes (sorts, deduplicates) the inferred edges, so the result
  // is independent of which path or interleaving collected them — and
  // bit-identical to the historical batch checkers. The CC paths already
  // built the base graph for the topological sort; reuse it.
  std::optional<CommitGraph> Local;
  CommitGraph &Co = CachedBase ? *CachedBase : Local.emplace(H);
  for (uint64_t Packed : BatchEdges)
    Co.inferEdge(edgeFrom(Packed), edgeTo(Packed));
  for (Stripe &S : Stripes) {
    std::lock_guard<std::mutex> Lock(S.Mutex);
    for (uint64_t Packed : S.Buf)
      Co.inferEdge(edgeFrom(Packed), edgeTo(Packed));
    S.Buf.clear();
  }
  Edges.forEach([&](uint64_t Packed, const EdgeRefs &Refs) {
    if (Refs.Inferred > 0)
      Co.inferEdge(edgeFrom(Packed), edgeTo(Packed));
  });
  if (Stats) {
    Stats->InferredEdges = Co.numInferredEdges();
    Stats->GraphEdges = Co.numEdges();
  }
  return Co.checkAcyclic(Out, MaxWitnesses);
}

//===----------------------------------------------------------------------===//
// Eviction-aware compaction.
//===----------------------------------------------------------------------===//

void SaturationState::compact(const History &H, TxnId Cut) {
  AWDIT_ASSERT(EngineMode == Mode::Streaming, "compact: streaming only");
  if (Cut == 0)
    return;
  ensureSizes(H);
  size_t K = H.numSessions();
  size_t OldN = Processed.size();
  size_t NewN = OldN - Cut;

  // Per-session so positions of evicted members, ascending: the shift
  // tables for every persisted so-position-valued fact (happens-before
  // frontiers, writer-list positions, the RA processed frontier).
  std::vector<std::vector<uint32_t>> RemovedPos(K);
  for (SessionId S = 0; S < K; ++S) {
    const std::vector<TxnId> &Sess = H.sessionTxns(S);
    for (size_t SoPos = 0; SoPos < Sess.size(); ++SoPos)
      if (Sess[SoPos] < Cut)
        RemovedPos[S].push_back(static_cast<uint32_t>(SoPos));
  }
  // Number of evicted so positions strictly below \p Value in session S.
  auto RemovedBelow = [&](SessionId S, uint32_t Value) -> uint32_t {
    const std::vector<uint32_t> &R = RemovedPos[S];
    return static_cast<uint32_t>(
        std::lower_bound(R.begin(), R.end(), Value) - R.begin());
  };

  // Happens-before rows: drop the prefix, shift the surviving frontiers.
  if (Level == IsolationLevel::CausalConsistency && HbStride) {
    for (size_t L = Cut; L < OldN; ++L) {
      uint32_t *Src = &HbRows[L * HbStride];
      uint32_t *Dst = &HbRows[(L - Cut) * HbStride];
      for (size_t S = 0; S < HbStride; ++S) {
        uint32_t F = Src[S];
        Dst[S] = (F && S < K)
                     ? F - RemovedBelow(static_cast<SessionId>(S), F)
                     : F;
      }
    }
    HbRows.resize(NewN * HbStride);
  }

  // Writer index: evicted writers vanish; survivors rebase ids and so
  // positions.
  for (auto It = Writers.begin(); It != Writers.end();) {
    KeyWriters &KW = It->second;
    size_t KeptSlots = 0;
    for (size_t Slot = 0; Slot < KW.Sessions.size(); ++Slot) {
      SessionId S = KW.Sessions[Slot];
      std::vector<detail::CcWriterEntry> &List = KW.Lists[Slot];
      size_t Kept = 0;
      for (const detail::CcWriterEntry &E : List) {
        if (E.T < Cut)
          continue;
        List[Kept++] = {E.T - Cut, E.SoIndex - RemovedBelow(S, E.SoIndex)};
      }
      List.resize(Kept);
      if (Kept) {
        if (KeptSlots != Slot) {
          KW.Sessions[KeptSlots] = S;
          KW.Lists[KeptSlots] = std::move(List);
        }
        ++KeptSlots;
      }
    }
    KW.Sessions.resize(KeptSlots);
    KW.Lists.resize(KeptSlots);
    It = KeptSlots ? std::next(It) : Writers.erase(It);
  }

  // RA incremental state: scratch entries of evicted writers vanish, the
  // processed frontier shifts by the members removed below it.
  for (SessionId S = 0; S < RaStates.size() && S < K; ++S) {
    RaSessionState &St = RaStates[S];
    St.NextSo -= RemovedBelow(S, static_cast<uint32_t>(St.NextSo));
    for (auto ScIt = St.Scratch.LastWrite.begin();
         ScIt != St.Scratch.LastWrite.end();) {
      if (ScIt->second < Cut) {
        ScIt = St.Scratch.LastWrite.erase(ScIt);
      } else {
        ScIt->second -= Cut;
        ++ScIt;
      }
    }
  }

  // Source-tagged edges: contributions of evicted units vanish wholesale,
  // and edges crossing the horizon die (anomalies spanning it are no
  // longer detectable — the documented windowed-mode trade-off). The
  // lists are global-coordinate, so surviving per-transaction sources are
  // left byte-for-byte untouched: a dead edge becomes a tombstone the
  // consumers (and the replay below) skip via deadPacked(). Only the
  // long-lived per-session lists are rewritten — RA contributions are
  // pruned in place, and the so chains are rebuilt over the surviving
  // session members so survivors around an evicted middle member get
  // re-linked.
  uint32_t NewBase = EvictedBase + Cut;
  for (auto It = BySource.begin(); It != BySource.end();) {
    uint64_t Tag = It->first >> 32;
    if (Tag == 4) {
      It = BySource.erase(It); // so chains: rebuilt below.
      continue;
    }
    if (isPerTxnSource(It->first)) {
      It = static_cast<uint32_t>(It->first) < NewBase ? BySource.erase(It)
                                                      : std::next(It);
      continue;
    }
    // Per-session RA lists: prune dead entries, keep global coordinates.
    std::vector<uint64_t> &List = It->second;
    size_t Kept = 0;
    for (uint64_t GPacked : List)
      if (edgeFrom(GPacked) >= NewBase && edgeTo(GPacked) >= NewBase)
        List[Kept++] = GPacked;
    List.resize(Kept);
    It = Kept ? std::next(It) : BySource.erase(It);
  }
  for (SessionId S = 0; S < K; ++S) {
    const std::vector<TxnId> &Sess = H.sessionTxns(S);
    std::vector<uint64_t> Chain;
    TxnId Prev = NoTxn;
    for (TxnId Member : Sess) {
      if (Member < Cut)
        continue;
      if (Prev != NoTxn)
        Chain.push_back(pack(Prev - Cut + NewBase, Member - Cut + NewBase));
      Prev = Member;
    }
    if (!Chain.empty())
      BySource.emplace(soSource(S), std::move(Chain));
  }
  EvictedBase = NewBase;

  // Quarantined edges between survivors stay quarantined (their region
  // may still be cyclic); the retry at the next flush revisits them.
  std::unordered_set<uint64_t> NewQuarantine;
  for (uint64_t Packed : Quarantined) {
    TxnId From = edgeFrom(Packed), To = edgeTo(Packed);
    if (From >= Cut && To >= Cut)
      NewQuarantine.insert(pack(From - Cut, To - Cut));
  }
  Quarantined = std::move(NewQuarantine);

  // Rebuild refcounts, the order, and the reader lists from the filtered
  // sources. Surviving edges preserve their relative order, so re-adding
  // them is forward (O(1) per edge).
  Edges.clear();
  InferredDistinct = 0;
  Order.clearEdgesAndCompact(Cut);
  Processed.erase(Processed.begin(), Processed.begin() + Cut);
  RowEpochs.eraseFront(Cut);
  ReadersOf.assign(NewN, {});
  // Replay in sorted source order, not hash-table order: adjacency-list
  // order steers later witness extraction, and a canonical replay makes
  // the post-compaction order a pure function of the logical edge set —
  // identical between a resumed and an uninterrupted run, and stable
  // between consecutive checkpoints (what keeps v2 chunks unchanged).
  std::vector<uint64_t> ReplayOrder;
  ReplayOrder.reserve(BySource.size());
  for (const auto &[Source, EdgeList] : BySource)
    ReplayOrder.push_back(Source);
  std::sort(ReplayOrder.begin(), ReplayOrder.end());
  for (uint64_t Source : ReplayOrder) {
    const std::vector<uint64_t> &EdgeList = BySource.at(Source);
    bool IsBase = isBaseSource(Source);
    for (uint64_t GPacked : EdgeList) {
      if (deadPacked(GPacked))
        continue;
      uint64_t Packed = localizePacked(GPacked);
      EdgeRefs &Refs = Edges[Packed];
      bool WasLive = Refs.Base + Refs.Inferred > 0;
      if (IsBase) {
        ++Refs.Base;
      } else {
        if (Refs.Inferred == 0)
          ++InferredDistinct;
        ++Refs.Inferred;
      }
      if (!WasLive && !Quarantined.count(Packed) &&
          !Order.addEdge(edgeFrom(Packed), edgeTo(Packed), nullptr))
        Quarantined.insert(Packed); // only possible under a stale base cycle
    }
    if ((Source >> 32) == 3) { // wr: rebuild reader lists
      TxnId Reader = static_cast<TxnId>(static_cast<uint32_t>(Source) -
                                        EvictedBase);
      for (uint64_t GPacked : EdgeList)
        if (!deadPacked(GPacked))
          ReadersOf[edgeFrom(localizePacked(GPacked))].push_back(Reader);
    }
  }

  // Quarantine entries whose every referencing source was evicted are
  // gone with their references.
  for (auto It = Quarantined.begin(); It != Quarantined.end();)
    It = Edges.count(*It) ? std::next(It) : Quarantined.erase(It);

  maybeClearBaseCyclic();
}

//===----------------------------------------------------------------------===//
// Checkpoint support: verbatim serialization of the streaming state.
//===----------------------------------------------------------------------===//

void SaturationState::saveState(ByteWriter &W, const StateCoords *C) const {
  AWDIT_ASSERT(EngineMode == Mode::Streaming,
               "saveState: only streaming state checkpoints");
  // Local→global transforms of chunked serialization (identity when C is
  // null — the v1 byte path). See StateCoords in support/serialize.h.
  uint32_t IdBase = C ? C->IdBase : 0;
  auto GT = [&](TxnId T) { return static_cast<TxnId>(T + IdBase); };
  auto GSo = [&](SessionId S, uint32_t So) {
    return C && S < C->SoBase->size()
               ? static_cast<uint32_t>(So + (*C->SoBase)[S])
               : So;
  };
  auto GPacked = [&](uint64_t Packed) {
    return Packed + (static_cast<uint64_t>(IdBase) << 32) + IdBase;
  };
  // BySource is already global-coordinate in memory; the chunked path
  // writes it verbatim, so its base and the checkpoint's must agree.
  AWDIT_ASSERT(!C || C->IdBase == EvictedBase,
               "saveState: checkpoint id base != engine eviction base");

  W.chunk(chunkId(ckchunk::SHdr));
  W.u8(static_cast<uint8_t>(Level));
  W.u64(NumSessions);
  W.boolean(BaseCyclic);
  W.boolean(NeedsFullHbRecompute);

  Order.saveState(W, IdBase, ckchunk::SPos);

  // Edge refcounts: v1 only, sorted by packed key for canonical bytes
  // (iteration order of the live table never influences behavior in
  // streaming mode). The chunked path skips them entirely — the map is
  // the filtered refcount image of the source lists below, so loadState
  // re-derives it instead of paying churned refcount chunks on every
  // retroactive re-derivation.
  if (!C) {
    std::vector<std::pair<uint64_t, EdgeRefs>> Sorted;
    Sorted.reserve(Edges.size());
    Edges.forEach([&](uint64_t Packed, const EdgeRefs &Refs) {
      Sorted.emplace_back(Packed, Refs);
    });
    std::sort(Sorted.begin(), Sorted.end(),
              [](const auto &A, const auto &B) { return A.first < B.first; });
    W.u64(Sorted.size());
    for (const auto &[Packed, Refs] : Sorted) {
      W.u64(Packed);
      W.u32(Refs.Base);
      W.u32(Refs.Inferred);
    }
  }

  // Source-tagged edge lists, sorted by (global) source key. The lists
  // live in global coordinates and may carry tombstones. The chunked path
  // writes them verbatim — a per-transaction source's bytes never change
  // after creation, so eviction dirties no old chunk. The v1 path writes
  // the filtered, localized view: exactly the bytes an eagerly pruned
  // engine would produce (tombstone-only sources are elided like eager
  // pruning would have dropped them).
  {
    std::vector<uint64_t> Sources;
    Sources.reserve(BySource.size());
    for (const auto &[Source, List] : BySource) {
      if (!C && std::all_of(List.begin(), List.end(), [&](uint64_t GP) {
            return deadPacked(GP);
          }))
        continue;
      Sources.push_back(Source);
    }
    std::sort(Sources.begin(), Sources.end());
    W.chunk(chunkId(ckchunk::SSources));
    W.u64(Sources.size());
    for (uint64_t Source : Sources) {
      const std::vector<uint64_t> &List = BySource.at(Source);
      W.chunk(chunkId(ckchunk::SSources,
                      1 + (((Source >> 32) << 28) |
                           (static_cast<uint32_t>(Source) >> 4))));
      if (C) {
        W.u64(Source);
        W.u64(List.size());
        for (uint64_t GPacked : List)
          W.u64(GPacked);
      } else {
        W.u64(isPerTxnSource(Source) ? Source - EvictedBase : Source);
        uint64_t Live = 0;
        for (uint64_t GPacked : List)
          Live += !deadPacked(GPacked);
        W.u64(Live);
        for (uint64_t GPacked : List)
          if (!deadPacked(GPacked))
            W.u64(localizePacked(GPacked));
      }
    }
  }

  {
    std::vector<uint64_t> Sorted(Quarantined.begin(), Quarantined.end());
    std::sort(Sorted.begin(), Sorted.end());
    W.chunk(chunkId(ckchunk::SQuar));
    W.u64(Sorted.size());
    for (uint64_t Packed : Sorted)
      W.u64(GPacked(Packed));
  }

  W.chunk(chunkId(ckchunk::SProc));
  W.u64(Processed.size());
  for (size_t I = 0; I < Processed.size(); ++I) {
    W.chunk(chunkId(ckchunk::SProc, 1 + ((IdBase + I) >> 8)));
    W.u8(Processed[I]);
  }

  W.chunk(chunkId(ckchunk::SReaders));
  W.u64(ReadersOf.size());
  for (size_t I = 0; I < ReadersOf.size(); ++I) {
    W.chunk(chunkId(ckchunk::SReaders, 1 + ((IdBase + I) >> 4)));
    const std::vector<TxnId> &Readers = ReadersOf[I];
    W.u64(Readers.size());
    for (TxnId R : Readers)
      W.u32(GT(R));
  }

  W.chunk(chunkId(ckchunk::SHb));
  W.u64(HbStride);
  W.u64(HbRows.size());
  if (HbStride == 0 || HbRows.size() % HbStride != 0)
    for (uint32_t V : HbRows) // defensive: not row-shaped, write raw
      W.u32(V);
  else
    for (size_t L = 0; L * HbStride < HbRows.size(); ++L) {
      W.chunk(chunkId(ckchunk::SHb, 1 + ((IdBase + L) >> 4)));
      for (size_t S = 0; S < HbStride; ++S) {
        // Frontier values are so-index+1 counts; 0 means "none" and stays
        // a sentinel, matching the rebase in compact().
        uint32_t F = HbRows[L * HbStride + S];
        W.u32(F ? GSo(static_cast<SessionId>(S), F) : 0);
      }
    }

  // Per-key writer index: sorted by key; slot order (session discovery
  // order) and list order are semantic — verbatim.
  {
    std::vector<Key> SortedKeys;
    SortedKeys.reserve(Writers.size());
    for (const auto &[K, KW] : Writers)
      SortedKeys.push_back(K);
    std::sort(SortedKeys.begin(), SortedKeys.end());
    W.chunk(chunkId(ckchunk::SWriters));
    W.u64(SortedKeys.size());
    for (Key K : SortedKeys) {
      const KeyWriters &KW = Writers.at(K);
      W.chunk(chunkId(ckchunk::SWriters, 1 + (K >> 4)));
      W.u64(K);
      W.u64(KW.Sessions.size());
      for (size_t Slot = 0; Slot < KW.Sessions.size(); ++Slot) {
        SessionId S = KW.Sessions[Slot];
        W.u32(S);
        const std::vector<detail::CcWriterEntry> &List = KW.Lists[Slot];
        W.u64(List.size());
        for (const detail::CcWriterEntry &E : List) {
          W.u32(GT(E.T));
          W.u32(GSo(S, E.SoIndex));
        }
      }
    }
  }

  // RA incremental state. The per-transaction halves of the scratch are
  // reset by the kernel before use; only LastWrite and the frontier
  // persist across flushes.
  W.chunk(chunkId(ckchunk::SRa));
  W.u64(RaStates.size());
  for (size_t S = 0; S < RaStates.size(); ++S) {
    const RaSessionState &St = RaStates[S];
    W.chunk(chunkId(ckchunk::SRa, 1 + S));
    W.u64(C && S < C->SoBase->size() ? St.NextSo + (*C->SoBase)[S]
                                     : St.NextSo);
    W.boolean(St.NeedsFullRerun);
    std::vector<std::pair<Key, TxnId>> Sorted(St.Scratch.LastWrite.begin(),
                                              St.Scratch.LastWrite.end());
    std::sort(Sorted.begin(), Sorted.end());
    W.u64(Sorted.size());
    for (const auto &[K, T] : Sorted) {
      W.u64(K);
      W.u32(GT(T));
    }
  }
}

bool SaturationState::loadState(ByteReader &R, std::string *Err,
                                const StateCoords *C, uint32_t WindowBase) {
  auto Fail = [&](const char *Msg) {
    if (Err)
      *Err = Msg;
    return false;
  };
  // Exact inverses of the saveState transforms (identity when C is null).
  uint32_t IdBase = C ? C->IdBase : 0;
  auto LT = [&](TxnId T) { return static_cast<TxnId>(T - IdBase); };
  auto LSo = [&](SessionId S, uint32_t So) {
    return C && S < C->SoBase->size()
               ? static_cast<uint32_t>(So - (*C->SoBase)[S])
               : So;
  };
  auto LPacked = [&](uint64_t Packed) {
    return Packed - (static_cast<uint64_t>(IdBase) << 32) - IdBase;
  };

  if (EngineMode != Mode::Streaming)
    return Fail("checkpoint restore requires a streaming-mode engine");
  if (C && C->IdBase != WindowBase)
    return Fail("inconsistent checkpoint (id base vs. window base)");
  EvictedBase = WindowBase;
  if (R.u8() != static_cast<uint8_t>(Level))
    return Fail("checkpoint isolation level does not match this monitor");
  NumSessions = R.u64();
  BaseCyclic = R.boolean();
  NeedsFullHbRecompute = R.boolean();
  // Speculation bookkeeping is transient per-flush state: deliberately
  // absent from checkpoints (the format is unchanged by PR 6), reset here.
  RowEpochs.clear();

  if (!Order.loadState(R, IdBase))
    return Fail("corrupted checkpoint (topological order)");

  // Edge refcounts: present in v1 bytes only; the chunked format derives
  // them from the source lists after those are read.
  Edges.clear();
  InferredDistinct = 0;
  if (!C) {
    uint64_t NumEdges = R.u64();
    if (!R.checkCount(NumEdges, 16))
      return Fail("corrupted checkpoint (edge count)");
    for (uint64_t I = 0; I < NumEdges; ++I) {
      uint64_t Packed = R.u64();
      EdgeRefs Refs;
      Refs.Base = R.u32();
      Refs.Inferred = R.u32();
      Edges[Packed] = Refs;
      if (Refs.Inferred > 0)
        ++InferredDistinct;
    }
  }

  // Source lists: the chunked bytes are the in-memory (global-coordinate,
  // tombstone-carrying) form verbatim; v1 bytes are the filtered local
  // view and re-globalize against the window base.
  BySource.clear();
  uint64_t NumSources = R.u64();
  if (!R.checkCount(NumSources, 16))
    return Fail("corrupted checkpoint (source count)");
  for (uint64_t I = 0; I < NumSources && R.ok(); ++I) {
    uint64_t Source = R.u64();
    if (!C && isPerTxnSource(Source))
      Source += EvictedBase;
    uint64_t Len = R.u64();
    if (!R.checkCount(Len, 8))
      return Fail("corrupted checkpoint (source list)");
    std::vector<uint64_t> List(Len);
    for (uint64_t J = 0; J < Len; ++J)
      List[J] = C ? R.u64() : R.u64() + packedShift(EvictedBase);
    BySource.emplace(Source, std::move(List));
  }
  if (C) {
    // Derive the refcount map: it is a pure, order-independent refcount
    // image of the filtered lists, so replaying them here reproduces the
    // live engine's map bit-exactly.
    for (const auto &[Source, List] : BySource) {
      bool IsBase = isBaseSource(Source);
      for (uint64_t GPacked : List) {
        if (deadPacked(GPacked))
          continue;
        EdgeRefs &Refs = Edges[localizePacked(GPacked)];
        if (IsBase) {
          ++Refs.Base;
        } else {
          if (Refs.Inferred == 0)
            ++InferredDistinct;
          ++Refs.Inferred;
        }
      }
    }
  }

  Quarantined.clear();
  uint64_t NumQuarantined = R.u64();
  if (!R.checkCount(NumQuarantined, 8))
    return Fail("corrupted checkpoint (quarantine)");
  for (uint64_t I = 0; I < NumQuarantined; ++I)
    Quarantined.insert(LPacked(R.u64()));

  uint64_t NumProcessed = R.u64();
  if (!R.checkCount(NumProcessed, 1))
    return Fail("corrupted checkpoint (processed flags)");
  Processed.resize(NumProcessed);
  for (uint64_t I = 0; I < NumProcessed; ++I)
    Processed[I] = R.u8();

  uint64_t NumReaders = R.u64();
  if (!R.checkCount(NumReaders, 8))
    return Fail("corrupted checkpoint (reader lists)");
  ReadersOf.assign(NumReaders, {});
  for (uint64_t I = 0; I < NumReaders && R.ok(); ++I) {
    uint64_t Len = R.u64();
    if (!R.checkCount(Len, 4))
      return Fail("corrupted checkpoint (reader list)");
    ReadersOf[I].resize(Len);
    for (uint64_t J = 0; J < Len; ++J)
      ReadersOf[I][J] = LT(R.u32());
  }

  HbStride = R.u64();
  uint64_t NumHb = R.u64();
  if (!R.checkCount(NumHb, 4))
    return Fail("corrupted checkpoint (happens-before rows)");
  HbRows.resize(NumHb);
  bool RowShaped = HbStride != 0 && NumHb % HbStride == 0;
  for (uint64_t I = 0; I < NumHb; ++I) {
    uint32_t F = R.u32();
    HbRows[I] =
        F && RowShaped ? LSo(static_cast<SessionId>(I % HbStride), F) : F;
  }

  Writers.clear();
  uint64_t NumKeys = R.u64();
  if (!R.checkCount(NumKeys, 16))
    return Fail("corrupted checkpoint (writer index)");
  for (uint64_t I = 0; I < NumKeys && R.ok(); ++I) {
    Key K = R.u64();
    KeyWriters &KW = Writers[K];
    uint64_t Slots = R.u64();
    if (!R.checkCount(Slots, 12))
      return Fail("corrupted checkpoint (writer slots)");
    KW.Sessions.resize(Slots);
    KW.Lists.assign(Slots, {});
    for (uint64_t Slot = 0; Slot < Slots && R.ok(); ++Slot) {
      SessionId S = R.u32();
      KW.Sessions[Slot] = S;
      uint64_t Len = R.u64();
      if (!R.checkCount(Len, 8))
        return Fail("corrupted checkpoint (writer list)");
      KW.Lists[Slot].resize(Len);
      for (uint64_t J = 0; J < Len; ++J) {
        KW.Lists[Slot][J].T = LT(R.u32());
        KW.Lists[Slot][J].SoIndex = LSo(S, R.u32());
      }
    }
  }

  RaStates.clear();
  uint64_t NumRa = R.u64();
  if (!R.checkCount(NumRa, 9))
    return Fail("corrupted checkpoint (RA state)");
  RaStates.resize(NumRa);
  for (uint64_t I = 0; I < NumRa && R.ok(); ++I) {
    RaSessionState &St = RaStates[I];
    St.NextSo = R.u64();
    if (C && I < C->SoBase->size())
      St.NextSo -= (*C->SoBase)[I];
    St.NeedsFullRerun = R.boolean();
    uint64_t Len = R.u64();
    if (!R.checkCount(Len, 12))
      return Fail("corrupted checkpoint (RA last-write)");
    for (uint64_t J = 0; J < Len; ++J) {
      Key K = R.u64();
      St.Scratch.LastWrite[K] = LT(R.u32());
    }
  }

  if (!R.ok())
    return Fail("truncated checkpoint (saturation state)");
  return true;
}
