//===- checker/checkpoint.cpp - Persistent monitor checkpoints -------------===//

#include "checker/checkpoint.h"

#include "obs/histogram.h"
#include "obs/trace.h"
#include "store/segment_store.h"
#include "support/serialize.h"

#include <cstdio>
#include <filesystem>

using namespace awdit;

namespace {

constexpr uint32_t CheckpointMagic = 0x50435741; // "AWCP" little-endian

constexpr size_t EnvelopeBytes = 4 + 4 + 8 + 8;

void saveOptions(ByteWriter &W, const MonitorOptions &O) {
  W.u8(static_cast<uint8_t>(O.Level));
  W.u64(O.CheckIntervalTxns);
  W.u64(O.WindowTxns);
  W.u64(O.WindowEdges);
  W.u64(O.WindowAgeTicks);
  W.u64(O.ForceAbortOpenTicks);
  W.u64(O.Check.MaxWitnesses);
  W.boolean(O.Check.UseSingleSessionFastPath);
  W.u8(static_cast<uint8_t>(O.Check.Cc));
  W.u32(O.Check.Threads);
  W.u64(O.Check.ParallelThreshold);
}

void loadOptions(ByteReader &R, MonitorOptions &O) {
  O.Level = static_cast<IsolationLevel>(R.u8());
  O.CheckIntervalTxns = R.u64();
  O.WindowTxns = R.u64();
  O.WindowEdges = R.u64();
  O.WindowAgeTicks = R.u64();
  O.ForceAbortOpenTicks = R.u64();
  O.Check.MaxWitnesses = R.u64();
  O.Check.UseSingleSessionFastPath = R.boolean();
  O.Check.Cc = static_cast<CcVariant>(R.u8());
  O.Check.Threads = R.u32();
  O.Check.ParallelThreshold = R.u64();
}

void saveMeta(ByteWriter &W, const CheckpointMeta &Meta) {
  W.str(Meta.Format);
  saveOptions(W, Meta.Options);
  W.u64(Meta.StreamOffset);
  W.u64(Meta.LineNo);
  W.u64(Meta.CommittedTxns);
  W.u64(Meta.Flushes);
}

void loadMeta(ByteReader &R, CheckpointMeta &Meta) {
  Meta.Format = R.str();
  loadOptions(R, Meta.Options);
  Meta.StreamOffset = R.u64();
  Meta.LineNo = R.u64();
  Meta.CommittedTxns = R.u64();
  Meta.Flushes = R.u64();
}

/// Validates the envelope and returns the payload range, or false with a
/// precise diagnostic — truncation and corruption are operator-facing
/// conditions (a killed process, a failing disk), not programmer errors.
bool openEnvelope(std::string_view Blob, std::string_view &Payload,
                  std::string *Err) {
  auto Fail = [&](const std::string &Msg) {
    if (Err)
      *Err = Msg;
    return false;
  };
  if (Blob.size() < EnvelopeBytes)
    return Fail("truncated checkpoint (file shorter than the header)");
  ByteReader R(Blob);
  if (R.u32() != CheckpointMagic)
    return Fail("not an awdit checkpoint (bad magic)");
  uint32_t Version = R.u32();
  if (Version != CheckpointVersion)
    return Fail("unsupported checkpoint version " + std::to_string(Version) +
                " (this build reads version " +
                std::to_string(CheckpointVersion) + ")");
  uint64_t PayloadSize = R.u64();
  uint64_t Checksum = R.u64();
  if (Blob.size() - EnvelopeBytes < PayloadSize)
    return Fail("truncated checkpoint (need " + std::to_string(PayloadSize) +
                " payload bytes, have " +
                std::to_string(Blob.size() - EnvelopeBytes) + ")");
  Payload = Blob.substr(EnvelopeBytes, PayloadSize);
  if (fnv1a(Payload) != Checksum)
    return Fail("checkpoint checksum mismatch (corrupted file)");
  return true;
}

} // namespace

std::string awdit::encodeCheckpoint(const Monitor &M,
                                    std::string_view MachineState,
                                    const CheckpointMeta &Meta) {
  std::string Payload;
  ByteWriter W(Payload);
  saveMeta(W, Meta);
  W.str(MachineState);
  M.saveState(W);

  std::string Blob;
  ByteWriter Env(Blob);
  Env.u32(CheckpointMagic);
  Env.u32(CheckpointVersion);
  Env.u64(Payload.size());
  Env.u64(fnv1a(Payload));
  Blob += Payload;
  return Blob;
}

bool awdit::decodeCheckpointMeta(std::string_view Blob, CheckpointMeta &Meta,
                                 std::string *Err) {
  std::string_view Payload;
  if (!openEnvelope(Blob, Payload, Err))
    return false;
  ByteReader R(Payload);
  loadMeta(R, Meta);
  if (!R.ok()) {
    if (Err)
      *Err = "corrupted checkpoint (meta block)";
    return false;
  }
  return true;
}

bool awdit::restoreCheckpoint(std::string_view Blob, Monitor &M,
                              std::string &MachineState, std::string *Err) {
  std::string_view Payload;
  if (!openEnvelope(Blob, Payload, Err))
    return false;
  ByteReader R(Payload);
  CheckpointMeta Meta;
  loadMeta(R, Meta);
  MachineState = R.str();
  if (!R.ok()) {
    if (Err)
      *Err = "corrupted checkpoint (meta block)";
    return false;
  }
  return M.loadState(R, Err);
}

std::string awdit::checkpointFilePath(const std::string &Dir) {
  return Dir + "/checkpoint.bin";
}

std::string awdit::sanitizeStreamName(std::string_view Name) {
  static const char Hex[] = "0123456789ABCDEF";
  std::string Out;
  Out.reserve(Name.size());
  for (size_t I = 0; I < Name.size(); ++I) {
    char C = Name[I];
    bool Safe = (C >= 'a' && C <= 'z') || (C >= 'A' && C <= 'Z') ||
                (C >= '0' && C <= '9') || C == '_' || C == '-' ||
                (C == '.' && I != 0);
    if (Safe) {
      Out += C;
    } else {
      Out += '%';
      Out += Hex[(static_cast<unsigned char>(C) >> 4) & 0xf];
      Out += Hex[static_cast<unsigned char>(C) & 0xf];
    }
  }
  // An empty id still needs a file name.
  if (Out.empty())
    Out = "%";
  return Out;
}

std::string awdit::checkpointFilePathFor(const std::string &Dir,
                                         std::string_view Stream) {
  return Dir + "/" + sanitizeStreamName(Stream) + ".ckpt";
}

bool awdit::writeCheckpointFileAt(const std::string &Path,
                                  std::string_view Blob, std::string *Err) {
  AWDIT_SPAN("checkpoint.v1");
  obs::ScopedLatency Lat(obs::metrics().CheckpointV1Write);
  auto Fail = [&](const std::string &Msg) {
    if (Err)
      *Err = Msg;
    return false;
  };
  std::filesystem::path Parent = std::filesystem::path(Path).parent_path();
  if (!Parent.empty()) {
    std::error_code Ec;
    std::filesystem::create_directories(Parent, Ec);
    if (Ec)
      return Fail("cannot create checkpoint directory '" +
                  Parent.string() + "': " + Ec.message());
  }
  std::string Tmp = Path + ".tmp";
  std::FILE *F = std::fopen(Tmp.c_str(), "wb");
  if (!F)
    return Fail("cannot open '" + Tmp + "' for writing");
  size_t Written = std::fwrite(Blob.data(), 1, Blob.size(), F);
  // Close unconditionally — a short write (disk full) must not leak the
  // stream: the checkpoint hook retries every interval and would bleed
  // one fd per attempt.
  bool Ok = Written == Blob.size();
  if (std::fclose(F) != 0)
    Ok = false;
  if (!Ok) {
    std::remove(Tmp.c_str());
    return Fail("short write to '" + Tmp + "'");
  }
  // rename() is atomic within one filesystem: a crash leaves either the
  // old checkpoint or the new one, never a half-written file under the
  // final name.
  if (std::rename(Tmp.c_str(), Path.c_str()) != 0) {
    std::remove(Tmp.c_str());
    return Fail("cannot rename '" + Tmp + "' to '" + Path + "'");
  }
  return true;
}

bool awdit::readCheckpointFileAt(const std::string &Path, std::string &Blob,
                                 std::string *Err) {
  std::FILE *F = std::fopen(Path.c_str(), "rb");
  if (!F) {
    if (Err)
      *Err = "cannot open '" + Path + "' (no checkpoint written yet?)";
    return false;
  }
  Blob.clear();
  char Buf[1 << 16];
  size_t N;
  while ((N = std::fread(Buf, 1, sizeof(Buf), F)) > 0)
    Blob.append(Buf, N);
  std::fclose(F);
  return true;
}

bool awdit::writeCheckpointFile(const std::string &Dir,
                                std::string_view Blob, std::string *Err) {
  return writeCheckpointFileAt(checkpointFilePath(Dir), Blob, Err);
}

bool awdit::readCheckpointFile(const std::string &Dir, std::string &Blob,
                               std::string *Err) {
  return readCheckpointFileAt(checkpointFilePath(Dir), Blob, Err);
}

//===----------------------------------------------------------------------===//
// Store-backed checkpoints (format v2)
//===----------------------------------------------------------------------===//

namespace {

/// Parses the root meta blob:
///   [u32 magic "AWCP"] [u32 version=2] [meta] [str machine-state]
///   [u32 id-base] [u64 count] [count x u64 session so-base]
/// \p MachineState may be null when only the meta is wanted.
bool parseStoreMeta(std::string_view Blob, CheckpointMeta &Meta,
                    std::string *MachineState, uint32_t &IdBase,
                    std::vector<uint64_t> &SoBase, std::string *Err) {
  auto Fail = [&](const std::string &Msg) {
    if (Err)
      *Err = Msg;
    return false;
  };
  ByteReader R(Blob);
  if (R.u32() != CheckpointMagic || !R.ok())
    return Fail("not an awdit checkpoint store root (bad magic)");
  uint32_t Version = R.u32();
  if (Version != CheckpointStoreVersion)
    return Fail("unsupported checkpoint store version " +
                std::to_string(Version) + " (this build reads version " +
                std::to_string(CheckpointStoreVersion) + ")");
  loadMeta(R, Meta);
  std::string Machine = R.str();
  if (MachineState)
    *MachineState = std::move(Machine);
  IdBase = R.u32();
  uint64_t N = R.u64();
  if (!R.checkCount(N, 8))
    return Fail("corrupted checkpoint store root (session base count)");
  SoBase.resize(N);
  for (uint64_t &V : SoBase)
    V = R.u64();
  if (!R.ok() || R.remaining() != 0)
    return Fail("corrupted checkpoint store root (meta blob)");
  return true;
}

} // namespace

StoreCheckpointer::StoreCheckpointer() = default;
StoreCheckpointer::~StoreCheckpointer() = default;

bool StoreCheckpointer::open(const std::string &Dir, std::string *Err) {
  Store = std::make_unique<store::SegmentStore>();
  if (!Store->open(Dir, Err)) {
    Store.reset();
    return false;
  }
  return true;
}

bool StoreCheckpointer::hasCheckpoint() const {
  return Store && Store->hasRoot();
}

bool StoreCheckpointer::readMeta(CheckpointMeta &Meta,
                                 std::string *Err) const {
  if (!hasCheckpoint()) {
    if (Err)
      *Err = "checkpoint store has no committed checkpoint";
    return false;
  }
  uint32_t IdBase = 0;
  std::vector<uint64_t> SoBase;
  return parseStoreMeta(Store->rootMeta(), Meta, nullptr, IdBase, SoBase,
                        Err);
}

bool StoreCheckpointer::restore(Monitor &M, std::string &MachineState,
                                std::string *Err) const {
  if (!hasCheckpoint()) {
    if (Err)
      *Err = "checkpoint store has no committed checkpoint";
    return false;
  }
  CheckpointMeta Meta;
  uint32_t IdBase = 0;
  std::vector<uint64_t> SoBase;
  if (!parseStoreMeta(Store->rootMeta(), Meta, &MachineState, IdBase, SoBase,
                      Err))
    return false;
  // Reassembly: chunk ids are assigned in stream-write order, strictly
  // increasing, so concatenating the live chunks in ascending id order
  // reproduces the serialized state byte-for-byte.
  std::string Bytes;
  std::string Chunk;
  for (uint64_t Id : Store->chunkIds()) {
    if (!Store->readChunk(Id, Chunk, Err))
      return false;
    Bytes += Chunk;
  }
  return M.loadStateChunked(Bytes, IdBase, SoBase, Err);
}

bool StoreCheckpointer::write(const Monitor &M, std::string_view MachineState,
                              const CheckpointMeta &Meta, std::string *Err) {
  AWDIT_SPAN("checkpoint.store");
  obs::ScopedLatency Lat(obs::metrics().CheckpointStoreCommit);
  if (!Store) {
    if (Err)
      *Err = "checkpoint store not open";
    return false;
  }
  std::string Bytes;
  std::vector<ChunkMark> Marks;
  uint32_t IdBase = 0;
  std::vector<uint64_t> SoBase;
  M.saveStateChunked(Bytes, Marks, IdBase, SoBase);

  std::string MetaBlob;
  ByteWriter W(MetaBlob);
  W.u32(CheckpointMagic);
  W.u32(CheckpointStoreVersion);
  saveMeta(W, Meta);
  W.str(MachineState);
  W.u32(IdBase);
  W.u64(SoBase.size());
  for (uint64_t V : SoBase)
    W.u64(V);

  // Slice the serialized state at its marks. A mark at offset X starts the
  // chunk [X, next mark); marks are emitted at offset 0 first, but guard
  // against an unmarked prefix anyway (chunk id 0 sorts before every real
  // id, so reassembly order stays correct).
  std::vector<std::pair<uint64_t, std::string_view>> Chunks;
  Chunks.reserve(Marks.size() + 1);
  std::string_view All(Bytes);
  if (!Marks.empty() && Marks.front().Offset != 0)
    Chunks.emplace_back(0, All.substr(0, Marks.front().Offset));
  else if (Marks.empty() && !Bytes.empty())
    Chunks.emplace_back(0, All);
  for (size_t I = 0; I < Marks.size(); ++I) {
    size_t End = I + 1 < Marks.size() ? Marks[I + 1].Offset : Bytes.size();
    Chunks.emplace_back(Marks[I].Id,
                        All.substr(Marks[I].Offset, End - Marks[I].Offset));
  }
  return Store->commit(MetaBlob, Chunks, Err);
}

uint64_t StoreCheckpointer::bytesAppended() const {
  return Store ? Store->bytesAppended() : 0;
}

uint64_t StoreCheckpointer::commits() const {
  return Store ? Store->commits() : 0;
}

bool StoreCheckpointer::isStoreDir(const std::string &Dir) {
  return store::SegmentStore::isStoreDir(Dir);
}

bool awdit::decodeStoreCheckpointMeta(std::string_view MetaBlob,
                                      CheckpointMeta &Meta,
                                      std::string *Err) {
  uint32_t IdBase = 0;
  std::vector<uint64_t> SoBase;
  return parseStoreMeta(MetaBlob, Meta, nullptr, IdBase, SoBase, Err);
}

std::string awdit::checkpointStoreDirFor(const std::string &Dir,
                                         std::string_view Stream) {
  return Dir + "/" + sanitizeStreamName(Stream) + ".store";
}

bool awdit::removeStoreDir(const std::string &Dir, std::string *Err) {
  auto Fail = [&](const std::string &Msg) {
    if (Err)
      *Err = Msg;
    return false;
  };
  if (!store::SegmentStore::isStoreDir(Dir))
    return Fail("'" + Dir + "' is not a checkpoint store directory");
  std::error_code Ec;
  std::filesystem::remove_all(Dir, Ec);
  if (Ec)
    return Fail("cannot remove checkpoint store '" + Dir +
                "': " + Ec.message());
  return true;
}
