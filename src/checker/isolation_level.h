//===- checker/isolation_level.h - Isolation levels ---------------*- C++ -*-===//
//
// Part of the AWDIT reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The three weak isolation levels the paper targets (§2.2) and the
/// strength order CC ⊑ RA ⊑ RC between them.
///
//===----------------------------------------------------------------------===//

#ifndef AWDIT_CHECKER_ISOLATION_LEVEL_H
#define AWDIT_CHECKER_ISOLATION_LEVEL_H

#include <cstdint>
#include <optional>
#include <string_view>

namespace awdit {

/// A weak isolation level (paper Definitions 2.4, 2.6, 2.8).
enum class IsolationLevel : uint8_t {
  ReadCommitted,
  ReadAtomic,
  CausalConsistency,
};

/// Short display name ("RC", "RA", "CC").
const char *isolationLevelName(IsolationLevel Level);

/// Returns true if \p A ⊑ \p B: every history satisfying \p A also
/// satisfies \p B. The order is total here: CC ⊑ RA ⊑ RC.
bool isAtLeastAsStrongAs(IsolationLevel A, IsolationLevel B);

/// Parses "rc"/"ra"/"cc" (any case) or long names; nullopt on failure.
std::optional<IsolationLevel> parseIsolationLevel(std::string_view Text);

/// All levels, strongest first. Handy for sweeps in tests and benches.
inline constexpr IsolationLevel AllIsolationLevels[] = {
    IsolationLevel::CausalConsistency,
    IsolationLevel::ReadAtomic,
    IsolationLevel::ReadCommitted,
};

} // namespace awdit

#endif // AWDIT_CHECKER_ISOLATION_LEVEL_H
