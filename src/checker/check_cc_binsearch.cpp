//===- checker/check_cc_binsearch.cpp - CC, on-the-fly HB variant ----------===//
//
// The implementation variant the paper's tool ships for Causal Consistency
// (§5): instead of materializing the full n-by-k happens-before matrix and
// scanning per-session writer lists with monotone pointers, transactions
// are processed in one topological pass of so ∪ wr; each transaction's
// clock row is built from its predecessors' rows, used immediately for the
// lastWrite queries (binary search over the so-sorted writer lists), and
// recycled once its last successor has consumed it.
//
//===----------------------------------------------------------------------===//

#include "checker/check_cc.h"
#include "checker/commit_graph.h"
#include "checker/read_consistency.h"
#include "graph/topo_sort.h"

#include <algorithm>
#include <unordered_map>

using namespace awdit;

namespace {

/// Pool of recyclable clock rows (each of width k).
class RowPool {
public:
  RowPool(size_t NumTxns, size_t Width) : Width(Width) {
    RowOf.assign(NumTxns, ~size_t(0));
  }

  /// Allocates (or recycles) a zeroed row for \p T and returns it.
  uint32_t *acquire(TxnId T) {
    size_t Slot;
    if (!Free.empty()) {
      Slot = Free.back();
      Free.pop_back();
      std::fill(Storage.begin() + Slot * Width,
                Storage.begin() + (Slot + 1) * Width, 0);
    } else {
      Slot = Storage.size() / Width;
      Storage.resize(Storage.size() + Width, 0);
    }
    RowOf[T] = Slot;
    return &Storage[Slot * Width];
  }

  const uint32_t *rowOf(TxnId T) const {
    return &Storage[RowOf[T] * Width];
  }

  /// Returns \p T's row to the pool.
  void release(TxnId T) {
    Free.push_back(RowOf[T]);
    RowOf[T] = ~size_t(0);
  }

  /// Peak number of simultaneously live rows (the "width" of the run).
  size_t peakRows() const { return Storage.size() / Width; }

private:
  size_t Width;
  std::vector<uint32_t> Storage;
  std::vector<size_t> RowOf;
  std::vector<size_t> Free;
};

} // namespace

bool awdit::checkCcOnTheFly(const History &H, std::vector<Violation> &Out,
                            size_t MaxWitnesses, SaturationStats *Stats) {
  if (!checkReadConsistency(H, Out))
    return false;

  CommitGraph Co(H);
  std::optional<std::vector<uint32_t>> Order = topologicalSort(Co.graph());
  if (!Order) {
    Co.checkAcyclic(Out, MaxWitnesses);
    return false;
  }

  size_t K = H.numSessions();

  // Per-key, per-writing-session writer lists sorted by SoIndex (they are
  // built in session order, so sorted by construction).
  struct WriterEntry {
    uint32_t SoIndex;
    TxnId T;
  };
  struct KeyWriters {
    std::vector<SessionId> Sessions;
    std::vector<std::vector<WriterEntry>> Lists;
  };
  std::unordered_map<Key, KeyWriters> Writers;
  Writers.reserve(H.numKeys() * 2);
  for (SessionId S = 0; S < K; ++S) {
    for (TxnId T : H.sessionTxns(S)) {
      const Transaction &Txn = H.txn(T);
      for (Key X : Txn.WriteKeys) {
        KeyWriters &KW = Writers[X];
        if (KW.Sessions.empty() || KW.Sessions.back() != S) {
          KW.Sessions.push_back(S);
          KW.Lists.emplace_back();
        }
        KW.Lists.back().push_back({Txn.SoIndex, T});
      }
    }
  }

  // Reference counts: how many successors still need each row (the
  // so-successor plus every transaction reading from it).
  std::vector<uint32_t> RefCount(H.numTxns(), 0);
  for (TxnId T = 0; T < H.numTxns(); ++T) {
    const Transaction &Txn = H.txn(T);
    if (!Txn.Committed)
      continue;
    if (H.soSuccessor(T) != NoTxn)
      ++RefCount[T];
    for (TxnId Writer : Txn.ReadFroms)
      ++RefCount[Writer];
  }

  RowPool Pool(H.numTxns(), std::max<size_t>(K, 1));

  for (uint32_t T3 : *Order) {
    const Transaction &T = H.txn(T3);
    if (!T.Committed)
      continue;

    // Build the exclusive clock row of t3 from its predecessors.
    uint32_t *Row = Pool.acquire(T3);
    SessionId S = T.Session;
    if (T.SoIndex > 0) {
      TxnId Pred = H.sessionTxns(S)[T.SoIndex - 1];
      const uint32_t *PredRow = Pool.rowOf(Pred);
      for (size_t I = 0; I < K; ++I)
        Row[I] = PredRow[I];
      Row[S] = T.SoIndex;
      if (--RefCount[Pred] == 0)
        Pool.release(Pred);
    }
    for (TxnId Writer : T.ReadFroms) {
      const Transaction &W = H.txn(Writer);
      const uint32_t *WRow = Pool.rowOf(Writer);
      for (size_t I = 0; I < K; ++I)
        Row[I] = std::max(Row[I], WRow[I]);
      Row[W.Session] = std::max(Row[W.Session], W.SoIndex + 1);
      if (--RefCount[Writer] == 0)
        Pool.release(Writer);
    }

    // Saturate t3's reads immediately (binary search per writing
    // session makes this independent of any scan state).
    for (uint32_t ReadIdx : T.ExtReads) {
      const ReadInfo &RI = T.Reads[ReadIdx];
      TxnId T1 = RI.Writer;
      auto WIt = Writers.find(RI.K);
      if (WIt == Writers.end())
        continue;
      const KeyWriters &KW = WIt->second;
      for (size_t Slot = 0; Slot < KW.Sessions.size(); ++Slot) {
        uint32_t Frontier = Row[KW.Sessions[Slot]];
        if (Frontier == 0)
          continue;
        const std::vector<WriterEntry> &List = KW.Lists[Slot];
        // Last writer with SoIndex < Frontier.
        auto Pos = std::partition_point(
            List.begin(), List.end(), [Frontier](const WriterEntry &E) {
              return E.SoIndex < Frontier;
            });
        if (Pos == List.begin())
          continue;
        TxnId T2 = std::prev(Pos)->T;
        if (T2 != T1)
          Co.inferEdge(T2, T1);
      }
    }

    // A transaction with no successors can release its row right away.
    if (RefCount[T3] == 0)
      Pool.release(T3);
  }

  if (Stats) {
    Stats->InferredEdges = Co.numInferredEdges();
    Stats->GraphEdges = Co.numEdges();
  }
  return Co.checkAcyclic(Out, MaxWitnesses);
}
