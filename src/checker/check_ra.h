//===- checker/check_ra.h - AWDIT Read Atomic (Alg. 2) ------------*- C++ -*-===//
//
// Part of the AWDIT reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// AWDIT's O(n^{3/2}) Read Atomic checker (paper Algorithm 2 /
/// Theorem 1.1): Read Consistency, the repeatable-reads property, and co'
/// saturation handling the so ∪ wr premise as two separate cases (session
/// last-writer table, and smaller-set intersection per wr predecessor).
///
//===----------------------------------------------------------------------===//

#ifndef AWDIT_CHECKER_CHECK_RA_H
#define AWDIT_CHECKER_CHECK_RA_H

#include "checker/check_rc.h"
#include "checker/violation.h"
#include "history/history.h"

#include <vector>

namespace awdit {

/// Checks the repeatable-reads property (Algorithm 2, lines 21-28): no
/// committed transaction reads the same key from two different
/// transactions. Appends NonRepeatableRead violations; returns true iff the
/// property holds.
bool checkRepeatableReads(const History &H, std::vector<Violation> &Out);

/// Range form of checkRepeatableReads over transactions [Begin, End), the
/// unit of work of the parallel engine. Transactions are independent;
/// concatenating range outputs in range order reproduces the sequential
/// violation list.
bool checkRepeatableReadsRange(const History &H, TxnId Begin, TxnId End,
                               std::vector<Violation> &Out);

/// Checks whether \p H satisfies Read Atomic. Appends violations to \p Out
/// (at most \p MaxWitnesses cycle witnesses) and returns true iff
/// consistent.
bool checkRa(const History &H, std::vector<Violation> &Out,
             size_t MaxWitnesses = 16, SaturationStats *Stats = nullptr);

} // namespace awdit

#endif // AWDIT_CHECKER_CHECK_RA_H
