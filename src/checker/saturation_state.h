//===- checker/saturation_state.h - Incremental saturation engine -*- C++ -*-===//
//
// Part of the AWDIT reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The incremental, delta-driven saturation engine shared by the three
/// checking paths:
///
///  - detail::checkOneShot() runs it as a single cold-start delta over a
///    complete history (the batch kernels of saturation_impl.h, verbatim);
///  - the parallel engine (checker/parallel.h) has its shard workers feed
///    inferred-edge batches into one merged state through striped buffers;
///  - the streaming Monitor (checker/monitor.h) drives true per-flush
///    deltas: the state persists the derived happens-before rows, the
///    per-key write index, and the refcounted source-tagged edge set
///    across flushes, so each pass only propagates the consequences of
///    newly committed or retroactively re-resolved transactions instead
///    of re-scanning the whole live window.
///
/// In streaming mode the commit relation co' is kept topologically ordered
/// with a Pearce–Kelly dynamic order (graph/incremental_topo.h): an edge
/// insertion that would close a cycle is reported as a violation with the
/// offending path extracted on the spot — no per-flush SCC pass — and the
/// edge is quarantined so the order stays valid. The canonical verdict of
/// a completed check still comes from finalizeAcyclic(), which rebuilds
/// the commit graph once and runs the exact same SCC/witness extraction as
/// the historical batch checkers, keeping verdicts, violation lists, and
/// witnesses bit-identical to them.
///
/// Every inferred or base edge is tagged with the unit of work that
/// produced it (an RC transaction, an RA session, a CC reader, a reader's
/// wr set, a session's so chain), so re-running a unit replaces exactly
/// its contribution. The tagged lists live in *global* stream coordinates
/// (ids never rebased by eviction): compaction drops whole evicted
/// sources but never rewrites a surviving per-transaction list — entries
/// whose endpoint was evicted are filtered lazily by every consumer.
/// That keeps the serialized bytes of old sources stable across window
/// slides, which is what makes store-backed checkpoints O(delta).
///
//===----------------------------------------------------------------------===//

#ifndef AWDIT_CHECKER_SATURATION_STATE_H
#define AWDIT_CHECKER_SATURATION_STATE_H

#include "checker/check_rc.h"
#include "checker/commit_graph.h"
#include "checker/isolation_level.h"
#include "checker/saturation_impl.h"
#include "checker/violation.h"
#include "graph/incremental_topo.h"
#include "history/history.h"
#include "support/epoch_snapshot.h"
#include "support/packed_edge_map.h"

#include <array>
#include <atomic>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace awdit {

class ByteWriter;
class ByteReader;
struct StateCoords;
class ThreadPool;

/// The incremental saturation engine. One instance per checking session
/// (a Monitor, one one-shot check, or one parallel check). Not thread-safe
/// except for appendInferredBatch().
class SaturationState {
public:
  enum class Mode : uint8_t {
    /// One cold-start delta (or shard-fed batches): edges are only
    /// collected; no dynamic order is maintained and the verdict comes
    /// from finalizeAcyclic()'s canonical pass.
    Batch,
    /// Streaming deltas: persisted facts, dynamic topological order, and
    /// cycle extraction on edge insertion.
    Streaming,
  };

  SaturationState(IsolationLevel Level, Mode M)
      : Level(Level), EngineMode(M) {}

  // --- Structure growth (streaming). ---

  void addSession() { ++NumSessions; }

  // --- Streaming delta pass. ---

  /// One incremental pass. \p Ready lists the local ids of committed
  /// transactions that are newly closed or were retroactively re-resolved
  /// since the last pass, ascending. Reads \p H (the live window) for
  /// operations, sessions, and derived per-transaction indices; appends
  /// any cycle violation discovered during edge insertion to \p Out.
  void flushDelta(const History &H, const std::vector<TxnId> &Ready,
                  std::vector<Violation> &Out);

  // --- Speculative parallel saturation (streaming, CC only). ---

  /// Enables speculative offload of the CC happens-before/inference delta
  /// to \p Pool's workers (non-owning; nullptr disables). At each flush
  /// with at least \p MinBatch ready transactions, workers compute
  /// speculative rows and reader inferences against a read-only snapshot
  /// of the pre-merge state, and the sequential merge adopts a result only
  /// when EpochTracker proves its inputs unchanged — so the output stays
  /// bit-identical to the sequential path at every thread count, and the
  /// speculation never touches checkpoints (it is transient per-flush
  /// state). The pool must outlive the state or be reset to nullptr first.
  void setSpeculation(ThreadPool *Pool, size_t MinBatch = 16) {
    SpecPool = Pool;
    SpecMinBatch = MinBatch;
  }

  /// Rows whose speculative result was adopted verbatim at the merge /
  /// rows that fell back to sequential re-derivation. Host-local telemetry
  /// (varies with thread count): never serialized, never in summaries.
  uint64_t specAdoptedRows() const { return SpecAdoptedRows; }
  uint64_t specRecomputedRows() const { return SpecRecomputedRows; }
  /// Reader-inference edge sets adopted from speculation at the merge.
  uint64_t specAdoptedEdgeSets() const { return SpecAdoptedEdgeSets; }

  /// Host-local wall-clock spent inside the current/last flushDelta, in
  /// nanoseconds, split by phase. DeltaBuild/Speculate/Merge partition
  /// the pass; Pk overlaps them (it accumulates inside the edge-insertion
  /// / topological-order maintenance the other phases call into). Like
  /// the speculation counters this is telemetry only: never serialized,
  /// never part of a verdict or summary.
  struct FlushPhaseNanos {
    uint64_t DeltaBuild = 0;
    uint64_t Speculate = 0;
    uint64_t Merge = 0;
    uint64_t Pk = 0;
  };

  /// Returns and resets the phase accumulators — the Monitor drains them
  /// once per flush into the observability histograms (obs/histogram.h).
  FlushPhaseNanos takeFlushPhaseNanos() {
    FlushPhaseNanos R = PhaseNs;
    PhaseNs = FlushPhaseNanos();
    return R;
  }

  // --- Batch feeds. ---

  /// Runs the batch saturation kernels over the whole history — the
  /// single cold-start delta of the one-shot path. Level RC/RA/CC only;
  /// read-level axioms are the caller's job (they precede saturation in
  /// every algorithm).
  void coldStart(const History &H);

  /// Thread-safe bulk feed of packed inferred edges for the parallel
  /// engine's shard workers. Stripes are picked round-robin so concurrent
  /// workers rarely contend.
  void appendInferredBatch(const uint64_t *Edges, size_t Count);

  /// Batch CC helper: builds the base so ∪ wr commit graph of \p H —
  /// cached so finalizeAcyclic() reuses it instead of rebuilding — and
  /// returns a topological order of it, or nullopt (setting baseCyclic())
  /// when so ∪ wr is cyclic. \p H must be the same history later passed
  /// to finalizeAcyclic().
  std::optional<std::vector<uint32_t>> computeBaseOrder(const History &H);

  /// Canonical verdict over the complete history: rebuilds the commit
  /// graph from \p H, merges every inferred edge collected so far
  /// (canonicalized: sorted, deduplicated), and runs the same SCC pass and
  /// witness extraction as the batch checkers. Bit-identical to them for
  /// identical edge sets.
  bool finalizeAcyclic(const History &H, std::vector<Violation> &Out,
                       size_t MaxWitnesses, SaturationStats *Stats);

  // --- Eviction-aware compaction (streaming). ---

  /// Drops the transaction prefix [0, \p Cut) from every persisted
  /// structure and rebases the rest. Must run while \p H still holds the
  /// pre-eviction window (the caller rebases its History afterwards).
  void compact(const History &H, TxnId Cut);

  // --- Introspection. ---

  /// Distinct live inferred (non so/wr) co' edges.
  size_t numInferredEdges() const { return InferredDistinct; }
  /// Distinct live edges of the maintained commit relation (streaming).
  size_t numGraphEdges() const {
    return Order.numEdges() + Quarantined.size();
  }
  /// True once the base so ∪ wr relation itself closed a cycle (every
  /// level is violated; CC saturation stops — happens-before is
  /// undefined, exactly as in the batch checker).
  bool baseCyclic() const { return BaseCyclic; }

  // --- Checkpoint support (streaming; checker/checkpoint.h). ---

  /// Serializes every persisted streaming fact — edge refcounts, source
  /// lists, the dynamic order (verbatim: its internal positions steer
  /// later witness extraction), happens-before rows, writer index, RA
  /// frontiers. Unordered containers are dumped in sorted-key order so the
  /// bytes are canonical; list-valued state keeps its order verbatim.
  /// A non-null \p C (chunked checkpoint-v2 serialization) globalizes
  /// transaction ids and so-indices and emits chunk marks; loadState must
  /// be handed the same transform back. Null writes the v1 bytes.
  void saveState(ByteWriter &W, const StateCoords *C = nullptr) const;

  /// Restores a freshly constructed streaming state (same Level) from
  /// saveState() bytes. \p WindowBase is the global id of window-local 0
  /// (the monitor's eviction count) — it re-globalizes v1 bytes and seeds
  /// the lazy eviction filter. Returns false (with \p Err set) on
  /// corrupted or level-mismatched input.
  bool loadState(ByteReader &R, std::string *Err,
                 const StateCoords *C = nullptr, uint32_t WindowBase = 0);

private:
  // Source tags: the unit of work that contributed an edge. Re-running a
  // unit replaces exactly its contribution.
  static uint64_t rcSource(TxnId L) { return L; }
  static uint64_t raSource(SessionId S) { return (uint64_t(1) << 32) | S; }
  static uint64_t ccSource(TxnId L) { return (uint64_t(2) << 32) | L; }
  static uint64_t wrSource(TxnId L) { return (uint64_t(3) << 32) | L; }
  static uint64_t soSource(SessionId S) { return (uint64_t(4) << 32) | S; }
  static bool isPerTxnSource(uint64_t Source) {
    uint64_t Tag = Source >> 32;
    return Tag == 0 || Tag == 2 || Tag == 3;
  }

  // BySource coordinate bridge: callers and the live structures (Edges,
  // Order, ReadersOf) speak window-local ids; the tagged lists store
  // global ones. EvictedBase is the global id of local 0.
  uint64_t globalizeSource(uint64_t Source) const {
    return isPerTxnSource(Source) ? Source + EvictedBase : Source;
  }
  static uint64_t packedShift(uint32_t Base) {
    return (static_cast<uint64_t>(Base) << 32) | Base;
  }
  uint64_t globalizePacked(uint64_t Packed) const {
    return Packed + packedShift(EvictedBase);
  }
  uint64_t localizePacked(uint64_t GPacked) const {
    return GPacked - packedShift(EvictedBase);
  }
  /// True when either endpoint of a global packed edge was evicted — the
  /// entry is a tombstone every consumer skips.
  bool deadPacked(uint64_t GPacked) const {
    return static_cast<uint32_t>(GPacked >> 32) < EvictedBase ||
           static_cast<uint32_t>(GPacked) < EvictedBase;
  }

  /// Reference counts of one packed edge, split by provenance: base
  /// (so/wr) references keep the edge structural; inferred references come
  /// from the saturation kernels.
  struct EdgeRefs {
    uint32_t Base = 0;
    uint32_t Inferred = 0;
  };

  /// Persistent per-session incremental RA saturation state.
  struct RaSessionState {
    detail::RaScratch Scratch;
    /// First unprocessed position in the session's so list.
    size_t NextSo = 0;
    /// Set when retroactive re-resolution invalidated already-processed
    /// positions; the whole (windowed) session is re-run at next flush.
    bool NeedsFullRerun = false;
  };

  /// Per-key, per-writing-session so-ordered writer lists (Algorithm 3's
  /// Writes index), persisted and appended incrementally.
  struct KeyWriters {
    std::vector<SessionId> Sessions;
    std::vector<std::vector<detail::CcWriterEntry>> Lists;
  };

  void ensureSizes(const History &H);

  // Edge bookkeeping.
  void addSourceEdges(const History &H, uint64_t Source, bool IsBase,
                      const std::vector<uint64_t> &Edges,
                      std::vector<Violation> *Out);
  void clearSource(uint64_t Source, bool IsBase);
  void insertLive(const History &H, uint64_t Packed, bool IsBase,
                  std::vector<Violation> *Out);
  void removeLive(uint64_t Packed, bool IsBase);
  void retryQuarantined(const History &H);
  /// Clears BaseCyclic (scheduling a full happens-before recompute) once
  /// no quarantined edge with a base reference remains. Shared by the
  /// flush-time retry and eviction compaction.
  void maybeClearBaseCyclic();

  /// True iff \p To reaches \p From using only edges with a base
  /// reference (a so ∪ wr path). Decides CausalityCycle vs a mixed cycle
  /// whose base edge can stay live by quarantining an inferred edge.
  bool baseReaches(uint32_t SrcNode, uint32_t DstNode) const;

  Violation makeCycleViolation(const History &H, TxnId From, TxnId To,
                               const std::vector<uint32_t> &Path) const;
  EdgeKind classifyEdge(const History &H, TxnId From, TxnId To) const;

  // CC incremental pieces.
  void appendWriterEntries(const History &H, TxnId L);
  bool recomputeHbRow(const History &H, TxnId L);
  void runCcReader(const History &H, TxnId L,
                   std::vector<uint64_t> &Edges) const;
  /// The row-parameterized core of runCcReader: the per-key inference over
  /// an explicit happens-before row. Pure; speculation workers call it
  /// against their speculative rows while the writer index is quiescent.
  void runCcReaderRow(const History &H, TxnId L, const uint32_t *Row,
                      std::vector<uint64_t> &Edges) const;
  void setReaderWrEdges(const History &H, TxnId L,
                        std::vector<Violation> *Out);

  // Speculative parallel CC saturation. One CcSpeculation per ready
  // transaction of the flush; all state below is transient per-flush.
  struct CcSpeculation {
    /// The speculative happens-before row (HbStride entries).
    std::vector<uint32_t> Row;
    /// Speculative reader inferences over Row, sorted and deduplicated —
    /// exactly what the sequential path would derive from an equal row.
    std::vector<uint64_t> Edges;
    /// Rows read from the pre-merge snapshot; the result is stale if any
    /// of them was overwritten (epoch-stamped) before this merge step.
    std::vector<TxnId> ExternalInputs;
    /// Sibling speculations (same worker batch) whose rows were chained;
    /// valid only if each merged to exactly its speculative value.
    std::vector<TxnId> BatchInputs;
    /// Set during the merge: the row merged to exactly Row, so Edges is
    /// the sequential result and downstream chains stay valid.
    bool Matched = false;
  };
  using SpecMap = std::unordered_map<TxnId, CcSpeculation>;

  /// The speculation phase: partitions \p Ready by session, computes
  /// speculative rows (chained within a session) and reader inferences on
  /// the pool, against the quiescent pre-merge state. Runs strictly
  /// between the base-edge/writer-index loop and the merge.
  void speculateCc(const History &H, const std::vector<TxnId> &Ready,
                   SpecMap &Spec);
  /// The sequential merge step for one row: adopts the validated
  /// speculative row or falls back to recomputeHbRow. Returns whether the
  /// persisted row changed; stamps RowEpochs on change.
  bool mergeHbRow(const History &H, TxnId L, SpecMap *Spec);
  void propagateHappensBefore(const History &H,
                              const std::vector<TxnId> &Ready,
                              std::vector<TxnId> &ChangedOut, SpecMap *Spec);

  const IsolationLevel Level;
  const Mode EngineMode;
  size_t NumSessions = 0;
  bool BaseCyclic = false;
  /// Set by compact() when evictions broke a base cycle: every live row is
  /// recomputed at the next flush.
  bool NeedsFullHbRecompute = false;

  // --- Persistent streaming state. ---

  /// The dynamically ordered commit relation (distinct live edges).
  IncrementalTopoOrder Order;
  /// Refcounts of the persisted edge set, keyed by the packed (src, dst)
  /// pair. A flat open-addressing table: every flush hits this once or
  /// twice per delta edge, which made node-based hashing the dominant
  /// per-flush cost (ROADMAP follow-up from PR 3).
  PackedEdgeMap<EdgeRefs> Edges;
  /// Source-tagged edge lists in *global* stream coordinates (keys of
  /// per-transaction tags and every packed endpoint are global ids, never
  /// rebased). A per-transaction list is immutable once written: eviction
  /// drops whole evicted sources and leaves tombstone entries (an evicted
  /// endpoint) in surviving lists for consumers to skip via deadPacked().
  /// Per-session lists (RA contributions, so chains) are long-lived and
  /// are pruned/rebuilt at compaction instead. The refcounted Edges map is
  /// always the filtered refcount image of these lists — which is why the
  /// chunked checkpoint derives it at load instead of persisting it.
  std::unordered_map<uint64_t, std::vector<uint64_t>> BySource;
  /// Global id of window-local transaction 0 (total evicted count); the
  /// BySource coordinate base and lazy eviction filter.
  uint32_t EvictedBase = 0;
  /// Edges with live references that are kept out of the order because
  /// inserting them closed a cycle (reported when first quarantined).
  std::unordered_set<uint64_t> Quarantined;
  size_t InferredDistinct = 0;

  /// First-processing flag per transaction (so-chain edge added, writer
  /// entries appended).
  std::vector<uint8_t> Processed;
  /// Readers currently holding a wr edge from each transaction, for
  /// happens-before dirty propagation.
  std::vector<std::vector<TxnId>> ReadersOf;

  /// Persisted exclusive happens-before clock rows, row-major with stride
  /// HbStride (grown geometrically as sessions are added).
  std::vector<uint32_t> HbRows;
  size_t HbStride = 0;
  std::vector<uint32_t> TmpRow;

  std::unordered_map<Key, KeyWriters> Writers;
  std::vector<RaSessionState> RaStates;
  detail::RcScratch RcScratchState;

  // --- Speculation (transient; never serialized). ---

  /// Non-owning executor for the speculation phase; nullptr = sequential.
  ThreadPool *SpecPool = nullptr;
  size_t SpecMinBatch = 16;
  /// Which happens-before rows the current merge has overwritten — the
  /// validation oracle for adopting speculative results.
  EpochTracker RowEpochs;
  uint64_t SpecAdoptedRows = 0;
  uint64_t SpecRecomputedRows = 0;
  uint64_t SpecAdoptedEdgeSets = 0;
  FlushPhaseNanos PhaseNs;

  // --- Batch-mode edge collection. ---

  std::vector<uint64_t> BatchEdges;
  /// Base commit graph built by computeBaseOrder(), reused by
  /// finalizeAcyclic() so the CC paths construct it only once.
  std::optional<CommitGraph> CachedBase;
  static constexpr size_t NumStripes = 64;
  struct Stripe {
    std::mutex Mutex;
    std::vector<uint64_t> Buf;
  };
  std::array<Stripe, NumStripes> Stripes;
  std::atomic<size_t> NextStripe{0};
};

} // namespace awdit

#endif // AWDIT_CHECKER_SATURATION_STATE_H
