//===- checker/commit_graph.cpp - The partial commit relation co' ----------===//

#include "checker/commit_graph.h"

#include "graph/cycle.h"
#include "graph/scc.h"
#include "support/assert.h"

#include <algorithm>

using namespace awdit;

CommitGraph::CommitGraph(const History &H) : H(H), G(H.numTxns()) {
  // so: the per-session successor chain is the transitive reduction of the
  // session order; transitivity is implicit in reachability.
  for (SessionId S = 0; S < H.numSessions(); ++S) {
    const std::vector<TxnId> &Sess = H.sessionTxns(S);
    for (size_t I = 0; I + 1 < Sess.size(); ++I)
      G.addEdge(Sess[I], Sess[I + 1]);
  }
  // wr on distinct committed transactions: Writer -> Reader. ReadFroms is
  // already deduplicated per reader; an occasional parallel edge with the
  // so chain is harmless for SCC and witness extraction.
  for (TxnId Id = 0; Id < H.numTxns(); ++Id) {
    const Transaction &T = H.txn(Id);
    if (!T.Committed)
      continue;
    for (TxnId Writer : T.ReadFroms)
      G.addEdge(Writer, Id);
  }
}

void CommitGraph::flushInferred() {
  if (Pending.empty())
    return;
  std::sort(Pending.begin(), Pending.end());
  uint64_t Prev = ~uint64_t(0);
  for (uint64_t Packed : Pending) {
    if (Packed == Prev)
      continue;
    Prev = Packed;
    if (Inferred.insert(Packed).second)
      G.addEdge(static_cast<uint32_t>(Packed >> 32),
                static_cast<uint32_t>(Packed));
  }
  Pending.clear();
}

EdgeKind CommitGraph::classifyEdge(TxnId From, TxnId To) const {
  if (H.txn(From).Committed && H.soSuccessor(From) == To)
    return EdgeKind::So;
  for (TxnId Writer : H.txn(To).ReadFroms)
    if (Writer == From)
      return EdgeKind::Wr;
  return EdgeKind::Inferred;
}

bool CommitGraph::checkAcyclic(std::vector<Violation> &Out,
                               size_t MaxWitnesses) {
  flushInferred();
  SccResult Scc = computeScc(G);
  if (Scc.acyclic())
    return true;

  if (MaxWitnesses == 0) {
    // Caller only wants the verdict; report one unlabelled violation.
    Out.push_back({ViolationKind::CommitOrderCycle, NoTxn, NoOp, NoTxn, {}});
    return false;
  }

  // Group nodes by cyclic component (one witness per SCC, §3.4).
  std::vector<std::vector<uint32_t>> Members(Scc.NumComps);
  for (uint32_t U = 0; U < G.numNodes(); ++U)
    Members[Scc.CompOf[U]].push_back(U);

  auto Weight = [this](uint32_t From, uint32_t To) -> unsigned {
    return classifyEdge(From, To) == EdgeKind::Inferred ? 1 : 0;
  };

  size_t Reported = 0;
  for (uint32_t Comp : Scc.CyclicComps) {
    if (Reported++ >= MaxWitnesses)
      break;
    std::vector<CycleEdge> Cycle =
        extractCycle(G, Scc.CompOf, Comp, Members[Comp], Weight);
    Violation V;
    V.Kind = ViolationKind::CausalityCycle;
    for (const CycleEdge &E : Cycle) {
      EdgeKind Kind = classifyEdge(E.From, E.To);
      if (Kind == EdgeKind::Inferred)
        V.Kind = ViolationKind::CommitOrderCycle;
      V.Cycle.push_back({E.From, E.To, Kind});
    }
    Out.push_back(std::move(V));
  }
  return false;
}
