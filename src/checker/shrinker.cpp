//===- checker/shrinker.cpp - Violation shrinking ----------------------------===//

#include "checker/shrinker.h"

#include "history/history_builder.h"
#include "support/assert.h"

#include <unordered_map>

using namespace awdit;

namespace {

/// Rebuilds a history from the kept transactions of \p Base. Reads whose
/// writer transaction was dropped are dropped too (keeping wr resolvable),
/// as are reads masked by \p KeepOp = false.
std::optional<History>
rebuild(const History &Base, const std::vector<bool> &KeepTxn,
        const std::vector<std::vector<bool>> *KeepOp = nullptr) {
  HistoryBuilder B;
  for (SessionId S = 0; S < Base.numSessions(); ++S)
    B.addSession();

  for (TxnId Id = 0; Id < Base.numTxns(); ++Id) {
    if (!KeepTxn[Id])
      continue;
    const Transaction &T = Base.txn(Id);
    // Writer of each read op, from the base history's resolution.
    std::unordered_map<uint32_t, TxnId> WriterOfOp;
    for (const ReadInfo &RI : T.Reads)
      WriterOfOp[RI.OpIndex] = RI.Writer;

    TxnId New = B.beginTxn(T.Session);
    for (uint32_t OpIdx = 0; OpIdx < T.Ops.size(); ++OpIdx) {
      const Operation &Op = T.Ops[OpIdx];
      if (Op.isRead()) {
        TxnId Writer = WriterOfOp[OpIdx];
        // Drop reads from dropped transactions (writer == own id stays:
        // internal reads never dangle).
        if (Writer != NoTxn && Writer != Id && !KeepTxn[Writer])
          continue;
        if (KeepOp && !(*KeepOp)[Id][OpIdx])
          continue;
      }
      B.append(New, Op);
    }
    if (!T.Committed)
      B.abortTxn(New);
  }
  return B.build();
}

/// Returns true if the rebuilt selection still violates Level.
bool stillViolates(const History &Base, const std::vector<bool> &KeepTxn,
                   const std::vector<std::vector<bool>> *KeepOp,
                   IsolationLevel Level, size_t &Checks) {
  ++Checks;
  std::optional<History> H = rebuild(Base, KeepTxn, KeepOp);
  if (!H)
    return false; // Should not happen; treat as failed candidate.
  CheckOptions Fast;
  Fast.MaxWitnesses = 0;
  return !checkIsolation(*H, Level, Fast).Consistent;
}

} // namespace

ShrinkResult awdit::shrinkViolation(const History &H, IsolationLevel Level,
                                    const ShrinkOptions &Options) {
  ShrinkResult Res;
  Res.TxnsBefore = H.numTxns();

  std::vector<bool> Keep(H.numTxns(), true);
  size_t Checks = 0;
  {
    CheckOptions Fast;
    Fast.MaxWitnesses = 0;
    ++Checks;
    AWDIT_ASSERT(!checkIsolation(H, Level, Fast).Consistent,
                 "shrinkViolation requires an inconsistent history");
  }

  // ddmin over transactions: try removing chunks, halving the chunk size
  // until 1-minimal or out of budget.
  size_t Alive = H.numTxns();
  for (size_t Chunk = std::max<size_t>(1, Alive / 2); Chunk >= 1;
       Chunk = Chunk / 2) {
    bool Progress = true;
    while (Progress && Checks < Options.MaxChecks) {
      Progress = false;
      for (size_t Start = 0; Start < H.numTxns(); Start += Chunk) {
        if (Checks >= Options.MaxChecks)
          break;
        // Tentatively drop [Start, Start+Chunk).
        std::vector<TxnId> Dropped;
        for (size_t I = Start;
             I < std::min<size_t>(Start + Chunk, H.numTxns()); ++I) {
          if (Keep[I]) {
            Keep[I] = false;
            Dropped.push_back(static_cast<TxnId>(I));
          }
        }
        if (Dropped.empty())
          continue;
        if (stillViolates(H, Keep, nullptr, Level, Checks)) {
          Progress = true;
        } else {
          for (TxnId I : Dropped)
            Keep[I] = true;
        }
      }
    }
    if (Chunk == 1)
      break;
  }

  // Optional op-level pass: drop individual reads of survivors.
  std::vector<std::vector<bool>> KeepOp(H.numTxns());
  for (TxnId Id = 0; Id < H.numTxns(); ++Id)
    KeepOp[Id].assign(H.txn(Id).Ops.size(), true);
  if (Options.ShrinkOps) {
    for (TxnId Id = 0; Id < H.numTxns() && Checks < Options.MaxChecks;
         ++Id) {
      if (!Keep[Id])
        continue;
      const Transaction &T = H.txn(Id);
      for (uint32_t OpIdx = 0; OpIdx < T.Ops.size(); ++OpIdx) {
        if (!T.Ops[OpIdx].isRead())
          continue;
        if (Checks >= Options.MaxChecks)
          break;
        KeepOp[Id][OpIdx] = false;
        if (!stillViolates(H, Keep, &KeepOp, Level, Checks))
          KeepOp[Id][OpIdx] = true;
      }
    }
  }

  std::optional<History> Final = rebuild(H, Keep, &KeepOp);
  AWDIT_ASSERT(Final.has_value(), "shrunk history must rebuild");
  Res.Shrunk = std::move(*Final);
  Res.ChecksUsed = Checks;
  Res.TxnsAfter = Res.Shrunk.numTxns();
  return Res;
}
