//===- checker/checkpoint.h - Persistent monitor checkpoints -----*- C++ -*-===//
//
// Part of the AWDIT reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Persistent checkpoints for the streaming Monitor: a versioned binary
/// snapshot of the complete monitoring state — the live window, the
/// incremental wr resolution, the saturation engine (including its dynamic
/// topological order, verbatim), the exactly-once delivery state, the
/// format parser's machine state, and the byte offset of the stream — so
/// `awdit monitor --resume <dir>` can restart mid-stream and emit exactly
/// the violations a never-killed monitor would have emitted after the
/// checkpoint (enforced by tests/test_checkpoint.cpp and the CI
/// kill-and-resume smoke).
///
/// On-disk format (all integers little-endian):
///
///   [u32 magic "AWCP"] [u32 version] [u64 payload size] [u64 FNV-1a
///   checksum of payload] [payload]
///
///   payload := meta (format string, MonitorOptions, stream cursor)
///            | machine-state blob (length-prefixed, format-specific)
///            | monitor-state blob (Monitor::saveState)
///
/// Two checkpoint formats coexist:
///
///   - **v1 (monolithic file)**: the framed blob above, rewritten whole on
///     every checkpoint via temp file + rename. Simple, single-file, O(state)
///     write cost per checkpoint.
///   - **v2 (segment store)**: the same logical payload, cut at stable chunk
///     boundaries (ChunkMark) and persisted in an append-only mmap-backed
///     SegmentStore (store/segment_store.h). Chunk contents are expressed in
///     *global* stream coordinates (see StateCoords in support/serialize.h),
///     so window eviction's id rebasing does not dirty untouched chunks and
///     a checkpoint appends only what changed — O(delta), not O(state). The
///     store's fsync'd root record plays the role of the rename.
///
/// Compatibility policy, per format: the version bumps on any layout
/// change; a reader only accepts its own version (checkpoints are
/// operational state, not archival data — a monitor restart across an
/// awdit upgrade re-reads the stream instead). The two formats version
/// independently: v1 files carry CheckpointVersion, store roots carry
/// CheckpointStoreVersion, and `--resume` tells them apart by what is on
/// disk (a store directory vs. a checkpoint.bin), so a v1 checkpoint stays
/// readable by a build that also writes v2 stores. Truncated or corrupted
/// state fails with a clear error, never UB: every count is bounds-checked
/// against the remaining payload and checksums cover every payload (the v1
/// envelope checksum; per-chunk and per-root FNV-1a in the store). v1
/// writes go to a temp file first and rename() into place; v2 commits
/// publish a root only after the chunks it references are durable — either
/// way a kill mid-write leaves the previous checkpoint intact.
///
/// What counts as "layout": only durable logical state. The speculative
/// saturation machinery of PR 6 (per-flush epoch stamps, speculative rows
/// and edge buffers, adoption counters) is transient within one flush and
/// deliberately serialized nowhere, so enabling or disabling speculation —
/// or resuming on a machine with a different thread count — reads and
/// writes the same version-1 bytes. If epoch metadata ever becomes
/// persistent (e.g. cross-flush snapshot reuse), that is a layout change
/// and must bump CheckpointVersion.
///
/// The monitor/machine serialization lives with the classes themselves
/// (Monitor::saveState, StreamMachine::saveState); this header owns the
/// envelope, the meta block, and the file I/O.
///
//===----------------------------------------------------------------------===//

#ifndef AWDIT_CHECKER_CHECKPOINT_H
#define AWDIT_CHECKER_CHECKPOINT_H

#include "checker/monitor.h"

#include <memory>
#include <string>
#include <string_view>

namespace awdit {

/// The checkpoint envelope version this build writes and reads.
inline constexpr uint32_t CheckpointVersion = 1;

/// Everything a resume needs before (and besides) the monitor state
/// itself: how the monitor was configured, which format the stream is in,
/// and where in the stream the snapshot was taken.
struct CheckpointMeta {
  /// Stream format: "native", "plume", or "dbcop".
  std::string Format;
  /// The monitor configuration at checkpoint time. A resume must run with
  /// exactly these options — the CLI rejects incompatible flags.
  MonitorOptions Options;
  /// Bytes of the stream fully applied; resume seeks here.
  uint64_t StreamOffset = 0;
  /// 1-based number of the last applied line.
  uint64_t LineNo = 0;
  /// Committed transactions applied so far.
  uint64_t CommittedTxns = 0;
  /// Checking passes run so far.
  uint64_t Flushes = 0;
};

/// Serializes \p M plus the format machine state \p MachineState (opaque
/// bytes from StreamMachine::saveState) under \p Meta into one framed,
/// checksummed checkpoint blob.
std::string encodeCheckpoint(const Monitor &M, std::string_view MachineState,
                             const CheckpointMeta &Meta);

/// Validates the envelope (magic, version, size, checksum) and parses the
/// meta block. Cheap relative to a full restore; the CLI uses it to check
/// flag compatibility before constructing the monitor.
bool decodeCheckpointMeta(std::string_view Blob, CheckpointMeta &Meta,
                          std::string *Err);

/// Restores the full state into \p M (freshly constructed with
/// Meta.Options) and hands back the machine-state bytes for
/// StreamMachine::loadState. Validates the envelope again — callers may
/// skip decodeCheckpointMeta.
bool restoreCheckpoint(std::string_view Blob, Monitor &M,
                       std::string &MachineState, std::string *Err);

/// The checkpoint file inside \p Dir (the single-stream `awdit monitor`
/// layout: one checkpoint per directory).
std::string checkpointFilePath(const std::string &Dir);

/// Encodes a client-chosen stream id into a string safe to use as a file
/// name: [A-Za-z0-9._-] pass through (a leading '.' is encoded so a name
/// can never be hidden or traverse upward), everything else — slashes, NUL,
/// control bytes, spaces — becomes %XX. Injective on case-sensitive
/// filesystems (the server's supported deployment target), so distinct
/// stream ids cannot collide on one checkpoint file; on a case-folding
/// filesystem ids differing only in letter case would share files.
std::string sanitizeStreamName(std::string_view Name);

/// The checkpoint file of stream \p Stream inside \p Dir — the multi-tenant
/// server layout: one file per stream, named
/// `<dir>/<sanitized-stream>.ckpt`.
std::string checkpointFilePathFor(const std::string &Dir,
                                  std::string_view Stream);

/// Writes \p Blob atomically (temp file + rename) to \p Path, creating the
/// parent directory if needed.
bool writeCheckpointFileAt(const std::string &Path, std::string_view Blob,
                           std::string *Err);

/// Reads the checkpoint file at \p Path into \p Blob.
bool readCheckpointFileAt(const std::string &Path, std::string &Blob,
                          std::string *Err);

/// Writes \p Blob atomically (temp file + rename) as \p Dir's checkpoint,
/// creating \p Dir if needed.
bool writeCheckpointFile(const std::string &Dir, std::string_view Blob,
                         std::string *Err);

/// Reads \p Dir's checkpoint file into \p Blob.
bool readCheckpointFile(const std::string &Dir, std::string &Blob,
                        std::string *Err);

//===----------------------------------------------------------------------===//
// Store-backed checkpoints (format v2)
//===----------------------------------------------------------------------===//

namespace store {
class SegmentStore;
} // namespace store

/// The store-backed checkpoint format version. Versioned independently of
/// the v1 file format: bumps on any change to the root meta blob layout or
/// the chunked monitor-state encoding.
inline constexpr uint32_t CheckpointStoreVersion = 2;

/// A checkpoint writer/reader over an append-only segment store: each
/// write() appends only the chunks whose bytes changed since the last
/// committed root (the store hash-gates unchanged chunks), then publishes
/// an fsync'd root whose meta blob carries everything restore needs
/// out-of-band — the CheckpointMeta, the format machine state, and the
/// coordinate bases (window id base, per-session so bases) that globalize
/// the chunk contents. Crash recovery is the store's: the last valid root
/// wins, torn tails are truncated.
class StoreCheckpointer {
public:
  StoreCheckpointer();
  ~StoreCheckpointer();
  StoreCheckpointer(const StoreCheckpointer &) = delete;
  StoreCheckpointer &operator=(const StoreCheckpointer &) = delete;

  /// Opens (creating if needed) the store at \p Dir for checkpointing.
  bool open(const std::string &Dir, std::string *Err);

  /// True when the opened store has a committed checkpoint to resume from.
  bool hasCheckpoint() const;

  /// Parses the CheckpointMeta from the current root. Cheap relative to a
  /// full restore; the CLI uses it to check flag compatibility before
  /// constructing the monitor.
  bool readMeta(CheckpointMeta &Meta, std::string *Err) const;

  /// Restores the full state into \p M (freshly constructed with the meta's
  /// Options) and hands back the machine-state bytes for
  /// StreamMachine::loadState.
  bool restore(Monitor &M, std::string &MachineState, std::string *Err) const;

  /// Checkpoints \p M: slices the chunked state at its marks, commits the
  /// changed chunks plus a fresh root. Durable once it returns true.
  bool write(const Monitor &M, std::string_view MachineState,
             const CheckpointMeta &Meta, std::string *Err);

  /// Bytes physically appended across all write() calls — changed chunk
  /// frames plus the root record each commit publishes. This is the full
  /// per-checkpoint write cost the O(delta) bench meters: unchanged state
  /// contributes only its root-table entry (a few dozen bytes per chunk),
  /// never its payload.
  uint64_t bytesAppended() const;
  uint64_t commits() const;

  /// True when \p Dir looks like a segment store (has a root log), i.e.
  /// `--resume` should take the v2 path instead of reading checkpoint.bin.
  static bool isStoreDir(const std::string &Dir);

private:
  std::unique_ptr<store::SegmentStore> Store;
};

/// Parses the CheckpointMeta out of a store root meta blob (the bytes
/// SegmentStore::rootMeta() returns) without touching the store — for
/// read-only inspectors like `awdit-store stats`.
bool decodeStoreCheckpointMeta(std::string_view MetaBlob,
                               CheckpointMeta &Meta, std::string *Err);

/// The checkpoint store directory of stream \p Stream inside \p Dir — the
/// multi-tenant server layout: one store per stream, named
/// `<dir>/<sanitized-stream>.store`.
std::string checkpointStoreDirFor(const std::string &Dir,
                                  std::string_view Stream);

/// Recursively removes a checkpoint store directory (used when a stream
/// ends cleanly and its state is no longer needed). Refuses to remove a
/// directory that does not look like a store.
bool removeStoreDir(const std::string &Dir, std::string *Err);

} // namespace awdit

#endif // AWDIT_CHECKER_CHECKPOINT_H
