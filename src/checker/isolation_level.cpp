//===- checker/isolation_level.cpp - Isolation levels ----------------------===//

#include "checker/isolation_level.h"

#include "support/assert.h"

#include <algorithm>
#include <string>

using namespace awdit;

const char *awdit::isolationLevelName(IsolationLevel Level) {
  switch (Level) {
  case IsolationLevel::ReadCommitted:
    return "RC";
  case IsolationLevel::ReadAtomic:
    return "RA";
  case IsolationLevel::CausalConsistency:
    return "CC";
  }
  awditUnreachable("unknown isolation level");
}

bool awdit::isAtLeastAsStrongAs(IsolationLevel A, IsolationLevel B) {
  auto Rank = [](IsolationLevel L) {
    switch (L) {
    case IsolationLevel::CausalConsistency:
      return 0;
    case IsolationLevel::ReadAtomic:
      return 1;
    case IsolationLevel::ReadCommitted:
      return 2;
    }
    awditUnreachable("unknown isolation level");
  };
  return Rank(A) <= Rank(B);
}

std::optional<IsolationLevel>
awdit::parseIsolationLevel(std::string_view Text) {
  std::string Lower(Text);
  std::transform(Lower.begin(), Lower.end(), Lower.begin(),
                 [](unsigned char C) { return std::tolower(C); });
  if (Lower == "rc" || Lower == "read-committed" || Lower == "readcommitted")
    return IsolationLevel::ReadCommitted;
  if (Lower == "ra" || Lower == "read-atomic" || Lower == "readatomic")
    return IsolationLevel::ReadAtomic;
  if (Lower == "cc" || Lower == "causal" || Lower == "causal-consistency" ||
      Lower == "causalconsistency")
    return IsolationLevel::CausalConsistency;
  return std::nullopt;
}
