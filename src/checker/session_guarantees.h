//===- checker/session_guarantees.h - Session guarantees ----------*- C++ -*-===//
//
// Part of the AWDIT reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Testers for the classic session guarantees (Terry et al. 1994) in the
/// paper's saturation framework — the "other isolation levels" extension
/// its conclusion calls for. Each guarantee is an axiom of the Fig. 3
/// shape (a premise over so/wr forcing a co edge), so the minimal-
/// saturation methodology applies unchanged, and Theorem 1.3's n^{3/2}
/// lower bound covers any such level sandwiched between CC and RC.
///
/// Formalized over black-box histories (observation = direct wr
/// predecessor):
///
///  - Read-Your-Writes: if t2 -so-> t3, t2 writes x, and t3 reads x from
///    t1 != t2, then t2 co-> t1. (Exactly the so case of the RA axiom.)
///  - Monotonic Reads: if an so-earlier transaction of t3's session read
///    from some t2 that writes x, and t3 reads x from t1 != t2, then
///    t2 co-> t1 (sessions never observe x going backwards).
///
/// Both are implied by CC and independent of RC/RA's remaining clauses.
///
//===----------------------------------------------------------------------===//

#ifndef AWDIT_CHECKER_SESSION_GUARANTEES_H
#define AWDIT_CHECKER_SESSION_GUARANTEES_H

#include "checker/check_rc.h"
#include "checker/violation.h"
#include "history/history.h"

#include <optional>
#include <string_view>
#include <vector>

namespace awdit {

/// The supported session guarantees.
enum class SessionGuarantee : uint8_t {
  ReadYourWrites,
  MonotonicReads,
};

const char *sessionGuaranteeName(SessionGuarantee G);
std::optional<SessionGuarantee>
parseSessionGuarantee(std::string_view Text);

/// Checks whether \p H satisfies \p G (plus Read Consistency). Appends
/// violations to \p Out; returns true iff consistent. Runs in O(n + W)
/// time, where W bounds the write-key lists of observed transactions.
bool checkSessionGuarantee(const History &H, SessionGuarantee G,
                           std::vector<Violation> &Out,
                           size_t MaxWitnesses = 16,
                           SaturationStats *Stats = nullptr);

} // namespace awdit

#endif // AWDIT_CHECKER_SESSION_GUARANTEES_H
