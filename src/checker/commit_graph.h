//===- checker/commit_graph.h - The partial commit relation co' ---*- C++ -*-===//
//
// Part of the AWDIT reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Container for the saturated, minimal partial commit relation co'
/// (Definition 3.1): the base so ∪ wr edges plus the inferred edges the
/// isolation-level algorithms add. Acyclicity is decided with one Tarjan
/// pass; witness cycles (one per SCC, minimizing inferred edges, §3.4) are
/// extracted on demand.
///
/// Construction is allocation-lean on purpose: base edges are plain
/// adjacency pushes (no hashing), and edges are classified structurally
/// (so-successor / read-froms membership) only when a witness is actually
/// extracted — the common consistent-history path never pays for it.
///
//===----------------------------------------------------------------------===//

#ifndef AWDIT_CHECKER_COMMIT_GRAPH_H
#define AWDIT_CHECKER_COMMIT_GRAPH_H

#include "checker/violation.h"
#include "graph/digraph.h"
#include "history/history.h"
#include "support/assert.h"

#include <unordered_set>
#include <vector>

namespace awdit {

/// The partial commit relation co' over committed transactions.
///
/// Construction seeds the graph with so (as per-session successor chains —
/// the transitive reduction of so) and txn-level wr edges; checker
/// algorithms then add inferred edges via inferEdge().
class CommitGraph {
public:
  explicit CommitGraph(const History &H);

  /// Records the inferred ordering \p From co'-> \p To. Calls are cheap
  /// (a vector push); duplicates are merged lazily at flush time so the
  /// saturation hot loops never hash. Both ids must be committed
  /// transactions.
  void inferEdge(TxnId From, TxnId To) {
    AWDIT_ASSERT(From != To, "inferEdge: self edge is a trivial cycle");
    Pending.push_back(packEdge(From, To));
  }

  /// Packs an inferred edge for inferEdge-style bulk storage. The shared
  /// packed-edge convention of the whole checker layer (the parallel
  /// engine's batches and the incremental saturation state use it too).
  static uint64_t packEdge(TxnId From, TxnId To) {
    return (static_cast<uint64_t>(From) << 32) | To;
  }

  /// Number of distinct inferred edges added so far (flushes pending).
  size_t numInferredEdges() {
    flushInferred();
    return Inferred.size();
  }

  /// Number of edges in the underlying graph (so + wr + inferred).
  size_t numEdges() const { return G.numEdges() + Pending.size(); }

  /// Checks co' for cycles. Appends at most \p MaxWitnesses violations to
  /// \p Out (one witness cycle per cyclic SCC). A cycle that uses only
  /// so/wr edges is classified as CausalityCycle, otherwise as
  /// CommitOrderCycle. Returns true iff co' is acyclic.
  bool checkAcyclic(std::vector<Violation> &Out, size_t MaxWitnesses);

  /// Access to the underlying digraph (nodes = TxnIds). Flushes pending
  /// inferred edges so the view is complete.
  const Digraph &graph() {
    flushInferred();
    return G;
  }

private:
  /// Classifies an edge for witness labelling (structural, O(deg) for wr).
  EdgeKind classifyEdge(TxnId From, TxnId To) const;

  /// Merges the pending inferred edges into the graph, deduplicated.
  void flushInferred();

  const History &H;
  Digraph G;
  /// Raw (possibly duplicated) inferred edges awaiting the flush.
  std::vector<uint64_t> Pending;
  /// Packed (From, To) pairs of flushed inferred edges.
  std::unordered_set<uint64_t> Inferred;
};

} // namespace awdit

#endif // AWDIT_CHECKER_COMMIT_GRAPH_H
