//===- checker/monitor.cpp - Streaming online-checking session -------------===//

#include "checker/monitor.h"

#include "checker/check_ra.h"
#include "checker/read_consistency.h"
#include "support/assert.h"

#include <algorithm>

using namespace awdit;

namespace {

const char *edgeKindName(EdgeKind Kind) {
  switch (Kind) {
  case EdgeKind::So:
    return "so";
  case EdgeKind::Wr:
    return "wr";
  case EdgeKind::Inferred:
    return "co'";
  }
  return "?";
}

} // namespace

Monitor::Monitor(const MonitorOptions &Options, ViolationSink *Sink)
    : Opts(Options), Sink(Sink),
      Saturation(Options.Level, SaturationState::Mode::Streaming) {}

SessionId Monitor::addSession() {
  Live.Sessions.emplace_back();
  SessionSoBase.push_back(0);
  Saturation.addSession();
  return static_cast<SessionId>(Live.Sessions.size() - 1);
}

TxnId Monitor::toLocal(TxnId MonitorId) const {
  AWDIT_ASSERT(MonitorId >= Base &&
                   MonitorId - Base < Live.Txns.size(),
               "Monitor: unknown or evicted transaction id");
  return MonitorId - Base;
}

TxnId Monitor::beginTxn(SessionId S) {
  AWDIT_ASSERT(S < Live.Sessions.size(), "beginTxn: unknown session");
  AWDIT_ASSERT(!Finalized, "beginTxn: monitor already finalized");
  ensureAdoptedIndex();
  Transaction T;
  T.Session = S;
  // Open transactions are not yet part of T_c: Committed flips on commit().
  T.Committed = false;
  Live.Txns.push_back(std::move(T));
  Meta.push_back(TxnMeta{/*Open=*/true, /*Deferred=*/false,
                         /*Ts=*/CurrentTime});
  TxnId Local = static_cast<TxnId>(Live.Txns.size() - 1);
  OpenTxns.insert(Local);
  ++Stats.IngestedTxns;
  return toMonitorId(Local);
}

void Monitor::read(TxnId T, Key K, Value V) {
  append(T, Operation::read(K, V));
}

bool Monitor::write(TxnId T, Key K, Value V) {
  return append(T, Operation::write(K, V));
}

bool Monitor::append(TxnId T, Operation Op) {
  if (ForceAbortedIds.count(T))
    return true; // the hung transaction was force-aborted; drop quietly
  TxnId L = toLocal(T);
  AWDIT_ASSERT(Meta[L].Open, "append: transaction already closed");
  Keys.insert(Op.K);
  Live.KeyCount = Keys.size();
  if (Op.isWrite()) {
    uint32_t OpIdx = static_cast<uint32_t>(Live.Txns[L].Ops.size());
    if (!Writes.record(Op.K, Op.V, L, OpIdx)) {
      if (ErrText.empty())
        ErrText = duplicateWriteMessage(Op.K, Op.V);
      return false;
    }
    // Retroactive resolution: readers that closed before this write
    // arrived re-derive at the next checking pass.
    auto It = PendingReads.find(KeyValue{Op.K, Op.V});
    if (It != PendingReads.end()) {
      for (auto [Reader, ReadOp] : It->second) {
        (void)ReadOp;
        Dirty.insert(Reader);
        --Stats.UnresolvedReads;
      }
      PendingReads.erase(It);
    }
  }
  Live.Txns[L].Ops.push_back(Op);
  ++Live.TotalOps;
  ++Stats.IngestedOps;
  return true;
}

void Monitor::commit(TxnId T) {
  if (ForceAbortedIds.count(T))
    return; // already aborted by the force-abort policy
  closeTxn(toLocal(T), /*Committed=*/true);
}

void Monitor::abortTxn(TxnId T) {
  if (ForceAbortedIds.count(T))
    return; // already aborted by the force-abort policy
  closeTxn(toLocal(T), /*Committed=*/false);
}

void Monitor::advanceTime(uint64_t Now) {
  if (!HasTime) {
    // First timestamp: everything ingested so far predates the clock, so
    // its lifecycle times are unknown. Anchor them here — otherwise a
    // stream whose ticks start at a large absolute value (epoch millis)
    // would instantly age out, or force-abort, transactions that are
    // seconds old.
    HasTime = true;
    CurrentTime = Now;
    for (TxnMeta &M : Meta)
      M.Ts = Now;
    return;
  }
  if (Now > CurrentTime)
    CurrentTime = Now;
}

void Monitor::closeTxn(TxnId Local, bool Committed) {
  AWDIT_ASSERT(Meta[Local].Open, "closeTxn: transaction already closed");
  Meta[Local].Open = false;
  Meta[Local].Ts = CurrentTime;
  OpenTxns.erase(Local);
  Transaction &Txn = Live.Txns[Local];
  Txn.Committed = Committed;
  if (Committed) {
    std::vector<TxnId> &Sess = Live.Sessions[Txn.Session];
    Txn.SoIndex = static_cast<uint32_t>(Sess.size());
    Sess.push_back(Local);
    ++Live.CommittedCount;
    ++Stats.CommittedTxns;
  }

  // Resolve this transaction's reads and schedule its checking.
  if (!deriveTxn(Local))
    Meta[Local].Deferred = true;
  Dirty.insert(Local);

  // Wake readers that resolved to this transaction while it was open:
  // its commit status is now known.
  auto It = WaitersOnClose.find(Local);
  if (It != WaitersOnClose.end()) {
    for (TxnId Reader : It->second)
      Dirty.insert(Reader);
    WaitersOnClose.erase(It);
  }

  if (Committed && Opts.CheckIntervalTxns &&
      ++CommitsSinceFlush >= Opts.CheckIntervalTxns)
    flush(/*Final=*/false);
}

bool Monitor::deriveTxn(TxnId Local) {
  Transaction &T = Live.Txns[Local];
  T.Reads.clear();

  std::vector<Key> WrittenKeys;
  bool AllWritersClosed = true;
  uint64_t ReaderTag = static_cast<uint64_t>(toMonitorId(Local)) << 32;

  for (uint32_t OpIdx = 0; OpIdx < T.Ops.size(); ++OpIdx) {
    const Operation &Op = T.Ops[OpIdx];
    if (Op.isWrite()) {
      WrittenKeys.push_back(Op.K);
      continue;
    }
    ReadInfo RI{OpIdx, Op.K, Op.V, NoTxn, NoOp};
    bool Masked = EvictedWriterMask.count(ReaderTag | OpIdx) != 0;
    if (!Masked) {
      if (const WriteSite *Site = Writes.find(Op.K, Op.V)) {
        RI.Writer = Site->T;
        RI.WriterOp = Site->Op;
      }
    }
    T.Reads.push_back(RI);

    if (RI.Writer == NoTxn) {
      if (!Masked) {
        // No write site yet: park the read for retroactive resolution.
        std::vector<std::pair<TxnId, uint32_t>> &Waiters =
            PendingReads[KeyValue{Op.K, Op.V}];
        if (std::find(Waiters.begin(), Waiters.end(),
                      std::make_pair(Local, OpIdx)) == Waiters.end()) {
          Waiters.emplace_back(Local, OpIdx);
          ++Stats.UnresolvedReads;
        }
      }
      continue;
    }
    if (RI.Writer == Local)
      continue; // Internal read; never external.
    if (Meta[RI.Writer].Open) {
      // The writer's commit status is unknown; re-derive when it closes.
      AllWritersClosed = false;
      std::vector<TxnId> &Waiters = WaitersOnClose[RI.Writer];
      if (std::find(Waiters.begin(), Waiters.end(), Local) == Waiters.end())
        Waiters.push_back(Local);
    }
  }

  std::sort(WrittenKeys.begin(), WrittenKeys.end());
  WrittenKeys.erase(std::unique(WrittenKeys.begin(), WrittenKeys.end()),
                    WrittenKeys.end());
  T.WriteKeys = std::move(WrittenKeys);
  classifyExternalReads(Local);
  return AllWritersClosed;
}

void Monitor::classifyExternalReads(TxnId Local) {
  Transaction &T = Live.Txns[Local];
  T.ExtReads.clear();
  T.ReadFroms.clear();
  std::vector<TxnId> SeenWriters;
  for (uint32_t ReadIdx = 0; ReadIdx < T.Reads.size(); ++ReadIdx) {
    const ReadInfo &RI = T.Reads[ReadIdx];
    if (RI.Writer == NoTxn || RI.Writer == Local ||
        Meta[RI.Writer].Open || !Live.Txns[RI.Writer].Committed)
      continue;
    T.ExtReads.push_back(ReadIdx);
    if (std::find(SeenWriters.begin(), SeenWriters.end(), RI.Writer) ==
        SeenWriters.end()) {
      SeenWriters.push_back(RI.Writer);
      T.ReadFroms.push_back(RI.Writer);
    }
  }
}

void Monitor::replay(const History &H) {
  while (Live.Sessions.size() < H.numSessions())
    addSession();
  for (TxnId Id = 0; Id < H.numTxns(); ++Id) {
    const Transaction &T = H.txn(Id);
    TxnId M = beginTxn(T.Session);
    for (const Operation &Op : T.Ops)
      append(M, Op);
    if (T.Committed)
      commit(M);
    else
      abortTxn(M);
  }
}

void Monitor::adopt(const History &H) {
  AWDIT_ASSERT(Live.Txns.empty() && Live.Sessions.empty() && !Finalized,
               "adopt: monitor must be pristine");
  // Take the resolved history over wholesale: H was produced by
  // HistoryBuilder::build() (or an earlier finalize), so every derived
  // index is already in its final state and nothing needs re-deriving —
  // adopted transactions are not marked dirty, and the write index is
  // materialized lazily, only if streaming or checking continues (the
  // adopt-then-finalize wrapper never needs it).
  Live = H;
  Meta.assign(Live.Txns.size(),
              TxnMeta{/*Open=*/false, /*Deferred=*/false, /*Ts=*/0});
  SessionSoBase.assign(Live.Sessions.size(), 0);
  for (size_t S = 0; S < Live.Sessions.size(); ++S)
    Saturation.addSession();
  AdoptedIndexPending = true;
  Stats.IngestedTxns += Live.Txns.size();
  Stats.IngestedOps += Live.TotalOps;
  Stats.CommittedTxns += Live.CommittedCount;
}

void Monitor::ensureAdoptedIndex() {
  if (!AdoptedIndexPending)
    return;
  AdoptedIndexPending = false;
  // Populate the write index and key universe so new ingestion resolves
  // (and duplicate-detects) against the adopted writes, and queue the
  // adopted transactions as the saturation engine's first delta.
  for (TxnId L = 0; L < static_cast<TxnId>(Live.Txns.size()); ++L) {
    const Transaction &T = Live.Txns[L];
    for (uint32_t OpIdx = 0; OpIdx < T.Ops.size(); ++OpIdx) {
      const Operation &Op = T.Ops[OpIdx];
      Keys.insert(Op.K);
      if (Op.isWrite())
        Writes.record(Op.K, Op.V, L, OpIdx);
    }
    if (T.Committed)
      AdoptedReady.push_back(L);
  }
}

History Monitor::takeHistory() {
  AWDIT_ASSERT(!Finalized, "takeHistory: monitor already finalized");
  AWDIT_ASSERT(Stats.EvictedTxns == 0,
               "takeHistory: window was evicted; the history is partial");
  Finalized = true;
  for (size_t L = 0; L < Meta.size(); ++L)
    AWDIT_ASSERT(!Meta[L].Open, "takeHistory: transaction still open");
  for (TxnId L : Dirty)
    deriveTxn(L);
  Dirty.clear();
  return std::move(Live);
}

bool Monitor::check() {
  flush(/*Final=*/false);
  return !AnyViolation;
}

void Monitor::forceAbortHung() {
  if (!Opts.ForceAbortOpenTicks || !HasTime)
    return;
  std::vector<TxnId> Hung;
  for (TxnId L : OpenTxns)
    if (CurrentTime - Meta[L].Ts >= Opts.ForceAbortOpenTicks)
      Hung.push_back(L);
  for (TxnId L : Hung) {
    // The session may come back and keep using the handle: remember the
    // monitor id forever (one entry per forced abort) so late operations
    // and the eventual commit/abort are dropped instead of touching a
    // closed — possibly already evicted — transaction.
    ForceAbortedIds.insert(toMonitorId(L));
    closeTxn(L, /*Committed=*/false);
    ++Stats.ForcedAborts;
  }
}

void Monitor::flush(bool Final) {
  ++Stats.Flushes;
  CommitsSinceFlush = 0;
  ensureAdoptedIndex();
  forceAbortHung();

  // Re-derive dirty transactions; those with a still-open writer stay
  // dirty until it closes. Adopted transactions join the first delta
  // as-is: their derived state was taken over wholesale.
  std::vector<TxnId> Ready;
  Ready.swap(AdoptedReady);
  std::vector<TxnId> DirtyNow(Dirty.begin(), Dirty.end());
  for (TxnId L : DirtyNow) {
    if (Meta[L].Open)
      continue;
    if (!deriveTxn(L)) {
      Meta[L].Deferred = true;
      continue;
    }
    Meta[L].Deferred = false;
    Dirty.erase(L);
    if (Live.Txns[L].Committed)
      Ready.push_back(L);
  }
  std::sort(Ready.begin(), Ready.end());
  Ready.erase(std::unique(Ready.begin(), Ready.end()), Ready.end());

  std::vector<Violation> Found;

  // Read-level axioms for the affected transactions. Thin-air reads are
  // withheld until the stream ends: the write may simply not have arrived
  // yet (they are tracked in PendingReads meanwhile).
  for (TxnId L : Ready) {
    std::vector<Violation> Tmp;
    checkReadConsistencyRange(Live, L, L + 1, Tmp);
    if (Opts.Level == IsolationLevel::ReadAtomic)
      checkRepeatableReadsRange(Live, L, L + 1, Tmp);
    for (Violation &V : Tmp)
      if (V.Kind != ViolationKind::ThinAirRead)
        Found.push_back(std::move(V));
  }

  // Thin-air reads are never reported here. Without evictions the
  // canonical finalize pass reports them exactly; after evictions an
  // unresolved read is indistinguishable from a read of an evicted write,
  // so it is only counted (UnresolvedReads / EvictedUnresolvedReads) —
  // the windowed-mode completeness trade-off.

  // The incremental saturation pass: only the delta and what it reaches
  // is reprocessed; a cycle is reported the moment its closing edge is
  // inserted into the maintained topological order.
  Saturation.flushDelta(Live, Ready, Found);

  for (Violation &V : Found) {
    translateToMonitorIds(V);
    emitViolation(std::move(V));
  }

  Stats.GraphEdges = Saturation.numGraphEdges();
  Stats.InferredEdges = Saturation.numInferredEdges();
  if (!Final)
    maybeEvict();
  Stats.LiveTxns = Live.numTxns();
}

void Monitor::translateToMonitorIds(Violation &V) const {
  if (V.T != NoTxn)
    V.T += Base;
  if (V.Other != NoTxn)
    V.Other += Base;
  for (WitnessEdge &E : V.Cycle) {
    E.From += Base;
    E.To += Base;
  }
}

std::string Monitor::fingerprint(const Violation &V) {
  std::string Fp = std::to_string(static_cast<int>(V.Kind)) + "|" +
                   std::to_string(V.T) + "|" + std::to_string(V.OpIndex) +
                   "|" + std::to_string(V.Other);
  for (const WitnessEdge &E : V.Cycle) {
    Fp += "|";
    Fp += std::to_string(E.From) + ">" + std::to_string(E.To) + ":" +
          std::to_string(static_cast<int>(E.Kind));
  }
  return Fp;
}

bool Monitor::emitViolation(Violation V) {
  if (!V.Cycle.empty()) {
    // One report per emerging cyclic region: as the stream grows, a cyclic
    // region can grow and its extracted witness change; re-reporting it
    // every pass would flood the sink.
    for (const WitnessEdge &E : V.Cycle)
      if (ReportedCycleTxns.count(E.From))
        return false;
    for (const WitnessEdge &E : V.Cycle)
      ReportedCycleTxns.insert(E.From);
  }
  if (!ReportedFp.insert(fingerprint(V)).second)
    return false;
  AnyViolation = true;
  ++Stats.ReportedViolations;
  if (Sink)
    Sink->onViolation(V, describe(V));
  if (StreamReported.size() < MaxWindowedReportViolations)
    StreamReported.push_back(std::move(V));
  return true;
}

void Monitor::maybeEvict() {
  size_t LiveTxns = Live.numTxns();
  size_t Target = 0;
  if (Opts.WindowTxns && LiveTxns > Opts.WindowTxns)
    Target = LiveTxns - Opts.WindowTxns;
  if (Opts.WindowEdges && Stats.GraphEdges > Opts.WindowEdges)
    Target = std::max(Target, LiveTxns / 4);
  size_t AgeTarget = 0;
  if (Opts.WindowAgeTicks && HasTime && CurrentTime > Opts.WindowAgeTicks) {
    // Age horizon: the closed prefix whose close timestamps fell out of
    // the window. Bounded by the first open transaction anyway.
    uint64_t Horizon = CurrentTime - Opts.WindowAgeTicks;
    while (AgeTarget < LiveTxns && !Meta[AgeTarget].Open &&
           Meta[AgeTarget].Ts < Horizon)
      ++AgeTarget;
    Target = std::max(Target, AgeTarget);
  }
  if (Target == 0)
    return;

  // Only a prefix of fully processed transactions can leave: stop at the
  // first still-open or still-dirty one.
  size_t Evictable = Dirty.empty() ? LiveTxns
                                   : static_cast<size_t>(*Dirty.begin());
  size_t ClosedPrefix = 0;
  while (ClosedPrefix < Evictable && !Meta[ClosedPrefix].Open)
    ++ClosedPrefix;
  size_t Count = std::min(Target, ClosedPrefix);
  if (Count > 0) {
    Stats.AgeEvictedTxns += std::min(Count, AgeTarget);
    compact(Count);
  }
}

void Monitor::compact(size_t Count) {
  ++Stats.Compactions;
  Stats.EvictedTxns += Count;
  TxnId Cut = static_cast<TxnId>(Count);

  // The saturation engine compacts its persisted state first: it needs
  // the pre-eviction window (session lists, derived reads) to compute the
  // per-session position shifts.
  Saturation.compact(Live, Cut);

  // Window accounting of the evicted prefix.
  for (size_t L = 0; L < Count; ++L) {
    const Transaction &T = Live.Txns[L];
    Live.TotalOps -= T.Ops.size();
    if (T.Committed)
      --Live.CommittedCount;
  }

  // Write index: entries of evicted writers vanish; the rest rebase.
  Writes.remapTxns([Cut](TxnId T) {
    return T < Cut ? NoTxn : static_cast<TxnId>(T - Cut);
  });

  // Pending reads: evicted readers are dropped (counted), others rebase.
  for (auto It = PendingReads.begin(); It != PendingReads.end();) {
    std::vector<std::pair<TxnId, uint32_t>> &Waiters = It->second;
    size_t Kept = 0;
    for (auto &[Reader, OpIdx] : Waiters) {
      if (Reader < Cut) {
        ++Stats.EvictedUnresolvedReads;
        --Stats.UnresolvedReads;
        continue;
      }
      Waiters[Kept++] = {static_cast<TxnId>(Reader - Cut), OpIdx};
    }
    Waiters.resize(Kept);
    It = Waiters.empty() ? PendingReads.erase(It) : std::next(It);
  }

  // Close-waiters: keys are open transactions and thus never evicted.
  {
    std::unordered_map<TxnId, std::vector<TxnId>> NewWaiters;
    for (auto &[Writer, Readers] : WaitersOnClose) {
      AWDIT_ASSERT(Writer >= Cut, "compact: open writer in evicted prefix");
      std::vector<TxnId> Kept;
      for (TxnId R : Readers)
        if (R >= Cut)
          Kept.push_back(R - Cut);
      if (!Kept.empty())
        NewWaiters.emplace(Writer - Cut, std::move(Kept));
    }
    WaitersOnClose = std::move(NewWaiters);
  }

  // Drop the prefix and rebase the survivors' resolved state. Reads whose
  // writer left the window are masked: excluded from checking, never
  // reported as thin-air.
  Live.Txns.erase(Live.Txns.begin(), Live.Txns.begin() + Count);
  Meta.erase(Meta.begin(), Meta.begin() + Count);
  uint64_t NewBase = static_cast<uint64_t>(Base) + Count;
  for (size_t L = 0; L < Live.Txns.size(); ++L) {
    Transaction &T = Live.Txns[L];
    bool Changed = false;
    for (ReadInfo &RI : T.Reads) {
      if (RI.Writer == NoTxn)
        continue;
      if (RI.Writer < Cut) {
        RI.Writer = NoTxn;
        RI.WriterOp = NoOp;
        EvictedWriterMask.insert(
            ((NewBase + L) << 32) | RI.OpIndex);
        ++Stats.EvictedWriterReads;
        Changed = true;
      } else {
        RI.Writer -= Cut;
      }
    }
    if (!Changed && T.ExtReads.empty())
      continue;
    // Rebuild the derived external-read indices from the rebased reads.
    classifyExternalReads(static_cast<TxnId>(L));
  }

  // Session lists: drop evicted members, rebase the rest, reassign so
  // positions, and remember how many so slots each session lost (labels).
  for (SessionId S = 0; S < Live.Sessions.size(); ++S) {
    std::vector<TxnId> &Sess = Live.Sessions[S];
    size_t Kept = 0, Removed = 0;
    for (size_t Pos = 0; Pos < Sess.size(); ++Pos) {
      TxnId L = Sess[Pos];
      if (L < Cut) {
        ++Removed;
        continue;
      }
      TxnId NewL = L - Cut;
      Live.Txns[NewL].SoIndex = static_cast<uint32_t>(Kept);
      Sess[Kept++] = NewL;
    }
    Sess.resize(Kept);
    SessionSoBase[S] += Removed;
  }

  // Dirty and open transactions are never evicted (the prefix stops at
  // the first); rebase the sets.
  {
    std::set<TxnId> NewDirty;
    for (TxnId L : Dirty) {
      AWDIT_ASSERT(L >= Cut, "compact: dirty transaction in evicted prefix");
      NewDirty.insert(L - Cut);
    }
    Dirty = std::move(NewDirty);
    std::set<TxnId> NewOpen;
    for (TxnId L : OpenTxns) {
      AWDIT_ASSERT(L >= Cut, "compact: open transaction in evicted prefix");
      NewOpen.insert(L - Cut);
    }
    OpenTxns = std::move(NewOpen);
  }

  // Mask entries of evicted readers can never be consulted again.
  for (auto It = EvictedWriterMask.begin();
       It != EvictedWriterMask.end();) {
    if ((*It >> 32) < NewBase)
      It = EvictedWriterMask.erase(It);
    else
      ++It;
  }

  // Evicted transactions can never join a new cycle (their edges are
  // gone), so their delivery-dedup entries are prunable.
  for (auto It = ReportedCycleTxns.begin();
       It != ReportedCycleTxns.end();) {
    if (*It < NewBase)
      It = ReportedCycleTxns.erase(It);
    else
      ++It;
  }

  // The window's key universe shrank with the evicted operations.
  Keys.clear();
  for (const Transaction &T : Live.Txns)
    for (const Operation &Op : T.Ops)
      Keys.insert(Op.K);
  Live.KeyCount = Keys.size();

  Base = static_cast<TxnId>(NewBase);
}

CheckReport Monitor::finalize() {
  AWDIT_ASSERT(!Finalized, "finalize: called twice");
  Finalized = true;

  // Online semantics: a transaction that never committed did not commit.
  for (size_t L = 0; L < Meta.size(); ++L)
    if (Meta[L].Open)
      closeTxn(static_cast<TxnId>(L), /*Committed=*/false);

  if (Stats.EvictedTxns == 0) {
    // Exact mode: bring every derived index to its final state, then run
    // the canonical one-shot engine over the full ingested history. This
    // is what makes checkIsolation() a bit-identical wrapper.
    for (TxnId L : Dirty) {
      bool Derived = deriveTxn(L);
      AWDIT_ASSERT(Derived, "finalize: writer still open after close-all");
      (void)Derived;
    }
    Dirty.clear();
    CheckReport Report = detail::checkOneShot(Live, Opts.Level, Opts.Check);
    // Deliver anything the incremental passes had not yet surfaced.
    // Monitor ids equal history ids here (nothing was evicted).
    for (const Violation &V : Report.Violations)
      emitViolation(V);
    Stats.LiveTxns = Live.numTxns();
    Stats.InferredEdges = Report.Stats.InferredEdges;
    Stats.GraphEdges = Report.Stats.GraphEdges;
    return Report;
  }

  // Windowed mode: one last incremental pass, then aggregate what the
  // stream produced. Completeness is bounded by the window — that is the
  // contract of eviction; in particular thin-air reads are not reported
  // (indistinguishable from reads of evicted writes), only counted in
  // UnresolvedReads / EvictedUnresolvedReads.
  flush(/*Final=*/true);
  CheckReport Report;
  Report.Consistent = !AnyViolation;
  Report.Violations = StreamReported;
  Report.Stats.InferredEdges = Stats.InferredEdges;
  Report.Stats.GraphEdges = Stats.GraphEdges;
  return Report;
}

const MonitorStats &Monitor::stats() {
  Stats.LiveTxns = Live.numTxns();
  Stats.InferredEdges = Saturation.numInferredEdges();
  return Stats;
}

std::string Monitor::txnLabel(TxnId MonitorId) const {
  std::string Label = "t" + std::to_string(MonitorId);
  if (MonitorId < Base)
    return Label + "(evicted)";
  TxnId L = MonitorId - Base;
  if (L >= Live.Txns.size())
    return Label + "(?)";
  const Transaction &T = Live.Txns[L];
  Label += "(s" + std::to_string(T.Session) + "#" +
           std::to_string(SessionSoBase[T.Session] + T.SoIndex);
  if (!T.Committed)
    Label += ",aborted";
  Label += ")";
  return Label;
}

std::string Monitor::describe(const Violation &V) const {
  std::string Out = violationKindName(V.Kind);
  Out += ":";
  if (!V.Cycle.empty()) {
    for (const WitnessEdge &E : V.Cycle) {
      Out += ' ';
      Out += txnLabel(E.From);
      Out += " -";
      Out += edgeKindName(E.Kind);
      Out += "->";
    }
    Out += ' ';
    Out += txnLabel(V.Cycle.front().From);
    return Out;
  }
  if (V.T != NoTxn) {
    Out += " read";
    if (V.T >= Base && V.OpIndex != NoOp) {
      TxnId L = V.T - Base;
      if (L < Live.Txns.size() && V.OpIndex < Live.Txns[L].Ops.size()) {
        const Operation &Op = Live.Txns[L].Ops[V.OpIndex];
        Out +=
            " R(" + std::to_string(Op.K) + "," + std::to_string(Op.V) + ")";
      }
    }
    Out += " in " + txnLabel(V.T);
  }
  if (V.Other != NoTxn)
    Out += " (writer " + txnLabel(V.Other) + ")";
  return Out;
}
