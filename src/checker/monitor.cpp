//===- checker/monitor.cpp - Streaming online-checking session -------------===//

#include "checker/monitor.h"

#include "checker/check_ra.h"
#include "checker/checkpoint_chunks.h"
#include "checker/read_consistency.h"
#include "obs/trace.h"
#include "support/assert.h"
#include "support/serialize.h"

#include <algorithm>
#include <chrono>

using namespace awdit;

namespace {

const char *edgeKindName(EdgeKind Kind) {
  switch (Kind) {
  case EdgeKind::So:
    return "so";
  case EdgeKind::Wr:
    return "wr";
  case EdgeKind::Inferred:
    return "co'";
  }
  return "?";
}

} // namespace

Monitor::Monitor(const MonitorOptions &Options, ViolationSink *Sink)
    : Opts(Options), Sink(Sink),
      Saturation(Options.Level, SaturationState::Mode::Streaming) {}

SessionId Monitor::addSession() {
  Live.Sessions.emplace_back();
  SessionSoBase.push_back(0);
  Saturation.addSession();
  return static_cast<SessionId>(Live.Sessions.size() - 1);
}

TxnId Monitor::toLocal(TxnId MonitorId) const {
  AWDIT_ASSERT(MonitorId >= Base &&
                   MonitorId - Base < Live.Txns.size(),
               "Monitor: unknown or evicted transaction id");
  return MonitorId - Base;
}

TxnId Monitor::beginTxn(SessionId S) {
  AWDIT_ASSERT(S < Live.Sessions.size(), "beginTxn: unknown session");
  AWDIT_ASSERT(!Finalized, "beginTxn: monitor already finalized");
  ensureAdoptedIndex();
  Transaction T;
  T.Session = S;
  // Open transactions are not yet part of T_c: Committed flips on commit().
  T.Committed = false;
  Live.Txns.push_back(std::move(T));
  Meta.push_back(TxnMeta{/*Open=*/true, /*Deferred=*/false,
                         /*Ts=*/CurrentTime});
  TxnId Local = static_cast<TxnId>(Live.Txns.size() - 1);
  OpenTxns.insert(Local);
  ++Stats.IngestedTxns;
  return toMonitorId(Local);
}

void Monitor::read(TxnId T, Key K, Value V) {
  append(T, Operation::read(K, V));
}

bool Monitor::write(TxnId T, Key K, Value V) {
  return append(T, Operation::write(K, V));
}

bool Monitor::append(TxnId T, Operation Op) {
  if (ForceAbortedIds.count(T))
    return true; // the hung transaction was force-aborted; drop quietly
  TxnId L = toLocal(T);
  AWDIT_ASSERT(Meta[L].Open, "append: transaction already closed");
  Keys.insert(Op.K);
  Live.KeyCount = Keys.size();
  if (Op.isWrite()) {
    uint32_t OpIdx = static_cast<uint32_t>(Live.Txns[L].Ops.size());
    if (!Writes.record(Op.K, Op.V, L, OpIdx)) {
      if (ErrText.empty())
        ErrText = duplicateWriteMessage(Op.K, Op.V);
      return false;
    }
    // Retroactive resolution: readers that closed before this write
    // arrived re-derive at the next checking pass.
    auto It = PendingReads.find(KeyValue{Op.K, Op.V});
    if (It != PendingReads.end()) {
      for (auto [Reader, ReadOp] : It->second) {
        (void)ReadOp;
        Dirty.insert(Reader);
        --Stats.UnresolvedReads;
      }
      PendingReads.erase(It);
    }
  }
  Live.Txns[L].Ops.push_back(Op);
  ++Live.TotalOps;
  ++Stats.IngestedOps;
  return true;
}

void Monitor::commit(TxnId T) {
  if (ForceAbortedIds.count(T))
    return; // already aborted by the force-abort policy
  closeTxn(toLocal(T), /*Committed=*/true);
}

void Monitor::abortTxn(TxnId T) {
  if (ForceAbortedIds.count(T))
    return; // already aborted by the force-abort policy
  closeTxn(toLocal(T), /*Committed=*/false);
}

void Monitor::advanceTime(uint64_t Now) {
  if (!HasTime) {
    // First timestamp: everything ingested so far predates the clock, so
    // its lifecycle times are unknown. Anchor them here — otherwise a
    // stream whose ticks start at a large absolute value (epoch millis)
    // would instantly age out, or force-abort, transactions that are
    // seconds old.
    HasTime = true;
    CurrentTime = Now;
    for (TxnMeta &M : Meta)
      M.Ts = Now;
    return;
  }
  if (Now > CurrentTime)
    CurrentTime = Now;
}

void Monitor::closeTxn(TxnId Local, bool Committed) {
  AWDIT_ASSERT(Meta[Local].Open, "closeTxn: transaction already closed");
  Meta[Local].Open = false;
  Meta[Local].Ts = CurrentTime;
  OpenTxns.erase(Local);
  Transaction &Txn = Live.Txns[Local];
  Txn.Committed = Committed;
  if (Committed) {
    std::vector<TxnId> &Sess = Live.Sessions[Txn.Session];
    Txn.SoIndex = static_cast<uint32_t>(Sess.size());
    Sess.push_back(Local);
    ++Live.CommittedCount;
    ++Stats.CommittedTxns;
  }

  // Resolve this transaction's reads and schedule its checking.
  if (!deriveTxn(Local))
    Meta[Local].Deferred = true;
  Dirty.insert(Local);

  // Wake readers that resolved to this transaction while it was open:
  // its commit status is now known.
  auto It = WaitersOnClose.find(Local);
  if (It != WaitersOnClose.end()) {
    for (TxnId Reader : It->second)
      Dirty.insert(Reader);
    WaitersOnClose.erase(It);
  }

  if (Committed && Opts.CheckIntervalTxns &&
      ++CommitsSinceFlush >= Opts.CheckIntervalTxns)
    flush(/*Final=*/false);
}

bool Monitor::deriveTxn(TxnId Local) {
  Transaction &T = Live.Txns[Local];
  T.Reads.clear();

  std::vector<Key> WrittenKeys;
  bool AllWritersClosed = true;
  uint64_t ReaderTag = static_cast<uint64_t>(toMonitorId(Local)) << 32;

  for (uint32_t OpIdx = 0; OpIdx < T.Ops.size(); ++OpIdx) {
    const Operation &Op = T.Ops[OpIdx];
    if (Op.isWrite()) {
      WrittenKeys.push_back(Op.K);
      continue;
    }
    ReadInfo RI{OpIdx, Op.K, Op.V, NoTxn, NoOp};
    bool Masked = EvictedWriterMask.count(ReaderTag | OpIdx) != 0;
    if (!Masked) {
      if (const WriteSite *Site = Writes.find(Op.K, Op.V)) {
        RI.Writer = Site->T;
        RI.WriterOp = Site->Op;
      }
    }
    T.Reads.push_back(RI);

    if (RI.Writer == NoTxn) {
      if (!Masked) {
        // No write site yet: park the read for retroactive resolution.
        std::vector<std::pair<TxnId, uint32_t>> &Waiters =
            PendingReads[KeyValue{Op.K, Op.V}];
        if (std::find(Waiters.begin(), Waiters.end(),
                      std::make_pair(Local, OpIdx)) == Waiters.end()) {
          Waiters.emplace_back(Local, OpIdx);
          ++Stats.UnresolvedReads;
        }
      }
      continue;
    }
    if (RI.Writer == Local)
      continue; // Internal read; never external.
    if (Meta[RI.Writer].Open) {
      // The writer's commit status is unknown; re-derive when it closes.
      AllWritersClosed = false;
      std::vector<TxnId> &Waiters = WaitersOnClose[RI.Writer];
      if (std::find(Waiters.begin(), Waiters.end(), Local) == Waiters.end())
        Waiters.push_back(Local);
    }
  }

  std::sort(WrittenKeys.begin(), WrittenKeys.end());
  WrittenKeys.erase(std::unique(WrittenKeys.begin(), WrittenKeys.end()),
                    WrittenKeys.end());
  T.WriteKeys = std::move(WrittenKeys);
  classifyExternalReads(Local);
  return AllWritersClosed;
}

void Monitor::classifyExternalReads(TxnId Local) {
  Transaction &T = Live.Txns[Local];
  T.ExtReads.clear();
  T.ReadFroms.clear();
  std::vector<TxnId> SeenWriters;
  for (uint32_t ReadIdx = 0; ReadIdx < T.Reads.size(); ++ReadIdx) {
    const ReadInfo &RI = T.Reads[ReadIdx];
    if (RI.Writer == NoTxn || RI.Writer == Local ||
        Meta[RI.Writer].Open || !Live.Txns[RI.Writer].Committed)
      continue;
    T.ExtReads.push_back(ReadIdx);
    if (std::find(SeenWriters.begin(), SeenWriters.end(), RI.Writer) ==
        SeenWriters.end()) {
      SeenWriters.push_back(RI.Writer);
      T.ReadFroms.push_back(RI.Writer);
    }
  }
}

void Monitor::replay(const History &H) {
  while (Live.Sessions.size() < H.numSessions())
    addSession();
  for (TxnId Id = 0; Id < H.numTxns(); ++Id) {
    const Transaction &T = H.txn(Id);
    TxnId M = beginTxn(T.Session);
    for (const Operation &Op : T.Ops)
      append(M, Op);
    if (T.Committed)
      commit(M);
    else
      abortTxn(M);
  }
}

void Monitor::adopt(const History &H) {
  AWDIT_ASSERT(Live.Txns.empty() && Live.Sessions.empty() && !Finalized,
               "adopt: monitor must be pristine");
  // Take the resolved history over wholesale: H was produced by
  // HistoryBuilder::build() (or an earlier finalize), so every derived
  // index is already in its final state and nothing needs re-deriving —
  // adopted transactions are not marked dirty, and the write index is
  // materialized lazily, only if streaming or checking continues (the
  // adopt-then-finalize wrapper never needs it).
  Live = H;
  Meta.assign(Live.Txns.size(),
              TxnMeta{/*Open=*/false, /*Deferred=*/false, /*Ts=*/0});
  SessionSoBase.assign(Live.Sessions.size(), 0);
  for (size_t S = 0; S < Live.Sessions.size(); ++S)
    Saturation.addSession();
  AdoptedIndexPending = true;
  Stats.IngestedTxns += Live.Txns.size();
  Stats.IngestedOps += Live.TotalOps;
  Stats.CommittedTxns += Live.CommittedCount;
}

void Monitor::ensureAdoptedIndex() {
  if (!AdoptedIndexPending)
    return;
  AdoptedIndexPending = false;
  // Populate the write index and key universe so new ingestion resolves
  // (and duplicate-detects) against the adopted writes, and queue the
  // adopted transactions as the saturation engine's first delta.
  for (TxnId L = 0; L < static_cast<TxnId>(Live.Txns.size()); ++L) {
    const Transaction &T = Live.Txns[L];
    for (uint32_t OpIdx = 0; OpIdx < T.Ops.size(); ++OpIdx) {
      const Operation &Op = T.Ops[OpIdx];
      Keys.insert(Op.K);
      if (Op.isWrite())
        Writes.record(Op.K, Op.V, L, OpIdx);
    }
    if (T.Committed)
      AdoptedReady.push_back(L);
  }
}

History Monitor::takeHistory() {
  AWDIT_ASSERT(!Finalized, "takeHistory: monitor already finalized");
  AWDIT_ASSERT(Stats.EvictedTxns == 0,
               "takeHistory: window was evicted; the history is partial");
  Finalized = true;
  for (size_t L = 0; L < Meta.size(); ++L)
    AWDIT_ASSERT(!Meta[L].Open, "takeHistory: transaction still open");
  for (TxnId L : Dirty)
    deriveTxn(L);
  Dirty.clear();
  return std::move(Live);
}

bool Monitor::check() {
  flush(/*Final=*/false);
  return !AnyViolation;
}

void Monitor::forceAbortHung() {
  if (!Opts.ForceAbortOpenTicks || !HasTime)
    return;
  std::vector<TxnId> Hung;
  for (TxnId L : OpenTxns)
    if (CurrentTime - Meta[L].Ts >= Opts.ForceAbortOpenTicks)
      Hung.push_back(L);
  for (TxnId L : Hung) {
    // The session may come back and keep using the handle: remember the
    // monitor id forever (one entry per forced abort) so late operations
    // and the eventual commit/abort are dropped instead of touching a
    // closed — possibly already evicted — transaction.
    ForceAbortedIds.insert(toMonitorId(L));
    closeTxn(L, /*Committed=*/false);
    ++Stats.ForcedAborts;
  }
}

void Monitor::flush(bool Final) {
  AWDIT_SPAN("flush");
  uint64_t FlushT0 = obs::traceNowNanos();
  auto FlushStart = std::chrono::steady_clock::now();
  ++Stats.Flushes;
  CommitsSinceFlush = 0;
  ensureAdoptedIndex();
  forceAbortHung();

  // Re-derive dirty transactions; those with a still-open writer stay
  // dirty until it closes. Adopted transactions join the first delta
  // as-is: their derived state was taken over wholesale.
  std::vector<TxnId> Ready;
  Ready.swap(AdoptedReady);
  std::vector<TxnId> DirtyNow(Dirty.begin(), Dirty.end());
  for (TxnId L : DirtyNow) {
    if (Meta[L].Open)
      continue;
    if (!deriveTxn(L)) {
      Meta[L].Deferred = true;
      continue;
    }
    Meta[L].Deferred = false;
    Dirty.erase(L);
    if (Live.Txns[L].Committed)
      Ready.push_back(L);
  }
  std::sort(Ready.begin(), Ready.end());
  Ready.erase(std::unique(Ready.begin(), Ready.end()), Ready.end());

  std::vector<Violation> Found;

  // Read-level axioms for the affected transactions. Thin-air reads are
  // withheld until the stream ends: the write may simply not have arrived
  // yet (they are tracked in PendingReads meanwhile).
  for (TxnId L : Ready) {
    std::vector<Violation> Tmp;
    checkReadConsistencyRange(Live, L, L + 1, Tmp);
    if (Opts.Level == IsolationLevel::ReadAtomic)
      checkRepeatableReadsRange(Live, L, L + 1, Tmp);
    for (Violation &V : Tmp)
      if (V.Kind != ViolationKind::ThinAirRead)
        Found.push_back(std::move(V));
  }

  // Thin-air reads are never reported here. Without evictions the
  // canonical finalize pass reports them exactly; after evictions an
  // unresolved read is indistinguishable from a read of an evicted write,
  // so it is only counted (UnresolvedReads / EvictedUnresolvedReads) —
  // the windowed-mode completeness trade-off.

  // The incremental saturation pass: only the delta and what it reaches
  // is reprocessed; a cycle is reported the moment its closing edge is
  // inserted into the maintained topological order.
  uint64_t DeltaPreNs = obs::traceNowNanos() - FlushT0;
  Saturation.flushDelta(Live, Ready, Found);

  uint64_t FinalizeT0 = obs::traceNowNanos();
  {
    AWDIT_SPAN("flush.finalize");
    for (Violation &V : Found) {
      translateToMonitorIds(V);
      emitViolation(std::move(V));
    }

    Stats.GraphEdges = Saturation.numGraphEdges();
    Stats.InferredEdges = Saturation.numInferredEdges();
    if (!Final)
      maybeEvict();
    Stats.LiveTxns = Live.numTxns();
  }

  // Phase accounting: the derive + read-level segment above counts toward
  // delta-build, the saturation pass splits itself, the tail is finalize.
  SaturationState::FlushPhaseNanos Ph = Saturation.takeFlushPhaseNanos();
  uint64_t Phases[obs::NumFlushPhases] = {};
  Phases[unsigned(obs::FlushPhase::DeltaBuild)] =
      (DeltaPreNs + Ph.DeltaBuild) / 1000;
  Phases[unsigned(obs::FlushPhase::Speculate)] = Ph.Speculate / 1000;
  Phases[unsigned(obs::FlushPhase::Merge)] = Ph.Merge / 1000;
  Phases[unsigned(obs::FlushPhase::Pk)] = Ph.Pk / 1000;
  Phases[unsigned(obs::FlushPhase::Finalize)] =
      (obs::traceNowNanos() - FinalizeT0) / 1000;
  obs::PipelineMetrics &M = obs::metrics();
  for (unsigned I = 0; I < obs::NumFlushPhases; ++I) {
    M.FlushPhases[I].record(Phases[I]);
    PhaseMicros[I] += Phases[I];
  }
  uint64_t FlushMicros = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - FlushStart)
          .count());
  M.FlushTotal.record(FlushMicros);
  FlushHist.record(FlushMicros);
  Stats.FlushMicros += FlushMicros;
}

void Monitor::translateToMonitorIds(Violation &V) const {
  if (V.T != NoTxn)
    V.T += Base;
  if (V.Other != NoTxn)
    V.Other += Base;
  for (WitnessEdge &E : V.Cycle) {
    E.From += Base;
    E.To += Base;
  }
}

std::string Monitor::fingerprint(const Violation &V) {
  std::string Fp = std::to_string(static_cast<int>(V.Kind)) + "|" +
                   std::to_string(V.T) + "|" + std::to_string(V.OpIndex) +
                   "|" + std::to_string(V.Other);
  for (const WitnessEdge &E : V.Cycle) {
    Fp += "|";
    Fp += std::to_string(E.From) + ">" + std::to_string(E.To) + ":" +
          std::to_string(static_cast<int>(E.Kind));
  }
  return Fp;
}

bool Monitor::emitViolation(Violation V) {
  if (!V.Cycle.empty()) {
    // One report per emerging cyclic region: as the stream grows, a cyclic
    // region can grow and its extracted witness change; re-reporting it
    // every pass would flood the sink.
    for (const WitnessEdge &E : V.Cycle)
      if (ReportedCycleTxns.count(E.From))
        return false;
    for (const WitnessEdge &E : V.Cycle)
      ReportedCycleTxns.insert(E.From);
  }
  if (!ReportedFp.insert(fingerprint(V)).second)
    return false;
  AnyViolation = true;
  ++Stats.ReportedViolations;
  if (Sink)
    Sink->onViolation(V, describe(V));
  if (StreamReported.size() < MaxWindowedReportViolations)
    StreamReported.push_back(std::move(V));
  return true;
}

void Monitor::maybeEvict() {
  size_t LiveTxns = Live.numTxns();
  size_t Target = 0;
  if (Opts.WindowTxns && LiveTxns > Opts.WindowTxns)
    Target = LiveTxns - Opts.WindowTxns;
  if (Opts.WindowEdges && Stats.GraphEdges > Opts.WindowEdges)
    Target = std::max(Target, LiveTxns / 4);
  size_t AgeTarget = 0;
  if (Opts.WindowAgeTicks && HasTime && CurrentTime > Opts.WindowAgeTicks) {
    // Age horizon: the closed prefix whose close timestamps fell out of
    // the window. Bounded by the first open transaction anyway.
    uint64_t Horizon = CurrentTime - Opts.WindowAgeTicks;
    while (AgeTarget < LiveTxns && !Meta[AgeTarget].Open &&
           Meta[AgeTarget].Ts < Horizon)
      ++AgeTarget;
    Target = std::max(Target, AgeTarget);
  }
  if (Target == 0)
    return;

  // Only a prefix of fully processed transactions can leave: stop at the
  // first still-open or still-dirty one.
  size_t Evictable = Dirty.empty() ? LiveTxns
                                   : static_cast<size_t>(*Dirty.begin());
  size_t ClosedPrefix = 0;
  while (ClosedPrefix < Evictable && !Meta[ClosedPrefix].Open)
    ++ClosedPrefix;
  size_t Count = std::min(Target, ClosedPrefix);
  if (Count > 0) {
    Stats.AgeEvictedTxns += std::min(Count, AgeTarget);
    compact(Count);
  }
}

void Monitor::compact(size_t Count) {
  ++Stats.Compactions;
  Stats.EvictedTxns += Count;
  TxnId Cut = static_cast<TxnId>(Count);

  // The saturation engine compacts its persisted state first: it needs
  // the pre-eviction window (session lists, derived reads) to compute the
  // per-session position shifts.
  Saturation.compact(Live, Cut);

  // Window accounting of the evicted prefix.
  for (size_t L = 0; L < Count; ++L) {
    const Transaction &T = Live.Txns[L];
    Live.TotalOps -= T.Ops.size();
    if (T.Committed)
      --Live.CommittedCount;
  }

  // Write index: entries of evicted writers vanish; the rest rebase.
  Writes.remapTxns([Cut](TxnId T) {
    return T < Cut ? NoTxn : static_cast<TxnId>(T - Cut);
  });

  // Pending reads: evicted readers are dropped (counted), others rebase.
  for (auto It = PendingReads.begin(); It != PendingReads.end();) {
    std::vector<std::pair<TxnId, uint32_t>> &Waiters = It->second;
    size_t Kept = 0;
    for (auto &[Reader, OpIdx] : Waiters) {
      if (Reader < Cut) {
        ++Stats.EvictedUnresolvedReads;
        --Stats.UnresolvedReads;
        continue;
      }
      Waiters[Kept++] = {static_cast<TxnId>(Reader - Cut), OpIdx};
    }
    Waiters.resize(Kept);
    It = Waiters.empty() ? PendingReads.erase(It) : std::next(It);
  }

  // Close-waiters: keys are open transactions and thus never evicted.
  {
    std::unordered_map<TxnId, std::vector<TxnId>> NewWaiters;
    for (auto &[Writer, Readers] : WaitersOnClose) {
      AWDIT_ASSERT(Writer >= Cut, "compact: open writer in evicted prefix");
      std::vector<TxnId> Kept;
      for (TxnId R : Readers)
        if (R >= Cut)
          Kept.push_back(R - Cut);
      if (!Kept.empty())
        NewWaiters.emplace(Writer - Cut, std::move(Kept));
    }
    WaitersOnClose = std::move(NewWaiters);
  }

  // Drop the prefix and rebase the survivors' resolved state. Reads whose
  // writer left the window are masked: excluded from checking, never
  // reported as thin-air.
  Live.Txns.erase(Live.Txns.begin(), Live.Txns.begin() + Count);
  Meta.erase(Meta.begin(), Meta.begin() + Count);
  uint64_t NewBase = static_cast<uint64_t>(Base) + Count;
  for (size_t L = 0; L < Live.Txns.size(); ++L) {
    Transaction &T = Live.Txns[L];
    bool Changed = false;
    for (ReadInfo &RI : T.Reads) {
      if (RI.Writer == NoTxn)
        continue;
      if (RI.Writer < Cut) {
        EvictedWriterMask.emplace(
            ((NewBase + L) << 32) | RI.OpIndex,
            (static_cast<uint64_t>(Base + RI.Writer) << 32) | RI.WriterOp);
        RI.Writer = NoTxn;
        RI.WriterOp = NoOp;
        ++Stats.EvictedWriterReads;
        Changed = true;
      } else {
        RI.Writer -= Cut;
      }
    }
    if (!Changed && T.ExtReads.empty())
      continue;
    // Rebuild the derived external-read indices from the rebased reads.
    classifyExternalReads(static_cast<TxnId>(L));
  }

  // Session lists: drop evicted members, rebase the rest, reassign so
  // positions, and remember how many so slots each session lost (labels).
  for (SessionId S = 0; S < Live.Sessions.size(); ++S) {
    std::vector<TxnId> &Sess = Live.Sessions[S];
    size_t Kept = 0, Removed = 0;
    for (size_t Pos = 0; Pos < Sess.size(); ++Pos) {
      TxnId L = Sess[Pos];
      if (L < Cut) {
        ++Removed;
        continue;
      }
      TxnId NewL = L - Cut;
      Live.Txns[NewL].SoIndex = static_cast<uint32_t>(Kept);
      Sess[Kept++] = NewL;
    }
    Sess.resize(Kept);
    SessionSoBase[S] += Removed;
  }

  // Dirty and open transactions are never evicted (the prefix stops at
  // the first); rebase the sets.
  {
    std::set<TxnId> NewDirty;
    for (TxnId L : Dirty) {
      AWDIT_ASSERT(L >= Cut, "compact: dirty transaction in evicted prefix");
      NewDirty.insert(L - Cut);
    }
    Dirty = std::move(NewDirty);
    std::set<TxnId> NewOpen;
    for (TxnId L : OpenTxns) {
      AWDIT_ASSERT(L >= Cut, "compact: open transaction in evicted prefix");
      NewOpen.insert(L - Cut);
    }
    OpenTxns = std::move(NewOpen);
  }

  // Mask entries of evicted readers can never be consulted again.
  for (auto It = EvictedWriterMask.begin();
       It != EvictedWriterMask.end();) {
    if ((It->first >> 32) < NewBase)
      It = EvictedWriterMask.erase(It);
    else
      ++It;
  }

  // Evicted transactions can never join a new cycle (their edges are
  // gone), so their delivery-dedup entries are prunable.
  for (auto It = ReportedCycleTxns.begin();
       It != ReportedCycleTxns.end();) {
    if (*It < NewBase)
      It = ReportedCycleTxns.erase(It);
    else
      ++It;
  }

  // The window's key universe shrank with the evicted operations.
  Keys.clear();
  for (const Transaction &T : Live.Txns)
    for (const Operation &Op : T.Ops)
      Keys.insert(Op.K);
  Live.KeyCount = Keys.size();

  Base = static_cast<TxnId>(NewBase);
}

CheckReport Monitor::finalize() {
  AWDIT_ASSERT(!Finalized, "finalize: called twice");
  Finalized = true;

  // Online semantics: a transaction that never committed did not commit.
  for (size_t L = 0; L < Meta.size(); ++L)
    if (Meta[L].Open)
      closeTxn(static_cast<TxnId>(L), /*Committed=*/false);

  if (Stats.EvictedTxns == 0) {
    // Exact mode: bring every derived index to its final state, then run
    // the canonical one-shot engine over the full ingested history. This
    // is what makes checkIsolation() a bit-identical wrapper.
    for (TxnId L : Dirty) {
      bool Derived = deriveTxn(L);
      AWDIT_ASSERT(Derived, "finalize: writer still open after close-all");
      (void)Derived;
    }
    Dirty.clear();
    CheckReport Report = detail::checkOneShot(Live, Opts.Level, Opts.Check);
    // Deliver anything the incremental passes had not yet surfaced.
    // Monitor ids equal history ids here (nothing was evicted).
    for (const Violation &V : Report.Violations)
      emitViolation(V);
    Stats.LiveTxns = Live.numTxns();
    Stats.InferredEdges = Report.Stats.InferredEdges;
    Stats.GraphEdges = Report.Stats.GraphEdges;
    return Report;
  }

  // Windowed mode: one last incremental pass, then aggregate what the
  // stream produced. Completeness is bounded by the window — that is the
  // contract of eviction; in particular thin-air reads are not reported
  // (indistinguishable from reads of evicted writes), only counted in
  // UnresolvedReads / EvictedUnresolvedReads.
  flush(/*Final=*/true);
  CheckReport Report;
  Report.Consistent = !AnyViolation;
  Report.Violations = StreamReported;
  Report.Stats.InferredEdges = Stats.InferredEdges;
  Report.Stats.GraphEdges = Stats.GraphEdges;
  return Report;
}

const MonitorStats &Monitor::stats() {
  Stats.LiveTxns = Live.numTxns();
  Stats.InferredEdges = Saturation.numInferredEdges();
  return Stats;
}

std::string Monitor::txnLabel(TxnId MonitorId) const {
  std::string Label = "t" + std::to_string(MonitorId);
  if (MonitorId < Base)
    return Label + "(evicted)";
  TxnId L = MonitorId - Base;
  if (L >= Live.Txns.size())
    return Label + "(?)";
  const Transaction &T = Live.Txns[L];
  Label += "(s" + std::to_string(T.Session) + "#" +
           std::to_string(SessionSoBase[T.Session] + T.SoIndex);
  if (!T.Committed)
    Label += ",aborted";
  Label += ")";
  return Label;
}

std::string Monitor::describe(const Violation &V) const {
  std::string Out = violationKindName(V.Kind);
  Out += ":";
  if (!V.Cycle.empty()) {
    for (const WitnessEdge &E : V.Cycle) {
      Out += ' ';
      Out += txnLabel(E.From);
      Out += " -";
      Out += edgeKindName(E.Kind);
      Out += "->";
    }
    Out += ' ';
    Out += txnLabel(V.Cycle.front().From);
    return Out;
  }
  if (V.T != NoTxn) {
    Out += " read";
    if (V.T >= Base && V.OpIndex != NoOp) {
      TxnId L = V.T - Base;
      if (L < Live.Txns.size() && V.OpIndex < Live.Txns[L].Ops.size()) {
        const Operation &Op = Live.Txns[L].Ops[V.OpIndex];
        Out +=
            " R(" + std::to_string(Op.K) + "," + std::to_string(Op.V) + ")";
      }
    }
    Out += " in " + txnLabel(V.T);
  }
  if (V.Other != NoTxn)
    Out += " (writer " + txnLabel(V.Other) + ")";
  return Out;
}

//===----------------------------------------------------------------------===//
// Persistent checkpoints: verbatim serialization of the monitoring state.
//===----------------------------------------------------------------------===//

namespace {

void saveViolation(ByteWriter &W, const Violation &V) {
  W.u8(static_cast<uint8_t>(V.Kind));
  W.u32(V.T);
  W.u32(V.OpIndex);
  W.u32(V.Other);
  W.u64(V.Cycle.size());
  for (const WitnessEdge &E : V.Cycle) {
    W.u32(E.From);
    W.u32(E.To);
    W.u8(static_cast<uint8_t>(E.Kind));
  }
}

bool loadViolation(ByteReader &R, Violation &V) {
  V.Kind = static_cast<ViolationKind>(R.u8());
  V.T = R.u32();
  V.OpIndex = R.u32();
  V.Other = R.u32();
  uint64_t Len = R.u64();
  if (!R.checkCount(Len, 9))
    return false;
  V.Cycle.resize(Len);
  for (uint64_t I = 0; I < Len; ++I) {
    V.Cycle[I].From = R.u32();
    V.Cycle[I].To = R.u32();
    V.Cycle[I].Kind = static_cast<EdgeKind>(R.u8());
  }
  return R.ok();
}

template <typename Container>
void saveU32Sequence(ByteWriter &W, const Container &C) {
  W.u64(C.size());
  for (uint32_t V : C)
    W.u32(V);
}

} // namespace

void Monitor::saveState(ByteWriter &W) const { saveStateImpl(W, nullptr); }

void Monitor::saveStateImpl(ByteWriter &W, const StateCoords *C) const {
  AWDIT_ASSERT(!Finalized, "saveState: monitor already finalized");
  // Local→global coordinate transforms of the chunked (v2) path; identity
  // when C is null, which writes the historical v1 bytes. See StateCoords.
  uint32_t IdBase = C ? C->IdBase : 0;
  auto GT = [&](TxnId T) {
    return T == NoTxn ? T : static_cast<TxnId>(T + IdBase);
  };
  auto GSo = [&](SessionId S, uint32_t So) {
    return C && S < C->SoBase->size()
               ? static_cast<uint32_t>(So + (*C->SoBase)[S])
               : So;
  };

  // The live window. Transactions live at global ids [Base, Base+N) in
  // id order, so bucketing by global id makes the chunk covering a given
  // transaction byte-identical until the transaction itself changes.
  W.chunk(chunkId(ckchunk::MTxns));
  W.u64(Live.Txns.size());
  for (size_t I = 0; I < Live.Txns.size(); ++I) {
    const Transaction &T = Live.Txns[I];
    W.chunk(chunkId(ckchunk::MTxns, 1 + ((IdBase + I) >> 4)));
    W.u32(T.Session);
    W.u32(GSo(T.Session, T.SoIndex));
    W.boolean(T.Committed);
    W.u64(T.Ops.size());
    for (const Operation &Op : T.Ops) {
      W.u8(static_cast<uint8_t>(Op.Kind));
      W.u64(Op.K);
      W.i64(Op.V);
    }
    W.u64(T.Reads.size());
    for (const ReadInfo &RI : T.Reads) {
      W.u32(RI.OpIndex);
      W.u64(RI.K);
      W.i64(RI.V);
      // The chunked path writes a masked read as its original pre-eviction
      // (global writer, op) — the record's bytes never change when the
      // writer is later evicted; the loader re-masks anything below the
      // window base. v1 keeps the masked sentinel (its bytes are the
      // pruned view).
      uint32_t WriterOut = GT(RI.Writer);
      uint32_t WriterOpOut = RI.WriterOp;
      if (C && RI.Writer == NoTxn) {
        auto MIt = EvictedWriterMask.find(
            ((static_cast<uint64_t>(IdBase) + I) << 32) | RI.OpIndex);
        if (MIt != EvictedWriterMask.end() &&
            MIt->second != UnknownMaskedWriter) {
          WriterOut = static_cast<uint32_t>(MIt->second >> 32);
          WriterOpOut = static_cast<uint32_t>(MIt->second);
        }
      }
      W.u32(WriterOut);
      W.u32(WriterOpOut);
    }
    // External-read indices and read-from lists are a pure function of
    // the reads, the mask, and commit metadata (classifyExternalReads):
    // the chunked path derives them at load instead of churning chunks
    // every time an evicted writer drops out of them.
    if (!C)
      saveU32Sequence(W, T.ExtReads);
    W.u64(T.WriteKeys.size());
    for (Key K : T.WriteKeys)
      W.u64(K);
    if (!C) {
      W.u64(T.ReadFroms.size());
      for (TxnId F : T.ReadFroms)
        W.u32(GT(F));
    }
  }
  W.chunk(chunkId(ckchunk::MSess));
  W.u64(Live.Sessions.size());
  for (size_t S = 0; S < Live.Sessions.size(); ++S) {
    const std::vector<TxnId> &Sess = Live.Sessions[S];
    W.chunk(chunkId(ckchunk::MSess, 1 + (S << 26)));
    W.u64(Sess.size());
    for (TxnId Member : Sess) {
      W.chunk(chunkId(ckchunk::MSess,
                      1 + ((S << 26) | (static_cast<uint64_t>(GT(Member)) >>
                                        8))));
      W.u32(GT(Member));
    }
  }
  W.chunk(chunkId(ckchunk::MMisc));
  W.u64(Live.TotalOps);
  W.u64(Live.CommittedCount);
  // Live.KeyCount is rebuilt with the key universe on load.

  W.u32(Base);
  W.chunk(chunkId(ckchunk::MMeta));
  for (size_t I = 0; I < Meta.size(); ++I) {
    const TxnMeta &TM = Meta[I];
    W.chunk(chunkId(ckchunk::MMeta, 1 + ((IdBase + I) >> 6)));
    W.boolean(TM.Open);
    W.boolean(TM.Deferred);
    W.u64(TM.Ts);
  }

  Saturation.saveState(W, C);

  W.chunk(chunkId(ckchunk::MAdopted));
  W.u64(AdoptedReady.size());
  for (TxnId T : AdoptedReady)
    W.u32(GT(T));
  W.boolean(AdoptedIndexPending);

  // wr resolution: the write-site index, sorted by (key, value).
  {
    std::vector<std::pair<KeyValue, WriteSite>> Sorted;
    Sorted.reserve(Writes.size());
    Writes.forEach([&](const KeyValue &KV, const WriteSite &Site) {
      Sorted.emplace_back(KV, Site);
    });
    std::sort(Sorted.begin(), Sorted.end(),
              [](const auto &A, const auto &B) {
                return A.first.K != B.first.K ? A.first.K < B.first.K
                                              : A.first.V < B.first.V;
              });
    W.chunk(chunkId(ckchunk::MWrites));
    W.u64(Sorted.size());
    for (const auto &[KV, Site] : Sorted) {
      W.chunk(chunkId(ckchunk::MWrites, 1 + (KV.K >> 4)));
      W.u64(KV.K);
      W.i64(KV.V);
      W.u32(GT(Site.T));
      W.u32(Site.Op);
    }
  }

  // Pending (unresolved) reads, sorted by (key, value); waiter lists
  // verbatim.
  {
    std::vector<const std::pair<const KeyValue,
                                std::vector<std::pair<TxnId, uint32_t>>> *>
        Sorted;
    Sorted.reserve(PendingReads.size());
    for (const auto &Entry : PendingReads)
      Sorted.push_back(&Entry);
    std::sort(Sorted.begin(), Sorted.end(), [](const auto *A, const auto *B) {
      return A->first.K != B->first.K ? A->first.K < B->first.K
                                      : A->first.V < B->first.V;
    });
    W.chunk(chunkId(ckchunk::MPending));
    W.u64(Sorted.size());
    for (const auto *Entry : Sorted) {
      W.chunk(chunkId(ckchunk::MPending, 1 + (Entry->first.K >> 4)));
      W.u64(Entry->first.K);
      W.i64(Entry->first.V);
      W.u64(Entry->second.size());
      for (const auto &[Reader, OpIdx] : Entry->second) {
        W.u32(GT(Reader));
        W.u32(OpIdx);
      }
    }
  }

  // Close-waiters, sorted by writer; reader lists verbatim.
  {
    std::vector<TxnId> Writers;
    Writers.reserve(WaitersOnClose.size());
    for (const auto &[Writer, Readers] : WaitersOnClose)
      Writers.push_back(Writer);
    std::sort(Writers.begin(), Writers.end());
    W.chunk(chunkId(ckchunk::MWaiters));
    W.u64(Writers.size());
    for (TxnId Writer : Writers) {
      W.chunk(chunkId(ckchunk::MWaiters,
                      1 + (static_cast<uint64_t>(GT(Writer)) >> 4)));
      W.u32(GT(Writer));
      const std::vector<TxnId> &Readers = WaitersOnClose.at(Writer);
      W.u64(Readers.size());
      for (TxnId Reader : Readers)
        W.u32(GT(Reader));
    }
  }

  {
    // The chunked path serializes masked reads with their original writer
    // inline in MTxns, so it only needs MMask for entries whose original
    // writer is unknown (restored from a v1 checkpoint). v1 keeps the full
    // key set — its loader has no other way to tell masked from unresolved.
    std::vector<uint64_t> Sorted;
    Sorted.reserve(EvictedWriterMask.size());
    for (const auto &[MaskKey, Original] : EvictedWriterMask)
      if (!C || Original == UnknownMaskedWriter)
        Sorted.push_back(MaskKey);
    std::sort(Sorted.begin(), Sorted.end());
    W.chunk(chunkId(ckchunk::MMask));
    W.u64(Sorted.size());
    for (uint64_t V : Sorted) {
      // Mask keys are (global id << 32 | op) already: no transform.
      W.chunk(chunkId(ckchunk::MMask, 1 + (V >> 36)));
      W.u64(V);
    }
  }

  W.chunk(chunkId(ckchunk::MDirty));
  W.u64(Dirty.size());
  for (TxnId T : Dirty)
    W.u32(GT(T));
  W.chunk(chunkId(ckchunk::MOpen));
  W.u64(OpenTxns.size());
  for (TxnId T : OpenTxns)
    W.u32(GT(T));
  {
    std::vector<TxnId> Sorted(ForceAbortedIds.begin(),
                              ForceAbortedIds.end());
    std::sort(Sorted.begin(), Sorted.end());
    W.chunk(chunkId(ckchunk::MForced));
    saveU32Sequence(W, Sorted); // monitor (global) ids: no transform
  }

  W.chunk(chunkId(ckchunk::MSoBase));
  W.u64(SessionSoBase.size());
  for (uint64_t V : SessionSoBase)
    W.u64(V);

  // Exactly-once delivery state: this is what makes a resumed monitor
  // re-emit only the violations a never-stopped run would still emit.
  {
    std::vector<const std::string *> Sorted;
    Sorted.reserve(ReportedFp.size());
    for (const std::string &Fp : ReportedFp)
      Sorted.push_back(&Fp);
    std::sort(Sorted.begin(), Sorted.end(),
              [](const std::string *A, const std::string *B) {
                return *A < *B;
              });
    W.chunk(chunkId(ckchunk::MFp));
    W.u64(Sorted.size());
    for (size_t I = 0; I < Sorted.size(); ++I) {
      W.chunk(chunkId(ckchunk::MFp, 1 + (I >> 5)));
      W.str(*Sorted[I]);
    }
  }
  {
    std::vector<TxnId> Sorted(ReportedCycleTxns.begin(),
                              ReportedCycleTxns.end());
    std::sort(Sorted.begin(), Sorted.end());
    W.chunk(chunkId(ckchunk::MCyc));
    W.u64(Sorted.size());
    for (TxnId T : Sorted) {
      // Monitor (global) ids: no transform.
      W.chunk(chunkId(ckchunk::MCyc, 1 + (static_cast<uint64_t>(T) >> 6)));
      W.u32(T);
    }
  }
  W.chunk(chunkId(ckchunk::MRep));
  W.u64(StreamReported.size());
  for (size_t I = 0; I < StreamReported.size(); ++I) {
    W.chunk(chunkId(ckchunk::MRep, 1 + (I >> 4)));
    saveViolation(W, StreamReported[I]);
  }

  W.chunk(chunkId(ckchunk::MTail));
  W.u64(Stats.IngestedTxns);
  W.u64(Stats.IngestedOps);
  W.u64(Stats.CommittedTxns);
  W.u64(Stats.Flushes);
  W.u64(Stats.ReportedViolations);
  W.u64(Stats.UnresolvedReads);
  W.u64(Stats.EvictedTxns);
  W.u64(Stats.Compactions);
  W.u64(Stats.EvictedUnresolvedReads);
  W.u64(Stats.EvictedWriterReads);
  W.u64(Stats.AgeEvictedTxns);
  W.u64(Stats.ForcedAborts);
  // Stats.FlushMicros is deliberately not serialized: wall-clock timing is
  // host-local, and including it would make the bytes non-canonical for a
  // given logical state.

  W.u64(CommitsSinceFlush);
  W.u64(CurrentTime);
  W.boolean(HasTime);
  W.boolean(AnyViolation);
  W.str(ErrText);
}

bool Monitor::loadState(ByteReader &R, std::string *Err) {
  return loadStateImpl(R, Err, nullptr);
}

bool Monitor::loadStateImpl(ByteReader &R, std::string *Err,
                            const StateCoords *C) {
  auto Fail = [&](const char *Msg) {
    if (Err)
      *Err = Msg;
    return false;
  };
  if (Finalized || !Live.Txns.empty() || !Live.Sessions.empty())
    return Fail("checkpoint restore requires a pristine monitor");

  // Exact inverses of the globalizing transforms in saveStateImpl. With a
  // null \p C these are the identity, reading historical v1 bytes.
  const uint32_t IdBase = C ? C->IdBase : 0;
  auto LT = [&](TxnId T) {
    return T == NoTxn ? T : static_cast<TxnId>(T - IdBase);
  };
  auto LSo = [&](uint32_t S, uint32_t V) -> uint32_t {
    if (!C || !C->SoBase || S >= C->SoBase->size())
      return V;
    return static_cast<uint32_t>(V - (*C->SoBase)[S]);
  };

  uint64_t NumTxns = R.u64();
  if (!R.checkCount(NumTxns, 16))
    return Fail("corrupted checkpoint (transaction count)");
  Live.Txns.resize(NumTxns);
  for (uint64_t I = 0; I < NumTxns && R.ok(); ++I) {
    Transaction &T = Live.Txns[I];
    T.Session = R.u32();
    T.SoIndex = LSo(T.Session, R.u32());
    T.Committed = R.boolean();
    uint64_t NumOps = R.u64();
    if (!R.checkCount(NumOps, 17))
      return Fail("corrupted checkpoint (operation count)");
    T.Ops.resize(NumOps);
    for (Operation &Op : T.Ops) {
      Op.Kind = static_cast<OpKind>(R.u8());
      Op.K = R.u64();
      Op.V = R.i64();
    }
    uint64_t NumReads = R.u64();
    if (!R.checkCount(NumReads, 28))
      return Fail("corrupted checkpoint (read count)");
    T.Reads.resize(NumReads);
    for (ReadInfo &RI : T.Reads) {
      RI.OpIndex = R.u32();
      RI.K = R.u64();
      RI.V = R.i64();
      uint32_t GW = R.u32();
      uint32_t WOp = R.u32();
      if (C && GW != NoTxn && GW < IdBase) {
        // Chunked records keep a masked read's original pre-eviction writer;
        // anything below the window base was evicted, so re-mask it here.
        RI.Writer = NoTxn;
        RI.WriterOp = NoOp;
        EvictedWriterMask.emplace(
            ((static_cast<uint64_t>(IdBase) + I) << 32) | RI.OpIndex,
            (static_cast<uint64_t>(GW) << 32) | WOp);
      } else {
        RI.Writer = LT(GW);
        RI.WriterOp = WOp;
      }
    }
    if (!C) {
      uint64_t NumExt = R.u64();
      if (!R.checkCount(NumExt, 4))
        return Fail("corrupted checkpoint (external reads)");
      T.ExtReads.resize(NumExt);
      for (uint32_t &E : T.ExtReads)
        E = R.u32();
    }
    uint64_t NumWk = R.u64();
    if (!R.checkCount(NumWk, 8))
      return Fail("corrupted checkpoint (write keys)");
    T.WriteKeys.resize(NumWk);
    for (Key &K : T.WriteKeys)
      K = R.u64();
    if (!C) {
      uint64_t NumRf = R.u64();
      if (!R.checkCount(NumRf, 4))
        return Fail("corrupted checkpoint (read-froms)");
      T.ReadFroms.resize(NumRf);
      for (TxnId &F : T.ReadFroms)
        F = LT(R.u32());
    }
  }

  uint64_t NumSessions = R.u64();
  if (!R.checkCount(NumSessions, 8))
    return Fail("corrupted checkpoint (session count)");
  Live.Sessions.resize(NumSessions);
  for (uint64_t S = 0; S < NumSessions && R.ok(); ++S) {
    uint64_t Len = R.u64();
    if (!R.checkCount(Len, 4))
      return Fail("corrupted checkpoint (session list)");
    Live.Sessions[S].resize(Len);
    for (TxnId &T : Live.Sessions[S])
      T = LT(R.u32());
  }
  Live.TotalOps = R.u64();
  Live.CommittedCount = R.u64();

  Base = R.u32();
  if (C && Base != C->IdBase)
    return Fail("inconsistent checkpoint (window base vs. root metadata)");
  Meta.resize(NumTxns);
  for (TxnMeta &TM : Meta) {
    TM.Open = R.boolean();
    TM.Deferred = R.boolean();
    TM.Ts = R.u64();
  }
  if (C) {
    // Chunked checkpoints omit ExtReads/ReadFroms: both are pure functions
    // of the reads, open flags, and commit bits, all of which are loaded by
    // this point.
    for (uint64_t I = 0; I < NumTxns; ++I)
      classifyExternalReads(static_cast<TxnId>(I));
  }

  if (!R.ok())
    return Fail("truncated checkpoint (window)");
  if (!Saturation.loadState(R, Err, C, Base))
    return false;

  uint64_t NumAdopted = R.u64();
  if (!R.checkCount(NumAdopted, 4))
    return Fail("corrupted checkpoint (adopted list)");
  AdoptedReady.resize(NumAdopted);
  for (TxnId &T : AdoptedReady)
    T = LT(R.u32());
  AdoptedIndexPending = R.boolean();

  uint64_t NumWrites = R.u64();
  if (!R.checkCount(NumWrites, 24))
    return Fail("corrupted checkpoint (write index)");
  for (uint64_t I = 0; I < NumWrites; ++I) {
    Key K = R.u64();
    Value V = R.i64();
    TxnId T = LT(R.u32());
    uint32_t Op = R.u32();
    if (R.ok() && !Writes.record(K, V, T, Op))
      return Fail("corrupted checkpoint (duplicate write-site entry)");
  }

  uint64_t NumPending = R.u64();
  if (!R.checkCount(NumPending, 24))
    return Fail("corrupted checkpoint (pending reads)");
  for (uint64_t I = 0; I < NumPending && R.ok(); ++I) {
    Key K = R.u64();
    Value V = R.i64();
    uint64_t Len = R.u64();
    if (!R.checkCount(Len, 8))
      return Fail("corrupted checkpoint (pending-read list)");
    std::vector<std::pair<TxnId, uint32_t>> Waiters(Len);
    for (auto &[Reader, OpIdx] : Waiters) {
      Reader = LT(R.u32());
      OpIdx = R.u32();
    }
    PendingReads.emplace(KeyValue{K, V}, std::move(Waiters));
  }

  uint64_t NumWaiters = R.u64();
  if (!R.checkCount(NumWaiters, 12))
    return Fail("corrupted checkpoint (close-waiters)");
  for (uint64_t I = 0; I < NumWaiters && R.ok(); ++I) {
    TxnId Writer = LT(R.u32());
    uint64_t Len = R.u64();
    if (!R.checkCount(Len, 4))
      return Fail("corrupted checkpoint (close-waiter list)");
    std::vector<TxnId> Readers(Len);
    for (TxnId &Reader : Readers)
      Reader = LT(R.u32());
    WaitersOnClose.emplace(Writer, std::move(Readers));
  }

  uint64_t NumMask = R.u64();
  if (!R.checkCount(NumMask, 8))
    return Fail("corrupted checkpoint (evicted-writer mask)");
  for (uint64_t I = 0; I < NumMask; ++I)
    EvictedWriterMask.emplace(R.u64(), UnknownMaskedWriter);

  auto LoadTxnSet = [&](std::set<TxnId> &Set) {
    uint64_t Len = R.u64();
    if (!R.checkCount(Len, 4))
      return false;
    for (uint64_t I = 0; I < Len; ++I)
      Set.insert(LT(R.u32()));
    return true;
  };
  if (!LoadTxnSet(Dirty))
    return Fail("corrupted checkpoint (dirty set)");
  if (!LoadTxnSet(OpenTxns))
    return Fail("corrupted checkpoint (open set)");
  uint64_t NumForced = R.u64();
  if (!R.checkCount(NumForced, 4))
    return Fail("corrupted checkpoint (force-aborted set)");
  for (uint64_t I = 0; I < NumForced; ++I)
    ForceAbortedIds.insert(R.u32());

  uint64_t NumSoBase = R.u64();
  if (!R.checkCount(NumSoBase, 8))
    return Fail("corrupted checkpoint (session bases)");
  SessionSoBase.resize(NumSoBase);
  for (uint64_t &V : SessionSoBase)
    V = R.u64();
  if (C && C->SoBase && SessionSoBase != *C->SoBase)
    return Fail("inconsistent checkpoint (session bases vs. root metadata)");

  uint64_t NumFp = R.u64();
  if (!R.checkCount(NumFp, 8))
    return Fail("corrupted checkpoint (delivery fingerprints)");
  for (uint64_t I = 0; I < NumFp && R.ok(); ++I)
    ReportedFp.insert(R.str());
  uint64_t NumCycleTxns = R.u64();
  if (!R.checkCount(NumCycleTxns, 4))
    return Fail("corrupted checkpoint (cycle-txn set)");
  for (uint64_t I = 0; I < NumCycleTxns; ++I)
    ReportedCycleTxns.insert(R.u32());
  uint64_t NumReported = R.u64();
  if (!R.checkCount(NumReported, 13))
    return Fail("corrupted checkpoint (reported violations)");
  StreamReported.resize(NumReported);
  for (Violation &V : StreamReported)
    if (!loadViolation(R, V))
      return Fail("corrupted checkpoint (violation record)");

  Stats.IngestedTxns = R.u64();
  Stats.IngestedOps = R.u64();
  Stats.CommittedTxns = R.u64();
  Stats.Flushes = R.u64();
  Stats.ReportedViolations = R.u64();
  Stats.UnresolvedReads = R.u64();
  Stats.EvictedTxns = R.u64();
  Stats.Compactions = R.u64();
  Stats.EvictedUnresolvedReads = R.u64();
  Stats.EvictedWriterReads = R.u64();
  Stats.AgeEvictedTxns = R.u64();
  Stats.ForcedAborts = R.u64();

  CommitsSinceFlush = R.u64();
  CurrentTime = R.u64();
  HasTime = R.boolean();
  AnyViolation = R.boolean();
  ErrText = R.str();

  if (!R.ok())
    return Fail("truncated checkpoint (monitor state)");

  // Derived state not worth serializing: the key universe of the window.
  for (const Transaction &T : Live.Txns)
    for (const Operation &Op : T.Ops)
      Keys.insert(Op.K);
  Live.KeyCount = Keys.size();

  // Structural sanity: counts that must agree for the monitor to be usable.
  if (Meta.size() != Live.Txns.size() ||
      SessionSoBase.size() != Live.Sessions.size())
    return Fail("inconsistent checkpoint (structure mismatch)");
  return true;
}

void Monitor::saveStateChunked(std::string &Bytes,
                               std::vector<ChunkMark> &Marks,
                               uint32_t &IdBase,
                               std::vector<uint64_t> &SoBase) const {
  Bytes.clear();
  Marks.clear();
  IdBase = Base;
  SoBase = SessionSoBase;
  ByteWriter W(Bytes);
  W.enableChunks(&Marks);
  StateCoords C{Base, &SessionSoBase};
  saveStateImpl(W, &C);
}

bool Monitor::loadStateChunked(std::string_view Bytes, uint32_t IdBase,
                               const std::vector<uint64_t> &SoBase,
                               std::string *Err) {
  ByteReader R(Bytes);
  StateCoords C{IdBase, &SoBase};
  if (!loadStateImpl(R, Err, &C))
    return false;
  if (R.remaining() != 0) {
    if (Err)
      *Err = "trailing bytes after checkpoint state";
    return false;
  }
  return true;
}
