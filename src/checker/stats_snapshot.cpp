//===- checker/stats_snapshot.cpp - Shared monitor-stats rendering ---------===//

#include "checker/stats_snapshot.h"

#include "checker/violation_sink.h"

#include <cstdio>

using namespace awdit;

StatsSnapshot StatsSnapshot::of(const MonitorStats &S) {
  StatsSnapshot Snap;
  Snap.Txns = S.IngestedTxns;
  Snap.Committed = S.CommittedTxns;
  Snap.Ops = S.IngestedOps;
  Snap.LiveTxns = S.LiveTxns;
  Snap.Violations = S.ReportedViolations;
  Snap.Flushes = S.Flushes;
  Snap.EvictedTxns = S.EvictedTxns;
  Snap.ForcedAborts = S.ForcedAborts;
  Snap.FlushMicros = S.FlushMicros;
  return Snap;
}

StatsSnapshot StatsSnapshot::minus(const StatsSnapshot &Since) const {
  StatsSnapshot D = *this;
  D.Txns -= Since.Txns;
  D.Committed -= Since.Committed;
  D.Ops -= Since.Ops;
  // LiveTxns is a gauge, not a counter: keep the current value.
  D.Violations -= Since.Violations;
  D.Flushes -= Since.Flushes;
  D.EvictedTxns -= Since.EvictedTxns;
  D.ForcedAborts -= Since.ForcedAborts;
  D.FlushMicros -= Since.FlushMicros;
  return D;
}

void StatsSnapshot::add(const StatsSnapshot &S) {
  Txns += S.Txns;
  Committed += S.Committed;
  Ops += S.Ops;
  LiveTxns += S.LiveTxns;
  Violations += S.Violations;
  Flushes += S.Flushes;
  EvictedTxns += S.EvictedTxns;
  ForcedAborts += S.ForcedAborts;
  FlushMicros += S.FlushMicros;
}

std::string StatsSnapshot::toLine() const {
  char Buf[256];
  std::snprintf(Buf, sizeof(Buf),
                "txns=%llu committed=%llu violations=%llu evicted=%llu "
                "flushes=%llu flush_ms=%.2f live=%llu",
                static_cast<unsigned long long>(Txns),
                static_cast<unsigned long long>(Committed),
                static_cast<unsigned long long>(Violations),
                static_cast<unsigned long long>(EvictedTxns),
                static_cast<unsigned long long>(Flushes),
                static_cast<double>(FlushMicros) / 1000.0,
                static_cast<unsigned long long>(LiveTxns));
  return Buf;
}

std::string StatsSnapshot::toJson() const {
  std::string Out = "{\"txns\":" + std::to_string(Txns) +
                    ",\"committed\":" + std::to_string(Committed) +
                    ",\"ops\":" + std::to_string(Ops) +
                    ",\"live\":" + std::to_string(LiveTxns) +
                    ",\"violations\":" + std::to_string(Violations) +
                    ",\"flushes\":" + std::to_string(Flushes) +
                    ",\"evicted_txns\":" + std::to_string(EvictedTxns) +
                    ",\"forced_aborts\":" + std::to_string(ForcedAborts) +
                    ",\"flush_micros\":" + std::to_string(FlushMicros) + "}";
  return Out;
}

std::string awdit::monitorSummaryJson(const CheckReport &Report,
                                      const MonitorStats &S,
                                      IsolationLevel Level) {
  std::string Line = "{\"consistent\":";
  Line += Report.Consistent ? "true" : "false";
  Line += ",\"level\":\"";
  appendJsonEscaped(Line, isolationLevelName(Level));
  Line += "\",\"txns\":" + std::to_string(S.IngestedTxns) +
          ",\"committed\":" + std::to_string(S.CommittedTxns) +
          ",\"ops\":" + std::to_string(S.IngestedOps) +
          ",\"violations\":" + std::to_string(S.ReportedViolations) +
          ",\"flushes\":" + std::to_string(S.Flushes) +
          ",\"evicted_txns\":" + std::to_string(S.EvictedTxns) +
          ",\"compactions\":" + std::to_string(S.Compactions) +
          ",\"evicted_unresolved_reads\":" +
          std::to_string(S.EvictedUnresolvedReads) +
          ",\"evicted_writer_reads\":" +
          std::to_string(S.EvictedWriterReads) +
          ",\"age_evicted_txns\":" + std::to_string(S.AgeEvictedTxns) +
          ",\"forced_aborts\":" + std::to_string(S.ForcedAborts) + "}";
  return Line;
}
