//===- checker/checker.h - AWDIT checking facade ------------------*- C++ -*-===//
//
// Part of the AWDIT reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The public entry point of the AWDIT library: check a history against a
/// weak isolation level and obtain a verdict, violations with witnesses,
/// and run statistics. This is the API the examples, the CLI tool, and the
/// benchmark harness use.
///
//===----------------------------------------------------------------------===//

#ifndef AWDIT_CHECKER_CHECKER_H
#define AWDIT_CHECKER_CHECKER_H

#include "checker/isolation_level.h"
#include "checker/violation.h"
#include "history/history.h"

#include <vector>

namespace awdit {

/// Implementation variant for the CC checker (both are Algorithm 3; see
/// check_cc.h).
enum class CcVariant : uint8_t {
  /// Full HB matrix + monotone pointer scans (the algorithm as written).
  PointerScan,
  /// On-the-fly HB with recycled rows + binary-search lastWrite (the
  /// variant the paper's tool ships, §5). Lower memory.
  OnTheFly,
};

/// Options controlling a consistency check.
struct CheckOptions {
  /// Maximum number of cycle witnesses to extract (one per SCC, §3.4).
  /// 0 requests verdict-only mode (fastest when violations exist).
  size_t MaxWitnesses = 16;
  /// Use the linear single-session RA fast path (Theorem 1.6) when the
  /// history qualifies and the level is RA.
  bool UseSingleSessionFastPath = true;
  /// Which CC implementation to run. The OnTheFly variant is sequential by
  /// design (its point is O(width·k) memory); selecting it pins the check
  /// to the sequential path regardless of Threads.
  CcVariant Cc = CcVariant::PointerScan;
  /// Worker threads of the sharded parallel engine (checker/parallel.h).
  /// 0 selects one worker per hardware thread; 1 runs the exact legacy
  /// sequential path. Both engines produce bit-identical verdicts,
  /// violation lists, statistics, and witness cycles on every history
  /// (enforced by tests/test_parallel.cpp).
  unsigned Threads = 0;
  /// Histories with fewer transactions than this run sequentially even
  /// when Threads > 1 — below it, thread startup dominates the check.
  /// Set to 0 to force the parallel engine (tests do).
  size_t ParallelThreshold = 4096;
};

/// Statistics of a completed check.
struct CheckStats {
  /// Inferred (non so/wr) co' edges added by saturation.
  size_t InferredEdges = 0;
  /// Total edges of the final commit graph.
  size_t GraphEdges = 0;
  /// True if the single-session RA fast path was taken.
  bool UsedFastPath = false;
};

/// The result of checking one history against one isolation level.
struct CheckReport {
  bool Consistent = false;
  std::vector<Violation> Violations;
  CheckStats Stats;
};

/// Checks whether \p H satisfies \p Level using the AWDIT algorithms
/// (Algorithm 1 for RC, Algorithm 2 for RA, Algorithm 3 for CC, and the
/// Theorem 1.6 fast path for single-session RA).
///
/// Implemented as a thin wrapper over the streaming Monitor
/// (checker/monitor.h): the history is replayed into a monitor session and
/// finalized. The result is bit-identical to the raw one-shot engine
/// detail::checkOneShot (enforced by tests/test_monitor.cpp). Callers that
/// receive transactions incrementally should use Monitor directly instead
/// of materializing a History first.
CheckReport checkIsolation(const History &H, IsolationLevel Level,
                           const CheckOptions &Options = {});

namespace detail {

/// The raw one-shot checking engine (the historical checkIsolation body):
/// dispatches to the sequential or parallel RC/RA/CC algorithms over a
/// complete history. Monitor::finalize() runs this as its canonical pass;
/// library users should call checkIsolation() or use a Monitor.
CheckReport checkOneShot(const History &H, IsolationLevel Level,
                         const CheckOptions &Options);

} // namespace detail

} // namespace awdit

#endif // AWDIT_CHECKER_CHECKER_H
