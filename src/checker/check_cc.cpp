//===- checker/check_cc.cpp - AWDIT Causal Consistency (Alg. 3) ------------===//

#include "checker/check_cc.h"

#include "checker/commit_graph.h"
#include "checker/read_consistency.h"
#include "graph/topo_sort.h"

#include <unordered_map>

using namespace awdit;

/// Fills the exclusive happens-before clock rows, processing committed
/// transactions in the topological order \p Order of so ∪ wr (Algorithm 3,
/// lines 22-25). Inclusive(t')[s'] differs from row(t') only at
/// t'.Session, where it is 1 + SoIndex(t').
void awdit::fillHappensBefore(const History &H,
                              const std::vector<uint32_t> &Order,
                              HappensBefore &HB) {
  size_t K = H.numSessions();
  HB.NumSessions = K;
  HB.Rows.assign(H.numTxns() * K, 0);
  for (uint32_t T : Order) {
    const Transaction &Txn = H.txn(T);
    if (!Txn.Committed)
      continue;
    uint32_t *Row = &HB.Rows[static_cast<size_t>(T) * K];
    SessionId S = Txn.Session;
    if (Txn.SoIndex > 0) {
      TxnId Pred = H.sessionTxns(S)[Txn.SoIndex - 1];
      const uint32_t *PredRow = &HB.Rows[static_cast<size_t>(Pred) * K];
      for (size_t I = 0; I < K; ++I)
        Row[I] = PredRow[I];
      Row[S] = Txn.SoIndex; // = SoIndex(Pred) + 1.
    }
    for (TxnId Writer : Txn.ReadFroms) {
      const Transaction &W = H.txn(Writer);
      const uint32_t *WRow = &HB.Rows[static_cast<size_t>(Writer) * K];
      for (size_t I = 0; I < K; ++I)
        Row[I] = std::max(Row[I], WRow[I]);
      Row[W.Session] = std::max(Row[W.Session], W.SoIndex + 1);
    }
  }
}

namespace {

/// A writer entry: transaction id plus its cached session position so the
/// monotone scan stays on contiguous memory.
struct WriterEntry {
  TxnId T;
  uint32_t SoIndex;
};

/// Per-key writer index: for each key, the sessions writing it and their
/// so-ordered writer lists, plus the monotone scan pointers of the
/// session currently being processed (Algorithm 3, lastWrite / Writes).
/// Only sessions that actually write the key are visited, which preserves
/// the O(n·k) bound while skipping the (common) all-bottom entries.
struct KeyWriters {
  std::vector<SessionId> Sessions;
  std::vector<std::vector<WriterEntry>> Lists;
  /// Scan pointers, valid for the session stamped in Epoch.
  std::vector<uint32_t> Consumed;
  /// Last (pointer, reader-writer) emitted per slot, packed; suppresses
  /// the long runs of duplicate inferences hot keys otherwise produce.
  std::vector<uint64_t> LastEmit;
  SessionId Epoch = static_cast<SessionId>(-1);
};

} // namespace

bool awdit::computeHappensBefore(const History &H, HappensBefore &HB) {
  CommitGraph Base(H);
  std::optional<std::vector<uint32_t>> Order =
      topologicalSort(Base.graph());
  if (!Order)
    return false;
  fillHappensBefore(H, *Order, HB);
  return true;
}

bool awdit::checkCc(const History &H, std::vector<Violation> &Out,
                    size_t MaxWitnesses, SaturationStats *Stats) {
  // Line 2: Read Consistency.
  if (!checkReadConsistency(H, Out))
    return false;

  // Line 4 first: co' <- so ∪ wr; its graph doubles as the input of
  // ComputeHB (lines 3, 18-21) before any inferred edge is added.
  CommitGraph Co(H);
  std::optional<std::vector<uint32_t>> Order = topologicalSort(Co.graph());
  if (!Order) {
    // so ∪ wr cycle: fails every level.
    Co.checkAcyclic(Out, MaxWitnesses);
    return false;
  }
  HappensBefore HB;
  fillHappensBefore(H, *Order, HB);

  size_t K = H.numSessions();
  // Writes_s'[x] for all s' at once, grouped by key.
  std::unordered_map<Key, KeyWriters> Writers;
  Writers.reserve(H.numKeys() * 2);
  for (SessionId S = 0; S < K; ++S) {
    for (TxnId T : H.sessionTxns(S)) {
      const Transaction &Txn = H.txn(T);
      for (Key X : Txn.WriteKeys) {
        KeyWriters &KW = Writers[X];
        if (KW.Sessions.empty() || KW.Sessions.back() != S) {
          KW.Sessions.push_back(S);
          KW.Lists.emplace_back();
        }
        KW.Lists.back().push_back({T, Txn.SoIndex});
      }
    }
  }
  for (auto &[X, KW] : Writers) {
    KW.Consumed.assign(KW.Sessions.size(), 0);
    KW.LastEmit.assign(KW.Sessions.size(), ~uint64_t(0));
  }

  // Lines 5-15. Re-processing a repeated (x, t1) pair is idempotent (the
  // scan pointers are already advanced), so no dedup pass is needed.
  for (SessionId S = 0; S < K; ++S) {
    for (TxnId T3 : H.sessionTxns(S)) {
      const Transaction &T = H.txn(T3);
      if (T.ExtReads.empty())
        continue;
      const uint32_t *Row = &HB.Rows[static_cast<size_t>(T3) * K];

      // Line 8: iterate t1 wr_x-> t3.
      for (uint32_t ReadIdx : T.ExtReads) {
        const ReadInfo &RI = T.Reads[ReadIdx];
        TxnId T1 = RI.Writer;
        auto WIt = Writers.find(RI.K);
        if (WIt == Writers.end())
          continue;
        KeyWriters &KW = WIt->second;
        // Scan pointers are monotone along so within one scanning
        // session; entering a new session resets them (the paper keeps
        // them per session of t3).
        if (KW.Epoch != S) {
          KW.Epoch = S;
          std::fill(KW.Consumed.begin(), KW.Consumed.end(), 0);
          std::fill(KW.LastEmit.begin(), KW.LastEmit.end(), ~uint64_t(0));
        }
        // Lines 9-15: advance each writing session's last-writer pointer
        // under the happens-before frontier of t3 and emit the edge.
        for (size_t Slot = 0; Slot < KW.Sessions.size(); ++Slot) {
          const std::vector<WriterEntry> &List = KW.Lists[Slot];
          uint32_t Frontier = Row[KW.Sessions[Slot]];
          uint32_t &C = KW.Consumed[Slot];
          while (C < List.size() && List[C].SoIndex < Frontier)
            ++C;
          if (C == 0)
            continue;
          TxnId T2 = List[C - 1].T;
          if (T2 == T1)
            continue;
          uint64_t Emit = (static_cast<uint64_t>(C) << 32) | T1;
          if (KW.LastEmit[Slot] == Emit)
            continue;
          KW.LastEmit[Slot] = Emit;
          Co.inferEdge(T2, T1);
        }
      }
    }
  }

  if (Stats) {
    Stats->InferredEdges = Co.numInferredEdges();
    Stats->GraphEdges = Co.numEdges();
  }

  // Line 16: cycle check.
  return Co.checkAcyclic(Out, MaxWitnesses);
}
