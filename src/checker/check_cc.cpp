//===- checker/check_cc.cpp - AWDIT Causal Consistency (Alg. 3) ------------===//

#include "checker/check_cc.h"

#include "checker/commit_graph.h"
#include "checker/read_consistency.h"
#include "checker/saturation_impl.h"
#include "graph/topo_sort.h"

#include <unordered_map>

using namespace awdit;

/// Fills the exclusive happens-before clock rows, processing committed
/// transactions in the topological order \p Order of so ∪ wr (Algorithm 3,
/// lines 22-25). Inclusive(t')[s'] differs from row(t') only at
/// t'.Session, where it is 1 + SoIndex(t').
void awdit::fillHappensBefore(const History &H,
                              const std::vector<uint32_t> &Order,
                              HappensBefore &HB) {
  size_t K = H.numSessions();
  HB.NumSessions = K;
  HB.Rows.assign(H.numTxns() * K, 0);
  for (uint32_t T : Order) {
    const Transaction &Txn = H.txn(T);
    if (!Txn.Committed)
      continue;
    uint32_t *Row = &HB.Rows[static_cast<size_t>(T) * K];
    SessionId S = Txn.Session;
    if (Txn.SoIndex > 0) {
      TxnId Pred = H.sessionTxns(S)[Txn.SoIndex - 1];
      const uint32_t *PredRow = &HB.Rows[static_cast<size_t>(Pred) * K];
      for (size_t I = 0; I < K; ++I)
        Row[I] = PredRow[I];
      Row[S] = Txn.SoIndex; // = SoIndex(Pred) + 1.
    }
    for (TxnId Writer : Txn.ReadFroms) {
      const Transaction &W = H.txn(Writer);
      const uint32_t *WRow = &HB.Rows[static_cast<size_t>(Writer) * K];
      for (size_t I = 0; I < K; ++I)
        Row[I] = std::max(Row[I], WRow[I]);
      Row[W.Session] = std::max(Row[W.Session], W.SoIndex + 1);
    }
  }
}

bool awdit::computeHappensBefore(const History &H, HappensBefore &HB) {
  CommitGraph Base(H);
  std::optional<std::vector<uint32_t>> Order =
      topologicalSort(Base.graph());
  if (!Order)
    return false;
  fillHappensBefore(H, *Order, HB);
  return true;
}

bool awdit::checkCc(const History &H, std::vector<Violation> &Out,
                    size_t MaxWitnesses, SaturationStats *Stats) {
  // Line 2: Read Consistency.
  if (!checkReadConsistency(H, Out))
    return false;

  // Line 4 first: co' <- so ∪ wr; its graph doubles as the input of
  // ComputeHB (lines 3, 18-21) before any inferred edge is added.
  CommitGraph Co(H);
  std::optional<std::vector<uint32_t>> Order = topologicalSort(Co.graph());
  if (!Order) {
    // so ∪ wr cycle: fails every level.
    Co.checkAcyclic(Out, MaxWitnesses);
    return false;
  }
  HappensBefore HB;
  fillHappensBefore(H, *Order, HB);

  // Lines 5-15: the shared per-key monotone scan kernel (also run by the
  // streaming Monitor over its window).
  detail::saturateCc(H, HB, [&](TxnId From, TxnId To) {
    Co.inferEdge(From, To);
  });

  if (Stats) {
    Stats->InferredEdges = Co.numInferredEdges();
    Stats->GraphEdges = Co.numEdges();
  }

  // Line 16: cycle check.
  return Co.checkAcyclic(Out, MaxWitnesses);
}
