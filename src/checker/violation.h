//===- checker/violation.h - Violation and witness types ----------*- C++ -*-===//
//
// Part of the AWDIT reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Violation records produced by the checkers: the five Read Consistency
/// anomalies (Fig. 2), non-repeatable reads, causality cycles, and commit
/// order (co') cycles with labelled witness edges (paper §3.4).
///
//===----------------------------------------------------------------------===//

#ifndef AWDIT_CHECKER_VIOLATION_H
#define AWDIT_CHECKER_VIOLATION_H

#include "history/history.h"

#include <string>
#include <vector>

namespace awdit {

/// Classification of a reported anomaly.
enum class ViolationKind : uint8_t {
  /// A read observes a value no transaction wrote (Fig. 2a).
  ThinAirRead,
  /// A read observes a write of an aborted transaction (Fig. 2b).
  AbortedRead,
  /// A read observes a po-later write of its own transaction (Fig. 2c).
  FutureRead,
  /// A read observes another transaction although an own po-earlier write
  /// on the key exists (Fig. 2d).
  NotOwnWrite,
  /// A read observes a stale (non-latest po-earlier) own write (Fig. 2e).
  NotLatestWriteSameTxn,
  /// A read observes a non-final write on its key of another transaction
  /// (Fig. 2e across transactions).
  NotLatestWriteOtherTxn,
  /// A transaction reads the same key from two different transactions
  /// (implied by the RA axiom; Algorithm 2, CheckRepeatableReads).
  NonRepeatableRead,
  /// A cycle in so ∪ wr (violates every isolation level).
  CausalityCycle,
  /// A cycle in the saturated partial commit relation co'.
  CommitOrderCycle,
};

/// Short display name of a violation kind, e.g. "Future Read".
const char *violationKindName(ViolationKind Kind);

/// The provenance of a witness-cycle edge.
enum class EdgeKind : uint8_t {
  So,       ///< session order
  Wr,       ///< write-read dependency
  Inferred, ///< co' edge inferred from an isolation axiom
};

/// One labelled edge of a witness cycle.
struct WitnessEdge {
  TxnId From;
  TxnId To;
  EdgeKind Kind;
};

/// A single reported anomaly. Read-level anomalies carry the reading
/// transaction and op; cycle anomalies carry the labelled cycle.
struct Violation {
  ViolationKind Kind;
  /// The transaction containing the offending read (read-level kinds).
  TxnId T = NoTxn;
  /// The op index of the offending read within T.
  uint32_t OpIndex = NoOp;
  /// A second involved transaction (e.g. the writer), if any.
  TxnId Other = NoTxn;
  /// For cycle kinds: the witness cycle, closed (last To == first From).
  std::vector<WitnessEdge> Cycle;

  /// Renders a human-readable one-line description.
  std::string describe(const History &H) const;
};

} // namespace awdit

#endif // AWDIT_CHECKER_VIOLATION_H
