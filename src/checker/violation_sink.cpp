//===- checker/violation_sink.cpp - Streaming violation sinks --------------===//

#include "checker/violation_sink.h"

using namespace awdit;

void awdit::appendJsonEscaped(std::string &Out, std::string_view Text) {
  for (char C : Text) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\r':
      Out += "\\r";
      break;
    case '\t':
      Out += "\\t";
      break;
    default:
      if (static_cast<unsigned char>(C) < 0x20) {
        static const char Hex[] = "0123456789abcdef";
        Out += "\\u00";
        Out += Hex[(C >> 4) & 0xf];
        Out += Hex[C & 0xf];
      } else {
        Out += C;
      }
    }
  }
}

static const char *edgeKindJson(EdgeKind Kind) {
  switch (Kind) {
  case EdgeKind::So:
    return "so";
  case EdgeKind::Wr:
    return "wr";
  case EdgeKind::Inferred:
    return "inferred";
  }
  return "?";
}

std::string awdit::violationToJson(const Violation &V,
                                   const std::string *Description,
                                   const std::string *Stream) {
  std::string Out = "{\"kind\":\"";
  appendJsonEscaped(Out, violationKindName(V.Kind));
  Out += '"';
  if (Stream) {
    Out += ",\"stream\":\"";
    appendJsonEscaped(Out, *Stream);
    Out += '"';
  }
  if (V.T != NoTxn)
    Out += ",\"txn\":" + std::to_string(V.T);
  if (V.OpIndex != NoOp)
    Out += ",\"op\":" + std::to_string(V.OpIndex);
  if (V.Other != NoTxn)
    Out += ",\"other\":" + std::to_string(V.Other);
  if (!V.Cycle.empty()) {
    Out += ",\"cycle\":[";
    for (size_t I = 0; I < V.Cycle.size(); ++I) {
      const WitnessEdge &E = V.Cycle[I];
      if (I)
        Out += ',';
      Out += "{\"from\":" + std::to_string(E.From) +
             ",\"to\":" + std::to_string(E.To) + ",\"edge\":\"" +
             edgeKindJson(E.Kind) + "\"}";
    }
    Out += ']';
  }
  if (Description) {
    Out += ",\"description\":\"";
    appendJsonEscaped(Out, *Description);
    Out += '"';
  }
  Out += '}';
  return Out;
}

void JsonLinesSink::onViolation(const Violation &V,
                                const std::string &Description) {
  Out << violationToJson(V, &Description, HasStream ? &Stream : nullptr)
      << "\n";
  Out.flush();
}
