//===- checker/saturation_impl.h - Shared saturation kernels -----*- C++ -*-===//
//
// Part of the AWDIT reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The co'-saturation loop bodies of Algorithms 1 and 2, factored out of
/// the sequential checkers so the parallel engine and the streaming
/// Monitor run the *same* kernels over transaction ranges / single
/// sessions / the live window and merely swap the edge sink (direct
/// CommitGraph::inferEdge, a per-worker batch buffer, or the monitor's
/// refcounted edge set). Implementation-detail header: include only from
/// checker code.
///
//===----------------------------------------------------------------------===//

#ifndef AWDIT_CHECKER_SATURATION_IMPL_H
#define AWDIT_CHECKER_SATURATION_IMPL_H

#include "checker/check_cc.h"
#include "history/history.h"
#include "support/hybrid_map.h"

#include <algorithm>
#include <unordered_map>
#include <vector>

namespace awdit::detail {

/// The two-slot stack of earliest future writers per key (Algorithm 1,
/// earliestWts). Slot Top is the most recently pushed (po-earliest below
/// the scan point) distinct writer; Second the one pushed before it.
struct TwoSlot {
  TxnId Second = NoTxn;
  TxnId Top = NoTxn;
};

/// Reusable scratch of the RC kernel, hoisted so one instance serves a whole
/// transaction range without per-transaction allocation churn.
struct RcScratch {
  HybridSet<TxnId> ReadTxns;
  std::vector<bool> IsFirstRead;
  HybridMap<Key, TwoSlot> EarliestWts;
  HybridSet<Key> ReadKeys;
};

/// Algorithm 1 lines 4-21 for the committed transactions in [Begin, End):
/// per-transaction reverse po scans inferring co' edges into \p Infer
/// (called as Infer(From, To)). Transactions are independent, so any
/// partition of [0, numTxns) yields the same edge multiset up to order.
template <typename Sink>
void saturateRcRange(const History &H, TxnId Begin, TxnId End,
                     RcScratch &Scratch, Sink &&Infer) {
  for (TxnId T3 = Begin; T3 < End; ++T3) {
    const Transaction &T = H.txn(T3);
    if (!T.Committed)
      continue;
    const std::vector<uint32_t> &Ext = T.ExtReads;
    // The axiom needs two po-ordered external reads; nothing to infer
    // otherwise.
    if (Ext.size() < 2)
      continue;

    // Lines 5-10: mark the po-first read of each distinct writer t2.
    Scratch.ReadTxns.clear();
    Scratch.IsFirstRead.assign(Ext.size(), false);
    for (size_t I = 0; I < Ext.size(); ++I)
      Scratch.IsFirstRead[I] = Scratch.ReadTxns.insert(T.Reads[Ext[I]].Writer);

    // Lines 11-21: reverse po scan with the two-slot earliest-writers
    // stack and the set of keys read below the scan point.
    Scratch.EarliestWts.clear();
    Scratch.ReadKeys.clear();
    for (size_t I = Ext.size(); I-- > 0;) {
      const ReadInfo &RI = T.Reads[Ext[I]];
      Key Y = RI.K;
      TxnId T2 = RI.Writer;

      if (Scratch.IsFirstRead[I]) {
        const Transaction &Writer = H.txn(T2);
        // Lines 15-18: iterate the smaller of KeysWt(t2) and readKeys,
        // picking per key the earliest future writer distinct from t2.
        auto Process = [&](Key X) {
          TwoSlot *Slot = Scratch.EarliestWts.find(X);
          if (!Slot)
            return;
          TxnId T1 = Slot->Top;
          if (T1 == T2)
            T1 = Slot->Second;
          if (T1 != NoTxn)
            Infer(T2, T1);
        };
        if (Writer.WriteKeys.size() <= Scratch.ReadKeys.size()) {
          for (Key X : Writer.WriteKeys)
            if (Scratch.ReadKeys.contains(X))
              Process(X);
        } else {
          Scratch.ReadKeys.forEach([&](Key X) {
            if (Writer.writesKey(X))
              Process(X);
          });
        }
      }

      // Lines 19-21: push t2 onto the per-key stack (distinct writers
      // only) and record the key as read below the scan point.
      TwoSlot &Slot = Scratch.EarliestWts.getOrInsert(Y);
      if (Slot.Top != T2) {
        Slot.Second = Slot.Top;
        Slot.Top = T2;
      }
      Scratch.ReadKeys.insert(Y);
    }
  }
}

/// Reusable scratch of the RA kernel.
struct RaScratch {
  /// Distinct externally-read keys of the current transaction and their
  /// (unique, by repeatable reads) writer. Hybrid: flat while small.
  HybridMap<Key, TxnId> ExtKeyWriter;
  std::vector<Key> ExtKeys;
  /// lastWrite[x]: the so-latest transaction of the current session so far
  /// that writes x (Algorithm 2, line 6). Cleared per session.
  std::unordered_map<Key, TxnId> LastWrite;
};

/// Algorithm 2 lines 5-18 for the so positions [\p BeginSo, \p EndSo) of
/// one session. The caller owns the lifetime of \p Scratch: LastWrite is
/// NOT cleared here, so consecutive calls over adjacent ranges of the same
/// session (with the same scratch) are equivalent to one whole-session
/// pass. This is what lets the streaming Monitor extend a session's
/// saturation as new transactions commit instead of re-scanning the
/// session.
template <typename Sink>
void saturateRaSessionRange(const History &H, SessionId S, size_t BeginSo,
                            size_t EndSo, RaScratch &Scratch, Sink &&Infer) {
  const std::vector<TxnId> &Sess = H.sessionTxns(S);
  for (size_t Pos = BeginSo; Pos < EndSo; ++Pos) {
    TxnId T3 = Sess[Pos];
    const Transaction &T = H.txn(T3);

    // Collect the distinct external read keys of t3 once.
    Scratch.ExtKeyWriter.clear();
    Scratch.ExtKeys.clear();
    for (uint32_t ReadIdx : T.ExtReads) {
      const ReadInfo &RI = T.Reads[ReadIdx];
      if (!Scratch.ExtKeyWriter.find(RI.K)) {
        Scratch.ExtKeyWriter.getOrInsert(RI.K) = RI.Writer;
        Scratch.ExtKeys.push_back(RI.K);
      }
    }

    // Lines 8-11: the so case. For each external read key x, the last
    // writer of x so-before t3 must be co-before the read's writer t1.
    for (Key X : Scratch.ExtKeys) {
      auto It = Scratch.LastWrite.find(X);
      if (It == Scratch.LastWrite.end())
        continue;
      TxnId T2 = It->second;
      TxnId T1 = *Scratch.ExtKeyWriter.find(X);
      if (T1 != T2)
        Infer(T2, T1);
    }

    // Lines 12-16: the wr case. For each wr predecessor t2, intersect
    // KeysWt(t2) with KeysRd(t3), iterating over the smaller set.
    for (TxnId T2 : T.ReadFroms) {
      const Transaction &Writer = H.txn(T2);
      auto Process = [&](TxnId T1) {
        if (T1 != T2)
          Infer(T2, T1);
      };
      if (Writer.WriteKeys.size() <= Scratch.ExtKeys.size()) {
        for (Key X : Writer.WriteKeys) {
          if (TxnId *T1 = Scratch.ExtKeyWriter.find(X))
            Process(*T1);
        }
      } else {
        for (Key X : Scratch.ExtKeys)
          if (Writer.writesKey(X))
            Process(*Scratch.ExtKeyWriter.find(X));
      }
    }

    // Lines 17-18: record t3 as the session's latest writer of its keys.
    for (Key X : T.WriteKeys)
      Scratch.LastWrite[X] = T3;
  }
}

/// Algorithm 2 lines 5-18 for one whole session. Sessions are independent,
/// so the parallel engine runs one call per session.
template <typename Sink>
void saturateRaSession(const History &H, SessionId S, RaScratch &Scratch,
                       Sink &&Infer) {
  Scratch.LastWrite.clear();
  saturateRaSessionRange(H, S, 0, H.sessionTxns(S).size(), Scratch,
                         std::forward<Sink>(Infer));
}

/// A writer entry of the CC kernel: transaction id plus its cached session
/// position so the monotone scan stays on contiguous memory.
struct CcWriterEntry {
  TxnId T;
  uint32_t SoIndex;
};

/// Algorithm 3 lines 9-15, binary-search form: the so-latest writer of the
/// key in one session strictly under the reader's happens-before
/// \p Frontier, or NoTxn when the session has no writer below it. The
/// streaming engine's per-reader re-runs use this instead of the batch
/// kernel's monotone pointers (a re-run visits readers out of so order, so
/// the pointers cannot stay monotone); the inference is identical. Pure
/// over the (so-sorted) \p List — safe to call from concurrent speculation
/// workers against a quiescent writer index.
inline TxnId ccFrontierWriter(const std::vector<CcWriterEntry> &List,
                              uint32_t Frontier) {
  auto It = std::lower_bound(
      List.begin(), List.end(), Frontier,
      [](const CcWriterEntry &E, uint32_t F) { return E.SoIndex < F; });
  if (It == List.begin())
    return NoTxn;
  return std::prev(It)->T;
}

/// Per-key writer index of the CC kernel (Algorithm 3, lastWrite / Writes):
/// for each key, the sessions writing it and their so-ordered writer lists,
/// plus the monotone scan pointers of the session currently being
/// processed. Only sessions that actually write the key are visited, which
/// preserves the O(n·k) bound while skipping the (common) all-bottom
/// entries.
struct CcKeyWriters {
  std::vector<SessionId> Sessions;
  std::vector<std::vector<CcWriterEntry>> Lists;
  /// Scan pointers, valid for the session stamped in Epoch.
  std::vector<uint32_t> Consumed;
  /// Last (pointer, reader-writer) emitted per slot, packed; suppresses
  /// the long runs of duplicate inferences hot keys otherwise produce.
  std::vector<uint64_t> LastEmit;
  SessionId Epoch = static_cast<SessionId>(-1);
};

/// Algorithm 3 lines 5-15: the per-key monotone last-writer scans under the
/// happens-before frontier \p HB, emitting inferred co' edges into
/// \p Infer. Exactly the loop checkCc runs; factored out so the streaming
/// Monitor re-saturates its window with the same kernel. Re-processing a
/// repeated (x, t1) pair is idempotent (the scan pointers are already
/// advanced), so no dedup pass is needed.
template <typename Sink>
void saturateCc(const History &H, const HappensBefore &HB, Sink &&Infer) {
  size_t K = H.numSessions();
  // Writes_s'[x] for all s' at once, grouped by key.
  std::unordered_map<Key, CcKeyWriters> Writers;
  Writers.reserve(H.numKeys() * 2);
  for (SessionId S = 0; S < K; ++S) {
    for (TxnId T : H.sessionTxns(S)) {
      const Transaction &Txn = H.txn(T);
      for (Key X : Txn.WriteKeys) {
        CcKeyWriters &KW = Writers[X];
        if (KW.Sessions.empty() || KW.Sessions.back() != S) {
          KW.Sessions.push_back(S);
          KW.Lists.emplace_back();
        }
        KW.Lists.back().push_back({T, Txn.SoIndex});
      }
    }
  }
  for (auto &[X, KW] : Writers) {
    KW.Consumed.assign(KW.Sessions.size(), 0);
    KW.LastEmit.assign(KW.Sessions.size(), ~uint64_t(0));
  }

  for (SessionId S = 0; S < K; ++S) {
    for (TxnId T3 : H.sessionTxns(S)) {
      const Transaction &T = H.txn(T3);
      if (T.ExtReads.empty())
        continue;
      const uint32_t *Row = &HB.Rows[static_cast<size_t>(T3) * K];

      // Line 8: iterate t1 wr_x-> t3.
      for (uint32_t ReadIdx : T.ExtReads) {
        const ReadInfo &RI = T.Reads[ReadIdx];
        TxnId T1 = RI.Writer;
        auto WIt = Writers.find(RI.K);
        if (WIt == Writers.end())
          continue;
        CcKeyWriters &KW = WIt->second;
        // Scan pointers are monotone along so within one scanning
        // session; entering a new session resets them (the paper keeps
        // them per session of t3).
        if (KW.Epoch != S) {
          KW.Epoch = S;
          std::fill(KW.Consumed.begin(), KW.Consumed.end(), 0);
          std::fill(KW.LastEmit.begin(), KW.LastEmit.end(), ~uint64_t(0));
        }
        // Lines 9-15: advance each writing session's last-writer pointer
        // under the happens-before frontier of t3 and emit the edge.
        for (size_t Slot = 0; Slot < KW.Sessions.size(); ++Slot) {
          const std::vector<CcWriterEntry> &List = KW.Lists[Slot];
          uint32_t Frontier = Row[KW.Sessions[Slot]];
          uint32_t &C = KW.Consumed[Slot];
          while (C < List.size() && List[C].SoIndex < Frontier)
            ++C;
          if (C == 0)
            continue;
          TxnId T2 = List[C - 1].T;
          if (T2 == T1)
            continue;
          uint64_t Emit = (static_cast<uint64_t>(C) << 32) | T1;
          if (KW.LastEmit[Slot] == Emit)
            continue;
          KW.LastEmit[Slot] = Emit;
          Infer(T2, T1);
        }
      }
    }
  }
}

} // namespace awdit::detail

#endif // AWDIT_CHECKER_SATURATION_IMPL_H
