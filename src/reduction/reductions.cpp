//===- reduction/reductions.cpp - §4 lower-bound reductions ------------------===//

#include "reduction/reductions.h"

#include "history/history_builder.h"
#include "support/assert.h"

using namespace awdit;

namespace {

/// Key of node a's plain variable x_a.
Key plainKey(uint32_t A) { return A + 1; }

/// Key of the pair variable x^a_b (read by node a's read transaction,
/// written by node b's write transaction).
Key pairKey(uint32_t A, uint32_t B, size_t N) {
  return N + 1 + static_cast<Key>(A) * N + B;
}

/// The unique value written by node a's write transaction.
Value nodeValue(uint32_t A) { return A + 1; }

/// Emits the §4.1 write transaction of node \p A.
void emitWriteTxn(HistoryBuilder &B, TxnId T, const UGraph &G, uint32_t A) {
  size_t N = G.numNodes();
  for (uint32_t Nb : G.neighbors(A)) {
    B.write(T, pairKey(Nb, A, N), nodeValue(A));
    B.write(T, plainKey(Nb), nodeValue(A));
  }
  B.write(T, plainKey(A), nodeValue(A));
}

/// Emits the §4.1 read transaction of node \p A: first the pair-key reads,
/// then (po-later) the plain-key reads.
void emitReadTxn(HistoryBuilder &B, TxnId T, const UGraph &G, uint32_t A) {
  size_t N = G.numNodes();
  std::vector<uint32_t> Nbs = G.neighbors(A);
  for (uint32_t Nb : Nbs)
    B.read(T, pairKey(A, Nb, N), nodeValue(Nb));
  for (uint32_t Nb : Nbs)
    B.read(T, plainKey(Nb), nodeValue(Nb));
}

History build(HistoryBuilder &B) {
  std::string Err;
  std::optional<History> H = B.build(&Err);
  if (!H)
    awditUnreachable(("reduction construction invalid: " + Err).c_str());
  return std::move(*H);
}

} // namespace

History awdit::reduceGeneral(const UGraph &G) {
  HistoryBuilder B;
  size_t N = G.numNodes();
  // Every transaction lives in its own session (so = empty).
  for (uint32_t A = 0; A < N; ++A) {
    SessionId SW = B.addSession();
    TxnId TW = B.beginTxn(SW);
    emitWriteTxn(B, TW, G, A);
  }
  for (uint32_t A = 0; A < N; ++A) {
    SessionId SR = B.addSession();
    TxnId TR = B.beginTxn(SR);
    emitReadTxn(B, TR, G, A);
  }
  return build(B);
}

History awdit::reduceRaTwoSessions(const UGraph &G) {
  HistoryBuilder B;
  size_t N = G.numNodes();
  SessionId SW = B.addSession();
  SessionId SR = B.addSession();
  // Write transactions: plain keys only (the §4.2 RA construction drops
  // the pair keys).
  for (uint32_t A = 0; A < N; ++A) {
    TxnId TW = B.beginTxn(SW);
    for (uint32_t Nb : G.neighbors(A))
      B.write(TW, plainKey(Nb), nodeValue(A));
    B.write(TW, plainKey(A), nodeValue(A));
  }
  for (uint32_t A = 0; A < N; ++A) {
    TxnId TR = B.beginTxn(SR);
    for (uint32_t Nb : G.neighbors(A))
      B.read(TR, plainKey(Nb), nodeValue(Nb));
  }
  return build(B);
}

History awdit::reduceRcSingleSession(const UGraph &G) {
  HistoryBuilder B;
  size_t N = G.numNodes();
  SessionId S = B.addSession();
  for (uint32_t A = 0; A < N; ++A) {
    TxnId TW = B.beginTxn(S);
    emitWriteTxn(B, TW, G, A);
  }
  for (uint32_t A = 0; A < N; ++A) {
    TxnId TR = B.beginTxn(S);
    emitReadTxn(B, TR, G, A);
  }
  return build(B);
}
