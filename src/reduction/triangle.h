//===- reduction/triangle.h - Triangle detection ------------------*- C++ -*-===//
//
// Part of the AWDIT reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Triangle-freeness oracles for the §4 reductions: the combinatorial
/// bitset algorithm (the textbook O(n·m/w) method the BMM hypothesis is
/// stated against) and a triangle extractor for cross-checking witnesses.
///
//===----------------------------------------------------------------------===//

#ifndef AWDIT_REDUCTION_TRIANGLE_H
#define AWDIT_REDUCTION_TRIANGLE_H

#include "reduction/ugraph.h"

#include <array>
#include <optional>

namespace awdit {

/// Returns some triangle (a, b, c) of \p G, or std::nullopt if \p G is
/// triangle-free. Runs the edge-iteration bitset algorithm.
std::optional<std::array<uint32_t, 3>> findTriangle(const UGraph &G);

/// Returns true iff \p G contains no triangle.
inline bool isTriangleFree(const UGraph &G) {
  return !findTriangle(G).has_value();
}

} // namespace awdit

#endif // AWDIT_REDUCTION_TRIANGLE_H
