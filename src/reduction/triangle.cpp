//===- reduction/triangle.cpp - Triangle detection ----------------------------===//

#include "reduction/triangle.h"

#include <bit>

using namespace awdit;

std::optional<std::array<uint32_t, 3>>
awdit::findTriangle(const UGraph &G) {
  // For each edge {a, b}, intersect the adjacency bitsets of a and b; any
  // common neighbour closes a triangle.
  for (const auto &[A, B] : G.edges()) {
    const std::vector<uint64_t> &RowA = G.adjacencyRow(A);
    const std::vector<uint64_t> &RowB = G.adjacencyRow(B);
    for (size_t W = 0; W < RowA.size(); ++W) {
      uint64_t Common = RowA[W] & RowB[W];
      if (Common != 0) {
        uint32_t C = static_cast<uint32_t>(
            W * 64 + std::countr_zero(Common));
        return std::array<uint32_t, 3>{A, B, C};
      }
    }
  }
  return std::nullopt;
}
