//===- reduction/ugraph.cpp - Undirected graphs ------------------------------===//

#include "reduction/ugraph.h"

#include "support/assert.h"

using namespace awdit;

UGraph::UGraph(size_t NumNodes)
    : N(NumNodes),
      Adj(NumNodes, std::vector<uint64_t>((NumNodes + 63) / 64, 0)) {}

void UGraph::addEdge(uint32_t A, uint32_t B) {
  AWDIT_ASSERT(A < N && B < N, "edge endpoint out of range");
  if (A == B || hasEdge(A, B))
    return;
  Adj[A][B / 64] |= uint64_t(1) << (B % 64);
  Adj[B][A / 64] |= uint64_t(1) << (A % 64);
  Edges.push_back({std::min(A, B), std::max(A, B)});
}

bool UGraph::hasEdge(uint32_t A, uint32_t B) const {
  return (Adj[A][B / 64] >> (B % 64)) & 1;
}

std::vector<uint32_t> UGraph::neighbors(uint32_t A) const {
  std::vector<uint32_t> Out;
  for (uint32_t B = 0; B < N; ++B)
    if (hasEdge(A, B))
      Out.push_back(B);
  return Out;
}

UGraph awdit::randomGraph(size_t NumNodes, double EdgeProbability,
                          Rng &Rand) {
  UGraph G(NumNodes);
  for (uint32_t A = 0; A < NumNodes; ++A)
    for (uint32_t B = A + 1; B < NumNodes; ++B)
      if (Rand.nextBool(EdgeProbability))
        G.addEdge(A, B);
  return G;
}

UGraph awdit::randomTriangleFreeGraph(size_t NumNodes,
                                      double EdgeProbability, Rng &Rand) {
  std::vector<bool> Side(NumNodes);
  for (size_t I = 0; I < NumNodes; ++I)
    Side[I] = Rand.nextBool(0.5);
  UGraph G(NumNodes);
  for (uint32_t A = 0; A < NumNodes; ++A)
    for (uint32_t B = A + 1; B < NumNodes; ++B)
      if (Side[A] != Side[B] && Rand.nextBool(EdgeProbability))
        G.addEdge(A, B);
  return G;
}
