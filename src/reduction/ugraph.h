//===- reduction/ugraph.h - Undirected graphs ---------------------*- C++ -*-===//
//
// Part of the AWDIT reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Undirected graphs with adjacency bitsets, the input side of the paper's
/// §4 lower-bound reductions from triangle freeness.
///
//===----------------------------------------------------------------------===//

#ifndef AWDIT_REDUCTION_UGRAPH_H
#define AWDIT_REDUCTION_UGRAPH_H

#include "support/rng.h"

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace awdit {

/// A simple undirected graph over nodes [0, numNodes()).
class UGraph {
public:
  explicit UGraph(size_t NumNodes);

  /// Adds the undirected edge {A, B}; self-loops and duplicates are
  /// ignored.
  void addEdge(uint32_t A, uint32_t B);

  bool hasEdge(uint32_t A, uint32_t B) const;

  size_t numNodes() const { return N; }
  size_t numEdges() const { return Edges.size(); }

  /// All edges as (min, max) pairs, in insertion order.
  const std::vector<std::pair<uint32_t, uint32_t>> &edges() const {
    return Edges;
  }

  /// Neighbours of \p A as an adjacency bitset (words of 64 nodes).
  const std::vector<uint64_t> &adjacencyRow(uint32_t A) const {
    return Adj[A];
  }

  /// Sorted neighbour list of \p A.
  std::vector<uint32_t> neighbors(uint32_t A) const;

private:
  size_t N;
  std::vector<std::vector<uint64_t>> Adj;
  std::vector<std::pair<uint32_t, uint32_t>> Edges;
};

/// Generates an Erdős–Rényi random graph G(n, p).
UGraph randomGraph(size_t NumNodes, double EdgeProbability, Rng &Rand);

/// Generates a random triangle-free graph: a random bipartite graph over a
/// random node bipartition (bipartite graphs have no odd cycles).
UGraph randomTriangleFreeGraph(size_t NumNodes, double EdgeProbability,
                               Rng &Rand);

} // namespace awdit

#endif // AWDIT_REDUCTION_UGRAPH_H
