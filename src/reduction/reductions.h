//===- reduction/reductions.h - §4 lower-bound reductions ---------*- C++ -*-===//
//
// Part of the AWDIT reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's fine-grained reductions from triangle freeness to weak
/// isolation testing (§4): given an undirected graph G, construct a history
/// H such that H is consistent iff G is triangle-free.
///
///  - reduceGeneral (§4.1): one session per transaction; consistency at
///    *any* level between CC and RC is equivalent to triangle freeness
///    (Lemma 4.2).
///  - reduceRaTwoSessions (§4.2): two sessions; RA-consistency iff
///    triangle-free (Lemma 4.3, behind Theorem 1.4).
///  - reduceRcSingleSession (§4.2): one session; RC-consistency iff
///    triangle-free (Lemma 4.4, behind Theorem 1.5).
///
/// Besides backing the lower bounds, these constructions make strong
/// property tests: the checkers' verdict must match the triangle oracle on
/// arbitrary graphs.
///
//===----------------------------------------------------------------------===//

#ifndef AWDIT_REDUCTION_REDUCTIONS_H
#define AWDIT_REDUCTION_REDUCTIONS_H

#include "history/history.h"
#include "reduction/ugraph.h"

namespace awdit {

/// §4.1 construction: per node a, a write transaction (keys x_b and x^b_a
/// for each neighbour b, plus x_a) and a read transaction, each in its own
/// session. History size O(m).
History reduceGeneral(const UGraph &G);

/// §4.2 RA construction: plain keys only; all write transactions in one
/// session, all read transactions in another.
History reduceRaTwoSessions(const UGraph &G);

/// §4.2 RC construction: the §4.1 transactions placed in a single session,
/// write transactions first.
History reduceRcSingleSession(const UGraph &G);

} // namespace awdit

#endif // AWDIT_REDUCTION_REDUCTIONS_H
