//===- store/page_alloc.h - mmap'd page-granular segment files ---*- C++ -*-===//
//
// Part of the AWDIT reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The lowest layer of the persistent state store (store/segment_store.h):
/// a memory-mapped, fixed-capacity segment file with bump allocation.
/// Bytes are written at most once — the store appends chunk extents with a
/// strictly growing write cursor — and once every byte of a page has been
/// written and synced, the page is sealed read-only with mprotect(), so a
/// stray write through the mapping faults instead of corrupting committed
/// state. Sealing is what makes a published root immutable by
/// construction: everything a root record points at lives in sealed (or
/// about-to-seal, already-synced) pages.
///
/// The class is deliberately dumb: no free lists, no reuse, no interior
/// mutation. Reclaiming space is the segment store's job (whole dead
/// segments are unlinked; fragmented ones are relocated), which keeps the
/// crash-consistency argument trivial — a segment's contents never change
/// under a reader.
///
//===----------------------------------------------------------------------===//

#ifndef AWDIT_STORE_PAGE_ALLOC_H
#define AWDIT_STORE_PAGE_ALLOC_H

#include <cstddef>
#include <cstdint>
#include <string>

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

namespace awdit {
namespace store {

/// The page granularity of sealing. Allocation alignment is finer
/// (ChunkAlign) so small chunks do not waste a page each; sealing rounds
/// down to whole pages.
inline constexpr size_t PageSize = 4096;

/// Alignment of chunk extents inside a segment: big enough that a chunk
/// header never straddles a cache line, small enough that thousands of
/// small chunks stay compact.
inline constexpr size_t ChunkAlign = 64;

inline size_t alignUp(size_t N, size_t A) { return (N + A - 1) & ~(A - 1); }

/// One mmap'd segment file. Movable, not copyable. Two modes:
///
///  - create(): a fresh writable file of fixed capacity, mapped
///    read-write; the owner appends via data() + advance(), syncs, and
///    seals completed pages.
///  - openExisting(): an existing file mapped read-only (resume and the
///    awdit-store inspector). No writes are possible through the mapping.
class MappedSegment {
public:
  MappedSegment() = default;
  MappedSegment(MappedSegment &&O) noexcept { *this = std::move(O); }
  MappedSegment &operator=(MappedSegment &&O) noexcept {
    if (this != &O) {
      reset();
      Map = O.Map;
      Capacity = O.Capacity;
      Used = O.Used;
      Sealed = O.Sealed;
      Writable = O.Writable;
      O.Map = nullptr;
      O.Capacity = O.Used = O.Sealed = 0;
    }
    return *this;
  }
  MappedSegment(const MappedSegment &) = delete;
  MappedSegment &operator=(const MappedSegment &) = delete;
  ~MappedSegment() { reset(); }

  /// Creates \p Path (failing if it exists — segments are written once) of
  /// \p Bytes capacity, rounded up to whole pages, and maps it read-write.
  bool create(const std::string &Path, size_t Bytes, std::string *Err) {
    reset();
    size_t Cap = alignUp(Bytes, PageSize);
    int Fd = ::open(Path.c_str(), O_RDWR | O_CREAT | O_EXCL, 0644);
    if (Fd < 0)
      return fail(Err, "cannot create segment '" + Path + "'");
    if (::ftruncate(Fd, static_cast<off_t>(Cap)) != 0) {
      ::close(Fd);
      ::unlink(Path.c_str());
      return fail(Err, "cannot size segment '" + Path + "'");
    }
    void *M = ::mmap(nullptr, Cap, PROT_READ | PROT_WRITE, MAP_SHARED, Fd, 0);
    ::close(Fd); // the mapping keeps the file alive
    if (M == MAP_FAILED)
      return fail(Err, "cannot map segment '" + Path + "'");
    Map = static_cast<char *>(M);
    Capacity = Cap;
    Used = 0;
    Sealed = 0;
    Writable = true;
    return true;
  }

  /// Maps an existing segment read-only, its whole file size.
  bool openExisting(const std::string &Path, std::string *Err) {
    reset();
    int Fd = ::open(Path.c_str(), O_RDONLY);
    if (Fd < 0)
      return fail(Err, "cannot open segment '" + Path + "'");
    struct stat St;
    if (::fstat(Fd, &St) != 0 || St.st_size == 0) {
      ::close(Fd);
      return fail(Err, "cannot stat segment '" + Path + "'");
    }
    size_t Cap = static_cast<size_t>(St.st_size);
    void *M = ::mmap(nullptr, Cap, PROT_READ, MAP_SHARED, Fd, 0);
    ::close(Fd);
    if (M == MAP_FAILED)
      return fail(Err, "cannot map segment '" + Path + "'");
    Map = static_cast<char *>(M);
    Capacity = Cap;
    Used = Cap; // nothing further can be allocated
    Sealed = Cap;
    Writable = false;
    return true;
  }

  bool mapped() const { return Map != nullptr; }
  bool writable() const { return Writable; }
  size_t capacity() const { return Capacity; }
  size_t used() const { return Used; }
  size_t remaining() const { return Capacity - Used; }

  const char *data() const { return Map; }
  char *writableData() { return Writable ? Map : nullptr; }

  /// Bump-allocates \p Bytes (aligned to ChunkAlign) and returns the
  /// offset, or SIZE_MAX when the segment is full.
  size_t allocate(size_t Bytes) {
    size_t Off = alignUp(Used, ChunkAlign);
    if (Off + Bytes > Capacity)
      return SIZE_MAX;
    Used = Off + Bytes;
    return Off;
  }

  /// msync()s [0, used()) so appended bytes are durable before the root
  /// record referencing them is written.
  bool sync(std::string *Err) {
    if (!Writable || Used == 0)
      return true;
    if (::msync(Map, alignUp(Used, PageSize), MS_SYNC) != 0)
      return fail(Err, "msync failed on segment");
    return true;
  }

  /// Seals every fully written page: mprotect(PROT_READ) on
  /// [0, floor(used())). Idempotent; call after sync().
  void sealWrittenPages() {
    if (!Writable)
      return;
    size_t UpTo = Used & ~(PageSize - 1);
    if (UpTo > Sealed) {
      ::mprotect(Map, UpTo, PROT_READ);
      Sealed = UpTo;
    }
  }

private:
  static bool fail(std::string *Err, const std::string &Msg) {
    if (Err)
      *Err = Msg;
    return false;
  }

  void reset() {
    if (Map)
      ::munmap(Map, Capacity);
    Map = nullptr;
    Capacity = Used = Sealed = 0;
    Writable = false;
  }

  char *Map = nullptr;
  size_t Capacity = 0;
  /// Write cursor: bytes [0, Used) are allocated.
  size_t Used = 0;
  /// Bytes [0, Sealed) are mprotect'd read-only.
  size_t Sealed = 0;
  bool Writable = false;
};

} // namespace store
} // namespace awdit

#endif // AWDIT_STORE_PAGE_ALLOC_H
