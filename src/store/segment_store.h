//===- store/segment_store.h - append-only CoW chunk store -------*- C++ -*-===//
//
// Part of the AWDIT reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The persistent state store behind checkpoint format v2
/// (`awdit monitor --checkpoint-store DIR`): a directory of append-only,
/// mmap-backed segment files plus a root log (store/root_log.h). State is
/// stored as *chunks* — checksummed byte extents keyed by a 64-bit id —
/// and a commit publishes a complete chunk table (the "root"):
///
///   - The caller hands commit() the full chunk set for the new state.
///     Chunks whose (id, size, FNV-1a) match the current root are carried
///     by reference — zero bytes written. Changed or new chunks are
///     appended to the open segment, each framed as
///     [u32 magic "AWCK"] [u32 size] [u64 id] [u64 hash] [payload] on a
///     64-byte boundary. That hash-gated copy-on-write is what makes a
///     steady-state checkpoint O(delta): the serializer re-emits every
///     chunk, the store writes only the ones that moved.
///   - Segments are written once: a strictly growing cursor, msync before
///     any root referencing the bytes, mprotect(PROT_READ) sealing of
///     completed pages (store/page_alloc.h). Full segments are sealed and
///     a fresh `seg-%06u.awseg` (default 4 MiB) is started.
///   - The commit point is one fsync'd append to the root log. A crash at
///     any moment can only tear the root-log tail or the open segment's
///     unpublished extents — both invisible to the last published root —
///     so recovery is "truncate torn tail, map the segments the last root
///     names".
///
/// Space is reclaimed with per-segment refcounts (live chunks referencing
/// the segment under the current root): a sealed segment whose refcount
/// drops to zero is dead, and a sealed segment under 25% live is picked
/// (one per commit) as a relocation victim — its surviving chunks are
/// force-reappended so the whole segment dies. Dead segments are unlinked
/// by a background compactor thread, but only after the root log has been
/// rotated down to the current root, so no record on disk references a
/// file about to vanish.
///
//===----------------------------------------------------------------------===//

#ifndef AWDIT_STORE_SEGMENT_STORE_H
#define AWDIT_STORE_SEGMENT_STORE_H

#include "store/page_alloc.h"
#include "store/root_log.h"

#include <condition_variable>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <utility>
#include <vector>

namespace awdit {
namespace store {

/// Target capacity of a data segment. Large enough that a steady-state
/// delta commit (tens to hundreds of KB) does not churn files, small
/// enough that one mostly-dead segment pins little space.
inline constexpr size_t SegmentTargetBytes = 4u << 20;

/// Rotate the root log down to one record when it outgrows this.
inline constexpr uint64_t RootLogRotateBytes = 256u << 10;

/// Relocate a sealed segment when less than this fraction of its bytes
/// are live under the current root.
inline constexpr double RelocateLiveFraction = 0.25;

/// Where a chunk lives under the current root.
struct ChunkEntry {
  uint32_t Seg = 0;
  uint64_t Offset = 0; ///< of the chunk header inside the segment
  uint32_t Size = 0;   ///< payload bytes (header excluded)
  uint64_t Hash = 0;   ///< FNV-1a of the payload
};

struct SegmentInfo {
  uint32_t Id = 0;
  uint64_t EndBytes = 0;   ///< bytes up to the last written extent
  uint64_t LiveBytes = 0;  ///< header+payload bytes live under the root
  uint64_t LiveChunks = 0; ///< refcount: live chunks in this segment
  bool Open = false;
};

struct StoreStats {
  uint64_t Segments = 0;
  uint64_t LiveChunks = 0;
  uint64_t LiveBytes = 0;
  uint64_t DeadBytes = 0; ///< written but no longer referenced
  uint64_t RootLogBytes = 0;
  uint64_t RootRecords = 0;
  uint64_t LastRootSeq = 0;
  std::vector<SegmentInfo> PerSegment;
};

struct FsckReport {
  uint64_t Roots = 0;
  uint64_t ChunksChecked = 0;
  uint64_t SegmentFiles = 0;
  uint64_t StraySegmentFiles = 0;
  bool TornTail = false;
  std::vector<std::string> Errors;
  bool clean() const { return Errors.empty(); }
};

class SegmentStore {
public:
  SegmentStore() = default;
  ~SegmentStore();
  SegmentStore(const SegmentStore &) = delete;
  SegmentStore &operator=(const SegmentStore &) = delete;

  /// Opens \p Dir for committing, creating it if needed. Recovers from the
  /// last valid root: torn root-log tails are truncated, segment files no
  /// root references (unpublished leftovers of a crashed commit) are
  /// removed, referenced segments are mapped read-only.
  bool open(const std::string &Dir, std::string *Err);

  /// Opens \p Dir for inspection only (awdit-store): nothing is truncated,
  /// rotated, or unlinked.
  bool openReadOnly(const std::string &Dir, std::string *Err);

  /// True if \p Dir looks like a segment store (has a root log file) —
  /// how `--resume` tells a v2 store directory from a v1 snapshot
  /// directory.
  static bool isStoreDir(const std::string &Dir);

  bool hasRoot() const { return Roots.hasRoot(); }
  uint64_t rootSeq() const { return Roots.lastSeq(); }

  /// The caller-owned meta blob of the current root (checkpoint meta +
  /// machine state in the checkpoint-v2 usage).
  const std::string &rootMeta() const { return RootMetaBlob; }

  /// Ids of every chunk under the current root, ascending.
  std::vector<uint64_t> chunkIds() const;

  /// (id, payload bytes) of every chunk under the current root, ascending
  /// by id — what `awdit-store stats` groups into per-kind breakdowns
  /// (the kind lives in the id's top byte, support/serialize.h).
  std::vector<std::pair<uint64_t, uint32_t>> chunkEntries() const;

  /// Reads one chunk's payload, verifying the header and checksum.
  bool readChunk(uint64_t Id, std::string &Out, std::string *Err) const;

  /// Publishes a new root: \p MetaBlob plus exactly the chunks in
  /// \p Chunks (ids must be unique). Unchanged chunks cost no data bytes.
  /// On success the new root is durable; on failure the previous root
  /// still stands.
  bool commit(const std::string &MetaBlob,
              const std::vector<std::pair<uint64_t, std::string_view>> &Chunks,
              std::string *Err);

  /// Cumulative bytes appended by commits through this handle — chunk
  /// frames plus root records. The O(delta) bench meters this.
  uint64_t bytesAppended() const { return BytesAppended; }
  uint64_t commits() const { return Commits; }

  StoreStats stats() const;

  /// Walks every valid root record, verifying each referenced chunk's
  /// bounds, header, and checksum, and cross-checking per-segment
  /// refcounts of the newest root. Standalone (no store instance).
  static bool fsck(const std::string &Dir, FsckReport &Report,
                   std::string *Err);

private:
  struct Segment {
    MappedSegment Map;
    uint32_t Id = 0;
    std::string Path;
    uint64_t EndBytes = 0;
    uint64_t LiveBytes = 0;
    uint64_t LiveChunks = 0;
  };

  bool loadRootTable(std::string_view Payload, std::string *Err);
  bool mapReferencedSegments(std::string *Err);
  bool ensureOpenSegment(size_t Need, std::string *Err);
  bool appendChunk(uint64_t Id, std::string_view Bytes, uint64_t Hash,
                   ChunkEntry &E, std::string *Err);
  void recomputeLiveCounts();
  void reclaimDeadSegments();
  std::string segmentPath(uint32_t Id) const;

  void startCompactor();
  void stopCompactor();
  void compactorMain();

  std::string Dir;
  bool ReadOnly = false;
  RootLog Roots;
  std::string RootMetaBlob;
  std::map<uint64_t, ChunkEntry> Table; ///< current root's chunk table
  std::map<uint32_t, Segment> Segments; ///< mapped segments by id
  uint32_t OpenSeg = UINT32_MAX;        ///< id of the writable segment
  uint32_t NextSegId = 0;
  uint64_t BytesAppended = 0;
  uint64_t Commits = 0;

  std::thread Compactor;
  std::mutex CompactorMu;
  std::condition_variable CompactorCv;
  std::vector<std::string> UnlinkQueue;
  bool CompactorStop = false;
};

} // namespace store
} // namespace awdit

#endif // AWDIT_STORE_SEGMENT_STORE_H
