//===- store/root_log.h - fsync'd append-only root records -------*- C++ -*-===//
//
// Part of the AWDIT reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The durability point of the segment store: `roots.awrl`, an append-only
/// file of checksummed root records. A commit appends one record (payload =
/// the serialized root: the live chunk table, see segment_store.h) and
/// fsync()s; the store's data segments were already synced before the
/// append, so the moment the record's last byte is durable, the commit is
/// published. Recovery scans forward from the start and truncates at the
/// first invalid record — a torn tail from a crash mid-append reverts to
/// the previous root, never to garbage.
///
/// Record framing (all integers little-endian):
///
///   [u32 magic "AWRT"] [u32 version] [u64 seq] [u64 payload size]
///   [u64 FNV-1a of payload] [payload]
///
/// Sequence numbers strictly increase; scanAll() (used by fsck) reports
/// every valid record, open() keeps only the last. The log is rotated —
/// rewritten via temp+rename with just the newest record — when it grows
/// past a threshold or when rotation is needed to unpin dead segments
/// (reclamation must not break an older root a concurrent reader of the
/// previous file generation may still hold; rename keeps that file alive
/// via its open descriptor).
///
//===----------------------------------------------------------------------===//

#ifndef AWDIT_STORE_ROOT_LOG_H
#define AWDIT_STORE_ROOT_LOG_H

#include <cstdint>
#include <string>
#include <vector>

namespace awdit {
namespace store {

/// The root-log record version this build writes and reads.
inline constexpr uint32_t RootLogVersion = 1;

/// A parsed root record (scanAll / lastPayload).
struct RootRecord {
  uint64_t Seq = 0;
  std::string Payload;
};

class RootLog {
public:
  RootLog() = default;
  ~RootLog();
  RootLog(const RootLog &) = delete;
  RootLog &operator=(const RootLog &) = delete;

  /// Opens (creating if absent) \p Dir/roots.awrl, scans it, truncates any
  /// torn tail, and positions for appending. Returns false only on I/O or
  /// structural errors that truncation cannot repair (e.g. unreadable
  /// file); a valid-but-empty log opens fine with hasRoot() == false.
  bool open(const std::string &Dir, std::string *Err);

  /// Opens read-only for inspection; no truncation is performed (a torn
  /// tail is simply ignored, as recovery would).
  bool openReadOnly(const std::string &Dir, std::string *Err);

  bool hasRoot() const { return HasLast; }
  uint64_t lastSeq() const { return LastSeq; }
  const std::string &lastPayload() const { return LastPayload; }

  /// Bytes currently in the log file (drives rotation policy).
  uint64_t sizeBytes() const { return FileBytes; }
  /// Valid records seen at open() plus appended since.
  uint64_t recordCount() const { return Records; }

  /// Appends one record with seq = lastSeq()+1 and fsync()s. On success
  /// the record is the published root.
  bool append(const std::string &Payload, std::string *Err);

  /// Rewrites the log as a single record (the current last root) via
  /// temp + rename + directory fsync, then continues appending to the new
  /// file. No-op without a root.
  bool rotate(std::string *Err);

  /// Parses every valid record of \p Dir/roots.awrl in order, stopping at
  /// the first invalid byte (reported via \p TornTail). For awdit-store
  /// fsck.
  static bool scanAll(const std::string &Dir, std::vector<RootRecord> &Out,
                      bool &TornTail, std::string *Err);

  static std::string filePath(const std::string &Dir);

private:
  bool scanAndTruncate(std::string *Err);

  int Fd = -1;
  std::string Path;
  std::string Dir;
  bool ReadOnly = false;
  bool HasLast = false;
  uint64_t LastSeq = 0;
  std::string LastPayload;
  uint64_t FileBytes = 0;
  uint64_t Records = 0;
};

} // namespace store
} // namespace awdit

#endif // AWDIT_STORE_ROOT_LOG_H
