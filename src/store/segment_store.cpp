//===- store/segment_store.cpp - append-only CoW chunk store ----*- C++ -*-===//
//
// Part of the AWDIT reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "store/segment_store.h"

#include "support/serialize.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <set>

#include <dirent.h>
#include <sys/stat.h>
#include <unistd.h>

namespace awdit {
namespace store {

namespace {

constexpr uint32_t ChunkMagic = 0x4B435741; // "AWCK" little-endian
constexpr size_t ChunkHeaderBytes = 4 + 4 + 8 + 8;

bool setErr(std::string *Err, const std::string &Msg) {
  if (Err)
    *Err = Msg;
  return false;
}

bool makeDir(const std::string &Dir) {
  struct stat St;
  if (::stat(Dir.c_str(), &St) == 0)
    return S_ISDIR(St.st_mode);
  // Create missing parents too: the server derives per-stream store
  // directories under a configured root that need not exist yet.
  std::error_code Ec;
  std::filesystem::create_directories(Dir, Ec);
  return !Ec && std::filesystem::is_directory(Dir, Ec);
}

/// seg-%06u.awseg → segment id, or false for any other name.
bool parseSegmentName(const char *Name, uint32_t &Id) {
  unsigned V = 0;
  int Len = 0;
  if (std::sscanf(Name, "seg-%6u.awseg%n", &V, &Len) != 1)
    return false;
  if (Name[Len] != '\0')
    return false;
  Id = V;
  return true;
}

std::vector<std::pair<uint32_t, std::string>>
listSegmentFiles(const std::string &Dir) {
  std::vector<std::pair<uint32_t, std::string>> Out;
  DIR *D = ::opendir(Dir.c_str());
  if (!D)
    return Out;
  while (struct dirent *E = ::readdir(D)) {
    uint32_t Id;
    if (parseSegmentName(E->d_name, Id))
      Out.emplace_back(Id, Dir + "/" + E->d_name);
  }
  ::closedir(D);
  std::sort(Out.begin(), Out.end());
  return Out;
}

std::string encodeRootPayload(const std::string &MetaBlob,
                              const std::map<uint64_t, ChunkEntry> &Table) {
  std::string Out;
  ByteWriter W(Out);
  W.str(MetaBlob);
  W.u64(Table.size());
  for (const auto &[Id, E] : Table) {
    W.u64(Id);
    W.u32(E.Seg);
    W.u64(E.Offset);
    W.u32(E.Size);
    W.u64(E.Hash);
  }
  return Out;
}

bool decodeRootPayload(std::string_view Payload, std::string &MetaBlob,
                       std::map<uint64_t, ChunkEntry> &Table,
                       std::string *Err) {
  ByteReader R(Payload);
  MetaBlob = R.str();
  uint64_t N = R.u64();
  Table.clear();
  if (!R.checkCount(N, 8 + 4 + 8 + 4 + 8))
    return setErr(Err, "root record chunk table overruns payload");
  for (uint64_t I = 0; I < N; ++I) {
    uint64_t Id = R.u64();
    ChunkEntry E;
    E.Seg = R.u32();
    E.Offset = R.u64();
    E.Size = R.u32();
    E.Hash = R.u64();
    if (!Table.emplace(Id, E).second)
      return setErr(Err, "root record repeats chunk id");
  }
  if (!R.ok() || R.remaining() != 0)
    return setErr(Err, "malformed root record payload");
  return true;
}

/// Validates one chunk extent against its segment mapping and reads the
/// payload. Shared by readChunk and fsck.
bool checkAndReadChunk(const MappedSegment &Seg, uint64_t Id,
                       const ChunkEntry &E, std::string *Out,
                       std::string *Err) {
  if (E.Offset + ChunkHeaderBytes + E.Size > Seg.capacity() ||
      E.Offset + ChunkHeaderBytes + E.Size < E.Offset)
    return setErr(Err, "chunk extent out of segment bounds");
  const char *P = Seg.data() + E.Offset;
  ByteReader R(P, ChunkHeaderBytes);
  if (R.u32() != ChunkMagic)
    return setErr(Err, "chunk header magic mismatch");
  if (R.u32() != E.Size)
    return setErr(Err, "chunk header size mismatch");
  if (R.u64() != Id)
    return setErr(Err, "chunk header id mismatch");
  uint64_t StoredHash = R.u64();
  if (StoredHash != E.Hash)
    return setErr(Err, "chunk header hash differs from root entry");
  std::string_view Payload(P + ChunkHeaderBytes, E.Size);
  if (fnv1a(Payload) != E.Hash)
    return setErr(Err, "chunk payload checksum mismatch");
  if (Out)
    Out->assign(Payload.data(), Payload.size());
  return true;
}

} // namespace

SegmentStore::~SegmentStore() { stopCompactor(); }

std::string SegmentStore::segmentPath(uint32_t Id) const {
  char Name[32];
  std::snprintf(Name, sizeof(Name), "seg-%06u.awseg", Id);
  return Dir + "/" + Name;
}

bool SegmentStore::isStoreDir(const std::string &Dir) {
  struct stat St;
  return ::stat(RootLog::filePath(Dir).c_str(), &St) == 0 &&
         S_ISREG(St.st_mode);
}

bool SegmentStore::loadRootTable(std::string_view Payload, std::string *Err) {
  return decodeRootPayload(Payload, RootMetaBlob, Table, Err);
}

bool SegmentStore::mapReferencedSegments(std::string *Err) {
  std::set<uint32_t> Needed;
  for (const auto &[Id, E] : Table)
    Needed.insert(E.Seg);
  for (uint32_t SegId : Needed) {
    Segment S;
    S.Id = SegId;
    S.Path = segmentPath(SegId);
    if (!S.Map.openExisting(S.Path, Err))
      return false;
    Segments.emplace(SegId, std::move(S));
  }
  return true;
}

bool SegmentStore::open(const std::string &D, std::string *Err) {
  Dir = D;
  ReadOnly = false;
  if (!makeDir(Dir))
    return setErr(Err, "cannot create store directory '" + Dir + "'");
  if (!Roots.open(Dir, Err))
    return false;
  Table.clear();
  Segments.clear();
  RootMetaBlob.clear();
  if (Roots.hasRoot()) {
    if (!loadRootTable(Roots.lastPayload(), Err))
      return false;
    if (!mapReferencedSegments(Err))
      return false;
  }
  // Collapse the log to the recovered root, then clear crash leftovers:
  // any segment file no longer referenced (an unpublished commit's new
  // segment, or a dead segment the compactor never got to unlink).
  if (Roots.hasRoot() && !Roots.rotate(Err))
    return false;
  NextSegId = 0;
  for (const auto &[SegId, Path] : listSegmentFiles(Dir)) {
    NextSegId = std::max(NextSegId, SegId + 1);
    if (!Segments.count(SegId))
      ::unlink(Path.c_str());
  }
  recomputeLiveCounts();
  OpenSeg = UINT32_MAX; // appends start a fresh segment
  startCompactor();
  return true;
}

bool SegmentStore::openReadOnly(const std::string &D, std::string *Err) {
  Dir = D;
  ReadOnly = true;
  if (!Roots.openReadOnly(Dir, Err))
    return false;
  Table.clear();
  Segments.clear();
  RootMetaBlob.clear();
  if (Roots.hasRoot()) {
    if (!loadRootTable(Roots.lastPayload(), Err))
      return false;
    if (!mapReferencedSegments(Err))
      return false;
  }
  recomputeLiveCounts();
  return true;
}

std::vector<uint64_t> SegmentStore::chunkIds() const {
  std::vector<uint64_t> Ids;
  Ids.reserve(Table.size());
  for (const auto &[Id, E] : Table)
    Ids.push_back(Id);
  return Ids;
}

std::vector<std::pair<uint64_t, uint32_t>>
SegmentStore::chunkEntries() const {
  std::vector<std::pair<uint64_t, uint32_t>> Entries;
  Entries.reserve(Table.size());
  for (const auto &[Id, E] : Table)
    Entries.emplace_back(Id, E.Size);
  return Entries;
}

bool SegmentStore::readChunk(uint64_t Id, std::string &Out,
                             std::string *Err) const {
  auto It = Table.find(Id);
  if (It == Table.end())
    return setErr(Err, "chunk not present under the current root");
  auto SegIt = Segments.find(It->second.Seg);
  if (SegIt == Segments.end())
    return setErr(Err, "chunk references an unmapped segment");
  return checkAndReadChunk(SegIt->second.Map, Id, It->second, &Out, Err);
}

bool SegmentStore::ensureOpenSegment(size_t Need, std::string *Err) {
  size_t Framed = alignUp(Need, ChunkAlign);
  if (OpenSeg != UINT32_MAX) {
    Segment &S = Segments.at(OpenSeg);
    if (alignUp(S.Map.used(), ChunkAlign) + Framed <= S.Map.capacity())
      return true;
    // Full: make it durable and immutable, then start a fresh file.
    if (!S.Map.sync(Err))
      return false;
    S.Map.sealWrittenPages();
    OpenSeg = UINT32_MAX;
  }
  Segment S;
  S.Id = NextSegId++;
  S.Path = segmentPath(S.Id);
  if (!S.Map.create(S.Path, std::max(Framed, SegmentTargetBytes), Err))
    return false;
  uint32_t Id = S.Id;
  Segments.emplace(Id, std::move(S));
  OpenSeg = Id;
  return true;
}

bool SegmentStore::appendChunk(uint64_t Id, std::string_view Bytes,
                               uint64_t Hash, ChunkEntry &E,
                               std::string *Err) {
  if (Bytes.size() > UINT32_MAX - ChunkHeaderBytes)
    return setErr(Err, "chunk exceeds the 4 GiB frame limit");
  size_t Need = ChunkHeaderBytes + Bytes.size();
  if (!ensureOpenSegment(Need, Err))
    return false;
  Segment &S = Segments.at(OpenSeg);
  size_t Off = S.Map.allocate(Need);
  if (Off == SIZE_MAX)
    return setErr(Err, "segment allocation failed after ensure");
  std::string Header;
  ByteWriter W(Header);
  W.u32(ChunkMagic);
  W.u32(static_cast<uint32_t>(Bytes.size()));
  W.u64(Id);
  W.u64(Hash);
  char *P = S.Map.writableData() + Off;
  std::memcpy(P, Header.data(), Header.size());
  std::memcpy(P + ChunkHeaderBytes, Bytes.data(), Bytes.size());
  S.EndBytes = S.Map.used();
  E.Seg = S.Id;
  E.Offset = Off;
  E.Size = static_cast<uint32_t>(Bytes.size());
  E.Hash = Hash;
  BytesAppended += Need;
  return true;
}

void SegmentStore::recomputeLiveCounts() {
  for (auto &[SegId, S] : Segments) {
    S.LiveBytes = 0;
    S.LiveChunks = 0;
  }
  for (const auto &[Id, E] : Table) {
    auto It = Segments.find(E.Seg);
    if (It == Segments.end())
      continue;
    It->second.LiveBytes += ChunkHeaderBytes + E.Size;
    It->second.LiveChunks += 1;
    It->second.EndBytes = std::max(
        It->second.EndBytes,
        static_cast<uint64_t>(E.Offset + ChunkHeaderBytes + E.Size));
  }
}

bool SegmentStore::commit(
    const std::string &MetaBlob,
    const std::vector<std::pair<uint64_t, std::string_view>> &Chunks,
    std::string *Err) {
  if (ReadOnly)
    return setErr(Err, "store opened read-only");

  // Pick at most one mostly-dead sealed segment to vacate this commit: its
  // surviving chunks are treated as changed so nothing live remains in it.
  uint32_t Victim = UINT32_MAX;
  for (const auto &[SegId, S] : Segments) {
    if (SegId == OpenSeg || S.LiveChunks == 0 || S.EndBytes == 0)
      continue;
    if (static_cast<double>(S.LiveBytes) <
        RelocateLiveFraction * static_cast<double>(S.EndBytes)) {
      Victim = SegId;
      break;
    }
  }

  std::map<uint64_t, ChunkEntry> NewTable;
  for (const auto &[Id, Bytes] : Chunks) {
    uint64_t Hash = fnv1a(Bytes);
    ChunkEntry E;
    auto It = Table.find(Id);
    if (It != Table.end() && It->second.Hash == Hash &&
        It->second.Size == Bytes.size() && It->second.Seg != Victim) {
      E = It->second; // unchanged: carry by reference, no bytes written
    } else if (!appendChunk(Id, Bytes, Hash, E, Err)) {
      return false;
    }
    if (!NewTable.emplace(Id, E).second)
      return setErr(Err, "duplicate chunk id in commit");
  }

  // Data before root: everything the new root references must be durable
  // before the root record that publishes it.
  if (OpenSeg != UINT32_MAX) {
    Segment &S = Segments.at(OpenSeg);
    if (!S.Map.sync(Err))
      return false;
    S.Map.sealWrittenPages();
  }

  std::string Payload = encodeRootPayload(MetaBlob, NewTable);
  if (!Roots.append(Payload, Err))
    return false;
  BytesAppended += Payload.size();

  // Published: the new table is the truth from here on.
  Table = std::move(NewTable);
  RootMetaBlob = MetaBlob;
  ++Commits;
  recomputeLiveCounts();
  reclaimDeadSegments();
  return true;
}

void SegmentStore::reclaimDeadSegments() {
  std::vector<uint32_t> Dead;
  for (const auto &[SegId, S] : Segments)
    if (SegId != OpenSeg && S.LiveChunks == 0)
      Dead.push_back(SegId);
  bool WantRotate = !Dead.empty() || Roots.sizeBytes() > RootLogRotateBytes;
  if (!WantRotate)
    return;
  // Rotation first: after it, no on-disk root record references the dead
  // files, so unlinking them cannot orphan a recoverable root.
  if (!Roots.rotate(nullptr))
    return; // keep the files; a failed rotation only wastes space
  std::vector<std::string> Paths;
  for (uint32_t SegId : Dead) {
    Paths.push_back(Segments.at(SegId).Path);
    Segments.erase(SegId); // munmap now; the unlink happens off-thread
  }
  if (Paths.empty())
    return;
  {
    std::lock_guard<std::mutex> Lock(CompactorMu);
    for (auto &P : Paths)
      UnlinkQueue.push_back(std::move(P));
  }
  CompactorCv.notify_one();
}

StoreStats SegmentStore::stats() const {
  StoreStats St;
  St.Segments = Segments.size();
  St.RootLogBytes = Roots.sizeBytes();
  St.RootRecords = Roots.recordCount();
  St.LastRootSeq = Roots.lastSeq();
  for (const auto &[SegId, S] : Segments) {
    SegmentInfo Info;
    Info.Id = SegId;
    Info.EndBytes = std::max<uint64_t>(S.EndBytes, S.Map.writable()
                                                       ? S.Map.used()
                                                       : S.EndBytes);
    Info.LiveBytes = S.LiveBytes;
    Info.LiveChunks = S.LiveChunks;
    Info.Open = SegId == OpenSeg;
    St.LiveChunks += S.LiveChunks;
    St.LiveBytes += S.LiveBytes;
    St.DeadBytes += Info.EndBytes > S.LiveBytes ? Info.EndBytes - S.LiveBytes
                                                : 0;
    St.PerSegment.push_back(Info);
  }
  return St;
}

bool SegmentStore::fsck(const std::string &Dir, FsckReport &Report,
                        std::string *Err) {
  Report = FsckReport();
  std::vector<RootRecord> Records;
  if (!RootLog::scanAll(Dir, Records, Report.TornTail, Err))
    return false;
  Report.Roots = Records.size();

  // Map every segment file in the directory once.
  std::map<uint32_t, MappedSegment> Maps;
  auto Files = listSegmentFiles(Dir);
  Report.SegmentFiles = Files.size();
  for (const auto &[SegId, Path] : Files) {
    MappedSegment M;
    std::string MapErr;
    if (!M.openExisting(Path, &MapErr)) {
      Report.Errors.push_back("segment " + Path + ": " + MapErr);
      continue;
    }
    Maps.emplace(SegId, std::move(M));
  }

  std::set<uint32_t> Referenced;
  for (const RootRecord &Rec : Records) {
    std::string Meta;
    std::map<uint64_t, ChunkEntry> Table;
    std::string DecErr;
    if (!decodeRootPayload(Rec.Payload, Meta, Table, &DecErr)) {
      Report.Errors.push_back("root seq " + std::to_string(Rec.Seq) + ": " +
                              DecErr);
      continue;
    }
    std::map<uint32_t, std::vector<std::pair<uint64_t, uint64_t>>> Extents;
    for (const auto &[Id, E] : Table) {
      Referenced.insert(E.Seg);
      Extents[E.Seg].emplace_back(E.Offset,
                                  E.Offset + ChunkHeaderBytes + E.Size);
      auto MapIt = Maps.find(E.Seg);
      if (MapIt == Maps.end()) {
        Report.Errors.push_back(
            "root seq " + std::to_string(Rec.Seq) + " chunk " +
            std::to_string(Id) + ": references missing segment " +
            std::to_string(E.Seg));
        continue;
      }
      std::string ChkErr;
      if (!checkAndReadChunk(MapIt->second, Id, E, nullptr, &ChkErr))
        Report.Errors.push_back("root seq " + std::to_string(Rec.Seq) +
                                " chunk " + std::to_string(Id) + ": " +
                                ChkErr);
      else
        ++Report.ChunksChecked;
    }
    // Extent integrity: within one root, no two live chunks may share
    // bytes — an overlap means a refcount or allocation bug, since the
    // store's bump allocator hands out disjoint extents.
    for (auto &[SegId, Ranges] : Extents) {
      std::sort(Ranges.begin(), Ranges.end());
      for (size_t I = 1; I < Ranges.size(); ++I)
        if (Ranges[I].first < Ranges[I - 1].second)
          Report.Errors.push_back("root seq " + std::to_string(Rec.Seq) +
                                  " segment " + std::to_string(SegId) +
                                  ": overlapping live chunk extents");
    }
  }
  for (const auto &[SegId, Path] : Files)
    if (!Referenced.count(SegId))
      ++Report.StraySegmentFiles;
  return true;
}

void SegmentStore::startCompactor() {
  if (Compactor.joinable())
    return;
  CompactorStop = false;
  Compactor = std::thread([this] { compactorMain(); });
}

void SegmentStore::stopCompactor() {
  if (!Compactor.joinable())
    return;
  {
    std::lock_guard<std::mutex> Lock(CompactorMu);
    CompactorStop = true;
  }
  CompactorCv.notify_one();
  Compactor.join();
}

void SegmentStore::compactorMain() {
  std::unique_lock<std::mutex> Lock(CompactorMu);
  for (;;) {
    CompactorCv.wait(Lock,
                     [this] { return CompactorStop || !UnlinkQueue.empty(); });
    std::vector<std::string> Batch;
    Batch.swap(UnlinkQueue);
    bool Stop = CompactorStop;
    Lock.unlock();
    for (const std::string &Path : Batch)
      ::unlink(Path.c_str());
    if (Stop)
      return;
    Lock.lock();
  }
}

} // namespace store
} // namespace awdit
