//===- store/root_log.cpp - fsync'd append-only root records ----*- C++ -*-===//
//
// Part of the AWDIT reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "store/root_log.h"

#include "support/serialize.h"

#include <cerrno>
#include <cstring>

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

namespace awdit {
namespace store {

namespace {

constexpr uint32_t RootMagic = 0x54525741; // "AWRT" little-endian
constexpr size_t RecordHeaderBytes = 4 + 4 + 8 + 8 + 8;

bool setErr(std::string *Err, const std::string &Msg) {
  if (Err)
    *Err = Msg;
  return false;
}

std::string frameRecord(uint64_t Seq, const std::string &Payload) {
  std::string Out;
  Out.reserve(RecordHeaderBytes + Payload.size());
  ByteWriter W(Out);
  W.u32(RootMagic);
  W.u32(RootLogVersion);
  W.u64(Seq);
  W.u64(Payload.size());
  W.u64(fnv1a(Payload));
  Out.append(Payload);
  return Out;
}

bool readWholeFile(const std::string &Path, std::string &Out,
                   std::string *Err) {
  int Fd = ::open(Path.c_str(), O_RDONLY);
  if (Fd < 0)
    return setErr(Err, "cannot open root log '" + Path + "'");
  struct stat St;
  if (::fstat(Fd, &St) != 0) {
    ::close(Fd);
    return setErr(Err, "cannot stat root log '" + Path + "'");
  }
  Out.resize(static_cast<size_t>(St.st_size));
  size_t Got = 0;
  while (Got < Out.size()) {
    ssize_t N = ::read(Fd, Out.data() + Got, Out.size() - Got);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      ::close(Fd);
      return setErr(Err, "cannot read root log '" + Path + "'");
    }
    if (N == 0)
      break; // file shrank under us; treat the missing tail as torn
    Got += static_cast<size_t>(N);
  }
  Out.resize(Got);
  ::close(Fd);
  return true;
}

/// Parses records from \p Bytes in order; returns the byte offset just
/// past the last valid record. Records must have strictly increasing seq.
size_t parseRecords(std::string_view Bytes, std::vector<RootRecord> *All,
                    RootRecord *Last, uint64_t *Count) {
  size_t Off = 0;
  uint64_t PrevSeq = 0;
  bool Any = false;
  while (Bytes.size() - Off >= RecordHeaderBytes) {
    ByteReader R(Bytes.data() + Off, Bytes.size() - Off);
    uint32_t Magic = R.u32();
    uint32_t Version = R.u32();
    uint64_t Seq = R.u64();
    uint64_t Size = R.u64();
    uint64_t Hash = R.u64();
    if (Magic != RootMagic || Version != RootLogVersion)
      break;
    if (Size > R.remaining())
      break; // torn tail: header landed, payload did not
    std::string_view Payload(Bytes.data() + Off + RecordHeaderBytes,
                             static_cast<size_t>(Size));
    if (fnv1a(Payload) != Hash)
      break;
    if (Any && Seq <= PrevSeq)
      break; // regression in seq means the tail is not ours
    PrevSeq = Seq;
    Any = true;
    if (All)
      All->push_back({Seq, std::string(Payload)});
    if (Last)
      *Last = {Seq, std::string(Payload)};
    if (Count)
      ++*Count;
    Off += RecordHeaderBytes + static_cast<size_t>(Size);
  }
  return Off;
}

bool fsyncDir(const std::string &Dir) {
  int Fd = ::open(Dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (Fd < 0)
    return false;
  bool Ok = ::fsync(Fd) == 0;
  ::close(Fd);
  return Ok;
}

bool writeAll(int Fd, const char *Data, size_t Size) {
  size_t Done = 0;
  while (Done < Size) {
    ssize_t N = ::write(Fd, Data + Done, Size - Done);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      return false;
    }
    Done += static_cast<size_t>(N);
  }
  return true;
}

} // namespace

RootLog::~RootLog() {
  if (Fd >= 0)
    ::close(Fd);
}

std::string RootLog::filePath(const std::string &D) {
  return D + "/roots.awrl";
}

bool RootLog::open(const std::string &D, std::string *Err) {
  if (Fd >= 0) {
    ::close(Fd);
    Fd = -1;
  }
  Dir = D;
  Path = filePath(D);
  ReadOnly = false;
  Fd = ::open(Path.c_str(), O_RDWR | O_CREAT, 0644);
  if (Fd < 0)
    return setErr(Err, "cannot open root log '" + Path + "'");
  return scanAndTruncate(Err);
}

bool RootLog::openReadOnly(const std::string &D, std::string *Err) {
  if (Fd >= 0) {
    ::close(Fd);
    Fd = -1;
  }
  Dir = D;
  Path = filePath(D);
  ReadOnly = true;
  std::string Bytes;
  if (!readWholeFile(Path, Bytes, Err))
    return false;
  HasLast = false;
  Records = 0;
  RootRecord Last;
  size_t Valid = parseRecords(Bytes, nullptr, &Last, &Records);
  FileBytes = Valid;
  if (Records > 0) {
    HasLast = true;
    LastSeq = Last.Seq;
    LastPayload = std::move(Last.Payload);
  }
  return true;
}

bool RootLog::scanAndTruncate(std::string *Err) {
  std::string Bytes;
  if (!readWholeFile(Path, Bytes, Err))
    return false;
  HasLast = false;
  Records = 0;
  RootRecord Last;
  size_t Valid = parseRecords(Bytes, nullptr, &Last, &Records);
  if (Records > 0) {
    HasLast = true;
    LastSeq = Last.Seq;
    LastPayload = std::move(Last.Payload);
  }
  if (Valid < Bytes.size()) {
    // A crash mid-append left a torn tail; cut it so the next append
    // starts on a record boundary.
    if (::ftruncate(Fd, static_cast<off_t>(Valid)) != 0)
      return setErr(Err, "cannot truncate torn root-log tail in '" + Path +
                             "'");
  }
  if (::lseek(Fd, static_cast<off_t>(Valid), SEEK_SET) < 0)
    return setErr(Err, "cannot seek root log '" + Path + "'");
  FileBytes = Valid;
  return true;
}

bool RootLog::append(const std::string &Payload, std::string *Err) {
  if (Fd < 0 || ReadOnly)
    return setErr(Err, "root log not open for writing");
  std::string Rec = frameRecord(LastSeq + 1, Payload);
  if (!writeAll(Fd, Rec.data(), Rec.size()))
    return setErr(Err, "cannot append to root log '" + Path + "'");
  if (::fsync(Fd) != 0)
    return setErr(Err, "fsync failed on root log '" + Path + "'");
  ++LastSeq;
  LastPayload = Payload;
  HasLast = true;
  FileBytes += Rec.size();
  ++Records;
  return true;
}

bool RootLog::rotate(std::string *Err) {
  if (Fd < 0 || ReadOnly)
    return setErr(Err, "root log not open for writing");
  if (!HasLast)
    return true;
  std::string Tmp = Path + ".tmp";
  int TmpFd = ::open(Tmp.c_str(), O_RDWR | O_CREAT | O_TRUNC, 0644);
  if (TmpFd < 0)
    return setErr(Err, "cannot create root-log temp '" + Tmp + "'");
  std::string Rec = frameRecord(LastSeq, LastPayload);
  bool Ok = writeAll(TmpFd, Rec.data(), Rec.size()) && ::fsync(TmpFd) == 0;
  if (!Ok) {
    ::close(TmpFd);
    ::unlink(Tmp.c_str());
    return setErr(Err, "cannot write root-log temp '" + Tmp + "'");
  }
  if (::rename(Tmp.c_str(), Path.c_str()) != 0) {
    ::close(TmpFd);
    ::unlink(Tmp.c_str());
    return setErr(Err, "cannot rename root-log temp into '" + Path + "'");
  }
  fsyncDir(Dir);
  // Keep appending to the new file generation; the old descriptor still
  // points at the unlinked previous file.
  ::close(Fd);
  Fd = TmpFd;
  if (::lseek(Fd, 0, SEEK_END) < 0)
    return setErr(Err, "cannot seek rotated root log '" + Path + "'");
  FileBytes = Rec.size();
  Records = 1;
  return true;
}

bool RootLog::scanAll(const std::string &Dir, std::vector<RootRecord> &Out,
                      bool &TornTail, std::string *Err) {
  std::string Bytes;
  if (!readWholeFile(filePath(Dir), Bytes, Err))
    return false;
  Out.clear();
  size_t Valid = parseRecords(Bytes, &Out, nullptr, nullptr);
  TornTail = Valid < Bytes.size();
  return true;
}

} // namespace store
} // namespace awdit
