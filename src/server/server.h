//===- server/server.h - Multi-tenant monitoring server ----------*- C++ -*-===//
//
// Part of the AWDIT reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// `awdit serve`: one process hosting many concurrent monitoring sessions.
/// A poll(2) event loop owns every socket — the line-protocol listener
/// (server/protocol.h), an optional Prometheus-style /metrics HTTP
/// listener, and the client connections — splits incoming bytes into
/// lines, routes control verbs, and enqueues stream-line batches onto the
/// per-stream sessions of a SessionRegistry. The actual checking runs on a
/// shared ThreadPool (support/thread_pool.h): each session is a pinned
/// single-writer actor, so hundreds of tenants share the cores while every
/// Monitor keeps the single-threaded semantics its correctness proofs (and
/// its bit-identical-to-standalone guarantees) rely on.
///
/// Lifecycle:
///
///   start()  binds the listeners (port 0 = ephemeral, reported by
///            port()/metricsPort());
///   run()    blocks in the event loop until a shutdown is requested —
///            by SIGTERM/SIGINT (the CLI wires requestShutdown() into a
///            self-pipe) or by a client's SHUTDOWN verb — then drains:
///            stops accepting, checkpoints + finalizes every session
///            (clients get DRAINING/FINAL/BYE), closes, returns;
///   a restarted server with the same --checkpoint-dir resumes every
///   tenant from its per-stream checkpoint on the tenant's next HELLO.
///
/// Backpressure: a client whose session's inbox exceeds its quota is
/// simply not read until the pump catches up — the kernel's TCP window
/// pushes back to the producer, bounding per-session memory. Outbound,
/// every client socket is non-blocking and replies go through a bounded
/// per-connection output queue drained on POLLOUT: a client that stops
/// reading backpressures only itself (its queue fills, it is muted and
/// disconnected — a counted event), and neither the event loop nor any
/// pump thread ever blocks in write(2).
///
/// A connection can multiplex many tenants (`HELLO ... mux=on`, framing
/// in server/protocol.h), and the server can require a shared auth token
/// checked before any session state is created.
///
//===----------------------------------------------------------------------===//

#ifndef AWDIT_SERVER_SERVER_H
#define AWDIT_SERVER_SERVER_H

#include "server/session_registry.h"
#include "support/socket.h"
#include "support/thread_pool.h"

#include <atomic>
#include <memory>
#include <string>

namespace awdit {
namespace server {

struct ServerOptions {
  /// Listen address (dotted-quad IPv4).
  std::string Host = "127.0.0.1";
  /// Line-protocol port; 0 picks an ephemeral port (see Server::port()).
  uint16_t Port = 0;
  /// Serve the /metrics endpoint (on MetricsPort; 0 = ephemeral).
  bool EnableMetrics = false;
  uint16_t MetricsPort = 0;
  /// Per-stream checkpoints live here; empty disables persistence.
  std::string CheckpointDir;
  /// Use copy-on-write segment stores (`<dir>/<stream>.store/`, O(delta)
  /// per checkpoint) instead of monolithic `.ckpt` files. A server
  /// switched to stores still resumes tenants from leftover v1 files.
  bool CheckpointStore = false;
  /// Per-stream JSONL violation sinks live here; empty disables them.
  std::string SinkDir;
  /// Where the `TRACE dump` verb writes Chrome-trace JSON files; empty
  /// rejects the dump (recording via `TRACE on|off` still works — a
  /// debugger can read the rings).
  std::string TraceDir;
  /// Worker threads of the shared pool (0 = all cores).
  unsigned Threads = 0;
  /// Evict detached sessions idle this long (seconds; 0 = never).
  uint64_t IdleTimeoutSec = 300;
  /// Checkpoint cadence in checking passes.
  uint64_t CheckpointIntervalFlushes = 16;
  /// Hot-session upgrade: extra threads a session crossing the data-rate
  /// threshold may claim for a per-session sharded ingest pipeline
  /// (io/sharded_ingest.h). -1 = auto (4 when the shared pool has >= 4
  /// threads, else off), 0 = off, >= 2 = that many threads per hot
  /// session. Output stays byte-identical either way.
  int ShardHotSessions = -1;
  /// A connection whose inbound data rate crosses this many bytes per
  /// second is treated as hot and ships zero-copy spans.
  uint64_t HotBytesPerSec = 8ull << 20;
  /// Shared-secret authentication: when non-empty, every HELLO must carry
  /// a matching `token=` or is rejected (`ERR auth ...`) before any
  /// session state is created.
  std::string AuthToken;
  /// Per-session inbox quota: default and cap for HELLO `inbox-bytes=`.
  /// The event loop stops reading a client whose session is this far
  /// behind (backpressure via the TCP window).
  size_t MaxInboxBytes = 4 << 20;
  /// Per-connection output-queue quota: default and cap for HELLO
  /// `outq-bytes=`. A connection whose un-sent replies exceed this is
  /// muted and disconnected (counted in
  /// awdit_server_slow_client_disconnects_total).
  size_t MaxOutQueueBytes = 8 << 20;
  /// Per-tenant window-memory quota (approximate bytes of live monitor
  /// state): default and cap for HELLO `window-bytes=`. 0 = unlimited.
  uint64_t MaxWindowBytes = 0;
  /// SO_SNDBUF for client sockets (bytes; 0 = kernel default). Mostly a
  /// testing/tuning knob: a small kernel send buffer makes the userspace
  /// output queue — and its quota — the binding constraint.
  int SockSndBuf = 0;
};

/// The server. One instance per process; start() then run() (typically on
/// its own thread in tests, on the main thread in the CLI).
class Server {
public:
  explicit Server(ServerOptions Options);
  ~Server();

  Server(const Server &) = delete;
  Server &operator=(const Server &) = delete;

  /// Binds the listeners. False with \p Err set on failure.
  bool start(std::string *Err);

  /// The event loop; returns after a requested shutdown has drained every
  /// session.
  void run();

  /// Requests shutdown + drain. Async-signal-safe (writes one byte to a
  /// self-pipe); callable from any thread or from a signal handler.
  void requestShutdown();

  uint16_t port() const { return Listener.port(); }
  uint16_t metricsPort() const { return MetricsListener.port(); }

  /// The Prometheus-style metrics page (also served on /metrics).
  std::string renderMetrics() const;

private:
  struct Conn;
  struct MuxWriter;

  void acceptClient();
  void serveMetricsConn();
  void readConn(const std::shared_ptr<Conn> &C);
  /// Walks the whole lines of \p Span: control verbs route through
  /// handleLine; contiguous runs of data lines on a hot connection become
  /// zero-copy PageSpans in the current batch.
  void dispatchLines(const std::shared_ptr<Conn> &C, const PageSpan &Span);
  void handleLine(const std::shared_ptr<Conn> &C, std::string_view Line);
  /// The mux-mode line router: `@<stream> [line]` frames, `@@` payload
  /// escapes, bare lines to the current stream.
  void handleMuxLine(const std::shared_ptr<Conn> &C, std::string_view Line);
  /// Routes one unframed payload line (verb or data) to a mux stream.
  void routeMuxPayload(const std::shared_ptr<Conn> &C,
                       const std::string &Stream, std::string_view Payload);
  void flushBatch(const std::shared_ptr<Conn> &C);
  void handleHello(const std::shared_ptr<Conn> &C, std::string_view Line);
  /// The connection-level `TRACE on|off|dump` verb (tracing is process
  /// state; the verb needs no session).
  void handleTrace(const std::shared_ptr<Conn> &C, std::string_view Line);
  void closeConn(const std::shared_ptr<Conn> &C);
  /// Drains as much of \p C's output queue as the kernel buffer takes
  /// right now (event-loop thread, on POLLOUT). A hard send error mutes
  /// the connection.
  void drainConnOutput(const std::shared_ptr<Conn> &C);
  /// Bounded best-effort flush of every connection's queued DRAINING/
  /// FINAL/BYE courtesies at shutdown; a client that stopped reading
  /// cannot hold the drain hostage.
  void flushOutputAtDrain();
  std::string serverStatsJson(bool Deep = false) const;

  ServerOptions Options;
  TcpListener Listener;
  TcpListener MetricsListener;
  int WakePipe[2] = {-1, -1};
  std::atomic<bool> ShutdownRequested{false};

  /// Destruction order matters: ~Server joins the pool (so no session
  /// pump can still be running) before the registry goes away — both are
  /// torn down explicitly there.
  std::unique_ptr<ThreadPool> Pool;
  std::unique_ptr<SessionRegistry> Registry;

  std::vector<std::shared_ptr<Conn>> Conns;
  uint64_t LastSweepSec = 0;

  // Operational counters (exported on /metrics).
  std::atomic<uint64_t> AuthFailures{0};
  std::atomic<uint64_t> QuotaRejects{0};
  std::atomic<uint64_t> SlowClientDrops{0};
  /// High-water mark of one event-loop iteration's handling time in
  /// microseconds (poll(2) return to next poll(2) entry). The liveness
  /// witness the soak CI asserts on: the loop never blocks in write(2),
  /// so a stalled client cannot push this toward the old SO_SNDTIMEO
  /// stalls. Rolling: each /metrics scrape reads-and-resets it (hence
  /// mutable — renderMetrics is logically const), so alerting sees the
  /// worst stall *since the last scrape* instead of a one-time startup
  /// blip pinned forever; the `_lifetime` variant below keeps the
  /// process-wide high water for the CI gate.
  mutable std::atomic<uint64_t> MaxPollStallMicros{0};
  std::atomic<uint64_t> MaxPollStallLifetimeMicros{0};
  /// TRACE dump files get increasing sequence numbers within the process.
  uint64_t TraceDumpSeq = 0;

  /// A single protocol/stream line may not exceed this (bounds the
  /// per-connection assembly buffer against a newline-free firehose).
  static constexpr size_t MaxLineBytes = 1 << 20;
};

} // namespace server
} // namespace awdit

#endif // AWDIT_SERVER_SERVER_H
