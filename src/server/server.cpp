//===- server/server.cpp - Multi-tenant monitoring server ------------------===//

#include "server/server.h"

#include "io/token_util.h"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <poll.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

using namespace awdit;
using namespace awdit::server;

namespace {

/// Prometheus label-value escaping: backslash, double quote, newline.
void appendLabelEscaped(std::string &Out, std::string_view Text) {
  for (char C : Text) {
    if (C == '\\')
      Out += "\\\\";
    else if (C == '"')
      Out += "\\\"";
    else if (C == '\n')
      Out += "\\n";
    else
      Out += C;
  }
}

void metricLine(std::string &Out, const char *Name, const char *Type,
                uint64_t Value) {
  Out += "# TYPE ";
  Out += Name;
  Out += ' ';
  Out += Type;
  Out += '\n';
  Out += Name;
  Out += ' ';
  Out += std::to_string(Value);
  Out += '\n';
}

} // namespace

/// One client connection: a socket plus the line-assembly buffer and the
/// session it is attached to. sendLine() is the ResponseWriter the session
/// pumps push replies through — serialized by a write mutex because the
/// event loop (OK/ERR replies) and the pool threads (VIOLATION/STATS/
/// FINAL) both write.
struct Server::Conn : ResponseWriter,
                      std::enable_shared_from_this<Server::Conn> {
  Socket Sock;
  /// Inbound byte staging: read(2) lands directly in refcounted arena
  /// pages; whole lines are dispatched from the page (a hot connection's
  /// data lines leave as zero-copy spans of it), the trailing partial line
  /// simply stays staged — the writer keeps it contiguous across rolls, so
  /// there is no separate assembly buffer.
  ArenaWriter Rx{256 << 10};
  std::shared_ptr<StreamSession> Session;
  /// Data-rate tracker (bytes within the current steady second). A
  /// connection crossing the server's threshold turns Hot — sticky — and
  /// ships spans, upgrading its session's pump to the sharded pipeline.
  uint64_t RateWindowSec = 0;
  uint64_t RateBytes = 0;
  bool Hot = false;
  /// The batch of stream lines accumulated from the current read chunk
  /// (flushed to the session's inbox at the next verb or end of chunk).
  StreamSession::Item Batch;
  bool Dead = false;
  /// Set once a send failed or timed out; the push channel goes mute and
  /// the event loop's next sweep closes the connection. Keeps a client
  /// that stops reading from wedging a pump thread (the socket has
  /// SO_SNDTIMEO, so one send blocks for at most SendTimeoutSec).
  std::atomic<bool> WriteFailed{false};

  std::mutex WriteMu;

  void sendLine(const std::string &Line) override {
    if (WriteFailed.load(std::memory_order_relaxed))
      return;
    std::lock_guard<std::mutex> L(WriteMu);
    if (!Sock.valid())
      return;
    std::string Out = Line;
    Out += '\n';
    if (!Sock.writeAll(Out))
      WriteFailed.store(true, std::memory_order_relaxed);
  }

  void closeSocket() {
    std::lock_guard<std::mutex> L(WriteMu);
    Sock.close();
  }
};

namespace {

/// Resolves the hot-session thread budget: explicit values win, -1 picks 4
/// threads per hot session when the shared pool is big enough to spare
/// them, and anything below 2 disables the upgrade (a sharded pipeline
/// needs at least an applier and one shard worker).
unsigned hotThreadsFor(int ShardHotSessions, size_t PoolThreads) {
  if (ShardHotSessions >= 0)
    return ShardHotSessions >= 2 ? static_cast<unsigned>(ShardHotSessions)
                                 : 0;
  return PoolThreads >= 4 ? 4u : 0u;
}

SessionEnv sessionEnvFor(const ServerOptions &O, size_t PoolThreads) {
  SessionEnv Env;
  Env.CheckpointDir = O.CheckpointDir;
  Env.SinkDir = O.SinkDir;
  Env.CheckpointIntervalFlushes = O.CheckpointIntervalFlushes;
  Env.StoreCheckpoints = O.CheckpointStore;
  Env.HotThreads = hotThreadsFor(O.ShardHotSessions, PoolThreads);
  Env.HotBytesPerSec = O.HotBytesPerSec;
  return Env;
}

} // namespace

Server::Server(ServerOptions Options)
    : Options(std::move(Options)),
      Pool(std::make_unique<ThreadPool>(this->Options.Threads)),
      Registry(std::make_unique<SessionRegistry>(
          sessionEnvFor(this->Options, Pool->numThreads()), *Pool)) {}

Server::~Server() {
  // Join every pump before the registry (which the pumps' OnDead hooks
  // point into) goes away.
  Pool.reset();
  Registry.reset();
  if (WakePipe[0] >= 0)
    ::close(WakePipe[0]);
  if (WakePipe[1] >= 0)
    ::close(WakePipe[1]);
}

bool Server::start(std::string *Err) {
  if (::pipe(WakePipe) != 0) {
    if (Err)
      *Err = std::string("pipe(): ") + std::strerror(errno);
    return false;
  }
  if (!Listener.listenOn(Options.Host, Options.Port, Err))
    return false;
  if (Options.EnableMetrics &&
      !MetricsListener.listenOn(Options.Host, Options.MetricsPort, Err))
    return false;
  return true;
}

void Server::requestShutdown() {
  ShutdownRequested.store(true, std::memory_order_release);
  if (WakePipe[1] >= 0) {
    char B = 1;
    // Best effort; the poll timeout catches a full pipe.
    (void)!::write(WakePipe[1], &B, 1);
  }
}

void Server::acceptClient() {
  Socket S = Listener.accept();
  if (!S.valid())
    return;
  // Bound how long a pushed reply can block a pump on a client that
  // stopped reading; on timeout the send fails, the connection goes mute
  // (Conn::WriteFailed) and is closed at the next sweep.
  struct timeval Tv = {static_cast<time_t>(SendTimeoutSec), 0};
  ::setsockopt(S.fd(), SOL_SOCKET, SO_SNDTIMEO, &Tv, sizeof(Tv));
  auto C = std::make_shared<Conn>();
  C->Sock = std::move(S);
  C->Batch.K = StreamSession::Item::Kind::Data;
  Conns.push_back(std::move(C));
}

void Server::flushBatch(const std::shared_ptr<Conn> &C) {
  if (C->Batch.Lines.empty() && C->Batch.Spans.empty())
    return;
  StreamSession::Item I;
  I.K = StreamSession::Item::Kind::Data;
  std::swap(I, C->Batch);
  C->Batch.K = StreamSession::Item::Kind::Data;
  if (C->Session)
    C->Session->enqueue(std::move(I), *Pool);
}

void Server::handleHello(const std::shared_ptr<Conn> &C,
                         std::string_view Line) {
  if (C->Session) {
    C->sendLine("ERR already attached to stream '" + C->Session->name() +
                "'; DETACH first");
    return;
  }
  HelloRequest Req;
  std::string Err;
  if (!parseHello(Line, Req, &Err)) {
    C->sendLine("ERR " + Err);
    return;
  }
  SessionRegistry::HelloResult R = Registry->hello(Req, C);
  if (!R.Session) {
    C->sendLine("ERR " + R.Err);
    return;
  }
  C->Session = R.Session;
  C->sendLine("OK " + Req.Stream + " " + R.Status +
              " offset=" + std::to_string(R.Offset) +
              " line=" + std::to_string(R.LineNo));
}

std::string Server::serverStatsJson() const {
  SessionRegistry::Totals T = Registry->totals();
  std::string Out = "{\"sessions_live\":" +
                    std::to_string(T.SessionsLive) +
                    ",\"sessions_created\":" +
                    std::to_string(T.SessionsCreated) +
                    ",\"sessions_resumed\":" +
                    std::to_string(T.SessionsResumed) +
                    ",\"sessions_evicted\":" +
                    std::to_string(T.SessionsEvicted) +
                    ",\"sessions_ended\":" + std::to_string(T.SessionsEnded) +
                    ",\"checkpoints\":" + std::to_string(T.Checkpoints) +
                    ",\"hot_upgrades\":" + std::to_string(T.HotUpgrades) +
                    ",\"totals\":" + T.Counters.toJson() + "}";
  return Out;
}

void Server::handleLine(const std::shared_ptr<Conn> &C,
                        std::string_view Line) {
  switch (classifyLine(Line)) {
  case Verb::Hello:
    flushBatch(C);
    handleHello(C, Line);
    return;

  case Verb::Stats:
    flushBatch(C);
    if (C->Session) {
      StreamSession::Item I;
      I.K = StreamSession::Item::Kind::Stats;
      C->Session->enqueue(std::move(I), *Pool);
    } else {
      // Pre-HELLO STATS: the whole-server view.
      C->sendLine("STATS " + serverStatsJson());
    }
    return;

  case Verb::Detach:
    flushBatch(C);
    if (!C->Session) {
      C->sendLine("ERR not attached");
      return;
    }
    {
      StreamSession::Item I;
      I.K = StreamSession::Item::Kind::Detach;
      std::shared_ptr<StreamSession> S = std::move(C->Session);
      C->Session.reset();
      S->enqueue(std::move(I), *Pool);
    }
    return;

  case Verb::End:
    flushBatch(C);
    if (!C->Session) {
      C->sendLine("ERR not attached");
      return;
    }
    {
      StreamSession::Item I;
      I.K = StreamSession::Item::Kind::End;
      std::shared_ptr<StreamSession> S = std::move(C->Session);
      C->Session.reset();
      S->enqueue(std::move(I), *Pool);
    }
    return;

  case Verb::Shutdown:
    flushBatch(C);
    C->sendLine("OK shutting-down");
    requestShutdown();
    return;

  case Verb::None:
    if (!C->Session) {
      // Tolerate leading blank lines/comments before HELLO.
      size_t NonBlank = Line.find_first_not_of(" \t");
      if (NonBlank == std::string_view::npos || Line[NonBlank] == '#')
        return;
      C->sendLine("ERR expected HELLO before stream data");
      return;
    }
    C->Batch.Lines.emplace_back(Line);
    C->Batch.Bytes += Line.size() + 1;
    return;
  }
}

void Server::readConn(const std::shared_ptr<Conn> &C) {
  // read(2) straight into the connection's arena page: for a hot
  // connection these very bytes are what the session's shard workers
  // decode — no copy in between.
  auto [Buf, Cap] = C->Rx.window(1 << 16);
  long N = C->Sock.readSome(Buf, Cap);
  if (N <= 0) {
    closeConn(C);
    return;
  }
  C->Rx.commit(static_cast<size_t>(N));

  // Rate tracking (bytes per steady second); crossing the threshold makes
  // the connection hot for the rest of its life.
  uint64_t Now = steadyNowSec();
  if (Now != C->RateWindowSec) {
    C->RateWindowSec = Now;
    C->RateBytes = 0;
  }
  C->RateBytes += static_cast<uint64_t>(N);
  if (!C->Hot && Registry->hotEnabled() &&
      C->RateBytes >= Options.HotBytesPerSec)
    C->Hot = true;

  std::string_view Pending = C->Rx.pending();
  size_t LastNl = Pending.rfind('\n');
  if (LastNl == std::string_view::npos) {
    // Only a growing partial line staged; bound it.
    if (Pending.size() > MaxLineBytes) {
      C->sendLine("ERR line exceeds " + std::to_string(MaxLineBytes) +
                  " bytes");
      closeConn(C);
    }
    return;
  }
  dispatchLines(C, C->Rx.take(LastNl + 1));
  if (C->Rx.pendingBytes() > MaxLineBytes) {
    C->sendLine("ERR line exceeds " + std::to_string(MaxLineBytes) +
                " bytes");
    closeConn(C);
    return;
  }
  flushBatch(C);
}

void Server::dispatchLines(const std::shared_ptr<Conn> &C,
                           const PageSpan &Span) {
  std::string_view V = Span.view(); // whole lines; ends in '\n'
  size_t RunBegin = std::string_view::npos;
  auto FlushRun = [&](size_t RunEnd) {
    if (RunBegin == std::string_view::npos)
      return;
    C->Batch.Spans.push_back(
        PageSpan{Span.Page, Span.Begin + RunBegin, Span.Begin + RunEnd});
    C->Batch.Bytes += RunEnd - RunBegin;
    RunBegin = std::string_view::npos;
  };
  size_t Pos = 0;
  while (Pos < V.size() && !C->Dead) {
    size_t Nl = io::scanToNewline(V, Pos);
    std::string_view Line = V.substr(Pos, Nl - Pos);
    if (C->Hot && C->Session && classifyLine(Line) == Verb::None) {
      // A data line on a hot connection: extend the current zero-copy run
      // (newline included — the sharded pipeline wants verbatim bytes).
      if (RunBegin == std::string_view::npos)
        RunBegin = Pos;
      Pos = Nl + 1;
      continue;
    }
    FlushRun(Pos);
    handleLine(C, Line);
    Pos = Nl + 1;
  }
  FlushRun(Pos);
}

void Server::closeConn(const std::shared_ptr<Conn> &C) {
  flushBatch(C);
  if (C->Session) {
    // The client vanished without DETACH: detach quietly, keep the
    // session for a reconnect (or the idle-eviction timer).
    StreamSession::Item I;
    I.K = StreamSession::Item::Kind::Detach;
    I.Quiet = true;
    std::shared_ptr<StreamSession> S = std::move(C->Session);
    C->Session.reset();
    S->enqueue(std::move(I), *Pool);
  }
  C->closeSocket();
  C->Dead = true;
}

std::string Server::renderMetrics() const {
  SessionRegistry::Totals T = Registry->totals();
  std::string Out;
  metricLine(Out, "awdit_server_sessions_live", "gauge", T.SessionsLive);
  metricLine(Out, "awdit_server_sessions_created_total", "counter",
             T.SessionsCreated);
  metricLine(Out, "awdit_server_sessions_resumed_total", "counter",
             T.SessionsResumed);
  metricLine(Out, "awdit_server_sessions_evicted_total", "counter",
             T.SessionsEvicted);
  metricLine(Out, "awdit_server_sessions_ended_total", "counter",
             T.SessionsEnded);
  metricLine(Out, "awdit_server_checkpoints_total", "counter",
             T.Checkpoints);
  metricLine(Out, "awdit_server_hot_upgrades_total", "counter",
             T.HotUpgrades);
  metricLine(Out, "awdit_server_txns_ingested_total", "counter",
             T.Counters.Txns);
  metricLine(Out, "awdit_server_txns_committed_total", "counter",
             T.Counters.Committed);
  metricLine(Out, "awdit_server_ops_total", "counter", T.Counters.Ops);
  metricLine(Out, "awdit_server_violations_total", "counter",
             T.Counters.Violations);
  metricLine(Out, "awdit_server_flushes_total", "counter",
             T.Counters.Flushes);
  metricLine(Out, "awdit_server_evicted_txns_total", "counter",
             T.Counters.EvictedTxns);
  metricLine(Out, "awdit_server_forced_aborts_total", "counter",
             T.Counters.ForcedAborts);
  Out += "# TYPE awdit_server_flush_seconds_total counter\n"
         "awdit_server_flush_seconds_total ";
  char Sec[64];
  std::snprintf(Sec, sizeof(Sec), "%.6f",
                static_cast<double>(T.Counters.FlushMicros) / 1e6);
  Out += Sec;
  Out += '\n';

  // Per-stream gauges for the live tenants.
  Out += "# TYPE awdit_session_committed_txns gauge\n";
  std::string Violations = "# TYPE awdit_session_violations gauge\n";
  for (const std::shared_ptr<StreamSession> &S : Registry->sessions()) {
    if (S->phase() == StreamSession::Phase::Dead)
      continue;
    StatsSnapshot Snap = S->counters();
    std::string Label = "{stream=\"";
    appendLabelEscaped(Label, S->name());
    Label += "\"}";
    Out += "awdit_session_committed_txns" + Label + " " +
           std::to_string(Snap.Committed) + "\n";
    Violations += "awdit_session_violations" + Label + " " +
                  std::to_string(Snap.Violations) + "\n";
  }
  Out += Violations;
  return Out;
}

void Server::serveMetricsConn() {
  Socket S = MetricsListener.accept();
  if (!S.valid())
    return;
  // A scrape is one small request served inline on the event loop; the
  // timeouts keep a stuck scraper (never sends, or never reads a large
  // response) from wedging every tenant.
  struct timeval Tv = {2, 0};
  ::setsockopt(S.fd(), SOL_SOCKET, SO_RCVTIMEO, &Tv, sizeof(Tv));
  ::setsockopt(S.fd(), SOL_SOCKET, SO_SNDTIMEO, &Tv, sizeof(Tv));
  char Buf[4096];
  long N = S.readSome(Buf, sizeof(Buf));
  std::string_view Req(Buf, N > 0 ? static_cast<size_t>(N) : 0);
  bool NotFound = false;
  if (Req.rfind("GET ", 0) == 0) {
    size_t PathEnd = Req.find(' ', 4);
    std::string_view Path = Req.substr(4, PathEnd == std::string_view::npos
                                              ? std::string_view::npos
                                              : PathEnd - 4);
    NotFound = Path != "/metrics" && Path != "/";
  }
  std::string Body = NotFound ? "not found\n" : renderMetrics();
  std::string Resp = NotFound ? "HTTP/1.0 404 Not Found\r\n"
                              : "HTTP/1.0 200 OK\r\n";
  Resp += "Content-Type: text/plain; version=0.0.4\r\n"
          "Content-Length: " +
          std::to_string(Body.size()) +
          "\r\n"
          "Connection: close\r\n\r\n";
  Resp += Body;
  S.writeAll(Resp);
}

void Server::run() {
  while (!ShutdownRequested.load(std::memory_order_acquire)) {
    std::vector<pollfd> Fds;
    Fds.push_back({WakePipe[0], POLLIN, 0});
    Fds.push_back({Listener.fd(), POLLIN, 0});
    if (MetricsListener.valid())
      Fds.push_back({MetricsListener.fd(), POLLIN, 0});
    size_t FirstConn = Fds.size();
    std::vector<std::shared_ptr<Conn>> Polled;
    for (const std::shared_ptr<Conn> &C : Conns) {
      if (C->Dead)
        continue;
      // Backpressure: a session that is too far behind is not read; the
      // TCP window fills and pushes back to the client.
      if (C->Session && C->Session->inboxBytes() > InboxHighWater)
        continue;
      Fds.push_back({C->Sock.fd(), POLLIN, 0});
      Polled.push_back(C);
    }

    int Ready = ::poll(Fds.data(), Fds.size(), /*timeout_ms=*/100);
    if (Ready < 0 && errno != EINTR)
      break;

    if (Ready > 0) {
      if (Fds[0].revents & POLLIN) {
        char B[64];
        (void)!::read(WakePipe[0], B, sizeof(B));
      }
      if (Fds[1].revents & POLLIN)
        acceptClient();
      if (MetricsListener.valid() && (Fds[2].revents & POLLIN))
        serveMetricsConn();
      for (size_t I = FirstConn; I < Fds.size(); ++I)
        if (Fds[I].revents & (POLLIN | POLLHUP | POLLERR))
          readConn(Polled[I - FirstConn]);
    }

    // Housekeeping, at most once a second: sweep dead sessions, schedule
    // idle evictions, drop closed connections.
    uint64_t Now = steadyNowSec();
    if (Now != LastSweepSec) {
      LastSweepSec = Now;
      Registry->sweep(Now, Options.IdleTimeoutSec);
      for (const std::shared_ptr<Conn> &C : Conns)
        if (!C->Dead && C->WriteFailed.load(std::memory_order_relaxed))
          closeConn(C);
      Conns.erase(std::remove_if(Conns.begin(), Conns.end(),
                                 [](const std::shared_ptr<Conn> &C) {
                                   return C->Dead;
                                 }),
                  Conns.end());
    }
  }

  // --- Drain. ---
  Listener.close();
  MetricsListener.close();
  Registry->drainAll();
  for (const std::shared_ptr<Conn> &C : Conns) {
    C->Session.reset();
    C->closeSocket();
  }
  Conns.clear();
}
