//===- server/server.cpp - Multi-tenant monitoring server ------------------===//

#include "server/server.h"

#include "io/token_util.h"
#include "obs/histogram.h"
#include "obs/trace.h"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <poll.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

using namespace awdit;
using namespace awdit::server;

namespace {

/// Prometheus label-value escaping: backslash, double quote, newline.
void appendLabelEscaped(std::string &Out, std::string_view Text) {
  for (char C : Text) {
    if (C == '\\')
      Out += "\\\\";
    else if (C == '"')
      Out += "\\\"";
    else if (C == '\n')
      Out += "\\n";
    else
      Out += C;
  }
}

void metricHeader(std::string &Out, const char *Name, const char *Help,
                  const char *Type) {
  Out += "# HELP ";
  Out += Name;
  Out += ' ';
  Out += Help;
  Out += '\n';
  Out += "# TYPE ";
  Out += Name;
  Out += ' ';
  Out += Type;
  Out += '\n';
}

void metricLine(std::string &Out, const char *Name, const char *Help,
                const char *Type, uint64_t Value) {
  metricHeader(Out, Name, Help, Type);
  Out += Name;
  Out += ' ';
  Out += std::to_string(Value);
  Out += '\n';
}

} // namespace

/// One client connection: a non-blocking socket, the line-assembly
/// buffer, the session(s) it is attached to, and a bounded output queue.
/// sendLine() is the ResponseWriter the session pumps push replies
/// through — it only ever *enqueues* (under the write mutex, because the
/// event loop's OK/ERR replies and the pool threads' VIOLATION/STATS/
/// FINAL pushes both land here) and wakes the event loop, which drains
/// the queue with non-blocking sends on POLLOUT. No caller ever blocks
/// in write(2); a client that stops reading fills its own queue, trips
/// the quota, and is muted + disconnected (a counted event).
struct Server::Conn : ResponseWriter,
                      std::enable_shared_from_this<Server::Conn> {
  Socket Sock;
  /// Inbound byte staging: read(2) lands directly in refcounted arena
  /// pages; whole lines are dispatched from the page (a hot connection's
  /// data lines leave as zero-copy spans of it), the trailing partial line
  /// simply stays staged — the writer keeps it contiguous across rolls, so
  /// there is no separate assembly buffer.
  ArenaWriter Rx{256 << 10};
  std::shared_ptr<StreamSession> Session;
  /// Mux mode (`HELLO ... mux=on`): one connection, many tenants. The
  /// sticky router sends bare lines to CurStream; the current Batch
  /// belongs to BatchStream (empty = the plain-mode Session). Event-loop
  /// thread only.
  bool Mux = false;
  std::unordered_map<std::string, std::shared_ptr<StreamSession>>
      MuxSessions;
  std::string CurStream;
  std::string BatchStream;
  /// Data-rate tracker (bytes within the current steady second). A
  /// connection crossing the server's threshold turns Hot — sticky — and
  /// ships spans, upgrading its session's pump to the sharded pipeline.
  /// (Mux connections interleave tenants and never take the span path.)
  uint64_t RateWindowSec = 0;
  uint64_t RateBytes = 0;
  bool Hot = false;
  /// The batch of stream lines accumulated from the current read chunk
  /// (flushed to the session's inbox at the next verb or end of chunk).
  StreamSession::Item Batch;
  bool Dead = false;
  /// Set once a send failed or the output queue overflowed; the push
  /// channel goes mute and the event loop's next sweep closes the
  /// connection.
  std::atomic<bool> WriteFailed{false};

  // --- Output queue (WriteMu). ---
  /// One queued reply line plus its enqueue timestamp, so the drain can
  /// record the enqueue-to-wire residency histogram.
  struct OutMsg {
    std::string Bytes;
    uint64_t EnqueueNs;
  };
  std::mutex WriteMu;
  std::deque<OutMsg> OutQ;
  /// Bytes of OutQ.front() already sent (partial non-blocking sends).
  size_t OutHead = 0;
  /// Total un-sent bytes across OutQ.
  size_t OutBytes = 0;
  /// Queue quota: server default, overridable per HELLO `outq-bytes=`
  /// (clamped to the server cap; last HELLO on the connection wins).
  size_t OutQuota = 8 << 20;
  /// The server's self-pipe write end: an enqueue on an idle queue wakes
  /// the poll loop so it registers POLLOUT.
  int WakeFd = -1;
  /// The server's slow-client disconnect counter (overflow mutes).
  std::atomic<uint64_t> *SlowDrops = nullptr;

  void sendLine(const std::string &Line) override {
    if (WriteFailed.load(std::memory_order_relaxed))
      return;
    bool Wake = false;
    size_t Depth = 0;
    {
      std::lock_guard<std::mutex> L(WriteMu);
      if (!Sock.valid())
        return;
      if (OutBytes + Line.size() + 1 > OutQuota) {
        // The client is not keeping up: mute it (drop everything queued —
        // the durable record is the JSONL sink, not the push channel) and
        // wake the loop so the sweep disconnects it.
        WriteFailed.store(true, std::memory_order_relaxed);
        OutQ.clear();
        OutHead = 0;
        OutBytes = 0;
        if (SlowDrops)
          SlowDrops->fetch_add(1, std::memory_order_relaxed);
        Wake = true;
      } else {
        Wake = OutBytes == 0;
        std::string Out = Line;
        Out += '\n';
        OutBytes += Out.size();
        OutQ.push_back({std::move(Out), obs::traceNowNanos()});
        Depth = OutBytes;
      }
    }
    if (Depth)
      obs::metrics().ServerOutqDepth.record(Depth);
    if (Wake && WakeFd >= 0) {
      char B = 1;
      // Best effort; a full pipe means a wakeup is already pending.
      (void)!::write(WakeFd, &B, 1);
    }
  }

  bool pendingOut() {
    std::lock_guard<std::mutex> L(WriteMu);
    return OutBytes > 0;
  }

  void closeSocket() {
    std::lock_guard<std::mutex> L(WriteMu);
    Sock.close();
  }
};

/// The per-(connection, stream) ResponseWriter of a mux tenant: every
/// reply and push is prefixed with its `@<stream> ` tag so the client can
/// demux. Thread-safety rides on Conn::sendLine.
struct Server::MuxWriter final : ResponseWriter {
  MuxWriter(std::shared_ptr<Conn> C, std::string Stream)
      : C(std::move(C)), Tag("@" + std::move(Stream) + " ") {}

  void sendLine(const std::string &Line) override { C->sendLine(Tag + Line); }

  std::shared_ptr<Conn> C;
  std::string Tag;
};

namespace {

/// Resolves the hot-session thread budget: explicit values win, -1 picks 4
/// threads per hot session when the shared pool is big enough to spare
/// them, and anything below 2 disables the upgrade (a sharded pipeline
/// needs at least an applier and one shard worker).
unsigned hotThreadsFor(int ShardHotSessions, size_t PoolThreads) {
  if (ShardHotSessions >= 0)
    return ShardHotSessions >= 2 ? static_cast<unsigned>(ShardHotSessions)
                                 : 0;
  return PoolThreads >= 4 ? 4u : 0u;
}

SessionEnv sessionEnvFor(const ServerOptions &O, size_t PoolThreads) {
  SessionEnv Env;
  Env.CheckpointDir = O.CheckpointDir;
  Env.SinkDir = O.SinkDir;
  Env.CheckpointIntervalFlushes = O.CheckpointIntervalFlushes;
  Env.StoreCheckpoints = O.CheckpointStore;
  Env.HotThreads = hotThreadsFor(O.ShardHotSessions, PoolThreads);
  Env.HotBytesPerSec = O.HotBytesPerSec;
  Env.MaxInboxBytes = O.MaxInboxBytes;
  Env.MaxWindowBytes = O.MaxWindowBytes;
  return Env;
}

} // namespace

Server::Server(ServerOptions Options)
    : Options(std::move(Options)),
      Pool(std::make_unique<ThreadPool>(this->Options.Threads)),
      Registry(std::make_unique<SessionRegistry>(
          sessionEnvFor(this->Options, Pool->numThreads()), *Pool)) {}

Server::~Server() {
  // Join every pump before the registry (which the pumps' OnDead hooks
  // point into) goes away.
  Pool.reset();
  Registry.reset();
  if (WakePipe[0] >= 0)
    ::close(WakePipe[0]);
  if (WakePipe[1] >= 0)
    ::close(WakePipe[1]);
}

bool Server::start(std::string *Err) {
  if (::pipe(WakePipe) != 0) {
    if (Err)
      *Err = std::string("pipe(): ") + std::strerror(errno);
    return false;
  }
  if (!Listener.listenOn(Options.Host, Options.Port, Err))
    return false;
  if (Options.EnableMetrics &&
      !MetricsListener.listenOn(Options.Host, Options.MetricsPort, Err))
    return false;
  if (!Options.TraceDir.empty()) {
    std::error_code Ec;
    std::filesystem::create_directories(Options.TraceDir, Ec);
    if (Ec) {
      if (Err)
        *Err = "cannot create trace dir '" + Options.TraceDir +
               "': " + Ec.message();
      return false;
    }
  }
  return true;
}

void Server::requestShutdown() {
  ShutdownRequested.store(true, std::memory_order_release);
  if (WakePipe[1] >= 0) {
    char B = 1;
    // Best effort; the poll timeout catches a full pipe.
    (void)!::write(WakePipe[1], &B, 1);
  }
}

void Server::acceptClient() {
  Socket S = Listener.accept();
  if (!S.valid())
    return;
  // Non-blocking from the first byte: reads happen on POLLIN, replies go
  // through the bounded output queue and leave on POLLOUT. Nothing on
  // this socket can ever block the event loop or a pump thread.
  S.setNonBlocking(true);
  if (Options.SockSndBuf > 0)
    ::setsockopt(S.fd(), SOL_SOCKET, SO_SNDBUF, &Options.SockSndBuf,
                 sizeof(Options.SockSndBuf));
  auto C = std::make_shared<Conn>();
  C->Sock = std::move(S);
  C->Batch.K = StreamSession::Item::Kind::Data;
  C->OutQuota = Options.MaxOutQueueBytes;
  C->WakeFd = WakePipe[1];
  C->SlowDrops = &SlowClientDrops;
  Conns.push_back(std::move(C));
}

void Server::flushBatch(const std::shared_ptr<Conn> &C) {
  if (C->Batch.Lines.empty() && C->Batch.Spans.empty())
    return;
  StreamSession::Item I;
  I.K = StreamSession::Item::Kind::Data;
  std::swap(I, C->Batch);
  C->Batch.K = StreamSession::Item::Kind::Data;
  std::shared_ptr<StreamSession> Target = C->Session;
  if (!C->BatchStream.empty()) {
    auto It = C->MuxSessions.find(C->BatchStream);
    Target = It == C->MuxSessions.end() ? nullptr : It->second;
  }
  if (Target)
    Target->enqueue(std::move(I), *Pool);
}

void Server::handleHello(const std::shared_ptr<Conn> &C,
                         std::string_view Line) {
  // HELLO-to-OK-queued latency: the handshake runs inline on the event
  // loop (parse, auth, checkpoint restore on resume), so this histogram is
  // both the client's attach experience and a loop-stall witness.
  AWDIT_SPAN("server.hello");
  obs::ScopedLatency Lat(obs::metrics().ServerHello);
  HelloRequest Req;
  std::string Err;
  if (!parseHello(Line, Req, &Err)) {
    C->sendLine("ERR " + Err);
    return;
  }

  // The auth gate comes first: an unauthenticated HELLO must be rejected
  // before any session state is created (no registry lookup, no
  // checkpoint read, no sink file).
  if (!Options.AuthToken.empty() && Req.Token != Options.AuthToken) {
    AuthFailures.fetch_add(1, std::memory_order_relaxed);
    C->sendLine(Req.Token.empty()
                    ? "ERR auth token required (HELLO ... token=<secret>)"
                    : "ERR auth bad token");
    return;
  }

  // Quota requests above the server cap are refused, not silently
  // clamped — the tenant asked for a guarantee the server won't give.
  auto OverCap = [&](const char *Key, uint64_t Want, uint64_t Cap) {
    if (!Cap || !Want || Want <= Cap)
      return false;
    QuotaRejects.fetch_add(1, std::memory_order_relaxed);
    C->sendLine("ERR quota " + std::string(Key) + "=" +
                std::to_string(Want) + " exceeds server cap " +
                std::to_string(Cap));
    return true;
  };
  if (OverCap("inbox-bytes", Req.InboxBytes, Options.MaxInboxBytes) ||
      OverCap("outq-bytes", Req.OutQueueBytes, Options.MaxOutQueueBytes) ||
      OverCap("window-bytes", Req.WindowBytes, Options.MaxWindowBytes))
    return;

  bool MuxMode = C->Mux || Req.Mux;
  if (MuxMode && C->Session) {
    C->sendLine("ERR cannot mix mux and plain framing on one connection");
    return;
  }
  if (!MuxMode && C->Session) {
    C->sendLine("ERR already attached to stream '" + C->Session->name() +
                "'; DETACH first");
    return;
  }
  // Replies for a mux tenant carry its tag — including this HELLO's own
  // OK/ERR, so the client can demux concurrent handshakes.
  auto Reply = [&](const std::string &L) {
    C->sendLine(MuxMode ? "@" + Req.Stream + " " + L : L);
  };
  if (MuxMode && C->MuxSessions.count(Req.Stream)) {
    Reply("ERR already attached to stream '" + Req.Stream +
          "' on this connection");
    return;
  }

  std::shared_ptr<ResponseWriter> W =
      MuxMode ? std::shared_ptr<ResponseWriter>(
                    std::make_shared<MuxWriter>(C, Req.Stream))
              : C;
  SessionRegistry::HelloResult R = Registry->hello(Req, std::move(W));
  if (!R.Session) {
    Reply("ERR " + R.Err);
    return;
  }
  if (Req.OutQueueBytes) {
    // The output queue belongs to the connection; on a mux connection the
    // last HELLO's request wins.
    std::lock_guard<std::mutex> L(C->WriteMu);
    C->OutQuota = Req.OutQueueBytes;
  }
  if (MuxMode) {
    C->Mux = true;
    C->MuxSessions[Req.Stream] = R.Session;
    C->CurStream = Req.Stream;
  } else {
    C->Session = R.Session;
  }
  Reply("OK " + Req.Stream + " " + R.Status +
        " offset=" + std::to_string(R.Offset) +
        " line=" + std::to_string(R.LineNo));
}

void Server::handleTrace(const std::shared_ptr<Conn> &C,
                         std::string_view Line) {
  // TRACE is an operator verb with process-wide effect (toggling tracing
  // clears every ring; dump writes files into --trace-dir). Behind
  // --auth-token it requires the same gate as HELLO: an anonymous
  // connection must not wipe recordings or fill the disk with dumps.
  if (!Options.AuthToken.empty() && !C->Session && C->MuxSessions.empty()) {
    AuthFailures.fetch_add(1, std::memory_order_relaxed);
    C->sendLine("ERR auth TRACE needs an authenticated session "
                "(HELLO ... token=<secret> first)");
    return;
  }
  std::vector<std::string_view> Tok = io::tokenize(Line);
  std::string_view Arg = Tok.size() >= 2 ? Tok[1] : std::string_view();
  if (Arg == "on") {
    // A fresh window: operators turn tracing on to look at *now*, not at
    // whatever the rings held from a forgotten earlier session.
    obs::traceClear();
    obs::setTraceEnabled(true);
    C->sendLine("OK trace on");
    return;
  }
  if (Arg == "off") {
    obs::setTraceEnabled(false);
    C->sendLine("OK trace off");
    return;
  }
  if (Arg == "dump") {
    if (Options.TraceDir.empty()) {
      C->sendLine("ERR trace dump needs the server started with "
                  "--trace-dir");
      return;
    }
    std::string Path = Options.TraceDir + "/trace-" +
                       std::to_string(++TraceDumpSeq) + ".json";
    // Serializing every ring and writing the file can take long enough to
    // stall the event loop (and trip the poll-stall gauge the soak gate
    // watches), so the dump runs on the shared pool; the reply leaves
    // through the thread-safe output queue when the file is on disk.
    Pool->submit([C, Path] {
      std::string Err;
      if (!obs::writeTraceFile(Path, &Err))
        C->sendLine("ERR trace " + Err);
      else
        C->sendLine("OK trace dumped " + Path);
    });
    return;
  }
  C->sendLine("ERR TRACE wants on|off|dump");
}

std::string Server::serverStatsJson(bool Deep) const {
  SessionRegistry::Totals T = Registry->totals();
  std::string Out = "{\"sessions_live\":" +
                    std::to_string(T.SessionsLive) +
                    ",\"sessions_created\":" +
                    std::to_string(T.SessionsCreated) +
                    ",\"sessions_resumed\":" +
                    std::to_string(T.SessionsResumed) +
                    ",\"sessions_evicted\":" +
                    std::to_string(T.SessionsEvicted) +
                    ",\"sessions_ended\":" + std::to_string(T.SessionsEnded) +
                    ",\"checkpoints\":" + std::to_string(T.Checkpoints) +
                    ",\"hot_upgrades\":" + std::to_string(T.HotUpgrades) +
                    ",\"quota_trips\":" + std::to_string(T.QuotaTrips) +
                    ",\"totals\":" + T.Counters.toJson();
  if (Deep) {
    // The process-wide pipeline latency percentiles, one object per
    // histogram family (same data /metrics renders as buckets).
    const obs::PipelineMetrics &PM = obs::metrics();
    auto Field = [&Out](const char *Name, const obs::LatencyHistogram &H) {
      Out += ",\"";
      Out += Name;
      Out += "\":";
      Out += H.snapshot().percentilesJson();
    };
    Field("flush", PM.FlushTotal);
    Field("server_pump", PM.ServerPump);
    Field("server_hello", PM.ServerHello);
    Field("server_output_queue", PM.ServerOutputQueue);
    Field("ingest_queue_wait", PM.IngestQueueWait);
    Field("checkpoint_v1", PM.CheckpointV1Write);
    Field("checkpoint_store", PM.CheckpointStoreCommit);
  }
  Out += "}";
  return Out;
}

void Server::handleLine(const std::shared_ptr<Conn> &C,
                        std::string_view Line) {
  if (C->Mux) {
    handleMuxLine(C, Line);
    return;
  }
  switch (classifyLine(Line)) {
  case Verb::Hello:
    flushBatch(C);
    handleHello(C, Line);
    return;

  case Verb::Stats:
    flushBatch(C);
    if (C->Session) {
      StreamSession::Item I;
      I.K = StreamSession::Item::Kind::Stats;
      I.Deep = statsWantsDeep(Line);
      C->Session->enqueue(std::move(I), *Pool);
    } else {
      // Pre-HELLO STATS: the whole-server view.
      C->sendLine("STATS " + serverStatsJson(statsWantsDeep(Line)));
    }
    return;

  case Verb::Trace:
    flushBatch(C);
    handleTrace(C, Line);
    return;

  case Verb::Detach:
    flushBatch(C);
    if (!C->Session) {
      C->sendLine("ERR not attached");
      return;
    }
    {
      StreamSession::Item I;
      I.K = StreamSession::Item::Kind::Detach;
      std::shared_ptr<StreamSession> S = std::move(C->Session);
      C->Session.reset();
      S->enqueue(std::move(I), *Pool);
    }
    return;

  case Verb::End:
    flushBatch(C);
    if (!C->Session) {
      C->sendLine("ERR not attached");
      return;
    }
    {
      StreamSession::Item I;
      I.K = StreamSession::Item::Kind::End;
      std::shared_ptr<StreamSession> S = std::move(C->Session);
      C->Session.reset();
      S->enqueue(std::move(I), *Pool);
    }
    return;

  case Verb::Shutdown:
    flushBatch(C);
    C->sendLine("OK shutting-down");
    requestShutdown();
    return;

  case Verb::None:
    if (!C->Session) {
      // Tolerate leading blank lines/comments before HELLO.
      size_t NonBlank = Line.find_first_not_of(" \t");
      if (NonBlank == std::string_view::npos || Line[NonBlank] == '#')
        return;
      C->sendLine("ERR expected HELLO before stream data");
      return;
    }
    C->Batch.Lines.emplace_back(Line);
    C->Batch.Bytes += Line.size() + 1;
    return;
  }
}

void Server::handleMuxLine(const std::shared_ptr<Conn> &C,
                           std::string_view Line) {
  // The '@@' escape: a bare (current-stream) payload that itself starts
  // with '@', shipped with the '@' doubled.
  if (Line.size() >= 2 && Line[0] == '@' && Line[1] == '@') {
    if (C->CurStream.empty()) {
      C->sendLine("ERR mux: no current stream (switch with '@<stream>')");
      return;
    }
    routeMuxPayload(C, C->CurStream, unescapeMuxPayload(Line));
    return;
  }

  if (isMuxFrame(Line)) {
    std::string_view Stream, Payload;
    bool HasPayload = false;
    if (!splitMuxFrame(Line, Stream, Payload, HasPayload)) {
      C->sendLine("ERR mux: malformed frame (want '@<stream> [line]')");
      return;
    }
    std::string Name(Stream);
    if (!C->MuxSessions.count(Name)) {
      C->sendLine("ERR mux: unknown stream '" + Name + "'");
      return;
    }
    C->CurStream = Name;
    if (HasPayload)
      routeMuxPayload(C, Name, Payload);
    return;
  }

  // A bare line. Connection-level verbs first: HELLO opens another
  // tenant, SHUTDOWN drains the server, STATS with no current stream is
  // the whole-server view.
  Verb V = classifyLine(Line);
  if (V == Verb::Hello) {
    flushBatch(C);
    handleHello(C, Line);
    return;
  }
  if (V == Verb::Shutdown) {
    flushBatch(C);
    C->sendLine("OK shutting-down");
    requestShutdown();
    return;
  }
  if (V == Verb::Trace) {
    flushBatch(C);
    handleTrace(C, Line);
    return;
  }
  if (C->CurStream.empty()) {
    if (V == Verb::Stats) {
      flushBatch(C);
      C->sendLine("STATS " + serverStatsJson(statsWantsDeep(Line)));
      return;
    }
    // Tolerate blank lines/comments, as pre-HELLO plain mode does.
    size_t NonBlank = Line.find_first_not_of(" \t");
    if (NonBlank == std::string_view::npos || Line[NonBlank] == '#')
      return;
    C->sendLine("ERR mux: no current stream (switch with '@<stream>')");
    return;
  }
  routeMuxPayload(C, C->CurStream, Line);
}

void Server::routeMuxPayload(const std::shared_ptr<Conn> &C,
                             const std::string &Stream,
                             std::string_view Payload) {
  auto It = C->MuxSessions.find(Stream);
  if (It == C->MuxSessions.end()) {
    C->sendLine("ERR mux: unknown stream '" + Stream + "'");
    return;
  }
  std::shared_ptr<StreamSession> S = It->second;
  auto Enqueue = [&](StreamSession::Item::Kind K) {
    flushBatch(C);
    StreamSession::Item I;
    I.K = K;
    S->enqueue(std::move(I), *Pool);
  };
  switch (classifyLine(Payload)) {
  case Verb::None:
    // A data line: extend the sticky batch, flushing when the routed
    // stream changed under it.
    if (C->BatchStream != Stream) {
      flushBatch(C);
      C->BatchStream = Stream;
    }
    C->Batch.Lines.emplace_back(Payload);
    C->Batch.Bytes += Payload.size() + 1;
    return;

  case Verb::Stats: {
    flushBatch(C);
    StreamSession::Item I;
    I.K = StreamSession::Item::Kind::Stats;
    I.Deep = statsWantsDeep(Payload);
    S->enqueue(std::move(I), *Pool);
    return;
  }

  case Verb::Trace:
    flushBatch(C);
    handleTrace(C, Payload);
    return;

  case Verb::Detach:
    Enqueue(StreamSession::Item::Kind::Detach);
    C->MuxSessions.erase(Stream);
    if (C->CurStream == Stream)
      C->CurStream.clear();
    if (C->BatchStream == Stream)
      C->BatchStream.clear();
    return;

  case Verb::End:
    Enqueue(StreamSession::Item::Kind::End);
    C->MuxSessions.erase(Stream);
    if (C->CurStream == Stream)
      C->CurStream.clear();
    if (C->BatchStream == Stream)
      C->BatchStream.clear();
    return;

  case Verb::Hello:
    // HELLO names its own stream; a framed one is a client bug.
    C->sendLine("ERR mux: send HELLO unframed (it names its stream)");
    return;

  case Verb::Shutdown:
    flushBatch(C);
    C->sendLine("OK shutting-down");
    requestShutdown();
    return;
  }
}

void Server::readConn(const std::shared_ptr<Conn> &C) {
  // read(2) straight into the connection's arena page: for a hot
  // connection these very bytes are what the session's shard workers
  // decode — no copy in between.
  auto [Buf, Cap] = C->Rx.window(1 << 16);
  long N = C->Sock.readSome(Buf, Cap);
  if (N < 0 && (errno == EAGAIN || errno == EWOULDBLOCK))
    return; // spurious wakeup on the non-blocking socket
  if (N <= 0) {
    closeConn(C);
    return;
  }
  C->Rx.commit(static_cast<size_t>(N));

  // Rate tracking (bytes per steady second); crossing the threshold makes
  // the connection hot for the rest of its life.
  uint64_t Now = steadyNowSec();
  if (Now != C->RateWindowSec) {
    C->RateWindowSec = Now;
    C->RateBytes = 0;
  }
  C->RateBytes += static_cast<uint64_t>(N);
  if (!C->Hot && Registry->hotEnabled() &&
      C->RateBytes >= Options.HotBytesPerSec)
    C->Hot = true;

  std::string_view Pending = C->Rx.pending();
  size_t LastNl = Pending.rfind('\n');
  if (LastNl == std::string_view::npos) {
    // Only a growing partial line staged; bound it.
    if (Pending.size() > MaxLineBytes) {
      C->sendLine("ERR line exceeds " + std::to_string(MaxLineBytes) +
                  " bytes");
      closeConn(C);
    }
    return;
  }
  dispatchLines(C, C->Rx.take(LastNl + 1));
  if (C->Rx.pendingBytes() > MaxLineBytes) {
    C->sendLine("ERR line exceeds " + std::to_string(MaxLineBytes) +
                " bytes");
    closeConn(C);
    return;
  }
  flushBatch(C);
}

void Server::dispatchLines(const std::shared_ptr<Conn> &C,
                           const PageSpan &Span) {
  std::string_view V = Span.view(); // whole lines; ends in '\n'
  size_t RunBegin = std::string_view::npos;
  auto FlushRun = [&](size_t RunEnd) {
    if (RunBegin == std::string_view::npos)
      return;
    C->Batch.Spans.push_back(
        PageSpan{Span.Page, Span.Begin + RunBegin, Span.Begin + RunEnd});
    C->Batch.Bytes += RunEnd - RunBegin;
    RunBegin = std::string_view::npos;
  };
  size_t Pos = 0;
  while (Pos < V.size() && !C->Dead) {
    size_t Nl = io::scanToNewline(V, Pos);
    std::string_view Line = V.substr(Pos, Nl - Pos);
    if (C->Hot && C->Session && classifyLine(Line) == Verb::None) {
      // A data line on a hot connection: extend the current zero-copy run
      // (newline included — the sharded pipeline wants verbatim bytes).
      if (RunBegin == std::string_view::npos)
        RunBegin = Pos;
      Pos = Nl + 1;
      continue;
    }
    FlushRun(Pos);
    handleLine(C, Line);
    Pos = Nl + 1;
  }
  FlushRun(Pos);
}

void Server::closeConn(const std::shared_ptr<Conn> &C) {
  flushBatch(C);
  // The client vanished without DETACH: detach quietly, keep the
  // session(s) for a reconnect (or the idle-eviction timer).
  auto DetachQuiet = [&](std::shared_ptr<StreamSession> S) {
    StreamSession::Item I;
    I.K = StreamSession::Item::Kind::Detach;
    I.Quiet = true;
    S->enqueue(std::move(I), *Pool);
  };
  if (C->Session) {
    std::shared_ptr<StreamSession> S = std::move(C->Session);
    C->Session.reset();
    DetachQuiet(std::move(S));
  }
  for (auto &[Name, S] : C->MuxSessions)
    DetachQuiet(S);
  C->MuxSessions.clear();
  C->CurStream.clear();
  C->BatchStream.clear();
  C->closeSocket();
  C->Dead = true;
}

std::string Server::renderMetrics() const {
  SessionRegistry::Totals T = Registry->totals();
  std::string Out;
  metricLine(Out, "awdit_server_sessions_live",
             "Stream sessions currently held by the registry.", "gauge",
             T.SessionsLive);
  metricLine(Out, "awdit_server_sessions_created_total",
             "Sessions created (fresh or resumed) since process start.",
             "counter", T.SessionsCreated);
  metricLine(Out, "awdit_server_sessions_resumed_total",
             "Sessions restored from a per-stream checkpoint.", "counter",
             T.SessionsResumed);
  metricLine(Out, "awdit_server_sessions_evicted_total",
             "Idle detached sessions checkpointed and evicted.", "counter",
             T.SessionsEvicted);
  metricLine(Out, "awdit_server_sessions_ended_total",
             "Sessions ended by the END verb.", "counter", T.SessionsEnded);
  metricLine(Out, "awdit_server_checkpoints_total",
             "Per-stream checkpoints written.", "counter", T.Checkpoints);
  metricLine(Out, "awdit_server_hot_upgrades_total",
             "Sessions upgraded to the sharded ingest pipeline.", "counter",
             T.HotUpgrades);
  metricLine(Out, "awdit_server_quota_trips_total",
             "Tenants wedged for exceeding their window-bytes quota.",
             "counter", T.QuotaTrips);
  metricLine(Out, "awdit_server_quota_rejects_total",
             "HELLOs refused for requesting quotas above the server cap.",
             "counter", QuotaRejects.load(std::memory_order_relaxed));
  metricLine(Out, "awdit_server_auth_failures_total",
             "Commands (HELLO, unauthenticated TRACE) refused for a "
             "missing or bad auth token.", "counter",
             AuthFailures.load(std::memory_order_relaxed));
  metricLine(Out, "awdit_server_slow_client_disconnects_total",
             "Clients muted and dropped for an overflowing output queue.",
             "counter", SlowClientDrops.load(std::memory_order_relaxed));
  // The rolling stall high water resets on every scrape (worst iteration
  // since the last scrape), so exactly one scraper may consume it — a
  // second reader zeroes the window the first expects. Anything else
  // (dashboards, CI gates, manual curls) must use the _lifetime variant,
  // which never resets.
  metricLine(Out, "awdit_server_poll_max_stall_micros",
             "Worst event-loop iteration (micros) since the last scrape; "
             "read-destructive, single-scraper only (others: use _lifetime).",
             "gauge", MaxPollStallMicros.exchange(0, std::memory_order_relaxed));
  metricLine(Out, "awdit_server_poll_max_stall_micros_lifetime",
             "Worst event-loop iteration (micros) since process start.",
             "gauge",
             MaxPollStallLifetimeMicros.load(std::memory_order_relaxed));
  metricLine(Out, "awdit_server_txns_ingested_total",
             "Transactions ingested across all streams.", "counter",
             T.Counters.Txns);
  metricLine(Out, "awdit_server_txns_committed_total",
             "Committed transactions ingested across all streams.",
             "counter", T.Counters.Committed);
  metricLine(Out, "awdit_server_ops_total",
             "Operations ingested across all streams.", "counter",
             T.Counters.Ops);
  metricLine(Out, "awdit_server_violations_total",
             "Isolation violations reported across all streams.", "counter",
             T.Counters.Violations);
  metricLine(Out, "awdit_server_flushes_total",
             "Monitor checking passes run across all streams.", "counter",
             T.Counters.Flushes);
  metricLine(Out, "awdit_server_evicted_txns_total",
             "Transactions evicted from checking windows.", "counter",
             T.Counters.EvictedTxns);
  metricLine(Out, "awdit_server_forced_aborts_total",
             "Hung open transactions force-aborted.", "counter",
             T.Counters.ForcedAborts);
  metricHeader(Out, "awdit_server_flush_seconds_total",
               "Total wall-clock seconds spent in checking passes.",
               "counter");
  Out += "awdit_server_flush_seconds_total ";
  char Sec[64];
  std::snprintf(Sec, sizeof(Sec), "%.6f",
                static_cast<double>(T.Counters.FlushMicros) / 1e6);
  Out += Sec;
  Out += '\n';

  // The pipeline latency histograms (process-global; every session and
  // both CLI paths record into them). Rendered even when empty so a
  // scraper's required-series list holds from the first scrape.
  const obs::PipelineMetrics &PM = obs::metrics();
  auto Histogram = [&Out](const char *Name, const char *Help,
                          const obs::LatencyHistogram &H,
                          const std::string &Labels, bool Unitless = false,
                          bool Header = true) {
    if (Header)
      metricHeader(Out, Name, Help, "histogram");
    H.snapshot().renderProm(Out, Name, Labels, Unitless);
  };
  Histogram("awdit_flush_duration_seconds",
            "One monitor checking pass, end to end.", PM.FlushTotal, "");
  metricHeader(Out, "awdit_flush_phase_duration_seconds",
               "Checking-pass time split by phase (pk overlaps the "
               "others).",
               "histogram");
  for (unsigned I = 0; I < obs::NumFlushPhases; ++I)
    Histogram("awdit_flush_phase_duration_seconds", "", PM.FlushPhases[I],
              std::string("phase=\"") +
                  obs::flushPhaseName(static_cast<obs::FlushPhase>(I)) +
                  "\"",
              false, false);
  metricHeader(Out, "awdit_ingest_stage_duration_seconds",
               "Sharded-ingest batch time by pipeline stage.", "histogram");
  for (unsigned I = 0; I < obs::NumIngestStages; ++I)
    Histogram("awdit_ingest_stage_duration_seconds", "", PM.IngestStages[I],
              std::string("stage=\"") +
                  obs::ingestStageName(static_cast<obs::IngestStage>(I)) +
                  "\"",
              false, false);
  Histogram("awdit_ingest_queue_wait_seconds",
            "Producer block time on a full ingest SPSC queue.",
            PM.IngestQueueWait, "");
  Histogram("awdit_ingest_queue_depth",
            "Ingest SPSC queue occupancy (items), sampled at enqueue.",
            PM.IngestQueueDepth, "", /*Unitless=*/true);
  metricHeader(Out, "awdit_checkpoint_write_seconds",
               "Checkpoint persistence, by layout.", "histogram");
  Histogram("awdit_checkpoint_write_seconds", "", PM.CheckpointV1Write,
            "format=\"v1\"", false, false);
  Histogram("awdit_checkpoint_write_seconds", "", PM.CheckpointStoreCommit,
            "format=\"store\"", false, false);
  Histogram("awdit_server_pump_seconds",
            "One session-actor work item on the shared pool.",
            PM.ServerPump, "");
  Histogram("awdit_server_hello_seconds",
            "HELLO handling, parse to OK/ERR queued.", PM.ServerHello, "");
  Histogram("awdit_server_output_queue_seconds",
            "Reply residency from enqueue to fully on the wire.",
            PM.ServerOutputQueue, "");
  Histogram("awdit_server_outq_depth_bytes",
            "Connection output-queue bytes, sampled at enqueue.",
            PM.ServerOutqDepth, "", /*Unitless=*/true);

  // Per-stream series for the live tenants.
  metricHeader(Out, "awdit_session_committed_txns",
               "Committed transactions ingested by this stream.", "gauge");
  std::string Violations;
  metricHeader(Violations, "awdit_session_violations",
               "Violations reported on this stream.", "gauge");
  std::string Phases;
  metricHeader(Phases, "awdit_session_flush_phase_micros_total",
               "Stream flush time by phase (micros; pk overlaps).",
               "counter");
  for (const std::shared_ptr<StreamSession> &S : Registry->sessions()) {
    if (S->phase() == StreamSession::Phase::Dead)
      continue;
    StatsSnapshot Snap = S->counters();
    std::string Label = "{stream=\"";
    appendLabelEscaped(Label, S->name());
    Label += "\"}";
    Out += "awdit_session_committed_txns" + Label + " " +
           std::to_string(Snap.Committed) + "\n";
    Violations += "awdit_session_violations" + Label + " " +
                  std::to_string(Snap.Violations) + "\n";
    for (unsigned I = 0; I < obs::NumFlushPhases; ++I) {
      Phases += "awdit_session_flush_phase_micros_total{stream=\"";
      appendLabelEscaped(Phases, S->name());
      Phases += "\",phase=\"";
      Phases += obs::flushPhaseName(static_cast<obs::FlushPhase>(I));
      Phases += "\"} ";
      Phases += std::to_string(S->flushPhaseMicros(I));
      Phases += '\n';
    }
  }
  Out += Violations;
  Out += Phases;
  return Out;
}

void Server::serveMetricsConn() {
  Socket S = MetricsListener.accept();
  if (!S.valid())
    return;
  // A scrape is one small request served inline on the event loop; the
  // timeouts keep a stuck scraper (never sends, or never reads a large
  // response) from wedging every tenant.
  struct timeval Tv = {2, 0};
  ::setsockopt(S.fd(), SOL_SOCKET, SO_RCVTIMEO, &Tv, sizeof(Tv));
  ::setsockopt(S.fd(), SOL_SOCKET, SO_SNDTIMEO, &Tv, sizeof(Tv));
  char Buf[4096];
  long N = S.readSome(Buf, sizeof(Buf));
  std::string_view Req(Buf, N > 0 ? static_cast<size_t>(N) : 0);
  bool NotFound = false;
  if (Req.rfind("GET ", 0) == 0) {
    size_t PathEnd = Req.find(' ', 4);
    std::string_view Path = Req.substr(4, PathEnd == std::string_view::npos
                                              ? std::string_view::npos
                                              : PathEnd - 4);
    NotFound = Path != "/metrics" && Path != "/";
  }
  std::string Body = NotFound ? "not found\n" : renderMetrics();
  std::string Resp = NotFound ? "HTTP/1.0 404 Not Found\r\n"
                              : "HTTP/1.0 200 OK\r\n";
  Resp += "Content-Type: text/plain; version=0.0.4\r\n"
          "Content-Length: " +
          std::to_string(Body.size()) +
          "\r\n"
          "Connection: close\r\n\r\n";
  Resp += Body;
  S.writeAll(Resp);
}

void Server::drainConnOutput(const std::shared_ptr<Conn> &C) {
  bool Fail = false;
  {
    std::lock_guard<std::mutex> L(C->WriteMu);
    while (!C->OutQ.empty()) {
      std::string_view Front(C->OutQ.front().Bytes);
      Front.remove_prefix(C->OutHead);
      long N = C->Sock.valid() ? C->Sock.sendSome(Front) : -1;
      if (N < 0) {
        Fail = true;
        break;
      }
      if (N == 0)
        break; // kernel buffer full: wait for the next POLLOUT
      C->OutHead += static_cast<size_t>(N);
      C->OutBytes -= static_cast<size_t>(N);
      if (C->OutHead == C->OutQ.front().Bytes.size()) {
        obs::metrics().ServerOutputQueue.record(
            (obs::traceNowNanos() - C->OutQ.front().EnqueueNs) / 1000);
        C->OutQ.pop_front();
        C->OutHead = 0;
      }
    }
    if (Fail) {
      C->OutQ.clear();
      C->OutHead = 0;
      C->OutBytes = 0;
    }
  }
  if (Fail)
    C->WriteFailed.store(true, std::memory_order_relaxed);
}

void Server::run() {
  while (!ShutdownRequested.load(std::memory_order_acquire)) {
    std::vector<pollfd> Fds;
    Fds.push_back({WakePipe[0], POLLIN, 0});
    Fds.push_back({Listener.fd(), POLLIN, 0});
    if (MetricsListener.valid())
      Fds.push_back({MetricsListener.fd(), POLLIN, 0});
    size_t FirstConn = Fds.size();
    std::vector<std::shared_ptr<Conn>> Polled;
    for (const std::shared_ptr<Conn> &C : Conns) {
      if (C->Dead)
        continue;
      short Events = 0;
      // Backpressure: a session that is too far behind its quota is not
      // read; the TCP window fills and pushes back to the client. On a
      // mux connection any lagging tenant gates the whole socket (the
      // frames are interleaved — head-of-line, by design).
      bool Lagging = C->Session && C->Session->inboxBytes() >
                                       C->Session->inboxQuota();
      for (auto It = C->MuxSessions.begin();
           !Lagging && It != C->MuxSessions.end(); ++It)
        Lagging = It->second->inboxBytes() > It->second->inboxQuota();
      if (!Lagging)
        Events |= POLLIN;
      if (C->pendingOut())
        Events |= POLLOUT;
      if (!Events)
        continue;
      Fds.push_back({C->Sock.fd(), Events, 0});
      Polled.push_back(C);
    }

    int Ready = ::poll(Fds.data(), Fds.size(), /*timeout_ms=*/100);
    if (Ready < 0 && errno != EINTR)
      break;

    // Everything below must stay non-blocking: the handling time of one
    // iteration is the loop's stall, tracked as a high-water mark for
    // /metrics (awdit_server_poll_max_stall_micros).
    auto HandleT0 = std::chrono::steady_clock::now();

    if (Ready > 0) {
      if (Fds[0].revents & POLLIN) {
        char B[64];
        (void)!::read(WakePipe[0], B, sizeof(B));
      }
      if (Fds[1].revents & POLLIN)
        acceptClient();
      if (MetricsListener.valid() && (Fds[2].revents & POLLIN))
        serveMetricsConn();
      for (size_t I = FirstConn; I < Fds.size(); ++I) {
        const std::shared_ptr<Conn> &C = Polled[I - FirstConn];
        if (Fds[I].revents & POLLOUT)
          drainConnOutput(C);
        if (Fds[I].revents & (POLLIN | POLLHUP | POLLERR))
          readConn(C);
      }
    }

    // Housekeeping, at most once a second: sweep dead sessions, schedule
    // idle evictions, drop closed connections.
    uint64_t Now = steadyNowSec();
    if (Now != LastSweepSec) {
      LastSweepSec = Now;
      Registry->sweep(Now, Options.IdleTimeoutSec);
      for (const std::shared_ptr<Conn> &C : Conns)
        if (!C->Dead && C->WriteFailed.load(std::memory_order_relaxed))
          closeConn(C);
      Conns.erase(std::remove_if(Conns.begin(), Conns.end(),
                                 [](const std::shared_ptr<Conn> &C) {
                                   return C->Dead;
                                 }),
                  Conns.end());
    }

    uint64_t Micros = static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - HandleT0)
            .count());
    if (Micros > MaxPollStallMicros.load(std::memory_order_relaxed))
      MaxPollStallMicros.store(Micros, std::memory_order_relaxed);
    if (Micros > MaxPollStallLifetimeMicros.load(std::memory_order_relaxed))
      MaxPollStallLifetimeMicros.store(Micros, std::memory_order_relaxed);
  }

  // --- Drain. ---
  Listener.close();
  MetricsListener.close();
  Registry->drainAll();
  // The drain courtesies (DRAINING/FINAL/BYE) are sitting in the output
  // queues; give clients that are still reading a bounded chance to
  // receive them before the sockets close.
  flushOutputAtDrain();
  for (const std::shared_ptr<Conn> &C : Conns) {
    C->Session.reset();
    C->MuxSessions.clear();
    C->closeSocket();
  }
  Conns.clear();
}

void Server::flushOutputAtDrain() {
  auto Deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  for (;;) {
    std::vector<pollfd> Fds;
    std::vector<std::shared_ptr<Conn>> Polled;
    for (const std::shared_ptr<Conn> &C : Conns) {
      if (C->Dead || C->WriteFailed.load(std::memory_order_relaxed) ||
          !C->pendingOut())
        continue;
      Fds.push_back({C->Sock.fd(), POLLOUT, 0});
      Polled.push_back(C);
    }
    if (Fds.empty() || std::chrono::steady_clock::now() >= Deadline)
      return;
    int Ready = ::poll(Fds.data(), Fds.size(), /*timeout_ms=*/100);
    if (Ready < 0 && errno != EINTR)
      return;
    for (size_t I = 0; I < Fds.size(); ++I)
      if (Fds[I].revents & (POLLOUT | POLLHUP | POLLERR))
        drainConnOutput(Polled[I]);
  }
}
