//===- server/protocol.h - Multi-tenant server line protocol -----*- C++ -*-===//
//
// Part of the AWDIT reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The line protocol of `awdit serve`: a strict superset of the native
/// stream format (io/stream_parser.h). Every line a client sends is either
/// a *session-control verb* (first token is an upper-case keyword) or a
/// *stream line* forwarded verbatim to the session's format parser — the
/// native directives (`b`/`r`/`w`/`c`/`a`/`t`), Plume CSV rows, or DBCop
/// blocks, chosen by the HELLO `format=` option.
///
/// Control verbs:
///
///   HELLO <stream-id> <rc|ra|cc> [k=v ...]   open/attach/resume a session
///       checker options: interval=N window=N window-edges=N window-age=T
///                force-abort=T witnesses=N format=native|plume|dbcop
///       connection options (not part of the compatibility fingerprint):
///                token=S mux=on inbox-bytes=N outq-bytes=N window-bytes=N
///   STATS                                    one-line JSON session stats
///   STATS deep                               adds latency percentiles and
///                                            flush-phase breakdowns
///   DETACH                                   detach; the session stays live
///   END                                      stream complete: finalize,
///                                            report, remove the session
///   TRACE on|off|dump                        control span recording; dump
///                                            writes Chrome-trace JSON into
///                                            the server's --trace-dir
///   SHUTDOWN                                 drain the whole server
///
/// Server replies (always one line):
///
///   OK <stream-id> new|resumed|attached offset=<bytes> line=<n>
///   OK detached <stream-id>
///   OK shutting-down
///   STATS {json}
///   VIOLATION {json}            pushed asynchronously while checking
///   FINAL {json}                the end-of-stream summary (after END, and
///                               as a courtesy snapshot during drain)
///   BYE                         the server is closing this connection
///   DRAINING <stream-id> offset=<bytes>   sent at SIGTERM drain; the
///                               session was checkpointed at this offset
///   ERR quota <details>         a typed resource-quota rejection
///   ERR auth <details>          a typed authentication rejection
///   ERR <message>
///
/// Stream ids are client-chosen strings (no whitespace); they name the
/// session's checkpoint file (checker/checkpoint.h sanitizer) and its
/// JSON-lines sink, and tag every pushed violation.
///
/// Mux framing (`HELLO ... mux=on`): one connection carries many streams.
/// Inbound, a line `@<stream> <payload>` routes <payload> to that stream
/// and makes it current; `@<stream>` alone just switches; a bare line goes
/// to the current stream; a payload that itself starts with '@' is sent as
/// a bare line with the '@' doubled (`@@...` unescapes to `@...`).
/// Outbound, every reply and push for a mux stream is prefixed with
/// `@<stream> `; replies never need escaping (no reply verb starts
/// with '@'). See docs/PROTOCOL.md for the full reference.
///
//===----------------------------------------------------------------------===//

#ifndef AWDIT_SERVER_PROTOCOL_H
#define AWDIT_SERVER_PROTOCOL_H

#include "checker/monitor.h"

#include <map>
#include <string>
#include <string_view>

namespace awdit {
namespace server {

/// The session-control verbs. None means "not a control line": forward the
/// line to the session's stream parser.
enum class Verb : uint8_t {
  None,
  Hello,
  Stats,
  Detach,
  End,
  Shutdown,
  Trace,
};

/// Classifies one line (no trailing newline). Only exact upper-case
/// keywords in the first token are verbs, so the stream formats (all of
/// which use lower-case directives, digits, or `R`/`W`/`sessions`/`txn`
/// tokens) pass through untouched.
Verb classifyLine(std::string_view Line);

/// True for the `STATS deep` form (the caller already classified the line
/// as Verb::Stats): the reply adds flush-latency percentiles and the
/// per-phase time breakdown to the counter JSON.
bool statsWantsDeep(std::string_view Line);

/// A parsed HELLO line.
struct HelloRequest {
  std::string Stream;
  IsolationLevel Level = IsolationLevel::CausalConsistency;
  std::string Format = "native";
  /// Fully resolved options (defaults applied where not given).
  MonitorOptions Options;
  /// The k=v options the client gave explicitly, as typed. Attach/resume
  /// compatibility only checks these: omitted options defer to the
  /// session's (or the checkpoint's) existing configuration.
  ///
  /// Connection-level options (token/mux/inbox-bytes/outq-bytes/
  /// window-bytes) are *not* recorded here: they describe the attachment,
  /// not the checker, so they never conflict with a checkpoint.
  std::map<std::string, std::string> Given;

  /// `mux=on`: switch the connection to multiplexed framing.
  bool Mux = false;
  /// `token=S`: the shared auth secret (empty = none given).
  std::string Token;
  /// Per-tenant quota requests (`inbox-bytes=` / `outq-bytes=` /
  /// `window-bytes=`); 0 = not given, the server default applies. The
  /// server clamps nothing: a request above its cap is an `ERR quota`.
  uint64_t InboxBytes = 0;
  uint64_t OutQueueBytes = 0;
  uint64_t WindowBytes = 0;
};

/// Parses a HELLO line. Returns false with \p Err set on a malformed line.
bool parseHello(std::string_view Line, HelloRequest &Req, std::string *Err);

/// The value of option \p Key ("format", "interval", "window", ...) in
/// \p Format + \p Options, rendered the way a client would type it — the
/// compatibility checks compare against this.
std::string optionValue(const std::string &Format,
                        const MonitorOptions &Options,
                        const std::string &Key);

/// Checks every explicitly-given HELLO option against an existing
/// configuration (a live session's, or a checkpoint's). Returns false with
/// \p Err naming the first conflicting option.
bool checkCompatible(const HelloRequest &Req, const std::string &Format,
                     const MonitorOptions &Options, std::string *Err);

//===----------------------------------------------------------------------===//
// Mux framing helpers (shared by the server, the loadgen client, and the
// unit tests so both sides of the escape round-trip stay in one place).
//===----------------------------------------------------------------------===//

/// True when \p Line is a mux frame — starts with '@' but is not the
/// '@@' payload escape.
inline bool isMuxFrame(std::string_view Line) {
  return !Line.empty() && Line[0] == '@' &&
         !(Line.size() >= 2 && Line[1] == '@');
}

/// Splits a mux frame `@<stream>[ <payload>]`. \p HasPayload
/// distinguishes `@s` (switch only) from `@s ` (empty payload). Returns
/// false when the stream name is empty.
bool splitMuxFrame(std::string_view Line, std::string_view &Stream,
                   std::string_view &Payload, bool &HasPayload);

/// Client side: renders \p Payload so it survives mux framing as a bare
/// (current-stream) line — a payload starting with '@' gets the '@'
/// doubled, everything else is returned untouched.
std::string escapeMuxPayload(std::string_view Payload);

/// Server side: undoes escapeMuxPayload on a bare line (strips one '@'
/// from a leading "@@"). The inverse only matters for escaped lines;
/// ordinary lines pass through.
std::string_view unescapeMuxPayload(std::string_view Line);

/// Renders one explicitly-routed frame: `@<stream> <payload>`.
std::string muxFrame(std::string_view Stream, std::string_view Payload);

} // namespace server
} // namespace awdit

#endif // AWDIT_SERVER_PROTOCOL_H
