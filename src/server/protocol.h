//===- server/protocol.h - Multi-tenant server line protocol -----*- C++ -*-===//
//
// Part of the AWDIT reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The line protocol of `awdit serve`: a strict superset of the native
/// stream format (io/stream_parser.h). Every line a client sends is either
/// a *session-control verb* (first token is an upper-case keyword) or a
/// *stream line* forwarded verbatim to the session's format parser — the
/// native directives (`b`/`r`/`w`/`c`/`a`/`t`), Plume CSV rows, or DBCop
/// blocks, chosen by the HELLO `format=` option.
///
/// Control verbs:
///
///   HELLO <stream-id> <rc|ra|cc> [k=v ...]   open/attach/resume a session
///       options: interval=N window=N window-edges=N window-age=T
///                force-abort=T witnesses=N format=native|plume|dbcop
///   STATS                                    one-line JSON session stats
///   DETACH                                   detach; the session stays live
///   END                                      stream complete: finalize,
///                                            report, remove the session
///   SHUTDOWN                                 drain the whole server
///
/// Server replies (always one line):
///
///   OK <stream-id> new|resumed|attached offset=<bytes> line=<n>
///   OK detached <stream-id>
///   OK shutting-down
///   STATS {json}
///   VIOLATION {json}            pushed asynchronously while checking
///   FINAL {json}                the end-of-stream summary (after END, and
///                               as a courtesy snapshot during drain)
///   BYE                         the server is closing this connection
///   DRAINING <stream-id> offset=<bytes>   sent at SIGTERM drain; the
///                               session was checkpointed at this offset
///   ERR <message>
///
/// Stream ids are client-chosen strings (no whitespace); they name the
/// session's checkpoint file (checker/checkpoint.h sanitizer) and its
/// JSON-lines sink, and tag every pushed violation.
///
//===----------------------------------------------------------------------===//

#ifndef AWDIT_SERVER_PROTOCOL_H
#define AWDIT_SERVER_PROTOCOL_H

#include "checker/monitor.h"

#include <map>
#include <string>
#include <string_view>

namespace awdit {
namespace server {

/// The session-control verbs. None means "not a control line": forward the
/// line to the session's stream parser.
enum class Verb : uint8_t {
  None,
  Hello,
  Stats,
  Detach,
  End,
  Shutdown,
};

/// Classifies one line (no trailing newline). Only exact upper-case
/// keywords in the first token are verbs, so the stream formats (all of
/// which use lower-case directives, digits, or `R`/`W`/`sessions`/`txn`
/// tokens) pass through untouched.
Verb classifyLine(std::string_view Line);

/// A parsed HELLO line.
struct HelloRequest {
  std::string Stream;
  IsolationLevel Level = IsolationLevel::CausalConsistency;
  std::string Format = "native";
  /// Fully resolved options (defaults applied where not given).
  MonitorOptions Options;
  /// The k=v options the client gave explicitly, as typed. Attach/resume
  /// compatibility only checks these: omitted options defer to the
  /// session's (or the checkpoint's) existing configuration.
  std::map<std::string, std::string> Given;
};

/// Parses a HELLO line. Returns false with \p Err set on a malformed line.
bool parseHello(std::string_view Line, HelloRequest &Req, std::string *Err);

/// The value of option \p Key ("format", "interval", "window", ...) in
/// \p Format + \p Options, rendered the way a client would type it — the
/// compatibility checks compare against this.
std::string optionValue(const std::string &Format,
                        const MonitorOptions &Options,
                        const std::string &Key);

/// Checks every explicitly-given HELLO option against an existing
/// configuration (a live session's, or a checkpoint's). Returns false with
/// \p Err naming the first conflicting option.
bool checkCompatible(const HelloRequest &Req, const std::string &Format,
                     const MonitorOptions &Options, std::string *Err);

} // namespace server
} // namespace awdit

#endif // AWDIT_SERVER_PROTOCOL_H
