//===- server/session_registry.cpp - Per-stream monitor sessions -----------===//

#include "server/session_registry.h"

#include "io/token_util.h"
#include "obs/trace.h"
#include "support/serialize.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <filesystem>

using namespace awdit;
using namespace awdit::server;

uint64_t awdit::server::approxWindowBytes(const MonitorStats &S) {
  // Per-object charges are deliberately round: a live transaction holds
  // its op vector and graph node (~192B), an edge is two indices plus
  // adjacency slack (~48B for inferred, ~32B once saturated into the
  // graph), an unresolved read parks a pending witness (~64B). The quota
  // is a bound on growth, not an allocator audit — what matters is that
  // the estimate is monotone in the window content and identical across
  // runs.
  return S.LiveTxns * 192 + S.InferredEdges * 48 + S.GraphEdges * 32 +
         S.UnresolvedReads * 64;
}

//===----------------------------------------------------------------------===//
// StreamSession
//===----------------------------------------------------------------------===//

StreamSession::StreamSession(std::string Name, std::string Format,
                             MonitorOptions Options, const SessionEnv &Env)
    : Name(std::move(Name)), Format(std::move(Format)),
      Options(std::move(Options)), Env(Env),
      M(this->Options, &ViolationsOut),
      Decode(lineDecoderFor(this->Format)),
      Machine(makeStreamMachine(this->Format, M)) {
  touch();
}

void StreamSession::openSink(bool Fresh) {
  if (Env.SinkDir.empty())
    return;
  std::error_code Ec;
  std::filesystem::create_directories(Env.SinkDir, Ec);
  std::string Stem = Env.SinkDir + "/" + sanitizeStreamName(Name);
  if (Fresh) {
    // A reused stream id starts a new record; drop the previous run's
    // summary too so a half-read directory can't pair old and new.
    std::remove((Stem + ".summary.json").c_str());
  }
  SinkFile = std::make_unique<std::ofstream>(
      Stem + ".jsonl", Fresh ? std::ios::trunc : std::ios::app);
}

void StreamSession::Sink::onViolation(const Violation &V,
                                      const std::string &Description) {
  // The durable per-stream record: byte-identical to the lines a
  // standalone `awdit monitor --json` prints for the same stream (no
  // stream tag — the file name is the stream).
  if (S.SinkFile && S.SinkFile->is_open() && !SuppressFile) {
    *S.SinkFile << violationToJson(V, &Description) << "\n";
    S.SinkFile->flush();
  }
  // The push channel: tagged with the stream id so a client multiplexing
  // many sessions can demux.
  S.sendToClient("VIOLATION " + violationToJson(V, &Description, &S.Name));
}

void StreamSession::touch() {
  LastActivitySec.store(steadyNowSec(), std::memory_order_relaxed);
}

StatsSnapshot StreamSession::countersSinceCreation() const {
  return counters().minus(Base);
}

StatsSnapshot StreamSession::counters() const {
  StatsSnapshot Snap;
  Snap.Txns = CTxns.load(std::memory_order_relaxed);
  Snap.Committed = CCommitted.load(std::memory_order_relaxed);
  Snap.Ops = COps.load(std::memory_order_relaxed);
  Snap.LiveTxns = CLive.load(std::memory_order_relaxed);
  Snap.Violations = CViolations.load(std::memory_order_relaxed);
  Snap.Flushes = CFlushes.load(std::memory_order_relaxed);
  Snap.EvictedTxns = CEvicted.load(std::memory_order_relaxed);
  Snap.ForcedAborts = CForced.load(std::memory_order_relaxed);
  Snap.FlushMicros = CFlushMicros.load(std::memory_order_relaxed);
  return Snap;
}

void StreamSession::publishCounters() {
  // While upgraded the pipeline's applier thread owns the Monitor; the
  // mirror is published from its flush barriers (hotFlushPoint) instead.
  if (CountersFrozen || Sharded)
    return;
  const MonitorStats &S = M.stats();
  CTxns.store(S.IngestedTxns, std::memory_order_relaxed);
  CCommitted.store(S.CommittedTxns, std::memory_order_relaxed);
  COps.store(S.IngestedOps, std::memory_order_relaxed);
  CLive.store(S.LiveTxns, std::memory_order_relaxed);
  CViolations.store(S.ReportedViolations, std::memory_order_relaxed);
  CFlushes.store(S.Flushes, std::memory_order_relaxed);
  CEvicted.store(S.EvictedTxns, std::memory_order_relaxed);
  CForced.store(S.ForcedAborts, std::memory_order_relaxed);
  CFlushMicros.store(S.FlushMicros, std::memory_order_relaxed);
  const uint64_t *Ph = M.flushPhaseMicros();
  for (unsigned I = 0; I < obs::NumFlushPhases; ++I)
    CPhaseMicros[I].store(Ph[I], std::memory_order_relaxed);
  WindowBytesApprox.store(approxWindowBytes(S), std::memory_order_relaxed);
  OffsetAtomic.store(Offset, std::memory_order_release);
  LineNoAtomic.store(LineNo, std::memory_order_release);
}

void StreamSession::enforceWindowQuota() {
  uint64_t Quota = WindowQuotaBytes.load(std::memory_order_relaxed);
  if (!Quota || PhaseLocal != Phase::Active)
    return;
  uint64_t Approx = WindowBytesApprox.load(std::memory_order_relaxed);
  if (Approx <= Quota)
    return;
  // Over quota: wedge this stream (further data is dropped, exactly like
  // a parse error) without touching any other tenant. Quiesce first so
  // the machine state is back in the pump for the detach checkpoint.
  quiesceHot();
  PhaseLocal = Phase::Failed;
  PhaseAtomic.store(Phase::Failed, std::memory_order_release);
  QuotaTripsAtomic.fetch_add(1, std::memory_order_relaxed);
  sendToClient("ERR quota " + Name + " window-bytes: ~" +
               std::to_string(Approx) +
               " bytes of window state exceeds quota " +
               std::to_string(Quota) +
               " (raise window-bytes= or tighten window=/window-age=)");
}

void StreamSession::enqueue(Item I, ThreadPool &P) {
  touch();
  if (I.K == Item::Kind::Data)
    InboxBytes.fetch_add(I.Bytes, std::memory_order_relaxed);
  bool Start = false;
  {
    std::lock_guard<std::mutex> L(InboxMu);
    Inbox.push_back(std::move(I));
    if (!Running) {
      Running = true;
      Start = true;
    }
  }
  if (Start)
    P.submit([Self = shared_from_this()] { Self->pump(); });
}

void StreamSession::attachWriter(std::shared_ptr<ResponseWriter> W) {
  std::lock_guard<std::mutex> L(AttachMu);
  Writer = std::move(W);
}

void StreamSession::detachWriter() {
  std::lock_guard<std::mutex> L(AttachMu);
  Writer.reset();
}

void StreamSession::sendToClient(const std::string &Line) {
  std::shared_ptr<ResponseWriter> W;
  {
    std::lock_guard<std::mutex> L(AttachMu);
    W = Writer;
  }
  if (W)
    W->sendLine(Line);
}

std::string StreamSession::taggedJson(const char *Verb,
                                      const std::string &Json) const {
  // Splice the stream id in as the first field of the object.
  std::string Out = Verb;
  Out += " {\"stream\":\"";
  appendJsonEscaped(Out, Name);
  Out += "\",";
  Out += std::string_view(Json).substr(1);
  return Out;
}

void StreamSession::pump() {
  bool Died = false;
  for (;;) {
    Item I;
    {
      std::lock_guard<std::mutex> L(InboxMu);
      if (Inbox.empty()) {
        // Publish the final mirror *before* releasing ownership: once
        // Running is false a successor pump may start on another thread,
        // and it must never overlap these reads of the monitor state.
        publishCounters();
        Running = false;
        break;
      }
      I = std::move(Inbox.front());
      Inbox.pop_front();
    }
    Phase Before = PhaseLocal;
    {
      AWDIT_SPAN("server.pump");
      obs::ScopedLatency Lat(obs::metrics().ServerPump);
      processItem(I);
    }
    if (Before != Phase::Dead && PhaseLocal == Phase::Dead)
      Died = true;
    touch();
  }
  if (Died && OnDead)
    OnDead(*this);
}

void StreamSession::applyDataLine(std::string_view Raw) {
  if (PhaseLocal != Phase::Active)
    return; // wedged or closed: drop quietly
  ++LineNo;
  std::string_view Line = Raw;
  size_t RawLen = Raw.size() + 1; // the connection stripped the '\n'
  if (!Line.empty() && Line.back() == '\r')
    Line.remove_suffix(1);
  LineEvent E = Decode(Line);
  std::string Err;
  if (!Machine->apply(E, &Err)) {
    PhaseLocal = Phase::Failed;
    PhaseAtomic.store(Phase::Failed, std::memory_order_release);
    sendToClient("ERR " + Name + " line " + std::to_string(LineNo) + ": " +
                 Err);
    return;
  }
  Offset += RawLen;
}

void StreamSession::applyDataSpan(const PageSpan &S) {
  // Inline fallback for a span reaching a pump that cannot (or need not)
  // upgrade: split it back into lines. The span's bytes are verbatim
  // stream bytes, newlines included.
  std::string_view V = S.view();
  size_t Pos = 0;
  while (Pos < V.size()) {
    size_t Nl = io::scanToNewline(V, Pos);
    applyDataLine(V.substr(Pos, Nl - Pos));
    Pos = Nl + 1;
  }
}

//===----------------------------------------------------------------------===//
// The hot-session upgrade: a pump that sees zero-copy span batches hands
// its stream to a per-session sharded ingest pipeline. Ownership contract:
// while Sharded is set, the pipeline's applier thread owns the Monitor and
// the live machine state; the pump touches neither, and every control verb
// quiesces first. Checkpoints and the counter mirror ride the pipeline's
// flush barriers (hotFlushPoint, applier thread) instead of the pump.
//===----------------------------------------------------------------------===//

void StreamSession::maybeUpgradeHot() {
  if (Sharded || PhaseLocal != Phase::Active || Env.HotThreads < 2)
    return;
  auto Upgraded = std::make_unique<ShardedMonitorIngest>(
      M, Format, Env.HotThreads,
      [this](const IngestFlushPoint &P) { hotFlushPoint(P); });
  if (!Upgraded->valid())
    return; // unreachable (the session's own decoder exists), but cheap
  // Move the live parser state into the pipeline's machine and line the
  // stream cursor up; from here the pump only forwards bytes.
  std::string Blob;
  ByteWriter W(Blob);
  Machine->saveState(W);
  ByteReader R(Blob);
  if (!Upgraded->machine().loadState(R))
    return;
  Upgraded->primeResume(Offset, LineNo);
  Sharded = std::move(Upgraded);
  HotAtomic.store(true, std::memory_order_release);
  HotUpgradesAtomic.fetch_add(1, std::memory_order_relaxed);
}

void StreamSession::quiesceHot() {
  if (!Sharded)
    return;
  // Lossless teardown: connections only ship whole lines, so there is no
  // partial tail to lose and abortStream() applies everything fed.
  Sharded->abortStream();
  Offset = Sharded->streamOffset();
  LineNo = Sharded->lineNumber();
  if (!Sharded->errorText().empty() && PhaseLocal == Phase::Active) {
    PhaseLocal = Phase::Failed;
    PhaseAtomic.store(Phase::Failed, std::memory_order_release);
    sendToClient("ERR " + Name + " " + Sharded->errorText());
  }
  // Move the machine state back so the pump's own machine is live again.
  std::string Blob;
  ByteWriter W(Blob);
  Sharded->machine().saveState(W);
  ByteReader R(Blob);
  Machine->loadState(R);
  Sharded.reset(); // joins threads, detaches the speculation pool
  HotAtomic.store(false, std::memory_order_release);
  // The flush-barrier mirror may trail the true cursor; re-publish now so
  // a detach-then-re-HELLO sees the exact resume offset.
  publishCounters();
}

void StreamSession::hotFlushPoint(const IngestFlushPoint &P) {
  // Applier thread. A flush barrier is a consistent cut: monitor, machine,
  // and stream cursor agree on "everything through this line" — the same
  // guarantee the pump-side checkpoint path has after a Data item.
  if (!Env.CheckpointDir.empty() &&
      P.Flushes - LastCkptFlushes >= Env.CheckpointIntervalFlushes)
    writeCheckpointNow(P.Machine, P.StreamOffset, P.LineNo, P.Flushes);
  if (CountersFrozen)
    return;
  const MonitorStats &S = M.stats();
  CTxns.store(S.IngestedTxns, std::memory_order_relaxed);
  CCommitted.store(S.CommittedTxns, std::memory_order_relaxed);
  COps.store(S.IngestedOps, std::memory_order_relaxed);
  CLive.store(S.LiveTxns, std::memory_order_relaxed);
  CViolations.store(S.ReportedViolations, std::memory_order_relaxed);
  CFlushes.store(S.Flushes, std::memory_order_relaxed);
  CEvicted.store(S.EvictedTxns, std::memory_order_relaxed);
  CForced.store(S.ForcedAborts, std::memory_order_relaxed);
  CFlushMicros.store(S.FlushMicros, std::memory_order_relaxed);
  const uint64_t *Ph = M.flushPhaseMicros();
  for (unsigned I = 0; I < obs::NumFlushPhases; ++I)
    CPhaseMicros[I].store(Ph[I], std::memory_order_relaxed);
  WindowBytesApprox.store(approxWindowBytes(S), std::memory_order_relaxed);
  OffsetAtomic.store(P.StreamOffset, std::memory_order_release);
  LineNoAtomic.store(P.LineNo, std::memory_order_release);
}

void StreamSession::maybeCheckpoint(bool Force) {
  if (Env.CheckpointDir.empty() || PhaseLocal != Phase::Active)
    return;
  uint64_t Flushes = M.flushCount();
  if (!Force && Flushes - LastCkptFlushes < Env.CheckpointIntervalFlushes)
    return;
  writeCheckpointNow(*Machine, Offset, LineNo, Flushes);
}

void StreamSession::writeCheckpointNow(const StreamMachine &Mach,
                                       uint64_t AtOffset, uint64_t AtLineNo,
                                       uint64_t Flushes) {
  CheckpointMeta Meta;
  Meta.Format = Format;
  Meta.Options = Options;
  Meta.StreamOffset = AtOffset;
  Meta.LineNo = AtLineNo;
  Meta.CommittedTxns = Mach.committedTxns();
  Meta.Flushes = Flushes;
  std::string MachineBlob;
  ByteWriter W(MachineBlob);
  Mach.saveState(W);
  std::string Err;
  if (Env.StoreCheckpoints) {
    if (!StoreCkpt) {
      StoreCkpt = std::make_unique<StoreCheckpointer>();
      if (!StoreCkpt->open(checkpointStoreDirFor(Env.CheckpointDir, Name),
                           &Err)) {
        std::fprintf(stderr,
                     "warning: stream %s: checkpoint store not opened: "
                     "%s\n",
                     Name.c_str(), Err.c_str());
        StoreCkpt.reset();
        return;
      }
    }
    if (!StoreCkpt->write(M, MachineBlob, Meta, &Err)) {
      std::fprintf(stderr,
                   "warning: stream %s: checkpoint not written: %s\n",
                   Name.c_str(), Err.c_str());
      return;
    }
  } else if (!writeCheckpointFileAt(
                 checkpointFilePathFor(Env.CheckpointDir, Name),
                 encodeCheckpoint(M, MachineBlob, Meta), &Err)) {
    std::fprintf(stderr, "warning: stream %s: checkpoint not written: %s\n",
                 Name.c_str(), Err.c_str());
    return;
  }
  LastCkptFlushes = Flushes;
  ++Checkpoints;
  CheckpointsAtomic.store(Checkpoints, std::memory_order_relaxed);
}

void StreamSession::finalizeSession(bool ToSinkFile, const char *ReplyVerb) {
  ViolationsOut.SuppressFile = !ToSinkFile;
  CheckReport Report = M.finalize();
  const MonitorStats &S = M.stats();
  std::string Summary = monitorSummaryJson(Report, S, Options.Level);
  sendToClient(taggedJson(ReplyVerb, Summary));
  if (ToSinkFile && !Env.SinkDir.empty()) {
    // The end-of-stream summary, as its own (overwritten) file: the sink
    // .jsonl plus this line equal a standalone `awdit monitor --json` run.
    std::ofstream Out(Env.SinkDir + "/" + sanitizeStreamName(Name) +
                      ".summary.json");
    Out << Summary << "\n";
  }
}

void StreamSession::processItem(const Item &I) {
  switch (I.K) {
  case Item::Kind::Data: {
    // The first span batch is the upgrade signal: the connection's rate
    // tracker decided this stream is hot.
    if (!I.Spans.empty())
      maybeUpgradeHot();
    if (Sharded && PhaseLocal == Phase::Active) {
      bool Ok = true;
      for (const std::string &Line : I.Lines) {
        // Lines queued before the upgrade (newline stripped): re-frame.
        Ok = Sharded->feed(Line) && Sharded->feed(std::string_view("\n", 1));
        if (!Ok)
          break;
      }
      for (const PageSpan &S : I.Spans) {
        if (!Ok)
          break;
        Ok = Sharded->feedSpan(S);
      }
      InboxBytes.fetch_sub(I.Bytes, std::memory_order_relaxed);
      if (!Ok)
        quiesceHot(); // surfaces the pipeline error, fails the phase
      // Checkpoints and the counter mirror ride the flush barriers; the
      // quota check reads that mirror (it may trail by one barrier).
      enforceWindowQuota();
      return;
    }
    for (const std::string &Line : I.Lines)
      applyDataLine(Line);
    for (const PageSpan &S : I.Spans)
      applyDataSpan(S);
    InboxBytes.fetch_sub(I.Bytes, std::memory_order_relaxed);
    maybeCheckpoint(/*Force=*/false);
    publishCounters();
    enforceWindowQuota();
    return;
  }

  case Item::Kind::Stats: {
    if (PhaseLocal == Phase::Dead)
      return;
    // While upgraded the Monitor belongs to the applier thread: serve the
    // last flush barrier's mirror instead of racing it.
    StatsSnapshot Snap = Sharded ? counters() : StatsSnapshot::of(M.stats());
    std::string Json = Snap.toJson();
    if (I.Deep) {
      // Splice the deep section in before the closing brace. The flush
      // histogram is lock-free and safe to snapshot even while the hot
      // pipeline's applier records into it; the phase breakdown reads the
      // atomic mirror (may trail the live monitor by one flush barrier).
      Json.pop_back();
      Json += ",\"flush_latency\":";
      Json += M.flushLatency().snapshot().percentilesJson();
      Json += ",\"flush_phase_micros\":{";
      for (unsigned P = 0; P < obs::NumFlushPhases; ++P) {
        if (P)
          Json += ',';
        Json += '"';
        Json += obs::flushPhaseName(static_cast<obs::FlushPhase>(P));
        Json += "\":";
        Json += std::to_string(flushPhaseMicros(P));
      }
      Json += "}}";
    }
    sendToClient(taggedJson("STATS", Json));
    return;
  }

  case Item::Kind::Detach: {
    if (PhaseLocal == Phase::Dead)
      return;
    quiesceHot();
    // Capture the latest lines so an idle-evicted or killed server can
    // still resume this tenant from its detach point.
    maybeCheckpoint(/*Force=*/true);
    // Clear the attachment *before* replying: the moment the client reads
    // the acknowledgement it may re-HELLO, and that must not race the
    // registry's attached() check.
    std::shared_ptr<ResponseWriter> W;
    {
      std::lock_guard<std::mutex> L(AttachMu);
      W = std::move(Writer);
      Writer.reset();
    }
    if (W && !I.Quiet)
      W->sendLine("OK detached " + Name);
    return;
  }

  case Item::Kind::End: {
    if (PhaseLocal == Phase::Dead)
      return;
    quiesceHot();
    if (PhaseLocal == Phase::Active) {
      std::string Err;
      if (!Machine->atEnd(&Err)) {
        PhaseLocal = Phase::Failed;
        PhaseAtomic.store(Phase::Failed, std::memory_order_release);
        sendToClient("ERR " + Name + ": " + Err);
      }
    }
    // Finalize and report even for a wedged stream: what was ingested was
    // still checked (the standalone CLI does the same on a parse error).
    finalizeSession(/*ToSinkFile=*/true, "FINAL");
    if (!Env.CheckpointDir.empty()) {
      // The stream is complete; its checkpoint would only resurrect it.
      // Both layouts go: a server switched between them may have either.
      std::remove(
          checkpointFilePathFor(Env.CheckpointDir, Name).c_str());
      StoreCkpt.reset(); // unmap before unlinking
      std::string StoreDir = checkpointStoreDirFor(Env.CheckpointDir, Name);
      if (StoreCheckpointer::isStoreDir(StoreDir)) {
        std::string Err;
        if (!removeStoreDir(StoreDir, &Err))
          std::fprintf(stderr, "warning: stream %s: %s\n", Name.c_str(),
                       Err.c_str());
      }
    }
    sendToClient("BYE");
    detachWriter();
    RetireReason = Retire::Ended;
    PhaseLocal = Phase::Dead;
    // Mirror the finalize-pass counters *before* the Dead store: the
    // registry folds a session's atomics into its retired totals the
    // moment it observes the phase, and must not fold a stale view.
    publishCounters();
    PhaseAtomic.store(Phase::Dead, std::memory_order_release);
    return;
  }

  case Item::Kind::Evict:
    if (PhaseLocal == Phase::Dead)
      return;
    quiesceHot();
    maybeCheckpoint(/*Force=*/true);
    RetireReason = Retire::Evicted;
    PhaseLocal = Phase::Dead;
    publishCounters();
    PhaseAtomic.store(Phase::Dead, std::memory_order_release);
    return;

  case Item::Kind::Drain:
    if (PhaseLocal == Phase::Dead)
      return;
    quiesceHot();
    if (PhaseLocal == Phase::Active) {
      // Checkpoint first: the snapshot is the resumable state. The
      // finalize after it is a courtesy report for the attached client —
      // its extra end-of-stream violations stay out of the durable JSONL
      // sink, which a resumed session must continue exactly-once.
      maybeCheckpoint(/*Force=*/true);
      sendToClient("DRAINING " + Name +
                   " offset=" + std::to_string(Offset));
    }
    // Freeze the metrics mirror at the checkpointed state: the courtesy
    // finalize's extra violations are in neither the durable record nor
    // the resumed run's baseline, so they must not be folded either.
    publishCounters();
    CountersFrozen = true;
    finalizeSession(/*ToSinkFile=*/false, "FINAL");
    sendToClient("BYE");
    detachWriter();
    RetireReason = Retire::Drained;
    PhaseLocal = Phase::Dead;
    PhaseAtomic.store(Phase::Dead, std::memory_order_release);
    return;
  }
}

//===----------------------------------------------------------------------===//
// SessionRegistry
//===----------------------------------------------------------------------===//

namespace {

/// Truncates a resumed stream's JSONL sink to the first \p Lines lines —
/// the violations the restored checkpoint knows it delivered. Anything
/// after that was appended between the checkpoint and a non-graceful
/// death, and the resumed session will re-detect and re-append it; without
/// the truncation those lines would duplicate. A file already at (or
/// below) the expected length is left untouched.
void reconcileSinkFile(const std::string &Path, uint64_t Lines) {
  std::ifstream In(Path, std::ios::binary);
  if (!In)
    return;
  // Every kept line was written by the sink with a trailing '\n', so the
  // byte offset of line N is just the running sum — no buffering of the
  // (possibly huge) prefix needed.
  std::string Line;
  uint64_t N = 0;
  uint64_t KeepBytes = 0;
  while (N < Lines && std::getline(In, Line)) {
    KeepBytes += Line.size() + 1;
    ++N;
  }
  bool Extra = N == Lines && In.peek() != std::ifstream::traits_type::eof();
  In.close();
  if (!Extra)
    return;
  std::error_code Ec;
  std::filesystem::resize_file(Path, KeepBytes, Ec);
  if (Ec)
    std::fprintf(stderr, "warning: cannot reconcile sink '%s': %s\n",
                 Path.c_str(), Ec.message().c_str());
}

} // namespace

SessionRegistry::HelloResult
SessionRegistry::hello(const HelloRequest &Req,
                       std::shared_ptr<ResponseWriter> Writer) {
  HelloResult R;
  std::shared_ptr<StreamSession> S;
  {
    std::lock_guard<std::mutex> L(Mu);
    auto It = Sessions.find(Req.Stream);
    if (It != Sessions.end()) {
      if (It->second->phase() == StreamSession::Phase::Dead) {
        fold(*It->second);
        Sessions.erase(It);
      } else {
        S = It->second;
      }
    }
  }

  if (S) {
    if (S->retiring()) {
      R.Err = "stream '" + Req.Stream + "' is being evicted; retry";
      return R;
    }
    if (S->attached()) {
      R.Err = "stream '" + Req.Stream + "' already has an attached client";
      return R;
    }
    if (!checkCompatible(Req, S->format(), S->options(), &R.Err))
      return R;
    applyQuotas(*S, Req);
    S->attachWriter(std::move(Writer));
    S->touch();
    R.Session = S;
    R.Status = "attached";
    R.Offset = S->streamOffset();
    R.LineNo = S->lineNo();
    return R;
  }

  // No live session. Only the event-loop thread creates sessions, so no
  // other creator can race this unlocked section; resume from the
  // per-stream checkpoint when one exists — a segment store in the
  // StoreCheckpoints layout, else a v1 .ckpt file (so a server switched
  // between layouts still resumes every tenant).
  std::string Blob;
  bool HaveCheckpoint = false;
  std::string CkptPath;
  std::unique_ptr<StoreCheckpointer> ResumeStore;
  if (!Env.CheckpointDir.empty()) {
    if (Env.StoreCheckpoints) {
      std::string StoreDir =
          checkpointStoreDirFor(Env.CheckpointDir, Req.Stream);
      if (StoreCheckpointer::isStoreDir(StoreDir)) {
        ResumeStore = std::make_unique<StoreCheckpointer>();
        std::string Err;
        if (!ResumeStore->open(StoreDir, &Err)) {
          R.Err = "checkpoint store " + StoreDir + ": " + Err;
          return R;
        }
        if (ResumeStore->hasCheckpoint()) {
          HaveCheckpoint = true;
          CkptPath = StoreDir;
        } else {
          // A store directory with no committed root (a crash before the
          // first checkpoint): nothing to resume from.
          ResumeStore.reset();
        }
      }
    }
    if (!HaveCheckpoint) {
      CkptPath = checkpointFilePathFor(Env.CheckpointDir, Req.Stream);
      std::string IgnoredErr;
      HaveCheckpoint = readCheckpointFileAt(CkptPath, Blob, &IgnoredErr);
    }
  }

  if (HaveCheckpoint) {
    CheckpointMeta Meta;
    std::string Err;
    bool MetaOk = ResumeStore ? ResumeStore->readMeta(Meta, &Err)
                              : decodeCheckpointMeta(Blob, Meta, &Err);
    if (!MetaOk) {
      R.Err = "checkpoint " + CkptPath + ": " + Err;
      return R;
    }
    if (!checkCompatible(Req, Meta.Format, Meta.Options, &R.Err))
      return R;
    S = std::make_shared<StreamSession>(Req.Stream, Meta.Format,
                                        Meta.Options, Env);
    // Before any dereference: a checkpoint with an unknown format name
    // (foreign writer, hand-edited but checksum-valid) must be an ERR,
    // not a null-machine crash.
    if (!S->Decode || !S->Machine) {
      R.Err = "checkpoint " + CkptPath + ": unknown format '" +
              Meta.Format + "'";
      return R;
    }
    std::string MachineState;
    bool Restored =
        ResumeStore
            ? ResumeStore->restore(S->M, MachineState, &Err)
            : restoreCheckpoint(Blob, S->M, MachineState, &Err);
    if (!Restored) {
      R.Err = "checkpoint " + CkptPath + ": " + Err;
      return R;
    }
    ByteReader MR(MachineState);
    if (!S->Machine->loadState(MR)) {
      R.Err = "checkpoint " + CkptPath + ": corrupted parser state";
      return R;
    }
    // Keep committing into the store just restored from.
    S->StoreCkpt = std::move(ResumeStore);
    S->Offset = Meta.StreamOffset;
    S->LineNo = Meta.LineNo;
    S->LastCkptFlushes = Meta.Flushes;
    R.Status = "resumed";
  } else {
    S = std::make_shared<StreamSession>(Req.Stream, Req.Format, Req.Options,
                                        Env);
    R.Status = "new";
    if (!S->Decode || !S->Machine) {
      R.Err = "unknown format '" + Req.Format + "'";
      return R;
    }
  }

  S->OnDead = [this](StreamSession &Dead) { onSessionDead(Dead); };
  applyQuotas(*S, Req);
  S->publishCounters();
  if (R.Status == "resumed") {
    // The aggregate totals count this process's work only; the restored
    // cumulative counters become the session's base (also cancels the
    // fold of an idle-evicted tenant that comes back in-process).
    S->Base = S->counters();
    if (!Env.SinkDir.empty())
      reconcileSinkFile(Env.SinkDir + "/" + sanitizeStreamName(Req.Stream) +
                            ".jsonl",
                        S->M.stats().ReportedViolations);
  }
  S->openSink(/*Fresh=*/R.Status != "resumed");
  S->attachWriter(std::move(Writer));
  S->touch();
  {
    std::lock_guard<std::mutex> L(Mu);
    ++Created;
    if (R.Status == "resumed")
      ++Resumed;
    Sessions[Req.Stream] = S;
  }
  R.Session = S;
  R.Offset = S->streamOffset();
  R.LineNo = S->lineNo();
  return R;
}

void SessionRegistry::applyQuotas(StreamSession &S,
                                  const HelloRequest &Req) const {
  S.InboxQuotaBytes = Req.InboxBytes
                          ? std::min<size_t>(Req.InboxBytes, Env.MaxInboxBytes)
                          : Env.MaxInboxBytes;
  uint64_t Window = Req.WindowBytes ? Req.WindowBytes : Env.MaxWindowBytes;
  if (Env.MaxWindowBytes)
    Window = Window ? std::min(Window, Env.MaxWindowBytes)
                    : Env.MaxWindowBytes;
  S.WindowQuotaBytes.store(Window, std::memory_order_relaxed);
}

void SessionRegistry::fold(StreamSession &S) {
  StatsSnapshot Last = S.countersSinceCreation();
  // LiveTxns is a gauge: a retired session holds nothing live, and add()
  // sums the field (correct across live sessions, wrong in a permanent
  // accumulator).
  Last.LiveTxns = 0;
  Retired.add(Last);
  RetiredCheckpoints += S.checkpointsWritten();
  RetiredHotUpgrades += S.hotUpgrades();
  RetiredQuotaTrips += S.quotaTrips();
  switch (S.RetireReason) {
  case StreamSession::Retire::Ended:
    ++Ended;
    break;
  case StreamSession::Retire::Evicted:
    ++Evicted;
    break;
  case StreamSession::Retire::Drained:
  case StreamSession::Retire::None:
    break;
  }
}

size_t SessionRegistry::sweep(uint64_t NowSec, uint64_t IdleTimeoutSec) {
  std::vector<std::shared_ptr<StreamSession>> ToEvict;
  {
    std::lock_guard<std::mutex> L(Mu);
    for (auto It = Sessions.begin(); It != Sessions.end();) {
      StreamSession &S = *It->second;
      if (S.phase() == StreamSession::Phase::Dead) {
        fold(S);
        It = Sessions.erase(It);
        continue;
      }
      if (IdleTimeoutSec && !S.attached() && !S.retiring() &&
          NowSec >= S.lastActivitySec() &&
          NowSec - S.lastActivitySec() >= IdleTimeoutSec)
        ToEvict.push_back(It->second);
      ++It;
    }
  }
  for (const std::shared_ptr<StreamSession> &S : ToEvict) {
    S->markRetiring();
    StreamSession::Item I;
    I.K = StreamSession::Item::Kind::Evict;
    S->enqueue(std::move(I), Pool);
  }
  return ToEvict.size();
}

void SessionRegistry::drainAll() {
  std::vector<std::shared_ptr<StreamSession>> All = sessions();
  for (const std::shared_ptr<StreamSession> &S : All) {
    S->markRetiring();
    StreamSession::Item I;
    I.K = StreamSession::Item::Kind::Drain;
    S->enqueue(std::move(I), Pool);
  }
  std::unique_lock<std::mutex> L(Mu);
  DeadCv.wait_for(L, std::chrono::seconds(60), [&] {
    for (const auto &[Name, S] : Sessions)
      if (S->phase() != StreamSession::Phase::Dead)
        return false;
    return true;
  });
  for (auto &[Name, S] : Sessions)
    fold(*S);
  Sessions.clear();
}

void SessionRegistry::onSessionDead(StreamSession &) {
  // Counters are folded when the registry erases the entry (sweep, drain,
  // or a replacing HELLO); this only wakes a drain waiting for the pumps.
  // The lock pairs the notify with drainAll's predicate check — without
  // it, a Dead store landing between the check and the block would be a
  // lost wakeup and drain would sleep out its full timeout.
  std::lock_guard<std::mutex> L(Mu);
  DeadCv.notify_all();
}

SessionRegistry::Totals SessionRegistry::totals() const {
  Totals T;
  std::lock_guard<std::mutex> L(Mu);
  T.SessionsCreated = Created;
  T.SessionsResumed = Resumed;
  T.SessionsEvicted = Evicted;
  T.SessionsEnded = Ended;
  T.Counters = Retired;
  T.Checkpoints = RetiredCheckpoints;
  T.HotUpgrades = RetiredHotUpgrades;
  T.QuotaTrips = RetiredQuotaTrips;
  for (const auto &[Name, S] : Sessions) {
    if (S->phase() != StreamSession::Phase::Dead)
      ++T.SessionsLive;
    T.Counters.add(S->countersSinceCreation());
    T.Checkpoints += S->checkpointsWritten();
    T.HotUpgrades += S->hotUpgrades();
    T.QuotaTrips += S->quotaTrips();
  }
  return T;
}

std::vector<std::shared_ptr<StreamSession>>
SessionRegistry::sessions() const {
  std::vector<std::shared_ptr<StreamSession>> Out;
  std::lock_guard<std::mutex> L(Mu);
  Out.reserve(Sessions.size());
  for (const auto &[Name, S] : Sessions)
    Out.push_back(S);
  return Out;
}
