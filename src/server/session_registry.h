//===- server/session_registry.h - Per-stream monitor sessions ---*- C++ -*-===//
//
// Part of the AWDIT reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The tenant layer of `awdit serve`: a SessionRegistry owns one
/// StreamSession — Monitor + format StreamMachine + sinks + counters — per
/// named stream. Sessions are created lazily on the first HELLO, restored
/// from their per-stream checkpoint file (checker/checkpoint.h envelope)
/// when one exists, detached when their client disconnects, evicted (with
/// a final checkpoint) after an idle timeout, and drained — checkpoint,
/// then finalize — when the server shuts down.
///
/// Concurrency model (the "pinned actor" design the server's event loop
/// relies on):
///
///  - the event loop thread is the only *producer*: it appends work items
///    (line batches, control verbs) to a session's inbox and schedules a
///    pump task on the shared thread pool when none is running;
///  - at most one pump task per session runs at a time (the Running flag,
///    set and cleared under the inbox mutex), so the Monitor, the machine,
///    and the sink files are single-writer — exactly the contract the
///    Monitor requires — while different sessions pump in parallel across
///    the pool;
///  - everything the event loop or the /metrics endpoint reads while a
///    pump may be running (counters, phase, activity clock) is mirrored
///    into atomics.
///
//===----------------------------------------------------------------------===//

#ifndef AWDIT_SERVER_SESSION_REGISTRY_H
#define AWDIT_SERVER_SESSION_REGISTRY_H

#include "checker/checkpoint.h"
#include "checker/monitor.h"
#include "checker/stats_snapshot.h"
#include "checker/violation_sink.h"
#include "io/sharded_ingest.h"
#include "io/stream_parser.h"
#include "server/protocol.h"
#include "support/byte_arena.h"
#include "support/thread_pool.h"

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <fstream>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

namespace awdit {
namespace server {

/// The steady clock in whole seconds — the server's one activity/idle
/// timebase (session touch(), the sweep scan, the event loop's
/// housekeeping tick all read this same function).
inline uint64_t steadyNowSec() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::seconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Where a session pushes protocol reply lines for its attached client.
/// Implemented by the server's connection objects; sendLine() must be
/// thread-safe (pumps call it from pool threads, the event loop from its
/// own).
class ResponseWriter {
public:
  virtual ~ResponseWriter() = default;

  /// Writes \p Line plus a newline to the client. Failures (client gone)
  /// are swallowed — the stream's durable record is the JSONL sink, not
  /// the push channel.
  virtual void sendLine(const std::string &Line) = 0;
};

/// Server-level configuration shared by every session.
struct SessionEnv {
  /// Per-stream checkpoint files live here; empty disables persistence.
  std::string CheckpointDir;
  /// Per-stream JSON-lines violation sinks and summaries live here; empty
  /// disables them.
  std::string SinkDir;
  /// Write a checkpoint every this many checking passes (and always at
  /// detach, idle eviction, and drain).
  uint64_t CheckpointIntervalFlushes = 16;
  /// Checkpoint into per-stream copy-on-write segment stores
  /// (`<CheckpointDir>/<stream>.store/`, checker/checkpoint.h
  /// StoreCheckpointer) instead of monolithic `.ckpt` files. Resume still
  /// accepts either layout, preferring the store.
  bool StoreCheckpoints = false;
  /// Extra threads a hot session's pump may spawn when it upgrades to the
  /// sharded ingest pipeline (io/sharded_ingest.h); < 2 disables the
  /// upgrade and every session stays on the inline decoder.
  unsigned HotThreads = 0;
  /// A connection whose data rate crosses this (bytes per steady second)
  /// starts shipping zero-copy page spans, upgrading its session.
  uint64_t HotBytesPerSec = 8ull << 20;
  /// Per-session inbox quota (bytes of enqueued-but-unprocessed data):
  /// both the default and the hard cap a HELLO `inbox-bytes=` request may
  /// not exceed. The event loop stops reading a client whose session is
  /// this far behind.
  size_t MaxInboxBytes = 4 << 20;
  /// Per-tenant window-memory quota (approximate bytes of live monitor
  /// state, see approxWindowBytes()): default and cap for HELLO
  /// `window-bytes=`. 0 = unlimited. A tenant crossing its quota gets a
  /// typed `ERR quota` and the stream wedges (Failed) without disturbing
  /// its neighbors.
  uint64_t MaxWindowBytes = 0;
};

/// A coarse, deterministic estimate of a monitor's live window footprint
/// in bytes — what the per-tenant `window-bytes=` quota is enforced
/// against. Derived from the public counters (live transactions and graph
/// edges), not malloc introspection, so it is stable across platforms and
/// cheap enough for every flush.
uint64_t approxWindowBytes(const MonitorStats &S);

/// One tenant: a named stream with its own Monitor, format machine, and
/// sinks. Created/attached only through SessionRegistry.
class StreamSession : public std::enable_shared_from_this<StreamSession> {
public:
  /// Lifecycle phase (atomic mirror; written by the pump).
  enum class Phase : uint8_t {
    /// Ingesting and checking.
    Active,
    /// A parse or model error wedged the stream; further data is dropped.
    Failed,
    /// Terminal: ENDed, drained, or evicted. The registry sweeps it.
    Dead,
  };

  /// Why a session went Dead (for the registry's metrics fold).
  enum class Retire : uint8_t { None, Ended, Evicted, Drained };

  /// One unit of pump work.
  struct Item {
    enum class Kind : uint8_t { Data, Stats, Detach, End, Evict, Drain };
    Kind K = Kind::Data;
    /// For Stats: the `STATS deep` form — add flush-latency percentiles
    /// and the per-phase breakdown to the reply.
    bool Deep = false;
    /// For Data: raw lines (newline stripped, CR kept; byte accounting
    /// adds the newline back).
    std::vector<std::string> Lines;
    /// For Data from a hot connection: verbatim stream bytes (newlines
    /// included) as refcounted spans of the connection's read pages —
    /// zero-copy from read(2) to the shard workers. The first Spans item a
    /// pump sees upgrades the session to the sharded pipeline.
    std::vector<PageSpan> Spans;
    size_t Bytes = 0;
    /// For Detach: true when the client just vanished (no reply).
    bool Quiet = false;
  };

  StreamSession(std::string Name, std::string Format, MonitorOptions Options,
                const SessionEnv &Env);

  const std::string &name() const { return Name; }
  const std::string &format() const { return Format; }
  const MonitorOptions &options() const { return Options; }

  Phase phase() const { return PhaseAtomic.load(std::memory_order_acquire); }
  bool attached() const {
    std::lock_guard<std::mutex> L(AttachMu);
    return Writer != nullptr;
  }
  /// True once eviction or drain has been scheduled; blocks re-attach.
  bool retiring() const {
    std::lock_guard<std::mutex> L(InboxMu);
    return Retiring;
  }
  void markRetiring() {
    std::lock_guard<std::mutex> L(InboxMu);
    Retiring = true;
  }
  /// Bytes of enqueued-but-unprocessed data; the event loop stops reading
  /// a client whose session is this far behind (backpressure).
  size_t inboxBytes() const {
    return InboxBytes.load(std::memory_order_relaxed);
  }
  /// The session's inbox backpressure threshold (HELLO `inbox-bytes=`,
  /// clamped to SessionEnv::MaxInboxBytes). Event-loop thread only.
  size_t inboxQuota() const { return InboxQuotaBytes; }
  /// Typed `ERR quota` rejections this session has pushed (window-memory
  /// trips); folded into the registry totals.
  uint64_t quotaTrips() const {
    return QuotaTripsAtomic.load(std::memory_order_relaxed);
  }
  /// Monotonic activity clock (steady seconds), for the idle-eviction
  /// scan.
  uint64_t lastActivitySec() const {
    return LastActivitySec.load(std::memory_order_relaxed);
  }
  void touch();

  /// Stream cursor as of session creation/restore plus applied lines —
  /// what a (re)attaching client must seek its input to.
  uint64_t streamOffset() const {
    return OffsetAtomic.load(std::memory_order_acquire);
  }
  uint64_t lineNo() const {
    return LineNoAtomic.load(std::memory_order_acquire);
  }

  /// Point-in-time cumulative counters (relaxed reads of the pump's
  /// mirror) — the per-stream view: includes everything the stream's
  /// checkpoint carried in from before this session object existed.
  StatsSnapshot counters() const;
  /// The work done by *this process* on the stream: counters() minus the
  /// restored checkpoint base. What the registry folds into the aggregate
  /// /metrics totals, so an evict + resume cycle cannot double-count.
  StatsSnapshot countersSinceCreation() const;
  uint64_t checkpointsWritten() const {
    return CheckpointsAtomic.load(std::memory_order_relaxed);
  }
  /// Times this session upgraded its pump to the sharded ingest pipeline
  /// (0 or more; a session downgraded by a control verb can re-upgrade).
  uint64_t hotUpgrades() const {
    return HotUpgradesAtomic.load(std::memory_order_relaxed);
  }
  /// True while the sharded pipeline is driving the stream.
  bool hotUpgraded() const {
    return HotAtomic.load(std::memory_order_acquire);
  }

  /// Cumulative micros the stream's flushes spent in phase \p I (an
  /// obs::FlushPhase index) — the per-stream breakdown /metrics renders.
  /// Mirror semantics like counters(): published at pump idle and at hot
  /// flush barriers.
  uint64_t flushPhaseMicros(unsigned I) const {
    return CPhaseMicros[I].load(std::memory_order_relaxed);
  }

  /// Enqueues \p I and schedules a pump on \p Pool if none is running.
  /// Event-loop thread only.
  void enqueue(Item I, ThreadPool &Pool);

  /// Attaches \p W as the session's client. Event-loop thread only; the
  /// caller (registry) has already checked the session is unattached.
  void attachWriter(std::shared_ptr<ResponseWriter> W);
  /// Clears the attached client without a reply (connection vanished).
  /// Safe from the event loop; the pump re-checks under the same mutex.
  void detachWriter();

private:
  friend class SessionRegistry;

  void pump();
  void processItem(const Item &I);
  void applyDataLine(std::string_view Raw);
  /// Cold-path fallback for a Spans item when the upgrade is unavailable:
  /// splits the span and applies line by line.
  void applyDataSpan(const PageSpan &S);
  /// Upgrades the pump to a per-session sharded ingest pipeline: the
  /// session's machine state moves into the pipeline and subsequent data
  /// feeds it (zero-copy for spans). No-op unless Active, configured
  /// (Env.HotThreads >= 2), and not already upgraded.
  void maybeUpgradeHot();
  /// Tears the sharded pipeline down (lossless: server feeds are always
  /// whole lines) and moves the machine state and stream cursor back into
  /// the pump. Surfaces any pipeline error as the usual ERR + Failed
  /// phase. Must run before any verb that reads the machine or monitor.
  void quiesceHot();
  /// Flush-barrier callback while upgraded; runs on the pipeline's applier
  /// thread, which owns the Monitor at that point. Handles the checkpoint
  /// cadence and the counter mirror — the pump skips both while upgraded.
  void hotFlushPoint(const IngestFlushPoint &P);
  void publishCounters();
  /// Pump-side window-memory quota check (reads the mirror published by
  /// publishCounters()/hotFlushPoint(), so it works in both pump modes):
  /// over quota → quiesce, typed `ERR quota`, Failed phase.
  void enforceWindowQuota();
  void maybeCheckpoint(bool Force);
  /// Writes one checkpoint of \p Machine at the given stream cut (shared
  /// by the pump path and the hot flush hook).
  void writeCheckpointNow(const StreamMachine &Machine, uint64_t AtOffset,
                          uint64_t AtLineNo, uint64_t Flushes);
  void finalizeSession(bool ToSinkFile, const char *ReplyVerb);
  void sendToClient(const std::string &Line);
  std::string taggedJson(const char *Verb, const std::string &Json) const;
  /// Opens the per-stream JSONL sink. A fresh stream truncates (a reused
  /// stream id must not append to a finished run's record); a resumed one
  /// appends after the registry reconciled the file against the restored
  /// checkpoint.
  void openSink(bool Fresh);

  // --- Immutable after construction. ---
  const std::string Name;
  const std::string Format;
  const MonitorOptions Options;
  const SessionEnv Env;

  // --- Pump-thread state (single-writer by the Running flag). ---
  /// Pushes each violation to the JSONL sink file (exactly-once, resumes
  /// append across restarts) and to the attached client.
  class Sink final : public ViolationSink {
  public:
    explicit Sink(StreamSession &S) : S(S) {}
    void onViolation(const Violation &V,
                     const std::string &Description) override;
    /// Set during drain-finalize: the courtesy report still reaches the
    /// client, but the durable JSONL stream stays the exactly-once record
    /// a resumed session continues.
    bool SuppressFile = false;

  private:
    StreamSession &S;
  };

  Sink ViolationsOut{*this};
  Monitor M;
  LineDecoder Decode = nullptr;
  std::unique_ptr<StreamMachine> Machine;
  std::unique_ptr<std::ofstream> SinkFile;
  /// The stream's segment store (StoreCheckpoints layout). Set by the
  /// registry on a store resume, opened lazily by the first checkpoint of
  /// a fresh stream; pump-thread only after hello() publishes the session.
  std::unique_ptr<StoreCheckpointer> StoreCkpt;
  uint64_t Offset = 0;
  uint64_t LineNo = 0;
  uint64_t LastCkptFlushes = 0;
  uint64_t Checkpoints = 0;
  Phase PhaseLocal = Phase::Active;
  Retire RetireReason = Retire::None;
  /// Set in the drain path after the last meaningful publish: the
  /// courtesy finalize that follows detects end-of-stream violations a
  /// resumed run will re-detect, and those must not leak into the folded
  /// totals (they are not in the durable record either).
  bool CountersFrozen = false;
  /// The restored checkpoint's counters (zero for a fresh stream); see
  /// countersSinceCreation().
  StatsSnapshot Base;
  /// The hot-session upgrade: while set, this pipeline owns the Monitor
  /// and the live machine state (the Machine member is stale until
  /// quiesceHot() moves the state back). Declared after M/Machine so it is
  /// destroyed — joining its threads — before them.
  std::unique_ptr<ShardedMonitorIngest> Sharded;

  // --- Inbox (event loop -> pump). ---
  mutable std::mutex InboxMu;
  std::deque<Item> Inbox;
  bool Running = false;
  /// Set once the registry scheduled eviction/drain; blocks re-attach.
  bool Retiring = false;

  // --- Attached client (event loop <-> pump). ---
  mutable std::mutex AttachMu;
  std::shared_ptr<ResponseWriter> Writer;

  // --- Atomic mirrors for cross-thread readers. ---
  std::atomic<Phase> PhaseAtomic{Phase::Active};
  std::atomic<size_t> InboxBytes{0};
  std::atomic<uint64_t> LastActivitySec{0};
  std::atomic<uint64_t> OffsetAtomic{0};
  std::atomic<uint64_t> LineNoAtomic{0};
  std::atomic<uint64_t> CheckpointsAtomic{0};
  std::atomic<uint64_t> CTxns{0}, CCommitted{0}, COps{0}, CLive{0},
      CViolations{0}, CFlushes{0}, CEvicted{0}, CForced{0}, CFlushMicros{0};
  std::atomic<uint64_t> CPhaseMicros[obs::NumFlushPhases] = {};
  std::atomic<bool> HotAtomic{false};
  std::atomic<uint64_t> HotUpgradesAtomic{0};
  /// The latest approxWindowBytes() estimate (published with the counter
  /// mirror) and the quota it is checked against. The quota is written by
  /// the registry on (re-)attach and read by the pump, hence atomic.
  std::atomic<uint64_t> WindowBytesApprox{0};
  std::atomic<uint64_t> WindowQuotaBytes{0};
  std::atomic<uint64_t> QuotaTripsAtomic{0};
  /// Inbox backpressure threshold; event-loop thread only (written on
  /// attach, read by the poll loop's read gate).
  size_t InboxQuotaBytes = 4 << 20;

  /// Signals the registry when this session turns Dead (drain waits on
  /// it). Set by the registry at construction.
  std::function<void(StreamSession &)> OnDead;
};

/// Owns every live session; all entry points run on the event-loop thread
/// unless stated otherwise.
class SessionRegistry {
public:
  SessionRegistry(SessionEnv Env, ThreadPool &Pool)
      : Env(std::move(Env)), Pool(Pool) {}

  /// The HELLO entry point: create, resume from checkpoint, or re-attach.
  struct HelloResult {
    std::shared_ptr<StreamSession> Session; ///< null on error
    std::string Status;                     ///< "new"|"resumed"|"attached"
    uint64_t Offset = 0;
    uint64_t LineNo = 0;
    std::string Err;
  };
  HelloResult hello(const HelloRequest &Req,
                    std::shared_ptr<ResponseWriter> Writer);

  /// True when sessions may upgrade to the sharded ingest pipeline.
  bool hotEnabled() const { return Env.HotThreads >= 2; }

  /// Sweeps Dead sessions out of the map and schedules eviction of
  /// detached sessions idle for more than \p IdleTimeoutSec (0 disables).
  /// \p NowSec is the steady clock in seconds. Returns the number of
  /// evictions scheduled.
  size_t sweep(uint64_t NowSec, uint64_t IdleTimeoutSec);

  /// Drains every session (checkpoint + finalize) and waits until all
  /// pumps have retired them. Called once, at shutdown.
  void drainAll();

  /// Aggregate totals for /metrics: live sessions are summed on the fly,
  /// retired sessions from the fold-in accumulators. Counters have
  /// process-lifetime semantics (the usual Prometheus counter contract):
  /// work a resumed tenant's checkpoint carried in from a previous
  /// process is its base, not new work, so evict + resume cycles never
  /// double-count.
  struct Totals {
    uint64_t SessionsLive = 0;
    uint64_t SessionsCreated = 0;
    uint64_t SessionsResumed = 0;
    uint64_t SessionsEvicted = 0;
    uint64_t SessionsEnded = 0;
    uint64_t Checkpoints = 0;
    uint64_t HotUpgrades = 0;
    uint64_t QuotaTrips = 0;
    StatsSnapshot Counters;
  };
  Totals totals() const;

  /// Snapshot of the live sessions (for per-session /metrics lines and
  /// the pre-HELLO STATS verb). Thread-safe.
  std::vector<std::shared_ptr<StreamSession>> sessions() const;

private:
  void onSessionDead(StreamSession &S);
  /// Folds a retired session's counters into the accumulators. Caller
  /// holds Mu.
  void fold(StreamSession &S);
  /// Applies a HELLO's per-tenant quota requests to \p S, clamped to the
  /// Env caps (the server already rejected over-cap requests with a typed
  /// `ERR quota`; the clamp keeps direct registry users safe too).
  /// Defaults apply where the HELLO gave nothing.
  void applyQuotas(StreamSession &S, const HelloRequest &Req) const;

  SessionEnv Env;
  ThreadPool &Pool;

  mutable std::mutex Mu;
  std::unordered_map<std::string, std::shared_ptr<StreamSession>> Sessions;
  std::condition_variable DeadCv;

  // Fold-in accumulators of retired sessions (guarded by Mu).
  uint64_t Created = 0, Resumed = 0, Evicted = 0, Ended = 0;
  StatsSnapshot Retired;
  uint64_t RetiredCheckpoints = 0;
  uint64_t RetiredHotUpgrades = 0;
  uint64_t RetiredQuotaTrips = 0;
};

} // namespace server
} // namespace awdit

#endif // AWDIT_SERVER_SESSION_REGISTRY_H
