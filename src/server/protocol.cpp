//===- server/protocol.cpp - Multi-tenant server line protocol -------------===//

#include "server/protocol.h"

#include "io/token_util.h"

using namespace awdit;
using namespace awdit::server;
using awdit::io::parseInt;
using awdit::io::tokenize;

Verb awdit::server::classifyLine(std::string_view Line) {
  // First token, cheaply: skip leading blanks, cut at the next blank.
  size_t Start = Line.find_first_not_of(" \t");
  if (Start == std::string_view::npos)
    return Verb::None;
  size_t End = Line.find_first_of(" \t", Start);
  std::string_view Tok = Line.substr(
      Start, End == std::string_view::npos ? Line.size() - Start
                                           : End - Start);
  if (Tok == "HELLO")
    return Verb::Hello;
  if (Tok == "STATS")
    return Verb::Stats;
  if (Tok == "DETACH")
    return Verb::Detach;
  if (Tok == "END")
    return Verb::End;
  if (Tok == "SHUTDOWN")
    return Verb::Shutdown;
  if (Tok == "TRACE")
    return Verb::Trace;
  return Verb::None;
}

bool awdit::server::statsWantsDeep(std::string_view Line) {
  std::vector<std::string_view> Tok = tokenize(Line);
  return Tok.size() >= 2 && Tok[0] == "STATS" && Tok[1] == "deep";
}

bool awdit::server::parseHello(std::string_view Line, HelloRequest &Req,
                               std::string *Err) {
  auto Fail = [&](const std::string &Msg) {
    if (Err)
      *Err = Msg;
    return false;
  };
  std::vector<std::string_view> Tok = tokenize(Line);
  if (Tok.size() < 3 || Tok[0] != "HELLO")
    return Fail("expected 'HELLO <stream-id> <rc|ra|cc> [k=v ...]'");
  Req.Stream = std::string(Tok[1]);
  std::optional<IsolationLevel> Level = parseIsolationLevel(Tok[2]);
  if (!Level)
    return Fail("unknown isolation level '" + std::string(Tok[2]) +
                "' (want rc|ra|cc)");
  Req.Level = *Level;
  Req.Options = MonitorOptions();
  Req.Options.Level = *Level;
  // The `awdit monitor` CLI defaults.
  Req.Options.CheckIntervalTxns = 256;
  Req.Options.Check.MaxWitnesses = 4;

  for (size_t I = 3; I < Tok.size(); ++I) {
    std::string_view KV = Tok[I];
    size_t Eq = KV.find('=');
    if (Eq == std::string_view::npos || Eq == 0 || Eq + 1 > KV.size())
      return Fail("expected key=value, got '" + std::string(KV) + "'");
    std::string Key(KV.substr(0, Eq));
    std::string Value(KV.substr(Eq + 1));

    uint64_t Num = 0;
    bool IsNum = parseInt(std::string_view(Value), Num);
    // Connection-level options first: they never enter Given (they are
    // not part of the checker configuration a checkpoint fingerprints).
    if (Key == "mux") {
      if (Value != "on" && Value != "off")
        return Fail("mux= wants on|off, got '" + Value + "'");
      Req.Mux = Value == "on";
      continue;
    }
    if (Key == "token") {
      Req.Token = Value;
      continue;
    }
    if (Key == "inbox-bytes" || Key == "outq-bytes" ||
        Key == "window-bytes") {
      if (!IsNum || Num == 0)
        return Fail(Key + "= wants a positive byte count, got '" + Value +
                    "'");
      (Key == "inbox-bytes"
           ? Req.InboxBytes
           : Key == "outq-bytes" ? Req.OutQueueBytes : Req.WindowBytes) =
          Num;
      continue;
    }
    if (Key == "format") {
      if (Value != "native" && Value != "plume" && Value != "dbcop")
        return Fail("unknown format '" + Value + "'");
      Req.Format = Value;
    } else if (Key == "interval" && IsNum) {
      Req.Options.CheckIntervalTxns = static_cast<size_t>(Num);
    } else if (Key == "window" && IsNum) {
      Req.Options.WindowTxns = static_cast<size_t>(Num);
    } else if (Key == "window-edges" && IsNum) {
      Req.Options.WindowEdges = static_cast<size_t>(Num);
    } else if (Key == "window-age" && IsNum) {
      Req.Options.WindowAgeTicks = Num;
    } else if (Key == "force-abort" && IsNum) {
      Req.Options.ForceAbortOpenTicks = Num;
    } else if (Key == "witnesses" && IsNum) {
      Req.Options.Check.MaxWitnesses = static_cast<size_t>(Num);
    } else {
      return Fail("unknown or malformed option '" + std::string(KV) + "'");
    }
    Req.Given[Key] = Value;
  }
  return true;
}

std::string awdit::server::optionValue(const std::string &Format,
                                       const MonitorOptions &Options,
                                       const std::string &Key) {
  if (Key == "format")
    return Format;
  if (Key == "interval")
    return std::to_string(Options.CheckIntervalTxns);
  if (Key == "window")
    return std::to_string(Options.WindowTxns);
  if (Key == "window-edges")
    return std::to_string(Options.WindowEdges);
  if (Key == "window-age")
    return std::to_string(Options.WindowAgeTicks);
  if (Key == "force-abort")
    return std::to_string(Options.ForceAbortOpenTicks);
  if (Key == "witnesses")
    return std::to_string(Options.Check.MaxWitnesses);
  return {};
}

bool awdit::server::checkCompatible(const HelloRequest &Req,
                                    const std::string &Format,
                                    const MonitorOptions &Options,
                                    std::string *Err) {
  auto Fail = [&](const std::string &Msg) {
    if (Err)
      *Err = Msg;
    return false;
  };
  if (Req.Level != Options.Level)
    return Fail(std::string("stream runs at level ") +
                isolationLevelName(Options.Level) +
                ", incompatible with " + isolationLevelName(Req.Level));
  for (const auto &[Key, Value] : Req.Given) {
    std::string Existing = optionValue(Format, Options, Key);
    if (Value != Existing)
      return Fail("stream runs with " + Key + "=" + Existing +
                  ", incompatible with " + Key + "=" + Value);
  }
  return true;
}

//===----------------------------------------------------------------------===//
// Mux framing helpers
//===----------------------------------------------------------------------===//

bool awdit::server::splitMuxFrame(std::string_view Line,
                                  std::string_view &Stream,
                                  std::string_view &Payload,
                                  bool &HasPayload) {
  // Caller has classified the line with isMuxFrame(): '@' then a stream.
  std::string_view Rest = Line.substr(1);
  size_t Sp = Rest.find(' ');
  if (Sp == std::string_view::npos) {
    Stream = Rest;
    Payload = {};
    HasPayload = false;
  } else {
    Stream = Rest.substr(0, Sp);
    Payload = Rest.substr(Sp + 1);
    HasPayload = true;
  }
  return !Stream.empty();
}

std::string awdit::server::escapeMuxPayload(std::string_view Payload) {
  std::string Out;
  if (!Payload.empty() && Payload[0] == '@')
    Out += '@';
  Out += Payload;
  return Out;
}

std::string_view awdit::server::unescapeMuxPayload(std::string_view Line) {
  if (Line.size() >= 2 && Line[0] == '@' && Line[1] == '@')
    return Line.substr(1);
  return Line;
}

std::string awdit::server::muxFrame(std::string_view Stream,
                                    std::string_view Payload) {
  std::string Out = "@";
  Out += Stream;
  Out += ' ';
  Out += Payload;
  return Out;
}
