//===- io/plume_format.cpp - Plume-style CSV history format ------------------===//

#include "io/plume_format.h"

#include "history/history_builder.h"
#include "history/wr_resolver.h"
#include "io/token_util.h"

#include <sstream>

using namespace awdit;
using awdit::io::CsvCursor;
using awdit::io::parseInt;

namespace {

bool setErr(std::string *Err, size_t LineNo, const std::string &Msg) {
  if (Err)
    *Err = "line " + std::to_string(LineNo) + ": " + Msg;
  return false;
}

} // namespace

std::optional<History> awdit::parsePlumeHistory(std::string_view Text,
                                                std::string *Err) {
  HistoryBuilder B;
  // Duplicate writes are a build()-level invariant, but detecting them
  // here attributes the error to its line.
  WriteSiteIndex SeenWrites;
  size_t NumSessions = 0;
  // Current open transaction, identified by (session, txn id from file).
  bool HasOpen = false;
  SessionId OpenSession = 0;
  uint64_t OpenFileTxn = 0;
  TxnId Open = NoTxn;

  size_t LineNo = 0;
  size_t Pos = 0;
  while (Pos <= Text.size()) {
    size_t End = Text.find('\n', Pos);
    std::string_view Line = End == std::string_view::npos
                                ? Text.substr(Pos)
                                : Text.substr(Pos, End - Pos);
    Pos = End == std::string_view::npos ? Text.size() + 1 : End + 1;
    ++LineNo;
    // Trim trailing CR for Windows-style logs.
    if (!Line.empty() && Line.back() == '\r')
      Line.remove_suffix(1);
    if (Line.empty() || Line.front() == '#')
      continue;

    CsvCursor C(Line);
    std::string_view Op;
    SessionId S;
    uint64_t FileTxn;
    if (!C.nextInt(S) || !C.nextInt(FileTxn) || !C.next(Op)) {
      setErr(Err, LineNo, "expected '<session>,<txn>,...'");
      return std::nullopt;
    }
    while (NumSessions <= S) {
      B.addSession();
      ++NumSessions;
    }
    if (!HasOpen || OpenSession != S || OpenFileTxn != FileTxn) {
      Open = B.beginTxn(S);
      HasOpen = true;
      OpenSession = S;
      OpenFileTxn = FileTxn;
    }
    if (Op == "abort") {
      B.abortTxn(Open);
      continue;
    }
    Key K;
    Value V;
    if (!C.nextInt(K) || !C.nextInt(V) || !C.atEnd() ||
        (Op != "r" && Op != "w")) {
      setErr(Err, LineNo, "expected '<session>,<txn>,<r|w>,<key>,<value>'");
      return std::nullopt;
    }
    if (Op == "r") {
      B.read(Open, K, V);
    } else {
      if (!SeenWrites.record(K, V, Open, 0)) {
        setErr(Err, LineNo, duplicateWriteMessage(K, V));
        return std::nullopt;
      }
      B.write(Open, K, V);
    }
  }
  return B.build(Err);
}

std::string awdit::writePlumeHistory(const History &H) {
  std::ostringstream Out;
  Out << "# plume-style history: " << H.numSessions() << " sessions\n";
  for (TxnId Id = 0; Id < H.numTxns(); ++Id) {
    const Transaction &T = H.txn(Id);
    for (const Operation &Op : T.Ops)
      Out << T.Session << "," << Id << "," << (Op.isRead() ? "r" : "w")
          << "," << Op.K << "," << Op.V << "\n";
    if (!T.Committed)
      Out << T.Session << "," << Id << ",abort\n";
  }
  return Out.str();
}
