//===- io/plume_format.h - Plume-style CSV history format ---------*- C++ -*-===//
//
// Part of the AWDIT reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A Plume-style flat CSV history format (one operation per row, grouped
/// into transactions by a session/transaction id pair), of the shape used
/// by the text logs of the Plume/PolySI tool family:
///
/// \code
///   # header comments allowed
///   <session>,<txn>,<r|w>,<key>,<value>
///   <session>,<txn>,abort
/// \endcode
///
/// Rows of one transaction must be contiguous; transactions of a session
/// appear in session order.
///
//===----------------------------------------------------------------------===//

#ifndef AWDIT_IO_PLUME_FORMAT_H
#define AWDIT_IO_PLUME_FORMAT_H

#include "history/history.h"

#include <optional>
#include <string>
#include <string_view>

namespace awdit {

/// Parses the Plume-style CSV format.
std::optional<History> parsePlumeHistory(std::string_view Text,
                                         std::string *Err = nullptr);

/// Serializes \p H in the Plume-style CSV format.
std::string writePlumeHistory(const History &H);

} // namespace awdit

#endif // AWDIT_IO_PLUME_FORMAT_H
