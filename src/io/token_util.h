//===- io/token_util.h - Shared line-tokenizing helpers ----------*- C++ -*-===//
//
// Part of the AWDIT reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The tokenizing primitives every history-format parser uses — batch and
/// streaming alike — so the native/dbcop whitespace grammar and the plume
/// CSV grammar each live in exactly one place.
///
/// This is the hot ingest path: with flush cost flat in the window size and
/// the checking half of every flush offloaded to shard workers, the
/// context-free decode dominates a live stream's per-byte cost. Three
/// things keep it branch-light and allocation-free:
///
///  - TokenCursor / CsvCursor walk a line's tokens in place — no per-line
///    std::vector, no heap traffic. The legacy tokenize()/splitCsv()
///    vector-returning functions remain as thin wrappers for cold callers
///    (the server's verb parser).
///  - The whitespace/newline scanners classify 8 bytes per step with SWAR
///    bitmasks (16 with SSE2/NEON where compiled in). The SIMD paths sit
///    behind a runtime switch — setSimdTokenizer(false) forces the scalar
///    SWAR fallback, which is always compiled so the fuzz suite can check
///    the two produce identical token spans on arbitrary bytes.
///  - parseInt() takes a branchless all-digit fast path (8 digits per
///    multiply, simdjson-style) whenever the token is short enough that
///    overflow is impossible, and falls back to std::from_chars for
///    everything else — so signs, overflow at exactly INT64_MAX/UINT64_MAX,
///    leading '+', and empty tokens keep from_chars strictness bit for bit.
///
//===----------------------------------------------------------------------===//

#ifndef AWDIT_IO_TOKEN_UTIL_H
#define AWDIT_IO_TOKEN_UTIL_H

#include <atomic>
#include <bit>
#include <charconv>
#include <cstdint>
#include <cstring>
#include <limits>
#include <string_view>
#include <vector>

#if defined(__SSE2__)
#include <emmintrin.h>
#define AWDIT_TOKEN_SIMD 1
#elif defined(__aarch64__)
#include <arm_neon.h>
#define AWDIT_TOKEN_SIMD 1
#else
#define AWDIT_TOKEN_SIMD 0
#endif

namespace awdit::io {

namespace detail {

// The SWAR fallback assumes the byte order of a loaded word; on a
// big-endian target the plain byte loops below take over.
constexpr bool LittleEndian =
#if defined(__BYTE_ORDER__) && __BYTE_ORDER__ == __ORDER_LITTLE_ENDIAN__
    true;
#else
    false;
#endif

constexpr uint64_t SwarLow = 0x0101010101010101ull;
constexpr uint64_t SwarLow7 = 0x7f7f7f7f7f7f7f7full;
constexpr uint64_t SwarHigh = 0x8080808080808080ull;

inline uint64_t swarLoad(const char *P) {
  uint64_t W;
  std::memcpy(&W, P, sizeof(W));
  return W;
}

/// 0x80 in exactly the bytes of \p W that are zero. Carry-free (each
/// byte's sum stays below 0x100), unlike the classic (w - 1s) & ~w form
/// whose borrows can mark the byte above a zero.
inline uint64_t swarZeroMask(uint64_t W) {
  return ~(((W & SwarLow7) + SwarLow7) | W | SwarLow7);
}

/// 0x80 in exactly the bytes of \p W equal to \p C.
inline uint64_t swarEqMask(uint64_t W, char C) {
  return swarZeroMask(W ^ (SwarLow * static_cast<uint8_t>(C)));
}

/// 0x80 in the bytes that are ' ', '\t', or '\n' — the token-separator
/// class shared by the native and dbcop grammars (lines never contain a
/// '\n', so including it costs nothing and lets the same scanner split
/// multi-line buffers).
inline uint64_t swarSeparatorMask(uint64_t W) {
  return swarEqMask(W, ' ') | swarEqMask(W, '\t') | swarEqMask(W, '\n');
}

inline bool isSeparator(char C) { return C == ' ' || C == '\t' || C == '\n'; }

/// First separator at or after \p Pos, or Len. Scalar-register path: SWAR
/// word-at-a-time on little-endian, plain bytes otherwise.
inline size_t scanToSepScalar(const char *D, size_t Len, size_t Pos) {
  if constexpr (LittleEndian) {
    while (Pos + 8 <= Len) {
      uint64_t M = swarSeparatorMask(swarLoad(D + Pos));
      if (M)
        return Pos + (static_cast<size_t>(std::countr_zero(M)) >> 3);
      Pos += 8;
    }
  }
  while (Pos < Len && !isSeparator(D[Pos]))
    ++Pos;
  return Pos;
}

/// First non-separator at or after \p Pos, or Len.
inline size_t scanPastSepScalar(const char *D, size_t Len, size_t Pos) {
  if constexpr (LittleEndian) {
    while (Pos + 8 <= Len) {
      uint64_t M = ~swarSeparatorMask(swarLoad(D + Pos)) & SwarHigh;
      if (M)
        return Pos + (static_cast<size_t>(std::countr_zero(M)) >> 3);
      Pos += 8;
    }
  }
  while (Pos < Len && isSeparator(D[Pos]))
    ++Pos;
  return Pos;
}

/// First '\n' at or after \p Pos, or Len.
inline size_t scanToNewlineScalar(const char *D, size_t Len, size_t Pos) {
  if constexpr (LittleEndian) {
    while (Pos + 8 <= Len) {
      uint64_t M = swarEqMask(swarLoad(D + Pos), '\n');
      if (M)
        return Pos + (static_cast<size_t>(std::countr_zero(M)) >> 3);
      Pos += 8;
    }
  }
  while (Pos < Len && D[Pos] != '\n')
    ++Pos;
  return Pos;
}

#if defined(__SSE2__)

inline int sseSeparatorMask(__m128i V) {
  __m128i M = _mm_or_si128(
      _mm_or_si128(_mm_cmpeq_epi8(V, _mm_set1_epi8(' ')),
                   _mm_cmpeq_epi8(V, _mm_set1_epi8('\t'))),
      _mm_cmpeq_epi8(V, _mm_set1_epi8('\n')));
  return _mm_movemask_epi8(M);
}

inline size_t scanToSepSimd(const char *D, size_t Len, size_t Pos) {
  while (Pos + 16 <= Len) {
    int M = sseSeparatorMask(
        _mm_loadu_si128(reinterpret_cast<const __m128i *>(D + Pos)));
    if (M)
      return Pos + static_cast<size_t>(
                       std::countr_zero(static_cast<unsigned>(M)));
    Pos += 16;
  }
  return scanToSepScalar(D, Len, Pos);
}

inline size_t scanPastSepSimd(const char *D, size_t Len, size_t Pos) {
  while (Pos + 16 <= Len) {
    int M = ~sseSeparatorMask(_mm_loadu_si128(
                reinterpret_cast<const __m128i *>(D + Pos))) &
            0xffff;
    if (M)
      return Pos + static_cast<size_t>(
                       std::countr_zero(static_cast<unsigned>(M)));
    Pos += 16;
  }
  return scanPastSepScalar(D, Len, Pos);
}

inline size_t scanToNewlineSimd(const char *D, size_t Len, size_t Pos) {
  const __m128i Nl = _mm_set1_epi8('\n');
  while (Pos + 16 <= Len) {
    int M = _mm_movemask_epi8(_mm_cmpeq_epi8(
        _mm_loadu_si128(reinterpret_cast<const __m128i *>(D + Pos)), Nl));
    if (M)
      return Pos + static_cast<size_t>(
                       std::countr_zero(static_cast<unsigned>(M)));
    Pos += 16;
  }
  return scanToNewlineScalar(D, Len, Pos);
}

#elif defined(__aarch64__)

/// Narrows a byte-wise compare result to a 64-bit mask, one nibble per
/// byte lane (the usual vshrn trick); countr_zero(mask) >> 2 is the lane.
inline uint64_t neonNibbleMask(uint8x16_t Eq) {
  return vget_lane_u64(
      vreinterpret_u64_u8(vshrn_n_u16(vreinterpretq_u16_u8(Eq), 4)), 0);
}

inline uint8x16_t neonSeparatorEq(uint8x16_t V) {
  return vorrq_u8(vorrq_u8(vceqq_u8(V, vdupq_n_u8(' ')),
                           vceqq_u8(V, vdupq_n_u8('\t'))),
                  vceqq_u8(V, vdupq_n_u8('\n')));
}

inline size_t scanToSepSimd(const char *D, size_t Len, size_t Pos) {
  while (Pos + 16 <= Len) {
    uint64_t M = neonNibbleMask(neonSeparatorEq(
        vld1q_u8(reinterpret_cast<const uint8_t *>(D + Pos))));
    if (M)
      return Pos + (static_cast<size_t>(std::countr_zero(M)) >> 2);
    Pos += 16;
  }
  return scanToSepScalar(D, Len, Pos);
}

inline size_t scanPastSepSimd(const char *D, size_t Len, size_t Pos) {
  while (Pos + 16 <= Len) {
    uint64_t M = neonNibbleMask(vmvnq_u8(neonSeparatorEq(
        vld1q_u8(reinterpret_cast<const uint8_t *>(D + Pos)))));
    if (M)
      return Pos + (static_cast<size_t>(std::countr_zero(M)) >> 2);
    Pos += 16;
  }
  return scanPastSepScalar(D, Len, Pos);
}

inline size_t scanToNewlineSimd(const char *D, size_t Len, size_t Pos) {
  while (Pos + 16 <= Len) {
    uint64_t M = neonNibbleMask(
        vceqq_u8(vld1q_u8(reinterpret_cast<const uint8_t *>(D + Pos)),
                 vdupq_n_u8('\n')));
    if (M)
      return Pos + (static_cast<size_t>(std::countr_zero(M)) >> 2);
    Pos += 16;
  }
  return scanToNewlineScalar(D, Len, Pos);
}

#endif // SIMD flavor

/// 0x80 in exactly the bytes of \p W that are NOT ASCII digits. Carry-free:
/// the low-nibble +6 probe cannot cross a byte (0x0f + 6 < 0x100).
inline uint64_t swarNonDigitMask(uint64_t W) {
  constexpr uint64_t HighNibbles = 0xf0f0f0f0f0f0f0f0ull;
  constexpr uint64_t Zeros = 0x3030303030303030ull;
  uint64_t HighIs3 = swarZeroMask((W ^ Zeros) & HighNibbles);
  uint64_t LowGt9 = ((W & ~HighNibbles) + 0x0606060606060606ull) &
                    0x1010101010101010ull;
  return (~HighIs3 | (LowGt9 << 3)) & SwarHigh;
}

/// True iff all 8 bytes of \p W are ASCII digits.
inline bool isEightDigits(uint64_t W) {
  return ((W & 0xf0f0f0f0f0f0f0f0ull) |
          (((W + 0x0606060606060606ull) & 0xf0f0f0f0f0f0f0f0ull) >> 4)) ==
         0x3333333333333333ull;
}

/// Converts 8 ASCII digits (little-endian in \p W, leftmost digit in the
/// low byte) to their value with three multiplies.
inline uint32_t parseEightDigits(uint64_t W) {
  constexpr uint64_t Mask = 0x000000ff000000ffull;
  constexpr uint64_t Mul1 = 100 + (1000000ull << 32);
  constexpr uint64_t Mul2 = 1 + (10000ull << 32);
  W -= 0x3030303030303030ull;
  W = (W * 10) + (W >> 8); // adjacent digit pairs
  return static_cast<uint32_t>(
      (((W & Mask) * Mul1) + (((W >> 16) & Mask) * Mul2)) >> 32);
}

/// Accumulates \p N all-digit bytes into \p Out. False if any byte is not
/// a digit; no overflow checks — the caller bounds N so the value fits.
/// Branch-light: validity is a running flag, not a per-digit branch.
template <typename IntT>
inline bool parseDigitsFast(const char *P, size_t N, IntT &Out) {
  uint64_t Val = 0;
  bool Ok = true;
  size_t I = 0;
  if constexpr (LittleEndian) {
    for (; N - I >= 8; I += 8) {
      uint64_t W = swarLoad(P + I);
      Ok &= isEightDigits(W);
      Val = Val * 100000000 + parseEightDigits(W);
    }
  }
  for (; I < N; ++I) {
    unsigned D = static_cast<unsigned char>(P[I]) - '0';
    Ok &= D <= 9;
    Val = Val * 10 + D;
  }
  Out = static_cast<IntT>(Val);
  return Ok;
}

/// The runtime dispatch switch. Relaxed atomic (a plain load on every
/// target) so the fuzz suite can flip implementations between pipeline
/// runs without racing the check itself.
inline std::atomic<bool> SimdEnabled{true};

} // namespace detail

/// True when an SSE2/NEON scanner was compiled in at all.
constexpr bool simdTokenizerCompiled() { return AWDIT_TOKEN_SIMD != 0; }

/// Runtime switch between the SIMD scanners and the scalar SWAR fallback
/// (testing hook; the fallback is always compiled). No-op when no SIMD
/// flavor was compiled in.
inline void setSimdTokenizer(bool On) {
  detail::SimdEnabled.store(On, std::memory_order_relaxed);
}
inline bool simdTokenizerEnabled() {
#if AWDIT_TOKEN_SIMD
  return detail::SimdEnabled.load(std::memory_order_relaxed);
#else
  return false;
#endif
}

/// Position of the first token separator (space/tab/newline) at or after
/// \p Pos, or Text.size() if none.
inline size_t scanToSeparator(std::string_view Text, size_t Pos) {
#if AWDIT_TOKEN_SIMD
  if (detail::SimdEnabled.load(std::memory_order_relaxed))
    return detail::scanToSepSimd(Text.data(), Text.size(), Pos);
#endif
  return detail::scanToSepScalar(Text.data(), Text.size(), Pos);
}

/// Position of the first non-separator at or after \p Pos, or Text.size().
inline size_t scanPastSeparators(std::string_view Text, size_t Pos) {
#if AWDIT_TOKEN_SIMD
  if (detail::SimdEnabled.load(std::memory_order_relaxed))
    return detail::scanPastSepSimd(Text.data(), Text.size(), Pos);
#endif
  return detail::scanPastSepScalar(Text.data(), Text.size(), Pos);
}

/// Position of the first '\n' at or after \p Pos, or Text.size() — the
/// batch splitter of the sharded ingest arena.
inline size_t scanToNewline(std::string_view Text, size_t Pos) {
#if AWDIT_TOKEN_SIMD
  if (detail::SimdEnabled.load(std::memory_order_relaxed))
    return detail::scanToNewlineSimd(Text.data(), Text.size(), Pos);
#endif
  return detail::scanToNewlineScalar(Text.data(), Text.size(), Pos);
}

/// from_chars over the whole token — the shared slow path of parseInt()
/// and the cursors' nextInt(), and the definition of their strictness.
template <typename IntT>
bool parseIntSlow(std::string_view Token, IntT &Out) {
  auto [Ptr, Ec] =
      std::from_chars(Token.data(), Token.data() + Token.size(), Out);
  return Ec == std::errc() && Ptr == Token.data() + Token.size();
}

/// Walks the space/tab-separated tokens of one line in place — the
/// allocation-free replacement for tokenize() on the hot decode path.
/// Tokens are never empty, so an empty next() means the line is exhausted.
class TokenCursor {
public:
  explicit TokenCursor(std::string_view Line) : Line(Line) {}

  /// The next token, or an empty view once the line is exhausted.
  std::string_view next() {
    skipSeparators();
    size_t Start = Pos;
    if (Pos == Line.size())
      return {};
    // One-char tokens — every native/dbcop directive — skip the scanner.
    if (Pos + 1 == Line.size() || detail::isSeparator(Line[Pos + 1]))
      Pos = Start + 1;
    else
      Pos = scanToSeparator(Line, Pos + 1);
    return Line.substr(Start, Pos - Start);
  }

  /// True when only separators (or nothing) remain — the cursor's
  /// equivalent of the old `Tok.size() != N` trailing-garbage check.
  bool atEnd() {
    skipSeparators();
    return Pos == Line.size();
  }

  /// Fused next()+parseInt(): skips separators, accumulates the digit run
  /// and checks its terminator in one pass — the common token is a short
  /// decimal number, and scanning it twice (once to delimit, once to
  /// parse) is the decode path's main waste. Any token that is not a
  /// short all-digit run (signs, overflow-length, garbage, nothing left)
  /// is re-delimited and handed to std::from_chars, so accept/reject
  /// behavior is bit-identical to parseInt(next(), Out).
  template <typename IntT> bool nextInt(IntT &Out) {
    skipSeparators();
    size_t Start = Pos;
    constexpr size_t FastDigits = std::numeric_limits<IntT>::digits10;
    if constexpr (detail::LittleEndian) {
      // The hot shape: a 1-7 digit run — classified and parsed with two
      // multiplies, no per-digit dependency chain. The window is clamped
      // to the line so the final token qualifies too; the right-shift
      // zero-fill reads as non-digits, ending the run at the line end.
      if (Line.size() >= 8 && Start < Line.size()) {
        size_t LoadAt = Start < Line.size() - 8 ? Start : Line.size() - 8;
        uint64_t W = detail::swarLoad(Line.data() + LoadAt) >>
                     (8 * (Start - LoadAt));
        uint64_t NonDigit = detail::swarNonDigitMask(W);
        size_t N =
            NonDigit ? static_cast<size_t>(std::countr_zero(NonDigit)) >> 3
                     : 8;
        if (N - 1 < 7 && N <= FastDigits && // 1 <= digits <= 7
            (Start + N == Line.size() ||
             detail::isSeparator(Line[Start + N]))) {
          // Left-align the digits and fill the lead bytes with '0'.
          uint64_t Digits = (W << (8 * (8 - N))) |
                            (0x3030303030303030ull >> (8 * N));
          Out = static_cast<IntT>(detail::parseEightDigits(Digits));
          Pos = Start + N;
          return true;
        }
      }
    }
    uint64_t Val = 0;
    size_t P = Start;
    while (P < Line.size()) {
      unsigned D = static_cast<unsigned char>(Line[P]) - '0';
      if (D > 9)
        break;
      Val = Val * 10 + D;
      ++P;
    }
    if (P - Start - 1 < FastDigits && // 1 <= digits <= digits10
        (P == Line.size() || detail::isSeparator(Line[P]))) {
      Pos = P;
      Out = static_cast<IntT>(Val);
      return true;
    }
    Pos = scanToSeparator(Line, P);
    return parseIntSlow(Line.substr(Start, Pos - Start), Out);
  }

private:
  /// Positions the cursor on the next non-separator (or the end). The
  /// grammar's norm is exactly one space between tokens, so one byte test
  /// settles it; runs fall through to the block scanners.
  void skipSeparators() {
    if (Pos < Line.size() && detail::isSeparator(Line[Pos])) {
      ++Pos;
      if (Pos < Line.size() && detail::isSeparator(Line[Pos]))
        Pos = scanPastSeparators(Line, Pos);
    }
  }

  std::string_view Line;
  size_t Pos = 0;
};

/// Walks the comma-separated fields of one line in place (the plume
/// grammar: empty fields are kept, so a line always has at least one).
class CsvCursor {
public:
  explicit CsvCursor(std::string_view Line) : Line(Line) {}

  /// Writes the next field into \p Field; false once all fields have been
  /// consumed. The first call on any line returns true.
  bool next(std::string_view &Field) {
    if (Done)
      return false;
    const void *Comma = std::memchr(Line.data() + Pos, ',', Line.size() - Pos);
    if (!Comma) {
      Field = Line.substr(Pos);
      Pos = Line.size();
      Done = true;
      return true;
    }
    size_t At = static_cast<size_t>(static_cast<const char *>(Comma) -
                                    Line.data());
    Field = Line.substr(Pos, At - Pos);
    Pos = At + 1;
    return true;
  }

  /// True when every field has been consumed (the `F.size() != N` check).
  bool atEnd() const { return Done; }

  /// Fused next()+parseInt() for a field, mirroring TokenCursor::nextInt:
  /// the short all-digit field terminated by ',' or end-of-line parses in
  /// one pass; anything else falls back to from_chars on the delimited
  /// field. False when no field remains.
  template <typename IntT> bool nextInt(IntT &Out) {
    if (Done)
      return false;
    size_t Start = Pos;
    constexpr size_t FastDigitsSwar = 7;
    if constexpr (detail::LittleEndian) {
      // Mirror of TokenCursor::nextInt's word fast path, ',' or line-end
      // terminated.
      if (Line.size() >= 8 && Start < Line.size() &&
          FastDigitsSwar <= std::numeric_limits<IntT>::digits10) {
        size_t LoadAt = Start < Line.size() - 8 ? Start : Line.size() - 8;
        uint64_t W = detail::swarLoad(Line.data() + LoadAt) >>
                     (8 * (Start - LoadAt));
        uint64_t NonDigit = detail::swarNonDigitMask(W);
        size_t N =
            NonDigit ? static_cast<size_t>(std::countr_zero(NonDigit)) >> 3
                     : 8;
        if (N - 1 < FastDigitsSwar) { // 1 <= digits <= 7
          uint64_t Digits = (W << (8 * (8 - N))) |
                            (0x3030303030303030ull >> (8 * N));
          if (Start + N == Line.size()) {
            Out = static_cast<IntT>(detail::parseEightDigits(Digits));
            Pos = Line.size();
            Done = true;
            return true;
          }
          if (Line[Start + N] == ',') {
            Out = static_cast<IntT>(detail::parseEightDigits(Digits));
            Pos = Start + N + 1;
            return true;
          }
        }
      }
    }
    uint64_t Val = 0;
    size_t P = Pos;
    while (P < Line.size()) {
      unsigned D = static_cast<unsigned char>(Line[P]) - '0';
      if (D > 9)
        break;
      Val = Val * 10 + D;
      ++P;
    }
    constexpr size_t FastDigits = std::numeric_limits<IntT>::digits10;
    if (P - Start - 1 < FastDigits) { // 1 <= digits <= digits10
      if (P == Line.size()) {
        Pos = P;
        Done = true;
        Out = static_cast<IntT>(Val);
        return true;
      }
      if (Line[P] == ',') {
        Pos = P + 1;
        Out = static_cast<IntT>(Val);
        return true;
      }
    }
    std::string_view Field;
    next(Field);
    return parseIntSlow(Field, Out);
  }

private:
  std::string_view Line;
  size_t Pos = 0;
  bool Done = false;
};

/// Parses the whole token as an integer; false on any trailing garbage.
/// All-digit tokens short enough that overflow is impossible (digits10 of
/// the type) take the branch-light fast path; everything else — signs,
/// boundary lengths, garbage — is decided by std::from_chars, whose
/// strictness (no leading '+', no empty token, exact overflow at the
/// type's limits) this function inherits unchanged.
template <typename IntT>
bool parseInt(std::string_view Token, IntT &Out) {
  constexpr size_t FastDigits = std::numeric_limits<IntT>::digits10;
  size_t N = Token.size();
  if (N - 1 < FastDigits) { // 1 <= N <= digits10 (wraps on N == 0)
    IntT V;
    if (detail::parseDigitsFast(Token.data(), N, V)) {
      Out = V;
      return true;
    }
  }
  return parseIntSlow(Token, Out);
}

/// Splits \p Line on runs of spaces/tabs (the native and dbcop grammars).
/// Cold-path wrapper over TokenCursor; the hot decoders use the cursor
/// directly.
inline std::vector<std::string_view> tokenize(std::string_view Line) {
  std::vector<std::string_view> Tokens;
  TokenCursor C(Line);
  for (std::string_view T = C.next(); !T.empty(); T = C.next())
    Tokens.push_back(T);
  return Tokens;
}

/// Splits \p Line on commas, keeping empty fields (the plume grammar).
/// Cold-path wrapper over CsvCursor.
inline std::vector<std::string_view> splitCsv(std::string_view Line) {
  std::vector<std::string_view> Fields;
  CsvCursor C(Line);
  for (std::string_view F; C.next(F);)
    Fields.push_back(F);
  return Fields;
}

} // namespace awdit::io

#endif // AWDIT_IO_TOKEN_UTIL_H
