//===- io/token_util.h - Shared line-tokenizing helpers ----------*- C++ -*-===//
//
// Part of the AWDIT reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The tokenizing primitives every history-format parser uses — batch and
/// streaming alike — so the native/dbcop whitespace grammar and the plume
/// CSV grammar each live in exactly one place.
///
//===----------------------------------------------------------------------===//

#ifndef AWDIT_IO_TOKEN_UTIL_H
#define AWDIT_IO_TOKEN_UTIL_H

#include <charconv>
#include <string_view>
#include <vector>

namespace awdit::io {

/// Splits \p Line on runs of spaces/tabs (the native and dbcop grammars).
inline std::vector<std::string_view> tokenize(std::string_view Line) {
  std::vector<std::string_view> Tokens;
  size_t I = 0;
  while (I < Line.size()) {
    while (I < Line.size() && (Line[I] == ' ' || Line[I] == '\t'))
      ++I;
    size_t Start = I;
    while (I < Line.size() && Line[I] != ' ' && Line[I] != '\t')
      ++I;
    if (I > Start)
      Tokens.push_back(Line.substr(Start, I - Start));
  }
  return Tokens;
}

/// Splits \p Line on commas, keeping empty fields (the plume grammar).
inline std::vector<std::string_view> splitCsv(std::string_view Line) {
  std::vector<std::string_view> Fields;
  size_t Pos = 0;
  while (true) {
    size_t Comma = Line.find(',', Pos);
    if (Comma == std::string_view::npos) {
      Fields.push_back(Line.substr(Pos));
      return Fields;
    }
    Fields.push_back(Line.substr(Pos, Comma - Pos));
    Pos = Comma + 1;
  }
}

/// Parses the whole token as an integer; false on any trailing garbage.
template <typename IntT>
bool parseInt(std::string_view Token, IntT &Out) {
  auto [Ptr, Ec] =
      std::from_chars(Token.data(), Token.data() + Token.size(), Out);
  return Ec == std::errc() && Ptr == Token.data() + Token.size();
}

} // namespace awdit::io

#endif // AWDIT_IO_TOKEN_UTIL_H
