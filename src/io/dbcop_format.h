//===- io/dbcop_format.h - DBCop-style block history format -------*- C++ -*-===//
//
// Part of the AWDIT reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A DBCop-style block history format: an explicit session count followed
/// by per-transaction blocks (of the shape of DBCop's textual dumps):
///
/// \code
///   sessions <k>
///   txn <session> <committed 0|1> <numops>
///   R <key> <value>
///   W <key> <value>
/// \endcode
///
//===----------------------------------------------------------------------===//

#ifndef AWDIT_IO_DBCOP_FORMAT_H
#define AWDIT_IO_DBCOP_FORMAT_H

#include "history/history.h"

#include <optional>
#include <string>
#include <string_view>

namespace awdit {

/// Parses the DBCop-style block format.
std::optional<History> parseDbcopHistory(std::string_view Text,
                                         std::string *Err = nullptr);

/// Serializes \p H in the DBCop-style block format.
std::string writeDbcopHistory(const History &H);

} // namespace awdit

#endif // AWDIT_IO_DBCOP_FORMAT_H
