//===- io/sharded_ingest.h - Multi-core sharded monitor ingest ---*- C++ -*-===//
//
// Part of the AWDIT reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The multi-core ingest pipeline of `awdit monitor`: one live stream is
/// spread over all cores while the checking semantics stay exactly those of
/// the single-threaded Monitor — reports are bit-identical at every flush
/// cadence and window size (enforced by tests/test_sharded_monitor.cpp and
/// the CI ThreadSanitizer job).
///
/// With the delta-driven saturation engine (PR 3) flush cost is flat in the
/// window size, which leaves tokenization and integer parsing — the
/// context-free half of every format parser (io/stream_parser.h) — as the
/// dominant per-byte cost of a live stream. That half is exactly what the
/// pipeline shards:
///
///    reader (caller thread)                 shard workers          applier
///    ┌────────────────────┐   SPSC    ┌───────────────────┐  SPSC  ┌─────┐
///    │ split stream into  │ ────────▶ │ decode lines into │ ─────▶ │apply│
///    │ whole-line batches │  queues   │ LineEvents        │ queues │to   │
///    │ (round-robin)      │ ────────▶ │ (stateless, any   │ ─────▶ │Moni-│
///    └────────────────────┘           │ order)            │        │tor  │
///                                     └───────────────────┘        └─────┘
///
///  - The reader owns the byte stream: it cuts it into batches of whole
///    lines (cheap newline scanning only) and deals them round-robin onto
///    per-shard SPSC queues (support/spsc_queue.h).
///  - Each shard worker runs the format's context-free decoder over its
///    batches — all the tokenizing/number-parsing work — independently and
///    in parallel.
///  - The applier thread restores the global stream order (batches are
///    popped round-robin, mirroring the deal) and feeds the decoded events
///    through the format's StreamMachine into the one merged Monitor. All
///    stateful work — wr resolution, saturation deltas, flushes, eviction
///    — happens here, on one thread, exactly as in the single-threaded
///    path; that is what makes the output bit-identical by construction.
///  - Since PR 6 the checking half of each flush is offloaded too: the
///    pipeline installs a worker pool into the Monitor
///    (Monitor::setSpeculation), and at every flush barrier the pool's
///    workers speculatively compute the CC happens-before/inference delta
///    against a read-only snapshot of the pre-merge rows. The applier then
///    merges the speculative results in deterministic stream order,
///    falling back to sequential re-derivation for exactly the
///    transactions whose inputs an earlier merge step invalidated
///    (support/epoch_snapshot.h is the validation oracle) — so the output
///    stays bit-identical at every thread count, now enforced by CI
///    rather than purely by construction.
///
/// Flush boundaries are the pipeline's epoch barriers: after every
/// incremental checking pass the applier invokes the FlushHook with a
/// consistent cut of the world (monitor state, parser-machine state, and
/// the byte offset of the last applied line). Persistent checkpoints
/// (checker/checkpoint.h) are written from this hook, so a snapshot can
/// never observe a half-applied transaction or a half-run flush.
///
/// Threads <= 1 selects the legacy single-threaded path: the same split /
/// decode / apply code runs inline on the caller thread, no queues, no
/// threads — `awdit monitor --threads 1`.
///
//===----------------------------------------------------------------------===//

#ifndef AWDIT_IO_SHARDED_INGEST_H
#define AWDIT_IO_SHARDED_INGEST_H

#include "io/stream_parser.h"
#include "support/byte_arena.h"
#include "support/spsc_queue.h"

#include <atomic>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

namespace awdit {

class ThreadPool;

/// A consistent cut of the ingest state at a flush boundary, handed to the
/// FlushHook on the applier thread. Everything a persistent checkpoint
/// needs: the monitor, the parser-machine state, and the exact stream
/// position (byte offset after the last applied line).
struct IngestFlushPoint {
  Monitor &M;
  const StreamMachine &Machine;
  /// Bytes of the stream fully applied (resume seeks here).
  uint64_t StreamOffset;
  /// 1-based number of the last applied line.
  uint64_t LineNo;
  /// Committed transactions applied so far.
  uint64_t CommittedTxns;
  /// Monitor checking passes run so far.
  uint64_t Flushes;
};

/// Drives one Monitor from one byte stream using 1 reader + N shard
/// workers + 1 applier (or everything inline when Threads <= 1). Exactly
/// one thread (the owner) may call feed()/finishStream()/abortStream();
/// the Monitor must not be touched by the owner between the first feed()
/// and the return of finishStream()/abortStream().
class ShardedMonitorIngest {
public:
  /// How the stream ended.
  enum class EndState : uint8_t {
    /// Clean end of input at a transaction boundary.
    Clean,
    /// Input ended inside an open transaction (tail-mode truncation); the
    /// monitor's finalize() treats it as aborted.
    OpenTxn,
    /// A parse or model-invariant error; errorText() has the line-numbered
    /// message.
    Error,
  };

  using FlushHook = std::function<void(const IngestFlushPoint &)>;

  /// \p Threads counts the extra threads the pipeline may spawn: 0 or 1
  /// runs inline (the legacy single-threaded path); N >= 2 spawns one
  /// applier and N-1 shard workers. \p Hook (optional) runs on the applier
  /// thread after every completed checking pass.
  ShardedMonitorIngest(Monitor &M, const std::string &Format,
                       unsigned Threads, FlushHook Hook = nullptr);
  ~ShardedMonitorIngest();

  ShardedMonitorIngest(const ShardedMonitorIngest &) = delete;
  ShardedMonitorIngest &operator=(const ShardedMonitorIngest &) = delete;

  /// False iff the format was unknown.
  bool valid() const { return Decode != nullptr; }

  /// The format state machine, for loading checkpointed state before the
  /// first feed() (resume) and for inspection after the stream ends.
  StreamMachine &machine() { return *Machine; }

  /// Primes the stream cursor after a checkpoint restore: the next fed
  /// byte is stream offset \p StreamOffset, the next line is
  /// \p LineNo + 1. Call before the first feed().
  void primeResume(uint64_t StreamOffset, uint64_t LineNo);

  /// Feeds one chunk (any size, any boundary) — one copy, into the arena.
  /// Returns false once the pipeline has failed — the caller should stop
  /// reading and call finishStream() to collect the error.
  bool feed(std::string_view Chunk);

  /// Zero-copy alternative to feed(): at least \p Min writable bytes of
  /// the current arena page, so a read(2) can land stream bytes directly
  /// where the shard workers will decode them. Publish with commitBytes();
  /// any other call on this object invalidates the window.
  std::pair<char *, size_t> writeWindow(size_t Min = 1) {
    return Writer.window(Min);
  }

  /// Publishes \p N bytes read into the last writeWindow() and deals the
  /// completed lines. Same return contract as feed().
  bool commitBytes(size_t N);

  /// Zero-copy feed of whole lines already resident in a shared arena
  /// page (the server's per-connection read buffers): every line in
  /// \p Span must end in '\n'. If a prior feed() left a partial line
  /// buffered, the span is copied in behind it instead — correctness
  /// never depends on the caller's framing.
  bool feedSpan(PageSpan Span);

  /// End of input: flushes the trailing partial line, drains and joins the
  /// pipeline, and runs the format's end-of-input hook. After this call
  /// the owner thread has exclusive access to the Monitor again.
  EndState finishStream();

  /// Interrupt (SIGINT) path: drains and joins the pipeline without
  /// end-of-input processing — everything already read is applied, the
  /// trailing partial line is dropped, open transactions are left to
  /// finalize(). After this call the Monitor is the owner's again.
  void abortStream();

  // --- Valid after finishStream()/abortStream(). ---

  /// The line-numbered error message, empty if none.
  const std::string &errorText() const { return ErrText; }

  /// 1-based number of the last processed line.
  uint64_t lineNumber() const { return Applier.LineNo; }

  /// Byte offset after the last applied line.
  uint64_t streamOffset() const { return Applier.Offset; }

  /// Committed transactions applied.
  uint64_t committedTxns() const { return Machine->committedTxns(); }

private:
  /// A batch of whole lines as a refcounted span of an arena page —
  /// verbatim stream bytes, zero-copy from the reader's buffer to the
  /// shard worker (every line keeps its '\n'; only the final flushed
  /// partial line may lack one).
  struct RawBatch {
    PageSpan Span;
  };

  /// One decoded line and the stream bytes it consumed.
  struct DecodedLine {
    LineEvent E;
    uint32_t ByteLen;
  };

  struct DecodedBatch {
    std::vector<DecodedLine> Lines;
  };

  /// Applier-side cursor and failure state. Written by the applier thread
  /// (or inline in synchronous mode), read by the owner after the join.
  struct ApplierState {
    uint64_t Offset = 0;
    uint64_t LineNo = 0;
    uint64_t LastFlushes = 0;
    bool Failed = false;
    std::string Error; // without the "line N: " prefix
    uint64_t ErrorLine = 0;
  };

  void startThreads();
  void workerLoop(size_t Shard);
  void applierLoop();
  /// Decodes one raw batch (worker side; pure).
  DecodedBatch decodeBatch(const RawBatch &Raw) const;
  /// Applies one decoded batch in stream order (applier side).
  void applyBatch(const DecodedBatch &Batch);
  void applyLine(const DecodedLine &L);
  /// Cuts the arena's pending bytes into batches of whole lines and deals
  /// them.
  void dealPending(bool Final);
  /// Deals one span of whole lines, cutting at ~BatchBytes boundaries.
  void dealSpan(PageSpan Span);
  void closeAndJoin();

  Monitor &M;
  LineDecoder Decode;
  std::unique_ptr<StreamMachine> Machine;
  FlushHook Hook;

  /// Speculation executor handed to the Monitor for the checking half of
  /// each flush (threaded mode only). Owned here so its lifetime matches
  /// the pipeline's; the Monitor is detached before destruction.
  std::unique_ptr<ThreadPool> SpecPool;

  /// Shard workers (empty in synchronous mode).
  size_t NumShards = 0;
  std::vector<std::unique_ptr<SpscQueue<RawBatch>>> ToShard;
  std::vector<std::unique_ptr<SpscQueue<DecodedBatch>>> ToApplier;
  std::vector<std::thread> Workers;
  std::thread ApplierThread;
  bool Joined = true;

  /// Reader-side byte staging: stream bytes land here once (by copy in
  /// feed(), or directly via writeWindow()) and leave as refcounted
  /// whole-line spans. The un-dealt tail is at most one partial line.
  ArenaWriter Writer{PageBytes};
  uint64_t NextShard = 0;   // reader's deal cursor
  uint64_t ApplyShard = 0;  // applier's merge cursor (mirrors the deal)

  /// Set by the applier on the first error; the reader polls it to stop
  /// early. The error text itself travels through ApplierState after the
  /// join (single-writer, read-after-join).
  std::atomic<bool> FailedFlag{false};

  ApplierState Applier;
  std::string ErrText;
  bool Finished = false;

  /// Batch sizing: large enough that queue traffic is noise, small enough
  /// that the pipeline stays busy on modest streams.
  static constexpr size_t BatchBytes = 16 << 10;
  static constexpr size_t QueueDepth = 32;
  /// Arena page size: several batches per page so span refcounting is
  /// cheap relative to the bytes it manages.
  static constexpr size_t PageBytes = 256 << 10;
};

} // namespace awdit

#endif // AWDIT_IO_SHARDED_INGEST_H
