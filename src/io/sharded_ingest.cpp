//===- io/sharded_ingest.cpp - Multi-core sharded monitor ingest -----------===//

#include "io/sharded_ingest.h"

#include "support/thread_pool.h"

using namespace awdit;

ShardedMonitorIngest::ShardedMonitorIngest(Monitor &M,
                                           const std::string &Format,
                                           unsigned Threads, FlushHook Hook)
    : M(M), Decode(lineDecoderFor(Format)),
      Machine(makeStreamMachine(Format, M)), Hook(std::move(Hook)) {
  if (!Decode)
    return;
  Applier.LastFlushes = M.flushCount();
  if (Threads >= 2) {
    NumShards = Threads - 1;
    // The shard workers' decode load leaves them mostly idle at flush
    // barriers, so the same thread budget drives the speculative checking
    // offload: the applier's flushDelta fans row/inference speculation out
    // over this pool and merges deterministically (bit-identical output —
    // see checker/saturation_state.h).
    SpecPool = std::make_unique<ThreadPool>(NumShards);
    M.setSpeculation(SpecPool.get());
    startThreads();
  }
}

ShardedMonitorIngest::~ShardedMonitorIngest() {
  closeAndJoin();
  if (SpecPool)
    M.setSpeculation(nullptr);
}

void ShardedMonitorIngest::startThreads() {
  ToShard.reserve(NumShards);
  ToApplier.reserve(NumShards);
  for (size_t I = 0; I < NumShards; ++I) {
    ToShard.push_back(std::make_unique<SpscQueue<RawBatch>>(QueueDepth));
    ToApplier.push_back(
        std::make_unique<SpscQueue<DecodedBatch>>(QueueDepth));
  }
  Joined = false;
  for (size_t I = 0; I < NumShards; ++I)
    Workers.emplace_back([this, I] { workerLoop(I); });
  ApplierThread = std::thread([this] { applierLoop(); });
}

void ShardedMonitorIngest::primeResume(uint64_t StreamOffset,
                                       uint64_t LineNo) {
  Applier.Offset = StreamOffset;
  Applier.LineNo = LineNo;
  Applier.LastFlushes = M.flushCount();
}

//===----------------------------------------------------------------------===//
// Reader side: line assembly and the round-robin deal.
//===----------------------------------------------------------------------===//

bool ShardedMonitorIngest::feed(std::string_view Chunk) {
  if (!valid() || Finished)
    return false;
  if (FailedFlag.load(std::memory_order_acquire))
    return false;
  size_t LastNl = Chunk.rfind('\n');
  if (LastNl == std::string_view::npos) {
    Partial.append(Chunk);
    return true;
  }
  // Everything up to (and including) the last newline is whole lines; the
  // tail starts the next partial line.
  if (!Partial.empty()) {
    Pending += Partial;
    Partial.clear();
  }
  Pending.append(Chunk.substr(0, LastNl + 1));
  Partial.assign(Chunk.substr(LastNl + 1));
  dealPending(/*Final=*/false);
  return !FailedFlag.load(std::memory_order_acquire);
}

void ShardedMonitorIngest::dealPending(bool Final) {
  if (Final && !Partial.empty()) {
    // The unterminated trailing line still gets processed: it may hold the
    // directive that closes the last transaction.
    Pending += Partial;
    Partial.clear();
  }

  if (NumShards == 0) {
    // Synchronous mode: decode and apply inline, one code path with the
    // threaded pipeline.
    if (!Pending.empty()) {
      RawBatch Raw;
      Raw.Buf.swap(Pending);
      applyBatch(decodeBatch(Raw));
    }
    return;
  }

  // Deal everything that is whole lines right now, cut into batches of at
  // most ~BatchBytes, round-robin. Nothing is held back waiting for a
  // fuller batch: a trickling tail (`tail -f | awdit monitor -`) must
  // reach the applier — and emit its violations — with the same liveness
  // as the single-threaded path. Steady streams arrive in large read
  // chunks, so their batches are naturally full.
  size_t Pos = 0;
  while (Pos < Pending.size()) {
    size_t End;
    if (Pending.size() - Pos > BatchBytes) {
      End = Pending.find('\n', Pos + BatchBytes - 1);
      if (End == std::string::npos)
        End = Pending.size() - 1; // Final tail without newline
    } else {
      End = Pending.size() - 1; // non-Final Pending always ends in '\n'
    }
    RawBatch Raw;
    Raw.Buf.assign(Pending, Pos, End - Pos + 1);
    Pos = End + 1;
    ToShard[NextShard % NumShards]->push(std::move(Raw));
    ++NextShard;
  }
  Pending.clear();
}

//===----------------------------------------------------------------------===//
// Shard workers: context-free decoding, any order.
//===----------------------------------------------------------------------===//

ShardedMonitorIngest::DecodedBatch
ShardedMonitorIngest::decodeBatch(const RawBatch &Raw) const {
  DecodedBatch Out;
  std::string_view Buf = Raw.Buf;
  size_t Pos = 0;
  while (Pos < Buf.size()) {
    size_t End = Buf.find('\n', Pos);
    size_t LineEnd = End == std::string_view::npos ? Buf.size() : End;
    std::string_view Line = Buf.substr(Pos, LineEnd - Pos);
    uint32_t ByteLen = static_cast<uint32_t>(
        LineEnd - Pos + (End == std::string_view::npos ? 0 : 1));
    // Trim a trailing CR for Windows-style streams (the byte still counts
    // toward the stream offset).
    if (!Line.empty() && Line.back() == '\r')
      Line.remove_suffix(1);
    Out.Lines.push_back({Decode(Line), ByteLen});
    Pos = LineEnd + 1;
  }
  return Out;
}

void ShardedMonitorIngest::workerLoop(size_t Shard) {
  RawBatch Raw;
  while (ToShard[Shard]->pop(Raw))
    ToApplier[Shard]->push(decodeBatch(Raw));
  ToApplier[Shard]->close();
}

//===----------------------------------------------------------------------===//
// Applier: global order restored, the one thread that owns the Monitor.
//===----------------------------------------------------------------------===//

void ShardedMonitorIngest::applyLine(const DecodedLine &L) {
  ++Applier.LineNo;
  Applier.Offset += L.ByteLen;
  if (Applier.Failed)
    return; // drain without applying; the parser is wedged
  std::string Msg;
  if (!Machine->apply(L.E, &Msg)) {
    Applier.Failed = true;
    Applier.Error = std::move(Msg);
    Applier.ErrorLine = Applier.LineNo;
    FailedFlag.store(true, std::memory_order_release);
    return;
  }
  uint64_t F = M.flushCount();
  if (F != Applier.LastFlushes) {
    // A checking pass completed inside this commit: an epoch barrier. The
    // hook sees a fully consistent state — monitor, machine, and stream
    // cursor all agree on "everything through this line".
    Applier.LastFlushes = F;
    if (Hook)
      Hook(IngestFlushPoint{M, *Machine, Applier.Offset, Applier.LineNo,
                            Machine->committedTxns(), F});
  }
}

void ShardedMonitorIngest::applyBatch(const DecodedBatch &Batch) {
  for (const DecodedLine &L : Batch.Lines)
    applyLine(L);
}

void ShardedMonitorIngest::applierLoop() {
  DecodedBatch Batch;
  // Pop in the exact order the reader dealt: round-robin over the shards.
  // The first closed-and-drained queue ends the stream — the deal is
  // sequential, so no later batch can exist once a slot comes up empty.
  while (ToApplier[ApplyShard % NumShards]->pop(Batch)) {
    applyBatch(Batch);
    ++ApplyShard;
  }
}

//===----------------------------------------------------------------------===//
// Stream end.
//===----------------------------------------------------------------------===//

void ShardedMonitorIngest::closeAndJoin() {
  if (Joined) {
    if (Applier.Failed && ErrText.empty())
      ErrText = "line " + std::to_string(Applier.ErrorLine) + ": " +
                Applier.Error;
    return;
  }
  for (auto &Q : ToShard)
    Q->close();
  for (std::thread &W : Workers)
    W.join();
  ApplierThread.join();
  Workers.clear();
  Joined = true;
  if (Applier.Failed && ErrText.empty())
    ErrText = "line " + std::to_string(Applier.ErrorLine) + ": " +
              Applier.Error;
}

ShardedMonitorIngest::EndState ShardedMonitorIngest::finishStream() {
  if (!Finished) {
    Finished = true;
    dealPending(/*Final=*/true);
    closeAndJoin();
  }
  if (Applier.Failed)
    return EndState::Error;
  if (Machine->hasOpenTxn())
    return EndState::OpenTxn;
  std::string Msg;
  if (!Machine->atEnd(&Msg)) {
    Applier.Failed = true;
    Applier.Error = Msg;
    Applier.ErrorLine = Applier.LineNo;
    ErrText = "line " + std::to_string(Applier.LineNo) + ": " + Msg;
    return EndState::Error;
  }
  // atEnd may close a trailing transaction (plume) and trigger a final
  // cadence flush; surface it to the hook like any other epoch barrier.
  uint64_t F = M.flushCount();
  if (F != Applier.LastFlushes) {
    Applier.LastFlushes = F;
    if (Hook)
      Hook(IngestFlushPoint{M, *Machine, Applier.Offset, Applier.LineNo,
                            Machine->committedTxns(), F});
  }
  return EndState::Clean;
}

void ShardedMonitorIngest::abortStream() {
  if (Finished) {
    closeAndJoin();
    return;
  }
  Finished = true;
  // Drop the unterminated tail; ship what is already whole lines so the
  // interrupt loses nothing that was actually read.
  Partial.clear();
  dealPending(/*Final=*/true);
  closeAndJoin();
}
