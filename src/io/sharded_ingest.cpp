//===- io/sharded_ingest.cpp - Multi-core sharded monitor ingest -----------===//

#include "io/sharded_ingest.h"

#include "io/token_util.h"
#include "obs/histogram.h"
#include "obs/trace.h"
#include "support/thread_pool.h"

using namespace awdit;

namespace {

/// Enqueue with backpressure metering: the fast path is one tryPush; only
/// when the queue is actually full does the blocking push run under a
/// queue-wait timer. Depth is sampled after the enqueue (batch granularity
/// — a few samples per 16KiB of stream, invisible in profiles).
template <typename T> void pushMetered(SpscQueue<T> &Q, T &&Value) {
  if (!Q.tryPush(std::move(Value))) {
    obs::ScopedLatency Wait(obs::metrics().IngestQueueWait);
    Q.push(std::move(Value));
  }
  size_t Depth = Q.size();
  obs::metrics().IngestQueueDepth.record(Depth);
  obs::traceCounter("ingest.queue_depth", static_cast<double>(Depth));
}

} // namespace

ShardedMonitorIngest::ShardedMonitorIngest(Monitor &M,
                                           const std::string &Format,
                                           unsigned Threads, FlushHook Hook)
    : M(M), Decode(lineDecoderFor(Format)),
      Machine(makeStreamMachine(Format, M)), Hook(std::move(Hook)) {
  if (!Decode)
    return;
  Applier.LastFlushes = M.flushCount();
  if (Threads >= 2) {
    NumShards = Threads - 1;
    // The shard workers' decode load leaves them mostly idle at flush
    // barriers, so the same thread budget drives the speculative checking
    // offload: the applier's flushDelta fans row/inference speculation out
    // over this pool and merges deterministically (bit-identical output —
    // see checker/saturation_state.h).
    SpecPool = std::make_unique<ThreadPool>(NumShards);
    M.setSpeculation(SpecPool.get());
    startThreads();
  }
}

ShardedMonitorIngest::~ShardedMonitorIngest() {
  closeAndJoin();
  if (SpecPool)
    M.setSpeculation(nullptr);
}

void ShardedMonitorIngest::startThreads() {
  ToShard.reserve(NumShards);
  ToApplier.reserve(NumShards);
  for (size_t I = 0; I < NumShards; ++I) {
    ToShard.push_back(std::make_unique<SpscQueue<RawBatch>>(QueueDepth));
    ToApplier.push_back(
        std::make_unique<SpscQueue<DecodedBatch>>(QueueDepth));
  }
  Joined = false;
  for (size_t I = 0; I < NumShards; ++I)
    Workers.emplace_back([this, I] { workerLoop(I); });
  ApplierThread = std::thread([this] { applierLoop(); });
}

void ShardedMonitorIngest::primeResume(uint64_t StreamOffset,
                                       uint64_t LineNo) {
  Applier.Offset = StreamOffset;
  Applier.LineNo = LineNo;
  Applier.LastFlushes = M.flushCount();
}

//===----------------------------------------------------------------------===//
// Reader side: line assembly and the round-robin deal.
//===----------------------------------------------------------------------===//

bool ShardedMonitorIngest::feed(std::string_view Chunk) {
  if (!valid() || Finished)
    return false;
  if (FailedFlag.load(std::memory_order_acquire))
    return false;
  Writer.append(Chunk);
  dealPending(/*Final=*/false);
  return !FailedFlag.load(std::memory_order_acquire);
}

bool ShardedMonitorIngest::commitBytes(size_t N) {
  if (!valid() || Finished)
    return false;
  if (FailedFlag.load(std::memory_order_acquire))
    return false;
  Writer.commit(N);
  dealPending(/*Final=*/false);
  return !FailedFlag.load(std::memory_order_acquire);
}

bool ShardedMonitorIngest::feedSpan(PageSpan Span) {
  if (!valid() || Finished)
    return false;
  if (FailedFlag.load(std::memory_order_acquire))
    return false;
  if (Span.size() == 0)
    return true;
  std::string_view V = Span.view();
  if (Writer.pendingBytes() != 0 || V.back() != '\n') {
    // A previous feed() left a partial line staged (or the caller broke
    // the whole-lines contract): fall back to the copy-in path so line
    // assembly stays correct — zero-copy is an optimization, never a
    // framing requirement.
    Writer.append(V);
    dealPending(/*Final=*/false);
  } else {
    dealSpan(std::move(Span));
  }
  return !FailedFlag.load(std::memory_order_acquire);
}

void ShardedMonitorIngest::dealPending(bool Final) {
  std::string_view Pending = Writer.pending();
  size_t DealLen;
  if (Final) {
    // The unterminated trailing line still gets processed: it may hold the
    // directive that closes the last transaction.
    DealLen = Pending.size();
  } else {
    size_t LastNl = Pending.rfind('\n');
    if (LastNl == std::string_view::npos)
      return; // only a partial line staged — wait for its newline
    DealLen = LastNl + 1;
  }
  if (DealLen == 0)
    return;
  dealSpan(Writer.take(DealLen));
}

void ShardedMonitorIngest::dealSpan(PageSpan Span) {
  if (NumShards == 0) {
    // Synchronous mode: decode and apply inline, one code path with the
    // threaded pipeline.
    applyBatch(decodeBatch(RawBatch{std::move(Span)}));
    return;
  }

  // Deal the span's whole lines, cut into batches of at most ~BatchBytes,
  // round-robin. Nothing is held back waiting for a fuller batch: a
  // trickling tail (`tail -f | awdit monitor -`) must reach the applier —
  // and emit its violations — with the same liveness as the
  // single-threaded path. Steady streams arrive in large read chunks, so
  // their batches are naturally full. Each cut is a sub-span of the same
  // page: the bytes never move, only refcounts do.
  AWDIT_SPAN("ingest.read");
  obs::ScopedLatency Lat(
      obs::metrics().IngestStages[unsigned(obs::IngestStage::Reader)]);
  std::string_view V = Span.view();
  size_t Pos = 0;
  while (Pos < V.size()) {
    size_t End;
    if (V.size() - Pos > BatchBytes) {
      size_t Nl = io::scanToNewline(V, Pos + BatchBytes - 1);
      End = std::min(Nl, V.size() - 1); // Final tail may lack a newline
    } else {
      End = V.size() - 1;
    }
    RawBatch Raw{PageSpan{Span.Page, Span.Begin + Pos, Span.Begin + End + 1}};
    Pos = End + 1;
    pushMetered(*ToShard[NextShard % NumShards], std::move(Raw));
    ++NextShard;
  }
}

//===----------------------------------------------------------------------===//
// Shard workers: context-free decoding, any order.
//===----------------------------------------------------------------------===//

ShardedMonitorIngest::DecodedBatch
ShardedMonitorIngest::decodeBatch(const RawBatch &Raw) const {
  DecodedBatch Out;
  std::string_view Buf = Raw.Span.view();
  size_t Pos = 0;
  while (Pos < Buf.size()) {
    size_t LineEnd = io::scanToNewline(Buf, Pos);
    std::string_view Line = Buf.substr(Pos, LineEnd - Pos);
    uint32_t ByteLen = static_cast<uint32_t>(
        LineEnd - Pos + (LineEnd == Buf.size() ? 0 : 1));
    // Trim a trailing CR for Windows-style streams (the byte still counts
    // toward the stream offset).
    if (!Line.empty() && Line.back() == '\r')
      Line.remove_suffix(1);
    Out.Lines.push_back({Decode(Line), ByteLen});
    Pos = LineEnd + 1;
  }
  return Out;
}

void ShardedMonitorIngest::workerLoop(size_t Shard) {
  obs::setTraceThreadName("shard-" + std::to_string(Shard));
  RawBatch Raw;
  while (ToShard[Shard]->pop(Raw)) {
    DecodedBatch Decoded;
    {
      AWDIT_SPAN("ingest.decode");
      obs::ScopedLatency Lat(
          obs::metrics().IngestStages[unsigned(obs::IngestStage::Decode)]);
      Decoded = decodeBatch(Raw);
    }
    pushMetered(*ToApplier[Shard], std::move(Decoded));
  }
  ToApplier[Shard]->close();
}

//===----------------------------------------------------------------------===//
// Applier: global order restored, the one thread that owns the Monitor.
//===----------------------------------------------------------------------===//

void ShardedMonitorIngest::applyLine(const DecodedLine &L) {
  ++Applier.LineNo;
  Applier.Offset += L.ByteLen;
  if (Applier.Failed)
    return; // drain without applying; the parser is wedged
  std::string Msg;
  if (!Machine->apply(L.E, &Msg)) {
    Applier.Failed = true;
    Applier.Error = std::move(Msg);
    Applier.ErrorLine = Applier.LineNo;
    FailedFlag.store(true, std::memory_order_release);
    return;
  }
  uint64_t F = M.flushCount();
  if (F != Applier.LastFlushes) {
    // A checking pass completed inside this commit: an epoch barrier. The
    // hook sees a fully consistent state — monitor, machine, and stream
    // cursor all agree on "everything through this line".
    Applier.LastFlushes = F;
    if (Hook)
      Hook(IngestFlushPoint{M, *Machine, Applier.Offset, Applier.LineNo,
                            Machine->committedTxns(), F});
  }
}

void ShardedMonitorIngest::applyBatch(const DecodedBatch &Batch) {
  AWDIT_SPAN("ingest.apply");
  obs::ScopedLatency Lat(
      obs::metrics().IngestStages[unsigned(obs::IngestStage::Apply)]);
  for (const DecodedLine &L : Batch.Lines)
    applyLine(L);
}

void ShardedMonitorIngest::applierLoop() {
  obs::setTraceThreadName("applier");
  DecodedBatch Batch;
  // Pop in the exact order the reader dealt: round-robin over the shards.
  // The first closed-and-drained queue ends the stream — the deal is
  // sequential, so no later batch can exist once a slot comes up empty.
  while (ToApplier[ApplyShard % NumShards]->pop(Batch)) {
    applyBatch(Batch);
    ++ApplyShard;
  }
}

//===----------------------------------------------------------------------===//
// Stream end.
//===----------------------------------------------------------------------===//

void ShardedMonitorIngest::closeAndJoin() {
  if (Joined) {
    if (Applier.Failed && ErrText.empty())
      ErrText = "line " + std::to_string(Applier.ErrorLine) + ": " +
                Applier.Error;
    return;
  }
  for (auto &Q : ToShard)
    Q->close();
  for (std::thread &W : Workers)
    W.join();
  ApplierThread.join();
  Workers.clear();
  Joined = true;
  if (Applier.Failed && ErrText.empty())
    ErrText = "line " + std::to_string(Applier.ErrorLine) + ": " +
              Applier.Error;
}

ShardedMonitorIngest::EndState ShardedMonitorIngest::finishStream() {
  if (!Finished) {
    Finished = true;
    dealPending(/*Final=*/true);
    closeAndJoin();
  }
  if (Applier.Failed)
    return EndState::Error;
  if (Machine->hasOpenTxn())
    return EndState::OpenTxn;
  std::string Msg;
  if (!Machine->atEnd(&Msg)) {
    Applier.Failed = true;
    Applier.Error = Msg;
    Applier.ErrorLine = Applier.LineNo;
    ErrText = "line " + std::to_string(Applier.LineNo) + ": " + Msg;
    return EndState::Error;
  }
  // atEnd may close a trailing transaction (plume) and trigger a final
  // cadence flush; surface it to the hook like any other epoch barrier.
  uint64_t F = M.flushCount();
  if (F != Applier.LastFlushes) {
    Applier.LastFlushes = F;
    if (Hook)
      Hook(IngestFlushPoint{M, *Machine, Applier.Offset, Applier.LineNo,
                            Machine->committedTxns(), F});
  }
  return EndState::Clean;
}

void ShardedMonitorIngest::abortStream() {
  if (Finished) {
    closeAndJoin();
    return;
  }
  Finished = true;
  // Ship what is already whole lines so the interrupt loses nothing that
  // was actually read; the unterminated tail stays behind in the arena,
  // dropped with it.
  dealPending(/*Final=*/false);
  closeAndJoin();
}
