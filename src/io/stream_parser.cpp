//===- io/stream_parser.cpp - Streaming native-format parser ---------------===//

#include "io/stream_parser.h"

#include <charconv>
#include <vector>

using namespace awdit;

namespace {

std::vector<std::string_view> tokenize(std::string_view Line) {
  std::vector<std::string_view> Tokens;
  size_t I = 0;
  while (I < Line.size()) {
    while (I < Line.size() && (Line[I] == ' ' || Line[I] == '\t'))
      ++I;
    size_t Start = I;
    while (I < Line.size() && Line[I] != ' ' && Line[I] != '\t')
      ++I;
    if (I > Start)
      Tokens.push_back(Line.substr(Start, I - Start));
  }
  return Tokens;
}

template <typename IntT>
bool parseInt(std::string_view Token, IntT &Out) {
  auto [Ptr, Ec] =
      std::from_chars(Token.data(), Token.data() + Token.size(), Out);
  return Ec == std::errc() && Ptr == Token.data() + Token.size();
}

} // namespace

bool StreamingTextParser::fail(std::string *Err, const std::string &Msg) {
  Stuck = true;
  if (Err)
    *Err = "line " + std::to_string(LineNo) + ": " + Msg;
  return false;
}

bool StreamingTextParser::processLine(std::string_view Line,
                                      std::string *Err) {
  ++LineNo;
  // Trim a trailing CR for Windows-style streams.
  if (!Line.empty() && Line.back() == '\r')
    Line.remove_suffix(1);
  std::vector<std::string_view> Tok = tokenize(Line);
  if (Tok.empty() || Tok[0].front() == '#')
    return true;

  if (Tok[0] == "b") {
    if (HasOpenTxn)
      return fail(Err, "previous transaction still open");
    SessionId S;
    if (Tok.size() != 2 || !parseInt(Tok[1], S))
      return fail(Err, "expected 'b <session>'");
    while (NumSessions <= S) {
      M.addSession();
      ++NumSessions;
    }
    Open = M.beginTxn(S);
    HasOpenTxn = true;
    return true;
  }
  if (Tok[0] == "r" || Tok[0] == "w") {
    if (!HasOpenTxn)
      return fail(Err, "operation outside a transaction");
    Key K;
    Value V;
    if (Tok.size() != 3 || !parseInt(Tok[1], K) || !parseInt(Tok[2], V))
      return fail(Err, "expected '<r|w> <key> <value>'");
    if (Tok[0] == "r") {
      M.read(Open, K, V);
      return true;
    }
    if (!M.write(Open, K, V))
      return fail(Err, M.errorText());
    return true;
  }
  if (Tok[0] == "c" || Tok[0] == "a") {
    if (!HasOpenTxn)
      return fail(Err, "no open transaction to close");
    if (Tok[0] == "a") {
      M.abortTxn(Open);
    } else {
      M.commit(Open);
      ++Committed;
    }
    HasOpenTxn = false;
    return true;
  }
  return fail(Err, "unknown directive '" + std::string(Tok[0]) + "'");
}

bool StreamingTextParser::feed(std::string_view Chunk, std::string *Err) {
  if (Stuck)
    return fail(Err, "parser stopped after an earlier error");
  size_t Pos = 0;
  while (Pos < Chunk.size()) {
    size_t End = Chunk.find('\n', Pos);
    if (End == std::string_view::npos) {
      Partial.append(Chunk.substr(Pos));
      return true;
    }
    std::string_view Line;
    if (Partial.empty()) {
      Line = Chunk.substr(Pos, End - Pos);
    } else {
      Partial.append(Chunk.substr(Pos, End - Pos));
      Line = Partial;
    }
    bool Ok = processLine(Line, Err);
    Partial.clear();
    if (!Ok)
      return false;
    Pos = End + 1;
  }
  return true;
}

bool StreamingTextParser::finish(std::string *Err) {
  if (Stuck)
    return fail(Err, "parser stopped after an earlier error");
  if (!Partial.empty()) {
    std::string Line;
    Line.swap(Partial);
    if (!processLine(Line, Err))
      return false;
  }
  if (HasOpenTxn)
    return fail(Err, "unterminated transaction at end of input");
  return true;
}
