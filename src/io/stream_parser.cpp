//===- io/stream_parser.cpp - Streaming history-format parsers -------------===//

#include "io/stream_parser.h"

#include "io/token_util.h"

using namespace awdit;
using awdit::io::CsvCursor;
using awdit::io::parseInt;
using awdit::io::TokenCursor;

//===----------------------------------------------------------------------===//
// LineStreamParser: the shared chunking engine.
//===----------------------------------------------------------------------===//

bool LineStreamParser::fail(std::string *Err, const std::string &Msg) {
  Stuck = true;
  if (Err)
    *Err = "line " + std::to_string(LineNo) + ": " + Msg;
  return false;
}

bool LineStreamParser::dispatchLine(std::string_view Line, std::string *Err) {
  ++LineNo;
  // Trim a trailing CR for Windows-style streams.
  if (!Line.empty() && Line.back() == '\r')
    Line.remove_suffix(1);
  return processLine(Line, Err);
}

bool LineStreamParser::feed(std::string_view Chunk, std::string *Err) {
  if (Stuck)
    return fail(Err, "parser stopped after an earlier error");
  size_t Pos = 0;
  while (Pos < Chunk.size()) {
    size_t End = Chunk.find('\n', Pos);
    if (End == std::string_view::npos) {
      Partial.append(Chunk.substr(Pos));
      return true;
    }
    std::string_view Line;
    if (Partial.empty()) {
      Line = Chunk.substr(Pos, End - Pos);
    } else {
      Partial.append(Chunk.substr(Pos, End - Pos));
      Line = Partial;
    }
    bool Ok = dispatchLine(Line, Err);
    Partial.clear();
    if (!Ok)
      return false;
    Pos = End + 1;
  }
  return true;
}

bool LineStreamParser::flushPartialLine(std::string *Err) {
  if (Stuck)
    return fail(Err, "parser stopped after an earlier error");
  if (Partial.empty())
    return true;
  std::string Line;
  Line.swap(Partial);
  return dispatchLine(Line, Err);
}

bool LineStreamParser::finish(std::string *Err) {
  if (!flushPartialLine(Err))
    return false;
  return atEnd(Err);
}

//===----------------------------------------------------------------------===//
// Context-free line decoders: tokenization and integer parsing, the
// per-byte cost of ingestion, safe on any thread.
//===----------------------------------------------------------------------===//

namespace {

LineEvent malformed(std::string Msg) {
  LineEvent E;
  E.Kind = LineEvent::Type::Malformed;
  E.Error = std::move(Msg);
  return E;
}

} // namespace

LineEvent awdit::decodeNativeLine(std::string_view Line) {
  LineEvent E;
  TokenCursor C(Line);
  std::string_view Dir = C.next();
  if (Dir.empty() || Dir.front() == '#')
    return E; // Blank

  if (Dir.size() == 1) {
    switch (Dir.front()) {
    case 'b':
      // A malformed session keeps the Begin kind: the machine's open-
      // transaction check takes precedence, as it did when parsing was
      // inline.
      E.Kind = LineEvent::Type::Begin;
      if (!C.nextInt(E.Session) || !C.atEnd())
        E.Error = "expected 'b <session>'";
      return E;
    case 'r':
    case 'w':
      E.Kind = Dir.front() == 'r' ? LineEvent::Type::ReadOp
                                  : LineEvent::Type::WriteOp;
      if (!C.nextInt(E.K) || !C.nextInt(E.V) || !C.atEnd())
        E.Error = "expected '<r|w> <key> <value>'";
      return E;
    case 'c':
    case 'a':
      E.Kind = Dir.front() == 'c' ? LineEvent::Type::Commit
                                  : LineEvent::Type::Abort;
      return E;
    case 't':
      // Streaming-only clock directive: advances the monitor's stream time
      // (age-based eviction, force-abort of hung transactions).
      E.Kind = LineEvent::Type::Clock;
      if (!C.nextInt(E.Num) || !C.atEnd())
        E.Error = "expected 't <ticks>'";
      return E;
    }
  }
  return malformed("unknown directive '" + std::string(Dir) + "'");
}

LineEvent awdit::decodePlumeLine(std::string_view Line) {
  LineEvent E;
  if (Line.empty() || Line.front() == '#')
    return E; // Blank

  CsvCursor C(Line);
  std::string_view Op;
  if (!C.nextInt(E.Session) || !C.nextInt(E.Num) || !C.next(Op))
    return malformed("expected '<session>,<txn>,...'");
  if (Op == "abort") {
    E.Kind = LineEvent::Type::PlumeAbort;
    return E;
  }
  // The (session, txn) prefix parsed: the machine opens the pair before a
  // malformed operation fails, matching the inline parser (which closed
  // the previous pair first).
  E.Kind = LineEvent::Type::PlumeOp;
  if (!C.nextInt(E.K) || !C.nextInt(E.V) || !C.atEnd() ||
      (Op != "r" && Op != "w")) {
    E.Error = "expected '<session>,<txn>,<r|w>,<key>,<value>'";
    return E;
  }
  E.Flag = Op == "r";
  return E;
}

LineEvent awdit::decodeDbcopLine(std::string_view Line) {
  LineEvent E;
  TokenCursor C(Line);
  std::string_view Dir = C.next();
  if (Dir.empty() || Dir.front() == '#')
    return E; // Blank

  if (Dir == "sessions") {
    E.Kind = LineEvent::Type::DbcopHeader;
    if (!C.nextInt(E.Num) || !C.atEnd())
      E.Error = "expected a single 'sessions <k>' header";
    return E;
  }
  if (Dir == "txn") {
    E.Kind = LineEvent::Type::DbcopTxn;
    int DoesCommit = 0;
    if (!C.nextInt(E.Session) || !C.nextInt(DoesCommit) ||
        !C.nextInt(E.Num) || (DoesCommit != 0 && DoesCommit != 1) ||
        !C.atEnd())
      E.Error = "expected 'txn <session> <0|1> <numops>'";
    E.Flag = DoesCommit == 1;
    return E;
  }
  if (Dir == "R" || Dir == "W") {
    E.Kind = Dir == "R" ? LineEvent::Type::ReadOp : LineEvent::Type::WriteOp;
    if (!C.nextInt(E.K) || !C.nextInt(E.V) || !C.atEnd())
      E.Error = "expected '<R|W> <key> <value>'";
    return E;
  }
  return malformed("unknown directive '" + std::string(Dir) + "'");
}

LineDecoder awdit::lineDecoderFor(const std::string &Format) {
  if (Format == "native")
    return decodeNativeLine;
  if (Format == "plume")
    return decodePlumeLine;
  if (Format == "dbcop")
    return decodeDbcopLine;
  return nullptr;
}

//===----------------------------------------------------------------------===//
// Stream machines: the stateful, single-threaded half.
//===----------------------------------------------------------------------===//

namespace {

bool failMsg(std::string *Err, std::string Msg) {
  if (Err)
    *Err = std::move(Msg);
  return false;
}

/// Native text format machine.
class NativeMachine final : public StreamMachine {
public:
  explicit NativeMachine(Monitor &M) : M(M) {}

  bool apply(const LineEvent &E, std::string *Err) override {
    switch (E.Kind) {
    case LineEvent::Type::Blank:
      return true;
    case LineEvent::Type::Begin:
      if (HasOpen)
        return failMsg(Err, "previous transaction still open");
      if (!E.Error.empty())
        return failMsg(Err, E.Error);
      while (NumSessions <= E.Session) {
        M.addSession();
        ++NumSessions;
      }
      Open = M.beginTxn(E.Session);
      HasOpen = true;
      return true;
    case LineEvent::Type::ReadOp:
    case LineEvent::Type::WriteOp:
      if (!HasOpen)
        return failMsg(Err, "operation outside a transaction");
      if (!E.Error.empty())
        return failMsg(Err, E.Error);
      if (E.Kind == LineEvent::Type::ReadOp) {
        M.read(Open, E.K, E.V);
        return true;
      }
      if (!M.write(Open, E.K, E.V))
        return failMsg(Err, M.errorText());
      return true;
    case LineEvent::Type::Commit:
    case LineEvent::Type::Abort:
      if (!HasOpen)
        return failMsg(Err, "no open transaction to close");
      if (E.Kind == LineEvent::Type::Abort) {
        M.abortTxn(Open);
      } else {
        M.commit(Open);
        ++Committed;
      }
      HasOpen = false;
      return true;
    case LineEvent::Type::Clock:
      if (!E.Error.empty())
        return failMsg(Err, E.Error);
      M.advanceTime(E.Num);
      return true;
    case LineEvent::Type::Malformed:
      return failMsg(Err, E.Error);
    default:
      return failMsg(Err, "unexpected event for the native format");
    }
  }

  bool atEnd(std::string *Err) override {
    if (HasOpen)
      return failMsg(Err, "unterminated transaction at end of input");
    return true;
  }

  bool hasOpenTxn() const override { return HasOpen; }
  uint64_t committedTxns() const override { return Committed; }

  void saveState(ByteWriter &W) const override {
    W.u64(NumSessions);
    W.boolean(HasOpen);
    W.u32(Open);
    W.u64(Committed);
  }

  bool loadState(ByteReader &R) override {
    NumSessions = R.u64();
    HasOpen = R.boolean();
    Open = R.u32();
    Committed = R.u64();
    return R.ok();
  }

private:
  Monitor &M;
  size_t NumSessions = 0;
  bool HasOpen = false;
  TxnId Open = NoTxn;
  uint64_t Committed = 0;
};

/// Plume-style CSV machine. Plume has no explicit commit marker: a pair is
/// closed (committing unless an abort line was seen) when the next
/// (session, txn) pair starts or the stream ends, so the stream is never
/// "inside" a transaction from the caller's point of view.
class PlumeMachine final : public StreamMachine {
public:
  explicit PlumeMachine(Monitor &M) : M(M) {}

  bool apply(const LineEvent &E, std::string *Err) override {
    switch (E.Kind) {
    case LineEvent::Type::Blank:
      return true;
    case LineEvent::Type::PlumeAbort:
      ensureOpen(E);
      // Deferred until the pair ends: the batch parser keeps appending
      // operations that follow an abort line for the same (session, txn)
      // pair to the aborted transaction, and the streaming parser must
      // produce the identical history.
      OpenAborted = true;
      return true;
    case LineEvent::Type::PlumeOp:
      ensureOpen(E);
      if (!E.Error.empty())
        return failMsg(Err, E.Error);
      if (E.Flag) {
        M.read(Open, E.K, E.V);
        return true;
      }
      if (!M.write(Open, E.K, E.V))
        return failMsg(Err, M.errorText());
      return true;
    case LineEvent::Type::Malformed:
      return failMsg(Err, E.Error);
    default:
      return failMsg(Err, "unexpected event for the plume format");
    }
  }

  bool atEnd(std::string *Err) override {
    (void)Err;
    closeOpen();
    return true;
  }

  bool hasOpenTxn() const override { return false; }
  uint64_t committedTxns() const override { return Committed; }

  void saveState(ByteWriter &W) const override {
    W.u64(NumSessions);
    W.boolean(HasOpen);
    W.boolean(OpenAborted);
    W.u32(OpenSession);
    W.u64(OpenFileTxn);
    W.u32(Open);
    W.u64(Committed);
  }

  bool loadState(ByteReader &R) override {
    NumSessions = R.u64();
    HasOpen = R.boolean();
    OpenAborted = R.boolean();
    OpenSession = R.u32();
    OpenFileTxn = R.u64();
    Open = R.u32();
    Committed = R.u64();
    return R.ok();
  }

private:
  void closeOpen() {
    if (!HasOpen)
      return;
    if (OpenAborted) {
      M.abortTxn(Open);
    } else {
      M.commit(Open);
      ++Committed;
    }
    HasOpen = false;
    OpenAborted = false;
  }

  /// Closes the previous pair and opens (E.Session, E.Num) if it is a new
  /// pair: Plume logs carry no commit marker.
  void ensureOpen(const LineEvent &E) {
    while (NumSessions <= E.Session) {
      M.addSession();
      ++NumSessions;
    }
    if (HasOpen && OpenSession == E.Session && OpenFileTxn == E.Num)
      return;
    closeOpen();
    Open = M.beginTxn(E.Session);
    HasOpen = true;
    OpenSession = E.Session;
    OpenFileTxn = E.Num;
  }

  Monitor &M;
  size_t NumSessions = 0;
  bool HasOpen = false;
  bool OpenAborted = false;
  SessionId OpenSession = 0;
  uint64_t OpenFileTxn = 0;
  TxnId Open = NoTxn;
  uint64_t Committed = 0;
};

/// DBCop-style block format machine. The commit decision is declared up
/// front, so a block closes the moment its last operation arrives.
class DbcopMachine final : public StreamMachine {
public:
  explicit DbcopMachine(Monitor &M) : M(M) {}

  bool apply(const LineEvent &E, std::string *Err) override {
    switch (E.Kind) {
    case LineEvent::Type::Blank:
      return true;
    case LineEvent::Type::DbcopHeader:
      if (SeenHeader || !E.Error.empty())
        return failMsg(Err, "expected a single 'sessions <k>' header");
      DeclaredSessions = E.Num;
      for (uint64_t I = 0; I < DeclaredSessions; ++I)
        M.addSession();
      SeenHeader = true;
      return true;
    case LineEvent::Type::DbcopTxn:
      if (!SeenHeader)
        return failMsg(Err, "missing 'sessions <k>' header");
      if (OpsLeft != 0)
        return failMsg(Err, "previous transaction is missing operations");
      if (!E.Error.empty() || E.Session >= DeclaredSessions)
        return failMsg(Err, "expected 'txn <session> <0|1> <numops>'");
      Open = M.beginTxn(E.Session);
      OpenCommits = E.Flag;
      OpsLeft = E.Num;
      if (OpsLeft == 0)
        closeBlock(); // an empty block closes immediately
      return true;
    case LineEvent::Type::ReadOp:
    case LineEvent::Type::WriteOp:
      if (!SeenHeader)
        return failMsg(Err, "missing 'sessions <k>' header");
      if (Open == NoTxn || OpsLeft == 0)
        return failMsg(Err, "operation outside a transaction block");
      if (!E.Error.empty())
        return failMsg(Err, E.Error);
      if (E.Kind == LineEvent::Type::ReadOp) {
        M.read(Open, E.K, E.V);
      } else if (!M.write(Open, E.K, E.V)) {
        return failMsg(Err, M.errorText());
      }
      if (--OpsLeft == 0)
        closeBlock(); // the commit decision was declared up front
      return true;
    case LineEvent::Type::Malformed:
      if (!SeenHeader)
        return failMsg(Err, "missing 'sessions <k>' header");
      return failMsg(Err, E.Error);
    default:
      return failMsg(Err, "unexpected event for the dbcop format");
    }
  }

  bool atEnd(std::string *Err) override {
    if (OpsLeft != 0)
      return failMsg(Err, "unexpected end of input inside a transaction");
    return true;
  }

  bool hasOpenTxn() const override { return OpsLeft != 0; }
  uint64_t committedTxns() const override { return Committed; }

  void saveState(ByteWriter &W) const override {
    W.boolean(SeenHeader);
    W.u64(DeclaredSessions);
    W.u32(Open);
    W.boolean(OpenCommits);
    W.u64(OpsLeft);
    W.u64(Committed);
  }

  bool loadState(ByteReader &R) override {
    SeenHeader = R.boolean();
    DeclaredSessions = R.u64();
    Open = R.u32();
    OpenCommits = R.boolean();
    OpsLeft = R.u64();
    Committed = R.u64();
    return R.ok();
  }

private:
  void closeBlock() {
    if (OpenCommits) {
      M.commit(Open);
      ++Committed;
    } else {
      M.abortTxn(Open);
    }
    Open = NoTxn;
  }

  Monitor &M;
  bool SeenHeader = false;
  uint64_t DeclaredSessions = 0;
  TxnId Open = NoTxn;
  bool OpenCommits = false;
  size_t OpsLeft = 0;
  uint64_t Committed = 0;
};

} // namespace

std::unique_ptr<StreamMachine>
awdit::makeStreamMachine(const std::string &Format, Monitor &M) {
  if (Format == "native")
    return std::make_unique<NativeMachine>(M);
  if (Format == "plume")
    return std::make_unique<PlumeMachine>(M);
  if (Format == "dbcop")
    return std::make_unique<DbcopMachine>(M);
  return nullptr;
}

//===----------------------------------------------------------------------===//
// Factory.
//===----------------------------------------------------------------------===//

std::unique_ptr<StreamParser> awdit::makeStreamParser(
    const std::string &Format, Monitor &M) {
  LineDecoder Decode = lineDecoderFor(Format);
  if (!Decode)
    return nullptr;
  return std::make_unique<MachineStreamParser>(Decode,
                                               makeStreamMachine(Format, M));
}
