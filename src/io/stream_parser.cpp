//===- io/stream_parser.cpp - Streaming history-format parsers -------------===//

#include "io/stream_parser.h"

#include "io/token_util.h"

#include <vector>

using namespace awdit;
using awdit::io::parseInt;
using awdit::io::splitCsv;
using awdit::io::tokenize;

//===----------------------------------------------------------------------===//
// LineStreamParser: the shared chunking engine.
//===----------------------------------------------------------------------===//

bool LineStreamParser::fail(std::string *Err, const std::string &Msg) {
  Stuck = true;
  if (Err)
    *Err = "line " + std::to_string(LineNo) + ": " + Msg;
  return false;
}

bool LineStreamParser::dispatchLine(std::string_view Line, std::string *Err) {
  ++LineNo;
  // Trim a trailing CR for Windows-style streams.
  if (!Line.empty() && Line.back() == '\r')
    Line.remove_suffix(1);
  return processLine(Line, Err);
}

bool LineStreamParser::feed(std::string_view Chunk, std::string *Err) {
  if (Stuck)
    return fail(Err, "parser stopped after an earlier error");
  size_t Pos = 0;
  while (Pos < Chunk.size()) {
    size_t End = Chunk.find('\n', Pos);
    if (End == std::string_view::npos) {
      Partial.append(Chunk.substr(Pos));
      return true;
    }
    std::string_view Line;
    if (Partial.empty()) {
      Line = Chunk.substr(Pos, End - Pos);
    } else {
      Partial.append(Chunk.substr(Pos, End - Pos));
      Line = Partial;
    }
    bool Ok = dispatchLine(Line, Err);
    Partial.clear();
    if (!Ok)
      return false;
    Pos = End + 1;
  }
  return true;
}

bool LineStreamParser::flushPartialLine(std::string *Err) {
  if (Stuck)
    return fail(Err, "parser stopped after an earlier error");
  if (Partial.empty())
    return true;
  std::string Line;
  Line.swap(Partial);
  return dispatchLine(Line, Err);
}

bool LineStreamParser::finish(std::string *Err) {
  if (!flushPartialLine(Err))
    return false;
  return atEnd(Err);
}

//===----------------------------------------------------------------------===//
// Native text format.
//===----------------------------------------------------------------------===//

bool StreamingTextParser::processLine(std::string_view Line,
                                      std::string *Err) {
  std::vector<std::string_view> Tok = tokenize(Line);
  if (Tok.empty() || Tok[0].front() == '#')
    return true;

  if (Tok[0] == "b") {
    if (HasOpenTxn)
      return fail(Err, "previous transaction still open");
    SessionId S;
    if (Tok.size() != 2 || !parseInt(Tok[1], S))
      return fail(Err, "expected 'b <session>'");
    while (NumSessions <= S) {
      M.addSession();
      ++NumSessions;
    }
    Open = M.beginTxn(S);
    HasOpenTxn = true;
    return true;
  }
  if (Tok[0] == "r" || Tok[0] == "w") {
    if (!HasOpenTxn)
      return fail(Err, "operation outside a transaction");
    Key K;
    Value V;
    if (Tok.size() != 3 || !parseInt(Tok[1], K) || !parseInt(Tok[2], V))
      return fail(Err, "expected '<r|w> <key> <value>'");
    if (Tok[0] == "r") {
      M.read(Open, K, V);
      return true;
    }
    if (!M.write(Open, K, V))
      return fail(Err, M.errorText());
    return true;
  }
  if (Tok[0] == "c" || Tok[0] == "a") {
    if (!HasOpenTxn)
      return fail(Err, "no open transaction to close");
    if (Tok[0] == "a") {
      M.abortTxn(Open);
    } else {
      M.commit(Open);
      ++Committed;
    }
    HasOpenTxn = false;
    return true;
  }
  if (Tok[0] == "t") {
    // Streaming-only clock directive: advances the monitor's stream time
    // (age-based eviction, force-abort of hung transactions).
    uint64_t Ticks;
    if (Tok.size() != 2 || !parseInt(Tok[1], Ticks))
      return fail(Err, "expected 't <ticks>'");
    M.advanceTime(Ticks);
    return true;
  }
  return fail(Err, "unknown directive '" + std::string(Tok[0]) + "'");
}

bool StreamingTextParser::atEnd(std::string *Err) {
  if (HasOpenTxn)
    return fail(Err, "unterminated transaction at end of input");
  return true;
}

//===----------------------------------------------------------------------===//
// Plume-style CSV format.
//===----------------------------------------------------------------------===//

bool StreamingPlumeParser::closeOpen() {
  if (!HasOpen)
    return false;
  if (OpenAborted) {
    M.abortTxn(Open);
  } else {
    M.commit(Open);
    ++Committed;
  }
  HasOpen = false;
  OpenAborted = false;
  return true;
}

bool StreamingPlumeParser::processLine(std::string_view Line,
                                       std::string *Err) {
  if (Line.empty() || Line.front() == '#')
    return true;

  std::vector<std::string_view> F = splitCsv(Line);
  SessionId S;
  uint64_t FileTxn;
  if (F.size() < 3 || !parseInt(F[0], S) || !parseInt(F[1], FileTxn))
    return fail(Err, "expected '<session>,<txn>,...'");
  while (NumSessions <= S) {
    M.addSession();
    ++NumSessions;
  }
  if (!HasOpen || OpenSession != S || OpenFileTxn != FileTxn) {
    // A new (session, txn) pair implicitly commits the previous
    // transaction: Plume logs carry no commit marker.
    closeOpen();
    Open = M.beginTxn(S);
    HasOpen = true;
    OpenSession = S;
    OpenFileTxn = FileTxn;
  }
  if (F[2] == "abort") {
    // Deferred until the pair ends: the batch parser keeps appending
    // operations that follow an abort line for the same (session, txn)
    // pair to the aborted transaction, and the streaming parser must
    // produce the identical history.
    OpenAborted = true;
    return true;
  }
  Key K;
  Value V;
  if (F.size() != 5 || (F[2] != "r" && F[2] != "w") || !parseInt(F[3], K) ||
      !parseInt(F[4], V))
    return fail(Err, "expected '<session>,<txn>,<r|w>,<key>,<value>'");
  if (F[2] == "r") {
    M.read(Open, K, V);
    return true;
  }
  if (!M.write(Open, K, V))
    return fail(Err, M.errorText());
  return true;
}

bool StreamingPlumeParser::atEnd(std::string *Err) {
  (void)Err;
  closeOpen();
  return true;
}

//===----------------------------------------------------------------------===//
// DBCop-style block format.
//===----------------------------------------------------------------------===//

bool StreamingDbcopParser::processLine(std::string_view Line,
                                       std::string *Err) {
  std::vector<std::string_view> Tok = tokenize(Line);
  if (Tok.empty() || Tok[0].front() == '#')
    return true;

  if (Tok[0] == "sessions") {
    if (SeenHeader || Tok.size() != 2 || !parseInt(Tok[1], DeclaredSessions))
      return fail(Err, "expected a single 'sessions <k>' header");
    for (size_t I = 0; I < DeclaredSessions; ++I)
      M.addSession();
    SeenHeader = true;
    return true;
  }
  if (!SeenHeader)
    return fail(Err, "missing 'sessions <k>' header");

  if (Tok[0] == "txn") {
    if (OpsLeft != 0)
      return fail(Err, "previous transaction is missing operations");
    SessionId S;
    int DoesCommit;
    size_t NumOps;
    if (Tok.size() != 4 || !parseInt(Tok[1], S) ||
        !parseInt(Tok[2], DoesCommit) || !parseInt(Tok[3], NumOps) ||
        S >= DeclaredSessions || (DoesCommit != 0 && DoesCommit != 1))
      return fail(Err, "expected 'txn <session> <0|1> <numops>'");
    Open = M.beginTxn(S);
    OpenCommits = DoesCommit == 1;
    OpsLeft = NumOps;
    if (OpsLeft == 0) {
      // An empty block closes immediately.
      if (OpenCommits) {
        M.commit(Open);
        ++Committed;
      } else {
        M.abortTxn(Open);
      }
      Open = NoTxn;
    }
    return true;
  }
  if (Tok[0] == "R" || Tok[0] == "W") {
    if (Open == NoTxn || OpsLeft == 0)
      return fail(Err, "operation outside a transaction block");
    Key K;
    Value V;
    if (Tok.size() != 3 || !parseInt(Tok[1], K) || !parseInt(Tok[2], V))
      return fail(Err, "expected '<R|W> <key> <value>'");
    if (Tok[0] == "R") {
      M.read(Open, K, V);
    } else if (!M.write(Open, K, V)) {
      return fail(Err, M.errorText());
    }
    if (--OpsLeft == 0) {
      // The block is complete; the commit decision was declared up front.
      if (OpenCommits) {
        M.commit(Open);
        ++Committed;
      } else {
        M.abortTxn(Open);
      }
      Open = NoTxn;
    }
    return true;
  }
  return fail(Err, "unknown directive '" + std::string(Tok[0]) + "'");
}

bool StreamingDbcopParser::atEnd(std::string *Err) {
  if (OpsLeft != 0)
    return fail(Err, "unexpected end of input inside a transaction");
  return true;
}

//===----------------------------------------------------------------------===//
// Factory.
//===----------------------------------------------------------------------===//

std::unique_ptr<StreamParser> awdit::makeStreamParser(
    const std::string &Format, Monitor &M) {
  if (Format == "native")
    return std::make_unique<StreamingTextParser>(M);
  if (Format == "plume")
    return std::make_unique<StreamingPlumeParser>(M);
  if (Format == "dbcop")
    return std::make_unique<StreamingDbcopParser>(M);
  return nullptr;
}
