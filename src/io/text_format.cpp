//===- io/text_format.cpp - Native history text format ----------------------===//

#include "io/text_format.h"

#include "checker/monitor.h"
#include "io/stream_parser.h"

#include <fstream>
#include <sstream>

using namespace awdit;

std::optional<History> awdit::parseTextHistory(std::string_view Text,
                                               std::string *Err) {
  // One-shot parsing is the streaming parser run to completion: the
  // native grammar lives only in io/stream_parser.cpp, and errors —
  // including duplicate writes — carry their line number. The monitor
  // performs no checking here (CheckIntervalTxns = 0, no sink); it acts
  // as an incremental HistoryBuilder whose result is bit-identical to the
  // historical build() output (tests/test_monitor.cpp).
  Monitor M;
  StreamingTextParser Parser(M);
  if (!Parser.feed(Text, Err) || !Parser.finish(Err))
    return std::nullopt;
  return M.takeHistory();
}

std::string awdit::writeTextHistory(const History &H) {
  std::ostringstream Out;
  Out << "# awdit history: " << H.numSessions() << " sessions, "
      << H.numTxns() << " txns, " << H.numOps() << " ops\n";
  for (TxnId Id = 0; Id < H.numTxns(); ++Id) {
    const Transaction &T = H.txn(Id);
    Out << "b " << T.Session << "\n";
    for (const Operation &Op : T.Ops)
      Out << (Op.isRead() ? "r " : "w ") << Op.K << " " << Op.V << "\n";
    Out << (T.Committed ? "c" : "a") << "\n";
  }
  return Out.str();
}

std::optional<History> awdit::loadTextHistoryFile(const std::string &Path,
                                                  std::string *Err) {
  std::ifstream In(Path);
  if (!In) {
    if (Err)
      *Err = "cannot open '" + Path + "'";
    return std::nullopt;
  }
  std::ostringstream Buf;
  Buf << In.rdbuf();
  return parseTextHistory(Buf.str(), Err);
}

bool awdit::saveTextHistoryFile(const History &H, const std::string &Path,
                                std::string *Err) {
  std::ofstream Out(Path);
  if (!Out) {
    if (Err)
      *Err = "cannot open '" + Path + "' for writing";
    return false;
  }
  Out << writeTextHistory(H);
  return static_cast<bool>(Out);
}
