//===- io/text_format.cpp - Native history text format ----------------------===//

#include "io/text_format.h"

#include "history/history_builder.h"

#include <charconv>
#include <fstream>
#include <sstream>
#include <vector>

using namespace awdit;

namespace {

/// Splits \p Text into whitespace-separated tokens.
std::vector<std::string_view> tokenize(std::string_view Line) {
  std::vector<std::string_view> Tokens;
  size_t I = 0;
  while (I < Line.size()) {
    while (I < Line.size() && (Line[I] == ' ' || Line[I] == '\t'))
      ++I;
    size_t Start = I;
    while (I < Line.size() && Line[I] != ' ' && Line[I] != '\t')
      ++I;
    if (I > Start)
      Tokens.push_back(Line.substr(Start, I - Start));
  }
  return Tokens;
}

template <typename IntT>
bool parseInt(std::string_view Token, IntT &Out) {
  auto [Ptr, Ec] =
      std::from_chars(Token.data(), Token.data() + Token.size(), Out);
  return Ec == std::errc() && Ptr == Token.data() + Token.size();
}

bool setErr(std::string *Err, size_t LineNo, const std::string &Msg) {
  if (Err)
    *Err = "line " + std::to_string(LineNo) + ": " + Msg;
  return false;
}

} // namespace

std::optional<History> awdit::parseTextHistory(std::string_view Text,
                                               std::string *Err) {
  HistoryBuilder B;
  size_t NumSessions = 0;
  bool HasOpenTxn = false;
  TxnId Open = NoTxn;
  size_t LineNo = 0;
  size_t Pos = 0;

  while (Pos <= Text.size()) {
    size_t End = Text.find('\n', Pos);
    std::string_view Line = End == std::string_view::npos
                                ? Text.substr(Pos)
                                : Text.substr(Pos, End - Pos);
    Pos = End == std::string_view::npos ? Text.size() + 1 : End + 1;
    ++LineNo;
    std::vector<std::string_view> Tok = tokenize(Line);
    if (Tok.empty() || Tok[0].front() == '#')
      continue;

    if (Tok[0] == "b") {
      if (HasOpenTxn) {
        setErr(Err, LineNo, "previous transaction still open");
        return std::nullopt;
      }
      SessionId S;
      if (Tok.size() != 2 || !parseInt(Tok[1], S)) {
        setErr(Err, LineNo, "expected 'b <session>'");
        return std::nullopt;
      }
      while (NumSessions <= S) {
        B.addSession();
        ++NumSessions;
      }
      Open = B.beginTxn(S);
      HasOpenTxn = true;
      continue;
    }
    if (Tok[0] == "r" || Tok[0] == "w") {
      if (!HasOpenTxn) {
        setErr(Err, LineNo, "operation outside a transaction");
        return std::nullopt;
      }
      Key K;
      Value V;
      if (Tok.size() != 3 || !parseInt(Tok[1], K) || !parseInt(Tok[2], V)) {
        setErr(Err, LineNo, "expected '<r|w> <key> <value>'");
        return std::nullopt;
      }
      if (Tok[0] == "r")
        B.read(Open, K, V);
      else
        B.write(Open, K, V);
      continue;
    }
    if (Tok[0] == "c" || Tok[0] == "a") {
      if (!HasOpenTxn) {
        setErr(Err, LineNo, "no open transaction to close");
        return std::nullopt;
      }
      if (Tok[0] == "a")
        B.abortTxn(Open);
      HasOpenTxn = false;
      continue;
    }
    setErr(Err, LineNo, "unknown directive '" + std::string(Tok[0]) + "'");
    return std::nullopt;
  }
  if (HasOpenTxn) {
    setErr(Err, LineNo, "unterminated transaction at end of input");
    return std::nullopt;
  }
  return B.build(Err);
}

std::string awdit::writeTextHistory(const History &H) {
  std::ostringstream Out;
  Out << "# awdit history: " << H.numSessions() << " sessions, "
      << H.numTxns() << " txns, " << H.numOps() << " ops\n";
  for (TxnId Id = 0; Id < H.numTxns(); ++Id) {
    const Transaction &T = H.txn(Id);
    Out << "b " << T.Session << "\n";
    for (const Operation &Op : T.Ops)
      Out << (Op.isRead() ? "r " : "w ") << Op.K << " " << Op.V << "\n";
    Out << (T.Committed ? "c" : "a") << "\n";
  }
  return Out.str();
}

std::optional<History> awdit::loadTextHistoryFile(const std::string &Path,
                                                  std::string *Err) {
  std::ifstream In(Path);
  if (!In) {
    if (Err)
      *Err = "cannot open '" + Path + "'";
    return std::nullopt;
  }
  std::ostringstream Buf;
  Buf << In.rdbuf();
  return parseTextHistory(Buf.str(), Err);
}

bool awdit::saveTextHistoryFile(const History &H, const std::string &Path,
                                std::string *Err) {
  std::ofstream Out(Path);
  if (!Out) {
    if (Err)
      *Err = "cannot open '" + Path + "' for writing";
    return false;
  }
  Out << writeTextHistory(H);
  return static_cast<bool>(Out);
}
