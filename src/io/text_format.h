//===- io/text_format.h - Native history text format --------------*- C++ -*-===//
//
// Part of the AWDIT reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The native AWDIT history text format: a line-oriented transcript of
/// sessions, transactions, and operations.
///
/// \code
///   # comment
///   b <session>        -- begin a transaction in <session>
///   r <key> <value>    -- read
///   w <key> <value>    -- write
///   c                  -- commit the open transaction
///   a                  -- abort the open transaction
/// \endcode
///
/// Transactions of a session appear in session order; the wr relation is
/// recovered from values (unique-value convention).
///
//===----------------------------------------------------------------------===//

#ifndef AWDIT_IO_TEXT_FORMAT_H
#define AWDIT_IO_TEXT_FORMAT_H

#include "history/history.h"

#include <optional>
#include <string>
#include <string_view>

namespace awdit {

/// Parses the native text format. Returns std::nullopt and sets \p Err on
/// malformed input.
std::optional<History> parseTextHistory(std::string_view Text,
                                        std::string *Err = nullptr);

/// Serializes \p H in the native text format (round-trips through
/// parseTextHistory).
std::string writeTextHistory(const History &H);

/// Reads and parses a history file; convenience for tools.
std::optional<History> loadTextHistoryFile(const std::string &Path,
                                           std::string *Err = nullptr);

/// Writes \p H to \p Path; returns false and sets \p Err on I/O failure.
bool saveTextHistoryFile(const History &H, const std::string &Path,
                         std::string *Err = nullptr);

} // namespace awdit

#endif // AWDIT_IO_TEXT_FORMAT_H
