//===- io/stream_parser.h - Streaming history-format parsers -----*- C++ -*-===//
//
// Part of the AWDIT reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Incremental parsers that feed a streaming Monitor as input arrives —
/// from a file tail, a pipe, or stdin — instead of materializing the whole
/// history first. All three on-disk formats are supported behind one
/// interface (`awdit monitor --format native|plume|dbcop` is a thin loop
/// around makeStreamParser()):
///
///  - the native text format (io/text_format.h), including the streaming
///    extension `t <ticks>` that advances the monitor's stream clock for
///    the age-based eviction and force-abort policies;
///  - the Plume-style CSV format (io/plume_format.h);
///  - the DBCop-style block format (io/dbcop_format.h).
///
/// Input may be fed in arbitrary chunks; partial trailing lines are
/// buffered until their newline arrives (chunking-invariant, enforced by
/// tests). Errors carry the 1-based line number, including the
/// model-invariant errors (duplicate writes) the monitor detects during
/// ingestion.
///
//===----------------------------------------------------------------------===//

#ifndef AWDIT_IO_STREAM_PARSER_H
#define AWDIT_IO_STREAM_PARSER_H

#include "checker/monitor.h"

#include <memory>
#include <string>
#include <string_view>

namespace awdit {

/// The streaming-parser interface shared by every input format.
class StreamParser {
public:
  virtual ~StreamParser() = default;

  /// Feeds one chunk of input (any size, any boundary). Returns false and
  /// sets \p Err (with a line number) on the first malformed line; the
  /// parser is then stuck and further calls keep failing.
  virtual bool feed(std::string_view Chunk, std::string *Err = nullptr) = 0;

  /// Processes a buffered trailing line that arrived without its newline.
  /// Tail-mode callers must call this at end of input before consulting
  /// hasOpenTxn(): the unterminated final line may hold the directive
  /// that closes the last transaction.
  virtual bool flushPartialLine(std::string *Err = nullptr) = 0;

  /// Flushes a trailing line without newline and verifies the input ended
  /// at a clean transaction boundary. Call once at end of input. Tail-mode
  /// callers that want to salvage a truncated stream should
  /// flushPartialLine() and consult hasOpenTxn() first, skipping finish()
  /// when it is set (the monitor's finalize() treats the open transaction
  /// as aborted).
  virtual bool finish(std::string *Err = nullptr) = 0;

  /// 1-based number of the line currently being (or last) processed.
  virtual size_t lineNumber() const = 0;

  /// Committed transactions fed to the monitor so far.
  virtual uint64_t committedTxns() const = 0;

  /// True while the stream is inside a transaction (finish() would fail).
  virtual bool hasOpenTxn() const = 0;
};

/// Shared chunking engine: buffers partial lines across feed() calls and
/// hands complete lines (without the newline) to processLine(). Keeps the
/// chunking invariance in exactly one place.
class LineStreamParser : public StreamParser {
public:
  bool feed(std::string_view Chunk, std::string *Err = nullptr) final;
  bool flushPartialLine(std::string *Err = nullptr) final;
  bool finish(std::string *Err = nullptr) final;
  size_t lineNumber() const final { return LineNo; }

protected:
  /// Parses one complete line (trailing CR already stripped). Returns
  /// false after calling fail().
  virtual bool processLine(std::string_view Line, std::string *Err) = 0;

  /// End-of-input hook, after the trailing partial line was processed.
  virtual bool atEnd(std::string *Err) = 0;

  /// Records a line-numbered error and wedges the parser.
  bool fail(std::string *Err, const std::string &Msg);

private:
  bool dispatchLine(std::string_view Line, std::string *Err);

  std::string Partial;
  size_t LineNo = 0;
  bool Stuck = false;
};

/// Parses the native text format incrementally into a Monitor. Grammar:
/// `b <session>`, `r <key> <value>`, `w <key> <value>`, `c`, `a`,
/// comments (`# ...`), and the streaming-only clock directive `t <ticks>`.
class StreamingTextParser final : public LineStreamParser {
public:
  explicit StreamingTextParser(Monitor &M) : M(M) {}

  uint64_t committedTxns() const override { return Committed; }
  bool hasOpenTxn() const override { return HasOpenTxn; }

protected:
  bool processLine(std::string_view Line, std::string *Err) override;
  bool atEnd(std::string *Err) override;

private:
  Monitor &M;
  size_t NumSessions = 0;
  bool HasOpenTxn = false;
  TxnId Open = NoTxn;
  uint64_t Committed = 0;
};

/// Parses the Plume-style CSV format incrementally: lines are
/// `<session>,<txn>,<r|w>,<key>,<value>` or `<session>,<txn>,abort`, with
/// a transaction's lines contiguous. A transaction closes when the next
/// (session, txn) pair starts or the stream ends — committing unless an
/// abort line was seen for the pair (matching the batch parser, which
/// also keeps appending post-abort operations to the aborted
/// transaction).
class StreamingPlumeParser final : public LineStreamParser {
public:
  explicit StreamingPlumeParser(Monitor &M) : M(M) {}

  uint64_t committedTxns() const override { return Committed; }
  /// Plume has no explicit commit marker: a trailing open transaction is
  /// committed (or aborted) by atEnd(), so the stream is never "inside"
  /// one.
  bool hasOpenTxn() const override { return false; }

protected:
  bool processLine(std::string_view Line, std::string *Err) override;
  bool atEnd(std::string *Err) override;

private:
  bool closeOpen();

  Monitor &M;
  size_t NumSessions = 0;
  bool HasOpen = false;
  bool OpenAborted = false;
  SessionId OpenSession = 0;
  uint64_t OpenFileTxn = 0;
  TxnId Open = NoTxn;
  uint64_t Committed = 0;
};

/// Parses the DBCop-style block format incrementally: a `sessions <k>`
/// header, then `txn <session> <0|1> <numops>` blocks followed by exactly
/// numops `R <key> <value>` / `W <key> <value>` lines. The commit decision
/// is declared up front, so a block closes the moment its last operation
/// arrives.
class StreamingDbcopParser final : public LineStreamParser {
public:
  explicit StreamingDbcopParser(Monitor &M) : M(M) {}

  uint64_t committedTxns() const override { return Committed; }
  bool hasOpenTxn() const override { return OpsLeft != 0; }

protected:
  bool processLine(std::string_view Line, std::string *Err) override;
  bool atEnd(std::string *Err) override;

private:
  Monitor &M;
  bool SeenHeader = false;
  size_t DeclaredSessions = 0;
  TxnId Open = NoTxn;
  bool OpenCommits = false;
  size_t OpsLeft = 0;
  uint64_t Committed = 0;
};

/// Creates the streaming parser for \p Format ("native", "plume",
/// "dbcop"); nullptr for an unknown format.
std::unique_ptr<StreamParser> makeStreamParser(const std::string &Format,
                                               Monitor &M);

} // namespace awdit

#endif // AWDIT_IO_STREAM_PARSER_H
