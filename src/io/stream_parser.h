//===- io/stream_parser.h - Streaming history-format parsers -----*- C++ -*-===//
//
// Part of the AWDIT reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Incremental parsers that feed a streaming Monitor as input arrives —
/// from a file tail, a pipe, or stdin — instead of materializing the whole
/// history first. All three on-disk formats are supported behind one
/// interface (`awdit monitor --format native|plume|dbcop` is a thin loop
/// around makeStreamParser()):
///
///  - the native text format (io/text_format.h), including the streaming
///    extension `t <ticks>` that advances the monitor's stream clock for
///    the age-based eviction and force-abort policies;
///  - the Plume-style CSV format (io/plume_format.h);
///  - the DBCop-style block format (io/dbcop_format.h).
///
/// Input may be fed in arbitrary chunks; partial trailing lines are
/// buffered until their newline arrives (chunking-invariant, enforced by
/// tests). Errors carry the 1-based line number, including the
/// model-invariant errors (duplicate writes) the monitor detects during
/// ingestion.
///
/// Each format is split into two halves so the sharded ingest pipeline
/// (io/sharded_ingest.h) can spread the expensive half across worker
/// threads:
///
///  - a *decoder* (decodeNativeLine & co.): a pure, context-free function
///    from one line to a LineEvent — tokenization and integer parsing,
///    the per-byte cost of ingestion. Safe to run on any thread, in any
///    order.
///  - a *machine* (StreamMachine): the stateful half that applies decoded
///    events to a Monitor in stream order — open-transaction tracking,
///    session creation, commit bookkeeping. Runs on exactly one thread
///    (the applier), and its state serializes into checkpoints
///    (checker/checkpoint.h) so `awdit monitor --resume` can restart
///    mid-stream.
///
/// The classic StreamParser classes below are thin single-threaded
/// wrappers: split lines, decode, apply — one code path shared with the
/// sharded pipeline.
///
//===----------------------------------------------------------------------===//

#ifndef AWDIT_IO_STREAM_PARSER_H
#define AWDIT_IO_STREAM_PARSER_H

#include "checker/monitor.h"
#include "support/serialize.h"

#include <memory>
#include <string>
#include <string_view>

namespace awdit {

/// One decoded line of a streaming history format: the context-free part
/// of parsing, produced by the per-format decoders below. A line that is
/// structurally recognizable but malformed keeps its structural kind with
/// Error set, so the machine can apply its state-dependent checks (which
/// take precedence in the legacy parsers' diagnostics) before failing.
struct LineEvent {
  enum class Type : uint8_t {
    /// Blank line or comment; ignored.
    Blank,
    /// Native `b <session>`.
    Begin,
    /// Native `r <key> <value>` / DBCop `R <key> <value>`.
    ReadOp,
    /// Native `w <key> <value>` / DBCop `W <key> <value>`.
    WriteOp,
    /// Native `c`.
    Commit,
    /// Native `a`.
    Abort,
    /// Native streaming clock directive `t <ticks>`; Num holds the ticks.
    Clock,
    /// DBCop `sessions <k>`; Num holds k.
    DbcopHeader,
    /// DBCop `txn <session> <0|1> <numops>`; Flag = commits, Num = numops.
    DbcopTxn,
    /// Plume `<session>,<txn>,<r|w>,<key>,<value>`; Num = file txn id,
    /// Flag = is-read. When only the (session, txn) prefix parsed, Error
    /// is set and K/V are meaningless — the machine still opens the pair
    /// (matching the legacy parser) before failing.
    PlumeOp,
    /// Plume `<session>,<txn>,abort`; Num = file txn id.
    PlumeAbort,
    /// Unrecognized or unparseable line; Error holds the message.
    Malformed,
  };

  Type Kind = Type::Blank;
  SessionId Session = 0;
  /// Overloaded numeric payload, see the Type comments.
  uint64_t Num = 0;
  Key K = 0;
  Value V = 0;
  bool Flag = false;
  /// Non-empty when the line was malformed; the message carries no line
  /// prefix (the caller adds "line N: ").
  std::string Error;
};

/// Context-free decoders: one line (no trailing newline, trailing CR
/// already stripped) to one LineEvent. Pure functions, safe on any thread.
LineEvent decodeNativeLine(std::string_view Line);
LineEvent decodePlumeLine(std::string_view Line);
LineEvent decodeDbcopLine(std::string_view Line);

using LineDecoder = LineEvent (*)(std::string_view);

/// The decoder for \p Format ("native", "plume", "dbcop"); nullptr for an
/// unknown format.
LineDecoder lineDecoderFor(const std::string &Format);

/// The stateful half of a streaming parser: applies decoded LineEvents to
/// a Monitor in stream order. Exactly one thread may call apply()/atEnd().
/// The machine's state is small (open-transaction handle, session count)
/// and serializes into checkpoints so a resumed monitor continues from the
/// exact stream position.
class StreamMachine {
public:
  virtual ~StreamMachine() = default;

  /// Applies one decoded line. Returns false and sets \p Err (without a
  /// line prefix) on a malformed line or a model-invariant violation.
  virtual bool apply(const LineEvent &E, std::string *Err) = 0;

  /// End-of-input hook: verifies the stream ended at a clean transaction
  /// boundary (native/dbcop) or closes the trailing open pair (plume).
  virtual bool atEnd(std::string *Err) = 0;

  /// True while the stream is inside a transaction (atEnd() would fail).
  virtual bool hasOpenTxn() const = 0;

  /// Committed transactions applied so far.
  virtual uint64_t committedTxns() const = 0;

  // --- Checkpoint support (checker/checkpoint.h). ---

  virtual void saveState(ByteWriter &W) const = 0;
  virtual bool loadState(ByteReader &R) = 0;
};

/// Creates the machine for \p Format driving \p M; nullptr for an unknown
/// format.
std::unique_ptr<StreamMachine> makeStreamMachine(const std::string &Format,
                                                 Monitor &M);

/// The streaming-parser interface shared by every input format.
class StreamParser {
public:
  virtual ~StreamParser() = default;

  /// Feeds one chunk of input (any size, any boundary). Returns false and
  /// sets \p Err (with a line number) on the first malformed line; the
  /// parser is then stuck and further calls keep failing.
  virtual bool feed(std::string_view Chunk, std::string *Err = nullptr) = 0;

  /// Processes a buffered trailing line that arrived without its newline.
  /// Tail-mode callers must call this at end of input before consulting
  /// hasOpenTxn(): the unterminated final line may hold the directive
  /// that closes the last transaction.
  virtual bool flushPartialLine(std::string *Err = nullptr) = 0;

  /// Flushes a trailing line without newline and verifies the input ended
  /// at a clean transaction boundary. Call once at end of input. Tail-mode
  /// callers that want to salvage a truncated stream should
  /// flushPartialLine() and consult hasOpenTxn() first, skipping finish()
  /// when it is set (the monitor's finalize() treats the open transaction
  /// as aborted).
  virtual bool finish(std::string *Err = nullptr) = 0;

  /// 1-based number of the line currently being (or last) processed.
  virtual size_t lineNumber() const = 0;

  /// Committed transactions fed to the monitor so far.
  virtual uint64_t committedTxns() const = 0;

  /// True while the stream is inside a transaction (finish() would fail).
  virtual bool hasOpenTxn() const = 0;
};

/// Shared chunking engine: buffers partial lines across feed() calls and
/// hands complete lines (without the newline) to processLine(). Keeps the
/// chunking invariance in exactly one place.
class LineStreamParser : public StreamParser {
public:
  bool feed(std::string_view Chunk, std::string *Err = nullptr) final;
  bool flushPartialLine(std::string *Err = nullptr) final;
  bool finish(std::string *Err = nullptr) final;
  size_t lineNumber() const final { return LineNo; }

protected:
  /// Parses one complete line (trailing CR already stripped). Returns
  /// false after calling fail().
  virtual bool processLine(std::string_view Line, std::string *Err) = 0;

  /// End-of-input hook, after the trailing partial line was processed.
  virtual bool atEnd(std::string *Err) = 0;

  /// Records a line-numbered error and wedges the parser.
  bool fail(std::string *Err, const std::string &Msg);

private:
  bool dispatchLine(std::string_view Line, std::string *Err);

  std::string Partial;
  size_t LineNo = 0;
  bool Stuck = false;
};

/// A single-threaded streaming parser over one decoder + one machine: the
/// legacy decode-inline code path, and the reference the sharded pipeline
/// must match bit-identically. makeStreamParser() instantiates one per
/// format.
class MachineStreamParser : public LineStreamParser {
public:
  MachineStreamParser(LineDecoder Decode,
                      std::unique_ptr<StreamMachine> Machine)
      : Decode(Decode), Machine(std::move(Machine)) {}

  uint64_t committedTxns() const override {
    return Machine->committedTxns();
  }
  bool hasOpenTxn() const override { return Machine->hasOpenTxn(); }

protected:
  bool processLine(std::string_view Line, std::string *Err) override {
    std::string Msg;
    if (Machine->apply(Decode(Line), &Msg))
      return true;
    return fail(Err, Msg);
  }

  bool atEnd(std::string *Err) override {
    std::string Msg;
    if (Machine->atEnd(&Msg))
      return true;
    return fail(Err, Msg);
  }

private:
  LineDecoder Decode;
  std::unique_ptr<StreamMachine> Machine;
};

/// Parses the native text format incrementally into a Monitor. Grammar:
/// `b <session>`, `r <key> <value>`, `w <key> <value>`, `c`, `a`,
/// comments (`# ...`), and the streaming-only clock directive `t <ticks>`.
class StreamingTextParser final : public MachineStreamParser {
public:
  explicit StreamingTextParser(Monitor &M)
      : MachineStreamParser(decodeNativeLine, makeStreamMachine("native", M)) {
  }
};

/// Parses the Plume-style CSV format incrementally: lines are
/// `<session>,<txn>,<r|w>,<key>,<value>` or `<session>,<txn>,abort`, with
/// a transaction's lines contiguous. A transaction closes when the next
/// (session, txn) pair starts or the stream ends — committing unless an
/// abort line was seen for the pair (matching the batch parser, which
/// also keeps appending post-abort operations to the aborted
/// transaction).
class StreamingPlumeParser final : public MachineStreamParser {
public:
  explicit StreamingPlumeParser(Monitor &M)
      : MachineStreamParser(decodePlumeLine, makeStreamMachine("plume", M)) {}
};

/// Parses the DBCop-style block format incrementally: a `sessions <k>`
/// header, then `txn <session> <0|1> <numops>` blocks followed by exactly
/// numops `R <key> <value>` / `W <key> <value>` lines. The commit decision
/// is declared up front, so a block closes the moment its last operation
/// arrives.
class StreamingDbcopParser final : public MachineStreamParser {
public:
  explicit StreamingDbcopParser(Monitor &M)
      : MachineStreamParser(decodeDbcopLine, makeStreamMachine("dbcop", M)) {}
};

/// Creates the streaming parser for \p Format ("native", "plume",
/// "dbcop"); nullptr for an unknown format.
std::unique_ptr<StreamParser> makeStreamParser(const std::string &Format,
                                               Monitor &M);

} // namespace awdit

#endif // AWDIT_IO_STREAM_PARSER_H
