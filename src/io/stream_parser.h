//===- io/stream_parser.h - Streaming native-format parser -------*- C++ -*-===//
//
// Part of the AWDIT reproduction. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Incremental parser for the native history text format (io/text_format.h)
/// that feeds a streaming Monitor as lines arrive — from a file tail, a
/// pipe, or stdin — instead of materializing the whole history first. The
/// `awdit monitor` command is a thin loop around this class.
///
/// Input may be fed in arbitrary chunks; partial trailing lines are
/// buffered until their newline arrives. Errors carry the 1-based line
/// number, including the model-invariant errors (duplicate writes) the
/// monitor detects during ingestion.
///
//===----------------------------------------------------------------------===//

#ifndef AWDIT_IO_STREAM_PARSER_H
#define AWDIT_IO_STREAM_PARSER_H

#include "checker/monitor.h"

#include <string>
#include <string_view>

namespace awdit {

/// Parses the native text format incrementally into a Monitor.
class StreamingTextParser {
public:
  explicit StreamingTextParser(Monitor &M) : M(M) {}

  /// Feeds one chunk of input (any size, any boundary). Returns false and
  /// sets \p Err (with a line number) on the first malformed line; the
  /// parser is then stuck and further calls keep failing.
  bool feed(std::string_view Chunk, std::string *Err = nullptr);

  /// Flushes a trailing line without newline and verifies no transaction
  /// is left open. Call once at end of input.
  bool finish(std::string *Err = nullptr);

  /// 1-based number of the line currently being (or last) processed.
  size_t lineNumber() const { return LineNo; }

  /// Committed transactions fed to the monitor so far.
  uint64_t committedTxns() const { return Committed; }

private:
  bool processLine(std::string_view Line, std::string *Err);
  bool fail(std::string *Err, const std::string &Msg);

  Monitor &M;
  std::string Partial;
  size_t LineNo = 0;
  size_t NumSessions = 0;
  bool HasOpenTxn = false;
  TxnId Open = NoTxn;
  uint64_t Committed = 0;
  bool Stuck = false;
};

} // namespace awdit

#endif // AWDIT_IO_STREAM_PARSER_H
