//===- io/dbcop_format.cpp - DBCop-style block history format ----------------===//

#include "io/dbcop_format.h"

#include "history/history_builder.h"
#include "history/wr_resolver.h"
#include "io/token_util.h"

#include <sstream>

using namespace awdit;
using awdit::io::parseInt;
using awdit::io::TokenCursor;

namespace {

bool setErr(std::string *Err, size_t LineNo, const std::string &Msg) {
  if (Err)
    *Err = "line " + std::to_string(LineNo) + ": " + Msg;
  return false;
}

} // namespace

std::optional<History> awdit::parseDbcopHistory(std::string_view Text,
                                                std::string *Err) {
  HistoryBuilder B;
  // Duplicate writes are a build()-level invariant, but detecting them
  // here attributes the error to its line.
  WriteSiteIndex SeenWrites;
  bool SeenHeader = false;
  size_t DeclaredSessions = 0;
  TxnId Open = NoTxn;
  size_t OpsLeft = 0;

  size_t LineNo = 0;
  size_t Pos = 0;
  while (Pos <= Text.size()) {
    size_t End = Text.find('\n', Pos);
    std::string_view Line = End == std::string_view::npos
                                ? Text.substr(Pos)
                                : Text.substr(Pos, End - Pos);
    Pos = End == std::string_view::npos ? Text.size() + 1 : End + 1;
    ++LineNo;
    TokenCursor C(Line);
    std::string_view Dir = C.next();
    if (Dir.empty() || Dir.front() == '#')
      continue;

    if (Dir == "sessions") {
      if (SeenHeader || !C.nextInt(DeclaredSessions) ||
          !C.atEnd()) {
        setErr(Err, LineNo, "expected a single 'sessions <k>' header");
        return std::nullopt;
      }
      for (size_t I = 0; I < DeclaredSessions; ++I)
        B.addSession();
      SeenHeader = true;
      continue;
    }
    if (!SeenHeader) {
      setErr(Err, LineNo, "missing 'sessions <k>' header");
      return std::nullopt;
    }

    if (Dir == "txn") {
      if (OpsLeft != 0) {
        setErr(Err, LineNo, "previous transaction is missing operations");
        return std::nullopt;
      }
      SessionId S;
      int Committed;
      size_t NumOps;
      if (!C.nextInt(S) || !C.nextInt(Committed) ||
          !C.nextInt(NumOps) || !C.atEnd() ||
          S >= DeclaredSessions || (Committed != 0 && Committed != 1)) {
        setErr(Err, LineNo, "expected 'txn <session> <0|1> <numops>'");
        return std::nullopt;
      }
      Open = B.beginTxn(S);
      if (Committed == 0)
        B.abortTxn(Open);
      OpsLeft = NumOps;
      continue;
    }
    if (Dir == "R" || Dir == "W") {
      if (Open == NoTxn || OpsLeft == 0) {
        setErr(Err, LineNo, "operation outside a transaction block");
        return std::nullopt;
      }
      Key K;
      Value V;
      if (!C.nextInt(K) || !C.nextInt(V) || !C.atEnd()) {
        setErr(Err, LineNo, "expected '<R|W> <key> <value>'");
        return std::nullopt;
      }
      if (Dir == "R") {
        B.read(Open, K, V);
      } else {
        if (!SeenWrites.record(K, V, Open, 0)) {
          setErr(Err, LineNo, duplicateWriteMessage(K, V));
          return std::nullopt;
        }
        B.write(Open, K, V);
      }
      --OpsLeft;
      continue;
    }
    setErr(Err, LineNo, "unknown directive '" + std::string(Dir) + "'");
    return std::nullopt;
  }
  if (OpsLeft != 0) {
    setErr(Err, LineNo, "unexpected end of input inside a transaction");
    return std::nullopt;
  }
  return B.build(Err);
}

std::string awdit::writeDbcopHistory(const History &H) {
  std::ostringstream Out;
  Out << "sessions " << H.numSessions() << "\n";
  for (TxnId Id = 0; Id < H.numTxns(); ++Id) {
    const Transaction &T = H.txn(Id);
    Out << "txn " << T.Session << " " << (T.Committed ? 1 : 0) << " "
        << T.Ops.size() << "\n";
    for (const Operation &Op : T.Ops)
      Out << (Op.isRead() ? "R " : "W ") << Op.K << " " << Op.V << "\n";
  }
  return Out.str();
}
