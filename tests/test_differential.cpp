//===- tests/test_differential.cpp - AWDIT vs. oracle differential tests -------===//
//
// The central correctness battery: on randomized histories of many shapes
// (benchmarks x consistency modes x seeds, plus injected anomalies), the
// AWDIT algorithms must agree with the exhaustive-inference oracle
// (Lemma 3.2 ground truth) at every isolation level, and the baselines
// must agree with AWDIT.
//
//===----------------------------------------------------------------------===//

#include "baseline/dbcop_like.h"
#include "baseline/naive_checker.h"
#include "baseline/plume_like.h"
#include "sim/anomaly_injector.h"
#include "tests/test_util.h"
#include "workload/generator.h"

#include <gtest/gtest.h>

using namespace awdit;
using namespace awdit::test;

namespace {

void expectAllCheckersAgree(const History &H, const char *Context) {
  PlumeLikeChecker Plume;
  DbcopLikeChecker Dbcop;
  Deadline NoLimit(0.0);
  for (IsolationLevel Level : AllIsolationLevels) {
    bool Awdit = consistent(H, Level);
    bool Oracle = naiveConsistent(H, Level);
    EXPECT_EQ(Awdit, Oracle)
        << Context << ": AWDIT vs oracle at " << isolationLevelName(Level);
    BaselineResult P = Plume.check(H, Level, NoLimit);
    ASSERT_FALSE(P.TimedOut);
    EXPECT_EQ(Awdit, P.Consistent)
        << Context << ": AWDIT vs Plume-like at "
        << isolationLevelName(Level);
    if (Dbcop.supports(Level)) {
      BaselineResult D = Dbcop.check(H, Level, NoLimit);
      ASSERT_FALSE(D.TimedOut);
      EXPECT_EQ(Awdit, D.Consistent)
          << Context << ": AWDIT vs DBCop-like at "
          << isolationLevelName(Level);
    }
  }
}

} // namespace

/// Sweep over benchmark x mode x seed on simulator-generated histories.
class DifferentialClean
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(DifferentialClean, CheckersAgree) {
  auto [BenchIdx, ModeIdx, Seed] = GetParam();
  GenerateParams P;
  P.Bench = static_cast<Benchmark>(BenchIdx);
  P.Mode = static_cast<ConsistencyMode>(ModeIdx);
  P.Sessions = 6;
  P.Txns = 160;
  P.Seed = static_cast<uint64_t>(Seed * 7919 + ModeIdx);
  P.AbortProbability = Seed % 2 == 0 ? 0.0 : 0.05;
  History H = generateHistory(P);
  expectAllCheckersAgree(H, benchmarkName(P.Bench));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, DifferentialClean,
    ::testing::Combine(::testing::Range(0, 4),   // benchmarks
                       ::testing::Range(0, 4),   // consistency modes
                       ::testing::Range(1, 5))); // seeds

/// Sweep over anomaly kind x seed on injected histories.
class DifferentialInjected
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(DifferentialInjected, CheckersAgree) {
  auto [KindIdx, Seed] = GetParam();
  GenerateParams P;
  P.Bench = Benchmark::Rubis;
  P.Mode = ConsistencyMode::Serializable;
  P.Sessions = 5;
  P.Txns = 120;
  P.Seed = static_cast<uint64_t>(Seed);
  History Base = generateHistory(P);
  std::string Err;
  std::optional<History> H = injectAnomaly(
      Base, static_cast<AnomalyKind>(KindIdx), Seed * 13 + 1, &Err);
  ASSERT_TRUE(H) << Err;
  expectAllCheckersAgree(*H, anomalyKindName(static_cast<AnomalyKind>(
                                 KindIdx)));
}

INSTANTIATE_TEST_SUITE_P(Sweep, DifferentialInjected,
                         ::testing::Combine(::testing::Range(0, 7),
                                            ::testing::Range(1, 4)));

/// Small fully random histories with mutated reads: the sharpest
/// differential probe (wr edges can point anywhere, including anomalies
/// the simulator never produces).
TEST(DifferentialFuzz, RandomMutatedHistories) {
  Rng Rand(4242);
  for (int Trial = 0; Trial < 150; ++Trial) {
    HistoryBuilder B;
    size_t NumSessions = 1 + Rand.nextBelow(4);
    for (size_t S = 0; S < NumSessions; ++S)
      B.addSession();
    size_t NumTxns = 2 + Rand.nextBelow(10);
    Value NextVal = 1;
    std::vector<std::pair<Key, Value>> Written;
    for (size_t T = 0; T < NumTxns; ++T) {
      TxnId Id = B.beginTxn(
          static_cast<SessionId>(Rand.nextBelow(NumSessions)));
      size_t NumOps = 1 + Rand.nextBelow(5);
      for (size_t O = 0; O < NumOps; ++O) {
        Key K = 1 + Rand.nextBelow(5);
        if (Rand.nextBool(0.55) || Written.empty()) {
          B.write(Id, K, NextVal);
          Written.push_back({K, NextVal});
          ++NextVal;
        } else {
          // Read any written (key, value) pair — possibly a "future" one,
          // possibly fractured, possibly from an aborted transaction.
          auto [WK, WV] = Written[Rand.nextBelow(Written.size())];
          B.read(Id, WK, WV);
        }
      }
      if (Rand.nextBool(0.08))
        B.abortTxn(Id);
    }
    std::optional<History> H = B.build();
    ASSERT_TRUE(H);
    for (IsolationLevel Level : AllIsolationLevels) {
      EXPECT_EQ(consistent(*H, Level), naiveConsistent(*H, Level))
          << "trial " << Trial << " level " << isolationLevelName(Level);
    }
  }
}

/// Reads of values that are never written (thin air) must fail everywhere,
/// for every checker.
TEST(DifferentialFuzz, ThinAirAlwaysInconsistent) {
  History H = makeHistory({
      {0, {W(1, 10)}},
      {1, {R(1, 10), R(2, 999)}},
  });
  expectAllCheckersAgree(H, "thin air");
  for (IsolationLevel Level : AllIsolationLevels)
    EXPECT_FALSE(consistent(H, Level));
}
