//===- tests/test_ser.cpp - Serializability checker tests ----------------------===//

#include "baseline/ser_checker.h"
#include "tests/test_util.h"
#include "workload/generator.h"

#include <gtest/gtest.h>

using namespace awdit;
using namespace awdit::test;

namespace {
constexpr Key X = 1, Y = 2;
} // namespace

TEST(SerChecker, EmptyAndTrivialHistories) {
  EXPECT_TRUE(isSerializable(makeHistory({})));
  EXPECT_TRUE(isSerializable(makeHistory({{0, {W(X, 1)}}})));
  EXPECT_TRUE(isSerializable(makeHistory({
      {0, {W(X, 1)}},
      {1, {R(X, 1)}},
  })));
}

TEST(SerChecker, LostUpdateNotSerializable) {
  // Two read-modify-writes over the same base version.
  History H = makeHistory({
      {0, {W(X, 1)}},
      {1, {R(X, 1), W(X, 2)}},
      {2, {R(X, 1), W(X, 3)}},
      {1, {R(X, 2)}},
      {2, {R(X, 3)}},
  });
  EXPECT_FALSE(isSerializable(H));
  // ...but the paper's Fig. 4d makes the same shape causally consistent.
  EXPECT_TRUE(consistent(H, IsolationLevel::CausalConsistency));
}

TEST(SerChecker, WriteSkewNotSerializableButCausal) {
  // Classic write skew: each txn reads the other's key's old version and
  // overwrites its own — no serial order exists, yet the transactions are
  // causally unrelated, so every weak level passes. This is exactly why
  // strong-isolation testing is the NP-hard problem (paper §1).
  History H = makeHistory({
      {0, {W(X, 1), W(Y, 1)}},
      {1, {R(X, 1), W(Y, 2)}},
      {2, {R(Y, 1), W(X, 2)}},
  });
  EXPECT_FALSE(isSerializable(H));
  for (IsolationLevel Level : AllIsolationLevels)
    EXPECT_TRUE(consistent(H, Level));
}

TEST(SerChecker, RespectsSessionOrder) {
  // A monotonic-reads violation across two transactions of one session:
  // co ⊇ so forbids any serial order, and CC catches it too, while the
  // single-step RA/RC premises do not fire.
  History H = makeHistory({
      {0, {W(X, 1)}},
      {0, {W(X, 2)}},
      {1, {R(X, 2)}},
      {1, {R(X, 1)}},
  });
  EXPECT_FALSE(isSerializable(H));
  EXPECT_FALSE(consistent(H, IsolationLevel::CausalConsistency));
  EXPECT_TRUE(consistent(H, IsolationLevel::ReadAtomic));
  EXPECT_TRUE(consistent(H, IsolationLevel::ReadCommitted));
}

TEST(SerChecker, SerializableImpliesAllWeakLevels) {
  for (uint64_t Seed = 1; Seed <= 6; ++Seed) {
    GenerateParams P;
    P.Bench = Benchmark::Random;
    P.Mode = ConsistencyMode::Serializable;
    P.Sessions = 4;
    P.Txns = 60;
    P.KeySpace = 8;
    P.Seed = Seed;
    History H = generateHistory(P);
    ASSERT_TRUE(isSerializable(H)) << "seed " << Seed;
    for (IsolationLevel Level : AllIsolationLevels)
      EXPECT_TRUE(consistent(H, Level));
  }
}

TEST(SerChecker, WeakModesEventuallyNonSerializable) {
  // Causal replicas produce stale reads that strict serializability
  // rejects; at least one seed must exhibit it.
  bool SawNonSer = false;
  for (uint64_t Seed = 1; Seed <= 10 && !SawNonSer; ++Seed) {
    GenerateParams P;
    P.Bench = Benchmark::Random;
    P.Mode = ConsistencyMode::Causal;
    P.Sessions = 5;
    P.Txns = 80;
    P.KeySpace = 6;
    P.Seed = Seed;
    History H = generateHistory(P);
    SawNonSer = !isSerializable(H);
  }
  EXPECT_TRUE(SawNonSer);
}

TEST(SerChecker, TimesOutOnAdversarialInput) {
  // Many sessions of independent writers force an exponential frontier.
  HistoryBuilder B;
  constexpr size_t K = 12;
  for (size_t S = 0; S < K; ++S)
    B.addSession();
  Value V = 1;
  for (size_t S = 0; S < K; ++S) {
    for (int T = 0; T < 40; ++T) {
      TxnId Id = B.beginTxn(static_cast<SessionId>(S));
      B.write(Id, static_cast<Key>(S), V++);
    }
  }
  // One reader pinning an awkward interleaving.
  TxnId Reader = B.beginTxn(0);
  B.read(Reader, K - 1, V - 1);
  std::optional<History> H = B.build();
  ASSERT_TRUE(H);
  SerChecker Checker;
  BaselineResult R = Checker.check(*H, IsolationLevel::CausalConsistency,
                                   Deadline(0.05));
  // Either it finishes fast (memoization) or reports the timeout; both
  // are acceptable, but it must not crash or hang.
  SUCCEED();
  (void)R;
}

TEST(SerChecker, AbortedTxnsIgnored) {
  History H = makeHistory({
      {0, {W(X, 1)}},
      {0, {W(X, 99)}, /*Abort=*/true},
      {1, {R(X, 1)}},
  });
  EXPECT_TRUE(isSerializable(H));
}
