//===- tests/test_ra_single_session.cpp - Theorem 1.6 fast path ----------------===//

#include "checker/check_ra.h"
#include "checker/check_ra_single_session.h"
#include "support/rng.h"
#include "tests/test_util.h"
#include "workload/generator.h"

#include <gtest/gtest.h>

using namespace awdit;
using namespace awdit::test;

namespace {
constexpr Key X = 1, Y = 2;

bool fastRa(const History &H) {
  std::vector<Violation> Out;
  return checkRaSingleSession(H, Out);
}

bool generalRa(const History &H) {
  std::vector<Violation> Out;
  return checkRa(H, Out);
}
} // namespace

TEST(RaSingleSession, DetectsSingleSession) {
  History H1 = makeHistory({{0, {W(X, 1)}}, {0, {R(X, 1)}}});
  EXPECT_TRUE(isSingleSession(H1));
  History H2 = makeHistory({{0, {W(X, 1)}}, {1, {R(X, 1)}}});
  EXPECT_FALSE(isSingleSession(H2));
}

TEST(RaSingleSession, LatestWriterObservedConsistent) {
  History H = makeHistory({
      {0, {W(X, 1)}},
      {0, {W(X, 2)}},
      {0, {R(X, 2)}},
  });
  EXPECT_TRUE(fastRa(H));
}

TEST(RaSingleSession, StaleReadInconsistent) {
  History H = makeHistory({
      {0, {W(X, 1)}},
      {0, {W(X, 2)}},
      {0, {R(X, 1)}},
  });
  EXPECT_FALSE(fastRa(H));
}

TEST(RaSingleSession, ReadOwnSessionChainConsistent) {
  History H = makeHistory({
      {0, {W(X, 1), W(Y, 1)}},
      {0, {R(X, 1), W(X, 2)}},
      {0, {R(X, 2), R(Y, 1)}},
  });
  EXPECT_TRUE(fastRa(H));
}

TEST(RaSingleSession, FutureWrEdgeInconsistent) {
  // Reading a value committed later in the session contradicts co = so.
  History H = makeHistory({
      {0, {R(X, 1)}},
      {0, {W(X, 1)}},
  });
  EXPECT_FALSE(fastRa(H));
}

TEST(RaSingleSession, FacadeUsesFastPath) {
  History H = makeHistory({
      {0, {W(X, 1)}},
      {0, {R(X, 1)}},
  });
  CheckReport Report = checkIsolation(H, IsolationLevel::ReadAtomic);
  EXPECT_TRUE(Report.Consistent);
  EXPECT_TRUE(Report.Stats.UsedFastPath);

  CheckOptions NoFast;
  NoFast.UseSingleSessionFastPath = false;
  CheckReport Report2 = checkIsolation(H, IsolationLevel::ReadAtomic, NoFast);
  EXPECT_TRUE(Report2.Consistent);
  EXPECT_FALSE(Report2.Stats.UsedFastPath);
}

// Differential sweep: on random single-session histories, the linear fast
// path must agree with the general O(n^{3/2}) algorithm.
class RaSingleSessionDifferential
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(RaSingleSessionDifferential, AgreesWithGeneralRa) {
  auto [Seed, ModeIdx] = GetParam();
  // Build a single-session workload whose first transaction populates
  // every key, so no synthetic init session is needed and the fast path
  // genuinely applies.
  constexpr size_t NumKeys = 12;
  Rng Rand(static_cast<uint64_t>(Seed) * 37 + ModeIdx);
  ClientWorkload Workload;
  Workload.Sessions.resize(1);
  ClientTxn Prepopulate;
  for (Key K = 1; K <= NumKeys; ++K)
    Prepopulate.Ops.push_back(ClientOp::write(K));
  Workload.Sessions[0].Txns.push_back(std::move(Prepopulate));
  for (int T = 0; T < 120; ++T) {
    ClientTxn Txn;
    size_t NumOps = 1 + Rand.nextBelow(5);
    for (size_t O = 0; O < NumOps; ++O) {
      Key K = 1 + Rand.nextBelow(NumKeys);
      Txn.Ops.push_back(Rand.nextBool(0.5) ? ClientOp::write(K)
                                           : ClientOp::read(K));
    }
    Workload.Sessions[0].Txns.push_back(std::move(Txn));
  }
  SimConfig Config;
  Config.Mode = static_cast<ConsistencyMode>(ModeIdx);
  Config.Seed = static_cast<uint64_t>(Seed) * 911 + 5;
  Config.ReadAheadProbability = 0.3;
  std::optional<History> H = simulateDatabase(Workload, Config);
  ASSERT_TRUE(H);
  ASSERT_TRUE(isSingleSession(*H));
  EXPECT_EQ(fastRa(*H), generalRa(*H));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, RaSingleSessionDifferential,
    ::testing::Combine(::testing::Range(1, 9),
                       ::testing::Values(0, 1, 2, 3)));

// Hand-crafted adversarial single-session histories, mutated reads
// included, must also agree.
TEST(RaSingleSession, AgreesOnMutatedHistories) {
  Rng Rand(99);
  for (int Trial = 0; Trial < 60; ++Trial) {
    HistoryBuilder B;
    SessionId S = B.addSession();
    size_t NumTxns = 2 + Rand.nextBelow(8);
    Value NextVal = 1;
    std::vector<std::pair<Key, Value>> Written;
    for (size_t T = 0; T < NumTxns; ++T) {
      TxnId Id = B.beginTxn(S);
      size_t NumOps = 1 + Rand.nextBelow(4);
      for (size_t O = 0; O < NumOps; ++O) {
        Key K = 1 + Rand.nextBelow(4);
        if (Rand.nextBool(0.5) || Written.empty()) {
          B.write(Id, K, NextVal);
          Written.push_back({K, NextVal});
          ++NextVal;
        } else {
          auto [WK, WV] = Written[Rand.nextBelow(Written.size())];
          B.read(Id, WK, WV);
        }
      }
    }
    std::optional<History> H = B.build();
    ASSERT_TRUE(H);
    EXPECT_EQ(fastRa(*H), generalRa(*H)) << "trial " << Trial;
  }
}
