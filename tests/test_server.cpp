//===- tests/test_server.cpp - Multi-tenant monitoring server --------------===//
//
// The acceptance battery of `awdit serve` (server/server.h): the line
// protocol, the session registry, and the end-to-end guarantee that every
// hosted stream's violation record is byte-identical to a standalone
// Monitor run on the same stream — across concurrent mixed-level tenants,
// detach/re-attach, idle eviction with checkpoint resume, and a full
// shutdown-drain + restart + resume cycle. Runs threaded (event loop,
// pool pumps, client threads), so it is part of the CI TSan battery.
//
//===----------------------------------------------------------------------===//

#include "checker/checkpoint.h"
#include "checker/monitor.h"
#include "checker/stats_snapshot.h"
#include "checker/violation_sink.h"
#include "io/stream_parser.h"
#include "io/text_format.h"
#include "obs/trace.h"
#include "server/protocol.h"
#include "server/server.h"
#include "sim/anomaly_injector.h"
#include "support/socket.h"
#include "workload/generator.h"

#include <gtest/gtest.h>

#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <thread>

#include <unistd.h>

using namespace awdit;
using namespace awdit::server;

namespace {

//===----------------------------------------------------------------------===//
// Protocol unit tests
//===----------------------------------------------------------------------===//

TEST(ServerProtocol, ClassifiesVerbsAndStreamLines) {
  EXPECT_EQ(classifyLine("HELLO s cc"), Verb::Hello);
  EXPECT_EQ(classifyLine("  STATS"), Verb::Stats);
  EXPECT_EQ(classifyLine("DETACH"), Verb::Detach);
  EXPECT_EQ(classifyLine("END"), Verb::End);
  EXPECT_EQ(classifyLine("SHUTDOWN"), Verb::Shutdown);
  // Stream lines of all three formats pass through.
  EXPECT_EQ(classifyLine("b 3"), Verb::None);
  EXPECT_EQ(classifyLine("w 1 2"), Verb::None);
  EXPECT_EQ(classifyLine("sessions 4"), Verb::None);
  EXPECT_EQ(classifyLine("txn 0 1 2"), Verb::None);
  EXPECT_EQ(classifyLine("R 1 2"), Verb::None);
  EXPECT_EQ(classifyLine("0,1,r,2,3"), Verb::None);
  EXPECT_EQ(classifyLine("# HELLO in a comment"), Verb::None);
  EXPECT_EQ(classifyLine(""), Verb::None);
  // Only exact keywords are verbs.
  EXPECT_EQ(classifyLine("HELLOX s cc"), Verb::None);
  EXPECT_EQ(classifyLine("hello s cc"), Verb::None);
}

TEST(ServerProtocol, ParsesHello) {
  HelloRequest Req;
  std::string Err;
  ASSERT_TRUE(parseHello("HELLO orders cc", Req, &Err)) << Err;
  EXPECT_EQ(Req.Stream, "orders");
  EXPECT_EQ(Req.Level, IsolationLevel::CausalConsistency);
  EXPECT_EQ(Req.Format, "native");
  EXPECT_EQ(Req.Options.CheckIntervalTxns, 256u); // the CLI default
  EXPECT_TRUE(Req.Given.empty());

  ASSERT_TRUE(parseHello("HELLO t ra interval=32 window=100 format=plume "
                         "window-age=9 force-abort=5 witnesses=2",
                         Req, &Err))
      << Err;
  EXPECT_EQ(Req.Level, IsolationLevel::ReadAtomic);
  EXPECT_EQ(Req.Options.CheckIntervalTxns, 32u);
  EXPECT_EQ(Req.Options.WindowTxns, 100u);
  EXPECT_EQ(Req.Options.WindowAgeTicks, 9u);
  EXPECT_EQ(Req.Options.ForceAbortOpenTicks, 5u);
  EXPECT_EQ(Req.Options.Check.MaxWitnesses, 2u);
  EXPECT_EQ(Req.Format, "plume");
  EXPECT_EQ(Req.Given.size(), 6u);

  EXPECT_FALSE(parseHello("HELLO onlyname", Req, &Err));
  EXPECT_FALSE(parseHello("HELLO s serializable", Req, &Err));
  EXPECT_FALSE(parseHello("HELLO s cc bogus=1", Req, &Err));
  EXPECT_FALSE(parseHello("HELLO s cc interval=abc", Req, &Err));
  EXPECT_FALSE(parseHello("HELLO s cc format=xml", Req, &Err));
}

TEST(ServerProtocol, CompatibilityChecksOnlyGivenOptions) {
  HelloRequest Req;
  std::string Err;
  MonitorOptions Existing;
  Existing.Level = IsolationLevel::CausalConsistency;
  Existing.CheckIntervalTxns = 64;
  Existing.WindowTxns = 500;

  // Omitted options defer to the existing configuration.
  ASSERT_TRUE(parseHello("HELLO s cc", Req, &Err));
  EXPECT_TRUE(checkCompatible(Req, "native", Existing, &Err)) << Err;

  // A matching explicit option passes; a conflicting one fails.
  ASSERT_TRUE(parseHello("HELLO s cc interval=64", Req, &Err));
  EXPECT_TRUE(checkCompatible(Req, "native", Existing, &Err)) << Err;
  ASSERT_TRUE(parseHello("HELLO s cc interval=65", Req, &Err));
  EXPECT_FALSE(checkCompatible(Req, "native", Existing, &Err));
  EXPECT_NE(Err.find("interval"), std::string::npos);

  // The level is always checked.
  ASSERT_TRUE(parseHello("HELLO s ra", Req, &Err));
  EXPECT_FALSE(checkCompatible(Req, "native", Existing, &Err));
}

TEST(ServerProtocol, MuxFrameHelpersRoundTrip) {
  // Classification: frames start with '@'; '@@' is the payload escape.
  EXPECT_TRUE(isMuxFrame("@s b 0"));
  EXPECT_TRUE(isMuxFrame("@s"));
  EXPECT_TRUE(isMuxFrame("@"));
  EXPECT_FALSE(isMuxFrame("@@literal"));
  EXPECT_FALSE(isMuxFrame("b 0"));
  EXPECT_FALSE(isMuxFrame(""));

  std::string_view Stream, Payload;
  bool HasPayload = false;
  ASSERT_TRUE(splitMuxFrame("@s b 0", Stream, Payload, HasPayload));
  EXPECT_EQ(Stream, "s");
  EXPECT_EQ(Payload, "b 0");
  EXPECT_TRUE(HasPayload);
  // `@s` switches without routing; `@s ` routes an empty payload.
  ASSERT_TRUE(splitMuxFrame("@s", Stream, Payload, HasPayload));
  EXPECT_FALSE(HasPayload);
  ASSERT_TRUE(splitMuxFrame("@s ", Stream, Payload, HasPayload));
  EXPECT_TRUE(HasPayload);
  EXPECT_EQ(Payload, "");
  // An empty stream name is malformed.
  EXPECT_FALSE(splitMuxFrame("@", Stream, Payload, HasPayload));
  EXPECT_FALSE(splitMuxFrame("@ x", Stream, Payload, HasPayload));

  // Escaping round-trips every payload, including ones that are already
  // escaped-looking, and never produces something classified as a frame.
  for (std::string_view P :
       {std::string_view("b 0"), std::string_view("@weird"),
        std::string_view("@@already"), std::string_view(""),
        std::string_view("END")}) {
    std::string Wire = escapeMuxPayload(P);
    EXPECT_EQ(unescapeMuxPayload(Wire), P) << Wire;
    if (!P.empty() && P[0] == '@') {
      EXPECT_FALSE(isMuxFrame(Wire)) << Wire;
    }
  }
  EXPECT_EQ(escapeMuxPayload("@x"), "@@x");
  EXPECT_EQ(escapeMuxPayload("b 0"), "b 0");

  EXPECT_EQ(muxFrame("s", "END"), "@s END");
  EXPECT_TRUE(isMuxFrame(muxFrame("orders", "b 0")));
}

TEST(ServerProtocol, ParsesHelloConnectionOptions) {
  HelloRequest Req;
  std::string Err;
  ASSERT_TRUE(parseHello("HELLO s cc mux=on token=sesame inbox-bytes=1024 "
                         "outq-bytes=2048 window-bytes=4096",
                         Req, &Err))
      << Err;
  EXPECT_TRUE(Req.Mux);
  EXPECT_EQ(Req.Token, "sesame");
  EXPECT_EQ(Req.InboxBytes, 1024u);
  EXPECT_EQ(Req.OutQueueBytes, 2048u);
  EXPECT_EQ(Req.WindowBytes, 4096u);
  // Connection options never enter the compatibility fingerprint.
  EXPECT_TRUE(Req.Given.empty());

  ASSERT_TRUE(parseHello("HELLO s cc mux=off", Req, &Err));
  EXPECT_FALSE(Req.Mux);
  EXPECT_FALSE(parseHello("HELLO s cc mux=maybe", Req, &Err));
  EXPECT_FALSE(parseHello("HELLO s cc inbox-bytes=0", Req, &Err));
  EXPECT_NE(Err.find("positive byte count"), std::string::npos) << Err;
  EXPECT_FALSE(parseHello("HELLO s cc window-bytes=abc", Req, &Err));
}

TEST(ServerProtocol, SanitizeStreamNameIsInjectiveAndSafe) {
  EXPECT_EQ(sanitizeStreamName("orders-eu_1.log"), "orders-eu_1.log");
  // A leading dot is encoded (no hidden files, no ".." traversal) and
  // slashes never pass through.
  EXPECT_EQ(sanitizeStreamName("../etc/passwd"), "%2E.%2Fetc%2Fpasswd");
  EXPECT_EQ(sanitizeStreamName(".hidden"), "%2Ehidden");
  EXPECT_EQ(sanitizeStreamName("a b"), "a%20b");
  // '%' itself is encoded, so the mapping stays injective.
  EXPECT_EQ(sanitizeStreamName("a%20b"), "a%2520b");
  EXPECT_NE(sanitizeStreamName("a b"), sanitizeStreamName("a%20b"));
  EXPECT_EQ(sanitizeStreamName(""), "%");
  EXPECT_EQ(checkpointFilePathFor("dir", "s/1"), "dir/s%2F1.ckpt");
}

//===----------------------------------------------------------------------===//
// JSON escaping + stream-id field (the sink-hardening satellite)
//===----------------------------------------------------------------------===//

TEST(ViolationJson, EscapesControlCharactersAndQuotes) {
  Violation V;
  V.Kind = ViolationKind::ThinAirRead;
  V.T = 3;
  V.OpIndex = 1;
  std::string Desc = "key \"a\b\" read\nvalue\t<\x01>";
  std::string Json = violationToJson(V, &Desc);
  EXPECT_NE(Json.find("\\\"a\\u0008\\\""), std::string::npos) << Json;
  EXPECT_NE(Json.find("\\n"), std::string::npos);
  EXPECT_NE(Json.find("\\t"), std::string::npos);
  EXPECT_NE(Json.find("\\u0001"), std::string::npos);
  // No raw control bytes and no unescaped inner quotes survive.
  for (char C : Json)
    EXPECT_GE(static_cast<unsigned char>(C), 0x20u) << Json;
}

TEST(ViolationJson, StreamIdFieldIsEscaped) {
  Violation V;
  V.Kind = ViolationKind::AbortedRead;
  V.T = 1;
  std::string Stream = "tenant\"7\n";
  std::string Json = violationToJson(V, nullptr, &Stream);
  EXPECT_NE(Json.find("\"stream\":\"tenant\\\"7\\n\""), std::string::npos)
      << Json;

  // The JSON-lines sink carries the same tagged form.
  std::ostringstream Out;
  JsonLinesSink Sink(Out, Stream);
  Sink.onViolation(V, "desc");
  EXPECT_NE(Out.str().find("\"stream\":\"tenant\\\"7\\n\""),
            std::string::npos)
      << Out.str();
}

//===----------------------------------------------------------------------===//
// End-to-end server fixtures
//===----------------------------------------------------------------------===//

/// A blocking line-oriented protocol client over the support sockets.
class TestClient {
public:
  bool connect(uint16_t Port) {
    std::string Err;
    Sock = tcpConnect("127.0.0.1", Port, &Err);
    return Sock.valid();
  }

  bool send(const std::string &Text) { return Sock.writeAll(Text); }
  bool sendLine(const std::string &Line) {
    return Sock.writeAll(Line + "\n");
  }

  /// Next reply line; empty on EOF.
  std::string readLine() {
    for (;;) {
      size_t Nl = Buf.find('\n');
      if (Nl != std::string::npos) {
        std::string Line = Buf.substr(0, Nl);
        Buf.erase(0, Nl + 1);
        return Line;
      }
      char Tmp[4096];
      long N = Sock.readSome(Tmp, sizeof(Tmp));
      if (N <= 0)
        return {};
      Buf.append(Tmp, static_cast<size_t>(N));
    }
  }

  /// Reads until a line starting with \p Prefix arrives; collects every
  /// "VIOLATION " payload seen on the way into \p Violations (if given).
  std::string readUntil(const std::string &Prefix,
                        std::vector<std::string> *Violations = nullptr) {
    for (;;) {
      std::string Line = readLine();
      if (Line.empty())
        return {};
      if (Line.rfind("VIOLATION ", 0) == 0 && Violations)
        Violations->push_back(Line.substr(10));
      if (Line.rfind(Prefix, 0) == 0)
        return Line;
    }
  }

  void close() { Sock.close(); }

private:
  Socket Sock;
  std::string Buf;
};

/// Starts a Server on an ephemeral port with its own temp dirs and runs it
/// on a background thread; shuts down and joins on destruction.
class ServerHarness {
public:
  explicit ServerHarness(ServerOptions Base = {}) {
    Dir = std::filesystem::temp_directory_path() /
          ("awdit_srv_" + std::to_string(::getpid()) + "_" +
           std::to_string(Counter++));
    std::filesystem::create_directories(Dir);
    Base.Host = "127.0.0.1";
    Base.Port = 0;
    if (Base.CheckpointDir.empty())
      Base.CheckpointDir = (Dir / "ckpt").string();
    if (Base.SinkDir.empty())
      Base.SinkDir = (Dir / "sink").string();
    Options = Base;
    restart();
  }

  ~ServerHarness() {
    stop();
    std::error_code Ec;
    std::filesystem::remove_all(Dir, Ec);
  }

  /// Starts (or restarts, after stop()) the server with the same dirs.
  void restart() {
    S = std::make_unique<Server>(Options);
    std::string Err;
    ASSERT_TRUE(S->start(&Err)) << Err;
    Runner = std::thread([this] { S->run(); });
  }

  void stop() {
    if (!S)
      return;
    S->requestShutdown();
    Runner.join();
    S.reset();
  }

  uint16_t port() const { return S->port(); }
  Server &server() { return *S; }
  std::string sinkDir() const { return Options.SinkDir; }
  std::string checkpointDir() const { return Options.CheckpointDir; }

private:
  static inline std::atomic<int> Counter{0};
  std::filesystem::path Dir;
  ServerOptions Options;
  std::unique_ptr<Server> S;
  std::thread Runner;
};

History generated(int Seed, size_t Txns, bool Inject) {
  GenerateParams P;
  P.Bench = Benchmark::CTwitter;
  P.Mode = ConsistencyMode::Causal;
  P.Sessions = 5;
  P.Txns = Txns;
  P.Seed = static_cast<uint64_t>(Seed);
  History H = generateHistory(P);
  if (!Inject)
    return H;
  std::string Err;
  std::optional<History> Mutated = injectAnomaly(
      H, AnomalyKind::CausalViolation, static_cast<uint64_t>(Seed) + 1,
      &Err);
  EXPECT_TRUE(Mutated) << Err;
  return Mutated ? std::move(*Mutated) : std::move(H);
}

/// What a standalone `awdit monitor --json` run would output for this
/// stream: the violation JSON lines and the final summary line.
struct Reference {
  std::vector<std::string> ViolationLines;
  std::string Summary;
};

Reference referenceRun(const std::string &Text,
                       const MonitorOptions &Options) {
  Reference Ref;
  std::ostringstream Out;
  JsonLinesSink Sink(Out);
  Monitor M(Options, &Sink);
  StreamingTextParser Parser(M);
  std::string Err;
  EXPECT_TRUE(Parser.feed(Text, &Err)) << Err;
  EXPECT_TRUE(Parser.finish(&Err)) << Err;
  CheckReport Report = M.finalize();
  Ref.Summary = monitorSummaryJson(Report, M.stats(), Options.Level);
  std::istringstream Lines(Out.str());
  for (std::string Line; std::getline(Lines, Line);)
    Ref.ViolationLines.push_back(Line);
  return Ref;
}

/// The value of a single-valued metric series on the rendered /metrics
/// page; ~0 when absent.
uint64_t metricValue(const std::string &Page, const std::string &Name) {
  std::string Needle = Name + " ";
  for (size_t Pos = Page.find(Needle); Pos != std::string::npos;
       Pos = Page.find(Needle, Pos + 1)) {
    // Only a sample line counts — not the `# TYPE <name> ...` comment.
    if (Pos == 0 || Page[Pos - 1] == '\n')
      return std::strtoull(Page.c_str() + Pos + Needle.size(), nullptr,
                           10);
  }
  return ~0ull;
}

std::vector<std::string> fileLines(const std::string &Path) {
  std::ifstream In(Path);
  std::vector<std::string> Lines;
  for (std::string Line; std::getline(In, Line);)
    Lines.push_back(Line);
  return Lines;
}

/// Drops the `"stream":"<name>",` tag the push channel adds, so pushed
/// payloads compare against the untagged reference lines.
std::string stripStreamTag(std::string Json, const std::string &Name) {
  std::string Tag = "\"stream\":\"";
  appendJsonEscaped(Tag, Name);
  Tag += "\",";
  size_t Pos = Json.find(Tag);
  if (Pos != std::string::npos)
    Json.erase(Pos, Tag.size());
  return Json;
}

//===----------------------------------------------------------------------===//
// End-to-end tests
//===----------------------------------------------------------------------===//

TEST(ServerEndToEnd, SingleStreamMatchesStandaloneMonitor) {
  ServerHarness H;
  History Hist = generated(11, 300, /*Inject=*/true);
  std::string Text = writeTextHistory(Hist);

  MonitorOptions Options;
  Options.Level = IsolationLevel::CausalConsistency;
  Options.CheckIntervalTxns = 32;
  Options.Check.MaxWitnesses = 4;
  Reference Ref = referenceRun(Text, Options);
  ASSERT_FALSE(Ref.ViolationLines.empty());

  TestClient C;
  ASSERT_TRUE(C.connect(H.port()));
  ASSERT_TRUE(C.sendLine("HELLO t1 cc interval=32"));
  EXPECT_EQ(C.readLine(), "OK t1 new offset=0 line=0");
  ASSERT_TRUE(C.send(Text));
  ASSERT_TRUE(C.sendLine("END"));
  std::vector<std::string> Pushed;
  std::string Final = C.readUntil("FINAL ", &Pushed);
  ASSERT_FALSE(Final.empty());
  EXPECT_EQ(C.readUntil("BYE"), "BYE");

  // Pushed violations = the standalone stream, stream-tagged.
  ASSERT_EQ(Pushed.size(), Ref.ViolationLines.size());
  for (size_t I = 0; I < Pushed.size(); ++I)
    EXPECT_EQ(stripStreamTag(Pushed[I], "t1"), Ref.ViolationLines[I]);

  // The FINAL summary = the standalone summary, stream-tagged.
  EXPECT_EQ(stripStreamTag(Final.substr(6), "t1"), Ref.Summary);

  // The durable sink file is byte-identical to the standalone JSONL.
  EXPECT_EQ(fileLines(H.sinkDir() + "/t1.jsonl"), Ref.ViolationLines);
  EXPECT_EQ(fileLines(H.sinkDir() + "/t1.summary.json"),
            std::vector<std::string>{Ref.Summary});
  H.stop();
}

TEST(ServerEndToEnd, ManyConcurrentMixedTenantsNoBleed) {
  ServerHarness H;
  // Mixed levels, cadences, windows; clean and injected histories.
  struct Tenant {
    std::string Name;
    std::string Hello;
    MonitorOptions Options;
    std::string Text;
    Reference Ref;
  };
  std::vector<Tenant> Tenants;
  IsolationLevel Levels[] = {IsolationLevel::ReadCommitted,
                             IsolationLevel::ReadAtomic,
                             IsolationLevel::CausalConsistency};
  const char *LevelNames[] = {"rc", "ra", "cc"};
  for (int I = 0; I < 8; ++I) {
    Tenant T;
    T.Name = "tenant" + std::to_string(I);
    int LevelIdx = I % 3;
    size_t Interval = (I % 2) ? 16 : 64;
    size_t Window = (I == 5) ? 200 : 0;
    T.Options.Level = Levels[LevelIdx];
    T.Options.CheckIntervalTxns = Interval;
    T.Options.WindowTxns = Window;
    T.Options.Check.MaxWitnesses = 4;
    T.Hello = "HELLO " + T.Name + " " + LevelNames[LevelIdx] +
              " interval=" + std::to_string(Interval);
    if (Window)
      T.Hello += " window=" + std::to_string(Window);
    T.Text = writeTextHistory(generated(100 + I, 250, /*Inject=*/I % 2));
    T.Ref = referenceRun(T.Text, T.Options);
    Tenants.push_back(std::move(T));
  }

  // One client thread per tenant, all concurrent.
  std::vector<std::thread> Threads;
  std::vector<std::string> Finals(Tenants.size());
  for (size_t I = 0; I < Tenants.size(); ++I)
    Threads.emplace_back([&, I] {
      TestClient C;
      ASSERT_TRUE(C.connect(H.port()));
      ASSERT_TRUE(C.sendLine(Tenants[I].Hello));
      std::string Ok = C.readLine();
      ASSERT_EQ(Ok.rfind("OK " + Tenants[I].Name + " new", 0), 0u) << Ok;
      ASSERT_TRUE(C.send(Tenants[I].Text));
      ASSERT_TRUE(C.sendLine("END"));
      Finals[I] = C.readUntil("FINAL ");
      C.readUntil("BYE");
    });
  for (std::thread &T : Threads)
    T.join();

  // Every tenant's record equals its own standalone run — no bleed.
  for (size_t I = 0; I < Tenants.size(); ++I) {
    const Tenant &T = Tenants[I];
    EXPECT_EQ(fileLines(H.sinkDir() + "/" + T.Name + ".jsonl"),
              T.Ref.ViolationLines)
        << T.Name;
    EXPECT_EQ(stripStreamTag(Finals[I].substr(6), T.Name), T.Ref.Summary)
        << T.Name;
  }
  H.stop();
}

TEST(ServerEndToEnd, StatsVerbAndMetricsEndpoint) {
  ServerOptions Base;
  Base.EnableMetrics = true;
  ServerHarness H(Base);

  TestClient C;
  ASSERT_TRUE(C.connect(H.port()));
  // Pre-HELLO STATS: the whole-server view.
  ASSERT_TRUE(C.sendLine("STATS"));
  std::string ServerStats = C.readLine();
  EXPECT_EQ(ServerStats.rfind("STATS {", 0), 0u) << ServerStats;
  EXPECT_NE(ServerStats.find("\"sessions_live\":0"), std::string::npos);

  ASSERT_TRUE(C.sendLine("HELLO m1 cc interval=8"));
  ASSERT_EQ(C.readLine().rfind("OK m1 new", 0), 0u);
  ASSERT_TRUE(C.send("b 0\nw 1 10\nc\nb 0\nr 1 10\nc\n"));
  ASSERT_TRUE(C.sendLine("STATS"));
  std::string Stats = C.readUntil("STATS ");
  EXPECT_NE(Stats.find("\"stream\":\"m1\""), std::string::npos) << Stats;
  EXPECT_NE(Stats.find("\"txns\":2"), std::string::npos) << Stats;

  // The Prometheus page renders and carries the aggregate counters.
  std::string Page = H.server().renderMetrics();
  EXPECT_NE(Page.find("awdit_server_sessions_live 1"), std::string::npos)
      << Page;
  EXPECT_NE(Page.find("awdit_server_sessions_created_total 1"),
            std::string::npos);
  EXPECT_NE(Page.find("awdit_session_committed_txns{stream=\"m1\"} 2"),
            std::string::npos)
      << Page;
  H.stop();
}

TEST(ServerEndToEnd, StatsDeepCarriesLatencyPercentiles) {
  ServerHarness H;
  TestClient C;
  ASSERT_TRUE(C.connect(H.port()));

  // Pre-HELLO: the whole-server view grows the histogram-percentile
  // fields only when asked for the deep form.
  ASSERT_TRUE(C.sendLine("STATS"));
  std::string Shallow = C.readLine();
  ASSERT_EQ(Shallow.rfind("STATS {", 0), 0u) << Shallow;
  EXPECT_EQ(Shallow.find("\"server_pump\":"), std::string::npos)
      << Shallow;
  ASSERT_TRUE(C.sendLine("STATS deep"));
  std::string Deep = C.readLine();
  ASSERT_EQ(Deep.rfind("STATS {", 0), 0u) << Deep;
  EXPECT_NE(Deep.find("\"server_pump\":{\"count\":"), std::string::npos)
      << Deep;
  EXPECT_NE(Deep.find("\"flush\":{\"count\":"), std::string::npos) << Deep;
  EXPECT_NE(Deep.find("\"p99_micros\":"), std::string::npos) << Deep;

  // Session-level: a small stream with an interval small enough to force
  // real flushes, so the deep reply's flush percentiles carry samples.
  ASSERT_TRUE(C.sendLine("HELLO deep1 cc interval=2"));
  ASSERT_EQ(C.readLine().rfind("OK deep1 new", 0), 0u);
  ASSERT_TRUE(C.send("b 0\nw 1 10\nc\nb 0\nr 1 10\nc\n"
                     "b 1\nw 2 20\nc\nb 1\nr 2 20\nc\n"));
  ASSERT_TRUE(C.sendLine("STATS"));
  std::string SessShallow = C.readUntil("STATS ");
  EXPECT_NE(SessShallow.find("\"stream\":\"deep1\""), std::string::npos)
      << SessShallow;
  EXPECT_EQ(SessShallow.find("\"flush_latency\":"), std::string::npos)
      << SessShallow;

  ASSERT_TRUE(C.sendLine("STATS deep"));
  std::string SessDeep = C.readUntil("STATS ");
  EXPECT_NE(SessDeep.find("\"stream\":\"deep1\""), std::string::npos)
      << SessDeep;
  size_t LatPos = SessDeep.find("\"flush_latency\":{\"count\":");
  ASSERT_NE(LatPos, std::string::npos) << SessDeep;
  // Four committed txns at interval=2 means at least one real flush.
  EXPECT_EQ(SessDeep.find("\"flush_latency\":{\"count\":0", LatPos),
            std::string::npos)
      << SessDeep;
  EXPECT_NE(SessDeep.find("\"flush_phase_micros\":{\"delta_build\":"),
            std::string::npos)
      << SessDeep;
  H.stop();
}

TEST(ServerEndToEnd, TraceVerbRecordsAndDumps) {
  // The registry is process-wide; leave tracing the way we found it.
  struct TraceReset {
    ~TraceReset() {
      obs::setTraceEnabled(false);
      obs::traceClear();
    }
  } Reset;

  std::filesystem::path TraceDir =
      std::filesystem::temp_directory_path() /
      ("awdit_trace_" + std::to_string(::getpid()));
  std::filesystem::create_directories(TraceDir);
  ServerOptions Base;
  Base.TraceDir = TraceDir.string();
  ServerHarness H(Base);

  TestClient C;
  ASSERT_TRUE(C.connect(H.port()));
  ASSERT_TRUE(C.sendLine("TRACE on"));
  EXPECT_EQ(C.readLine(), "OK trace on");

  // Traffic while recording: the HELLO handshake and the session pump
  // must leave spans behind.
  ASSERT_TRUE(C.sendLine("HELLO tr1 cc interval=4"));
  ASSERT_EQ(C.readLine().rfind("OK tr1 new", 0), 0u);
  ASSERT_TRUE(C.send("b 0\nw 1 10\nc\nb 0\nr 1 10\nc\n"));
  ASSERT_TRUE(C.sendLine("STATS"));
  ASSERT_FALSE(C.readUntil("STATS ").empty());

  ASSERT_TRUE(C.sendLine("TRACE dump"));
  std::string DumpReply = C.readLine();
  ASSERT_EQ(DumpReply.rfind("OK trace dumped ", 0), 0u) << DumpReply;
  std::string Path = DumpReply.substr(std::strlen("OK trace dumped "));
  std::ifstream In(Path);
  ASSERT_TRUE(In.good()) << Path;
  std::stringstream Body;
  Body << In.rdbuf();
  std::string Json = Body.str();
  EXPECT_EQ(Json.rfind("{\"traceEvents\":[", 0), 0u);
  EXPECT_NE(Json.find("\"server.hello\""), std::string::npos);
  EXPECT_NE(Json.find("\"server.pump\""), std::string::npos);

  ASSERT_TRUE(C.sendLine("TRACE off"));
  EXPECT_EQ(C.readLine(), "OK trace off");
  ASSERT_TRUE(C.sendLine("TRACE bogus"));
  EXPECT_EQ(C.readLine().rfind("ERR TRACE wants", 0), 0u);
  H.stop();
  std::error_code Ec;
  std::filesystem::remove_all(TraceDir, Ec);

  // Without --trace-dir the dump verb is refused up front.
  ServerHarness H2;
  TestClient C2;
  ASSERT_TRUE(C2.connect(H2.port()));
  ASSERT_TRUE(C2.sendLine("TRACE dump"));
  EXPECT_NE(C2.readLine().find("ERR trace dump needs"), std::string::npos);
  H2.stop();
}

TEST(ServerEndToEnd, ProtocolErrors) {
  ServerHarness H;
  TestClient C;
  ASSERT_TRUE(C.connect(H.port()));

  // Stream data before HELLO.
  ASSERT_TRUE(C.sendLine("b 0"));
  EXPECT_EQ(C.readLine(), "ERR expected HELLO before stream data");

  ASSERT_TRUE(C.sendLine("HELLO s1 xx"));
  EXPECT_EQ(C.readLine().rfind("ERR unknown isolation level", 0), 0u);

  ASSERT_TRUE(C.sendLine("HELLO s1 cc"));
  ASSERT_EQ(C.readLine().rfind("OK s1 new", 0), 0u);

  // Double attach from a second connection.
  TestClient C2;
  ASSERT_TRUE(C2.connect(H.port()));
  ASSERT_TRUE(C2.sendLine("HELLO s1 cc"));
  EXPECT_NE(C2.readLine().find("already has an attached client"),
            std::string::npos);

  // A malformed stream line wedges the session with a line-numbered ERR.
  ASSERT_TRUE(C.send("b 0\nw 1 1\nbogus 9 9\n"));
  std::string Err = C.readUntil("ERR ");
  EXPECT_NE(Err.find("s1 line 3:"), std::string::npos) << Err;
  H.stop();
}

TEST(ServerEndToEnd, DetachReattachContinuesWithOffset) {
  ServerHarness H;
  History Hist = generated(21, 200, /*Inject=*/true);
  std::string Text = writeTextHistory(Hist);
  MonitorOptions Options;
  Options.Level = IsolationLevel::CausalConsistency;
  Options.CheckIntervalTxns = 16;
  Options.Check.MaxWitnesses = 4;
  Reference Ref = referenceRun(Text, Options);

  size_t Cut = Text.find('\n', Text.size() / 2);
  ASSERT_NE(Cut, std::string::npos);
  ++Cut;

  TestClient C;
  ASSERT_TRUE(C.connect(H.port()));
  ASSERT_TRUE(C.sendLine("HELLO d1 cc interval=16"));
  ASSERT_EQ(C.readLine().rfind("OK d1 new offset=0", 0), 0u);
  ASSERT_TRUE(C.send(Text.substr(0, Cut)));
  ASSERT_TRUE(C.sendLine("DETACH"));
  EXPECT_EQ(C.readUntil("OK detached"), "OK detached d1");
  C.close();

  // Re-attach on a fresh connection; the server reports how far it got.
  TestClient C2;
  ASSERT_TRUE(C2.connect(H.port()));
  ASSERT_TRUE(C2.sendLine("HELLO d1 cc"));
  std::string Ok = C2.readLine();
  ASSERT_EQ(Ok.rfind("OK d1 attached offset=" + std::to_string(Cut), 0),
            0u)
      << Ok;
  ASSERT_TRUE(C2.send(Text.substr(Cut)));
  ASSERT_TRUE(C2.sendLine("END"));
  std::string Final = C2.readUntil("FINAL ");
  C2.readUntil("BYE");

  EXPECT_EQ(fileLines(H.sinkDir() + "/d1.jsonl"), Ref.ViolationLines);
  EXPECT_EQ(stripStreamTag(Final.substr(6), "d1"), Ref.Summary);
  H.stop();
}

TEST(ServerEndToEnd, IdleEvictionCheckpointsAndResumes) {
  ServerOptions Base;
  Base.IdleTimeoutSec = 1;
  ServerHarness H(Base);
  History Hist = generated(31, 200, /*Inject=*/true);
  std::string Text = writeTextHistory(Hist);
  MonitorOptions Options;
  Options.Level = IsolationLevel::CausalConsistency;
  Options.CheckIntervalTxns = 16;
  Options.Check.MaxWitnesses = 4;
  Reference Ref = referenceRun(Text, Options);

  size_t Cut = Text.find('\n', Text.size() / 2);
  ASSERT_NE(Cut, std::string::npos);
  ++Cut;

  TestClient C;
  ASSERT_TRUE(C.connect(H.port()));
  ASSERT_TRUE(C.sendLine("HELLO e1 cc interval=16"));
  ASSERT_EQ(C.readLine().rfind("OK e1 new", 0), 0u);
  ASSERT_TRUE(C.send(Text.substr(0, Cut)));
  C.close(); // vanish without DETACH

  // Wait past the idle timeout for the sweep to evict the session.
  std::string CkptPath =
      checkpointFilePathFor(H.checkpointDir(), "e1");
  for (int Tries = 0; Tries < 100; ++Tries) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    if (std::filesystem::exists(CkptPath) &&
        H.server().renderMetrics().find(
            "awdit_server_sessions_evicted_total 1") != std::string::npos)
      break;
  }
  EXPECT_TRUE(std::filesystem::exists(CkptPath));
  EXPECT_NE(H.server().renderMetrics().find(
                "awdit_server_sessions_evicted_total 1"),
            std::string::npos);

  // A new HELLO resumes the evicted tenant from its checkpoint.
  TestClient C2;
  ASSERT_TRUE(C2.connect(H.port()));
  ASSERT_TRUE(C2.sendLine("HELLO e1 cc"));
  std::string Ok = C2.readLine();
  ASSERT_EQ(Ok.rfind("OK e1 resumed offset=" + std::to_string(Cut), 0), 0u)
      << Ok;
  ASSERT_TRUE(C2.send(Text.substr(Cut)));
  ASSERT_TRUE(C2.sendLine("END"));
  std::string Final = C2.readUntil("FINAL ");
  C2.readUntil("BYE");

  EXPECT_EQ(fileLines(H.sinkDir() + "/e1.jsonl"), Ref.ViolationLines);
  EXPECT_EQ(stripStreamTag(Final.substr(6), "e1"), Ref.Summary);
  H.stop();
}

TEST(ServerEndToEnd, DrainRestartResumeIsExactlyOnce) {
  History Hist = generated(41, 400, /*Inject=*/true);
  std::string Text = writeTextHistory(Hist);
  MonitorOptions Options;
  Options.Level = IsolationLevel::CausalConsistency;
  Options.CheckIntervalTxns = 16;
  Options.Check.MaxWitnesses = 4;
  Reference Ref = referenceRun(Text, Options);
  ASSERT_FALSE(Ref.ViolationLines.empty());

  ServerOptions Base;
  Base.CheckpointIntervalFlushes = 1;
  ServerHarness H(Base);

  size_t Cut = Text.find('\n', Text.size() / 2);
  ASSERT_NE(Cut, std::string::npos);
  ++Cut;

  TestClient C;
  ASSERT_TRUE(C.connect(H.port()));
  ASSERT_TRUE(C.sendLine("HELLO r1 cc interval=16"));
  ASSERT_EQ(C.readLine().rfind("OK r1 new", 0), 0u);
  ASSERT_TRUE(C.send(Text.substr(0, Cut)));
  ASSERT_TRUE(C.sendLine("STATS"));
  C.readUntil("STATS "); // barrier: the session has applied the prefix

  // SIGTERM-equivalent: drain. The client sees DRAINING + FINAL + BYE.
  std::thread Stopper([&] { H.stop(); });
  std::string Draining = C.readUntil("DRAINING ");
  EXPECT_EQ(Draining.rfind("DRAINING r1 offset=" + std::to_string(Cut), 0),
            0u)
      << Draining;
  C.readUntil("BYE");
  Stopper.join();
  C.close();

  // Emulate a non-graceful death's leftover: a line appended after the
  // checkpoint would duplicate on resume unless the sink is reconciled.
  {
    std::ofstream Junk(H.sinkDir() + "/r1.jsonl", std::ios::app);
    Junk << "{\"kind\":\"junk past the checkpoint\"}\n";
  }

  // Restart with the same dirs; the tenant resumes and finishes.
  H.restart();
  TestClient C2;
  ASSERT_TRUE(C2.connect(H.port()));
  ASSERT_TRUE(C2.sendLine("HELLO r1 cc"));
  std::string Ok = C2.readLine();
  ASSERT_EQ(Ok.rfind("OK r1 resumed offset=" + std::to_string(Cut), 0), 0u)
      << Ok;
  ASSERT_TRUE(C2.send(Text.substr(Cut)));
  ASSERT_TRUE(C2.sendLine("END"));
  std::string Final = C2.readUntil("FINAL ");
  C2.readUntil("BYE");

  // The durable record across the restart is exactly the uninterrupted
  // standalone run: no duplicates from the drain, no gaps. (The junk
  // line emulates a non-graceful death that appended past the
  // checkpoint; resume reconciles the sink back to the checkpointed
  // violation count.)
  EXPECT_EQ(fileLines(H.sinkDir() + "/r1.jsonl"), Ref.ViolationLines);
  EXPECT_EQ(stripStreamTag(Final.substr(6), "r1"), Ref.Summary);
  EXPECT_EQ(fileLines(H.sinkDir() + "/r1.summary.json"),
            std::vector<std::string>{Ref.Summary});

  // Mismatching options on resume are rejected.
  TestClient C3;
  ASSERT_TRUE(C3.connect(H.port()));
  ASSERT_TRUE(C3.sendLine("HELLO gone ra"));
  ASSERT_EQ(C3.readLine().rfind("OK gone new", 0), 0u);
  ASSERT_TRUE(C3.sendLine("DETACH"));
  C3.readUntil("OK detached");
  TestClient C4;
  ASSERT_TRUE(C4.connect(H.port()));
  ASSERT_TRUE(C4.sendLine("HELLO gone cc"));
  EXPECT_NE(C4.readLine().find("incompatible"), std::string::npos);
  H.stop();
}

TEST(ServerEndToEnd, ReusedStreamIdStartsAFreshRecord) {
  ServerHarness H;
  History Hist = generated(51, 150, /*Inject=*/true);
  std::string Injected = writeTextHistory(Hist);
  std::string Clean = writeTextHistory(generated(52, 150, /*Inject=*/false));

  // First run: injected history under the name, through END.
  TestClient C;
  ASSERT_TRUE(C.connect(H.port()));
  ASSERT_TRUE(C.sendLine("HELLO reuse cc interval=16"));
  ASSERT_EQ(C.readLine().rfind("OK reuse new", 0), 0u);
  ASSERT_TRUE(C.send(Injected));
  ASSERT_TRUE(C.sendLine("END"));
  C.readUntil("BYE");
  EXPECT_FALSE(fileLines(H.sinkDir() + "/reuse.jsonl").empty());

  // Second run reuses the id for a different (clean) stream: the record
  // must be this run's alone, not an append onto the finished one.
  ASSERT_TRUE(C.sendLine("HELLO reuse cc interval=16"));
  ASSERT_EQ(C.readLine().rfind("OK reuse new offset=0", 0), 0u);
  ASSERT_TRUE(C.send(Clean));
  ASSERT_TRUE(C.sendLine("END"));
  std::string Final = C.readUntil("FINAL ");
  C.readUntil("BYE");
  EXPECT_NE(Final.find("\"consistent\":true"), std::string::npos) << Final;
  EXPECT_TRUE(fileLines(H.sinkDir() + "/reuse.jsonl").empty());
  MonitorOptions Options;
  Options.Level = IsolationLevel::CausalConsistency;
  Options.CheckIntervalTxns = 16;
  Options.Check.MaxWitnesses = 4;
  EXPECT_EQ(stripStreamTag(Final.substr(6), "reuse"),
            referenceRun(Clean, Options).Summary);
  H.stop();
}

//===----------------------------------------------------------------------===//
// Hot-session upgrade: a connection crossing the data-rate threshold ships
// zero-copy spans and its session's pump upgrades to the sharded ingest
// pipeline. The invariant under test: output stays byte-identical to the
// inline decoder (and to a standalone monitor) through the upgrade, every
// control verb, and reattach.
//===----------------------------------------------------------------------===//

/// Options that force the upgrade deterministically: an explicit thread
/// budget and a 1-byte/sec threshold, so the very first data read flips
/// the connection hot.
ServerOptions hotOptions() {
  ServerOptions Base;
  Base.Threads = 4;
  Base.ShardHotSessions = 3;
  Base.HotBytesPerSec = 1;
  return Base;
}

TEST(ServerEndToEnd, HotSessionUpgradeMatchesStandaloneMonitor) {
  ServerHarness H(hotOptions());
  History Hist = generated(41, 400, /*Inject=*/true);
  std::string Text = writeTextHistory(Hist);

  MonitorOptions Options;
  Options.Level = IsolationLevel::CausalConsistency;
  Options.CheckIntervalTxns = 32;
  Options.Check.MaxWitnesses = 4;
  Reference Ref = referenceRun(Text, Options);
  ASSERT_FALSE(Ref.ViolationLines.empty());

  TestClient C;
  ASSERT_TRUE(C.connect(H.port()));
  ASSERT_TRUE(C.sendLine("HELLO hot1 cc interval=32"));
  EXPECT_EQ(C.readLine(), "OK hot1 new offset=0 line=0");
  ASSERT_TRUE(C.send(Text));
  ASSERT_TRUE(C.sendLine("END"));
  std::vector<std::string> Pushed;
  std::string Final = C.readUntil("FINAL ", &Pushed);
  ASSERT_FALSE(Final.empty());
  EXPECT_EQ(C.readUntil("BYE"), "BYE");

  // Byte-identical everywhere: push channel, FINAL summary, durable sink.
  ASSERT_EQ(Pushed.size(), Ref.ViolationLines.size());
  for (size_t I = 0; I < Pushed.size(); ++I)
    EXPECT_EQ(stripStreamTag(Pushed[I], "hot1"), Ref.ViolationLines[I]);
  EXPECT_EQ(stripStreamTag(Final.substr(6), "hot1"), Ref.Summary);
  EXPECT_EQ(fileLines(H.sinkDir() + "/hot1.jsonl"), Ref.ViolationLines);

  // And the upgrade really happened (not a silently-cold run).
  std::string Metrics = H.server().renderMetrics();
  EXPECT_NE(Metrics.find("awdit_server_hot_upgrades_total 1"),
            std::string::npos)
      << Metrics;
  H.stop();
}

TEST(ServerEndToEnd, HotUpgradeDetachReattachContinuesWithOffset) {
  ServerHarness H(hotOptions());
  History Hist = generated(43, 300, /*Inject=*/true);
  std::string Text = writeTextHistory(Hist);
  MonitorOptions Options;
  Options.Level = IsolationLevel::CausalConsistency;
  Options.CheckIntervalTxns = 16;
  Options.Check.MaxWitnesses = 4;
  Reference Ref = referenceRun(Text, Options);

  size_t Cut = Text.find('\n', Text.size() / 2);
  ASSERT_NE(Cut, std::string::npos);
  ++Cut;

  TestClient C;
  ASSERT_TRUE(C.connect(H.port()));
  ASSERT_TRUE(C.sendLine("HELLO hot2 cc interval=16"));
  ASSERT_EQ(C.readLine().rfind("OK hot2 new offset=0", 0), 0u);
  ASSERT_TRUE(C.send(Text.substr(0, Cut)));
  ASSERT_TRUE(C.sendLine("DETACH"));
  // DETACH quiesces the pipeline losslessly: every byte sent before it
  // must be applied, and the resume offset must be exact — not the last
  // flush barrier's.
  EXPECT_EQ(C.readUntil("OK detached"), "OK detached hot2");
  C.close();

  TestClient C2;
  ASSERT_TRUE(C2.connect(H.port()));
  ASSERT_TRUE(C2.sendLine("HELLO hot2 cc"));
  std::string Ok = C2.readLine();
  ASSERT_EQ(Ok.rfind("OK hot2 attached offset=" + std::to_string(Cut), 0),
            0u)
      << Ok;
  ASSERT_TRUE(C2.send(Text.substr(Cut)));
  ASSERT_TRUE(C2.sendLine("END"));
  std::string Final = C2.readUntil("FINAL ");
  C2.readUntil("BYE");

  EXPECT_EQ(fileLines(H.sinkDir() + "/hot2.jsonl"), Ref.ViolationLines);
  EXPECT_EQ(stripStreamTag(Final.substr(6), "hot2"), Ref.Summary);
  H.stop();
}

TEST(ServerEndToEnd, HotUpgradeParseErrorReportsLineNumber) {
  ServerHarness H(hotOptions());
  TestClient C;
  ASSERT_TRUE(C.connect(H.port()));
  ASSERT_TRUE(C.sendLine("HELLO hot3 cc"));
  ASSERT_EQ(C.readLine().rfind("OK hot3 new", 0), 0u);
  // Two good lines, then garbage. The pipelined decoder surfaces the
  // failure asynchronously: the ERR lands at the next quiesce point (here,
  // END) but must keep the same "ERR <stream> line N: ..." shape as the
  // inline decoder.
  ASSERT_TRUE(C.send("b 0\nw 1 1\nbogus line\nw 2 2\n"));
  ASSERT_TRUE(C.sendLine("END"));
  std::string Err = C.readUntil("ERR ");
  ASSERT_EQ(Err.rfind("ERR hot3 line 3: ", 0), 0u) << Err;
  // The wedged stream still finalizes what it checked.
  EXPECT_FALSE(C.readUntil("FINAL ").empty());
  EXPECT_EQ(C.readUntil("BYE"), "BYE");
  H.stop();
}

TEST(ServerEndToEnd, ShutdownVerbDrainsTheServer) {
  ServerHarness H;
  TestClient C;
  ASSERT_TRUE(C.connect(H.port()));
  ASSERT_TRUE(C.sendLine("HELLO s cc"));
  ASSERT_EQ(C.readLine().rfind("OK s new", 0), 0u);
  ASSERT_TRUE(C.send("b 0\nw 1 1\nc\n"));
  ASSERT_TRUE(C.sendLine("SHUTDOWN"));
  EXPECT_EQ(C.readUntil("OK shutting-down"), "OK shutting-down");
  // The drain finalizes the session and says goodbye.
  EXPECT_EQ(C.readUntil("BYE"), "BYE");
  H.stop(); // idempotent join
}

//===----------------------------------------------------------------------===//
// Production hardening: auth, per-tenant quotas, slow-client muting, and
// multiplexed framing.
//===----------------------------------------------------------------------===//

TEST(ServerEndToEnd, AuthRejectsBeforeAnySessionStateIsCreated) {
  ServerOptions Base;
  Base.AuthToken = "sesame";
  ServerHarness H(Base);

  TestClient C;
  ASSERT_TRUE(C.connect(H.port()));
  ASSERT_TRUE(C.sendLine("HELLO a1 cc"));
  EXPECT_EQ(C.readLine(),
            "ERR auth token required (HELLO ... token=<secret>)");
  ASSERT_TRUE(C.sendLine("HELLO a1 cc token=wrong"));
  EXPECT_EQ(C.readLine(), "ERR auth bad token");

  // The operator verb is behind the same gate: an anonymous connection
  // must not toggle process-wide tracing (which clears the rings) or
  // write dump files.
  ASSERT_TRUE(C.sendLine("TRACE on"));
  EXPECT_EQ(C.readLine().rfind("ERR auth TRACE", 0), 0u);
  ASSERT_TRUE(C.sendLine("TRACE dump"));
  EXPECT_EQ(C.readLine().rfind("ERR auth TRACE", 0), 0u);
  EXPECT_FALSE(obs::traceEnabled());

  // Rejected HELLOs created nothing: no session, no sink, no checkpoint.
  std::string Page = H.server().renderMetrics();
  EXPECT_EQ(metricValue(Page, "awdit_server_sessions_created_total"), 0u)
      << Page;
  EXPECT_EQ(metricValue(Page, "awdit_server_auth_failures_total"), 4u);
  EXPECT_FALSE(std::filesystem::exists(H.sinkDir() + "/a1.jsonl"));
  EXPECT_FALSE(std::filesystem::exists(
      checkpointFilePathFor(H.checkpointDir(), "a1")));

  // The right token attaches normally on the same connection.
  ASSERT_TRUE(C.sendLine("HELLO a1 cc token=sesame"));
  ASSERT_EQ(C.readLine().rfind("OK a1 new", 0), 0u);
  ASSERT_TRUE(C.send("b 0\nw 1 1\nc\n"));
  ASSERT_TRUE(C.sendLine("END"));
  EXPECT_FALSE(C.readUntil("FINAL ").empty());
  EXPECT_EQ(C.readUntil("BYE"), "BYE");
  EXPECT_EQ(metricValue(H.server().renderMetrics(),
                        "awdit_server_sessions_created_total"),
            1u);
  H.stop();
}

TEST(ServerEndToEnd, QuotaRequestsAboveTheServerCapAreRefused) {
  ServerOptions Base;
  Base.MaxInboxBytes = 1 << 20;
  Base.MaxOutQueueBytes = 1 << 20;
  Base.MaxWindowBytes = 1 << 20;
  ServerHarness H(Base);

  TestClient C;
  ASSERT_TRUE(C.connect(H.port()));
  ASSERT_TRUE(C.sendLine("HELLO q1 cc inbox-bytes=2097152"));
  EXPECT_EQ(C.readLine(),
            "ERR quota inbox-bytes=2097152 exceeds server cap 1048576");
  ASSERT_TRUE(C.sendLine("HELLO q1 cc outq-bytes=2097152"));
  EXPECT_EQ(C.readLine(),
            "ERR quota outq-bytes=2097152 exceeds server cap 1048576");
  ASSERT_TRUE(C.sendLine("HELLO q1 cc window-bytes=2097152"));
  EXPECT_EQ(C.readLine(),
            "ERR quota window-bytes=2097152 exceeds server cap 1048576");

  // Refused before any state was created.
  std::string Page = H.server().renderMetrics();
  EXPECT_EQ(metricValue(Page, "awdit_server_quota_rejects_total"), 3u);
  EXPECT_EQ(metricValue(Page, "awdit_server_sessions_created_total"), 0u);

  // Requests at or under the caps attach normally.
  ASSERT_TRUE(C.sendLine("HELLO q1 cc inbox-bytes=1024 outq-bytes=65536 "
                         "window-bytes=1048576"));
  ASSERT_EQ(C.readLine().rfind("OK q1 new", 0), 0u);
  ASSERT_TRUE(C.sendLine("END"));
  EXPECT_FALSE(C.readUntil("FINAL ").empty());
  EXPECT_EQ(C.readUntil("BYE"), "BYE");
  H.stop();
}

TEST(ServerEndToEnd, WindowQuotaTripIsTypedAndDoesNotDisturbNeighbors) {
  ServerHarness H;
  std::string Text = writeTextHistory(generated(61, 250, /*Inject=*/true));
  MonitorOptions Options;
  Options.Level = IsolationLevel::CausalConsistency;
  Options.CheckIntervalTxns = 16;
  Options.Check.MaxWitnesses = 4;
  Reference Ref = referenceRun(Text, Options);

  // The quota-doomed tenant: any live transaction state exceeds a 1-byte
  // self-imposed window quota.
  TestClient A;
  ASSERT_TRUE(A.connect(H.port()));
  ASSERT_TRUE(A.sendLine("HELLO w1 cc interval=16 window-bytes=1"));
  ASSERT_EQ(A.readLine().rfind("OK w1 new", 0), 0u);
  ASSERT_TRUE(A.send(Text));
  ASSERT_TRUE(A.sendLine("END"));

  // A healthy neighbor runs to completion concurrently.
  TestClient B;
  ASSERT_TRUE(B.connect(H.port()));
  ASSERT_TRUE(B.sendLine("HELLO n1 cc interval=16"));
  ASSERT_EQ(B.readLine().rfind("OK n1 new", 0), 0u);
  ASSERT_TRUE(B.send(Text));
  ASSERT_TRUE(B.sendLine("END"));
  std::string FinalB = B.readUntil("FINAL ");
  B.readUntil("BYE");

  // The doomed tenant got the typed refusal, then still finalized.
  std::string Err = A.readUntil("ERR quota ");
  ASSERT_FALSE(Err.empty());
  EXPECT_NE(Err.find("window-bytes"), std::string::npos) << Err;
  EXPECT_NE(Err.find("exceeds quota 1"), std::string::npos) << Err;
  EXPECT_FALSE(A.readUntil("FINAL ").empty());
  EXPECT_EQ(A.readUntil("BYE"), "BYE");

  // The neighbor's record is the standalone one, untouched by the trip.
  EXPECT_EQ(fileLines(H.sinkDir() + "/n1.jsonl"), Ref.ViolationLines);
  EXPECT_EQ(stripStreamTag(FinalB.substr(6), "n1"), Ref.Summary);
  EXPECT_GE(metricValue(H.server().renderMetrics(),
                        "awdit_server_quota_trips_total"),
            1u);
  H.stop();
}

TEST(ServerEndToEnd, SlowReaderIsMutedWithoutDisturbingNeighbors) {
  ServerOptions Base;
  Base.SockSndBuf = 4096; // make the userspace output queue binding
  ServerHarness H(Base);

  // The slow client: a tiny output quota, a flood of STATS requests, and
  // a reader that never reads. Its replies overflow the queue and the
  // server mutes it — a counted disconnect, not a blocked write(2).
  TestClient A;
  ASSERT_TRUE(A.connect(H.port()));
  ASSERT_TRUE(A.sendLine("HELLO slow cc outq-bytes=1024"));
  ASSERT_EQ(A.readLine().rfind("OK slow new", 0), 0u);
  std::string Flood;
  for (int I = 0; I < 4000; ++I)
    Flood += "STATS\n";
  ASSERT_TRUE(A.send(Flood));

  // Meanwhile a neighbor completes a full byte-identical run.
  std::string Text = writeTextHistory(generated(62, 250, /*Inject=*/true));
  MonitorOptions Options;
  Options.Level = IsolationLevel::CausalConsistency;
  Options.CheckIntervalTxns = 16;
  Options.Check.MaxWitnesses = 4;
  Reference Ref = referenceRun(Text, Options);
  TestClient B;
  ASSERT_TRUE(B.connect(H.port()));
  ASSERT_TRUE(B.sendLine("HELLO live cc interval=16"));
  ASSERT_EQ(B.readLine().rfind("OK live new", 0), 0u);
  ASSERT_TRUE(B.send(Text));
  ASSERT_TRUE(B.sendLine("END"));
  std::string Final = B.readUntil("FINAL ");
  B.readUntil("BYE");
  EXPECT_EQ(fileLines(H.sinkDir() + "/live.jsonl"), Ref.ViolationLines);
  EXPECT_EQ(stripStreamTag(Final.substr(6), "live"), Ref.Summary);

  // The slow client was muted (counted), and the event loop never sat in
  // a blocked write: the old SO_SNDTIMEO path would show multi-second
  // stalls here.
  uint64_t Drops = 0;
  for (int Tries = 0; Tries < 100 && Drops == 0; ++Tries) {
    Drops = metricValue(H.server().renderMetrics(),
                        "awdit_server_slow_client_disconnects_total");
    if (Drops == 0 || Drops == ~0ull)
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  std::string Page = H.server().renderMetrics();
  EXPECT_GE(metricValue(Page, "awdit_server_slow_client_disconnects_total"),
            1u)
      << Page;
  EXPECT_LT(metricValue(Page, "awdit_server_poll_max_stall_micros"),
            2000000u)
      << Page;
  H.stop();
}

TEST(ServerEndToEnd, MuxConnectionHostsManyTenantsByteIdentical) {
  ServerHarness H;
  std::string T1 = writeTextHistory(generated(71, 250, /*Inject=*/true));
  std::string T2 = writeTextHistory(generated(72, 250, /*Inject=*/false));
  MonitorOptions Options;
  Options.Level = IsolationLevel::CausalConsistency;
  Options.CheckIntervalTxns = 16;
  Options.Check.MaxWitnesses = 4;
  Reference Ref1 = referenceRun(T1, Options);
  Reference Ref2 = referenceRun(T2, Options);
  ASSERT_FALSE(Ref1.ViolationLines.empty());

  TestClient C;
  ASSERT_TRUE(C.connect(H.port()));
  // HELLO is unframed (it names its stream); its reply carries the tag.
  ASSERT_TRUE(C.sendLine("HELLO m1 cc interval=16 mux=on"));
  EXPECT_EQ(C.readLine(), "@m1 OK m1 new offset=0 line=0");
  ASSERT_TRUE(C.sendLine("HELLO m2 cc interval=16 mux=on"));
  EXPECT_EQ(C.readLine(), "@m2 OK m2 new offset=0 line=0");

  // Interleave the two streams in line-aligned halves via switch frames.
  size_t Cut1 = T1.find('\n', T1.size() / 2) + 1;
  size_t Cut2 = T2.find('\n', T2.size() / 2) + 1;
  ASSERT_TRUE(C.send("@m1\n" + T1.substr(0, Cut1)));
  ASSERT_TRUE(C.send("@m2\n" + T2.substr(0, Cut2)));
  ASSERT_TRUE(C.send("@m1\n" + T1.substr(Cut1)));
  ASSERT_TRUE(C.send("@m2\n" + T2.substr(Cut2)));

  // An explicitly-routed verb replies under that stream's tag.
  ASSERT_TRUE(C.sendLine("@m1 STATS"));
  std::string Stats = C.readUntil("@m1 STATS ");
  EXPECT_NE(Stats.find("\"stream\":\"m1\""), std::string::npos) << Stats;
  // Routing to a stream this connection never attached is refused.
  ASSERT_TRUE(C.sendLine("@nosuch b 0"));
  EXPECT_EQ(C.readUntil("ERR mux: unknown"),
            "ERR mux: unknown stream 'nosuch'");

  ASSERT_TRUE(C.sendLine("@m1 END"));
  ASSERT_TRUE(C.sendLine("@m2 END"));
  std::string Final1, Final2;
  int ByesLeft = 2;
  while (ByesLeft > 0) {
    std::string Line = C.readLine();
    ASSERT_FALSE(Line.empty());
    if (Line.rfind("@m1 FINAL ", 0) == 0)
      Final1 = Line.substr(10);
    else if (Line.rfind("@m2 FINAL ", 0) == 0)
      Final2 = Line.substr(10);
    else if (Line == "@m1 BYE" || Line == "@m2 BYE")
      --ByesLeft;
  }

  // Each multiplexed tenant's record equals its standalone run.
  EXPECT_EQ(stripStreamTag(Final1, "m1"), Ref1.Summary);
  EXPECT_EQ(stripStreamTag(Final2, "m2"), Ref2.Summary);
  EXPECT_EQ(fileLines(H.sinkDir() + "/m1.jsonl"), Ref1.ViolationLines);
  EXPECT_EQ(fileLines(H.sinkDir() + "/m2.jsonl"), Ref2.ViolationLines);
  EXPECT_NE(Final2.find("\"consistent\":true"), std::string::npos);
  H.stop();
}

TEST(ServerEndToEnd, MuxFramingEdgeCases) {
  ServerHarness H;

  // Plain and mux framing cannot mix on one connection.
  TestClient P;
  ASSERT_TRUE(P.connect(H.port()));
  ASSERT_TRUE(P.sendLine("HELLO p1 cc"));
  ASSERT_EQ(P.readLine().rfind("OK p1 new", 0), 0u);
  ASSERT_TRUE(P.sendLine("HELLO p2 cc mux=on"));
  EXPECT_EQ(P.readLine(),
            "ERR cannot mix mux and plain framing on one connection");

  TestClient M;
  ASSERT_TRUE(M.connect(H.port()));
  ASSERT_TRUE(M.sendLine("HELLO x1 cc mux=on"));
  ASSERT_EQ(M.readLine().rfind("@x1 OK x1 new", 0), 0u);
  // Bare lines go to the current stream; an escaped `@@` line reaches the
  // session as a literal `@...` data line — which the parser rejects with
  // the stream's own tagged, line-numbered ERR (proof the unescape
  // happened and landed on the right tenant).
  ASSERT_TRUE(M.sendLine("b 0"));
  ASSERT_TRUE(M.sendLine("@@oops"));
  ASSERT_TRUE(M.sendLine("@x1 END"));
  std::string Err = M.readUntil("@x1 ERR ");
  EXPECT_NE(Err.find("x1 line 2:"), std::string::npos) << Err;
  EXPECT_NE(Err.find("@oops"), std::string::npos) << Err;
  M.readUntil("@x1 BYE");

  TestClient M2;
  ASSERT_TRUE(M2.connect(H.port()));
  ASSERT_TRUE(M2.sendLine("HELLO z1 cc mux=on"));
  ASSERT_EQ(M2.readLine().rfind("@z1 OK z1 new", 0), 0u);
  // HELLO must stay unframed; a frame with no stream name is malformed;
  // a duplicate attach on the same connection is refused under its tag.
  ASSERT_TRUE(M2.sendLine("@z1 HELLO other cc"));
  EXPECT_EQ(M2.readLine(),
            "ERR mux: send HELLO unframed (it names its stream)");
  ASSERT_TRUE(M2.sendLine("@"));
  EXPECT_EQ(M2.readLine(),
            "ERR mux: malformed frame (want '@<stream> [line]')");
  ASSERT_TRUE(M2.sendLine("HELLO z1 cc mux=on"));
  EXPECT_EQ(M2.readLine(),
            "@z1 ERR already attached to stream 'z1' on this connection");
  // Ending the only stream clears the current-stream cursor: bare data
  // needs an explicit switch again.
  ASSERT_TRUE(M2.sendLine("@z1 END"));
  M2.readUntil("@z1 BYE");
  ASSERT_TRUE(M2.sendLine("b 0"));
  EXPECT_EQ(M2.readLine(),
            "ERR mux: no current stream (switch with '@<stream>')");
  H.stop();
}

} // namespace
