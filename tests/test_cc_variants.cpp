//===- tests/test_cc_variants.cpp - CC implementation variants -----------------===//
//
// The pointer-scan CC checker (Algorithm 3 as written) and the on-the-fly
// variant (the paper tool's implementation, §5) must produce identical
// verdicts on every history shape.
//
//===----------------------------------------------------------------------===//

#include "checker/check_cc.h"
#include "sim/anomaly_injector.h"
#include "tests/test_util.h"
#include "workload/generator.h"

#include <gtest/gtest.h>

using namespace awdit;
using namespace awdit::test;

namespace {

bool ccPointers(const History &H) {
  std::vector<Violation> Out;
  return checkCc(H, Out);
}

bool ccOnTheFly(const History &H) {
  std::vector<Violation> Out;
  return checkCcOnTheFly(H, Out);
}

} // namespace

TEST(CcOnTheFly, PaperExamplesAgree) {
  constexpr Key X = 1, Y = 2;
  History Fig4c = makeHistory({
      {0, {W(X, 1)}},
      {0, {W(X, 2)}},
      {1, {R(X, 2), W(Y, 3)}},
      {2, {R(Y, 3), R(X, 1)}},
  });
  EXPECT_FALSE(ccOnTheFly(Fig4c));

  History Fig4d = makeHistory({
      {0, {W(X, 1)}},
      {1, {R(X, 1), W(X, 2)}},
      {1, {R(X, 2)}},
      {2, {R(X, 1), W(X, 3)}},
      {2, {R(X, 3)}},
  });
  EXPECT_TRUE(ccOnTheFly(Fig4d));
}

TEST(CcOnTheFly, CausalityCycleDetected) {
  History H = makeHistory({
      {0, {W(1, 1), R(2, 1)}},
      {1, {W(2, 1), R(1, 1)}},
  });
  std::vector<Violation> Out;
  EXPECT_FALSE(checkCcOnTheFly(H, Out));
  ASSERT_FALSE(Out.empty());
  EXPECT_EQ(Out[0].Kind, ViolationKind::CausalityCycle);
}

TEST(CcOnTheFly, FacadeVariantSelection) {
  History H = makeHistory({
      {0, {W(1, 1)}},
      {1, {R(1, 1)}},
  });
  CheckOptions Options;
  Options.Cc = CcVariant::OnTheFly;
  CheckReport Report =
      checkIsolation(H, IsolationLevel::CausalConsistency, Options);
  EXPECT_TRUE(Report.Consistent);
}

/// Differential sweep: the two variants agree on clean and injected
/// histories of every benchmark/mode combination.
class CcVariantDifferential
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(CcVariantDifferential, VariantsAgree) {
  auto [BenchIdx, ModeIdx, Seed] = GetParam();
  GenerateParams P;
  P.Bench = static_cast<Benchmark>(BenchIdx);
  P.Mode = static_cast<ConsistencyMode>(ModeIdx);
  P.Sessions = 7;
  P.Txns = 200;
  P.Seed = static_cast<uint64_t>(Seed) * 277 + BenchIdx;
  History H = generateHistory(P);
  EXPECT_EQ(ccPointers(H), ccOnTheFly(H));

  // Also with an injected CC-relevant anomaly.
  std::optional<History> Bad =
      injectAnomaly(H, AnomalyKind::CausalViolation, Seed);
  ASSERT_TRUE(Bad);
  EXPECT_EQ(ccPointers(*Bad), ccOnTheFly(*Bad));
  EXPECT_FALSE(ccOnTheFly(*Bad));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, CcVariantDifferential,
    ::testing::Combine(::testing::Range(0, 4),   // benchmarks
                       ::testing::Range(0, 4),   // modes
                       ::testing::Range(1, 4))); // seeds

TEST(CcOnTheFly, StatsMatchPointerVariant) {
  GenerateParams P;
  P.Bench = Benchmark::CTwitter;
  P.Mode = ConsistencyMode::Causal;
  P.Sessions = 10;
  P.Txns = 500;
  P.Seed = 9;
  History H = generateHistory(P);
  std::vector<Violation> OutA, OutB;
  SaturationStats StatsA, StatsB;
  EXPECT_EQ(checkCc(H, OutA, 4, &StatsA),
            checkCcOnTheFly(H, OutB, 4, &StatsB));
  // Both saturations are minimal per Definition 3.1; the exact edge sets
  // can differ only in so/wr-redundant choices, so allow slack while
  // pinning the same order of magnitude.
  EXPECT_NEAR(static_cast<double>(StatsA.InferredEdges),
              static_cast<double>(StatsB.InferredEdges),
              static_cast<double>(StatsA.InferredEdges) * 0.5 + 8);
}
