//===- tests/test_incremental_topo.cpp - Pearce–Kelly order tests ----------===//
//
// Unit battery for the dynamically maintained topological order behind the
// incremental saturation engine: the order invariant must hold after any
// acyclic insertion sequence, a cycle-closing insertion must be rejected
// with a genuine path, deletions and prefix compaction must preserve the
// invariant.
//
//===----------------------------------------------------------------------===//

#include "graph/incremental_topo.h"
#include "support/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

using namespace awdit;

namespace {

/// The maintained invariant: every edge goes forward in the order.
void expectOrderValid(const IncrementalTopoOrder &G) {
  std::vector<bool> SeenPos(G.numNodes(), false);
  for (uint32_t N = 0; N < G.numNodes(); ++N) {
    uint32_t P = G.position(N);
    ASSERT_LT(P, G.numNodes());
    EXPECT_FALSE(SeenPos[P]) << "position " << P << " assigned twice";
    SeenPos[P] = true;
    for (uint32_t S : G.succs(N))
      EXPECT_LT(G.position(N), G.position(S))
          << "edge " << N << " -> " << S << " violates the order";
  }
}

/// Reference reachability on the current adjacency.
bool reaches(const IncrementalTopoOrder &G, uint32_t From, uint32_t To) {
  std::vector<uint32_t> Stack{From};
  std::set<uint32_t> Seen{From};
  while (!Stack.empty()) {
    uint32_t U = Stack.back();
    Stack.pop_back();
    if (U == To)
      return true;
    for (uint32_t S : G.succs(U))
      if (Seen.insert(S).second)
        Stack.push_back(S);
  }
  return false;
}

} // namespace

TEST(IncrementalTopo, ForwardChainIsCheap) {
  IncrementalTopoOrder G;
  G.addNodes(5);
  for (uint32_t I = 0; I + 1 < 5; ++I)
    EXPECT_TRUE(G.addEdge(I, I + 1));
  expectOrderValid(G);
  EXPECT_EQ(G.numEdges(), 4u);
}

TEST(IncrementalTopo, BackwardInsertionReorders) {
  IncrementalTopoOrder G;
  G.addNodes(4);
  // Insert against the initial order: 3 -> 2 -> 1 -> 0.
  EXPECT_TRUE(G.addEdge(3, 2));
  EXPECT_TRUE(G.addEdge(2, 1));
  EXPECT_TRUE(G.addEdge(1, 0));
  expectOrderValid(G);
  EXPECT_LT(G.position(3), G.position(0));
}

TEST(IncrementalTopo, CycleIsRejectedWithPath) {
  IncrementalTopoOrder G;
  G.addNodes(4);
  ASSERT_TRUE(G.addEdge(0, 1));
  ASSERT_TRUE(G.addEdge(1, 2));
  ASSERT_TRUE(G.addEdge(2, 3));
  std::vector<uint32_t> Path;
  EXPECT_FALSE(G.addEdge(3, 0, &Path));
  // The path is the existing route To -> ... -> From.
  ASSERT_GE(Path.size(), 2u);
  EXPECT_EQ(Path.front(), 0u);
  EXPECT_EQ(Path.back(), 3u);
  for (size_t I = 0; I + 1 < Path.size(); ++I) {
    const std::vector<uint32_t> &Succs = G.succs(Path[I]);
    EXPECT_NE(std::find(Succs.begin(), Succs.end(), Path[I + 1]),
              Succs.end())
        << "path step " << I << " is not an edge";
  }
  // The rejected edge must not have been added.
  EXPECT_EQ(G.numEdges(), 3u);
  expectOrderValid(G);
}

TEST(IncrementalTopo, SelfEdgeIsRejected) {
  IncrementalTopoOrder G;
  G.addNodes(2);
  std::vector<uint32_t> Path;
  EXPECT_FALSE(G.addEdge(1, 1, &Path));
  EXPECT_EQ(G.numEdges(), 0u);
}

TEST(IncrementalTopo, RemoveEdgeAllowsReversal) {
  IncrementalTopoOrder G;
  G.addNodes(3);
  ASSERT_TRUE(G.addEdge(0, 1));
  ASSERT_TRUE(G.addEdge(1, 2));
  EXPECT_FALSE(G.addEdge(2, 0));
  G.removeEdge(0, 1);
  EXPECT_TRUE(G.addEdge(2, 0)); // the blocking path is gone
  expectOrderValid(G);
}

TEST(IncrementalTopo, RandomizedAgainstReachability) {
  Rng Rand(42);
  for (int Round = 0; Round < 20; ++Round) {
    size_t N = 8 + Rand.nextBelow(40);
    IncrementalTopoOrder G;
    G.addNodes(N);
    std::set<std::pair<uint32_t, uint32_t>> Present;
    for (int Step = 0; Step < 300; ++Step) {
      uint32_t U = static_cast<uint32_t>(Rand.nextBelow(N));
      uint32_t V = static_cast<uint32_t>(Rand.nextBelow(N));
      if (U == V || Present.count({U, V}))
        continue;
      bool WouldCycle = reaches(G, V, U);
      std::vector<uint32_t> Path;
      bool Added = G.addEdge(U, V, &Path);
      EXPECT_EQ(Added, !WouldCycle)
          << "edge " << U << " -> " << V << " round " << Round;
      if (Added) {
        Present.insert({U, V});
      } else {
        ASSERT_FALSE(Path.empty());
        EXPECT_EQ(Path.front(), V);
        EXPECT_EQ(Path.back(), U);
      }
      // Occasionally delete a random present edge.
      if (!Present.empty() && Rand.nextBelow(10) == 0) {
        auto It = Present.begin();
        std::advance(It, Rand.nextBelow(Present.size()));
        G.removeEdge(It->first, It->second);
        Present.erase(It);
      }
    }
    expectOrderValid(G);
    EXPECT_EQ(G.numEdges(), Present.size());
  }
}

TEST(IncrementalTopo, CompactPrefixPreservesOrder) {
  IncrementalTopoOrder G;
  G.addNodes(8);
  // A few backward insertions to scramble positions first.
  ASSERT_TRUE(G.addEdge(5, 2));
  ASSERT_TRUE(G.addEdge(7, 3));
  ASSERT_TRUE(G.addEdge(2, 3));
  ASSERT_TRUE(G.addEdge(0, 1));
  // Remove everything incident to the prefix [0, 2).
  G.removeEdge(0, 1);
  uint32_t Pos5Before = G.position(5), Pos3Before = G.position(3);
  bool FiveBeforeThree = Pos5Before < Pos3Before;
  G.compactPrefix(2);
  ASSERT_EQ(G.numNodes(), 6u);
  // Old node 5 is now 3, old 3 is now 1; relative order preserved.
  EXPECT_EQ(G.position(3) < G.position(1), FiveBeforeThree);
  expectOrderValid(G);
  // Surviving edges remapped: 5->2 became 3->0, 7->3 became 5->1,
  // 2->3 became 0->1.
  const std::vector<uint32_t> &S3 = G.succs(3);
  EXPECT_NE(std::find(S3.begin(), S3.end(), 0u), S3.end());
}

TEST(IncrementalTopo, ClearEdgesAndCompactDropsEverything) {
  IncrementalTopoOrder G;
  G.addNodes(6);
  ASSERT_TRUE(G.addEdge(0, 3));
  ASSERT_TRUE(G.addEdge(3, 5));
  ASSERT_TRUE(G.addEdge(4, 1));
  G.clearEdgesAndCompact(3);
  EXPECT_EQ(G.numNodes(), 3u);
  EXPECT_EQ(G.numEdges(), 0u);
  // Re-inserting in the surviving order is forward.
  EXPECT_TRUE(G.addEdge(0, 2));
  expectOrderValid(G);
}
