//===- tests/test_paper_examples.cpp - The paper's worked examples ------------===//
//
// Histories from the paper's figures, checked against the verdicts the
// paper states: Fig. 1a (RC-inconsistent), Fig. 4a-4d (the consistency
// ladder of Examples 2.5, 2.7, 2.9), and the Fig. 5/6 reduction instances.
//
//===----------------------------------------------------------------------===//

#include "checker/read_consistency.h"
#include "reduction/reductions.h"
#include "reduction/triangle.h"
#include "tests/test_util.h"

#include <gtest/gtest.h>

using namespace awdit;
using namespace awdit::test;

namespace {
constexpr Key X = 1, Y = 2, Z = 3;
} // namespace

TEST(PaperExamples, Fig1aViolatesRc) {
  // s1: t1 = {W(x,1), W(y,1)}; s2: t2 = {W(x,2)}; s3: t3 = {W(x,3)},
  // t4 = {W(z,1), W(y,2)}; s4: t5 = {R(x,1), R(x,2), R(x,3)},
  // t6 = {R(z,1), R(y,1)}. The inferred edges t1->t2, t2->t3, t4->t1 close
  // a cycle with t3 -so-> t4.
  History H = makeHistory({
      {0, {W(X, 1), W(Y, 1)}},
      {1, {W(X, 2)}},
      {2, {W(X, 3)}},
      {2, {W(Z, 1), W(Y, 2)}},
      {3, {R(X, 1), R(X, 2), R(X, 3)}},
      {3, {R(Z, 1), R(Y, 1)}},
  });
  CheckReport Report = checkIsolation(H, IsolationLevel::ReadCommitted);
  EXPECT_FALSE(Report.Consistent);
  EXPECT_TRUE(hasViolation(Report, ViolationKind::CommitOrderCycle));
  // RC is the weakest level: RA and CC fail as well.
  EXPECT_FALSE(consistent(H, IsolationLevel::ReadAtomic));
  EXPECT_FALSE(consistent(H, IsolationLevel::CausalConsistency));
}

TEST(PaperExamples, Fig4aReadConsistentButNotRc) {
  // Example 2.5: t3 reads x=2 then the older x=1 although t1 -so-> t2.
  History H = makeHistory({
      {0, {W(X, 1)}},
      {0, {W(X, 2)}},
      {1, {R(X, 2), R(X, 1)}},
  });
  std::vector<Violation> Rc;
  EXPECT_TRUE(checkReadConsistency(H, Rc));
  EXPECT_FALSE(consistent(H, IsolationLevel::ReadCommitted));
}

TEST(PaperExamples, Fig4bRcButNotRa) {
  // Example 2.5/2.7: t3 observes t1's x but t2's y — fine for RC (t1 is
  // observed first), fractured for RA.
  History H = makeHistory({
      {0, {W(X, 1)}},
      {0, {W(X, 2), W(Y, 2)}},
      {1, {R(X, 1), R(Y, 2)}},
  });
  EXPECT_TRUE(consistent(H, IsolationLevel::ReadCommitted));
  EXPECT_FALSE(consistent(H, IsolationLevel::ReadAtomic));
  EXPECT_FALSE(consistent(H, IsolationLevel::CausalConsistency));
}

TEST(PaperExamples, Fig4cRaButNotCc) {
  // Example 2.7/2.9: t4 observes t2 through y yet reads the x-version t2
  // overwrote; only the transitive CC premise fires.
  History H = makeHistory({
      {0, {W(X, 1)}},
      {0, {W(X, 2)}},
      {1, {R(X, 2), W(Y, 3)}},
      {2, {R(Y, 3), R(X, 1)}},
  });
  EXPECT_TRUE(consistent(H, IsolationLevel::ReadCommitted));
  EXPECT_TRUE(consistent(H, IsolationLevel::ReadAtomic));
  EXPECT_FALSE(consistent(H, IsolationLevel::CausalConsistency));
}

TEST(PaperExamples, Fig4dCausallyConsistent) {
  // Example 2.9: weak (non-serializable) but causally consistent.
  History H = makeHistory({
      {0, {W(X, 1)}},
      {1, {R(X, 1), W(X, 2)}},
      {1, {R(X, 2)}},
      {2, {R(X, 1), W(X, 3)}},
      {2, {R(X, 3)}},
  });
  EXPECT_TRUE(consistent(H, IsolationLevel::CausalConsistency));
  EXPECT_TRUE(consistent(H, IsolationLevel::ReadAtomic));
  EXPECT_TRUE(consistent(H, IsolationLevel::ReadCommitted));
}

TEST(PaperExamples, Fig5TriangleReduction) {
  // Fig. 5a is the triangle graph; the general reduction history must be
  // inconsistent at every level between CC and RC (Lemma 4.2).
  UGraph G(3);
  G.addEdge(0, 1);
  G.addEdge(1, 2);
  G.addEdge(0, 2);
  ASSERT_FALSE(isTriangleFree(G));
  History H = reduceGeneral(G);
  for (IsolationLevel Level : AllIsolationLevels)
    EXPECT_FALSE(consistent(H, Level))
        << "level " << isolationLevelName(Level);
}

TEST(PaperExamples, Fig6TwoSessionRaReduction) {
  // Fig. 6 shows the same triangle graph under the two-session RA
  // construction (Lemma 4.3).
  UGraph G(3);
  G.addEdge(0, 1);
  G.addEdge(1, 2);
  G.addEdge(0, 2);
  History H = reduceRaTwoSessions(G);
  EXPECT_EQ(H.numSessions(), 2u);
  EXPECT_FALSE(consistent(H, IsolationLevel::ReadAtomic));
}

TEST(PaperExamples, PathGraphReductionsConsistent) {
  // A path a-b-c is triangle-free: all reduction histories check out.
  UGraph G(3);
  G.addEdge(0, 1);
  G.addEdge(1, 2);
  ASSERT_TRUE(isTriangleFree(G));
  for (IsolationLevel Level : AllIsolationLevels)
    EXPECT_TRUE(consistent(reduceGeneral(G), Level));
  EXPECT_TRUE(
      consistent(reduceRaTwoSessions(G), IsolationLevel::ReadAtomic));
  EXPECT_TRUE(
      consistent(reduceRcSingleSession(G), IsolationLevel::ReadCommitted));
}

TEST(PaperExamples, MotivatingCcCycleShape) {
  // The §1.1 CC discussion in miniature: a reader observes a transaction
  // through a two-hop causal chain while reading a stale version of a key
  // that chain's origin overwrote.
  History H = makeHistory({
      {0, {W(X, 1)}},
      {0, {W(X, 2), W(Z, 1)}},
      {1, {R(Z, 1), W(Y, 1)}},
      {2, {R(Y, 1), R(X, 1)}},
  });
  EXPECT_TRUE(consistent(H, IsolationLevel::ReadAtomic));
  CheckReport Report =
      checkIsolation(H, IsolationLevel::CausalConsistency);
  EXPECT_FALSE(Report.Consistent);
  EXPECT_TRUE(hasViolation(Report, ViolationKind::CommitOrderCycle));
}
