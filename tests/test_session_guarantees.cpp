//===- tests/test_session_guarantees.cpp - Session guarantee tests --------------===//

#include "checker/commit_graph.h"
#include "checker/read_consistency.h"
#include "checker/session_guarantees.h"
#include "tests/test_util.h"
#include "workload/generator.h"

#include <gtest/gtest.h>

#include <unordered_set>

using namespace awdit;
using namespace awdit::test;

namespace {
constexpr Key X = 1, Y = 2;

bool holds(const History &H, SessionGuarantee G) {
  std::vector<Violation> Out;
  return checkSessionGuarantee(H, G, Out);
}

/// Quadratic reference oracle: apply each guarantee's axiom over all
/// (earlier transaction, read) pairs directly.
bool naiveHolds(const History &H, SessionGuarantee G) {
  std::vector<Violation> Sink;
  if (!checkReadConsistency(H, Sink))
    return false;
  CommitGraph Co(H);
  for (SessionId S = 0; S < H.numSessions(); ++S) {
    const std::vector<TxnId> &Sess = H.sessionTxns(S);
    for (size_t I = 0; I < Sess.size(); ++I) {
      const Transaction &T = H.txn(Sess[I]);
      for (uint32_t ReadIdx : T.ExtReads) {
        const ReadInfo &RI = T.Reads[ReadIdx];
        for (size_t J = 0; J < I; ++J) {
          const Transaction &Earlier = H.txn(Sess[J]);
          if (G == SessionGuarantee::ReadYourWrites) {
            if (Earlier.writesKey(RI.K) && Sess[J] != RI.Writer)
              Co.inferEdge(Sess[J], RI.Writer);
          } else {
            for (TxnId T2 : Earlier.ReadFroms)
              if (H.txn(T2).writesKey(RI.K) && T2 != RI.Writer)
                Co.inferEdge(T2, RI.Writer);
          }
        }
      }
    }
  }
  return Co.checkAcyclic(Sink, 0);
}

} // namespace

TEST(SessionGuarantees, NamesAndParsing) {
  EXPECT_STREQ(sessionGuaranteeName(SessionGuarantee::ReadYourWrites),
               "Read-Your-Writes");
  EXPECT_STREQ(sessionGuaranteeName(SessionGuarantee::MonotonicReads),
               "Monotonic-Reads");
  EXPECT_EQ(parseSessionGuarantee("ryw"),
            SessionGuarantee::ReadYourWrites);
  EXPECT_EQ(parseSessionGuarantee("Monotonic-Reads"),
            SessionGuarantee::MonotonicReads);
  EXPECT_FALSE(parseSessionGuarantee("wfr").has_value());
}

TEST(SessionGuarantees, RywViolatedByStaleOwnKey) {
  History H = makeHistory({
      {0, {W(X, 1)}},
      {0, {W(X, 2)}},
      {0, {R(X, 1)}}, // Reads around the session's own later write.
  });
  EXPECT_FALSE(holds(H, SessionGuarantee::ReadYourWrites));
}

TEST(SessionGuarantees, RywAllowsFreshReads) {
  History H = makeHistory({
      {0, {W(X, 1)}},
      {1, {W(X, 2)}},
      {1, {R(X, 2)}},
  });
  EXPECT_TRUE(holds(H, SessionGuarantee::ReadYourWrites));
}

TEST(SessionGuarantees, RywIgnoresOtherSessions) {
  // Another session overwrote x; reading the old version is not a RYW
  // concern (it would be an MR/CC one only if observed).
  History H = makeHistory({
      {0, {W(X, 1)}},
      {1, {W(X, 2)}},
      {2, {R(X, 1)}},
  });
  EXPECT_TRUE(holds(H, SessionGuarantee::ReadYourWrites));
}

TEST(SessionGuarantees, MrViolatedByBackwardsReads) {
  History H = makeHistory({
      {0, {W(X, 1)}},
      {0, {W(X, 2)}},
      {1, {R(X, 2)}},
      {1, {R(X, 1)}}, // x went backwards across transactions.
  });
  EXPECT_FALSE(holds(H, SessionGuarantee::MonotonicReads));
  // ...but RYW does not care (no own writes).
  EXPECT_TRUE(holds(H, SessionGuarantee::ReadYourWrites));
}

TEST(SessionGuarantees, MrIntraTxnBackwardsIsRcsConcern) {
  // Within one transaction the non-monotonic read is RC's axiom, not MR's.
  History H = makeHistory({
      {0, {W(X, 1)}},
      {0, {W(X, 2)}},
      {1, {R(X, 2), R(X, 1)}},
  });
  EXPECT_TRUE(holds(H, SessionGuarantee::MonotonicReads));
  EXPECT_FALSE(consistent(H, IsolationLevel::ReadCommitted));
}

TEST(SessionGuarantees, MrTracksIndirectObservations) {
  // The session observes t2 through key y, then reads the x-version t2
  // overwrote in a later transaction.
  History H = makeHistory({
      {0, {W(X, 1)}},
      {0, {W(X, 2), W(Y, 1)}},
      {1, {R(Y, 1)}},
      {1, {R(X, 1)}},
  });
  EXPECT_FALSE(holds(H, SessionGuarantee::MonotonicReads));
}

TEST(SessionGuarantees, MrPendingSurvivesUnrelatedTxns) {
  History H = makeHistory({
      {0, {W(X, 1)}},
      {0, {W(X, 2), W(Y, 1)}},
      {2, {W(10, 7)}},
      {1, {R(Y, 1)}},
      {1, {R(10, 7)}}, // Unrelated transaction in between.
      {1, {R(X, 1)}},
  });
  EXPECT_FALSE(holds(H, SessionGuarantee::MonotonicReads));
}

TEST(SessionGuarantees, Fig4cSatisfiesBothGuarantees) {
  // CC-inconsistent, yet fine for single-session-scope guarantees.
  History H = makeHistory({
      {0, {W(X, 1)}},
      {0, {W(X, 2)}},
      {1, {R(X, 2), W(Y, 3)}},
      {2, {R(Y, 3), R(X, 1)}},
  });
  EXPECT_FALSE(consistent(H, IsolationLevel::CausalConsistency));
  EXPECT_TRUE(holds(H, SessionGuarantee::ReadYourWrites));
  EXPECT_TRUE(holds(H, SessionGuarantee::MonotonicReads));
}

/// CC implies both guarantees; the fast saturations agree with the
/// quadratic oracle on randomized histories.
class SessionGuaranteeProperty
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(SessionGuaranteeProperty, OracleAgreementAndCcImplication) {
  auto [ModeIdx, Seed] = GetParam();
  GenerateParams P;
  P.Bench = Benchmark::Random;
  P.Mode = static_cast<ConsistencyMode>(ModeIdx);
  P.Sessions = 6;
  P.Txns = 150;
  P.KeySpace = 16;
  P.Seed = static_cast<uint64_t>(Seed) * 431 + ModeIdx;
  History H = generateHistory(P);

  for (SessionGuarantee G : {SessionGuarantee::ReadYourWrites,
                             SessionGuarantee::MonotonicReads}) {
    EXPECT_EQ(holds(H, G), naiveHolds(H, G))
        << sessionGuaranteeName(G);
    if (consistent(H, IsolationLevel::CausalConsistency)) {
      EXPECT_TRUE(holds(H, G))
          << "CC must imply " << sessionGuaranteeName(G);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, SessionGuaranteeProperty,
                         ::testing::Combine(::testing::Range(0, 4),
                                            ::testing::Range(1, 7)));

TEST(SessionGuarantees, FuzzAgainstOracle) {
  Rng Rand(777);
  for (int Trial = 0; Trial < 80; ++Trial) {
    HistoryBuilder B;
    size_t NumSessions = 1 + Rand.nextBelow(3);
    for (size_t S = 0; S < NumSessions; ++S)
      B.addSession();
    Value NextVal = 1;
    std::vector<std::pair<Key, Value>> Written;
    size_t NumTxns = 2 + Rand.nextBelow(10);
    for (size_t T = 0; T < NumTxns; ++T) {
      TxnId Id =
          B.beginTxn(static_cast<SessionId>(Rand.nextBelow(NumSessions)));
      size_t NumOps = 1 + Rand.nextBelow(4);
      for (size_t O = 0; O < NumOps; ++O) {
        Key K = 1 + Rand.nextBelow(4);
        if (Rand.nextBool(0.5) || Written.empty()) {
          B.write(Id, K, NextVal);
          Written.push_back({K, NextVal});
          ++NextVal;
        } else {
          auto [WK, WV] = Written[Rand.nextBelow(Written.size())];
          B.read(Id, WK, WV);
        }
      }
    }
    std::optional<History> H = B.build();
    ASSERT_TRUE(H);
    for (SessionGuarantee G : {SessionGuarantee::ReadYourWrites,
                               SessionGuarantee::MonotonicReads})
      EXPECT_EQ(holds(*H, G), naiveHolds(*H, G))
          << "trial " << Trial << " " << sessionGuaranteeName(G);
  }
}
