//===- tests/test_history.cpp - History model tests ---------------------------===//

#include "history/history_builder.h"
#include "history/history_stats.h"
#include "tests/test_util.h"

#include <gtest/gtest.h>

using namespace awdit;
using namespace awdit::test;

TEST(HistoryBuilder, EmptyHistory) {
  HistoryBuilder B;
  std::optional<History> H = B.build();
  ASSERT_TRUE(H);
  EXPECT_EQ(H->numTxns(), 0u);
  EXPECT_EQ(H->numOps(), 0u);
  EXPECT_EQ(H->numSessions(), 0u);
}

TEST(HistoryBuilder, ResolvesExternalWr) {
  History H = makeHistory({
      {0, {W(1, 10)}},
      {1, {R(1, 10)}},
  });
  const Transaction &Reader = H.txn(1);
  ASSERT_EQ(Reader.Reads.size(), 1u);
  EXPECT_EQ(Reader.Reads[0].Writer, 0u);
  EXPECT_EQ(Reader.Reads[0].WriterOp, 0u);
  ASSERT_EQ(Reader.ExtReads.size(), 1u);
  ASSERT_EQ(Reader.ReadFroms.size(), 1u);
  EXPECT_EQ(Reader.ReadFroms[0], 0u);
}

TEST(HistoryBuilder, InternalReadIsNotExternal) {
  History H = makeHistory({
      {0, {W(1, 10), R(1, 10)}},
  });
  const Transaction &T = H.txn(0);
  ASSERT_EQ(T.Reads.size(), 1u);
  EXPECT_EQ(T.Reads[0].Writer, 0u);
  EXPECT_TRUE(T.ExtReads.empty());
  EXPECT_TRUE(T.ReadFroms.empty());
}

TEST(HistoryBuilder, ThinAirReadUnresolved) {
  History H = makeHistory({
      {0, {R(1, 99)}},
  });
  EXPECT_EQ(H.txn(0).Reads[0].Writer, NoTxn);
  EXPECT_TRUE(H.txn(0).ExtReads.empty());
}

TEST(HistoryBuilder, DuplicateWriteRejected) {
  HistoryBuilder B;
  SessionId S = B.addSession();
  TxnId T1 = B.beginTxn(S);
  B.write(T1, 1, 10);
  TxnId T2 = B.beginTxn(S);
  B.write(T2, 1, 10);
  std::string Err;
  EXPECT_FALSE(B.build(&Err).has_value());
  EXPECT_NE(Err.find("duplicate"), std::string::npos);
}

TEST(HistoryBuilder, AbortedTxnLeavesSessionOrder) {
  History H = makeHistory({
      {0, {W(1, 10)}},
      {0, {W(2, 20)}, /*Abort=*/true},
      {0, {W(3, 30)}},
  });
  EXPECT_EQ(H.numCommitted(), 2u);
  ASSERT_EQ(H.sessionTxns(0).size(), 2u);
  EXPECT_EQ(H.sessionTxns(0)[0], 0u);
  EXPECT_EQ(H.sessionTxns(0)[1], 2u);
  EXPECT_EQ(H.soSuccessor(0), 2u);
  EXPECT_EQ(H.soSuccessor(2), NoTxn);
}

TEST(HistoryBuilder, ReadFromAbortedIsNotExternal) {
  History H = makeHistory({
      {0, {W(1, 10)}, /*Abort=*/true},
      {1, {R(1, 10)}},
  });
  const Transaction &Reader = H.txn(1);
  EXPECT_EQ(Reader.Reads[0].Writer, 0u);
  // Aborted writers do not produce txn-level wr edges.
  EXPECT_TRUE(Reader.ExtReads.empty());
}

TEST(HistoryBuilder, WriteKeysSortedAndDeduped) {
  History H = makeHistory({
      {0, {W(5, 1), W(3, 2), W(5, 3), W(9, 4)}},
  });
  const Transaction &T = H.txn(0);
  ASSERT_EQ(T.WriteKeys.size(), 3u);
  EXPECT_EQ(T.WriteKeys[0], 3u);
  EXPECT_EQ(T.WriteKeys[1], 5u);
  EXPECT_EQ(T.WriteKeys[2], 9u);
  EXPECT_TRUE(T.writesKey(5));
  EXPECT_FALSE(T.writesKey(4));
}

TEST(HistoryBuilder, ImplicitInitialStateCreatesInitTxn) {
  HistoryBuilder B;
  SessionId S = B.addSession();
  TxnId T = B.beginTxn(S);
  B.read(T, 7, 0);
  B.setImplicitInitialState(true);
  std::optional<History> H = B.build();
  ASSERT_TRUE(H);
  // A synthetic init txn was appended in a fresh session.
  EXPECT_EQ(H->numTxns(), 2u);
  EXPECT_EQ(H->numSessions(), 2u);
  const Transaction &Reader = H->txn(0);
  EXPECT_EQ(Reader.Reads[0].Writer, 1u);
  EXPECT_TRUE(H->txn(1).writesKey(7));
}

TEST(HistoryBuilder, NoInitTxnWhenDisabled) {
  HistoryBuilder B;
  SessionId S = B.addSession();
  TxnId T = B.beginTxn(S);
  B.read(T, 7, 0);
  std::optional<History> H = B.build();
  ASSERT_TRUE(H);
  EXPECT_EQ(H->numTxns(), 1u);
  EXPECT_EQ(H->txn(0).Reads[0].Writer, NoTxn);
}

TEST(HistoryBuilder, InitTxnNotDuplicatedForExplicitZeroWrite) {
  HistoryBuilder B;
  SessionId S = B.addSession();
  TxnId T0 = B.beginTxn(S);
  B.write(T0, 7, 0);
  TxnId T1 = B.beginTxn(S);
  B.read(T1, 7, 0);
  B.setImplicitInitialState(true);
  std::optional<History> H = B.build();
  ASSERT_TRUE(H);
  EXPECT_EQ(H->numTxns(), 2u); // No synthetic init.
  EXPECT_EQ(H->txn(1).Reads[0].Writer, 0u);
}

TEST(HistoryBuilder, ReadFromsDedupedInFirstReadOrder) {
  History H = makeHistory({
      {0, {W(1, 10), W(2, 20)}},
      {1, {W(3, 30)}},
      {2, {R(3, 30), R(1, 10), R(2, 20)}},
  });
  const Transaction &Reader = H.txn(2);
  ASSERT_EQ(Reader.ReadFroms.size(), 2u);
  EXPECT_EQ(Reader.ReadFroms[0], 1u);
  EXPECT_EQ(Reader.ReadFroms[1], 0u);
  EXPECT_EQ(Reader.ExtReads.size(), 3u);
}

TEST(History, SizeCountsAbortedOps) {
  History H = makeHistory({
      {0, {W(1, 10), W(2, 20)}},
      {0, {W(3, 30)}, /*Abort=*/true},
  });
  EXPECT_EQ(H.numOps(), 3u);
  EXPECT_EQ(H.numKeys(), 3u);
}

TEST(History, TxnLabelFormat) {
  History H = makeHistory({
      {0, {W(1, 10)}},
      {0, {W(2, 20)}, /*Abort=*/true},
  });
  EXPECT_EQ(H.txnLabel(0), "t0(s0#0)");
  EXPECT_NE(H.txnLabel(1).find("aborted"), std::string::npos);
}

TEST(HistoryStats, ComputesShape) {
  History H = makeHistory({
      {0, {W(1, 10), R(1, 10)}},
      {1, {R(1, 10), W(2, 20), W(3, 30)}},
      {1, {W(4, 40)}, /*Abort=*/true},
  });
  HistoryStats S = computeStats(H);
  EXPECT_EQ(S.NumOps, 6u);
  EXPECT_EQ(S.NumTxns, 3u);
  EXPECT_EQ(S.NumCommitted, 2u);
  EXPECT_EQ(S.NumAborted, 1u);
  EXPECT_EQ(S.NumSessions, 2u);
  EXPECT_EQ(S.NumReads, 2u);
  EXPECT_EQ(S.NumWrites, 4u);
  EXPECT_EQ(S.NumExternalReads, 1u);
  EXPECT_EQ(S.MaxTxnSize, 3u);
  EXPECT_FALSE(S.toString().empty());
}
