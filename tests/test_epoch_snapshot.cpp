//===- tests/test_epoch_snapshot.cpp - EpochTracker unit tests -------------===//
//
// The validation oracle of speculative saturation (support/epoch_snapshot.h):
// a slot is "touched" exactly when it was stamped since the current epoch
// opened, opening an epoch invalidates every stamp at once, and the tracker
// follows the owner array through growth and front-compaction.
//
//===----------------------------------------------------------------------===//

#include "support/epoch_snapshot.h"

#include <gtest/gtest.h>

using namespace awdit;

TEST(EpochTracker, StartsUntouched) {
  EpochTracker T;
  EXPECT_EQ(T.numSlots(), 0u);
  T.ensureSlots(4);
  EXPECT_EQ(T.numSlots(), 4u);
  T.beginEpoch();
  for (size_t I = 0; I < 4; ++I)
    EXPECT_FALSE(T.touchedInCurrentEpoch(I)) << I;
  // Out-of-range slots are never touched (no UB, no growth).
  EXPECT_FALSE(T.touchedInCurrentEpoch(99));
}

TEST(EpochTracker, TouchVisibleOnlyWithinItsEpoch) {
  EpochTracker T;
  T.ensureSlots(8);
  uint64_t E1 = T.beginEpoch();
  EXPECT_GT(E1, 0u); // 0 is the never-stamped sentinel
  T.touch(2);
  T.touch(5);
  EXPECT_TRUE(T.touchedInCurrentEpoch(2));
  EXPECT_TRUE(T.touchedInCurrentEpoch(5));
  EXPECT_FALSE(T.touchedInCurrentEpoch(3));

  uint64_t E2 = T.beginEpoch();
  EXPECT_GT(E2, E1);
  // O(1) invalidation: nothing survives the epoch boundary.
  for (size_t I = 0; I < 8; ++I)
    EXPECT_FALSE(T.touchedInCurrentEpoch(I)) << I;
}

TEST(EpochTracker, EnsureSlotsGrowsOnlyAndKeepsStamps) {
  EpochTracker T;
  T.ensureSlots(8);
  T.beginEpoch();
  T.touch(1);
  T.ensureSlots(4); // never shrinks
  EXPECT_EQ(T.numSlots(), 8u);
  T.ensureSlots(16); // growth keeps existing stamps...
  EXPECT_EQ(T.numSlots(), 16u);
  EXPECT_TRUE(T.touchedInCurrentEpoch(1));
  // ...and new slots start untouched even mid-epoch.
  for (size_t I = 8; I < 16; ++I)
    EXPECT_FALSE(T.touchedInCurrentEpoch(I)) << I;
}

TEST(EpochTracker, EraseFrontRenumbersSurvivors) {
  EpochTracker T;
  T.ensureSlots(6);
  T.beginEpoch();
  T.touch(3);
  T.eraseFront(2); // slots 2..5 become 0..3; old slot 3 is now slot 1
  EXPECT_EQ(T.numSlots(), 4u);
  EXPECT_TRUE(T.touchedInCurrentEpoch(1));
  EXPECT_FALSE(T.touchedInCurrentEpoch(0));
  EXPECT_FALSE(T.touchedInCurrentEpoch(2));
  EXPECT_FALSE(T.touchedInCurrentEpoch(3));

  T.eraseFront(0); // no-op
  EXPECT_EQ(T.numSlots(), 4u);
  EXPECT_TRUE(T.touchedInCurrentEpoch(1));

  T.eraseFront(100); // past-the-end cut empties
  EXPECT_EQ(T.numSlots(), 0u);
}

TEST(EpochTracker, ClearResetsEverything) {
  EpochTracker T;
  T.ensureSlots(4);
  T.beginEpoch();
  T.touch(0);
  T.clear();
  EXPECT_EQ(T.numSlots(), 0u);
  EXPECT_EQ(T.currentEpoch(), 0u);
  // Usable again from scratch, as after checkpoint restore.
  T.ensureSlots(2);
  T.beginEpoch();
  EXPECT_FALSE(T.touchedInCurrentEpoch(0));
  T.touch(0);
  EXPECT_TRUE(T.touchedInCurrentEpoch(0));
}
