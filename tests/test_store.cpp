//===- tests/test_store.cpp - CoW segment store battery ---------------------===//
//
// The acceptance battery of the persistent state store (store/): mmap'd
// segments, the fsync'd root log, and the copy-on-write chunk store built
// on both. The properties that matter: a published root survives any
// crash (torn tails revert to the previous root, never to garbage),
// unchanged chunks cost zero bytes to re-commit (the O(delta) claim),
// dead space is reclaimed without ever breaking the current root, and
// every corruption is a clear error — checked both by the seeded
// truncate/flip fuzz here and by the fsck the awdit-store tool exposes.
//
//===----------------------------------------------------------------------===//

#include "store/page_alloc.h"
#include "store/root_log.h"
#include "store/segment_store.h"

#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

using namespace awdit;
using namespace awdit::store;

namespace {

namespace fs = std::filesystem;

/// A per-test scratch directory, removed on destruction.
struct TempDir {
  fs::path Path;
  explicit TempDir(const std::string &Tag) {
    static int Counter = 0;
    Path = fs::temp_directory_path() /
           ("awdit_store_" + Tag + "_" + std::to_string(::getpid()) + "_" +
            std::to_string(Counter++));
    fs::create_directories(Path);
  }
  ~TempDir() {
    std::error_code Ec;
    fs::remove_all(Path, Ec);
  }
  std::string str() const { return Path.string(); }
};

/// Deterministic pseudo-random chunk payload.
std::string payload(uint64_t Seed, size_t Bytes) {
  std::mt19937_64 Rng(Seed);
  std::string Out(Bytes, '\0');
  for (char &C : Out)
    C = static_cast<char>(Rng());
  return Out;
}

std::vector<std::pair<uint64_t, std::string_view>>
chunkList(const std::vector<std::pair<uint64_t, std::string>> &Owned) {
  std::vector<std::pair<uint64_t, std::string_view>> Out;
  Out.reserve(Owned.size());
  for (const auto &[Id, Bytes] : Owned)
    Out.emplace_back(Id, Bytes);
  return Out;
}

/// Appends \p N garbage bytes to a file (a simulated torn write).
void appendGarbage(const std::string &Path, size_t N, uint64_t Seed) {
  std::ofstream Out(Path, std::ios::binary | std::ios::app);
  Out << payload(Seed, N);
}

void truncateFile(const std::string &Path, uint64_t Bytes) {
  std::error_code Ec;
  fs::resize_file(Path, Bytes, Ec);
  ASSERT_FALSE(Ec) << Path;
}

/// Recursive directory copy — a crash image taken at a commit boundary.
void copyDir(const fs::path &From, const fs::path &To) {
  fs::copy(From, To, fs::copy_options::recursive);
}

} // namespace

//===----------------------------------------------------------------------===//
// MappedSegment
//===----------------------------------------------------------------------===//

TEST(MappedSegment, CreateWriteReopenReadBack) {
  TempDir D("seg");
  std::string Path = D.str() + "/seg-000001.awseg";
  std::string Err;
  MappedSegment S;
  ASSERT_TRUE(S.create(Path, 2 * PageSize, &Err)) << Err;
  EXPECT_TRUE(S.writable());
  EXPECT_EQ(S.capacity(), 2 * PageSize);

  std::string Data = payload(1, 300);
  size_t Off = S.allocate(Data.size());
  ASSERT_NE(Off, SIZE_MAX);
  std::memcpy(S.writableData() + Off, Data.data(), Data.size());
  // Alignment: the next extent starts at a ChunkAlign boundary.
  size_t Off2 = S.allocate(10);
  EXPECT_EQ(Off2 % ChunkAlign, 0u);
  EXPECT_GE(Off2, Off + Data.size());
  ASSERT_TRUE(S.sync(&Err)) << Err;
  S.sealWrittenPages();

  MappedSegment R;
  ASSERT_TRUE(R.openExisting(Path, &Err)) << Err;
  EXPECT_FALSE(R.writable());
  EXPECT_EQ(std::string_view(R.data() + Off, Data.size()), Data);
}

TEST(MappedSegment, AllocateFailsWhenFull) {
  TempDir D("segfull");
  std::string Err;
  MappedSegment S;
  ASSERT_TRUE(S.create(D.str() + "/s.awseg", PageSize, &Err)) << Err;
  EXPECT_NE(S.allocate(PageSize), SIZE_MAX);
  EXPECT_EQ(S.allocate(1), SIZE_MAX);
}

//===----------------------------------------------------------------------===//
// RootLog
//===----------------------------------------------------------------------===//

TEST(RootLog, AppendReopenKeepsLastRoot) {
  TempDir D("rl");
  std::string Err;
  {
    RootLog L;
    ASSERT_TRUE(L.open(D.str(), &Err)) << Err;
    EXPECT_FALSE(L.hasRoot());
    ASSERT_TRUE(L.append("alpha", &Err)) << Err;
    ASSERT_TRUE(L.append("beta", &Err)) << Err;
    EXPECT_EQ(L.lastSeq(), 2u);
  }
  RootLog L;
  ASSERT_TRUE(L.open(D.str(), &Err)) << Err;
  ASSERT_TRUE(L.hasRoot());
  EXPECT_EQ(L.lastSeq(), 2u);
  EXPECT_EQ(L.lastPayload(), "beta");
  EXPECT_EQ(L.recordCount(), 2u);
}

TEST(RootLog, TornTailRevertsToPreviousRoot) {
  TempDir D("rltear");
  std::string Err;
  uint64_t CleanBytes = 0;
  {
    RootLog L;
    ASSERT_TRUE(L.open(D.str(), &Err)) << Err;
    ASSERT_TRUE(L.append("first", &Err)) << Err;
    CleanBytes = L.sizeBytes();
    ASSERT_TRUE(L.append("second-which-tears", &Err)) << Err;
  }
  // Tear the second record: cut it anywhere strictly inside.
  std::string Path = RootLog::filePath(D.str());
  for (uint64_t Cut : {CleanBytes + 1, CleanBytes + 12, CleanBytes + 30}) {
    TempDir Copy("rltear_cut");
    fs::copy(Path, Copy.Path / "roots.awrl");
    truncateFile((Copy.Path / "roots.awrl").string(), Cut);
    RootLog L;
    ASSERT_TRUE(L.open(Copy.str(), &Err)) << Err;
    ASSERT_TRUE(L.hasRoot());
    EXPECT_EQ(L.lastSeq(), 1u) << "cut at " << Cut;
    EXPECT_EQ(L.lastPayload(), "first");
    // The torn tail was physically truncated; appending resumes cleanly.
    ASSERT_TRUE(L.append("third", &Err)) << Err;
    EXPECT_EQ(L.lastSeq(), 2u);
  }
}

TEST(RootLog, GarbageTailIsIgnoredAndTruncated) {
  TempDir D("rlgarbage");
  std::string Err;
  {
    RootLog L;
    ASSERT_TRUE(L.open(D.str(), &Err)) << Err;
    ASSERT_TRUE(L.append("keep", &Err)) << Err;
  }
  appendGarbage(RootLog::filePath(D.str()), 97, /*Seed=*/3);
  RootLog L;
  ASSERT_TRUE(L.open(D.str(), &Err)) << Err;
  EXPECT_EQ(L.lastPayload(), "keep");
  ASSERT_TRUE(L.append("next", &Err)) << Err;
  EXPECT_EQ(L.lastSeq(), 2u);
}

TEST(RootLog, RotateKeepsOnlyNewestRecord) {
  TempDir D("rlrot");
  std::string Err;
  RootLog L;
  ASSERT_TRUE(L.open(D.str(), &Err)) << Err;
  for (int I = 0; I < 20; ++I)
    ASSERT_TRUE(L.append("root " + std::to_string(I), &Err)) << Err;
  uint64_t Before = L.sizeBytes();
  ASSERT_TRUE(L.rotate(&Err)) << Err;
  EXPECT_LT(L.sizeBytes(), Before);
  EXPECT_EQ(L.recordCount(), 1u);
  EXPECT_EQ(L.lastSeq(), 20u);
  EXPECT_EQ(L.lastPayload(), "root 19");
  // Appending continues past the rotation with the same sequence.
  ASSERT_TRUE(L.append("root 20", &Err)) << Err;
  EXPECT_EQ(L.lastSeq(), 21u);
}

//===----------------------------------------------------------------------===//
// SegmentStore
//===----------------------------------------------------------------------===//

TEST(SegmentStore, CommitReopenReadsBackEveryChunk) {
  TempDir D("st");
  std::string Err;
  std::vector<std::pair<uint64_t, std::string>> Chunks;
  for (uint64_t I = 0; I < 40; ++I)
    Chunks.emplace_back(I * 7 + 1, payload(I, 100 + I * 37));
  {
    SegmentStore S;
    ASSERT_TRUE(S.open(D.str(), &Err)) << Err;
    EXPECT_FALSE(S.hasRoot());
    ASSERT_TRUE(S.commit("meta-1", chunkList(Chunks), &Err)) << Err;
    EXPECT_TRUE(S.hasRoot());
  }
  SegmentStore S;
  ASSERT_TRUE(S.open(D.str(), &Err)) << Err;
  EXPECT_EQ(S.rootMeta(), "meta-1");
  std::vector<uint64_t> Ids = S.chunkIds();
  ASSERT_EQ(Ids.size(), Chunks.size());
  EXPECT_TRUE(std::is_sorted(Ids.begin(), Ids.end()));
  for (const auto &[Id, Bytes] : Chunks) {
    std::string Out;
    ASSERT_TRUE(S.readChunk(Id, Out, &Err)) << Err;
    EXPECT_EQ(Out, Bytes) << "chunk " << Id;
  }
}

TEST(SegmentStore, UnchangedChunksAppendNothing) {
  TempDir D("stcow");
  std::string Err;
  SegmentStore S;
  ASSERT_TRUE(S.open(D.str(), &Err)) << Err;
  std::vector<std::pair<uint64_t, std::string>> Chunks;
  for (uint64_t I = 1; I <= 64; ++I)
    Chunks.emplace_back(I, payload(I, 512));
  ASSERT_TRUE(S.commit("m1", chunkList(Chunks), &Err)) << Err;
  uint64_t AfterFirst = S.bytesAppended();
  EXPECT_GE(AfterFirst, 64u * 512u);

  // Identical content: the hash gate carries every chunk by reference, so
  // the only bytes appended are the root record (the table of references),
  // a small fraction of the payload it avoids rewriting.
  ASSERT_TRUE(S.commit("m2", chunkList(Chunks), &Err)) << Err;
  uint64_t RootOnly = S.bytesAppended() - AfterFirst;
  EXPECT_LT(RootOnly, AfterFirst / 8);

  // One changed chunk: the delta is that chunk plus a root record — not
  // the state.
  Chunks[10].second = payload(999, 512);
  ASSERT_TRUE(S.commit("m3", chunkList(Chunks), &Err)) << Err;
  uint64_t Delta = S.bytesAppended() - AfterFirst - RootOnly;
  EXPECT_GE(Delta, 512u);
  EXPECT_LT(Delta, RootOnly + 3u * 512u);
  std::string Out;
  ASSERT_TRUE(S.readChunk(Chunks[10].first, Out, &Err)) << Err;
  EXPECT_EQ(Out, Chunks[10].second);
}

TEST(SegmentStore, DroppedChunksDisappearFromTheRoot) {
  TempDir D("stdrop");
  std::string Err;
  SegmentStore S;
  ASSERT_TRUE(S.open(D.str(), &Err)) << Err;
  std::vector<std::pair<uint64_t, std::string>> Chunks{
      {1, payload(1, 64)}, {2, payload(2, 64)}, {3, payload(3, 64)}};
  ASSERT_TRUE(S.commit("m1", chunkList(Chunks), &Err)) << Err;
  Chunks.erase(Chunks.begin() + 1);
  ASSERT_TRUE(S.commit("m2", chunkList(Chunks), &Err)) << Err;
  EXPECT_EQ(S.chunkIds(), (std::vector<uint64_t>{1, 3}));
  std::string Out;
  EXPECT_FALSE(S.readChunk(2, Out, &Err));
}

TEST(SegmentStore, OverwrittenStateIsReclaimedFromDisk) {
  TempDir D("strec");
  std::string Err;
  {
    SegmentStore S;
    ASSERT_TRUE(S.open(D.str(), &Err)) << Err;
    // Each round rewrites every chunk, so each round's segment bytes die
    // on the next commit. ~600KB per round x 24 rounds pushes well past
    // several 4MiB segments; reclamation must keep disk usage bounded.
    for (uint64_t Round = 0; Round < 24; ++Round) {
      std::vector<std::pair<uint64_t, std::string>> Chunks;
      for (uint64_t I = 1; I <= 12; ++I)
        Chunks.emplace_back(I, payload(Round * 100 + I, 50'000));
      ASSERT_TRUE(S.commit("round " + std::to_string(Round),
                           chunkList(Chunks), &Err))
          << Err;
    }
    // The background compactor unlinks dead segments asynchronously.
    auto Deadline = std::chrono::steady_clock::now() +
                    std::chrono::seconds(10);
    size_t SegFiles = SIZE_MAX;
    while (std::chrono::steady_clock::now() < Deadline) {
      SegFiles = 0;
      for (const auto &E : fs::directory_iterator(D.str()))
        if (E.path().extension() == ".awseg")
          ++SegFiles;
      if (SegFiles <= 2)
        break;
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
    EXPECT_LE(SegFiles, 2u) << "dead segments were not reclaimed";
    // Reclamation never touches the live root.
    for (uint64_t I = 1; I <= 12; ++I) {
      std::string Out;
      ASSERT_TRUE(S.readChunk(I, Out, &Err)) << Err;
      EXPECT_EQ(Out, payload(23 * 100 + I, 50'000));
    }
  }
  // And the reclaimed store reopens whole.
  SegmentStore S;
  ASSERT_TRUE(S.open(D.str(), &Err)) << Err;
  EXPECT_EQ(S.chunkIds().size(), 12u);
}

TEST(SegmentStore, RelocationCompactsMostlyDeadSegments) {
  TempDir D("strel");
  std::string Err;
  SegmentStore S;
  ASSERT_TRUE(S.open(D.str(), &Err)) << Err;
  // One big victim-to-be (dies) plus a small survivor in the same
  // segment; then enough churn on other ids to seal that segment and give
  // the relocation scan a reason to move the survivor out.
  std::vector<std::pair<uint64_t, std::string>> Chunks{
      {1, payload(1, 900'000)}, {2, payload(2, 600)}};
  ASSERT_TRUE(S.commit("m0", chunkList(Chunks), &Err)) << Err;
  for (uint64_t Round = 1; Round <= 12; ++Round) {
    std::vector<std::pair<uint64_t, std::string>> Next{
        {1, payload(Round * 31, 900'000)}, {2, payload(2, 600)}};
    ASSERT_TRUE(S.commit("m" + std::to_string(Round), chunkList(Next),
                         &Err))
        << Err;
  }
  // Wherever chunk 2 lives now, it must read back exactly.
  std::string Out;
  ASSERT_TRUE(S.readChunk(2, Out, &Err)) << Err;
  EXPECT_EQ(Out, payload(2, 600));
  StoreStats St = S.stats();
  // Relocation + reclamation keep the dead tail bounded: without them 12
  // dead 900KB generations would sit on disk.
  EXPECT_LT(St.DeadBytes, 8'000'000u);
  FsckReport Report;
  ASSERT_TRUE(SegmentStore::fsck(D.str(), Report, &Err)) << Err;
  EXPECT_TRUE(Report.clean()) << (Report.Errors.empty()
                                      ? ""
                                      : Report.Errors.front());
}

TEST(SegmentStore, FsckDetectsFlippedBitInSealedChunk) {
  TempDir D("stflip");
  std::string Err;
  std::string SegPath;
  {
    SegmentStore S;
    ASSERT_TRUE(S.open(D.str(), &Err)) << Err;
    std::vector<std::pair<uint64_t, std::string>> Chunks{
        {1, payload(1, 5000)}, {2, payload(2, 5000)}};
    ASSERT_TRUE(S.commit("m", chunkList(Chunks), &Err)) << Err;
  }
  for (const auto &E : fs::directory_iterator(D.str()))
    if (E.path().extension() == ".awseg")
      SegPath = E.path().string();
  ASSERT_FALSE(SegPath.empty());
  // Flip one payload byte on disk (the store process is gone; this is
  // bit-rot, not a write through the sealed mapping).
  {
    std::fstream F(SegPath, std::ios::binary | std::ios::in | std::ios::out);
    F.seekp(2000);
    char C;
    F.seekg(2000);
    F.get(C);
    F.seekp(2000);
    F.put(static_cast<char>(C ^ 0x40));
  }
  FsckReport Report;
  ASSERT_TRUE(SegmentStore::fsck(D.str(), Report, &Err)) << Err;
  EXPECT_FALSE(Report.clean());

  // The live store fails that chunk's read with a clear error — and only
  // that chunk's.
  SegmentStore S;
  ASSERT_TRUE(S.open(D.str(), &Err)) << Err;
  std::string Out;
  std::string ReadErr;
  bool Ok1 = S.readChunk(1, Out, &ReadErr);
  bool Ok2 = S.readChunk(2, Out, &ReadErr);
  EXPECT_FALSE(Ok1 && Ok2);
  EXPECT_TRUE(Ok1 || Ok2);
}

/// The seeded crash fuzz: a store image truncated or scribbled at a
/// random point must either recover to a previously published root (every
/// chunk readable, exactly as committed) or fail with a clear error —
/// never crash, never serve garbage.
TEST(SegmentStore, CrashImageFuzzRecoversToAPublishedRoot) {
  TempDir D("stfuzz");
  std::string Err;
  // Reference content per committed root.
  std::vector<std::vector<std::pair<uint64_t, std::string>>> Roots;
  {
    SegmentStore S;
    ASSERT_TRUE(S.open(D.str(), &Err)) << Err;
    std::vector<std::pair<uint64_t, std::string>> Chunks;
    for (uint64_t Commit = 0; Commit < 6; ++Commit) {
      for (uint64_t I = 0; I <= Commit; ++I) {
        uint64_t Id = I * 3 + 1;
        std::string Bytes = payload(Commit * 50 + I, 700 + 97 * I);
        bool Found = false;
        for (auto &[Cid, Cb] : Chunks)
          if (Cid == Id) {
            Cb = Bytes;
            Found = true;
          }
        if (!Found)
          Chunks.emplace_back(Id, Bytes);
      }
      ASSERT_TRUE(S.commit("root", chunkList(Chunks), &Err)) << Err;
      Roots.push_back(Chunks);
    }
  }

  std::mt19937_64 Rng(42);
  for (int Trial = 0; Trial < 30; ++Trial) {
    TempDir Image("stfuzz_img");
    fs::remove_all(Image.Path);
    copyDir(D.Path, Image.Path);

    // Mutate the root log: truncate at a random offset (a torn append) or
    // append garbage (a torn append that got bytes down before the crash).
    std::string LogPath = RootLog::filePath(Image.str());
    uint64_t LogBytes = fs::file_size(LogPath);
    if (Trial % 2 == 0) {
      truncateFile(LogPath, Rng() % (LogBytes + 1));
    } else {
      appendGarbage(LogPath, 1 + Rng() % 200, Rng());
    }

    SegmentStore S;
    if (!S.open(Image.str(), &Err))
      continue; // a clear failure is an accepted outcome
    if (!S.hasRoot())
      continue; // everything torn away: a fresh store is consistent too
    // Whatever root survived must be one that was published, bit-exact.
    uint64_t Seq = S.rootSeq();
    ASSERT_GE(Seq, 1u);
    ASSERT_LE(Seq, Roots.size());
    const auto &Expect = Roots[Seq - 1];
    ASSERT_EQ(S.chunkIds().size(), Expect.size()) << "trial " << Trial;
    for (const auto &[Id, Bytes] : Expect) {
      std::string Out;
      ASSERT_TRUE(S.readChunk(Id, Out, &Err))
          << "trial " << Trial << ": " << Err;
      EXPECT_EQ(Out, Bytes) << "trial " << Trial << " chunk " << Id;
    }
    // And the recovered store accepts new commits.
    std::vector<std::pair<uint64_t, std::string>> Next{{1, payload(7, 64)}};
    EXPECT_TRUE(S.commit("after-recovery", chunkList(Next), &Err)) << Err;
  }
}

TEST(SegmentStore, TruncatedSegmentFileFailsCleanly) {
  TempDir D("stcut");
  std::string Err;
  {
    SegmentStore S;
    ASSERT_TRUE(S.open(D.str(), &Err)) << Err;
    std::vector<std::pair<uint64_t, std::string>> Chunks{
        {1, payload(1, 100'000)}};
    ASSERT_TRUE(S.commit("m", chunkList(Chunks), &Err)) << Err;
  }
  for (const auto &E : fs::directory_iterator(D.str()))
    if (E.path().extension() == ".awseg")
      truncateFile(E.path().string(), 4096);
  // Either the open or the chunk read must fail with a message — no UB.
  SegmentStore S;
  if (S.open(D.str(), &Err)) {
    std::string Out;
    EXPECT_FALSE(S.readChunk(1, Out, &Err));
    EXPECT_FALSE(Err.empty());
  } else {
    EXPECT_FALSE(Err.empty());
  }
}

TEST(SegmentStore, IsStoreDirDetectsLayout) {
  TempDir D("stdetect");
  EXPECT_FALSE(SegmentStore::isStoreDir(D.str()));
  EXPECT_FALSE(SegmentStore::isStoreDir(D.str() + "/missing"));
  std::string Err;
  SegmentStore S;
  ASSERT_TRUE(S.open(D.str() + "/store", &Err)) << Err;
  EXPECT_TRUE(SegmentStore::isStoreDir(D.str() + "/store"));
}
